package saim

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

// randomQUBOBuilder builds a deterministic dense-ish test QUBO.
func randomQUBOBuilder(n int, seed uint64) *Builder {
	// Tiny deterministic LCG so the test has no rng dependency.
	state := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(int64(state>>33)%1000)/100 - 5
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Linear(i, next())
		for j := i + 1; j < n; j++ {
			if int(state>>21)%3 == 0 {
				b.Quadratic(i, j, next())
			} else {
				next()
			}
		}
	}
	return b
}

// bruteMin enumerates the optimum of a small model.
func bruteMin(t *testing.T, m *Model) float64 {
	t.Helper()
	n := m.N()
	if n > 20 {
		t.Fatalf("bruteMin on %d vars", n)
	}
	best := math.Inf(1)
	x := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range x {
			x[i] = mask >> i & 1
		}
		cost, feasible, err := m.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		if feasible && cost < best {
			best = cost
		}
	}
	return best
}

func TestDecompUnconstrainedMatchesWholeSolve(t *testing.T) {
	m, err := randomQUBOBuilder(14, 5).Model()
	if err != nil {
		t.Fatal(err)
	}
	opt := bruteMin(t, m)

	whole, err := SolveModel(context.Background(), "saim", m,
		WithSeed(3), WithIterations(120), WithSweepsPerRun(200))
	if err != nil {
		t.Fatal(err)
	}
	// Whole-block decomposition: one subproblem covering everything, so
	// the inner solve is a whole solve and the clamp is a formality.
	wide, err := SolveModel(context.Background(), "decomp", m,
		WithSeed(3), WithSubproblemSize(14), WithIterations(60), WithSweepsPerRun(200))
	if err != nil {
		t.Fatal(err)
	}
	// Narrow blocks with tabu rotation must land on the same optimum.
	narrow, err := SolveModel(context.Background(), "decomp", m,
		WithSeed(3), WithSubproblemSize(5), WithTabuTenure(1), WithIterations(60), WithSweepsPerRun(200))
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"whole": whole, "wide": wide, "narrow": narrow} {
		if res.Infeasible() {
			t.Fatalf("%s: no assignment", name)
		}
		if math.Abs(res.Cost-opt) > 1e-9 {
			t.Fatalf("%s cost %v, optimum %v", name, res.Cost, opt)
		}
		cost, _, err := m.Evaluate(res.Assignment)
		if err != nil || math.Abs(cost-res.Cost) > 1e-9 {
			t.Fatalf("%s: reported cost %v but assignment evaluates to %v (%v)", name, res.Cost, cost, err)
		}
	}
	if wide.Iterations == 0 {
		t.Fatal("wide decomp reported 0 rounds")
	}
}

func TestDecompConstrainedKnapsack(t *testing.T) {
	// A small QKP: maximize value under one capacity constraint.
	b := NewBuilder(10)
	weights := make([]float64, 10)
	for i := 0; i < 10; i++ {
		b.Linear(i, -float64(3+i%5))
		weights[i] = float64(2 + i%4)
	}
	b.Quadratic(0, 5, -4).Quadratic(2, 7, -6).Quadratic(1, 8, -3)
	b.ConstrainLE(weights, 14)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	opt := bruteMin(t, m)

	res, err := SolveModel(context.Background(), "decomp", m,
		WithSeed(11), WithSubproblemSize(6), WithIterations(30), WithSweepsPerRun(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("decomp found no feasible assignment on a tiny knapsack")
	}
	cost, feasible, err := m.Evaluate(res.Assignment)
	if err != nil || !feasible {
		t.Fatalf("reported assignment infeasible on re-check (err %v)", err)
	}
	if math.Abs(cost-res.Cost) > 1e-9 {
		t.Fatalf("reported cost %v, assignment evaluates to %v", res.Cost, cost)
	}
	if cost < opt-1e-9 {
		t.Fatalf("decomp cost %v beats proven optimum %v", cost, opt)
	}
	if res.Penalty <= 0 {
		t.Fatalf("constrained decomp should report its penalty weight, got %v", res.Penalty)
	}
}

func TestDecompWarmStartAndTarget(t *testing.T) {
	m, err := randomQUBOBuilder(12, 9).Model()
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]int, 12)
	seedCost, _, err := m.Evaluate(seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(context.Background(), "decomp", m,
		WithSeed(1), WithInitial(seed), WithSubproblemSize(4), WithIterations(10), WithSweepsPerRun(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > seedCost+1e-9 {
		t.Fatalf("warm-started decomp returned %v, worse than seed %v", res.Cost, seedCost)
	}
	// A warm start already at the target stops before any round.
	res, err = SolveModel(context.Background(), "decomp", m,
		WithInitial(seed), WithTargetCost(seedCost))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopTarget || res.Iterations != 0 {
		t.Fatalf("Stopped = %v after %d rounds, want StopTarget after 0", res.Stopped, res.Iterations)
	}
}

func TestDecompOptionValidation(t *testing.T) {
	m, err := randomQUBOBuilder(8, 2).Model()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]Option{
		"self-inner":      {WithInnerSolver("decomp")},
		"unknown-inner":   {WithInnerSolver("no-such-solver")},
		"inner-form":      {WithInnerSolver("penalty")}, // rejects unconstrained subproblems
		"negative-tenure": {WithTabuTenure(-1)},
		"negative-sub":    {WithSubproblemSize(-2)},
	}
	for name, opts := range cases {
		if _, err := SolveModel(context.Background(), "decomp", m, opts...); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// High-order models are rejected by form.
	hb := NewBuilder(4)
	hb.Term(1, 0, 1, 2)
	hm, err := hb.Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveModel(context.Background(), "decomp", hm); err == nil {
		t.Error("expected a form error for a high-order model")
	}
}

func TestDecompCancellation(t *testing.T) {
	m, err := randomQUBOBuilder(16, 4).Model()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveModel(ctx, "decomp", m, WithSeed(1), WithSubproblemSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopCancelled {
		t.Fatalf("Stopped = %v, want StopCancelled", res.Stopped)
	}
}

// TestDecompProgressAggregationUnderLoad hammers WithProgress with
// GOMAXPROCS concurrent round workers: callbacks must stay serialized
// (the WithProgress contract), fleet totals monotone, and the best cost
// monotone non-increasing. Run under -race this also pins the shared
// aggregated-progress path of the PR 2 replica pool.
func TestDecompProgressAggregationUnderLoad(t *testing.T) {
	m, err := randomQUBOBuilder(160, 7).Model()
	if err != nil {
		t.Fatal(err)
	}
	var (
		inFlight   atomic.Int32
		calls      int
		lastSweeps int64
		lastSample int
		lastBest   = math.Inf(1)
	)
	res, err := SolveModel(context.Background(), "decomp", m,
		WithSeed(5),
		WithSubproblemSize(16),
		WithRounds(6),
		WithIterations(4),
		WithSweepsPerRun(50),
		WithProgress(func(p Progress) {
			if inFlight.Add(1) != 1 {
				t.Error("progress callback entered concurrently")
			}
			calls++
			if p.Solver != "decomp" {
				t.Errorf("Progress.Solver = %q", p.Solver)
			}
			if p.Sweeps < lastSweeps {
				t.Errorf("fleet sweeps went backwards: %d -> %d", lastSweeps, p.Sweeps)
			}
			if p.Iteration+1 < lastSample {
				t.Errorf("fleet samples went backwards: %d -> %d", lastSample, p.Iteration+1)
			}
			if !math.IsInf(p.BestCost, 1) && p.BestCost > lastBest+1e-9 {
				t.Errorf("best cost went backwards: %v -> %v", lastBest, p.BestCost)
			}
			lastSweeps, lastSample = p.Sweeps, p.Iteration+1
			if p.BestCost < lastBest {
				lastBest = p.BestCost
			}
			inFlight.Add(-1)
		}))
	if err != nil {
		t.Fatal(err)
	}
	minCalls := runtime.GOMAXPROCS(0)
	if calls < minCalls {
		t.Fatalf("progress fired %d times, want at least %d", calls, minCalls)
	}
	if res.Infeasible() {
		t.Fatal("decomp found nothing on an unconstrained model")
	}
}
