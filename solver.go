package saim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/ising-machines/saim/internal/core"
)

// Solver is the unified solving contract: every backend — the paper's
// self-adaptive Ising machine as well as the classical baselines — solves
// the same Model type under a context. Implementations must honor
// cancellation by returning promptly (within one annealing run or
// equivalent) with the best result found so far and a nil error; the
// result's Stopped field records why the solve ended.
type Solver interface {
	// Name is the registry key, e.g. "saim" or "pt".
	Name() string
	// Solve runs the backend on the model. Options a backend does not
	// understand are ignored; zero/unset options fall back to the paper's
	// defaults for that backend.
	Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error)
	// Accepts reports whether the solver can run models of the given form.
	Accepts(f Form) bool
}

// StopReason records why a solve returned. It aliases the internal core
// type so every layer shares one vocabulary.
type StopReason = core.StopReason

// Re-exported stop reasons.
const (
	// StopCompleted means the full iteration budget was spent.
	StopCompleted = core.StopCompleted
	// StopCancelled means the context was cancelled; the result holds the
	// best-so-far state and is still valid.
	StopCancelled = core.StopCancelled
	// StopTarget means a feasible sample reached WithTargetCost.
	StopTarget = core.StopTarget
	// StopPatience means WithPatience iterations passed without improvement.
	StopPatience = core.StopPatience
	// StopTimeLimit means the WithTimeLimit deadline expired; the result
	// holds the best-so-far state and is still valid.
	StopTimeLimit = core.StopTimeLimit
)

// Progress is the per-iteration snapshot streamed to WithProgress
// callbacks. Iterations are annealing runs for the Ising-machine solvers,
// sweeps for parallel tempering, and offspring batches for the GA.
type Progress struct {
	// Solver is the name of the backend reporting.
	Solver string
	// Iteration is the zero-based iteration just finished; Iterations is
	// the configured total.
	Iteration, Iterations int
	// BestCost is the best feasible cost found so far (+Inf if none).
	BestCost float64
	// FeasibleRatio is the percentage of examined samples so far that were
	// feasible — the running value of Result.FeasibleRatio, under the same
	// definition: the annealing backends examine one sample per run (the
	// run's final state), parallel tempering examines every replica at
	// each sampling point.
	FeasibleRatio float64
	// LambdaNorm is ‖λ‖₂, the Euclidean norm of the current Lagrange
	// multiplier vector (zero for solvers without multipliers).
	LambdaNorm float64
	// Sweeps is the cumulative Monte-Carlo sweep count (zero for
	// non-sampling solvers).
	Sweeps int64
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Solver{}
)

// Register adds a solver to the global registry under its Name. It returns
// an error for a nil solver, an empty name, or a duplicate registration.
func Register(s Solver) error {
	if s == nil {
		return fmt.Errorf("saim: Register called with nil solver")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("saim: Register called with empty solver name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("saim: solver %q already registered", name)
	}
	registry[name] = s
	return nil
}

// mustRegister is Register for the built-in backends.
func mustRegister(s Solver) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the registered solver with the given name.
func Get(name string) (Solver, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("saim: unknown solver %q (registered: %v)", name, solverNames())
	}
	return s, nil
}

// Solvers returns the sorted names of all registered solvers.
func Solvers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return solverNames()
}

func solverNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SolveModel is a convenience wrapper: look up a registered solver by name
// and run it on the model.
func SolveModel(ctx context.Context, solver string, m *Model, opts ...Option) (*Result, error) {
	s, err := Get(solver)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, m, opts...)
}

func init() {
	mustRegister(&saimSolver{})
	mustRegister(&penaltySolver{})
	mustRegister(&ptSolver{})
	mustRegister(&gaSolver{})
	mustRegister(&greedySolver{})
	mustRegister(&exactSolver{})
	mustRegister(&decompSolver{})
	mustRegister(&raceSolver{})
}
