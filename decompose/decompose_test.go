package decompose_test

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/decompose"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/problems"
)

// TestControlInstanceWithinTwoPercentOfWholeSolve is the scale-axis
// acceptance check: on a 2000-variable max-cut — the largest size the
// dense whole-problem backends handle comfortably — the decomposition
// meta-solver must come within 2% of the best whole-problem solve.
func TestControlInstanceWithinTwoPercentOfWholeSolve(t *testing.T) {
	g := problems.RandomGraph(2000, 0.005, 10, 42)
	pWhole, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := pWhole.Model.Solve(context.Background(), "saim",
		saim.WithSeed(1), saim.WithIterations(40), saim.WithSweepsPerRun(400))
	if err != nil {
		t.Fatal(err)
	}
	wholeCut := pWhole.CutValue(whole)

	pDec, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := decompose.Solve(context.Background(), pDec.Model, decompose.Options{
		SubproblemSize: 512,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	decompCut := pDec.CutValue(sol)

	t.Logf("whole cut %.0f, decomposed cut %.0f (%.2f%%)", wholeCut, decompCut, 100*decompCut/wholeCut)
	if decompCut < 0.98*wholeCut {
		t.Fatalf("decomposed cut %.0f is more than 2%% below the whole-problem cut %.0f", decompCut, wholeCut)
	}
}

// TestLargeInstanceBeyondDenseBackends runs the sparse path on a
// 20000-vertex graph from the problems catalog — a size whose dense
// compilation alone would need a 3.2 GB coupling matrix — and checks the
// solve terminates with a high-quality cut.
func TestLargeInstanceBeyondDenseBackends(t *testing.T) {
	const n = 20000
	g := problems.RingChordsGraph(n, 8, 1)
	p, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	var rounds atomic.Int64
	sol, err := decompose.Solve(context.Background(), p.Model, decompose.Options{
		SubproblemSize: 512,
		Rounds:         8,
		Seed:           3,
		Iterations:     4,
		SweepsPerRun:   120,
		Progress: func(pr saim.Progress) {
			rounds.Store(int64(pr.Iteration + 1))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := p.CutValue(sol)
	// The ring alone carries n unit edges and is fully cuttable; a solve
	// that explores the instance at all lands well above 90% of that.
	if cut < 0.9*n {
		t.Fatalf("20k-vertex cut %.0f, want at least %.0f", cut, 0.9*n)
	}
	if sol.Result().Iterations == 0 || rounds.Load() == 0 {
		t.Fatal("no rounds reported")
	}
	left, right := p.Partition(sol)
	if len(left)+len(right) != n {
		t.Fatalf("partition covers %d vertices, want %d", len(left)+len(right), n)
	}
}

// TestSparseMatchesRegistryDecomp pins the two front ends against each
// other: on a model small enough to compile densely, the sparse
// declarative path and the registry decomp solver see the same energy
// landscape and reach the same optimum.
func TestSparseMatchesRegistryDecomp(t *testing.T) {
	g := problems.RandomGraph(40, 0.3, 5, 7)
	p1, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := decompose.Solve(context.Background(), p1.Model, decompose.Options{
		SubproblemSize: 12,
		Seed:           2,
		Iterations:     30,
		SweepsPerRun:   300,
	})
	if err != nil {
		t.Fatal(err)
	}

	p2, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := p2.Model.Solve(context.Background(), "decomp",
		saim.WithSeed(2), saim.WithSubproblemSize(12),
		saim.WithIterations(30), saim.WithSweepsPerRun(300))
	if err != nil {
		t.Fatal(err)
	}

	c1, c2 := p1.CutValue(sparse), p2.CutValue(sol2)
	if math.Abs(c1-c2) > 1e-9 {
		t.Fatalf("sparse path cut %.0f, registry decomp cut %.0f", c1, c2)
	}
	if sparse.Result().Solver != "decomp" {
		t.Fatalf("Solver = %q", sparse.Result().Solver)
	}
}

func TestSolveValidation(t *testing.T) {
	ctx := context.Background()

	m := model.New()
	x := m.Binary("x", 4)
	m.Minimize(model.Dot([]float64{1, -2, 3, -1}, x))
	m.Constrain("c", x.Sum().LE(2))
	if _, err := decompose.Solve(ctx, m, decompose.Options{}); err == nil {
		t.Error("expected an error for a constrained model on the sparse path")
	}

	hm := model.New()
	y := hm.Binary("y", 4)
	hm.Minimize(model.Prod(y[0], y[1], y[2]))
	if _, err := decompose.Solve(ctx, hm, decompose.Options{}); err == nil {
		t.Error("expected an error for a high-order objective")
	}

	um := model.New()
	z := um.Binary("z", 4)
	um.Minimize(model.Dot([]float64{1, -2, 3, -1}, z))
	if _, err := decompose.Solve(ctx, um, decompose.Options{Inner: "decomp"}); err == nil {
		t.Error("expected an error for decomp-as-inner")
	}
	if _, err := decompose.Solve(ctx, um, decompose.Options{Inner: "greedy"}); err == nil {
		t.Error("expected an error for an inner solver that rejects unconstrained models")
	}
	if _, err := decompose.Solve(ctx, um, decompose.Options{Initial: []int{1}}); err == nil {
		t.Error("expected an error for a bad initial length")
	}
	if _, err := decompose.Solve(ctx, nil, decompose.Options{}); err == nil {
		t.Error("expected an error for a nil model")
	}
	if _, err := decompose.Solve(ctx, model.New(), decompose.Options{}); err == nil {
		t.Error("expected an error, not a panic, for a model with no variables")
	}
}

func TestTargetObjectiveStopsEarly(t *testing.T) {
	g := problems.RandomGraph(60, 0.3, 5, 9)
	p, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	target := 1.0 // any positive cut reaches this immediately
	sol, err := decompose.Solve(context.Background(), p.Model, decompose.Options{
		SubproblemSize:  16,
		Seed:            4,
		TargetObjective: &target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Result().Stopped != saim.StopTarget {
		t.Fatalf("Stopped = %v, want StopTarget", sol.Result().Stopped)
	}
	if p.CutValue(sol) < target {
		t.Fatalf("cut %.0f below the target %v that stopped the solve", p.CutValue(sol), target)
	}
}
