// Package decompose is the large-instance front end of the saim library:
// qbsolv-style subproblem decomposition applied directly to declarative
// models (package model), without ever materializing the dense coupling
// matrix every whole-problem backend needs.
//
// The registry's "decomp" solver (saim.SolveModel(ctx, "decomp", m, ...))
// already decomposes any compiled saim.Model — use it when the model fits
// in dense form anyway and you want the option set of the unified API.
// This package exists for the regime beyond that: a compiled N-variable
// model costs O(N²) memory (3.2 GB at N = 20000), while Solve here streams
// the declarative model's terms into a sparse O(N + terms) view and runs
// the same decomposition engine (internal/decompose, DESIGN.md §6) on it.
//
//	g := problems.RandomGraph(20000, 5e-4, 10, 1)
//	p, _ := problems.MaxCut(g)
//	sol, err := decompose.Solve(ctx, p.Model, decompose.Options{
//	    SubproblemSize: 512,
//	})
//	cut := p.CutValue(sol)
//
// Subproblems are extracted with the frozen complement folded into linear
// terms, solved concurrently by any registered inner backend, and clamped
// back only on strict global improvement; tabu tenure steers consecutive
// rounds toward different regions. The sparse path handles unconstrained
// quadratic models only — constrained models go through the registry
// solver, which decomposes their fixed-penalty energy instead.
package decompose

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/decompose"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/model"
)

// Options configures one large-instance decomposition solve. The zero
// value is usable: 256-variable subproblems, tabu tenure 1, the "saim"
// inner backend, GOMAXPROCS workers, and rounds until convergence.
type Options struct {
	// SubproblemSize is the number of variables per subproblem
	// (default 256, clamped to the model size).
	SubproblemSize int
	// Rounds caps the outer loop; 0 iterates until convergence
	// (TabuTenure+1 consecutive rounds without an accepted improvement).
	Rounds int
	// TabuTenure is how many rounds a just-optimized variable is excluded
	// from selection. Zero uses the default of 1; negative disables tabu.
	TabuTenure int
	// Inner names the registered backend for the subproblem solves
	// (default "saim"); it must accept unconstrained models.
	Inner string
	// Iterations and SweepsPerRun budget each inner solve (defaults 12
	// and 400).
	Iterations, SweepsPerRun int
	// Workers sizes the concurrent block-solving pool (default
	// GOMAXPROCS).
	Workers int
	// Seed drives the initial assignment and all inner solves.
	Seed uint64
	// Initial, when non-empty, is the starting assignment over the
	// model's variables; otherwise a seeded random assignment is used.
	Initial []int
	// TargetObjective stops the solve early once the objective — in the
	// declared frame, so "at least T" for a Maximize model — is reached.
	TargetObjective *float64
	// Progress streams fleet-wide totals: Iteration counts inner samples
	// plus finished rounds, BestCost is the best energy in the
	// minimization frame, Sweeps the cumulative inner sweep count. The
	// callback is serialized across the concurrent workers.
	Progress func(saim.Progress)
}

// Solve runs the decomposition meta-solver on an unconstrained
// declarative model, however large, and returns a name-aware Solution.
// The model's terms are streamed into a sparse view — memory stays
// O(N + terms) — so this is the entry point for instances no dense
// backend can represent.
func Solve(ctx context.Context, m *model.Model, o Options) (*model.Solution, error) {
	if m == nil {
		return nil, fmt.Errorf("decompose: nil model")
	}
	if err := m.Err(); err != nil {
		return nil, err
	}
	if m.N() == 0 {
		return nil, fmt.Errorf("decompose: model has no variables")
	}
	if mc := m.NumConstraints(); mc > 0 {
		return nil, fmt.Errorf("decompose: the sparse path handles unconstrained models only (model has %d constraints); solve constrained models with the registry's \"decomp\" solver", mc)
	}

	innerName := o.Inner
	if innerName == "" {
		innerName = "saim"
	}
	if innerName == "decomp" {
		return nil, fmt.Errorf("decompose: the registry decomp solver cannot serve as its own inner backend")
	}
	inner, err := saim.Get(innerName)
	if err != nil {
		return nil, err
	}
	if !inner.Accepts(saim.FormUnconstrained) {
		return nil, fmt.Errorf("decompose: inner solver %q does not accept the unconstrained subproblems decomposition produces", innerName)
	}

	// Stream the declarative terms into the sparse view.
	vb := decompose.NewViewBuilder(m.N())
	var termErr error
	err = m.ObjectiveTerms(func(w float64, ids []int) {
		switch len(ids) {
		case 0:
			vb.AddConst(w)
		case 1:
			vb.AddLinear(ids[0], w)
		case 2:
			vb.AddPair(ids[0], ids[1], w)
		default:
			if termErr == nil {
				termErr = fmt.Errorf("decompose: objective has a degree-%d monomial; the sparse path handles quadratic models only", len(ids))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if termErr != nil {
		return nil, termErr
	}
	view := vb.Build()

	tenure := o.TabuTenure
	switch {
	case tenure == 0:
		tenure = 1
	case tenure < 0:
		tenure = 0
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	iters := o.Iterations
	if iters == 0 {
		iters = 12
	}
	sweeps := o.SweepsPerRun
	if sweeps == 0 {
		sweeps = 400
	}
	var initial ising.Bits
	if len(o.Initial) > 0 {
		if len(o.Initial) != m.N() {
			return nil, fmt.Errorf("decompose: initial assignment length %d, want %d", len(o.Initial), m.N())
		}
		initial = make(ising.Bits, m.N())
		for i, v := range o.Initial {
			switch v {
			case 0:
			case 1:
				initial[i] = 1
			default:
				return nil, fmt.Errorf("decompose: initial[%d] = %d, want 0 or 1", i, v)
			}
		}
	}
	// The engine only accepts strict improvements, so its evolving energy
	// is the running best; TargetObjective maps into the minimization
	// frame the engine sees.
	var target *float64
	if o.TargetObjective != nil {
		t := *o.TargetObjective
		if m.Maximizing() {
			t = -t
		}
		target = &t
	}

	var agg *core.ProgressAggregator
	var sweepsTotal atomic.Int64
	baseSamples := make([]int, workers)
	baseSweeps := make([]int64, workers)
	var bestSeen atomic.Value // float64, monotone under OnAccept/OnRound ordering
	bestSeen.Store(math.Inf(1))
	if o.Progress != nil {
		agg = core.NewProgressAggregator(func(p core.ProgressInfo) {
			ratio := 0.0
			if p.Samples > 0 {
				ratio = 100 * float64(p.FeasibleCount) / float64(p.Samples)
			}
			o.Progress(saim.Progress{
				Solver:        "decomp",
				Iteration:     p.Iteration,
				Iterations:    p.Total,
				BestCost:      p.BestCost,
				FeasibleRatio: ratio,
				Sweeps:        p.Sweeps,
			})
		}, workers+1, o.Rounds)
	}

	// This block-solving closure intentionally parallels the one in the
	// registry's decomp solver (the saim package's decomp.go) minus its
	// constrained branches; the import graph forbids sharing it — saim
	// cannot import this package, which imports saim. Keep the two in
	// step when changing inner-option wiring or progress semantics.
	solveBlock := func(ctx context.Context, worker int, sub *decompose.Sub, seed uint64) (ising.Bits, error) {
		b := saim.NewBuilder(len(sub.Vars))
		for i, w := range sub.Lin {
			if w != 0 {
				b.Linear(i, w)
			}
		}
		for _, p := range sub.Pairs {
			b.Quadratic(p.I, p.J, p.W)
		}
		sm, err := b.Model()
		if err != nil {
			return nil, err
		}
		warm := make([]int, len(sub.Warm))
		for i, v := range sub.Warm {
			warm[i] = int(v)
		}
		innerOpts := []saim.Option{
			saim.WithSeed(seed),
			saim.WithIterations(iters),
			saim.WithSweepsPerRun(sweeps),
			saim.WithInitial(warm),
		}
		if agg != nil {
			emit := agg.Callback(worker)
			innerOpts = append(innerOpts, saim.WithProgress(func(p saim.Progress) {
				samples := baseSamples[worker] + p.Iteration + 1
				emit(core.ProgressInfo{
					Iteration:     samples - 1,
					Total:         o.Rounds,
					BestCost:      bestSeen.Load().(float64),
					FeasibleCount: samples, // unconstrained: every sample is feasible
					Samples:       samples,
					Sweeps:        baseSweeps[worker] + p.Sweeps,
				})
			}))
		}
		res, err := inner.Solve(ctx, sm, innerOpts...)
		if err != nil {
			return nil, err
		}
		sweepsTotal.Add(res.Sweeps)
		if agg != nil {
			baseSamples[worker] += res.Iterations
			baseSweeps[worker] += res.Sweeps
		}
		if res.Assignment == nil {
			return nil, nil
		}
		out := make(ising.Bits, len(res.Assignment))
		for i, v := range res.Assignment {
			out[i] = int8(v)
		}
		return out, nil
	}

	stopReason := saim.StopCompleted
	out, err := decompose.Run(ctx, view, decompose.Options{
		SubSize:    o.SubproblemSize,
		Rounds:     o.Rounds,
		TabuTenure: tenure,
		Workers:    workers,
		Seed:       o.Seed,
		Initial:    initial,
		SolveBlock: solveBlock,
		OnAccept: func(x ising.Bits, e float64) {
			bestSeen.Store(e)
		},
		OnRound: func(r decompose.Round) bool {
			bestSeen.Store(r.Energy)
			if agg != nil {
				rounds := r.Index + 1
				agg.Callback(workers)(core.ProgressInfo{
					Iteration: r.Index,
					Total:     o.Rounds,
					BestCost:  r.Energy,
					Samples:   rounds, FeasibleCount: rounds,
				})
			}
			if target != nil && r.Energy <= *target {
				stopReason = saim.StopTarget
				return true
			}
			return false
		},
	})
	if err != nil {
		return nil, err
	}

	stopped := saim.StopCompleted
	switch out.Stopped {
	case decompose.Cancelled:
		stopped = saim.StopCancelled
	case decompose.StoppedByCallback:
		stopped = stopReason
	}
	asn := make([]int, len(out.X))
	for i, v := range out.X {
		asn[i] = int(v)
	}
	return model.NewSolution(m, &saim.Result{
		Solver:        "decomp",
		Assignment:    asn,
		Cost:          out.Energy,
		FeasibleRatio: 100,
		Sweeps:        sweepsTotal.Load(),
		Iterations:    out.Rounds,
		Stopped:       stopped,
	}), nil
}
