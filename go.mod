module github.com/ising-machines/saim

go 1.24
