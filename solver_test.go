package saim

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

// smallQKP builds a 10-item quadratic knapsack with integer data so every
// backend — including the combinatorial ones — can solve it. The known
// optimum was verified by brute force (the exact backend proves it below).
func smallQKP(t *testing.T) *Model {
	t.Helper()
	values := []float64{10, 14, 8, 20, 6, 12, 9, 17, 5, 11}
	weights := []float64{4, 6, 3, 8, 2, 5, 4, 7, 2, 5}
	pairs := []struct {
		i, j int
		w    float64
	}{
		{0, 1, 5}, {1, 3, 7}, {2, 4, 3}, {3, 7, 9}, {5, 6, 4}, {8, 9, 6},
	}
	const capacity = 23

	b := NewBuilder(len(values))
	for i, v := range values {
		b.Linear(i, -v)
	}
	for _, p := range pairs {
		b.Quadratic(p.i, p.j, -p.w)
	}
	b.ConstrainLE(weights, capacity)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Form() != FormConstrained {
		t.Fatalf("Form = %v, want constrained", m.Form())
	}
	return m
}

func TestRegistryHasAllBackends(t *testing.T) {
	want := []string{"decomp", "exact", "ga", "greedy", "penalty", "pt", "saim"}
	got := Solvers()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("Solvers() = %v, missing %q", got, name)
		}
	}
}

func TestRegistryRejectsUnknownAndDuplicates(t *testing.T) {
	if _, err := Get("no-such-solver"); err == nil {
		t.Fatal("Get accepted an unknown solver name")
	}
	if err := Register(&saimSolver{}); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
	if err := Register(nil); err == nil {
		t.Fatal("Register accepted a nil solver")
	}
	if _, err := SolveModel(context.Background(), "no-such-solver", smallQKP(t)); err == nil {
		t.Fatal("SolveModel accepted an unknown solver name")
	}
}

// TestBackendsRoundTripQKP is the acceptance check of the unified API:
// all six backends solve the same small QKP through the same Model, every
// result is feasible, and none beats the proven optimum.
func TestBackendsRoundTripQKP(t *testing.T) {
	m := smallQKP(t)
	ctx := context.Background()

	ref, err := SolveModel(ctx, "exact", m)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Infeasible() || !ref.Optimal {
		t.Fatalf("exact: infeasible=%v optimal=%v", ref.Infeasible(), ref.Optimal)
	}
	opt := ref.Cost

	opts := []Option{
		WithIterations(300), WithSweepsPerRun(200), WithEta(2), WithSeed(5),
	}
	for _, name := range Solvers() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Accepts(m.Form()) {
			t.Fatalf("solver %q does not accept %v", name, m.Form())
		}
		res, err := s.Solve(ctx, m, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Solver != name {
			t.Fatalf("%s: result labeled %q", name, res.Solver)
		}
		if res.Infeasible() {
			t.Fatalf("%s: no feasible assignment", name)
		}
		cost, feasible, err := m.Evaluate(res.Assignment)
		if err != nil || !feasible {
			t.Fatalf("%s: assignment not feasible (err=%v)", name, err)
		}
		if cost != res.Cost {
			t.Fatalf("%s: reported cost %v, evaluated %v", name, res.Cost, cost)
		}
		if res.Cost < opt-1e-9 {
			t.Fatalf("%s: cost %v beats proven optimum %v", name, res.Cost, opt)
		}
	}
}

// TestCancellationReturnsBestSoFar proves ctx aborts a long solve within
// one annealing run and still returns the best feasible assignment found.
func TestCancellationReturnsBestSoFar(t *testing.T) {
	m := smallQKP(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const total = 1_000_000 // would take minutes uncancelled
	start := time.Now()
	res, err := SolveModel(ctx, "saim", m,
		WithIterations(total), WithSweepsPerRun(100), WithEta(2), WithSeed(3),
		WithProgress(func(p Progress) {
			if p.Iteration >= 20 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, StopCancelled)
	}
	if res.Iterations >= total/100 {
		t.Fatalf("executed %d iterations, cancellation was not prompt", res.Iterations)
	}
	if res.Infeasible() {
		t.Fatal("cancelled solve lost the best-so-far assignment")
	}
	if _, feasible, _ := m.Evaluate(res.Assignment); !feasible {
		t.Fatal("best-so-far assignment is not feasible")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

func TestPreCancelledContext(t *testing.T) {
	m := smallQKP(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveModel(ctx, "saim", m, WithIterations(1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopCancelled || res.Iterations != 0 {
		t.Fatalf("Stopped=%v Iterations=%d, want immediate cancellation", res.Stopped, res.Iterations)
	}
	if !res.Infeasible() {
		t.Fatal("zero-iteration solve cannot have found an assignment")
	}
}

func TestProgressStreams(t *testing.T) {
	m := smallQKP(t)
	var events []Progress
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(30), WithSweepsPerRun(50), WithEta(2), WithSeed(1),
		WithProgress(func(p Progress) { events = append(events, p) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 30 {
		t.Fatalf("got %d progress events, want 30", len(events))
	}
	last := events[len(events)-1]
	if last.Solver != "saim" || last.Iteration != 29 || last.Iterations != 30 {
		t.Fatalf("last event = %+v", last)
	}
	if last.Sweeps != res.Sweeps {
		t.Fatalf("progress sweeps %d, result sweeps %d", last.Sweeps, res.Sweeps)
	}
	if last.LambdaNorm < 0 || math.IsNaN(last.LambdaNorm) {
		t.Fatalf("bad lambda norm %v", last.LambdaNorm)
	}
	for i := 1; i < len(events); i++ {
		if events[i].BestCost > events[i-1].BestCost {
			t.Fatal("best cost regressed in the progress stream")
		}
	}
}

func TestTargetCostStopsEarly(t *testing.T) {
	m := smallQKP(t)
	// Any feasible solution at all satisfies a target of 0 (all values are
	// positive, so feasible costs are negative).
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(100000), WithSweepsPerRun(100), WithEta(2), WithSeed(2),
		WithTargetCost(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopTarget {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, StopTarget)
	}
	if res.Iterations >= 100000 {
		t.Fatal("target did not stop the solve early")
	}
	if res.Infeasible() || res.Cost > -1 {
		t.Fatalf("target result: cost %v", res.Cost)
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	m := smallQKP(t)
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(100000), WithSweepsPerRun(100), WithEta(2), WithSeed(2),
		WithPatience(25),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopPatience {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, StopPatience)
	}
	if res.Iterations >= 100000 {
		t.Fatal("patience did not stop the solve early")
	}
}

func TestFormGating(t *testing.T) {
	// Unconstrained model: only "saim" accepts it.
	b := NewBuilder(3)
	b.Linear(0, -1).Linear(1, -1).Quadratic(0, 1, 2)
	unconstrained, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained.Form() != FormUnconstrained {
		t.Fatalf("Form = %v", unconstrained.Form())
	}
	for _, name := range []string{"penalty", "pt", "ga", "greedy", "exact"} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Accepts(FormUnconstrained) {
			t.Fatalf("%s claims to accept unconstrained models", name)
		}
		if _, err := s.Solve(context.Background(), unconstrained); err == nil {
			t.Fatalf("%s solved an unconstrained model", name)
		} else if !strings.Contains(err.Error(), "does not accept") {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
	}

	// High-order model: likewise saim-only.
	hb := NewBuilder(4)
	hb.Term(-1, 0, 1, 2)
	hb.ConstrainPolyEQ(Monomial{W: 1, Vars: []int{0, 1}}, Monomial{W: -1})
	high, err := hb.Model()
	if err != nil {
		t.Fatal(err)
	}
	if high.Form() != FormHighOrder {
		t.Fatalf("Form = %v", high.Form())
	}
	if _, err := SolveModel(context.Background(), "pt", high); err == nil {
		t.Fatal("pt solved a high-order model")
	}
	res, err := SolveModel(context.Background(), "saim", high,
		WithPenalty(2), WithEta(0.5), WithIterations(100), WithSweepsPerRun(100), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("saim found no feasible high-order assignment")
	}
	if res.Assignment[0] != 1 || res.Assignment[1] != 1 {
		t.Fatalf("constraint x0*x1=1 violated: %v", res.Assignment)
	}
}

// TestUnconstrainedSolve checks the saim backend's unconstrained path end
// to end, including target-based early stopping in raw (un-normalized)
// units.
func TestUnconstrainedSolve(t *testing.T) {
	// E = 2x0x1 − x0 − x1: minima at (1,0)/(0,1) with energy −1.
	b := NewBuilder(2)
	b.Linear(0, -1).Linear(1, -1).Quadratic(0, 1, 2)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(500), WithSweepsPerRun(100), WithSeed(1), WithTargetCost(-1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != -1 {
		t.Fatalf("Cost = %v, want -1", res.Cost)
	}
	if res.Stopped != StopTarget {
		t.Fatalf("Stopped = %v, want target (raw-unit target must map into normalized energies)", res.Stopped)
	}
	if res.Assignment[0]+res.Assignment[1] != 1 {
		t.Fatalf("Assignment = %v", res.Assignment)
	}
}

// TestGAQuadraticFitness verifies the generalized GA optimizes the *true*
// quadratic value, not just the linear part: two cheap synergistic items
// must beat one individually-better item.
func TestGAQuadraticFitness(t *testing.T) {
	// Items 0,1: value 3 each, pair bonus 10; item 2: value 9.
	// Capacity admits {0,1} (weights 1+1=2) or {2} (weight 2).
	b := NewBuilder(3)
	b.Linear(0, -3).Linear(1, -3).Linear(2, -9)
	b.Quadratic(0, 1, -10)
	b.ConstrainLE([]float64{1, 1, 2}, 2)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(context.Background(), "ga", m, WithSeed(4), WithIterations(50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() || res.Cost != -16 {
		t.Fatalf("ga cost = %v, want -16 (items 0+1 with synergy)", res.Cost)
	}
}

func TestCombinatorialBackendsRejectNonIntegerData(t *testing.T) {
	b := NewBuilder(2)
	b.Linear(0, -1.5).Linear(1, -2)
	b.ConstrainLE([]float64{1, 1}, 1)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ga", "greedy", "exact"} {
		if _, err := SolveModel(context.Background(), name, m); err == nil {
			t.Fatalf("%s accepted non-integer knapsack data", name)
		}
	}
	// The sampling backends are unaffected by fractional data.
	res, err := SolveModel(context.Background(), "saim", m,
		WithIterations(100), WithSweepsPerRun(100), WithEta(1), WithSeed(1))
	if err != nil || res.Infeasible() {
		t.Fatalf("saim on fractional data: res=%+v err=%v", res, err)
	}
}

// TestBuilderReuseDoesNotMutateModel guards the documented guarantee that
// further builder mutations leave already-built models untouched.
func TestBuilderReuseDoesNotMutateModel(t *testing.T) {
	b := NewBuilder(2)
	b.Linear(0, -3).Linear(1, -4)
	b.ConstrainLE([]float64{1, 1}, 2)
	m1, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	b.ConstrainLE([]float64{1, 1}, 1) // tighter second constraint
	m2, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m1.NumConstraints() != 1 || m2.NumConstraints() != 2 {
		t.Fatalf("constraints: m1=%d m2=%d, want 1 and 2", m1.NumConstraints(), m2.NumConstraints())
	}
	if _, feasible, _ := m1.Evaluate([]int{1, 1}); !feasible {
		t.Fatal("builder reuse mutated the first model's constraint system")
	}
	if _, feasible, _ := m2.Evaluate([]int{1, 1}); feasible {
		t.Fatal("second model missing the tighter constraint")
	}
}

func TestReplicasRejectedOffConstrainedForm(t *testing.T) {
	b := NewBuilder(2)
	b.Linear(0, -1).Linear(1, -1).Quadratic(0, 1, 2)
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveModel(context.Background(), "saim", m, WithReplicas(4)); err == nil {
		t.Fatal("saim accepted WithReplicas on an unconstrained model")
	}
}

func TestHighOrderReportsSweeps(t *testing.T) {
	b := NewBuilder(3)
	b.Linear(2, -1)
	b.ConstrainPolyEQ(Monomial{W: 1, Vars: []int{0, 1}}, Monomial{W: -1})
	m, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(context.Background(), "saim", m,
		WithPenalty(2), WithIterations(20), WithSweepsPerRun(30), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 20*30 {
		t.Fatalf("high-order Sweeps = %d, want %d", res.Sweeps, 20*30)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	b := NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)
	b.ConstrainLE([]float64{2, 3, 4}, 5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, Options{Iterations: 150, SweepsPerRun: 150, Eta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != -11 {
		t.Fatalf("wrapper Solve cost = %v, want -11", res.Cost)
	}
	if res.Solver != "saim" {
		t.Fatalf("wrapper result labeled %q", res.Solver)
	}
	par, err := SolveParallel(p, Options{Iterations: 60, SweepsPerRun: 100, Eta: 1, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if par.Iterations != 180 {
		t.Fatalf("SolveParallel iterations = %d, want 180", par.Iterations)
	}
	if _, err := SolveParallel(p, Options{}, 0); err == nil {
		t.Fatal("SolveParallel accepted zero replicas")
	}
}
