package saim

import (
	"context"
	"fmt"
	"sync"
)

// --------------------------------------------------------------- race ---

// raceSolver runs several registered backends concurrently on the same
// model and merges their results. With WithTargetCost set, the first
// backend to reach the target cancels the rest — the race answers "which
// solver gets there first" with wall-clock effect; without a target every
// racer runs its budget and the best feasible result wins (ties broken by
// racer order, so results are deterministic given deterministic racers).
//
// WithRacers picks the field explicitly; the default is every registered
// backend accepting the model's form except the meta-solvers (race
// itself, decomp — which would recursively fan out). All other options
// are passed through to every racer unchanged, so seeds, budgets, and the
// time limit apply per racer. A racer that errors (e.g. a combinatorial
// backend handed a non-knapsack model) is dropped from the race; the race
// errors only when every racer does.
//
// Results are not deterministic across runs when no target is set and two
// racers tie in cost only approximately — but for a fixed field and seed
// each racer's own result is reproducible, and the merge is a pure
// function of those. See DESIGN.md §7.4 for the determinism caveats under
// target races.
type raceSolver struct{}

func (*raceSolver) Name() string        { return "race" }
func (*raceSolver) Accepts(f Form) bool { return true }

// raceDefaultExclude names the backends never auto-entered into a race:
// the meta-solvers, whose own fan-out would multiply the field.
var raceDefaultExclude = map[string]bool{"race": true, "decomp": true}

// racers resolves the field for a model form.
func (s *raceSolver) racers(cfg config, form Form) ([]Solver, error) {
	var names []string
	if len(cfg.racers) > 0 {
		names = cfg.racers
	} else {
		for _, name := range Solvers() {
			if raceDefaultExclude[name] {
				continue
			}
			names = append(names, name)
		}
	}
	var field []Solver
	for _, name := range names {
		if name == s.Name() {
			return nil, fmt.Errorf("saim: race cannot race itself")
		}
		sv, err := Get(name)
		if err != nil {
			return nil, err
		}
		if !sv.Accepts(form) {
			if len(cfg.racers) > 0 {
				return nil, fmt.Errorf("saim: racer %q does not accept %v models", name, form)
			}
			continue // auto-selected field: silently skip incompatible backends
		}
		field = append(field, sv)
	}
	if len(field) == 0 {
		return nil, fmt.Errorf("saim: no racer accepts %v models", form)
	}
	return field, nil
}

func (s *raceSolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	field, err := s.racers(cfg, m.form)
	if err != nil {
		return nil, err
	}

	// The deadline wraps the whole race; each racer additionally derives
	// its own identical deadline from the passed-through options, so both
	// layers agree on when time is up.
	ctx, cancelDL, stamp := deadline(ctx, cfg)
	defer cancelDL()
	// A target-reaching racer cancels its rivals so the early stop has
	// wall-clock effect.
	ctx, cancelRivals := context.WithCancel(ctx)
	defer cancelRivals()

	// Serialize progress from all racers through one callback (the
	// WithProgress contract); each racer's stream already carries its own
	// Solver name, so a dashboard can demultiplex the race.
	raceOpts := opts
	if cfg.progress != nil {
		var mu sync.Mutex
		emit := cfg.progress
		raceOpts = append(append([]Option(nil), opts...), WithProgress(func(p Progress) {
			mu.Lock()
			emit(p)
			mu.Unlock()
		}))
	}

	results := make([]*Result, len(field))
	errs := make([]error, len(field))
	var wg sync.WaitGroup
	for i, sv := range field {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = sv.Solve(ctx, m, raceOpts...)
			if results[i] != nil && results[i].Stopped == StopTarget {
				cancelRivals()
			}
		}()
	}
	wg.Wait()

	var best *Result
	for i, res := range results {
		if errs[i] != nil || res == nil {
			continue
		}
		if best == nil {
			best = res
			continue
		}
		// Prefer the target-reaching racer outright, then the best
		// feasible cost; earlier racers win ties.
		switch {
		case res.Stopped == StopTarget && best.Stopped != StopTarget:
			best = res
		case best.Stopped == StopTarget:
		case res.Cost < best.Cost:
			best = res
		}
	}
	if best == nil {
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("saim: every racer failed; first error: %w", err)
			}
		}
		return nil, fmt.Errorf("saim: race produced no result")
	}

	// Merge fleet totals so the race reports the true spend, and name the
	// winner so callers can see who crossed the line.
	out := *best
	out.Winner = out.Solver
	out.Solver = "race"
	out.Sweeps = 0
	out.Iterations = 0
	for i, res := range results {
		if errs[i] != nil || res == nil {
			continue
		}
		out.Sweeps += res.Sweeps
		out.Iterations += res.Iterations
	}
	// Rivals stopped by the winner's cancellation shouldn't surface as a
	// caller cancellation; the winner's own stop reason stands, with the
	// deadline stamp correcting a timed-out field. One refinement: when
	// the winner completed its budget but any rival was cut off by the
	// time limit, the race as a whole was time-bound — its wall clock ran
	// to the deadline — so that is what the merged result reports. A
	// rival cut off by the deadline can carry either StopTimeLimit (its
	// own derived deadline fired first) or StopCancelled (the race's
	// outer deadline won the timer race and cancelled it via its parent);
	// stamp(StopCancelled) tells which world we are in.
	out.Stopped = stamp(out.Stopped)
	if out.Stopped == StopCompleted {
		deadlineFired := stamp(StopCancelled) == StopTimeLimit
		for i, res := range results {
			if errs[i] != nil || res == nil {
				continue
			}
			if res.Stopped == StopTimeLimit || (deadlineFired && res.Stopped == StopCancelled) {
				out.Stopped = StopTimeLimit
				break
			}
		}
	}
	return &out, nil
}
