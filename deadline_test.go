package saim_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/testkit"
	"github.com/ising-machines/saim/model"
)

// deadlineCase pairs a backend with a model and a budget that would run
// far past any test deadline, so the only ways home are the time limit or
// a legitimately instant completion (greedy, a lucky exact proof).
type deadlineCase struct {
	name   string
	solver string
	build  func(t *testing.T) *saim.Model
	opts   []saim.Option
}

// compiled compiles a testkit model or fails the test.
func compiled(t *testing.T, m *model.Model) *saim.Model {
	t.Helper()
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// deadlineCases enumerates every registered backend (and, for saim, every
// model form it accepts) with a budget of millions of iterations.
func deadlineCases() []deadlineCase {
	huge := []saim.Option{
		saim.WithSeed(13),
		saim.WithIterations(2_000_000),
		saim.WithSweepsPerRun(200),
	}
	knap := func(t *testing.T) *saim.Model {
		return compiled(t, testkit.RandomKnapsack(60, 0.3, rng.New(5)))
	}
	qubo := func(t *testing.T) *saim.Model {
		return compiled(t, testkit.RandomQUBO(120, 0.3, rng.New(6)))
	}
	return []deadlineCase{
		{"saim-constrained", "saim", knap, huge},
		{"saim-unconstrained", "saim", qubo, huge},
		{"saim-highorder", "saim", func(t *testing.T) *saim.Model {
			return compiled(t, testkit.RandomHighOrder(12, rng.New(7)))
		}, huge},
		{"penalty", "penalty", knap, huge},
		{"pt", "pt", knap, huge},
		{"ga", "ga", knap, huge},
		{"greedy", "greedy", knap, nil},
		{"exact", "exact", func(t *testing.T) *saim.Model {
			// A dense 200-item quadratic knapsack: the optimistic Dantzig
			// bound is weak there, so branch and bound churns far past any
			// millisecond-scale deadline.
			return compiled(t, testkit.RandomKnapsack(200, 0.5, rng.New(8)))
		}, nil},
		{"decomp", "decomp", qubo, []saim.Option{
			saim.WithSeed(13),
			saim.WithIterations(500),
			saim.WithSweepsPerRun(1000),
			saim.WithRounds(1_000_000),
		}},
		{"race", "race", knap, huge},
	}
}

// TestDeadlineDisciplineAllBackends is the differential deadline test:
// every registered backend, handed a budget it cannot possibly finish,
// must return within a small multiple of its WithTimeLimit, report
// StopTimeLimit (or have genuinely completed before the deadline), and
// hand back a self-consistent best-so-far result. The subtests run in
// parallel, so under -race this also hammers the deadline paths
// concurrently.
func TestDeadlineDisciplineAllBackends(t *testing.T) {
	const limit = 300 * time.Millisecond
	// CI boxes stall under -race and parallel subtests; the bound guards
	// against unresponsive backends (seconds), not scheduler jitter.
	const returnBudget = 20 * time.Second

	cases := deadlineCases()
	// Every registry entry must be covered, so a future backend cannot
	// silently skip deadline discipline.
	covered := map[string]bool{}
	for _, c := range cases {
		covered[c.solver] = true
	}
	for _, name := range saim.Solvers() {
		if !covered[name] {
			t.Fatalf("registered solver %q has no deadline case", name)
		}
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			m := c.build(t)
			opts := append(append([]saim.Option(nil), c.opts...), saim.WithTimeLimit(limit))
			start := time.Now()
			res, err := saim.SolveModel(context.Background(), c.solver, m, opts...)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("%s: %v", c.solver, err)
			}
			if elapsed > returnBudget {
				t.Fatalf("%s: returned after %v with a %v limit", c.solver, elapsed, limit)
			}
			switch res.Stopped {
			case saim.StopTimeLimit:
				// The expected outcome for the heavy budgets.
			case saim.StopCompleted:
				// Legal only when the backend genuinely beat the deadline
				// (greedy always does; exact may prove optimality early).
				if elapsed > limit {
					t.Fatalf("%s: reports completion but ran %v > limit %v", c.solver, elapsed, limit)
				}
			default:
				t.Fatalf("%s: Stopped = %v, want time-limit (or completed under the limit)", c.solver, res.Stopped)
			}
			// Best-so-far discipline: any returned assignment must
			// re-evaluate to the reported cost and be feasible.
			if res.Assignment != nil {
				cost, feasible, err := m.Evaluate(res.Assignment)
				if err != nil || !feasible {
					t.Fatalf("%s: best-so-far not feasible (err=%v)", c.solver, err)
				}
				if cost != res.Cost {
					t.Fatalf("%s: reported cost %v, evaluated %v", c.solver, res.Cost, cost)
				}
			}
		})
	}
}

// TestDeadlineLosesToEarlierContext pins precedence: a context that
// expires before the WithTimeLimit deadline must surface as StopCancelled
// (the caller's deadline), not StopTimeLimit.
func TestDeadlineLosesToEarlierContext(t *testing.T) {
	m := compiled(t, testkit.RandomKnapsack(40, 0.3, rng.New(9)))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := saim.SolveModel(ctx, "saim", m,
		saim.WithSeed(1),
		saim.WithIterations(2_000_000),
		saim.WithSweepsPerRun(200),
		saim.WithTimeLimit(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != saim.StopCancelled {
		t.Fatalf("Stopped = %v, want cancelled (caller's context fired first)", res.Stopped)
	}
}

// TestTimeLimitStopReasonString pins the public vocabulary.
func TestTimeLimitStopReasonString(t *testing.T) {
	if s := fmt.Sprint(saim.StopTimeLimit); s != "time-limit" {
		t.Fatalf("StopTimeLimit prints %q", s)
	}
}
