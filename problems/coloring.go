package problems

import (
	"fmt"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// ColoringProblem is graph k-coloring in one-hot encoding: variable
// "color" holds N·k bits (vertex v gets color c when bit v·k+c is set),
// each vertex carries the named equality constraint "onehot[v]", and the
// objective counts monochromatic edges — a zero-objective feasible
// solution is a proper coloring. Edge weights of the graph are ignored.
type ColoringProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	g     Graph
	k     int
	x     model.Vars
}

// Coloring builds the declarative k-coloring model of the graph.
func Coloring(g Graph, k int) (*ColoringProblem, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("problems: coloring needs k ≥ 1, got %d", k)
	}
	m := model.New()
	x := m.Binary("color", g.N*k)
	idx := func(v, c int) model.Var { return x[v*k+c] }

	terms := make([]model.Expr, 0, len(g.Edges)*k)
	for _, e := range g.Edges {
		for c := 0; c < k; c++ {
			terms = append(terms, idx(e.U, c).Times(idx(e.V, c)))
		}
	}
	m.Minimize(model.Sum(terms...))

	for v := 0; v < g.N; v++ {
		row := make(model.Vars, k)
		for c := 0; c < k; c++ {
			row[c] = idx(v, c)
		}
		m.Constrain(fmt.Sprintf("onehot[%d]", v), row.Sum().EQ(1))
	}
	return &ColoringProblem{Model: m, g: g, k: k, x: x}, nil
}

// Recommended returns coloring-appropriate solver settings (small penalty,
// unit step, cold anneal), matching the reproduction's coloring defaults.
func (p *ColoringProblem) Recommended() []saim.Option {
	return []saim.Option{
		saim.WithPenalty(2), saim.WithEta(1), saim.WithBetaMax(20),
		saim.WithIterations(300), saim.WithSweepsPerRun(300),
	}
}

// Colors decodes the one-hot assignment into one color per vertex. ok is
// false when the solution is infeasible or some vertex is not exactly
// one-hot.
func (p *ColoringProblem) Colors(sol *model.Solution) (colors []int, ok bool) {
	if !sol.Feasible() {
		return nil, false
	}
	bits := sol.Values("color")
	colors = make([]int, p.g.N)
	for v := 0; v < p.g.N; v++ {
		found := -1
		for c := 0; c < p.k; c++ {
			if bits[v*p.k+c] == 1 {
				if found >= 0 {
					return nil, false
				}
				found = c
			}
		}
		if found < 0 {
			return nil, false
		}
		colors[v] = found
	}
	return colors, true
}

// Conflicts counts monochromatic edges under a color assignment.
func (p *ColoringProblem) Conflicts(colors []int) int {
	n := 0
	for _, e := range p.g.Edges {
		if colors[e.U] == colors[e.V] {
			n++
		}
	}
	return n
}
