package problems_test

import (
	"context"
	"math"
	"testing"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/maxcut"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/problems"
)

var ctx = context.Background()

// solve runs the model with the problem's recommended options plus a seed.
func solve(t *testing.T, m *model.Model, solver string, opts []saim.Option, extra ...saim.Option) *model.Solution {
	t.Helper()
	sol, err := m.Solve(ctx, solver, append(append([]saim.Option{}, opts...), extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestKnapsackAgainstExact(t *testing.T) {
	spec := problems.KnapsackSpec{
		Values:     []float64{60, 100, 120, 70, 80, 50, 90, 110},
		Weights:    [][]float64{{10, 20, 30, 15, 18, 9, 21, 27}},
		Capacities: []float64{70},
	}
	p, err := problems.Knapsack(spec)
	if err != nil {
		t.Fatal(err)
	}
	exact := solve(t, p.Model, "exact", nil)
	if !exact.Result().Optimal {
		t.Fatal("exact did not prove optimality")
	}
	sol := solve(t, p.Model, "saim", p.Recommended(),
		saim.WithIterations(300), saim.WithSweepsPerRun(200), saim.WithSeed(2))
	if !sol.Feasible() {
		t.Fatal("saim found no packing")
	}
	if sol.Objective() != exact.Objective() {
		t.Fatalf("saim value %v, exact optimum %v", sol.Objective(), exact.Objective())
	}
	// Decoder agrees with the report.
	items := p.Selected(sol)
	wt := 0.0
	for _, i := range items {
		wt += spec.Weights[0][i]
	}
	cs := sol.Constraints()[0]
	if cs.Name != "capacity" || cs.Activity != wt || !cs.Satisfied {
		t.Fatalf("capacity status %+v (weight %v)", cs, wt)
	}
}

func TestQuadraticKnapsack(t *testing.T) {
	n := 6
	pair := make([][]float64, n)
	for i := range pair {
		pair[i] = make([]float64, n)
	}
	pair[0][1], pair[1][0] = 30, 30
	pair[2][4], pair[4][2] = 25, 25
	spec := problems.KnapsackSpec{
		Values:     []float64{10, 15, 20, 12, 18, 9},
		PairValues: pair,
		Weights:    [][]float64{{4, 5, 6, 3, 5, 2}},
		Capacities: []float64{14},
		Density:    0.15,
	}
	p, err := problems.Knapsack(spec)
	if err != nil {
		t.Fatal(err)
	}
	exact := solve(t, p.Model, "exact", nil)
	if !exact.Result().Optimal {
		t.Fatal("exact did not prove optimality")
	}
	// The paper's η=20 is tuned for N=100–300 QKP instances; on this tiny
	// one a gentler multiplier step is robust across seeds (later options
	// override earlier ones, the intended way to adapt Recommended).
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithEta(2),
		saim.WithIterations(400), saim.WithSweepsPerRun(200), saim.WithSeed(4))
	if sol.Objective() != exact.Objective() {
		t.Fatalf("saim value %v, exact optimum %v", sol.Objective(), exact.Objective())
	}
}

func TestMaxCutAgainstExhaustive(t *testing.T) {
	g := problems.RingChordsGraph(12, 3, 2)
	p, err := problems.MaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive reference via the internal oracle on the same graph.
	ref := maxcut.NewGraph(g.N)
	for _, e := range g.Edges {
		ref.AddEdge(e.U, e.V, e.W)
	}
	_, best, err := maxcut.ExactMaxCut(ref)
	if err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithSeed(3))
	if got := p.CutValue(sol); got != best {
		t.Fatalf("cut %v, optimum %v", got, best)
	}
	left, right := p.Partition(sol)
	if len(left)+len(right) != g.N {
		t.Fatalf("partition sizes %d + %d != %d", len(left), len(right), g.N)
	}
}

func TestColoringEvenCycle(t *testing.T) {
	g := problems.Graph{N: 8}
	for i := 0; i < g.N; i++ {
		g.Edges = append(g.Edges, problems.Edge{U: i, V: (i + 1) % g.N, W: 1})
	}
	p, err := problems.Coloring(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithSeed(6))
	colors, ok := p.Colors(sol)
	if !ok {
		t.Fatal("no one-hot coloring decoded")
	}
	if c := p.Conflicts(colors); c != 0 {
		t.Fatalf("%d conflicts on an even cycle with 2 colors", c)
	}
	if sol.Objective() != 0 {
		t.Fatalf("objective %v, want 0 (proper coloring)", sol.Objective())
	}
}

func TestAssignmentAgainstHungarian(t *testing.T) {
	cost := [][]float64{
		{4, 2, 8, 7},
		{3, 9, 5, 6},
		{7, 1, 4, 5},
		{6, 3, 2, 8},
	}
	p, err := problems.Assignment(cost)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := problems.Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithSeed(8))
	perm, ok := p.Permutation(sol)
	if !ok {
		t.Fatal("no permutation decoded")
	}
	total := 0.0
	for i, j := range perm {
		total += cost[i][j]
	}
	if total != opt || sol.Objective() != opt {
		t.Fatalf("assignment cost %v (objective %v), Hungarian optimum %v", total, sol.Objective(), opt)
	}
}

func TestShiftScheduling(t *testing.T) {
	spec := problems.ShiftSpec{
		Rates:          []float64{52, 48, 61, 45, 38, 41},
		CrewSize:       3,
		CertifiedPairs: [][2]int{{0, 1}, {2, 3}},
		RequiredPairs:  1,
	}
	p, err := problems.ShiftScheduling(spec)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Model.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Form() != saim.FormHighOrder {
		t.Fatalf("form %v, want high-order", compiled.Form())
	}
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithSeed(21))
	crew := p.Crew(sol)
	if len(crew) != 3 {
		t.Fatalf("crew %v, want 3 workers", crew)
	}
	on := map[int]bool{}
	for _, i := range crew {
		on[i] = true
	}
	pairs := 0
	if on[0] && on[1] {
		pairs++
	}
	if on[2] && on[3] {
		pairs++
	}
	if pairs != 1 {
		t.Fatalf("crew %v has %d certified pairs, want 1", crew, pairs)
	}
	// The cheapest certified 3-crew: pair (2,3) costs 61+45, cheapest
	// third is emil(38) → 144; pair (0,1) is 100, third must not complete
	// the other pair... emil(38) → 138. Optimum 138.
	if p.TotalRate(sol) != 138 {
		t.Fatalf("total rate %v, want 138", p.TotalRate(sol))
	}
}

func TestPortfolioAgainstExhaustive(t *testing.T) {
	spec := problems.RandomPortfolio(10, 3, 1.0, 77)
	p, err := problems.Portfolio(spec)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Model.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive reference over 2^10 assignments.
	best := math.Inf(1)
	asn := make([]int, 10)
	for mask := 0; mask < 1<<10; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		cost, feas, err := compiled.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if feas && cost < best {
			best = cost
		}
	}
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithSeed(9))
	if !sol.Feasible() {
		t.Fatal("no feasible portfolio")
	}
	if math.Abs(sol.Objective()-best) > 1e-9 {
		t.Fatalf("portfolio cost %v, exhaustive optimum %v", sol.Objective(), best)
	}
	if p.Spend(sol) > spec.Budget {
		t.Fatalf("spend %v over budget %v", p.Spend(sol), spec.Budget)
	}
}

func TestSetCoverSolvesToOptimum(t *testing.T) {
	spec := problems.SetCoverSpec{
		NumElements: 5,
		Sets: [][]int{
			{0, 1},
			{1, 2, 3},
			{0, 3},
			{2, 4},
			{3, 4},
		},
		Costs: []float64{3, 4, 2, 2, 3},
	}
	p, err := problems.SetCover(spec)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Model.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force optimum over 2^5 selections.
	best := math.Inf(1)
	asn := make([]int, 5)
	for mask := 0; mask < 1<<5; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		cost, feas, err := compiled.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if feas && cost < best {
			best = cost
		}
	}
	sol := solve(t, p.Model, "saim", p.Recommended(), saim.WithSeed(10))
	if !sol.Feasible() {
		t.Fatal("no feasible cover")
	}
	if sol.Objective() != best {
		t.Fatalf("cover cost %v, optimum %v", sol.Objective(), best)
	}
	// Decoder covers every element.
	chosen := p.Chosen(sol)
	covered := make([]bool, spec.NumElements)
	for _, j := range chosen {
		for _, e := range spec.Sets[j] {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			t.Fatalf("element %d uncovered by %v", e, chosen)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := problems.Knapsack(problems.KnapsackSpec{Values: []float64{1}}); err == nil {
		t.Fatal("knapsack without constraints should fail")
	}
	if _, err := problems.SetCover(problems.SetCoverSpec{NumElements: 2, Sets: [][]int{{0}}}); err == nil {
		t.Fatal("uncoverable element should fail")
	}
	if _, err := problems.Coloring(problems.Graph{N: 2, Edges: []problems.Edge{{U: 0, V: 0}}}, 2); err == nil {
		t.Fatal("self-loop should fail")
	}
	if _, err := problems.Assignment([][]float64{{1, 2}}); err == nil {
		t.Fatal("non-square cost should fail")
	}
	if _, err := problems.ShiftScheduling(problems.ShiftSpec{Rates: []float64{1}, CrewSize: 2}); err == nil {
		t.Fatal("oversized crew should fail")
	}
	if _, err := problems.Portfolio(problems.PortfolioSpec{Returns: []float64{1}, Prices: []float64{1}, Covariance: [][]float64{{-1}}}); err == nil {
		t.Fatal("negative variance should fail")
	}
}
