package problems

import (
	"fmt"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// SetCoverSpec describes weighted set cover: pick the cheapest collection
// of sets covering every element at least once — the catalog's showcase of
// GE (≥) constraints, lowered by negation onto the same slack machinery as
// the knapsack ≤ rows.
type SetCoverSpec struct {
	// NumElements is the universe size; elements are [0, NumElements).
	NumElements int
	// Sets[j] lists the elements covered by set j.
	Sets [][]int
	// Costs[j] is the cost of set j; nil means unit costs.
	Costs []float64
}

// Validate checks ranges and that every element is coverable.
func (s SetCoverSpec) Validate() error {
	if s.NumElements <= 0 {
		return fmt.Errorf("problems: set cover needs NumElements > 0, got %d", s.NumElements)
	}
	if len(s.Sets) == 0 {
		return fmt.Errorf("problems: set cover needs at least one set")
	}
	if s.Costs != nil && len(s.Costs) != len(s.Sets) {
		return fmt.Errorf("problems: %d costs for %d sets", len(s.Costs), len(s.Sets))
	}
	covered := make([]bool, s.NumElements)
	for j, set := range s.Sets {
		for _, e := range set {
			if e < 0 || e >= s.NumElements {
				return fmt.Errorf("problems: set %d covers element %d outside [0,%d)", j, e, s.NumElements)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("problems: element %d is covered by no set (unsatisfiable)", e)
		}
	}
	for j, c := range s.Costs {
		if c < 0 {
			return fmt.Errorf("problems: negative cost %v for set %d", c, j)
		}
	}
	return nil
}

// SetCoverProblem is a built set cover: the declarative model plus its
// decoder. Variables are the family "pick"; each element e carries the
// named constraint "cover[e]" requiring coverage ≥ 1.
type SetCoverProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	spec  SetCoverSpec
	x     model.Vars
}

// SetCover builds the declarative model of the spec.
func SetCover(spec SetCoverSpec) (*SetCoverProblem, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := len(spec.Sets)
	costs := spec.Costs
	if costs == nil {
		costs = make([]float64, n)
		for j := range costs {
			costs[j] = 1
		}
	}
	m := model.New()
	x := m.Binary("pick", n)
	m.Minimize(model.Dot(costs, x))
	for e := 0; e < spec.NumElements; e++ {
		row := make([]float64, n)
		for j, set := range spec.Sets {
			for _, el := range set {
				if el == e {
					row[j] = 1
				}
			}
		}
		m.Constrain(fmt.Sprintf("cover[%d]", e), model.Dot(row, x).GE(1))
	}
	return &SetCoverProblem{Model: m, spec: spec, x: x}, nil
}

// Recommended returns set-cover-appropriate solver settings.
func (p *SetCoverProblem) Recommended() []saim.Option {
	return []saim.Option{
		saim.WithEta(1), saim.WithAlpha(2), saim.WithBetaMax(20),
		saim.WithIterations(400), saim.WithSweepsPerRun(200),
	}
}

// Chosen returns the indices of the selected sets (nil when infeasible).
func (p *SetCoverProblem) Chosen(sol *model.Solution) []int {
	if !sol.Feasible() {
		return nil
	}
	var out []int
	for j, v := range sol.Values("pick") {
		if v == 1 {
			out = append(out, j)
		}
	}
	return out
}

// TotalCost returns the combined cost of the chosen sets (+Inf when
// infeasible).
func (p *SetCoverProblem) TotalCost(sol *model.Solution) float64 { return sol.Objective() }
