package problems

import (
	"fmt"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// ShiftSpec describes a crew-selection shift scheduling problem: pick the
// cheapest crew of exactly CrewSize workers such that exactly
// RequiredPairs of the certified pairs work together. Certification
// requires two specific people simultaneously — a product term x_i·x_j —
// which makes the pair constraint genuinely quadratic and the model
// high-order (the capability the paper attributes to higher-order Ising
// machines).
type ShiftSpec struct {
	// Rates[i] is the hourly cost of worker i.
	Rates []float64
	// CrewSize is the exact number of workers on shift.
	CrewSize int
	// CertifiedPairs lists worker pairs that certify the shift when both
	// members are scheduled together.
	CertifiedPairs [][2]int
	// RequiredPairs is the exact number of certified pairs that must be
	// fully on shift (commonly 1).
	RequiredPairs int
}

// Validate checks dimensions and ranges.
func (s ShiftSpec) Validate() error {
	n := len(s.Rates)
	if n == 0 {
		return fmt.Errorf("problems: shift needs at least one worker")
	}
	if s.CrewSize < 1 || s.CrewSize > n {
		return fmt.Errorf("problems: crew size %d outside [1,%d]", s.CrewSize, n)
	}
	for i, p := range s.CertifiedPairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n || p[0] == p[1] {
			return fmt.Errorf("problems: bad certified pair %d: (%d,%d)", i, p[0], p[1])
		}
	}
	if s.RequiredPairs < 0 || s.RequiredPairs > len(s.CertifiedPairs) {
		return fmt.Errorf("problems: required pairs %d outside [0,%d]", s.RequiredPairs, len(s.CertifiedPairs))
	}
	return nil
}

// ShiftProblem is a built shift schedule: the declarative model plus its
// decoder. Variables are the family "onshift"; constraints are "crew"
// (exact headcount) and "certified" (exact certified-pair count, present
// only when the spec requires pairs).
type ShiftProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	spec  ShiftSpec
	x     model.Vars
}

// ShiftScheduling builds the declarative model of the spec.
func ShiftScheduling(spec ShiftSpec) (*ShiftProblem, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := model.New()
	x := m.Binary("onshift", len(spec.Rates))
	m.Minimize(model.Dot(spec.Rates, x))
	m.Constrain("crew", x.Sum().EQ(float64(spec.CrewSize)))
	if len(spec.CertifiedPairs) > 0 {
		pairs := model.Const(0)
		for _, p := range spec.CertifiedPairs {
			pairs = pairs.Add(x[p[0]].Times(x[p[1]]))
		}
		m.Constrain("certified", pairs.EQ(float64(spec.RequiredPairs)))
	}
	return &ShiftProblem{Model: m, spec: spec, x: x}, nil
}

// Recommended returns solver settings suited to the high-order machine on
// small crews.
func (p *ShiftProblem) Recommended() []saim.Option {
	return []saim.Option{
		saim.WithPenalty(3), saim.WithEta(0.5),
		saim.WithIterations(300), saim.WithSweepsPerRun(200),
	}
}

// Crew returns the indices of the scheduled workers (nil when infeasible).
func (p *ShiftProblem) Crew(sol *model.Solution) []int {
	if !sol.Feasible() {
		return nil
	}
	var out []int
	for i, v := range sol.Values("onshift") {
		if v == 1 {
			out = append(out, i)
		}
	}
	return out
}

// TotalRate returns the crew's combined hourly cost (+Inf when
// infeasible).
func (p *ShiftProblem) TotalRate(sol *model.Solution) float64 { return sol.Objective() }
