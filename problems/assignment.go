package problems

import (
	"fmt"
	"math"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/assignment"
	"github.com/ising-machines/saim/model"
)

// AssignmentProblem is the linear assignment problem: assign each of n
// workers to exactly one of n jobs, minimizing total cost. Variable
// "assign" holds the n×n one-hot matrix (worker i takes job j when bit
// i·n+j is set); rows carry the named constraints "worker[i]", columns
// "job[j]".
type AssignmentProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	cost  [][]float64
	x     model.Vars
}

// Assignment builds the declarative model of the square cost matrix
// (cost[i][j] = cost of assigning worker i to job j).
func Assignment(cost [][]float64) (*AssignmentProblem, error) {
	n := len(cost)
	if n == 0 {
		return nil, fmt.Errorf("problems: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("problems: cost row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("problems: cost[%d][%d] not finite", i, j)
			}
		}
	}
	m := model.New()
	x := m.Binary("assign", n*n)
	idx := func(i, j int) model.Var { return x[i*n+j] }

	terms := make([]model.Expr, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cost[i][j] != 0 {
				terms = append(terms, idx(i, j).Mul(cost[i][j]))
			}
		}
	}
	m.Minimize(model.Sum(terms...))

	for i := 0; i < n; i++ {
		row := make(model.Vars, n)
		for j := 0; j < n; j++ {
			row[j] = idx(i, j)
		}
		m.Constrain(fmt.Sprintf("worker[%d]", i), row.Sum().EQ(1))
	}
	for j := 0; j < n; j++ {
		col := make(model.Vars, n)
		for i := 0; i < n; i++ {
			col[i] = idx(i, j)
		}
		m.Constrain(fmt.Sprintf("job[%d]", j), col.Sum().EQ(1))
	}
	return &AssignmentProblem{Model: m, cost: cost, x: x}, nil
}

// Recommended returns assignment-appropriate solver settings, matching the
// reproduction's LAP defaults.
func (p *AssignmentProblem) Recommended() []saim.Option {
	return []saim.Option{
		saim.WithPenalty(2), saim.WithEta(1), saim.WithBetaMax(20),
		saim.WithIterations(400), saim.WithSweepsPerRun(300),
	}
}

// Permutation decodes the one-hot matrix into perm (perm[i] = job of
// worker i). ok is false when the solution is infeasible or not a
// permutation matrix.
func (p *AssignmentProblem) Permutation(sol *model.Solution) (perm []int, ok bool) {
	if !sol.Feasible() {
		return nil, false
	}
	n := len(p.cost)
	bits := sol.Values("assign")
	perm = make([]int, n)
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		found := -1
		for j := 0; j < n; j++ {
			if bits[i*n+j] == 1 {
				if found >= 0 {
					return nil, false
				}
				found = j
			}
		}
		if found < 0 || used[found] {
			return nil, false
		}
		used[found] = true
		perm[i] = found
	}
	return perm, true
}

// Hungarian solves the linear assignment problem exactly in O(n³) and
// returns the optimal permutation and its cost — the reference the paper's
// assignment experiments gap against.
func Hungarian(cost [][]float64) ([]int, float64, error) {
	return assignment.Hungarian(assignment.Cost(cost))
}
