// Package problems is the public catalog of ready-made optimization
// workloads for the saim library: knapsack (linear, quadratic, and
// multidimensional), max-cut, graph coloring, linear assignment, shift
// scheduling, portfolio selection, and set cover. Each constructor
// validates a plain spec, builds the declarative model (package model)
// with named variables and named constraints, and pairs it with a typed
// decoder, so callers go from domain data to solver and back without
// touching variable indices:
//
//	p, err := problems.Knapsack(problems.KnapsackSpec{
//	    Values:     values,
//	    Weights:    [][]float64{weights},
//	    Capacities: []float64{capacity},
//	})
//	sol, err := p.Model.Solve(ctx, "saim", p.Recommended()...)
//	items := p.Selected(sol)
//
// Every problem exposes its declarative model directly — add extra
// constraints or swap the objective before solving — plus Recommended,
// the paper-derived solver options for the domain.
package problems

import (
	"fmt"

	"github.com/ising-machines/saim/internal/maxcut"
)

// Edge is one weighted undirected edge of a Graph.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph on vertices [0, N), shared by the
// max-cut and coloring constructors (coloring ignores the weights).
type Graph struct {
	N     int
	Edges []Edge
}

// Validate checks vertex ranges and rejects self-loops.
func (g Graph) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("problems: graph needs N > 0, got %d", g.N)
	}
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return fmt.Errorf("problems: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("problems: edge %d is a self-loop at %d", i, e.U)
		}
	}
	return nil
}

// RandomGraph draws a G(n, p) random graph with uniform integer weights in
// [1, maxW], deterministically from seed.
func RandomGraph(n int, p float64, maxW int, seed uint64) Graph {
	g := maxcut.ErdosRenyi(n, p, maxW, seed)
	out := Graph{N: g.N, Edges: make([]Edge, len(g.Edges))}
	for i, e := range g.Edges {
		out.Edges[i] = Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// RingChordsGraph builds a connected ring of n vertices plus a chord from
// every k-th vertex to its antipode — a deterministic benchmark topology.
func RingChordsGraph(n, k int, chordW float64) Graph {
	g := maxcut.RingChords(n, k, chordW)
	out := Graph{N: g.N, Edges: make([]Edge, len(g.Edges))}
	for i, e := range g.Edges {
		out.Edges[i] = Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}
