package problems

import (
	"fmt"
	"math"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/portfolio"
	"github.com/ising-machines/saim/model"
)

// PortfolioSpec describes risk-averse asset selection:
//
//	min  −μᵀx + γ·xᵀΣx   s.t.  priceᵀx ≤ budget,  x ∈ {0,1}^n
//
// Unlike the quadratic knapsack — whose pair values are bonuses — the
// covariance term is a positive quadratic penalty, exercising the solver
// on the opposite coupling sign.
type PortfolioSpec struct {
	// Returns[i] is the expected return μ_i of asset i.
	Returns []float64
	// Covariance is the symmetric n×n return covariance Σ.
	Covariance [][]float64
	// RiskAversion is the γ weight on the quadratic risk term.
	RiskAversion float64
	// Prices[i] is the capital consumed by asset i; Budget the limit.
	Prices []float64
	Budget float64
}

// Validate checks dimensions and sign conventions.
func (s PortfolioSpec) Validate() error {
	n := len(s.Returns)
	if n == 0 {
		return fmt.Errorf("problems: portfolio needs at least one asset")
	}
	if len(s.Prices) != n || len(s.Covariance) != n {
		return fmt.Errorf("problems: inconsistent portfolio dimensions")
	}
	for i, row := range s.Covariance {
		if len(row) != n {
			return fmt.Errorf("problems: covariance row %d has %d entries, want %d", i, len(row), n)
		}
		if row[i] < 0 {
			return fmt.Errorf("problems: negative variance at asset %d", i)
		}
		for j := range row {
			if row[j] != s.Covariance[j][i] {
				return fmt.Errorf("problems: covariance not symmetric at (%d,%d)", i, j)
			}
		}
	}
	for i, p := range s.Prices {
		if p <= 0 {
			return fmt.Errorf("problems: non-positive price at asset %d", i)
		}
	}
	if s.RiskAversion < 0 || s.Budget < 0 {
		return fmt.Errorf("problems: negative risk aversion or budget")
	}
	return nil
}

// PortfolioProblem is a built asset selection: the declarative model plus
// its decoder. Variables are the family "hold"; the capital constraint is
// named "budget". Solution.Objective reports −return + γ·risk (lower is
// better).
type PortfolioProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	spec  PortfolioSpec
	x     model.Vars
}

// Portfolio builds the declarative model of the spec.
func Portfolio(spec PortfolioSpec) (*PortfolioProblem, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := len(spec.Returns)
	m := model.New()
	x := m.Binary("hold", n)
	terms := make([]model.Expr, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		// The diagonal covariance contributes linearly (x² = x).
		w := -spec.Returns[i] + spec.RiskAversion*spec.Covariance[i][i]
		if w != 0 {
			terms = append(terms, x[i].Mul(w))
		}
		for j := i + 1; j < n; j++ {
			if v := spec.Covariance[i][j]; v != 0 {
				terms = append(terms, x[i].Times(x[j]).Mul(2*spec.RiskAversion*v))
			}
		}
	}
	m.Minimize(model.Sum(terms...))
	m.Constrain("budget", model.Dot(spec.Prices, x).LE(spec.Budget))
	return &PortfolioProblem{Model: m, spec: spec, x: x}, nil
}

// RandomPortfolio draws a spec from a k-factor covariance model (Σ = LLᵀ+D,
// guaranteed PSD), deterministically from seed — the reproduction's
// portfolio instance generator.
func RandomPortfolio(n, factors int, gamma float64, seed uint64) PortfolioSpec {
	inst := portfolio.Generate(n, factors, gamma, seed)
	cov := make([][]float64, n)
	for i := range cov {
		cov[i] = make([]float64, n)
		for j := range cov[i] {
			cov[i][j] = inst.Sigma.At(i, j)
		}
	}
	return PortfolioSpec{
		Returns:      inst.Mu,
		Covariance:   cov,
		RiskAversion: inst.Gamma,
		Prices:       inst.Price,
		Budget:       inst.Budget,
	}
}

// Recommended returns portfolio-appropriate solver settings.
func (p *PortfolioProblem) Recommended() []saim.Option {
	return []saim.Option{
		saim.WithEta(1), saim.WithAlpha(2), saim.WithBetaMax(20),
		saim.WithIterations(400), saim.WithSweepsPerRun(300),
	}
}

// Selected returns the indices of the held assets (nil when infeasible).
func (p *PortfolioProblem) Selected(sol *model.Solution) []int {
	if !sol.Feasible() {
		return nil
	}
	var out []int
	for i, v := range sol.Values("hold") {
		if v == 1 {
			out = append(out, i)
		}
	}
	return out
}

// Spend returns the capital consumed by the selection (NaN when
// infeasible).
func (p *PortfolioProblem) Spend(sol *model.Solution) float64 {
	if !sol.Feasible() {
		return math.NaN()
	}
	s := 0.0
	for i, v := range sol.Values("hold") {
		if v == 1 {
			s += p.spec.Prices[i]
		}
	}
	return s
}
