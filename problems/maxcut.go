package problems

import (
	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// MaxCutProblem is maximum cut on a weighted graph — the canonical
// unconstrained Ising workload. The objective is the cut weight (edges
// crossing the bipartition); Solution.Objective reports it directly.
// Variables are the family "side" (0/1 = partition side of each vertex).
type MaxCutProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	g     Graph
	x     model.Vars
}

// MaxCut builds the declarative max-cut model of the graph: for each edge
// (u,v,w) the cut gains w when the endpoints take different sides, i.e.
// maximize Σ w·(x_u + x_v − 2·x_u·x_v).
func MaxCut(g Graph) (*MaxCutProblem, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := model.New()
	x := m.Binary("side", g.N)
	terms := make([]model.Expr, 0, 3*len(g.Edges))
	for _, e := range g.Edges {
		terms = append(terms,
			x[e.U].Mul(e.W), x[e.V].Mul(e.W), x[e.U].Times(x[e.V]).Mul(-2*e.W))
	}
	m.Maximize(model.Sum(terms...))
	return &MaxCutProblem{Model: m, g: g, x: x}, nil
}

// Recommended returns multi-run annealing settings suited to max-cut.
func (p *MaxCutProblem) Recommended() []saim.Option {
	return []saim.Option{saim.WithIterations(100), saim.WithSweepsPerRun(500)}
}

// Partition returns the two vertex sets of the best cut (nil, nil when no
// assignment was found).
func (p *MaxCutProblem) Partition(sol *model.Solution) (left, right []int) {
	if !sol.Feasible() {
		return nil, nil
	}
	for v, side := range sol.Values("side") {
		if side == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right
}

// CutValue returns the weight of the best cut (−Inf when no assignment
// was found).
func (p *MaxCutProblem) CutValue(sol *model.Solution) float64 { return sol.Objective() }
