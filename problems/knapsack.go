package problems

import (
	"fmt"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// KnapsackSpec describes a 0–1 knapsack: maximize the total value of
// selected items (plus optional pairwise bonuses) subject to one or more
// capacity constraints. One capacity row is the classic knapsack; several
// rows make it multidimensional (MKP, the paper's Section IV.B family);
// pair values make it quadratic (QKP, Section IV.A).
type KnapsackSpec struct {
	// Values[j] is the value of item j.
	Values []float64
	// PairValues, when non-nil, is the symmetric n×n bonus matrix: picking
	// both i and j adds PairValues[i][j] (the diagonal must be zero).
	PairValues [][]float64
	// Weights[i][j] is the weight of item j in capacity constraint i.
	Weights [][]float64
	// Capacities[i] bounds constraint i: Σ_j Weights[i][j]·x_j ≤ Capacities[i].
	Capacities []float64
	// Density, when non-zero, is the pair-value density hint for the
	// paper's P = α·d·N penalty pricing.
	Density float64
}

// Validate checks dimensions and sign conventions.
func (s KnapsackSpec) Validate() error {
	n := len(s.Values)
	if n == 0 {
		return fmt.Errorf("problems: knapsack needs at least one item")
	}
	if len(s.Weights) == 0 || len(s.Weights) != len(s.Capacities) {
		return fmt.Errorf("problems: knapsack needs matching Weights rows (%d) and Capacities (%d), at least one each",
			len(s.Weights), len(s.Capacities))
	}
	for i, row := range s.Weights {
		if len(row) != n {
			return fmt.Errorf("problems: weights row %d has %d entries, want %d", i, len(row), n)
		}
		for j, w := range row {
			if w < 0 {
				return fmt.Errorf("problems: negative weight %v at (%d,%d)", w, i, j)
			}
		}
	}
	for i, b := range s.Capacities {
		if b < 0 {
			return fmt.Errorf("problems: negative capacity %v at %d", b, i)
		}
	}
	if s.PairValues != nil {
		if len(s.PairValues) != n {
			return fmt.Errorf("problems: pair-value matrix order %d, want %d", len(s.PairValues), n)
		}
		for i, row := range s.PairValues {
			if len(row) != n {
				return fmt.Errorf("problems: pair-value row %d has %d entries, want %d", i, len(row), n)
			}
			if row[i] != 0 {
				return fmt.Errorf("problems: pair-value diagonal %d must be zero", i)
			}
			for j := range row {
				if row[j] != s.PairValues[j][i] {
					return fmt.Errorf("problems: pair-value matrix not symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
	return nil
}

// KnapsackProblem is a built knapsack: the declarative model plus its
// decoder. Variables are the family "take"; capacity constraints are named
// "capacity" (single row) or "capacity[i]".
type KnapsackProblem struct {
	// Model is the declarative model; extend it freely before solving.
	Model *model.Model
	spec  KnapsackSpec
	x     model.Vars
}

// Knapsack builds the declarative model of the spec.
func Knapsack(spec KnapsackSpec) (*KnapsackProblem, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := len(spec.Values)
	m := model.New()
	x := m.Binary("take", n)
	obj := model.Dot(spec.Values, x)
	if spec.PairValues != nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if v := spec.PairValues[i][j]; v != 0 {
					obj = obj.Add(x[i].Times(x[j]).Mul(v))
				}
			}
		}
	}
	m.Maximize(obj)
	for i, row := range spec.Weights {
		name := "capacity"
		if len(spec.Weights) > 1 {
			name = fmt.Sprintf("capacity[%d]", i)
		}
		m.Constrain(name, model.Dot(row, x).LE(spec.Capacities[i]))
	}
	if spec.Density != 0 {
		m.Density(spec.Density)
	}
	return &KnapsackProblem{Model: m, spec: spec, x: x}, nil
}

// Recommended returns the paper's solver settings for the family: the QKP
// settings (η=20, α=2, βmax=10) when pair values are present, the MKP
// settings (η=0.05, α=5, βmax=50) otherwise.
func (p *KnapsackProblem) Recommended() []saim.Option {
	if p.spec.PairValues != nil {
		return []saim.Option{saim.WithEta(20), saim.WithAlpha(2), saim.WithBetaMax(10)}
	}
	return []saim.Option{saim.WithEta(0.05), saim.WithAlpha(5), saim.WithBetaMax(50)}
}

// Selected returns the indices of the chosen items (nil when infeasible).
func (p *KnapsackProblem) Selected(sol *model.Solution) []int {
	if !sol.Feasible() {
		return nil
	}
	var out []int
	for i, v := range sol.Values("take") {
		if v == 1 {
			out = append(out, i)
		}
	}
	return out
}

// TotalValue returns the collected value of the solution, including pair
// bonuses (−Inf when infeasible).
func (p *KnapsackProblem) TotalValue(sol *model.Solution) float64 { return sol.Objective() }
