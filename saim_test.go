package saim

import (
	"math"
	"testing"
)

// knapsack3 builds max 6x₀+5x₁+8x₂ s.t. 2x₀+3x₁+4x₂ ≤ 5: OPT takes items
// 0 and 1? (2+3=5 ≤ 5, value 11) vs item 2 alone (value 8) vs 0+2 (6 weight,
// no). OPT = 11.
func knapsack3(t *testing.T) *Problem {
	t.Helper()
	b := NewBuilder(3)
	b.Linear(0, -6).Linear(1, -5).Linear(2, -8)
	b.ConstrainLE([]float64{2, 3, 4}, 5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveQuickstart(t *testing.T) {
	p := knapsack3(t)
	res, err := Solve(p, Options{Iterations: 150, SweepsPerRun: 150, Eta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("no feasible assignment")
	}
	if res.Cost != -11 {
		t.Fatalf("Cost = %v, want -11", res.Cost)
	}
	if res.Assignment[0] != 1 || res.Assignment[1] != 1 || res.Assignment[2] != 0 {
		t.Fatalf("Assignment = %v", res.Assignment)
	}
	if len(res.Lambda) != 1 {
		t.Fatalf("Lambda = %v", res.Lambda)
	}
	if res.Sweeps != 150*150 {
		t.Fatalf("Sweeps = %d", res.Sweeps)
	}
}

func TestEvaluate(t *testing.T) {
	p := knapsack3(t)
	cost, feasible, err := p.Evaluate([]int{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cost != -11 || !feasible {
		t.Fatalf("Evaluate = %v, %v", cost, feasible)
	}
	cost, feasible, err = p.Evaluate([]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if feasible {
		t.Fatal("overweight assignment reported feasible")
	}
	if cost != -19 {
		t.Fatalf("cost = %v", cost)
	}
	if _, _, err := p.Evaluate([]int{1}); err == nil {
		t.Fatal("accepted short assignment")
	}
	if _, _, err := p.Evaluate([]int{1, 2, 0}); err == nil {
		t.Fatal("accepted non-binary assignment")
	}
}

func TestQuadraticObjective(t *testing.T) {
	// Pair bonus makes {0,1} beat the individually-better item 2:
	// values 3,3,7 with pair bonus 6 on (0,1), weights 1,1,2, cap 2.
	b := NewBuilder(3)
	b.Linear(0, -3).Linear(1, -3).Linear(2, -7)
	b.Quadratic(0, 1, -6)
	b.ConstrainLE([]float64{1, 1, 2}, 2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, Options{Iterations: 200, SweepsPerRun: 150, Eta: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != -12 {
		t.Fatalf("Cost = %v, want -12 (items 0+1)", res.Cost)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// Exactly one of three items (one-hot): min -x₂ s.t. Σx = 1.
	b := NewBuilder(3)
	b.Linear(2, -5).Linear(1, -1)
	b.ConstrainEQ([]float64{1, 1, 1}, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, Options{Iterations: 120, SweepsPerRun: 120, Eta: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("no feasible assignment")
	}
	if res.Assignment[2] != 1 || res.Assignment[0] != 0 || res.Assignment[1] != 0 {
		t.Fatalf("Assignment = %v", res.Assignment)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Fatal("accepted n=0")
	}
	b := NewBuilder(2)
	b.Linear(5, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	b = NewBuilder(2)
	b.Quadratic(1, 1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted diagonal quadratic")
	}
	b = NewBuilder(2)
	b.ConstrainLE([]float64{1}, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted wrong-length constraint")
	}
	b = NewBuilder(2)
	b.ConstrainLE([]float64{-1, 1}, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted negative ≤ coefficient")
	}
	b = NewBuilder(2)
	b.ConstrainLE([]float64{1, 1}, -1)
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted negative bound")
	}
	b = NewBuilder(2)
	b.Linear(0, -1)
	if _, err := b.Build(); err == nil {
		t.Fatal("accepted unconstrained problem")
	}
}

func TestSolvePenaltyMethodComparison(t *testing.T) {
	p := knapsack3(t)
	res, err := SolvePenaltyMethod(p, 50, Options{Iterations: 150, SweepsPerRun: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("penalty method found nothing at large P")
	}
	if res.Cost > -8 {
		t.Fatalf("penalty method cost %v implausibly bad", res.Cost)
	}
	if _, err := SolvePenaltyMethod(p, 0, Options{}); err == nil {
		t.Fatal("accepted zero penalty weight")
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := knapsack3(t)
	a, err := Solve(p, Options{Iterations: 60, SweepsPerRun: 80, Eta: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, Options{Iterations: 60, SweepsPerRun: 80, Eta: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.FeasibleRatio != b.FeasibleRatio {
		t.Fatal("same seed, different results")
	}
}

func TestResultInfeasible(t *testing.T) {
	r := &Result{Cost: math.Inf(1)}
	if !r.Infeasible() {
		t.Fatal("nil assignment should be infeasible")
	}
}

func TestSolveParallelFacade(t *testing.T) {
	p := knapsack3(t)
	res, err := SolveParallel(p, Options{Iterations: 60, SweepsPerRun: 100, Eta: 1, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("no feasible assignment")
	}
	if res.Cost != -11 {
		t.Fatalf("Cost = %v, want -11", res.Cost)
	}
	if res.Sweeps != 3*60*100 {
		t.Fatalf("Sweeps = %d", res.Sweeps)
	}
	if _, err := SolveParallel(p, Options{}, 0); err == nil {
		t.Fatal("accepted zero replicas")
	}
}
