package saim

import (
	"context"
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Builder assembles a binary optimization problem
//
//	min  Σ_i c_i x_i + Σ_{i<j} q_ij x_i x_j + Σ higher-order terms
//	s.t. linear constraints (≤, =, or ≥) and/or polynomial equalities,
//	     x ∈ {0,1}^n.
//
// Coefficients are given in natural (un-normalized) units; Model normalizes
// internally exactly as the paper prescribes. One builder produces a Model
// of any form: unconstrained (no constraints), linearly constrained (the
// SAIM form), or high-order polynomial (any Term of degree ≥ 3 or any
// ConstrainPolyEQ).
type Builder struct {
	n       int
	obj     *ising.QUBO
	sys     *constraint.System
	hterms  []Monomial
	pcons   [][]Monomial
	density float64
	errs    []error
}

// Density records the instance coupling density d used by the P = α·d·N
// penalty heuristic (e.g. the pair-value density for QKP, 2/(N+1) for
// MKP). When unset, solvers measure the density of the built penalty
// energy instead — which for knapsack-like constraints is close to 1 and
// therefore prices P well above the paper's d-aware heuristic.
func (b *Builder) Density(d float64) *Builder {
	if d < 0 || d > 1 {
		b.errs = append(b.errs, fmt.Errorf("saim: density %v outside [0,1]", d))
		return b
	}
	b.density = d
	return b
}

// NewBuilder returns a builder over n binary decision variables.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		return &Builder{errs: []error{fmt.Errorf("saim: NewBuilder requires n > 0, got %d", n)}}
	}
	return &Builder{n: n, obj: ising.NewQUBO(n), sys: constraint.NewSystem(n)}
}

func (b *Builder) check(i int) bool {
	if i < 0 || i >= b.n {
		b.errs = append(b.errs, fmt.Errorf("saim: variable index %d out of range [0,%d)", i, b.n))
		return false
	}
	return true
}

// Linear adds w·x_i to the minimization objective. It returns the builder
// for chaining.
func (b *Builder) Linear(i int, w float64) *Builder {
	if b.check(i) {
		b.obj.AddLinear(i, w)
	}
	return b
}

// Quadratic adds w·x_i·x_j (i ≠ j) to the minimization objective.
func (b *Builder) Quadratic(i, j int, w float64) *Builder {
	if !b.check(i) || !b.check(j) {
		return b
	}
	if i == j {
		b.errs = append(b.errs, fmt.Errorf("saim: Quadratic requires i != j (got %d)", i))
		return b
	}
	b.obj.AddQuad(i, j, w)
	return b
}

// ConstrainLE adds Σ coeffs_i·x_i ≤ bound. Coefficients and bound must be
// non-negative (knapsack form), because slack variables are binary-encoded
// against the bound.
func (b *Builder) ConstrainLE(coeffs []float64, bound float64) *Builder {
	return b.constrain(coeffs, constraint.LE, bound)
}

// ConstrainEQ adds Σ coeffs_i·x_i = bound.
func (b *Builder) ConstrainEQ(coeffs []float64, bound float64) *Builder {
	return b.constrain(coeffs, constraint.EQ, bound)
}

// ConstrainGE adds Σ coeffs_i·x_i ≥ bound. Coefficients and bound must be
// non-negative, and the bound must not exceed the coefficient sum (the
// constraint would be unsatisfiable over binary x). The constraint is
// lowered by negation: the surplus Σ coeffs_i·x_i − bound is binary-encoded
// like an LE slack and enters the equality system with negated coefficients.
func (b *Builder) ConstrainGE(coeffs []float64, bound float64) *Builder {
	return b.constrain(coeffs, constraint.GE, bound)
}

func (b *Builder) constrain(coeffs []float64, sense constraint.Sense, bound float64) *Builder {
	if len(coeffs) != b.n {
		b.errs = append(b.errs, fmt.Errorf("saim: constraint over %d coefficients, want %d", len(coeffs), b.n))
		return b
	}
	if bound < 0 {
		b.errs = append(b.errs, fmt.Errorf("saim: negative constraint bound %v", bound))
		return b
	}
	if sense == constraint.LE || sense == constraint.GE {
		sum := 0.0
		for i, c := range coeffs {
			if c < 0 {
				b.errs = append(b.errs, fmt.Errorf("saim: negative coefficient %v at %d in %v constraint", c, i, sense))
				return b
			}
			sum += c
		}
		if sense == constraint.GE && bound > sum {
			b.errs = append(b.errs, fmt.Errorf("saim: ≥ constraint bound %v exceeds coefficient sum %v (unsatisfiable)", bound, sum))
			return b
		}
	}
	b.sys.Add(vecmat.Vec(coeffs), sense, bound)
	return b
}

// Problem is a built, linearly constrained problem ready for Solve.
//
// Deprecated: build a Model with Builder.Model and run it through a
// registered Solver instead; Problem remains as a thin wrapper for
// compatibility.
type Problem struct {
	m *Model
}

// Model returns the unified model underlying the problem.
func (p *Problem) Model() *Model { return p.m }

// N returns the number of decision variables.
func (p *Problem) N() int { return p.m.N() }

// Evaluate returns the objective value of an assignment in the caller's
// original units, and whether the assignment satisfies all constraints.
func (p *Problem) Evaluate(assignment []int) (cost float64, feasible bool, err error) {
	return p.m.Evaluate(assignment)
}

// Build validates the accumulated problem and prepares the normalized SAIM
// form. The builder can be reused afterwards, but further mutations do not
// affect the built problem.
//
// Deprecated: use Builder.Model, which also handles unconstrained and
// high-order problems.
func (b *Builder) Build() (*Problem, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.sys.M() == 0 {
		return nil, fmt.Errorf("saim: problem has no constraints; use an unconstrained QUBO solver instead")
	}
	m, err := b.Model()
	if err != nil {
		return nil, err
	}
	if m.Form() != FormConstrained {
		return nil, fmt.Errorf("saim: Build supports only linearly constrained problems (model form %v); use Builder.Model", m.Form())
	}
	return &Problem{m: m}, nil
}

// Options configures the deprecated wrapper entry points. The zero value
// uses the paper's QKP defaults (P = 2·d·N, η = 20, 2000 iterations of 1000
// sweeps, βmax = 10).
//
// Deprecated: pass functional Options (WithEta, WithIterations, …) to a
// Solver instead.
type Options struct {
	// Alpha sets the penalty heuristic P = α·d·N (default 2).
	Alpha float64
	// Penalty overrides the penalty weight when non-zero.
	Penalty float64
	// Eta is the Lagrange step size (default 20).
	Eta float64
	// Iterations is the number of annealing runs / λ updates (default 2000).
	Iterations int
	// SweepsPerRun is the Monte-Carlo sweep budget per run (default 1000).
	SweepsPerRun int
	// BetaMax is the final inverse temperature (default 10).
	BetaMax float64
	// Seed makes the solve reproducible.
	Seed uint64
}

// asOptions converts the legacy struct into the functional option list the
// unified API consumes.
func (o Options) asOptions() []Option {
	var opts []Option
	if o.Alpha != 0 {
		opts = append(opts, WithAlpha(o.Alpha))
	}
	if o.Penalty != 0 {
		opts = append(opts, WithPenalty(o.Penalty))
	}
	if o.Eta != 0 {
		opts = append(opts, WithEta(o.Eta))
	}
	if o.Iterations != 0 {
		opts = append(opts, WithIterations(o.Iterations))
	}
	if o.SweepsPerRun != 0 {
		opts = append(opts, WithSweepsPerRun(o.SweepsPerRun))
	}
	if o.BetaMax != 0 {
		opts = append(opts, WithBetaMax(o.BetaMax))
	}
	if o.Seed != 0 {
		opts = append(opts, WithSeed(o.Seed))
	}
	return opts
}

// Result reports a solve outcome in the caller's original units.
type Result struct {
	// Solver is the name of the backend that produced the result.
	Solver string
	// Assignment is the best feasible assignment found (nil if none).
	Assignment []int
	// Cost is the objective value of Assignment (+Inf if none).
	Cost float64
	// FeasibleRatio is the percentage of examined samples that were
	// feasible. The annealing backends (saim, penalty) examine exactly one
	// sample per run — the run's final state — so for them this equals the
	// percentage of feasible runs; parallel tempering examines every
	// replica at each sampling point; the constructive and exact backends
	// report 100. Progress.FeasibleRatio streams the same statistic
	// per-iteration.
	FeasibleRatio float64
	// Penalty is the penalty weight P used (zero for penalty-free backends).
	Penalty float64
	// Sweeps is the total Monte-Carlo sweep budget spent (zero for
	// non-sampling backends).
	Sweeps int64
	// Iterations is the number of iterations actually executed.
	Iterations int
	// Lambda is the final Lagrange multiplier vector (one per constraint),
	// nil for backends without multipliers.
	Lambda []float64
	// Stopped records why the solve returned: StopCompleted, StopCancelled,
	// StopTarget, StopPatience, or StopTimeLimit.
	Stopped StopReason
	// Optimal reports whether the result was proven optimal (exact backend
	// only).
	Optimal bool
	// Winner names the backend whose result won a "race" meta-solve
	// (empty for every other backend).
	Winner string
}

// Infeasible reports whether a result found no feasible assignment.
func (r *Result) Infeasible() bool { return r.Assignment == nil || math.IsInf(r.Cost, 1) }

// Solve runs the self-adaptive Ising machine (Algorithm 1 of the paper) on
// the problem.
//
// Deprecated: use the "saim" Solver from the registry, which adds context
// cancellation, progress streaming, and early stopping.
func Solve(p *Problem, o Options) (*Result, error) {
	return SolveModel(context.Background(), "saim", p.m, o.asOptions()...)
}

// SolvePenaltyMethod runs the classical penalty-method baseline (no λ
// adaptation) at the given penalty weight, with the same budget semantics
// as Solve. It exists so downstream users can reproduce the paper's
// comparison on their own problems.
//
// Deprecated: use the "penalty" Solver from the registry.
func SolvePenaltyMethod(p *Problem, penaltyWeight float64, o Options) (*Result, error) {
	if penaltyWeight <= 0 {
		return nil, fmt.Errorf("saim: penalty weight must be positive, got %v", penaltyWeight)
	}
	o.Penalty = penaltyWeight
	return SolveModel(context.Background(), "penalty", p.m, o.asOptions()...)
}

// SolveParallel runs `replicas` independent SAIM solves concurrently with
// decorrelated seeds and returns the merged best result. Independent
// restarts are the natural parallelization of the algorithm: the λ
// recursion within one solve is sequential, but separate replicas explore
// different multiplier trajectories.
//
// Deprecated: use the "saim" Solver with WithReplicas.
func SolveParallel(p *Problem, o Options, replicas int) (*Result, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("saim: SolveParallel requires replicas > 0, got %d", replicas)
	}
	opts := append(o.asOptions(), WithReplicas(replicas))
	return SolveModel(context.Background(), "saim", p.m, opts...)
}

func toBits(assignment []int, n int) (ising.Bits, error) {
	if len(assignment) != n {
		return nil, fmt.Errorf("saim: assignment length %d, want %d", len(assignment), n)
	}
	x := make(ising.Bits, n)
	for i, v := range assignment {
		switch v {
		case 0:
		case 1:
			x[i] = 1
		default:
			return nil, fmt.Errorf("saim: assignment[%d] = %d, want 0 or 1", i, v)
		}
	}
	return x, nil
}

func fromBits(x ising.Bits) []int {
	if x == nil {
		return nil
	}
	out := make([]int, len(x))
	for i, v := range x {
		out[i] = int(v)
	}
	return out
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func orDefaultF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}
