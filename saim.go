package saim

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Builder assembles a constrained binary optimization problem
//
//	min  Σ_i c_i x_i + Σ_{i<j} q_ij x_i x_j
//	s.t. linear constraints (≤ or =),  x ∈ {0,1}^n.
//
// Coefficients are given in natural (un-normalized) units; Build normalizes
// internally exactly as the paper prescribes.
type Builder struct {
	n    int
	obj  *ising.QUBO
	sys  *constraint.System
	errs []error
}

// NewBuilder returns a builder over n binary decision variables.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		return &Builder{errs: []error{fmt.Errorf("saim: NewBuilder requires n > 0, got %d", n)}}
	}
	return &Builder{n: n, obj: ising.NewQUBO(n), sys: constraint.NewSystem(n)}
}

func (b *Builder) check(i int) bool {
	if i < 0 || i >= b.n {
		b.errs = append(b.errs, fmt.Errorf("saim: variable index %d out of range [0,%d)", i, b.n))
		return false
	}
	return true
}

// Linear adds w·x_i to the minimization objective. It returns the builder
// for chaining.
func (b *Builder) Linear(i int, w float64) *Builder {
	if b.check(i) {
		b.obj.AddLinear(i, w)
	}
	return b
}

// Quadratic adds w·x_i·x_j (i ≠ j) to the minimization objective.
func (b *Builder) Quadratic(i, j int, w float64) *Builder {
	if !b.check(i) || !b.check(j) {
		return b
	}
	if i == j {
		b.errs = append(b.errs, fmt.Errorf("saim: Quadratic requires i != j (got %d)", i))
		return b
	}
	b.obj.AddQuad(i, j, w)
	return b
}

// ConstrainLE adds Σ coeffs_i·x_i ≤ bound. Coefficients and bound must be
// non-negative (knapsack form), because slack variables are binary-encoded
// against the bound.
func (b *Builder) ConstrainLE(coeffs []float64, bound float64) *Builder {
	return b.constrain(coeffs, constraint.LE, bound)
}

// ConstrainEQ adds Σ coeffs_i·x_i = bound.
func (b *Builder) ConstrainEQ(coeffs []float64, bound float64) *Builder {
	return b.constrain(coeffs, constraint.EQ, bound)
}

func (b *Builder) constrain(coeffs []float64, sense constraint.Sense, bound float64) *Builder {
	if len(coeffs) != b.n {
		b.errs = append(b.errs, fmt.Errorf("saim: constraint over %d coefficients, want %d", len(coeffs), b.n))
		return b
	}
	if bound < 0 {
		b.errs = append(b.errs, fmt.Errorf("saim: negative constraint bound %v", bound))
		return b
	}
	if sense == constraint.LE {
		for i, c := range coeffs {
			if c < 0 {
				b.errs = append(b.errs, fmt.Errorf("saim: negative coefficient %v at %d in ≤ constraint", c, i))
				return b
			}
		}
	}
	b.sys.Add(vecmat.Vec(coeffs), sense, bound)
	return b
}

// Problem is a built, normalized problem ready for Solve. Obtain one from
// Builder.Build.
type Problem struct {
	inner *core.Problem
	n     int
	// raw objective for evaluating reported costs in user units.
	rawObj *ising.QUBO
}

// N returns the number of decision variables.
func (p *Problem) N() int { return p.n }

// Evaluate returns the objective value of an assignment in the caller's
// original units, and whether the assignment satisfies all constraints.
func (p *Problem) Evaluate(assignment []int) (cost float64, feasible bool, err error) {
	x, err := toBits(assignment, p.n)
	if err != nil {
		return 0, false, err
	}
	return p.rawObj.Energy(x), p.inner.Ext.Orig.Feasible(x, 1e-9), nil
}

// Build validates the accumulated problem and prepares the normalized SAIM
// form. The builder can be reused afterwards, but further mutations do not
// affect the built problem.
func (b *Builder) Build() (*Problem, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.sys.M() == 0 {
		return nil, fmt.Errorf("saim: problem has no constraints; use an unconstrained QUBO solver instead")
	}
	ext := b.sys.Extend(constraint.Binary)
	ext.Normalize()

	raw := b.obj.Clone()
	grown := ising.NewQUBO(ext.NTotal)
	for i := 0; i < b.n; i++ {
		grown.AddLinear(i, b.obj.C[i])
		for j := i + 1; j < b.n; j++ {
			if v := b.obj.Q.At(i, j); v != 0 {
				grown.AddQuad(i, j, 2*v)
			}
		}
	}
	grown.Const = b.obj.Const
	grown.Normalize()

	inner := &core.Problem{
		Objective: grown,
		Ext:       ext,
		Cost: func(x ising.Bits) float64 {
			return raw.Energy(x)
		},
	}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	return &Problem{inner: inner, n: b.n, rawObj: raw}, nil
}

// Options configures Solve. The zero value uses the paper's QKP defaults
// (P = 2·d·N, η = 20, 2000 iterations of 1000 sweeps, βmax = 10).
type Options struct {
	// Alpha sets the penalty heuristic P = α·d·N (default 2).
	Alpha float64
	// Penalty overrides the penalty weight when non-zero.
	Penalty float64
	// Eta is the Lagrange step size (default 20).
	Eta float64
	// Iterations is the number of annealing runs / λ updates (default 2000).
	Iterations int
	// SweepsPerRun is the Monte-Carlo sweep budget per run (default 1000).
	SweepsPerRun int
	// BetaMax is the final inverse temperature (default 10).
	BetaMax float64
	// Seed makes the solve reproducible.
	Seed uint64
}

func (o Options) coreOptions() core.Options {
	return core.Options{
		Alpha:        o.Alpha,
		P:            o.Penalty,
		Eta:          o.Eta,
		Iterations:   o.Iterations,
		SweepsPerRun: o.SweepsPerRun,
		BetaMax:      o.BetaMax,
		Seed:         o.Seed,
	}
}

// Result reports a solve outcome in the caller's original units.
type Result struct {
	// Assignment is the best feasible assignment found (nil if none).
	Assignment []int
	// Cost is the objective value of Assignment (+Inf if none).
	Cost float64
	// FeasibleRatio is the percentage of annealing runs whose final sample
	// was feasible.
	FeasibleRatio float64
	// Penalty is the penalty weight P used.
	Penalty float64
	// Sweeps is the total Monte-Carlo sweep budget spent.
	Sweeps int64
	// Lambda is the final Lagrange multiplier vector (one per constraint).
	Lambda []float64
}

// Solve runs the self-adaptive Ising machine (Algorithm 1 of the paper) on
// the problem.
func Solve(p *Problem, o Options) (*Result, error) {
	res, err := core.Solve(p.inner, o.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Assignment:    fromBits(res.Best),
		Cost:          res.BestCost,
		FeasibleRatio: res.FeasibleRatio(),
		Penalty:       res.P,
		Sweeps:        res.TotalSweeps,
		Lambda:        append([]float64(nil), res.Lambda...),
	}, nil
}

// SolvePenaltyMethod runs the classical penalty-method baseline (no λ
// adaptation) at the given penalty weight, with the same budget semantics
// as Solve. It exists so downstream users can reproduce the paper's
// comparison on their own problems.
func SolvePenaltyMethod(p *Problem, penaltyWeight float64, o Options) (*Result, error) {
	if penaltyWeight <= 0 {
		return nil, fmt.Errorf("saim: penalty weight must be positive, got %v", penaltyWeight)
	}
	res, err := anneal.SolvePenalty(p.inner, penaltyWeight, anneal.Options{
		Runs:         orDefault(o.Iterations, 2000),
		SweepsPerRun: orDefault(o.SweepsPerRun, 1000),
		BetaMax:      orDefaultF(o.BetaMax, 10),
		Seed:         o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Assignment:    fromBits(res.Best),
		Cost:          res.BestCost,
		FeasibleRatio: res.FeasibleRatio(),
		Penalty:       res.P,
		Sweeps:        res.TotalSweeps,
	}, nil
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func orDefaultF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func toBits(assignment []int, n int) (ising.Bits, error) {
	if len(assignment) != n {
		return nil, fmt.Errorf("saim: assignment length %d, want %d", len(assignment), n)
	}
	x := make(ising.Bits, n)
	for i, v := range assignment {
		switch v {
		case 0:
		case 1:
			x[i] = 1
		default:
			return nil, fmt.Errorf("saim: assignment[%d] = %d, want 0 or 1", i, v)
		}
	}
	return x, nil
}

func fromBits(x ising.Bits) []int {
	if x == nil {
		return nil
	}
	out := make([]int, len(x))
	for i, v := range x {
		out[i] = int(v)
	}
	return out
}

// Infeasible reports whether a result found no feasible assignment.
func (r *Result) Infeasible() bool { return r.Assignment == nil || math.IsInf(r.Cost, 1) }

// SolveParallel runs `replicas` independent SAIM solves concurrently with
// decorrelated seeds and returns the merged best result. Independent
// restarts are the natural parallelization of the algorithm: the λ
// recursion within one solve is sequential, but separate replicas explore
// different multiplier trajectories.
func SolveParallel(p *Problem, o Options, replicas int) (*Result, error) {
	res, err := core.SolveParallel(p.inner, o.coreOptions(), replicas)
	if err != nil {
		return nil, err
	}
	return &Result{
		Assignment:    fromBits(res.Best),
		Cost:          res.BestCost,
		FeasibleRatio: res.FeasibleRatio(),
		Penalty:       res.P,
		Sweeps:        res.TotalSweeps,
		Lambda:        append([]float64(nil), res.Lambda...),
	}, nil
}
