package saim

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/hoim"
	"github.com/ising-machines/saim/internal/ising"
)

// Form classifies what a Model contains, and therefore which solvers can
// run it. Every Solver declares the forms it accepts via Solver.Accepts.
type Form int

const (
	// FormUnconstrained is a quadratic objective with no constraints
	// (a plain QUBO, e.g. max-cut).
	FormUnconstrained Form = iota
	// FormConstrained is a quadratic objective with linear ≤/= constraints
	// — the SAIM form of the paper (Algorithm 1).
	FormConstrained
	// FormHighOrder is a polynomial objective with polynomial equality
	// constraints, run on the higher-order Ising machine.
	FormHighOrder
)

// String implements fmt.Stringer.
func (f Form) String() string {
	switch f {
	case FormUnconstrained:
		return "unconstrained"
	case FormConstrained:
		return "constrained"
	case FormHighOrder:
		return "high-order"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// Model is a built, validated optimization problem — the single input type
// of every registered Solver. A Model records whether it is unconstrained,
// linearly constrained (SAIM form), or high-order polynomial; solvers
// declare which forms they accept. Obtain one from Builder.Model.
type Model struct {
	form Form
	n    int

	// Quadratic forms: the objective in the caller's original units.
	rawObj *ising.QUBO
	// Constrained form: the original constraint system and the normalized
	// extended problem SAIM and the penalty baselines consume.
	sys   *constraint.System
	inner *core.Problem

	// High-order form: polynomial objective and equality constraints.
	hobj  *hoim.Poly
	hcons []*hoim.Poly
}

// Form reports what the model contains.
func (m *Model) Form() Form { return m.form }

// N returns the number of decision variables.
func (m *Model) N() int { return m.n }

// NumConstraints returns the number of constraints (linear or polynomial).
func (m *Model) NumConstraints() int {
	switch m.form {
	case FormConstrained:
		return m.sys.M()
	case FormHighOrder:
		return len(m.hcons)
	default:
		return 0
	}
}

// Evaluate returns the objective value of an assignment in the caller's
// original units, and whether the assignment satisfies all constraints
// (always true for unconstrained models).
func (m *Model) Evaluate(assignment []int) (cost float64, feasible bool, err error) {
	x, err := toBits(assignment, m.n)
	if err != nil {
		return 0, false, err
	}
	switch m.form {
	case FormUnconstrained:
		return m.rawObj.Energy(x), true, nil
	case FormConstrained:
		return m.rawObj.Energy(x), m.sys.Feasible(x, 1e-9), nil
	case FormHighOrder:
		feasible = true
		for _, g := range m.hcons {
			if math.Abs(g.Energy(x)) > 1e-9 {
				feasible = false
				break
			}
		}
		return m.hobj.Energy(x), feasible, nil
	default:
		return 0, false, fmt.Errorf("saim: unknown model form %v", m.form)
	}
}

// Term adds the monomial w·Π_i x_i to the minimization objective. Duplicate
// variables collapse (x² = x). Terms of degree ≤ 2 land in the quadratic
// objective; any term of degree ≥ 3 marks the model as high-order, which
// restricts it to solvers accepting FormHighOrder.
func (b *Builder) Term(w float64, vars ...int) *Builder {
	uniq := dedupVars(vars)
	for _, v := range uniq {
		if !b.check(v) {
			return b
		}
	}
	switch len(uniq) {
	case 0:
		b.obj.AddConst(w)
	case 1:
		b.obj.AddLinear(uniq[0], w)
	case 2:
		b.obj.AddQuad(uniq[0], uniq[1], w)
	default:
		b.hterms = append(b.hterms, Monomial{W: w, Vars: uniq})
	}
	return b
}

// ConstrainPolyEQ adds the polynomial equality constraint Σ terms = 0,
// where each term is a weighted monomial over the decision variables. Any
// polynomial constraint marks the model as high-order.
func (b *Builder) ConstrainPolyEQ(terms ...Monomial) *Builder {
	if len(terms) == 0 {
		b.errs = append(b.errs, fmt.Errorf("saim: empty polynomial constraint"))
		return b
	}
	for _, t := range terms {
		for _, v := range t.Vars {
			if !b.check(v) {
				return b
			}
		}
	}
	cp := make([]Monomial, len(terms))
	for i, t := range terms {
		cp[i] = Monomial{W: t.W, Vars: append([]int(nil), t.Vars...)}
	}
	b.pcons = append(b.pcons, cp)
	return b
}

// Model validates the accumulated problem and returns the built Model,
// auto-detecting its form: high-order when any monomial of degree ≥ 3 or
// any polynomial constraint is present, constrained when linear constraints
// are present, unconstrained otherwise. The builder can be reused
// afterwards; further mutations do not affect the built model.
func (b *Builder) Model() (*Model, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.hterms) > 0 || len(b.pcons) > 0 {
		return b.buildHighOrder()
	}
	if b.sys.M() > 0 {
		return b.buildConstrained()
	}
	return &Model{form: FormUnconstrained, n: b.n, rawObj: b.obj.Clone()}, nil
}

// buildConstrained prepares the normalized SAIM form exactly as the paper
// prescribes: the extended (decision + slack) system and objective are each
// normalized by their largest absolute coefficient. The constraint system
// is deep-copied so reusing the builder never mutates a built model.
func (b *Builder) buildConstrained() (*Model, error) {
	sys := constraint.NewSystem(b.sys.N)
	for _, c := range b.sys.Cons {
		sys.Add(c.A, c.Sense, c.B) // Add clones the coefficient vector
	}
	ext := sys.Extend(constraint.Binary)
	ext.Normalize()

	raw := b.obj.Clone()
	grown := ising.NewQUBO(ext.NTotal)
	for i := 0; i < b.n; i++ {
		grown.AddLinear(i, b.obj.C[i])
		for j := i + 1; j < b.n; j++ {
			if v := b.obj.Q.At(i, j); v != 0 {
				grown.AddQuad(i, j, 2*v)
			}
		}
	}
	grown.Const = b.obj.Const
	grown.Normalize()

	inner := &core.Problem{
		Objective: grown,
		Ext:       ext,
		Cost: func(x ising.Bits) float64 {
			return raw.Energy(x)
		},
		Density: b.density,
	}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		form:   FormConstrained,
		n:      b.n,
		rawObj: raw,
		sys:    ext.Orig,
		inner:  inner,
	}, nil
}

// buildHighOrder assembles the polynomial objective and constraints for the
// higher-order Ising machine. Linear equality constraints convert to
// polynomials; linear inequality constraints would need slack encodings the
// high-order pipeline does not provide, so they are rejected.
func (b *Builder) buildHighOrder() (*Model, error) {
	f := hoim.NewPoly(b.n)
	if b.obj.Const != 0 {
		f.Add(b.obj.Const)
	}
	for i := 0; i < b.n; i++ {
		if c := b.obj.C[i]; c != 0 {
			f.Add(c, i)
		}
		for j := i + 1; j < b.n; j++ {
			if v := b.obj.Q.At(i, j); v != 0 {
				f.Add(2*v, i, j)
			}
		}
	}
	for _, t := range b.hterms {
		f.Add(t.W, t.Vars...)
	}

	var gs []*hoim.Poly
	for i, c := range b.sys.Cons {
		if c.Sense != constraint.EQ {
			return nil, fmt.Errorf("saim: linear %v constraint %d cannot join a high-order model (only equality constraints are supported there)", c.Sense, i)
		}
		g := hoim.NewPoly(b.n)
		for j, a := range c.A {
			if a != 0 {
				g.Add(a, j)
			}
		}
		if c.B != 0 {
			g.Add(-c.B)
		}
		gs = append(gs, g)
	}
	for k, ms := range b.pcons {
		g := hoim.NewPoly(b.n)
		for _, t := range ms {
			g.Add(t.W, t.Vars...)
		}
		if g.NumTerms() == 0 {
			return nil, fmt.Errorf("saim: polynomial constraint %d is identically zero", k)
		}
		gs = append(gs, g)
	}
	return &Model{form: FormHighOrder, n: b.n, hobj: f, hcons: gs}, nil
}

// dedupVars returns vars with duplicates removed, preserving first-seen
// order (x² = x, so repeated variables collapse). Monomials of the typical
// degree ≤ 4 stay on an allocation-light linear scan; high-arity monomials
// switch to a map so dedup is O(k) instead of O(k²).
func dedupVars(vars []int) []int {
	if len(vars) == 0 {
		return nil
	}
	const linearScanMax = 8
	out := make([]int, 0, len(vars))
	if len(vars) <= linearScanMax {
		for _, v := range vars {
			dup := false
			for _, u := range out {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
		return out
	}
	seen := make(map[int]struct{}, len(vars))
	for _, v := range vars {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
