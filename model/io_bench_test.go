package model_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/ising-machines/saim/internal/qubofile"
	"github.com/ising-machines/saim/model"
)

// syntheticCut writes a qbsolv file shaped like the largecut instance: n
// nodes, nnz random couplers (deterministic LCG), n/10 diagonal terms.
func syntheticCut(n, nnz int) []byte {
	var buf bytes.Buffer
	diag := n / 10
	fmt.Fprintf(&buf, "p qubo 0 %d %d %d\n", n, diag, nnz)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := 0; i < diag; i++ {
		fmt.Fprintf(&buf, "%d %d %d\n", i, i, next(9)-4)
	}
	for k := 0; k < nnz; k++ {
		i := next(n - 1)
		j := i + 1 + next(n-i-1)
		fmt.Fprintf(&buf, "%d %d %d\n", i, j, next(10)+1)
	}
	return buf.Bytes()
}

// BenchmarkLoadLargeCut measures model.Load on the largecut-scale
// instance (20k nodes, 100k couplers). Before the O(nnz) parse this was
// impossible outright: 20k nodes exceeds the dense reader's cap, and the
// dense upper-triangle walk alone would probe 200M matrix cells.
func BenchmarkLoadLargeCut(b *testing.B) {
	data := syntheticCut(20000, 100000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadSparse8k and BenchmarkLoadDenseWalk8k pin the speedup on a
// size the old path could still handle: the sparse path is O(nnz) while
// the pre-PR Load walked the full 8k×8k upper triangle (32M probes) after
// a dense parse.
func BenchmarkLoadSparse8k(b *testing.B) {
	data := syntheticCut(8192, 40000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadDenseWalk8k(b *testing.B) {
	data := syntheticCut(8192, 40000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The seed-era algorithm: dense parse, then probe every (i, j)
		// pair of the upper triangle for nonzeros.
		q, err := qubofile.Read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		nonzero := 0
		for r := 0; r < q.N(); r++ {
			for c := r + 1; c < q.N(); c++ {
				if q.Q.At(r, c) != 0 {
					nonzero++
				}
			}
		}
		if nonzero == 0 {
			b.Fatal("no couplers")
		}
	}
}
