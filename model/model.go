// Package model is the declarative front door of the saim library: named,
// indexed binary variables, algebraic objective and constraint
// expressions, and name-aware solution extraction — compiled losslessly
// onto the low-level saim.Builder/saim.Model pipeline, so every registered
// solver backend runs the result unchanged.
//
// A minimal knapsack:
//
//	m := model.New()
//	x := m.Binary("take", len(values))
//	m.Maximize(model.Dot(values, x))
//	m.Constrain("weight", model.Dot(weights, x).LE(capacity))
//	sol, err := m.Solve(ctx, "saim", saim.WithSeed(1))
//	if sol.Feasible() {
//	    picked := sol.Value("take", 3)        // 0 or 1, by name
//	    report := sol.Constraints()           // per-constraint slack
//	}
//
// Constraints come in all three senses — LE, EQ, GE — with GE lowered by
// negation onto the same slack-bit machinery as LE. Equality constraints
// of degree ≥ 2 become polynomial constraints and mark the model
// high-order. Maximize negates the objective into the minimization frame
// and Solution maps costs back, so callers never see the flip.
package model

import (
	"context"
	"fmt"

	saim "github.com/ising-machines/saim"
)

// Model is a declarative optimization problem under construction: binary
// variable families, one objective, and named constraints. Construction
// errors accumulate and surface at Compile/Solve, so call sites can chain
// without per-call checks. A Model is not safe for concurrent mutation.
type Model struct {
	vars    int
	fams    []*family
	byName  map[string]*family
	obj     Expr
	objSet  bool
	max     bool
	cons    []namedConstraint
	density float64
	errs    []error
}

// family is one named block of variables.
type family struct {
	name string
	base int // first variable id
	n    int
}

// Var is a handle to one binary decision variable of a Model.
type Var struct {
	m  *Model
	id int
}

// Vars is an indexed family of variables, as returned by Model.Binary.
type Vars []Var

// Index returns the position of the variable in the compiled model's
// assignment vector (variables are numbered in declaration order).
func (v Var) Index() int { return v.id }

// Name returns the variable's display name, e.g. "take[3]" (families of
// size one omit the index).
func (v Var) Name() string {
	if v.m == nil {
		return fmt.Sprintf("var[%d]", v.id)
	}
	for _, f := range v.m.fams {
		if v.id >= f.base && v.id < f.base+f.n {
			if f.n == 1 {
				return f.name
			}
			return fmt.Sprintf("%s[%d]", f.name, v.id-f.base)
		}
	}
	return fmt.Sprintf("var[%d]", v.id)
}

// namedConstraint is one declared constraint.
type namedConstraint struct {
	name  string
	expr  Expr // constant folded into bound at compile
	sense Sense
	bound float64
}

// Sense is the relational sense of a constraint.
type Sense int

const (
	// LE is expr ≤ bound.
	LE Sense = iota
	// EQ is expr = bound.
	EQ
	// GE is expr ≥ bound.
	GE
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// New returns an empty model.
func New() *Model {
	return &Model{byName: map[string]*family{}}
}

func (m *Model) errf(format string, args ...any) {
	m.errs = append(m.errs, fmt.Errorf(format, args...))
}

// Binary declares a family of n binary variables under a unique name and
// returns their handles. Solution.Value(name, i) reads them back after a
// solve. On a bad or duplicate name the error accumulates (surfacing at
// Compile) and the returned handles are anonymous placeholders, so
// chained call sites keep working; only n ≤ 0 yields a nil slice.
func (m *Model) Binary(name string, n int) Vars {
	if n <= 0 {
		m.errf("model: Binary(%q) requires n > 0, got %d", name, n)
		return nil
	}
	if name == "" {
		m.errf("model: Binary requires a non-empty name")
		return m.placeholders(n)
	}
	if _, dup := m.byName[name]; dup {
		m.errf("model: variable family %q declared twice", name)
		return m.placeholders(n)
	}
	f := &family{name: name, base: m.vars, n: n}
	m.fams = append(m.fams, f)
	m.byName[name] = f
	m.vars += n
	out := make(Vars, n)
	for i := range out {
		out[i] = Var{m: m, id: f.base + i}
	}
	return out
}

// placeholders reserves n fresh variable ids without registering a family,
// keeping handles valid on error paths until the accumulated error
// surfaces at Compile.
func (m *Model) placeholders(n int) Vars {
	out := make(Vars, n)
	for i := range out {
		out[i] = Var{m: m, id: m.vars + i}
	}
	m.vars += n
	return out
}

// BinaryVar declares a single binary variable (a family of size one).
func (m *Model) BinaryVar(name string) Var {
	return m.Binary(name, 1)[0]
}

// N returns the number of declared variables.
func (m *Model) N() int { return m.vars }

// Minimize sets the objective to minimize. A model has exactly one
// objective; a second Minimize/Maximize call is an error.
func (m *Model) Minimize(e Expr) { m.setObjective(e, false) }

// Maximize sets the objective to maximize. It compiles as the negated
// minimization objective; Solution.Objective maps values back into the
// maximization frame.
func (m *Model) Maximize(e Expr) { m.setObjective(e, true) }

func (m *Model) setObjective(e Expr, max bool) {
	if m.objSet {
		m.errf("model: objective set twice")
		return
	}
	if !m.owns(e) {
		return
	}
	if !e.valid() {
		m.errf("model: objective has a non-finite coefficient")
		return
	}
	m.obj = e
	m.objSet = true
	m.max = max
}

// Constrain adds a named constraint, e.g.
//
//	m.Constrain("weight", model.Dot(weights, x).LE(capacity))
//
// Names must be unique; an empty name is auto-assigned "c<index>". Any
// constant in the expression folds into the bound. LE and GE constraints
// must be linear with non-negative coefficients and a non-negative folded
// bound (the slack-encoding form of the paper); EQ constraints may be
// polynomial, which marks the model high-order.
func (m *Model) Constrain(name string, c Constraint) {
	if name == "" {
		name = fmt.Sprintf("c%d", len(m.cons))
	}
	for _, prev := range m.cons {
		if prev.name == name {
			m.errf("model: constraint %q declared twice", name)
			return
		}
	}
	if !m.owns(c.expr) {
		return
	}
	if !c.expr.valid() {
		m.errf("model: constraint %q has a non-finite coefficient", name)
		return
	}
	m.cons = append(m.cons, namedConstraint{name: name, expr: c.expr, sense: c.sense, bound: c.bound})
}

// Density records the instance coupling density d used by the paper's
// P = α·d·N penalty heuristic (see saim.Builder.Density).
func (m *Model) Density(d float64) {
	if d < 0 || d > 1 {
		m.errf("model: density %v outside [0,1]", d)
		return
	}
	m.density = d
}

// owns reports whether the expression belongs to this model (or is a pure
// constant), recording an error otherwise.
func (m *Model) owns(e Expr) bool {
	if e.m != nil && e.m != m {
		m.errf("model: expression built from another model's variables")
		return false
	}
	return true
}

// Err returns the first accumulated construction error, or nil.
func (m *Model) Err() error {
	if len(m.errs) > 0 {
		return m.errs[0]
	}
	return nil
}

// Constraint pairs an expression with a sense and bound; build one with
// Expr.LE, Expr.EQ, or Expr.GE and register it via Model.Constrain.
type Constraint struct {
	expr  Expr
	sense Sense
	bound float64
}

// LE returns the constraint e ≤ bound.
func (e Expr) LE(bound float64) Constraint { return Constraint{expr: e, sense: LE, bound: bound} }

// EQ returns the constraint e = bound.
func (e Expr) EQ(bound float64) Constraint { return Constraint{expr: e, sense: EQ, bound: bound} }

// GE returns the constraint e ≥ bound.
func (e Expr) GE(bound float64) Constraint { return Constraint{expr: e, sense: GE, bound: bound} }

// Compile lowers the declarative model onto the saim.Builder pipeline and
// returns the built saim.Model, which any registered solver accepts. The
// lowering is lossless and deterministic: merged monomials are emitted in
// canonical order (constant, linear by id, quadratic by pair, higher-order
// in declaration order), constraints in declaration order, and a model
// built by equivalent hand-written Builder calls evaluates identically.
func (m *Model) Compile() (*saim.Model, error) {
	if err := m.Err(); err != nil {
		return nil, err
	}
	if m.vars == 0 {
		return nil, fmt.Errorf("model: no variables declared")
	}
	b := saim.NewBuilder(m.vars)
	if m.density != 0 {
		b.Density(m.density)
	}

	obj := m.obj
	if m.max {
		obj = obj.Mul(-1)
	}
	lin, quad, poly := obj.canonical()
	if obj.c != 0 {
		b.Term(obj.c)
	}
	for _, t := range lin {
		b.Linear(t.v, t.w)
	}
	for _, t := range quad {
		b.Quadratic(t.i, t.j, t.w)
	}
	for _, t := range poly {
		b.Term(t.w, t.vars...)
	}

	for _, c := range m.cons {
		if err := m.compileConstraint(b, c); err != nil {
			return nil, err
		}
	}
	built, err := b.Model()
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	return built, nil
}

// compileConstraint lowers one named constraint onto the builder,
// translating builder-level restrictions into errors that carry the
// constraint's name.
func (m *Model) compileConstraint(b *saim.Builder, c namedConstraint) error {
	bound := c.bound - c.expr.c // fold the expression's constant
	deg := c.expr.degree()
	if deg > 1 && c.sense != EQ {
		return fmt.Errorf("model: constraint %q: %v constraints must be linear (degree %d); only equality constraints may be polynomial", c.name, c.sense, deg)
	}
	switch c.sense {
	case LE, GE:
		coeffs := c.expr.linearCoeffs(m.vars)
		for i, w := range coeffs {
			if w < 0 {
				return fmt.Errorf("model: constraint %q: negative coefficient %v on %v in a %v constraint", c.name, w, Var{m: m, id: i}.Name(), c.sense)
			}
		}
		if bound < 0 {
			return fmt.Errorf("model: constraint %q: folded bound %v is negative", c.name, bound)
		}
		if c.sense == LE {
			b.ConstrainLE(coeffs, bound)
		} else {
			sum := 0.0
			for _, w := range coeffs {
				sum += w
			}
			if bound > sum {
				return fmt.Errorf("model: constraint %q: bound %v exceeds coefficient sum %v (unsatisfiable)", c.name, bound, sum)
			}
			b.ConstrainGE(coeffs, bound)
		}
	case EQ:
		if deg <= 1 {
			coeffs := c.expr.linearCoeffs(m.vars)
			if bound < 0 {
				// The builder requires non-negative bounds; negating both
				// sides preserves the constraint exactly.
				for i := range coeffs {
					coeffs[i] = -coeffs[i]
				}
				bound = -bound
			}
			b.ConstrainEQ(coeffs, bound)
			break
		}
		// Polynomial equality: expr − bound = 0 as weighted monomials.
		lin, quad, poly := c.expr.canonical()
		var terms []saim.Monomial
		if bound != 0 {
			terms = append(terms, saim.Monomial{W: -bound})
		}
		for _, t := range lin {
			terms = append(terms, saim.Monomial{W: t.w, Vars: []int{t.v}})
		}
		for _, t := range quad {
			terms = append(terms, saim.Monomial{W: t.w, Vars: []int{t.i, t.j}})
		}
		for _, t := range poly {
			terms = append(terms, saim.Monomial{W: t.w, Vars: t.vars})
		}
		if len(terms) == 0 {
			return fmt.Errorf("model: constraint %q is identically zero", c.name)
		}
		b.ConstrainPolyEQ(terms...)
	default:
		return fmt.Errorf("model: constraint %q has unknown sense %v", c.name, c.sense)
	}
	return nil
}

// Solve compiles the model and runs it on the named registered solver
// (see saim.Solvers), returning a name-aware Solution.
func (m *Model) Solve(ctx context.Context, solver string, opts ...saim.Option) (*Solution, error) {
	compiled, err := m.Compile()
	if err != nil {
		return nil, err
	}
	res, err := saim.SolveModel(ctx, solver, compiled, opts...)
	if err != nil {
		return nil, err
	}
	return &Solution{model: m, res: res}, nil
}
