package model

import "fmt"

// NumConstraints returns the number of declared constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Maximizing reports whether the objective was declared with Maximize.
func (m *Model) Maximizing() bool { return m.max }

// ObjectiveTerms visits the model's objective in canonical minimization
// form — the exact monomials Compile would hand to the builder, without
// building anything dense. A Maximize objective arrives negated, so
// minimizing the visited terms always optimizes the declared objective.
//
// The visitor receives each merged, non-zero monomial once: the constant
// with no ids, linear terms with one id (ascending), quadratic terms with
// two (i < j, lexicographic), higher-order terms in declaration order.
// The ids slice is reused between calls — copy it to retain it.
//
// This is the sparse gateway for meta-solvers: a 10⁵-variable model's
// terms stream through here in O(terms) while Compile would need an
// O(N²) matrix.
func (m *Model) ObjectiveTerms(visit func(w float64, ids []int)) error {
	if err := m.Err(); err != nil {
		return err
	}
	if m.vars == 0 {
		return fmt.Errorf("model: no variables declared")
	}
	obj := m.obj
	if m.max {
		obj = obj.Mul(-1)
	}
	lin, quad, poly := obj.canonical()
	var buf [2]int
	if obj.c != 0 {
		visit(obj.c, nil)
	}
	for _, t := range lin {
		buf[0] = t.v
		visit(t.w, buf[:1])
	}
	for _, t := range quad {
		buf[0], buf[1] = t.i, t.j
		visit(t.w, buf[:2])
	}
	for _, t := range poly {
		visit(t.w, t.vars)
	}
	return nil
}
