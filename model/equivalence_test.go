package model_test

// Compile-equivalence suite: for every Form, a declaratively-built model
// and the equivalent hand-built saim.Builder model must evaluate
// identically (cost and feasibility) on every shared assignment, and a
// solver run with the same seed must follow the identical trajectory —
// pinning the declarative layer to the Builder pipeline so solver behavior
// cannot drift.

import (
	"context"
	"math"
	"testing"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// assertEvaluateEqual checks cost and feasibility agreement on every
// assignment of n bits.
func assertEvaluateEqual(t *testing.T, a, b *saim.Model, n int) {
	t.Helper()
	if a.Form() != b.Form() {
		t.Fatalf("forms differ: %v vs %v", a.Form(), b.Form())
	}
	if a.N() != b.N() || a.N() != n {
		t.Fatalf("sizes differ: %d vs %d (want %d)", a.N(), b.N(), n)
	}
	if a.NumConstraints() != b.NumConstraints() {
		t.Fatalf("constraint counts differ: %d vs %d", a.NumConstraints(), b.NumConstraints())
	}
	asn := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		ca, fa, err := a.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		cb, fb, err := b.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb || fa != fb {
			t.Fatalf("assignment %v: declarative (%v, %v) vs hand-built (%v, %v)", asn, ca, fa, cb, fb)
		}
	}
}

// assertSolveEqual runs the same solver with the same seed on both models
// and requires identical outcomes — the trajectory depends on every
// coefficient of the compiled internals, so agreement pins them.
func assertSolveEqual(t *testing.T, solver string, a, b *saim.Model, opts ...saim.Option) {
	t.Helper()
	ra, err := saim.SolveModel(context.Background(), solver, a, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := saim.SolveModel(context.Background(), solver, b, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cost != rb.Cost || ra.FeasibleRatio != rb.FeasibleRatio || ra.Penalty != rb.Penalty {
		t.Fatalf("solves diverge: (%v, %v%%, P=%v) vs (%v, %v%%, P=%v)",
			ra.Cost, ra.FeasibleRatio, ra.Penalty, rb.Cost, rb.FeasibleRatio, rb.Penalty)
	}
	if len(ra.Assignment) != len(rb.Assignment) {
		t.Fatalf("assignment lengths differ")
	}
	for i := range ra.Assignment {
		if ra.Assignment[i] != rb.Assignment[i] {
			t.Fatalf("assignments diverge at %d", i)
		}
	}
	for i := range ra.Lambda {
		if ra.Lambda[i] != rb.Lambda[i] {
			t.Fatalf("multipliers diverge at %d: %v vs %v", i, ra.Lambda[i], rb.Lambda[i])
		}
	}
}

func TestEquivalenceUnconstrained(t *testing.T) {
	// Ring + chords max-cut over 8 vertices, with a constant offset.
	n := 8
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	for i := 0; i < n; i++ {
		edges = append(edges, edge{i, (i + 1) % n, float64(1 + i%3)})
		if i%2 == 0 {
			edges = append(edges, edge{i, (i + n/2) % n, 2})
		}
	}

	m := model.New()
	x := m.Binary("side", n)
	obj := model.Const(1.5)
	for _, e := range edges {
		obj = obj.Add(x[e.u].Mul(-e.w)).Add(x[e.v].Mul(-e.w)).Add(x[e.u].Times(x[e.v]).Mul(2 * e.w))
	}
	m.Minimize(obj)
	declared, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}

	b := saim.NewBuilder(n)
	b.Term(1.5)
	for _, e := range edges {
		b.Linear(e.u, -e.w)
		b.Linear(e.v, -e.w)
		b.Quadratic(e.u, e.v, 2*e.w)
	}
	hand, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}

	assertEvaluateEqual(t, declared, hand, n)
	assertSolveEqual(t, "saim", declared, hand,
		saim.WithIterations(20), saim.WithSweepsPerRun(100), saim.WithSeed(7))
}

func TestEquivalenceConstrained(t *testing.T) {
	// Quadratic objective with one constraint of each sense.
	n := 6
	values := []float64{60, 100, 120, 70, 80, 50}
	weights := []float64{10, 20, 30, 15, 18, 9}
	ones := []float64{1, 1, 1, 1, 1, 1}

	m := model.New()
	x := m.Binary("x", n)
	obj := model.Dot(values, x).Mul(-1).Add(x[0].Times(x[2]).Mul(-25))
	m.Minimize(obj)
	m.Constrain("cap", model.Dot(weights, x).LE(60))
	m.Constrain("count", model.Dot(ones, x).EQ(3))
	m.Constrain("spread", model.Dot(ones, x).GE(2))
	m.Density(0.4)
	declared, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}

	b := saim.NewBuilder(n)
	b.Density(0.4)
	for i, v := range values {
		b.Linear(i, -v)
	}
	b.Quadratic(0, 2, -25)
	b.ConstrainLE(weights, 60)
	b.ConstrainEQ(ones, 3)
	b.ConstrainGE(ones, 2)
	hand, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}

	assertEvaluateEqual(t, declared, hand, n)
	assertSolveEqual(t, "saim", declared, hand,
		saim.WithIterations(40), saim.WithSweepsPerRun(100),
		saim.WithEta(2), saim.WithSeed(11))
	assertSolveEqual(t, "penalty", declared, hand,
		saim.WithIterations(40), saim.WithSweepsPerRun(100),
		saim.WithPenalty(8), saim.WithSeed(11))
}

func TestEquivalenceHighOrder(t *testing.T) {
	// Degree-3 objective term plus a quadratic equality constraint.
	n := 5
	rates := []float64{5, 4, 6, 3, 2}

	m := model.New()
	x := m.Binary("x", n)
	obj := model.Dot(rates, x).Add(model.Prod(x[0], x[1], x[2]).Mul(-4))
	m.Minimize(obj)
	m.Constrain("crew", x.Sum().EQ(2))
	m.Constrain("pair", x[0].Times(x[1]).Add(x[2].Times(x[3])).EQ(1))
	declared, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if declared.Form() != saim.FormHighOrder {
		t.Fatalf("form %v, want high-order", declared.Form())
	}

	b := saim.NewBuilder(n)
	for i, r := range rates {
		b.Linear(i, r)
	}
	b.Term(-4, 0, 1, 2)
	ones := []float64{1, 1, 1, 1, 1}
	b.ConstrainEQ(ones, 2)
	b.ConstrainPolyEQ(
		saim.Monomial{W: -1},
		saim.Monomial{W: 1, Vars: []int{0, 1}},
		saim.Monomial{W: 1, Vars: []int{2, 3}},
	)
	hand, err := b.Model()
	if err != nil {
		t.Fatal(err)
	}

	assertEvaluateEqual(t, declared, hand, n)
	assertSolveEqual(t, "saim", declared, hand,
		saim.WithPenalty(3), saim.WithEta(0.5),
		saim.WithIterations(50), saim.WithSweepsPerRun(100), saim.WithSeed(21))
}

// TestGERoundTripVsExact pins the GE lowering end to end on a tiny
// set-cover instance: the declarative GE model must reach the optimum the
// exact backend proves on the complemented (≤-form) model.
func TestGERoundTripVsExact(t *testing.T) {
	// 5 candidate sets covering 4 elements.
	costs := []float64{4, 3, 2, 3, 2}
	covers := [][]int{ // covers[e] lists the sets containing element e
		{0, 1},
		{0, 2, 3},
		{1, 2},
		{3, 4},
	}
	n := len(costs)

	m := model.New()
	x := m.Binary("pick", n)
	m.Minimize(model.Dot(costs, x))
	for _, sets := range covers {
		row := make([]float64, n)
		for _, s := range sets {
			row[s] = 1
		}
		m.Constrain("", model.Dot(row, x).GE(1))
	}
	declared, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// Complemented model y = 1 − x: min Σc − Σ c_j y_j s.t. per element,
	// Σ_{j∋e} y_j ≤ |cover(e)| − 1 — an integer MKP the exact backend
	// proves optimal.
	cb := saim.NewBuilder(n)
	totalCost := 0.0
	for j, c := range costs {
		cb.Linear(j, -c)
		totalCost += c
	}
	for _, sets := range covers {
		row := make([]float64, n)
		for _, s := range sets {
			row[s] = 1
		}
		cb.ConstrainLE(row, float64(len(sets)-1))
	}
	comp, err := cb.Model()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := saim.SolveModel(context.Background(), "exact", comp)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Fatal("exact backend did not prove optimality")
	}
	optimum := totalCost + exact.Cost // Σc − max Σ c_j y_j

	// The complement of the exact solution must be feasible on the GE
	// model with the same cost (round-trip of the lowering).
	xOpt := make([]int, n)
	for j, y := range exact.Assignment {
		xOpt[j] = 1 - y
	}
	cost, feas, err := declared.Evaluate(xOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !feas {
		t.Fatalf("complemented exact optimum infeasible on the GE model: %v", xOpt)
	}
	if math.Abs(cost-optimum) > 1e-9 {
		t.Fatalf("cost mismatch: GE model %v, exact complement %v", cost, optimum)
	}

	// And SAIM on the declarative GE model reaches that optimum.
	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(400), saim.WithSweepsPerRun(200),
		saim.WithEta(1), saim.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("saim found no feasible cover")
	}
	if math.Abs(sol.Objective()-optimum) > 1e-9 {
		t.Fatalf("saim cover cost %v, exact optimum %v", sol.Objective(), optimum)
	}
	for _, cs := range sol.Constraints() {
		if !cs.Satisfied {
			t.Fatalf("unsatisfied constraint in report: %+v", cs)
		}
	}
}
