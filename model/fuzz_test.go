package model_test

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/ising-machines/saim/model"
)

// fuzzEnergy evaluates a model's objective on a probe assignment through
// the sparse term stream, so the fuzzer never materializes the dense
// compiled form (a hostile header can declare thousands of variables).
func fuzzEnergy(t *testing.T, m *model.Model, probe func(id int) bool) float64 {
	t.Helper()
	e := 0.0
	err := m.ObjectiveTerms(func(w float64, ids []int) {
		for _, id := range ids {
			if !probe(id) {
				return
			}
		}
		e += w
	})
	if err != nil {
		t.Fatalf("ObjectiveTerms on a loaded model: %v", err)
	}
	return e
}

// headerNodes extracts maxNodes from the problem line the reader would
// act on, mirroring its tokenization: comments and blanks are skipped,
// the first non-comment line starting with "p" is the header, and any
// other leading line makes the reader error out before allocating.
func headerNodes(data []byte) int {
	for _, line := range strings.Split(string(data), "\n") {
		text := strings.TrimSpace(line)
		switch {
		case text == "" || strings.HasPrefix(text, "c"):
			continue
		case strings.HasPrefix(text, "p"):
			fields := strings.Fields(text)
			if len(fields) != 6 || fields[1] != "qubo" {
				return 0
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil {
				return 0
			}
			return n
		default:
			return 0
		}
	}
	return 0
}

// FuzzLoadRoundTrip is the native fuzz target for the qbsolv model I/O:
// malformed input must never panic, and any input Load accepts must
// survive Save → Load with the variable count and objective energies
// preserved exactly.
func FuzzLoadRoundTrip(f *testing.F) {
	f.Add([]byte("c comment\np qubo 0 3 3 1\n0 0 -1\n1 1 2.5\n2 2 0\n0 2 -3\n"))
	f.Add([]byte("c constant 4.25\np qubo 0 2 2 1\n0 0 1\n1 1 -1\n0 1 2\n"))
	f.Add([]byte("p qubo 0 1 1 0\n0 0 7e-3\n"))
	f.Add([]byte("p qubo 0 4 0 0\n"))
	f.Add([]byte(""))
	f.Add([]byte("p qubo 0 99999999 0 0\n"))
	f.Add([]byte("p qubo 0 2 2 0\n0 0 Inf\n1 1 NaN\n"))
	f.Add([]byte("0 0 1\np qubo 0 2 0 0\n"))
	f.Add([]byte("p qubo 0 2 9 9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Pre-screen headers that would make Load allocate a huge (but
		// legal, sub-MaxReadNodes) dense matrix: the parse path is
		// identical at any size, and fuzzing shouldn't thrash gigabytes.
		if n := headerNodes(data); n > 1024 {
			t.Skip()
		}
		m, err := model.Load(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var buf bytes.Buffer
		if err := model.Save(&buf, m); err != nil {
			t.Fatalf("Save after successful Load: %v", err)
		}
		m2, err := model.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Load after Save: %v\nfile:\n%s", err, buf.Bytes())
		}
		if m.N() != m2.N() {
			t.Fatalf("round trip changed variable count: %d -> %d", m.N(), m2.N())
		}
		probes := []func(id int) bool{
			func(int) bool { return false },
			func(int) bool { return true },
			func(id int) bool { return id%2 == 0 },
			func(id int) bool { return id%3 != 0 },
		}
		for pi, probe := range probes {
			e1 := fuzzEnergy(t, m, probe)
			e2 := fuzzEnergy(t, m2, probe)
			if math.Abs(e1-e2) > 1e-9*(1+math.Abs(e1)) {
				t.Fatalf("probe %d: energy %v before round trip, %v after\nfile:\n%s", pi, e1, e2, buf.Bytes())
			}
		}
	})
}
