package model

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// The JSON wire format of a declarative model. It covers everything a
// Model can declare — variable families, a Minimize/Maximize objective
// with constant/linear/quadratic/higher-order monomials, named LE/EQ/GE
// constraints (polynomial equalities included), and the density hint — so
// every model form round-trips losslessly: unconstrained, constrained,
// and high-order models all compile identically before and after a
// marshal/unmarshal cycle.
//
// MarshalJSON always emits canonical terms (merged monomials, linear by
// variable id, quadratic by (i, j), higher-order in declaration order),
// which makes the encoding deterministic: two equal models — however
// their expressions were built up — serialize to identical bytes. That
// determinism is what Fingerprint keys on, and what lets a solve service
// deduplicate identical submissions.
type wireModel struct {
	Families    []wireFamily     `json:"families"`
	Maximize    bool             `json:"maximize,omitempty"`
	Objective   wireExpr         `json:"objective"`
	Constraints []wireConstraint `json:"constraints,omitempty"`
	Density     float64          `json:"density,omitempty"`
}

type wireFamily struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

// wireExpr carries an expression's canonical terms. Variable references
// are global ids — positions in the compiled assignment vector, i.e.
// declaration order across families.
type wireExpr struct {
	Const float64    `json:"const,omitempty"`
	Lin   []wireLin  `json:"lin,omitempty"`
	Quad  []wireQuad `json:"quad,omitempty"`
	Poly  []wirePoly `json:"poly,omitempty"`
}

type wireLin struct {
	V int     `json:"v"`
	W float64 `json:"w"`
}

type wireQuad struct {
	I int     `json:"i"`
	J int     `json:"j"`
	W float64 `json:"w"`
}

type wirePoly struct {
	Vars []int   `json:"vars"`
	W    float64 `json:"w"`
}

type wireConstraint struct {
	Name  string   `json:"name"`
	Sense string   `json:"sense"` // "<=", "==", ">="
	Expr  wireExpr `json:"expr"`
	Bound float64  `json:"bound"`
}

// toWire canonicalizes an expression for the wire.
func (e Expr) toWire() wireExpr {
	lin, quad, poly := e.canonical()
	out := wireExpr{Const: e.c}
	for _, t := range lin {
		out.Lin = append(out.Lin, wireLin{V: t.v, W: t.w})
	}
	for _, t := range quad {
		out.Quad = append(out.Quad, wireQuad{I: t.i, J: t.j, W: t.w})
	}
	for _, t := range poly {
		out.Poly = append(out.Poly, wirePoly{Vars: append([]int(nil), t.vars...), W: t.w})
	}
	return out
}

// exprFromWire validates and rebuilds an expression over a model with n
// declared variables.
func exprFromWire(m *Model, w wireExpr, n int, where string) (Expr, error) {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	checkID := func(id int) error {
		if id < 0 || id >= n {
			return fmt.Errorf("model: %s references variable %d of %d", where, id, n)
		}
		return nil
	}
	if !finite(w.Const) {
		return Expr{}, fmt.Errorf("model: %s has a non-finite constant", where)
	}
	e := Expr{m: m, c: w.Const}
	if len(w.Lin) > 0 {
		e.lin = make([]linTerm, 0, len(w.Lin))
	}
	for _, t := range w.Lin {
		if err := checkID(t.V); err != nil {
			return Expr{}, err
		}
		if !finite(t.W) {
			return Expr{}, fmt.Errorf("model: %s has a non-finite coefficient", where)
		}
		e.lin = append(e.lin, linTerm{v: t.V, w: t.W})
	}
	if len(w.Quad) > 0 {
		e.quad = make([]quadTerm, 0, len(w.Quad))
	}
	for _, t := range w.Quad {
		if err := checkID(t.I); err != nil {
			return Expr{}, err
		}
		if err := checkID(t.J); err != nil {
			return Expr{}, err
		}
		if t.I == t.J {
			return Expr{}, fmt.Errorf("model: %s has a quadratic term with equal indices %d", where, t.I)
		}
		if !finite(t.W) {
			return Expr{}, fmt.Errorf("model: %s has a non-finite coefficient", where)
		}
		i, j := t.I, t.J
		if i > j {
			i, j = j, i
		}
		e.quad = append(e.quad, quadTerm{i: i, j: j, w: t.W})
	}
	for _, t := range w.Poly {
		if len(t.Vars) < 3 {
			return Expr{}, fmt.Errorf("model: %s has a higher-order term of degree %d (need ≥ 3)", where, len(t.Vars))
		}
		seen := make(map[int]struct{}, len(t.Vars))
		for _, id := range t.Vars {
			if err := checkID(id); err != nil {
				return Expr{}, err
			}
			if _, dup := seen[id]; dup {
				return Expr{}, fmt.Errorf("model: %s has a higher-order term with duplicate variable %d", where, id)
			}
			seen[id] = struct{}{}
		}
		if !finite(t.W) {
			return Expr{}, fmt.Errorf("model: %s has a non-finite coefficient", where)
		}
		e.poly = append(e.poly, polyTerm{vars: append([]int(nil), t.Vars...), w: t.W})
	}
	return e, nil
}

// MarshalJSON encodes the model in the canonical wire format. It fails on
// a model with accumulated construction errors or no objective.
func (m *Model) MarshalJSON() ([]byte, error) {
	if err := m.Err(); err != nil {
		return nil, err
	}
	if m.vars == 0 {
		return nil, fmt.Errorf("model: cannot encode a model with no variables")
	}
	if !m.objSet {
		return nil, fmt.Errorf("model: cannot encode a model with no objective")
	}
	w := wireModel{
		Families:  make([]wireFamily, len(m.fams)),
		Maximize:  m.max,
		Objective: m.obj.toWire(),
		Density:   m.density,
	}
	for i, f := range m.fams {
		w.Families[i] = wireFamily{Name: f.name, N: f.n}
	}
	for _, c := range m.cons {
		w.Constraints = append(w.Constraints, wireConstraint{
			Name:  c.name,
			Sense: c.sense.String(),
			Expr:  c.expr.toWire(),
			Bound: c.bound,
		})
	}
	return json.Marshal(w)
}

// MaxWireVariables caps the total variable count a wire model may
// declare. A family header is a few bytes but allocates O(n) handles, so
// an uncapped count would let a ~90-byte request force a multi-gigabyte
// allocation (the JSON analogue of the qubofile memory-bomb header). The
// cap matches qubofile.MaxSparseReadNodes: one million variables, past
// every instance the solve pipeline can usefully hold.
const MaxWireVariables = 1 << 20

// UnmarshalJSON decodes the wire format into the receiver, replacing any
// prior state. Decoded models are fully validated — family names and
// sizes (total capped at MaxWireVariables, before anything is
// allocated), variable ids, senses, finite coefficients — and compile
// exactly like the model that was marshalled.
func (m *Model) UnmarshalJSON(data []byte) error {
	var w wireModel
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Families) == 0 {
		return fmt.Errorf("model: wire model declares no variable families")
	}
	total := 0
	for _, f := range w.Families {
		if f.N <= 0 {
			return fmt.Errorf("model: wire family %q declares %d variables", f.Name, f.N)
		}
		total += f.N
		if total > MaxWireVariables {
			return fmt.Errorf("model: wire model declares over %d variables", MaxWireVariables)
		}
	}
	fresh := New()
	for _, f := range w.Families {
		fresh.Binary(f.Name, f.N)
	}
	if err := fresh.Err(); err != nil {
		return err
	}
	obj, err := exprFromWire(fresh, w.Objective, fresh.vars, "objective")
	if err != nil {
		return err
	}
	if w.Maximize {
		fresh.Maximize(obj)
	} else {
		fresh.Minimize(obj)
	}
	for _, c := range w.Constraints {
		var sense Sense
		switch c.Sense {
		case LE.String():
			sense = LE
		case EQ.String():
			sense = EQ
		case GE.String():
			sense = GE
		default:
			return fmt.Errorf("model: constraint %q has unknown sense %q", c.Name, c.Sense)
		}
		if math.IsNaN(c.Bound) || math.IsInf(c.Bound, 0) {
			return fmt.Errorf("model: constraint %q has a non-finite bound", c.Name)
		}
		expr, err := exprFromWire(fresh, c.Expr, fresh.vars, fmt.Sprintf("constraint %q", c.Name))
		if err != nil {
			return err
		}
		fresh.Constrain(c.Name, Constraint{expr: expr, sense: sense, bound: c.Bound})
	}
	if w.Density != 0 {
		fresh.Density(w.Density)
	}
	if err := fresh.Err(); err != nil {
		return err
	}
	*m = *fresh
	return nil
}

// Fingerprint returns a hash-stable hex digest of the model's canonical
// wire encoding. Two models fingerprint identically exactly when their
// declarations are equivalent — same families, objective, constraints,
// sense, and density — regardless of how their expressions were built up
// (term order, incremental Adds, duplicate monomials). A solve service
// combines this with saim.OptionsFingerprint to deduplicate identical
// submissions.
func (m *Model) Fingerprint() (string, error) {
	data, err := m.MarshalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
