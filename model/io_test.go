package model_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/ising-machines/saim/model"
)

// TestQUBORoundTrip pins Load→Save→Load to equal energies: a model written
// and re-read must evaluate identically on every assignment, and the
// second serialization must be byte-identical to the first.
func TestQUBORoundTrip(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 5)
	obj := model.Const(2.5).
		Add(x[0].Mul(-1.25)).Add(x[2].Mul(3)).Add(x[4].Mul(-0.5)).
		Add(x[0].Times(x[1]).Mul(2)).Add(x[1].Times(x[3]).Mul(-4.5)).Add(x[2].Times(x[4]).Mul(0.75))
	m.Minimize(obj)

	var buf1 bytes.Buffer
	if err := model.Save(&buf1, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := model.Save(&buf2, loaded); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("serializations differ:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
	loaded2, err := model.Load(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	a, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c, err := loaded2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	asn := make([]int, 5)
	for mask := 0; mask < 1<<5; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		ea, _, err := a.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		eb, _, err := b.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		ec, _, err := c.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb || eb != ec {
			t.Fatalf("assignment %v: energies %v, %v, %v", asn, ea, eb, ec)
		}
	}
}

func TestSaveRejectsUnsupportedModels(t *testing.T) {
	t.Run("constraints", func(t *testing.T) {
		m := model.New()
		x := m.Binary("x", 2)
		m.Minimize(x.Sum())
		m.Constrain("c", x.Sum().LE(1))
		if err := model.Save(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "constraints") {
			t.Fatalf("want constraints error, got %v", err)
		}
	})
	t.Run("high order", func(t *testing.T) {
		m := model.New()
		x := m.Binary("x", 3)
		m.Minimize(model.Prod(x[0], x[1], x[2]))
		if err := model.Save(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "degree") {
			t.Fatalf("want degree error, got %v", err)
		}
	})
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := model.Load(strings.NewReader("not a qubo file\n")); err == nil {
		t.Fatal("want parse error")
	}
}

// TestSaveMaximizeRoundTrip pins the Maximize path of Save: the file holds
// the negated (minimization-frame) energy, so re-Loading yields a Minimize
// model whose objective equals the negated maximization objective on every
// assignment — compilation's transparent sign flip, made durable on disk.
func TestSaveMaximizeRoundTrip(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 4)
	obj := model.Const(1.5).
		Add(x[0].Mul(2)).Add(x[3].Mul(-0.75)).
		Add(x[0].Times(x[2]).Mul(3)).Add(x[1].Times(x[3]).Mul(-1.25))
	m.Maximize(obj)

	var buf bytes.Buffer
	if err := model.Save(&buf, m); err != nil {
		t.Fatalf("Save on a Maximize model: %v", err)
	}
	loaded, err := model.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Maximizing() {
		t.Fatal("Load must return a Minimize model")
	}

	orig, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := loaded.Compile()
	if err != nil {
		t.Fatal(err)
	}
	asn := make([]int, 4)
	for mask := 0; mask < 1<<4; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		// Both compiled models are in the minimization frame (Compile
		// negates a Maximize objective), so their energies must agree.
		eo, _, err := orig.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		er, _, err := rt.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if eo != er {
			t.Fatalf("assignment %v: compiled energy %v, round-tripped %v", asn, eo, er)
		}
	}

	// And a second Save must be byte-identical: the canonical term order
	// makes the negated serialization stable.
	var buf2 bytes.Buffer
	if err := model.Save(&buf2, loaded); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("serializations differ:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

// TestLoadSparseBeyondDenseCap pins the O(nnz) Load path: an instance past
// the dense pipeline's node cap (qubofile.MaxReadNodes) loads through the
// sparse parser and reports its terms faithfully.
func TestLoadSparseBeyondDenseCap(t *testing.T) {
	const n = 20000 // > 16384 dense cap
	var sb strings.Builder
	fmt.Fprintf(&sb, "p qubo 0 %d 2 2\n", n)
	fmt.Fprintf(&sb, "0 0 -1.5\n%d %d 2\n", n-1, n-1)
	fmt.Fprintf(&sb, "0 %d -3\n7 19999 0.5\n", n/2)
	m, err := model.Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("sparse Load at N=%d: %v", n, err)
	}
	if m.N() != n {
		t.Fatalf("N = %d, want %d", m.N(), n)
	}
	probe := func(on ...int) float64 {
		set := map[int]bool{}
		for _, id := range on {
			set[id] = true
		}
		e := 0.0
		if err := m.ObjectiveTerms(func(w float64, ids []int) {
			for _, id := range ids {
				if !set[id] {
					return
				}
			}
			e += w
		}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	if got := probe(0, n/2); got != -1.5-3 {
		t.Fatalf("E(0, %d) = %v, want -4.5", n/2, got)
	}
	if got := probe(7, 19999, n-1); got != 0.5+2 {
		t.Fatalf("E(7, 19999, %d) = %v, want 2.5", n-1, got)
	}
}
