package model_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ising-machines/saim/model"
)

// TestQUBORoundTrip pins Load→Save→Load to equal energies: a model written
// and re-read must evaluate identically on every assignment, and the
// second serialization must be byte-identical to the first.
func TestQUBORoundTrip(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 5)
	obj := model.Const(2.5).
		Add(x[0].Mul(-1.25)).Add(x[2].Mul(3)).Add(x[4].Mul(-0.5)).
		Add(x[0].Times(x[1]).Mul(2)).Add(x[1].Times(x[3]).Mul(-4.5)).Add(x[2].Times(x[4]).Mul(0.75))
	m.Minimize(obj)

	var buf1 bytes.Buffer
	if err := model.Save(&buf1, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := model.Save(&buf2, loaded); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("serializations differ:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
	loaded2, err := model.Load(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	a, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c, err := loaded2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	asn := make([]int, 5)
	for mask := 0; mask < 1<<5; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		ea, _, err := a.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		eb, _, err := b.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		ec, _, err := c.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb || eb != ec {
			t.Fatalf("assignment %v: energies %v, %v, %v", asn, ea, eb, ec)
		}
	}
}

func TestSaveRejectsUnsupportedModels(t *testing.T) {
	t.Run("constraints", func(t *testing.T) {
		m := model.New()
		x := m.Binary("x", 2)
		m.Minimize(x.Sum())
		m.Constrain("c", x.Sum().LE(1))
		if err := model.Save(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "constraints") {
			t.Fatalf("want constraints error, got %v", err)
		}
	})
	t.Run("maximize", func(t *testing.T) {
		m := model.New()
		x := m.Binary("x", 2)
		m.Maximize(x.Sum())
		if err := model.Save(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "minimization") {
			t.Fatalf("want minimization error, got %v", err)
		}
	})
	t.Run("high order", func(t *testing.T) {
		m := model.New()
		x := m.Binary("x", 3)
		m.Minimize(model.Prod(x[0], x[1], x[2]))
		if err := model.Save(&bytes.Buffer{}, m); err == nil || !strings.Contains(err.Error(), "degree") {
			t.Fatalf("want degree error, got %v", err)
		}
	})
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := model.Load(strings.NewReader("not a qubo file\n")); err == nil {
		t.Fatal("want parse error")
	}
}
