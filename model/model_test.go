package model_test

import (
	"context"
	"math"
	"strings"
	"testing"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

func TestDeclarativeKnapsack(t *testing.T) {
	values := []float64{60, 100, 120, 70, 80, 50, 90, 110, 30, 40}
	weights := []float64{10, 20, 30, 15, 18, 9, 21, 27, 7, 12}

	m := model.New()
	x := m.Binary("take", len(values))
	m.Maximize(model.Dot(values, x))
	m.Constrain("weight", model.Dot(weights, x).LE(80))

	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(300), saim.WithSweepsPerRun(300),
		saim.WithEta(5), saim.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("no feasible packing found")
	}

	// Name-aware extraction agrees with the raw assignment.
	asn := sol.Assignment()
	total, wt := 0.0, 0.0
	for i := range values {
		if sol.Value("take", i) != asn[i] {
			t.Fatalf("Value(take,%d) = %d, assignment %d", i, sol.Value("take", i), asn[i])
		}
		if sol.Value("take", i) == 1 {
			total += values[i]
			wt += weights[i]
		}
	}
	if got := sol.Objective(); got != total {
		t.Fatalf("Objective() = %v, recomputed %v", got, total)
	}
	if vs := sol.Values("take"); len(vs) != len(values) {
		t.Fatalf("Values length %d", len(vs))
	}

	// Constraint report: one satisfied ≤ row with the right slack.
	report := sol.Constraints()
	if len(report) != 1 {
		t.Fatalf("want 1 constraint status, got %d", len(report))
	}
	cs := report[0]
	if cs.Name != "weight" || cs.Sense != model.LE || !cs.Satisfied {
		t.Fatalf("bad status %+v", cs)
	}
	if cs.Activity != wt || cs.Bound != 80 || cs.Slack != 80-wt || cs.Violation != 0 {
		t.Fatalf("bad slack arithmetic %+v (weight %v)", cs, wt)
	}
}

func TestScalarVarAndObjectiveFrame(t *testing.T) {
	m := model.New()
	y := m.BinaryVar("y")
	z := m.BinaryVar("z")
	// max y − 2z → picks y=1, z=0.
	m.Maximize(y.Mul(1).Add(z.Mul(-2)))
	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(20), saim.WithSweepsPerRun(100), saim.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value("y") != 1 || sol.Value("z") != 0 {
		t.Fatalf("got y=%d z=%d", sol.Value("y"), sol.Value("z"))
	}
	if sol.Objective() != 1 {
		t.Fatalf("Objective = %v, want 1", sol.Objective())
	}
	if y.Name() != "y" {
		t.Fatalf("scalar name %q", y.Name())
	}
}

func TestVarNames(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 3)
	if x[2].Name() != "x[2]" {
		t.Fatalf("got %q", x[2].Name())
	}
	if x[1].Index() != 1 {
		t.Fatalf("index %d", x[1].Index())
	}
}

func TestConstraintStatusGEAndEQ(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 3)
	m.Minimize(x.Sum())
	m.Constrain("cover", model.Dot([]float64{1, 1, 1}, x).GE(2))
	m.Constrain("pin", x[0].Mul(1).EQ(1))
	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(200), saim.WithSweepsPerRun(100),
		saim.WithEta(1), saim.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("infeasible")
	}
	if sol.Objective() != 2 {
		t.Fatalf("objective %v, want 2 (smallest cover with x0 pinned)", sol.Objective())
	}
	if sol.Value("x", 0) != 1 {
		t.Fatal("pin constraint not honored")
	}
	report := sol.Constraints()
	if report[0].Slack != report[0].Activity-2 || !report[0].Satisfied {
		t.Fatalf("GE status %+v", report[0])
	}
	if report[1].Violation != 0 || !report[1].Satisfied {
		t.Fatalf("EQ status %+v", report[1])
	}
}

func TestModelErrorPaths(t *testing.T) {
	cases := []struct {
		name  string
		build func() *model.Model
		want  string
	}{
		{"dup family", func() *model.Model {
			m := model.New()
			m.Binary("x", 2)
			m.Binary("x", 3)
			return m
		}, "declared twice"},
		{"zero vars family", func() *model.Model {
			m := model.New()
			m.Binary("x", 0)
			return m
		}, "n > 0"},
		{"empty name", func() *model.Model {
			m := model.New()
			m.Binary("", 2)
			return m
		}, "non-empty name"},
		{"no variables", func() *model.Model {
			return model.New()
		}, "no variables"},
		{"objective twice", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Minimize(x.Sum())
			m.Maximize(x.Sum())
			return m
		}, "objective set twice"},
		{"dup constraint name", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Constrain("c", x.Sum().LE(1))
			m.Constrain("c", x.Sum().LE(2))
			return m
		}, "declared twice"},
		{"nonlinear LE", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Constrain("q", x[0].Times(x[1]).LE(1))
			return m
		}, "must be linear"},
		{"negative LE coefficient", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Constrain("neg", x[0].Mul(-1).LE(1))
			return m
		}, "negative coefficient"},
		{"negative folded bound", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Constrain("b", x.Sum().Add(model.Const(5)).LE(1))
			return m
		}, "negative"},
		{"unsatisfiable GE", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Constrain("g", x.Sum().GE(3))
			return m
		}, "unsatisfiable"},
		{"dot mismatch", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 3)
			m.Minimize(model.Dot([]float64{1, 2}, x))
			return m
		}, "Dot over"},
		{"non-finite", func() *model.Model {
			m := model.New()
			x := m.Binary("x", 2)
			m.Minimize(x[0].Mul(math.NaN()))
			return m
		}, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Compile()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestMixedModelsPanics(t *testing.T) {
	m1, m2 := model.New(), model.New()
	a := m1.Binary("a", 1)
	b := m2.Binary("b", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-model expression")
		}
	}()
	_ = a[0].Times(b[0])
}

func TestValuePanics(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 2)
	m.Minimize(x.Sum())
	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(5), saim.WithSweepsPerRun(50), saim.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"unknown family": func() { sol.Value("nope", 0) },
		"missing index":  func() { sol.Value("x") },
		"bad index":      func() { sol.Value("x", 5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

// TestEqualityNegativeBound checks the lossless negation of an equality
// with a negative folded bound: x0 − x1 = −1 forces x0=0, x1=1.
func TestEqualityNegativeBound(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 2)
	m.Minimize(model.Const(0))
	m.Constrain("diff", x[0].Mul(1).Sub(x[1].Mul(1)).EQ(-1))
	compiled, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		asn  []int
		feas bool
	}{
		{[]int{0, 1}, true},
		{[]int{1, 0}, false},
		{[]int{0, 0}, false},
		{[]int{1, 1}, false},
	} {
		_, feas, err := compiled.Evaluate(tc.asn)
		if err != nil {
			t.Fatal(err)
		}
		if feas != tc.feas {
			t.Fatalf("assignment %v: feasible=%v, want %v", tc.asn, feas, tc.feas)
		}
	}
}

// TestProdCollapsesDuplicates pins Prod's x² = x collapse: Prod(x,x,y) is
// the quadratic x·y, not a degree-3 monomial, so the model stays quadratic.
func TestProdCollapsesDuplicates(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 2)
	m.Minimize(model.Prod(x[0], x[0], x[1]).Mul(3))
	compiled, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Form() != saim.FormUnconstrained {
		t.Fatalf("form %v, want unconstrained (quadratic)", compiled.Form())
	}
	cost, _, err := compiled.Evaluate([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 {
		t.Fatalf("cost %v, want 3", cost)
	}
}
