package model

import (
	"fmt"
	"math"
	"sort"
)

// Expr is an algebraic expression over the binary variables of one Model:
// a constant plus linear, quadratic, and higher-order monomials. Exprs are
// values — every operation returns a new expression and never mutates its
// operands — so they can be built up incrementally, stored, and reused.
//
// Build them from variables (v.Mul, v.Times, Prod), from slices (Dot,
// Vars.Sum), or from constants (Const), and combine with Add, Sub, Mul,
// and Sum.
type Expr struct {
	m    *Model
	c    float64
	lin  []linTerm
	quad []quadTerm
	poly []polyTerm
}

type linTerm struct {
	v int
	w float64
}

type quadTerm struct {
	i, j int // i < j
	w    float64
}

type polyTerm struct {
	vars []int // deduplicated, degree ≥ 3
	w    float64
}

// Const returns the constant expression c.
func Const(c float64) Expr { return Expr{c: c} }

// Mul returns the linear term c·v.
func (v Var) Mul(c float64) Expr {
	return Expr{m: v.m, lin: []linTerm{{v: v.id, w: c}}}
}

// Times returns the product v·o. For distinct variables this is the
// quadratic term x_i·x_j; for the same variable it collapses to the linear
// term (x² = x over binaries).
func (v Var) Times(o Var) Expr {
	m := mergeModels(v.m, o.m)
	if v.id == o.id {
		return Expr{m: m, lin: []linTerm{{v: v.id, w: 1}}}
	}
	i, j := v.id, o.id
	if i > j {
		i, j = j, i
	}
	return Expr{m: m, quad: []quadTerm{{i: i, j: j, w: 1}}}
}

// Prod returns the monomial Π x_i over the given variables. Duplicate
// variables collapse (x² = x); the degree after deduplication classifies
// the term as linear, quadratic, or higher-order. Typical low arities
// dedup with an allocation-light linear scan; high arities switch to a
// map (mirroring the builder-side dedupVars).
func Prod(vs ...Var) Expr {
	if len(vs) == 0 {
		return Const(1)
	}
	const linearScanMax = 8
	m := vs[0].m
	ids := make([]int, 0, len(vs))
	var seen map[int]struct{}
	if len(vs) > linearScanMax {
		seen = make(map[int]struct{}, len(vs))
	}
	for _, v := range vs {
		m = mergeModels(m, v.m)
		if seen != nil {
			if _, dup := seen[v.id]; dup {
				continue
			}
			seen[v.id] = struct{}{}
			ids = append(ids, v.id)
			continue
		}
		dup := false
		for _, u := range ids {
			if u == v.id {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, v.id)
		}
	}
	switch len(ids) {
	case 1:
		return Expr{m: m, lin: []linTerm{{v: ids[0], w: 1}}}
	case 2:
		i, j := ids[0], ids[1]
		if i > j {
			i, j = j, i
		}
		return Expr{m: m, quad: []quadTerm{{i: i, j: j, w: 1}}}
	default:
		return Expr{m: m, poly: []polyTerm{{vars: ids, w: 1}}}
	}
}

// Dot returns the linear expression Σ coeffs_i·vs_i. The slices must have
// equal length.
func Dot(coeffs []float64, vs Vars) Expr {
	if len(coeffs) != len(vs) {
		if len(vs) > 0 {
			vs[0].m.errf("model: Dot over %d coefficients but %d variables", len(coeffs), len(vs))
			return Expr{m: vs[0].m}
		}
		panic(fmt.Sprintf("model: Dot over %d coefficients but no variables", len(coeffs)))
	}
	out := Expr{lin: make([]linTerm, 0, len(vs))}
	for i, v := range vs {
		out.m = mergeModels(out.m, v.m)
		out.lin = append(out.lin, linTerm{v: v.id, w: coeffs[i]})
	}
	return out
}

// Sum returns e_1 + e_2 + … + e_k. Unlike a fold over Add — which copies
// the accumulated terms at every step — Sum concatenates once, so it is
// the way to combine a large number of terms (the problem catalog builds
// its objectives with it).
func Sum(es ...Expr) Expr {
	var out Expr
	nl, nq, np := 0, 0, 0
	for _, e := range es {
		out.m = mergeModels(out.m, e.m)
		out.c += e.c
		nl += len(e.lin)
		nq += len(e.quad)
		np += len(e.poly)
	}
	out.lin = make([]linTerm, 0, nl)
	out.quad = make([]quadTerm, 0, nq)
	if np > 0 {
		out.poly = make([]polyTerm, 0, np)
	}
	for _, e := range es {
		out.lin = append(out.lin, e.lin...)
		out.quad = append(out.quad, e.quad...)
		out.poly = append(out.poly, e.poly...)
	}
	return out
}

// Sum returns Σ_i x_i over the variables.
func (vs Vars) Sum() Expr {
	out := Expr{lin: make([]linTerm, 0, len(vs))}
	for _, v := range vs {
		out.m = mergeModels(out.m, v.m)
		out.lin = append(out.lin, linTerm{v: v.id, w: 1})
	}
	return out
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	out := Expr{
		m:    mergeModels(e.m, o.m),
		c:    e.c + o.c,
		lin:  make([]linTerm, 0, len(e.lin)+len(o.lin)),
		quad: make([]quadTerm, 0, len(e.quad)+len(o.quad)),
	}
	out.lin = append(append(out.lin, e.lin...), o.lin...)
	out.quad = append(append(out.quad, e.quad...), o.quad...)
	if n := len(e.poly) + len(o.poly); n > 0 {
		out.poly = make([]polyTerm, 0, n)
		out.poly = append(append(out.poly, e.poly...), o.poly...)
	}
	return out
}

// Sub returns e − o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Mul(-1)) }

// Mul returns the expression scaled by c.
func (e Expr) Mul(c float64) Expr {
	out := Expr{m: e.m, c: e.c * c}
	out.lin = make([]linTerm, len(e.lin))
	for i, t := range e.lin {
		t.w *= c
		out.lin[i] = t
	}
	out.quad = make([]quadTerm, len(e.quad))
	for i, t := range e.quad {
		t.w *= c
		out.quad[i] = t
	}
	if len(e.poly) > 0 {
		out.poly = make([]polyTerm, len(e.poly))
		for i, t := range e.poly {
			out.poly[i] = polyTerm{vars: t.vars, w: t.w * c}
		}
	}
	return out
}

// Eval returns the value of the expression under a 0/1 assignment over all
// model variables (entries beyond 1 are treated as 1).
func (e Expr) Eval(assignment []int) float64 {
	on := func(id int) bool { return id < len(assignment) && assignment[id] != 0 }
	v := e.c
	for _, t := range e.lin {
		if on(t.v) {
			v += t.w
		}
	}
	for _, t := range e.quad {
		if on(t.i) && on(t.j) {
			v += t.w
		}
	}
	for _, t := range e.poly {
		all := true
		for _, id := range t.vars {
			if !on(id) {
				all = false
				break
			}
		}
		if all {
			v += t.w
		}
	}
	return v
}

// degree returns the polynomial degree of the expression (0 for a
// constant), ignoring terms with zero weight.
func (e Expr) degree() int {
	d := 0
	for _, t := range e.lin {
		if t.w != 0 && d < 1 {
			d = 1
		}
	}
	for _, t := range e.quad {
		if t.w != 0 && d < 2 {
			d = 2
		}
	}
	for _, t := range e.poly {
		if t.w != 0 && d < len(t.vars) {
			d = len(t.vars)
		}
	}
	return d
}

// canonical merges duplicate monomials and returns the expression's terms
// in the deterministic order Compile emits: linear terms by variable id,
// quadratic terms by (i, j), higher-order terms in insertion order.
func (e Expr) canonical() (lin []linTerm, quad []quadTerm, poly []polyTerm) {
	lm := make(map[int]float64, len(e.lin))
	for _, t := range e.lin {
		lm[t.v] += t.w
	}
	lin = make([]linTerm, 0, len(lm))
	for v, w := range lm {
		if w != 0 {
			lin = append(lin, linTerm{v: v, w: w})
		}
	}
	sort.Slice(lin, func(a, b int) bool { return lin[a].v < lin[b].v })

	qm := make(map[[2]int]float64, len(e.quad))
	for _, t := range e.quad {
		qm[[2]int{t.i, t.j}] += t.w
	}
	quad = make([]quadTerm, 0, len(qm))
	for k, w := range qm {
		if w != 0 {
			quad = append(quad, quadTerm{i: k[0], j: k[1], w: w})
		}
	}
	sort.Slice(quad, func(a, b int) bool {
		if quad[a].i != quad[b].i {
			return quad[a].i < quad[b].i
		}
		return quad[a].j < quad[b].j
	})

	for _, t := range e.poly {
		if t.w != 0 {
			poly = append(poly, t)
		}
	}
	return lin, quad, poly
}

// linearCoeffs returns the merged linear coefficient vector of a linear
// expression over n variables.
func (e Expr) linearCoeffs(n int) []float64 {
	out := make([]float64, n)
	for _, t := range e.lin {
		if t.v < n {
			out[t.v] += t.w
		}
	}
	return out
}

// valid reports whether every coefficient of the expression is finite.
func (e Expr) valid() bool {
	f := func(w float64) bool { return !math.IsNaN(w) && !math.IsInf(w, 0) }
	if !f(e.c) {
		return false
	}
	for _, t := range e.lin {
		if !f(t.w) {
			return false
		}
	}
	for _, t := range e.quad {
		if !f(t.w) {
			return false
		}
	}
	for _, t := range e.poly {
		if !f(t.w) {
			return false
		}
	}
	return true
}

// mergeModels resolves the owning model of a combined expression; mixing
// variables from two different models is a programmer error and panics.
func mergeModels(a, b *Model) *Model {
	switch {
	case a == nil:
		return b
	case b == nil, a == b:
		return a
	default:
		panic("model: expression mixes variables from different models")
	}
}
