package model

import (
	"fmt"
	"math"

	saim "github.com/ising-machines/saim"
)

// Solution wraps a solver result with name-aware extraction: values are
// read back by variable name and index, the objective is reported in the
// user's frame (maximization values are mapped back), and every named
// constraint gets a slack/violation report. Callers never touch raw index
// slices.
type Solution struct {
	model *Model
	res   *saim.Result
}

// NewSolution wraps a solver result produced outside Model.Solve — e.g. by
// the decompose package's large-instance path — into the same name-aware
// Solution that Solve returns. The result's Assignment must be indexed by
// the model's variable ids and its Cost expressed in the minimization
// frame (a Maximize model's Objective maps the sign back, exactly as for
// Solve).
func NewSolution(m *Model, res *saim.Result) *Solution {
	return &Solution{model: m, res: res}
}

// Result returns the underlying solver result (solver name, stop reason,
// sweep counts, multipliers, …).
func (s *Solution) Result() *saim.Result { return s.res }

// Feasible reports whether the solve found a feasible assignment.
func (s *Solution) Feasible() bool { return !s.res.Infeasible() }

// Objective returns the objective value of the best assignment in the
// frame the model declared: a Maximize model reports the maximized value.
// It returns ±Inf when no feasible assignment was found.
func (s *Solution) Objective() float64 {
	if s.res.Infeasible() {
		if s.model.max {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	if s.model.max {
		return -s.res.Cost
	}
	return s.res.Cost
}

// Assignment returns a copy of the best assignment over all declared
// variables (nil when infeasible).
func (s *Solution) Assignment() []int {
	if s.res.Assignment == nil {
		return nil
	}
	return append([]int(nil), s.res.Assignment...)
}

// Value returns the 0/1 value of the named variable. Families of size one
// take no index; indexed families take exactly one. It panics on an
// unknown name, a bad index, or an infeasible solution — use Feasible
// first.
func (s *Solution) Value(name string, idx ...int) int {
	f, ok := s.model.byName[name]
	if !ok {
		panic(fmt.Sprintf("model: no variable family %q", name))
	}
	i := 0
	switch len(idx) {
	case 0:
		if f.n != 1 {
			panic(fmt.Sprintf("model: family %q has %d variables; Value needs an index", name, f.n))
		}
	case 1:
		i = idx[0]
		if i < 0 || i >= f.n {
			panic(fmt.Sprintf("model: index %d out of range for family %q of size %d", i, name, f.n))
		}
	default:
		panic("model: Value takes at most one index")
	}
	if s.res.Assignment == nil {
		panic("model: Value on an infeasible solution")
	}
	return s.res.Assignment[f.base+i]
}

// Values returns the 0/1 values of a whole family in index order. It
// panics on an unknown name or an infeasible solution.
func (s *Solution) Values(name string) []int {
	f, ok := s.model.byName[name]
	if !ok {
		panic(fmt.Sprintf("model: no variable family %q", name))
	}
	if s.res.Assignment == nil {
		panic("model: Values on an infeasible solution")
	}
	return append([]int(nil), s.res.Assignment[f.base:f.base+f.n]...)
}

// ConstraintStatus reports how the best assignment sits against one named
// constraint.
type ConstraintStatus struct {
	// Name is the constraint's declared name.
	Name string
	// Sense is the relational sense (LE, EQ, GE).
	Sense Sense
	// Activity is the constraint expression's value at the assignment
	// (including any constant term); Bound is the declared right-hand side.
	Activity, Bound float64
	// Slack is the satisfied-side margin: Bound − Activity for ≤,
	// Activity − Bound for ≥, zero for equalities. Negative slack means
	// the constraint is violated by that amount.
	Slack float64
	// Violation is the amount by which the constraint is broken
	// (zero when satisfied).
	Violation float64
	// Satisfied reports Violation ≤ 1e-9.
	Satisfied bool
}

// Constraints returns the slack/violation report of every named constraint
// at the best assignment, in declaration order. It returns nil when the
// solve found no assignment.
func (s *Solution) Constraints() []ConstraintStatus {
	if s.res.Assignment == nil {
		return nil
	}
	out := make([]ConstraintStatus, len(s.model.cons))
	for i, c := range s.model.cons {
		act := c.expr.Eval(s.res.Assignment)
		st := ConstraintStatus{Name: c.name, Sense: c.sense, Activity: act, Bound: c.bound}
		switch c.sense {
		case LE:
			st.Slack = c.bound - act
			st.Violation = math.Max(0, -st.Slack)
		case GE:
			st.Slack = act - c.bound
			st.Violation = math.Max(0, -st.Slack)
		default:
			st.Violation = math.Abs(act - c.bound)
		}
		st.Satisfied = st.Violation <= 1e-9
		out[i] = st
	}
	return out
}
