package model_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/ising-machines/saim/model"
)

// jsonRoundTrip marshals and unmarshals a model, failing the test on any
// codec error.
func jsonRoundTrip(t *testing.T, m *model.Model) *model.Model {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out := model.New()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal: %v\nwire: %s", err, data)
	}
	return out
}

// assertCompileEqual pins two models to identical compiled behavior on
// every assignment: same form, same energy, same feasibility.
func assertCompileEqual(t *testing.T, a, b *model.Model, n int) {
	t.Helper()
	ca, err := a.Compile()
	if err != nil {
		t.Fatalf("compile a: %v", err)
	}
	cb, err := b.Compile()
	if err != nil {
		t.Fatalf("compile b: %v", err)
	}
	if ca.Form() != cb.Form() {
		t.Fatalf("form %v != %v", ca.Form(), cb.Form())
	}
	asn := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range asn {
			asn[i] = mask >> i & 1
		}
		ea, fa, err := ca.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		eb, fb, err := cb.Evaluate(asn)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb || fa != fb {
			t.Fatalf("assignment %v: (%v, %v) != (%v, %v)", asn, ea, fa, eb, fb)
		}
	}
}

// TestJSONRoundTripAllForms pins the wire codec across the three model
// forms and all three constraint senses: the decoded model compiles to
// the same energies and feasibility as the original on every assignment.
func TestJSONRoundTripAllForms(t *testing.T) {
	t.Run("unconstrained", func(t *testing.T) {
		m := model.New()
		x := m.Binary("x", 4)
		m.Minimize(model.Const(1.25).
			Add(x[0].Mul(-2)).Add(x[3].Mul(0.5)).
			Add(x[0].Times(x[1]).Mul(3)).Add(x[2].Times(x[3]).Mul(-1)))
		assertCompileEqual(t, m, jsonRoundTrip(t, m), 4)
	})
	t.Run("constrained all senses", func(t *testing.T) {
		m := model.New()
		x := m.Binary("pick", 5)
		m.Maximize(model.Dot([]float64{3, 1, 4, 1, 5}, x))
		m.Constrain("cap", model.Dot([]float64{2, 3, 1, 4, 2}, x).LE(7))
		m.Constrain("pair", x[0].Mul(1).Add(x[1].Mul(1)).EQ(1))
		m.Constrain("floor", model.Dot([]float64{1, 1, 1, 1, 1}, x).GE(2))
		rt := jsonRoundTrip(t, m)
		assertCompileEqual(t, m, rt, 5)
		if !rt.Maximizing() {
			t.Fatal("Maximize flag lost on the wire")
		}
		if rt.NumConstraints() != 3 {
			t.Fatalf("constraints = %d, want 3", rt.NumConstraints())
		}
	})
	t.Run("high order", func(t *testing.T) {
		m := model.New()
		x := m.Binary("s", 4)
		m.Minimize(model.Prod(x[0], x[1], x[2]).Mul(2).Add(x[3].Mul(-1)))
		m.Constrain("sync", model.Prod(x[1], x[2], x[3]).EQ(0))
		assertCompileEqual(t, m, jsonRoundTrip(t, m), 4)
	})
	t.Run("multiple families", func(t *testing.T) {
		m := model.New()
		a := m.Binary("a", 2)
		b := m.Binary("b", 2)
		m.Minimize(a.Sum().Add(b.Sum().Mul(-2)).Add(a[1].Times(b[0])))
		rt := jsonRoundTrip(t, m)
		assertCompileEqual(t, m, rt, 4)
		// Family bookkeeping must survive so Solution.Value works by name.
		if rt.N() != 4 {
			t.Fatalf("N = %d", rt.N())
		}
	})
}

// TestJSONCanonicalEncoding pins determinism: two equal models built from
// differently-ordered, duplicated terms marshal to identical bytes and
// identical fingerprints.
func TestJSONCanonicalEncoding(t *testing.T) {
	build := func(scrambled bool) *model.Model {
		m := model.New()
		x := m.Binary("x", 3)
		var obj model.Expr
		if scrambled {
			// Same polynomial, assembled backwards with split weights.
			obj = x[2].Times(x[0]).Mul(4).
				Add(x[1].Mul(1)).Add(x[1].Mul(1)).
				Add(x[0].Mul(-3)).Add(model.Const(2))
		} else {
			obj = model.Const(2).
				Add(x[0].Mul(-3)).Add(x[1].Mul(2)).
				Add(x[0].Times(x[2]).Mul(4))
		}
		m.Minimize(obj)
		m.Constrain("c", model.Dot([]float64{1, 2, 1}, x).LE(3))
		return m
	}
	a, err := json.Marshal(build(false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical encodings differ:\n%s\nvs\n%s", a, b)
	}
	fa, err := build(false).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := build(true).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("fingerprints differ: %s vs %s", fa, fb)
	}
	// And a semantically different model must not collide.
	other := model.New()
	x := other.Binary("x", 3)
	other.Minimize(x.Sum())
	other.Constrain("c", model.Dot([]float64{1, 2, 1}, x).LE(3))
	fo, err := other.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fo == fa {
		t.Fatal("different models share a fingerprint")
	}
}

// TestJSONAgainstQuboIO pins the wire codec against the qbsolv file codec:
// a model loaded from a .qubo file survives JSON round-trip with its Save
// serialization byte-identical, so the two interchange paths agree on the
// model's exact energy.
func TestJSONAgainstQuboIO(t *testing.T) {
	qubo := "c constant 1.5\np qubo 0 4 3 2\n0 0 -1\n1 1 2\n3 3 -0.25\n0 2 3\n1 3 -2\n"
	m, err := model.Load(strings.NewReader(qubo))
	if err != nil {
		t.Fatal(err)
	}
	rt := jsonRoundTrip(t, m)
	var save1, save2 bytes.Buffer
	if err := model.Save(&save1, m); err != nil {
		t.Fatal(err)
	}
	if err := model.Save(&save2, rt); err != nil {
		t.Fatal(err)
	}
	if save1.String() != save2.String() {
		t.Fatalf("Save after JSON round trip differs:\n%s\nvs\n%s", save1.String(), save2.String())
	}
	assertCompileEqual(t, m, rt, 4)
}

// TestJSONRejectsBadWire pins validation of hostile wire payloads.
func TestJSONRejectsBadWire(t *testing.T) {
	cases := map[string]string{
		"no families":     `{"families":[],"objective":{}}`,
		"bad id":          `{"families":[{"name":"x","n":2}],"objective":{"lin":[{"v":5,"w":1}]}}`,
		"negative id":     `{"families":[{"name":"x","n":2}],"objective":{"lin":[{"v":-1,"w":1}]}}`,
		"equal quad ids":  `{"families":[{"name":"x","n":2}],"objective":{"quad":[{"i":1,"j":1,"w":1}]}}`,
		"unknown sense":   `{"families":[{"name":"x","n":2}],"objective":{"lin":[{"v":0,"w":1}]},"constraints":[{"name":"c","sense":"!=","expr":{"lin":[{"v":0,"w":1}]},"bound":1}]}`,
		"dup family":      `{"families":[{"name":"x","n":1},{"name":"x","n":1}],"objective":{"lin":[{"v":0,"w":1}]}}`,
		"short poly":      `{"families":[{"name":"x","n":3}],"objective":{"poly":[{"vars":[0,1],"w":1}]}}`,
		"dup poly var":    `{"families":[{"name":"x","n":3}],"objective":{"poly":[{"vars":[0,1,1],"w":1}]}}`,
		"constraint id":   `{"families":[{"name":"x","n":2}],"objective":{"lin":[{"v":0,"w":1}]},"constraints":[{"name":"c","sense":"<=","expr":{"lin":[{"v":9,"w":1}]},"bound":1}]}`,
		"malformed json":  `{"families":`,
		"negative family": `{"families":[{"name":"x","n":-3}],"objective":{}}`,
		// The 90-byte allocation bomb: must be rejected before any
		// handle slice is allocated (see MaxWireVariables).
		"huge family": `{"families":[{"name":"x","n":2000000000}],"objective":{}}`,
		"huge in sum": `{"families":[{"name":"a","n":1000000},{"name":"b","n":1000000}],"objective":{}}`,
		"zero n":      `{"families":[{"name":"x","n":0}],"objective":{}}`,
	}
	for name, wire := range cases {
		m := model.New()
		if err := json.Unmarshal([]byte(wire), m); err == nil {
			t.Errorf("%s: accepted %s", name, wire)
		}
	}
}

// TestJSONModelSolves pins that a decoded model actually runs end to end
// on a registered backend with a name-aware solution.
func TestJSONModelSolves(t *testing.T) {
	m := model.New()
	x := m.Binary("take", 4)
	m.Maximize(model.Dot([]float64{10, 7, 5, 3}, x))
	m.Constrain("w", model.Dot([]float64{4, 3, 2, 1}, x).LE(6))
	rt := jsonRoundTrip(t, m)
	sol, err := rt.Solve(t.Context(), "exact")
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("infeasible")
	}
	// Proven optimum: value 15 (e.g. items 0 and 2 at weight 6).
	if sol.Objective() != 15 {
		t.Fatalf("objective = %v, want 15", sol.Objective())
	}
	best, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cost, feas, err := best.Evaluate(sol.Assignment())
	if err != nil || !feas {
		t.Fatalf("assignment does not evaluate feasibly on the original model: %v", err)
	}
	if -cost != sol.Objective() {
		t.Fatalf("objective %v vs original-model value %v", sol.Objective(), -cost)
	}
	if v := sol.Value("take", 0); v != 0 && v != 1 {
		t.Fatalf("Value = %d", v)
	}
}
