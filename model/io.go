package model

import (
	"fmt"
	"io"
	"os"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/qubofile"
)

// Load reads a QUBO in the qbsolv text format — the de-facto interchange
// format of the Ising-machine ecosystem — into a declarative model: one
// variable family "x" of the file's size, with the file's energy as the
// minimization objective. The loaded model solves on any backend that
// accepts unconstrained models and round-trips through Save with
// identical energies.
func Load(r io.Reader) (*Model, error) {
	q, err := qubofile.Read(r)
	if err != nil {
		return nil, err
	}
	m := New()
	x := m.Binary("x", q.N())
	obj := Expr{m: m, c: q.Const}
	for i := 0; i < q.N(); i++ {
		if w := q.C[i]; w != 0 {
			obj.lin = append(obj.lin, linTerm{v: x[i].id, w: w})
		}
		for j := i + 1; j < q.N(); j++ {
			// Q stores half the pair weight per symmetric entry.
			if w := 2 * q.Q.At(i, j); w != 0 {
				obj.quad = append(obj.quad, quadTerm{i: x[i].id, j: x[j].id, w: w})
			}
		}
	}
	m.Minimize(obj)
	return m, nil
}

// LoadFile is Load on a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the model's objective as a qbsolv-format QUBO. The format
// holds an unconstrained minimization QUBO, so the model must have no
// constraints, a Minimize objective (negate a Maximize model first), and
// no monomials of degree ≥ 3. Writing and re-Loading yields an
// energy-identical model.
func Save(w io.Writer, m *Model) error {
	if err := m.Err(); err != nil {
		return err
	}
	if m.vars == 0 {
		return fmt.Errorf("model: Save on a model with no variables")
	}
	if len(m.cons) > 0 {
		return fmt.Errorf("model: the QUBO format cannot express constraints (model has %d)", len(m.cons))
	}
	if m.max {
		return fmt.Errorf("model: the QUBO format holds minimization energies; negate the objective and use Minimize")
	}
	lin, quad, poly := m.obj.canonical()
	if len(poly) > 0 {
		return fmt.Errorf("model: the QUBO format cannot express monomials of degree ≥ 3 (objective has %d)", len(poly))
	}
	q := ising.NewQUBO(m.vars)
	q.AddConst(m.obj.c)
	for _, t := range lin {
		q.AddLinear(t.v, t.w)
	}
	for _, t := range quad {
		q.AddQuad(t.i, t.j, t.w)
	}
	return qubofile.Write(w, q)
}

// SaveFile is Save on a file path.
func SaveFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, m); err != nil {
		return err
	}
	return f.Close()
}
