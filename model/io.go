package model

import (
	"fmt"
	"io"
	"os"

	"github.com/ising-machines/saim/internal/qubofile"
)

// Load reads a QUBO in the qbsolv text format — the de-facto interchange
// format of the Ising-machine ecosystem — into a declarative model: one
// variable family "x" of the file's size, with the file's energy as the
// minimization objective. The loaded model solves on any backend that
// accepts unconstrained models and round-trips through Save with
// identical energies.
//
// The parse is O(nnz): the file's nonzero triples stream straight into
// preallocated term lists without ever materializing the dense
// coefficient matrix, so instances up to qubofile.MaxSparseReadNodes
// variables (far past the dense pipeline's 16384-node cap) load in time
// proportional to their actual couplers — the input the sparse
// decomposition path is built for.
func Load(r io.Reader) (*Model, error) {
	f, err := qubofile.ReadSparse(r)
	if err != nil {
		return nil, err
	}
	m := New()
	x := m.Binary("x", f.N)
	obj := Expr{
		m:    m,
		c:    f.Const,
		lin:  make([]linTerm, 0, len(f.Lin)),
		quad: make([]quadTerm, 0, len(f.Quad)),
	}
	for _, e := range f.Lin {
		if e.W != 0 {
			obj.lin = append(obj.lin, linTerm{v: x[e.I].id, w: e.W})
		}
	}
	for _, e := range f.Quad {
		if e.W != 0 {
			obj.quad = append(obj.quad, quadTerm{i: x[e.I].id, j: x[e.J].id, w: e.W})
		}
	}
	m.Minimize(obj)
	return m, nil
}

// LoadFile is Load on a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the model's objective as a qbsolv-format QUBO. The format
// holds an unconstrained minimization QUBO, so the model must have no
// constraints and no monomials of degree ≥ 3. A Maximize model saves its
// negated (minimization-frame) energy — the same sign flip compilation
// applies transparently — so Load always recovers a Minimize model whose
// energies equal the saved model's minimization objective exactly.
//
// The write is O(nnz): canonical terms stream straight to the file, so a
// sparsely loaded large instance saves without a dense detour. Writing
// and re-Loading yields an energy-identical, byte-stable model.
func Save(w io.Writer, m *Model) error {
	if err := m.Err(); err != nil {
		return err
	}
	if m.vars == 0 {
		return fmt.Errorf("model: Save on a model with no variables")
	}
	if len(m.cons) > 0 {
		return fmt.Errorf("model: the QUBO format cannot express constraints (model has %d)", len(m.cons))
	}
	obj := m.obj
	if m.max {
		obj = obj.Mul(-1)
	}
	lin, quad, poly := obj.canonical()
	if len(poly) > 0 {
		return fmt.Errorf("model: the QUBO format cannot express monomials of degree ≥ 3 (objective has %d)", len(poly))
	}
	f := &qubofile.File{
		N:     m.vars,
		Const: obj.c,
		Lin:   make([]qubofile.Entry, 0, len(lin)),
		Quad:  make([]qubofile.Entry, 0, len(quad)),
	}
	for _, t := range lin {
		f.Lin = append(f.Lin, qubofile.Entry{I: t.v, J: t.v, W: t.w})
	}
	for _, t := range quad {
		f.Quad = append(f.Quad, qubofile.Entry{I: t.i, J: t.j, W: t.w})
	}
	return qubofile.WriteSparse(w, f)
}

// SaveFile is Save on a file path.
func SaveFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, m); err != nil {
		return err
	}
	return f.Close()
}
