package saim

import (
	"fmt"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/ising"
)

// QUBOProblem is an unconstrained quadratic binary problem built with
// Builder.BuildUnconstrained. It exists for workloads like max-cut that
// Ising machines solve natively, without the SAIM constraint machinery.
type QUBOProblem struct {
	obj *ising.QUBO
	n   int
}

// BuildUnconstrained validates the accumulated objective and returns an
// unconstrained QUBO problem. Constraints added to the builder cause an
// error (use Build for constrained problems).
func (b *Builder) BuildUnconstrained() (*QUBOProblem, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.sys.M() != 0 {
		return nil, fmt.Errorf("saim: builder has %d constraints; use Build", b.sys.M())
	}
	return &QUBOProblem{obj: b.obj.Clone(), n: b.n}, nil
}

// N returns the number of variables.
func (q *QUBOProblem) N() int { return q.n }

// Evaluate returns the objective value of an assignment.
func (q *QUBOProblem) Evaluate(assignment []int) (float64, error) {
	x, err := toBits(assignment, q.n)
	if err != nil {
		return 0, err
	}
	return q.obj.Energy(x), nil
}

// Minimize runs multi-run simulated annealing on the p-bit Ising machine
// and returns the best assignment found and its objective value. Options
// semantics match Solve (Iterations = number of annealing runs).
func Minimize(q *QUBOProblem, o Options) ([]int, float64, error) {
	if q == nil || q.obj == nil {
		return nil, 0, fmt.Errorf("saim: nil QUBO problem")
	}
	normalized := q.obj.Clone()
	normalized.Normalize() // argmin-preserving rescale so βmax=10 suits any data
	x, _ := anneal.MinimizeQUBO(normalized, anneal.Options{
		Runs:         orDefault(o.Iterations, 100),
		SweepsPerRun: orDefault(o.SweepsPerRun, 1000),
		BetaMax:      orDefaultF(o.BetaMax, 10),
		Seed:         o.Seed,
	})
	if x == nil {
		return nil, 0, fmt.Errorf("saim: annealer returned no sample")
	}
	return fromBits(x), q.obj.Energy(x), nil
}
