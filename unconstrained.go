package saim

import (
	"context"
	"fmt"
)

// QUBOProblem is an unconstrained quadratic binary problem built with
// Builder.BuildUnconstrained. It exists for workloads like max-cut that
// Ising machines solve natively, without the SAIM constraint machinery.
//
// Deprecated: build a Model with Builder.Model (which reports
// FormUnconstrained when no constraints were added) and run it through a
// registered Solver.
type QUBOProblem struct {
	m *Model
}

// BuildUnconstrained validates the accumulated objective and returns an
// unconstrained QUBO problem. Constraints added to the builder cause an
// error (use Build for constrained problems).
//
// Deprecated: use Builder.Model.
func (b *Builder) BuildUnconstrained() (*QUBOProblem, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.sys.M() != 0 {
		return nil, fmt.Errorf("saim: builder has %d constraints; use Build", b.sys.M())
	}
	m, err := b.Model()
	if err != nil {
		return nil, err
	}
	if m.Form() != FormUnconstrained {
		return nil, fmt.Errorf("saim: BuildUnconstrained supports only quadratic objectives (model form %v); use Builder.Model", m.Form())
	}
	return &QUBOProblem{m: m}, nil
}

// Model returns the unified model underlying the problem.
func (q *QUBOProblem) Model() *Model { return q.m }

// N returns the number of variables.
func (q *QUBOProblem) N() int { return q.m.N() }

// Evaluate returns the objective value of an assignment.
func (q *QUBOProblem) Evaluate(assignment []int) (float64, error) {
	cost, _, err := q.m.Evaluate(assignment)
	return cost, err
}

// Minimize runs multi-run simulated annealing on the p-bit Ising machine
// and returns the best assignment found and its objective value. Options
// semantics match Solve (Iterations = number of annealing runs).
//
// Deprecated: use the "saim" Solver on an unconstrained Model.
func Minimize(q *QUBOProblem, o Options) ([]int, float64, error) {
	if q == nil || q.m == nil {
		return nil, 0, fmt.Errorf("saim: nil QUBO problem")
	}
	res, err := SolveModel(context.Background(), "saim", q.m, o.asOptions()...)
	if err != nil {
		return nil, 0, err
	}
	if res.Assignment == nil {
		return nil, 0, fmt.Errorf("saim: annealer returned no sample")
	}
	return res.Assignment, res.Cost, nil
}
