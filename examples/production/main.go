// Production planning with synergies and an exact staffing constraint —
// demonstrates quadratic objectives together with mixed ≤/= constraints on
// the declarative layer, plus progress streaming and the named
// per-constraint slack report.
//
//	go run ./examples/production
//
// A plant selects which of 12 product variants to run next quarter. Each
// variant has a base margin; some share tooling, which *adds* margin when
// both run (a quadratic bonus — this is what distinguishes an Ising-style
// solver from a linear one). Machine-hours are limited, and exactly four
// production lines must be staffed (an equality constraint).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

func main() {
	names := []string{
		"sedan-trim-a", "sedan-trim-b", "wagon-base", "wagon-sport",
		"pickup-short", "pickup-long", "van-cargo", "van-pass",
		"suv-base", "suv-lux", "coupe", "hybrid",
	}
	margin := []float64{140, 120, 90, 110, 150, 160, 80, 95, 170, 210, 60, 130}
	hours := []float64{30, 28, 22, 26, 35, 38, 18, 20, 40, 48, 15, 33}
	const hourBudget = 160
	// Shared tooling: running both variants of a pair adds margin.
	synergies := []struct {
		a, b  int
		bonus float64
	}{
		{0, 1, 45}, {2, 3, 35}, {4, 5, 60}, {6, 7, 30}, {8, 9, 55}, {9, 11, 25},
	}
	const linesToStaff = 4

	m := model.New()
	run := m.Binary("run", len(names))
	obj := model.Dot(margin, run)
	for _, s := range synergies {
		obj = obj.Add(run[s.a].Times(run[s.b]).Mul(s.bonus))
	}
	m.Maximize(obj)
	m.Constrain("hours", model.Dot(hours, run).LE(hourBudget))
	m.Constrain("lines", run.Sum().EQ(linesToStaff))

	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(800),
		saim.WithSweepsPerRun(400),
		saim.WithEta(2),
		saim.WithSeed(11),
		// Stream the search: every 200 λ updates, print where it stands.
		saim.WithProgress(func(p saim.Progress) {
			if (p.Iteration+1)%200 == 0 {
				fmt.Fprintf(os.Stderr, "  iter %d/%d: best %.0f, feasible %.1f%%, |lambda| %.2f\n",
					p.Iteration+1, p.Iterations, p.BestCost, p.FeasibleRatio, p.LambdaNorm)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible() {
		log.Fatal("no feasible plan found")
	}

	fmt.Println("production plan:")
	for i, name := range names {
		if sol.Value("run", i) == 1 {
			fmt.Printf("  %-12s margin %3.0f, hours %2.0f\n", name, margin[i], hours[i])
		}
	}
	fmt.Printf("total margin incl. synergies: %.0f\n", sol.Objective())
	for _, cs := range sol.Constraints() {
		fmt.Printf("  %-6s %v %4.0f  used %4.0f  slack %4.0f  satisfied=%v\n",
			cs.Name, cs.Sense, cs.Bound, cs.Activity, cs.Slack, cs.Satisfied)
	}
	fmt.Printf("feasible samples %.1f%%\n", sol.Result().FeasibleRatio)
}
