// Production planning with synergies and an exact staffing constraint —
// demonstrates quadratic objectives together with mixed ≤/= constraints,
// plus the progress-streaming hook of the unified Solver API.
//
//	go run ./examples/production
//
// A plant selects which of 12 product variants to run next quarter. Each
// variant has a base margin; some share tooling, which *adds* margin when
// both run (a quadratic bonus — this is what distinguishes an Ising-style
// solver from a linear one). Machine-hours are limited, and exactly four
// production lines must be staffed (an equality constraint).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	saim "github.com/ising-machines/saim"
)

func main() {
	names := []string{
		"sedan-trim-a", "sedan-trim-b", "wagon-base", "wagon-sport",
		"pickup-short", "pickup-long", "van-cargo", "van-pass",
		"suv-base", "suv-lux", "coupe", "hybrid",
	}
	margin := []float64{140, 120, 90, 110, 150, 160, 80, 95, 170, 210, 60, 130}
	hours := []float64{30, 28, 22, 26, 35, 38, 18, 20, 40, 48, 15, 33}
	const hourBudget = 160
	// Shared tooling: running both variants of a pair adds margin.
	synergies := []struct {
		a, b  int
		bonus float64
	}{
		{0, 1, 45}, {2, 3, 35}, {4, 5, 60}, {6, 7, 30}, {8, 9, 55}, {9, 11, 25},
	}
	const linesToStaff = 4

	n := len(names)
	b := saim.NewBuilder(n)
	for i := range names {
		b.Linear(i, -margin[i])
	}
	for _, s := range synergies {
		b.Quadratic(s.a, s.b, -s.bonus)
	}
	b.ConstrainLE(hours, hourBudget)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b.ConstrainEQ(ones, linesToStaff)
	model, err := b.Model()
	if err != nil {
		log.Fatal(err)
	}

	solver, err := saim.Get("saim")
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), model,
		saim.WithIterations(800),
		saim.WithSweepsPerRun(400),
		saim.WithEta(2),
		saim.WithSeed(11),
		// Stream the search: every 200 λ updates, print where it stands.
		saim.WithProgress(func(p saim.Progress) {
			if (p.Iteration+1)%200 == 0 {
				fmt.Fprintf(os.Stderr, "  iter %d/%d: best %.0f, feasible %.1f%%, |lambda| %.2f\n",
					p.Iteration+1, p.Iterations, p.BestCost, p.FeasibleRatio, p.LambdaNorm)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if res.Infeasible() {
		log.Fatal("no feasible plan found")
	}

	fmt.Println("production plan:")
	usedHours, lines := 0.0, 0
	for i, run := range res.Assignment {
		if run == 1 {
			fmt.Printf("  %-12s margin %3.0f, hours %2.0f\n", names[i], margin[i], hours[i])
			usedHours += hours[i]
			lines++
		}
	}
	cost, feasible, err := model.Evaluate(res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total margin incl. synergies: %.0f\n", -cost)
	fmt.Printf("machine hours: %.0f / %d, lines staffed: %d (must be %d)\n",
		usedHours, hourBudget, lines, linesToStaff)
	fmt.Printf("constraint check: feasible=%v, feasible samples %.1f%%\n", feasible, res.FeasibleRatio)
}
