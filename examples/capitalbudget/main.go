// Capital budgeting as a multidimensional knapsack — the resource-
// allocation workload the paper's introduction motivates (capital
// budgeting, portfolio selection, production planning all reduce to MKP).
//
//	go run ./examples/capitalbudget
//
// A firm chooses among 18 projects. Each project has an expected NPV and
// consumes three scarce resources: capital in year 1, capital in year 2,
// and engineering staff. The goal is the NPV-maximal portfolio within all
// three budgets — an MKP with M=3 constraints.
//
// Because the model is integer knapsack-shaped, *every* registered backend
// can solve it: the example runs SAIM first, then sweeps the whole
// registry (penalty method, parallel tempering, genetic algorithm, greedy,
// exact branch and bound) on the same Model for comparison.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
)

type project struct {
	name              string
	npv               float64 // expected net present value, k$
	capY1, capY2, eng float64 // resource usage
}

func main() {
	projects := []project{
		{"warehouse-automation", 420, 300, 150, 4},
		{"fleet-electrification", 380, 250, 220, 3},
		{"erp-migration", 310, 180, 160, 6},
		{"solar-roof", 290, 260, 40, 2},
		{"new-product-line-a", 510, 340, 280, 7},
		{"new-product-line-b", 470, 320, 260, 6},
		{"quality-lab", 180, 110, 70, 3},
		{"customer-portal", 220, 90, 120, 5},
		{"predictive-maintenance", 260, 140, 90, 4},
		{"packaging-redesign", 150, 80, 60, 2},
		{"export-certification", 190, 70, 110, 3},
		{"apprenticeship-program", 130, 50, 80, 2},
		{"waste-heat-recovery", 240, 190, 60, 3},
		{"cnc-upgrade", 330, 230, 120, 4},
		{"r-and-d-extension", 410, 200, 260, 8},
		{"logistics-hub", 360, 280, 170, 5},
		{"brand-refresh", 120, 60, 70, 2},
		{"safety-retrofit", 160, 100, 50, 2},
	}
	budgets := map[string]float64{"capital-y1": 1500, "capital-y2": 1000, "engineering": 30}

	n := len(projects)
	b := saim.NewBuilder(n)
	capY1 := make([]float64, n)
	capY2 := make([]float64, n)
	eng := make([]float64, n)
	for i, p := range projects {
		b.Linear(i, -p.npv)
		capY1[i] = p.capY1
		capY2[i] = p.capY2
		eng[i] = p.eng
	}
	b.ConstrainLE(capY1, budgets["capital-y1"])
	b.ConstrainLE(capY2, budgets["capital-y2"])
	b.ConstrainLE(eng, budgets["engineering"])
	model, err := b.Model()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	opts := []saim.Option{
		saim.WithIterations(600),
		saim.WithSweepsPerRun(300),
		saim.WithEta(1.0),
		saim.WithBetaMax(50), // MKP setting: no quadratic objective, anneal colder
		saim.WithAlpha(5),    // P = 5·d·N as in the paper's MKP experiments
		saim.WithSeed(7),
	}
	res, err := saim.SolveModel(ctx, "saim", model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if res.Infeasible() {
		log.Fatal("no feasible portfolio found")
	}

	fmt.Println("== SAIM portfolio ==")
	used := map[string]float64{}
	for i, take := range res.Assignment {
		if take != 1 {
			continue
		}
		p := projects[i]
		fmt.Printf("  %-24s NPV %4.0fk$\n", p.name, p.npv)
		used["capital-y1"] += p.capY1
		used["capital-y2"] += p.capY2
		used["engineering"] += p.eng
	}
	fmt.Printf("portfolio NPV: %.0fk$\n", -res.Cost)
	for _, r := range []string{"capital-y1", "capital-y2", "engineering"} {
		fmt.Printf("  %-12s %5.0f / %5.0f\n", r, used[r], budgets[r])
	}
	fmt.Printf("multipliers (shadow-price-like): %v\n", res.Lambda)

	// Every other registered backend on the same Model. The penalty method
	// reuses SAIM's untuned P, showing the tuning problem SAIM removes.
	fmt.Println("\n== solver comparison on the same model ==")
	for _, name := range saim.Solvers() {
		if name == "saim" {
			continue
		}
		s, err := saim.Get(name)
		if err != nil || !s.Accepts(model.Form()) {
			continue
		}
		cmp, err := s.Solve(ctx, model, append(opts, saim.WithPenalty(res.Penalty))...)
		if err != nil {
			log.Fatal(err)
		}
		if cmp.Infeasible() {
			fmt.Printf("  %-8s no feasible portfolio (P below critical value)\n", name)
			continue
		}
		note := ""
		if cmp.Optimal {
			note = " (proven optimal)"
		}
		fmt.Printf("  %-8s NPV %4.0fk$%s\n", name, -cmp.Cost, note)
	}
}
