// Capital budgeting as a multidimensional knapsack — the resource-
// allocation workload the paper's introduction motivates — through the
// public problem catalog, with a greedy warm start and a full registry
// sweep on the identical model.
//
//	go run ./examples/capitalbudget
//
// A firm chooses among 18 projects. Each project has an expected NPV and
// consumes three scarce resources: capital in year 1, capital in year 2,
// and engineering staff. The goal is the NPV-maximal portfolio within all
// three budgets — an MKP with M=3 constraints.
//
// Because the model is integer knapsack-shaped, *every* registered backend
// can solve it: the example runs the instant greedy heuristic first, feeds
// its portfolio to SAIM as a warm start (WithInitial — the solve can never
// return worse than the seed), then sweeps the remaining registry.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/problems"
)

type project struct {
	name              string
	npv               float64 // expected net present value, k$
	capY1, capY2, eng float64 // resource usage
}

func main() {
	projects := []project{
		{"warehouse-automation", 420, 300, 150, 4},
		{"fleet-electrification", 380, 250, 220, 3},
		{"erp-migration", 310, 180, 160, 6},
		{"solar-roof", 290, 260, 40, 2},
		{"new-product-line-a", 510, 340, 280, 7},
		{"new-product-line-b", 470, 320, 260, 6},
		{"quality-lab", 180, 110, 70, 3},
		{"customer-portal", 220, 90, 120, 5},
		{"predictive-maintenance", 260, 140, 90, 4},
		{"packaging-redesign", 150, 80, 60, 2},
		{"export-certification", 190, 70, 110, 3},
		{"apprenticeship-program", 130, 50, 80, 2},
		{"waste-heat-recovery", 240, 190, 60, 3},
		{"cnc-upgrade", 330, 230, 120, 4},
		{"r-and-d-extension", 410, 200, 260, 8},
		{"logistics-hub", 360, 280, 170, 5},
		{"brand-refresh", 120, 60, 70, 2},
		{"safety-retrofit", 160, 100, 50, 2},
	}
	resources := []string{"capital-y1", "capital-y2", "engineering"}
	budgets := []float64{1500, 1000, 30}

	n := len(projects)
	spec := problems.KnapsackSpec{
		Values:     make([]float64, n),
		Weights:    [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)},
		Capacities: budgets,
	}
	for i, p := range projects {
		spec.Values[i] = p.npv
		spec.Weights[0][i] = p.capY1
		spec.Weights[1][i] = p.capY2
		spec.Weights[2][i] = p.eng
	}
	kp, err := problems.Knapsack(spec)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	opts := append(kp.Recommended(), // MKP settings: η=0.05, α=5, βmax=50
		saim.WithIterations(600),
		saim.WithSweepsPerRun(300),
		saim.WithEta(1.0), // override: tiny instance anneals fine with a larger step
		saim.WithSeed(7),
	)

	// Instant constructive baseline, reused as SAIM's warm start.
	greedySol, err := kp.Model.Solve(ctx, "greedy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy warm start: NPV %.0fk$\n\n", greedySol.Objective())

	sol, err := kp.Model.Solve(ctx, "saim",
		append(opts, saim.WithInitial(greedySol.Assignment()))...)
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible() {
		log.Fatal("no feasible portfolio found")
	}

	fmt.Println("== SAIM portfolio ==")
	for _, i := range kp.Selected(sol) {
		fmt.Printf("  %-24s NPV %4.0fk$\n", projects[i].name, projects[i].npv)
	}
	fmt.Printf("portfolio NPV: %.0fk$\n", sol.Objective())
	for i, cs := range sol.Constraints() {
		fmt.Printf("  %-12s %5.0f / %5.0f\n", resources[i], cs.Activity, cs.Bound)
	}
	res := sol.Result()
	fmt.Printf("multipliers (shadow-price-like): %v\n", res.Lambda)

	// Every other registered backend on the same Model. The penalty method
	// reuses SAIM's untuned P, showing the tuning problem SAIM removes.
	fmt.Println("\n== solver comparison on the same model ==")
	compiled, err := kp.Model.Compile()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range saim.Solvers() {
		if name == "saim" || name == "greedy" {
			continue
		}
		s, err := saim.Get(name)
		if err != nil || !s.Accepts(compiled.Form()) {
			continue
		}
		cmp, err := kp.Model.Solve(ctx, name, append(opts, saim.WithPenalty(res.Penalty))...)
		if err != nil {
			log.Fatal(err)
		}
		if !cmp.Feasible() {
			fmt.Printf("  %-8s no feasible portfolio (P below critical value)\n", name)
			continue
		}
		note := ""
		if cmp.Result().Optimal {
			note = " (proven optimal)"
		}
		fmt.Printf("  %-8s NPV %4.0fk$%s\n", name, cmp.Objective(), note)
	}
}
