// Quickstart: solve a small knapsack problem with the self-adaptive Ising
// machine through the declarative modeling layer.
//
//	go run ./examples/quickstart
//
// We pack a 10-item knapsack: maximize total value subject to one weight
// limit. Variables are declared by name, the objective is stated as a
// maximization directly (no sign flipping), and the solution is read back
// by name — no index arithmetic anywhere. Swap "saim" for any name in
// saim.Solvers() to compare backends on the identical model.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

func main() {
	values := []float64{60, 100, 120, 70, 80, 50, 90, 110, 30, 40}
	weights := []float64{10, 20, 30, 15, 18, 9, 21, 27, 7, 12}
	const capacity = 80

	m := model.New()
	take := m.Binary("take", len(values))
	m.Maximize(model.Dot(values, take))
	m.Constrain("weight", model.Dot(weights, take).LE(capacity))

	sol, err := m.Solve(context.Background(), "saim",
		saim.WithIterations(300),   // annealing runs (λ updates)
		saim.WithSweepsPerRun(300), // Monte-Carlo sweeps per run
		saim.WithEta(5),            // Lagrange step size
		saim.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible() {
		log.Fatal("no feasible packing found")
	}

	fmt.Println("selected items:")
	for i := range values {
		if sol.Value("take", i) == 1 {
			fmt.Printf("  item %d: value %v, weight %v\n", i, values[i], weights[i])
		}
	}
	fmt.Printf("total value: %v\n", sol.Objective())
	weight := sol.Constraints()[0]
	fmt.Printf("weight used: %.0f / %.0f (slack %.0f)\n", weight.Activity, weight.Bound, weight.Slack)
	res := sol.Result()
	fmt.Printf("feasible samples during search: %.1f%%\n", res.FeasibleRatio)
	fmt.Printf("penalty P=%.1f (untuned heuristic), final lambda=%v\n", res.Penalty, res.Lambda)
}
