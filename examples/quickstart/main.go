// Quickstart: solve a small knapsack problem with the self-adaptive Ising
// machine in a dozen lines.
//
//	go run ./examples/quickstart
//
// We pack a 10-item knapsack: maximize total value subject to one weight
// limit. The builder takes the *minimization* objective, so values enter
// with negative signs. The built Model runs through the unified Solver
// API; swap "saim" for any name in saim.Solvers() to compare backends.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
)

func main() {
	values := []float64{60, 100, 120, 70, 80, 50, 90, 110, 30, 40}
	weights := []float64{10, 20, 30, 15, 18, 9, 21, 27, 7, 12}
	const capacity = 80

	b := saim.NewBuilder(len(values))
	for i, v := range values {
		b.Linear(i, -v) // minimize −value = maximize value
	}
	b.ConstrainLE(weights, capacity)
	model, err := b.Model()
	if err != nil {
		log.Fatal(err)
	}

	res, err := saim.SolveModel(context.Background(), "saim", model,
		saim.WithIterations(300),   // annealing runs (λ updates)
		saim.WithSweepsPerRun(300), // Monte-Carlo sweeps per run
		saim.WithEta(5),            // Lagrange step size
		saim.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	if res.Infeasible() {
		log.Fatal("no feasible packing found")
	}

	total, weight := 0.0, 0.0
	fmt.Println("selected items:")
	for i, take := range res.Assignment {
		if take == 1 {
			fmt.Printf("  item %d: value %v, weight %v\n", i, values[i], weights[i])
			total += values[i]
			weight += weights[i]
		}
	}
	fmt.Printf("total value: %v (weight %v / %v)\n", total, weight, float64(capacity))
	fmt.Printf("feasible samples during search: %.1f%%\n", res.FeasibleRatio)
	fmt.Printf("penalty P=%.1f (untuned heuristic), final lambda=%v\n", res.Penalty, res.Lambda)
}
