// Shift scheduling on a higher-order Ising machine — exercises the
// SolveHighOrder extension (polynomial objectives AND polynomial
// constraints), the capability the paper attributes to high-order IMs [19].
//
//	go run ./examples/scheduling
//
// Six technicians can be assigned to a maintenance shift. We want the
// cheapest crew such that:
//
//   - exactly three technicians are on shift (linear equality),
//   - at least one *certified pair* works together — certification
//     requires two specific people simultaneously, which is a product
//     term x_i·x_j, making the constraint genuinely quadratic:
//     x₀x₁ + x₂x₃ ≥ 1 is imposed as equality via an indicator trick
//     (we require x₀x₁ + x₂x₃ − s = 0 with a decision bit s forced to 1
//     — here simplified to the equality x₀x₁ + x₂x₃ = 1: exactly one
//     certified pair on shift).
package main

import (
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
)

func main() {
	names := []string{"ana", "bo", "chen", "dana", "emil", "fay"}
	hourly := []float64{52, 48, 61, 45, 38, 41}
	const crewSize = 3

	// Objective: minimize total hourly cost of the crew.
	var objective []saim.Monomial
	for i, c := range hourly {
		objective = append(objective, saim.Monomial{W: c, Vars: []int{i}})
	}

	// Constraint 1: exactly crewSize on shift (linear).
	var headcount []saim.Monomial
	for i := range names {
		headcount = append(headcount, saim.Monomial{W: 1, Vars: []int{i}})
	}
	headcount = append(headcount, saim.Monomial{W: -crewSize})

	// Constraint 2: exactly one certified pair together — quadratic:
	// x_ana·x_bo + x_chen·x_dana = 1.
	certified := []saim.Monomial{
		{W: 1, Vars: []int{0, 1}},
		{W: 1, Vars: []int{2, 3}},
		{W: -1},
	}

	res, err := saim.SolveHighOrder(len(names), objective,
		[][]saim.Monomial{headcount, certified},
		saim.Options{
			Penalty:      3,
			Eta:          0.5,
			Iterations:   300,
			SweepsPerRun: 200,
			Seed:         21,
		})
	if err != nil {
		log.Fatal(err)
	}
	if res.Infeasible() {
		log.Fatal("no feasible crew found")
	}

	fmt.Println("crew:")
	total := 0.0
	for i, on := range res.Assignment {
		if on == 1 {
			fmt.Printf("  %-5s (%v/h)\n", names[i], hourly[i])
			total += hourly[i]
		}
	}
	fmt.Printf("total rate: %v/h\n", total)
	fmt.Printf("certified pair on shift: ana+bo=%v, chen+dana=%v\n",
		res.Assignment[0] == 1 && res.Assignment[1] == 1,
		res.Assignment[2] == 1 && res.Assignment[3] == 1)
	fmt.Printf("feasible samples: %.1f%%, multipliers: %v\n", res.FeasibleRatio, res.Lambda)
}
