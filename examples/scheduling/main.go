// Shift scheduling on a higher-order Ising machine — exercises the
// high-order form of the unified Model (polynomial constraints) through
// the public problem catalog, the capability the paper attributes to
// high-order IMs [19].
//
//	go run ./examples/scheduling
//
// Six technicians can be assigned to a maintenance shift. We want the
// cheapest crew such that:
//
//   - exactly three technicians are on shift (linear equality),
//   - exactly one *certified pair* works together — certification
//     requires two specific people simultaneously, which is a product
//     term x_i·x_j, making the constraint genuinely quadratic.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/problems"
)

func main() {
	names := []string{"ana", "bo", "chen", "dana", "emil", "fay"}
	hourly := []float64{52, 48, 61, 45, 38, 41}

	p, err := problems.ShiftScheduling(problems.ShiftSpec{
		Rates:          hourly,
		CrewSize:       3,
		CertifiedPairs: [][2]int{{0, 1}, {2, 3}}, // ana+bo, chen+dana
		RequiredPairs:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := p.Model.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model form: %s (%d constraints)\n", compiled.Form(), compiled.NumConstraints())

	sol, err := p.Model.Solve(context.Background(), "saim",
		append(p.Recommended(), saim.WithSeed(21))...)
	if err != nil {
		log.Fatal(err)
	}
	crew := p.Crew(sol)
	if crew == nil {
		log.Fatal("no feasible crew found")
	}

	fmt.Println("crew:")
	for _, i := range crew {
		fmt.Printf("  %-5s (%v/h)\n", names[i], hourly[i])
	}
	fmt.Printf("total rate: %v/h\n", p.TotalRate(sol))
	fmt.Printf("certified pair on shift: ana+bo=%v, chen+dana=%v\n",
		sol.Value("onshift", 0) == 1 && sol.Value("onshift", 1) == 1,
		sol.Value("onshift", 2) == 1 && sol.Value("onshift", 3) == 1)
	res := sol.Result()
	fmt.Printf("feasible samples: %.1f%%, multipliers: %v\n", res.FeasibleRatio, res.Lambda)
}
