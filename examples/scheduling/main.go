// Shift scheduling on a higher-order Ising machine — exercises the
// high-order form of the unified Model (polynomial objectives AND
// polynomial constraints), the capability the paper attributes to
// high-order IMs [19].
//
//	go run ./examples/scheduling
//
// Six technicians can be assigned to a maintenance shift. We want the
// cheapest crew such that:
//
//   - exactly three technicians are on shift (linear equality),
//   - at least one *certified pair* works together — certification
//     requires two specific people simultaneously, which is a product
//     term x_i·x_j, making the constraint genuinely quadratic:
//     x₀x₁ + x₂x₃ ≥ 1 is imposed as equality via an indicator trick
//     (we require x₀x₁ + x₂x₃ − s = 0 with a decision bit s forced to 1
//     — here simplified to the equality x₀x₁ + x₂x₃ = 1: exactly one
//     certified pair on shift).
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
)

func main() {
	names := []string{"ana", "bo", "chen", "dana", "emil", "fay"}
	hourly := []float64{52, 48, 61, 45, 38, 41}
	const crewSize = 3

	b := saim.NewBuilder(len(names))

	// Objective: minimize total hourly cost of the crew.
	for i, c := range hourly {
		b.Linear(i, c)
	}

	// Constraint 1: exactly crewSize on shift (linear equality; converted
	// to a polynomial automatically once the model turns high-order).
	ones := make([]float64, len(names))
	for i := range ones {
		ones[i] = 1
	}
	b.ConstrainEQ(ones, crewSize)

	// Constraint 2: exactly one certified pair together — quadratic:
	// x_ana·x_bo + x_chen·x_dana = 1. Any polynomial constraint marks the
	// model as high-order.
	b.ConstrainPolyEQ(
		saim.Monomial{W: 1, Vars: []int{0, 1}},
		saim.Monomial{W: 1, Vars: []int{2, 3}},
		saim.Monomial{W: -1},
	)

	model, err := b.Model()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model form: %s (%d constraints)\n", model.Form(), model.NumConstraints())

	res, err := saim.SolveModel(context.Background(), "saim", model,
		saim.WithPenalty(3),
		saim.WithEta(0.5),
		saim.WithIterations(300),
		saim.WithSweepsPerRun(200),
		saim.WithSeed(21),
	)
	if err != nil {
		log.Fatal(err)
	}
	if res.Infeasible() {
		log.Fatal("no feasible crew found")
	}

	fmt.Println("crew:")
	total := 0.0
	for i, on := range res.Assignment {
		if on == 1 {
			fmt.Printf("  %-5s (%v/h)\n", names[i], hourly[i])
			total += hourly[i]
		}
	}
	fmt.Printf("total rate: %v/h\n", total)
	fmt.Printf("certified pair on shift: ana+bo=%v, chen+dana=%v\n",
		res.Assignment[0] == 1 && res.Assignment[1] == 1,
		res.Assignment[2] == 1 && res.Assignment[3] == 1)
	fmt.Printf("feasible samples: %.1f%%, multipliers: %v\n", res.FeasibleRatio, res.Lambda)
}
