// Large-instance max-cut through the decomposition meta-solver.
//
//	go run ./examples/largecut
//
// The instance is a 20 000-vertex random graph from the problem catalog —
// roughly 100 000 edges. No whole-problem backend can touch it: compiling
// the declarative model alone would materialize a 20 000² dense coupling
// matrix (3.2 GB), before a single sweep runs. The decompose package
// instead streams the model's terms into a sparse O(N + edges) view and
// runs the qbsolv-style decomposition loop: impact-seeded connected
// subproblems of 512 variables, solved by the annealing backend with the
// frozen complement folded in, clamped back only on strict global
// improvement, tabu-rotated between rounds (DESIGN.md §6).
//
// Ctrl-C stops the loop at the next round boundary and prints the best
// cut found so far.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/decompose"
	"github.com/ising-machines/saim/problems"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const n = 20000
	fmt.Printf("generating G(%d, 5e-4) ...\n", n)
	g := problems.RandomGraph(n, 5e-4, 10, 1)
	total := 0.0
	for _, e := range g.Edges {
		total += e.W
	}
	fmt.Printf("%d vertices, %d edges, total weight %.0f\n", g.N, len(g.Edges), total)

	p, err := problems.MaxCut(g)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	lastBest, lastPrint := 0.0, time.Time{}
	sol, err := decompose.Solve(ctx, p.Model, decompose.Options{
		SubproblemSize: 512,
		Seed:           1,
		Progress: func(pr saim.Progress) {
			// The merged stream fires per inner sample; print only when the
			// best cut moved and at most a few times per second.
			if cut := -pr.BestCost; cut > lastBest && time.Since(lastPrint) > 250*time.Millisecond {
				lastBest, lastPrint = cut, time.Now()
				fmt.Printf("  samples %6d: cut %.0f (%.1f%% of total weight)\n",
					pr.Iteration+1, cut, 100*cut/total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	res := sol.Result()
	cut := p.CutValue(sol)
	left, right := p.Partition(sol)
	fmt.Printf("\nbest cut: %.0f of %.0f total weight (%.1f%%)\n", cut, total, 100*cut/total)
	fmt.Printf("partition: %d | %d vertices\n", len(left), len(right))
	fmt.Printf("rounds: %d, inner sweeps: %d, stopped: %v\n", res.Iterations, res.Sweeps, res.Stopped)
	fmt.Printf("wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
