// Concurrent solving through the service job manager — the in-process
// face of what cmd/saimserve exposes over HTTP.
//
//	go run ./examples/service
//
// The program stands up a bounded worker pool, then throws a mixed
// workload at it: a batch of catalog problems across several backends, a
// deliberate duplicate (served from the result cache without a second
// solve), a race-meta-solver job, and one job with a tight deadline whose
// backend stops mid-budget with its best-so-far. One job's progress is
// streamed live through a subscription while the rest run concurrently.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/problems"
	"github.com/ising-machines/saim/service"
)

func knapsack(seed uint64) *model.Model {
	spec := problems.KnapsackSpec{
		Values:     []float64{41, 50, 49, 59, 45, 47, 42, 44, 52, 48, 51, 46},
		Weights:    [][]float64{{3, 8, 6, 10, 5, 7, 4, 6, 9, 5, 8, 5}},
		Capacities: []float64{40},
	}
	// Value jitter keyed off the seed so distinct seeds make distinct
	// models (and identical seeds identical ones — the dedup demo
	// depends on it).
	for i := range spec.Values {
		spec.Values[i] += float64((seed * uint64(i+1)) % 7)
	}
	p, err := problems.Knapsack(spec)
	if err != nil {
		log.Fatal(err)
	}
	return p.Model
}

func main() {
	mgr := service.New(service.Config{
		Workers:          4,
		QueueDepth:       32,
		DefaultTimeLimit: 30 * time.Second,
	})

	type submission struct {
		label string
		req   service.Request
	}
	base := []saim.Option{saim.WithSeed(1), saim.WithIterations(400), saim.WithSweepsPerRun(300)}
	subs := []submission{
		{"knapsack/saim", service.Request{Model: knapsack(1), Solver: "saim", Options: base}},
		{"knapsack/saim duplicate", service.Request{Model: knapsack(1), Solver: "saim", Options: base}},
		{"knapsack/race", service.Request{Model: knapsack(2), Solver: "race",
			Options: []saim.Option{saim.WithSeed(2), saim.WithIterations(400), saim.WithSweepsPerRun(300)}}},
		{"knapsack/exact", service.Request{Model: knapsack(3), Solver: "exact"}},
		{"knapsack/150ms deadline", service.Request{Model: knapsack(4), Solver: "saim",
			Options:   []saim.Option{saim.WithSeed(4), saim.WithIterations(5_000_000), saim.WithSweepsPerRun(300)},
			TimeLimit: 150 * time.Millisecond}},
	}

	jobs := make([]*service.Job, len(subs))
	for i, s := range subs {
		j, err := mgr.Submit(s.req)
		if err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		jobs[i] = j
		fmt.Printf("submitted %-24s -> %s\n", s.label, j.ID())
	}
	if jobs[0] == jobs[1] {
		fmt.Println("duplicate submission deduplicated onto", jobs[0].ID())
	}

	// Stream the first job's progress while everything runs.
	ch, stop := jobs[0].Subscribe(8)
	defer stop()
	go func() {
		for p := range ch {
			fmt.Printf("  [%s] iter %d/%d best %.0f (%.0f%% feasible)\n",
				p.Solver, p.Iteration+1, p.Iterations, p.BestCost, p.FeasibleRatio)
		}
	}()

	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			fmt.Printf("%-24s error: %v\n", subs[i].label, err)
			continue
		}
		sol, _ := j.Solution()
		who := res.Solver
		if res.Winner != "" {
			who = res.Solver + "(" + res.Winner + ")"
		}
		fmt.Printf("%-24s %-14s value %.0f  stopped=%v  sweeps=%d\n",
			subs[i].label, who, sol.Objective(), res.Stopped, res.Sweeps)
	}

	// Graceful drain, exactly what saimserve does on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Close(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Println("drained.")
}
