// Max-cut on the p-bit Ising machine — the unconstrained workload the
// paper's introduction uses to motivate Ising machines — through the
// public problem catalog.
//
//	go run ./examples/maxcut
//
// We cut a deterministic ring-plus-chords graph. The catalog constructor
// builds the declarative model (maximize the crossing weight) and pairs it
// with a typed decoder, so the example never touches QUBO coefficients or
// variable indices.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/problems"
)

func main() {
	// Ring of 24 vertices plus a heavy chord from every third vertex.
	g := problems.RingChordsGraph(24, 3, 2)

	p, err := problems.MaxCut(g)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := p.Model.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model form: %s\n", compiled.Form())

	sol, err := p.Model.Solve(context.Background(), "saim",
		append(p.Recommended(), saim.WithSeed(3))...)
	if err != nil {
		log.Fatal(err)
	}

	left, right := p.Partition(sol)
	total := 0.0
	for _, e := range g.Edges {
		total += e.W
	}
	fmt.Printf("graph: %d vertices, %d edges, total weight %.0f\n", g.N, len(g.Edges), total)
	fmt.Printf("cut weight: %.0f\n", p.CutValue(sol))
	fmt.Printf("partition sizes: %d | %d\n", len(left), len(right))
}
