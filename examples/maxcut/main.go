// Max-cut on the p-bit Ising machine — the unconstrained workload the
// paper's introduction uses to motivate Ising machines (minimizing the
// Ising Hamiltonian is equivalent to maximizing a graph cut).
//
//	go run ./examples/maxcut
//
// We cut a random 3-regular-ish graph. For each edge (i,j) with weight w,
// the cut gains w when x_i ≠ x_j; in QUBO form that is
// −w·(x_i + x_j − 2·x_i·x_j), and the Ising machine minimizes the total.
// With no constraints added, Builder.Model reports FormUnconstrained and
// the "saim" solver runs plain multi-run annealing on it.
package main

import (
	"context"
	"fmt"
	"log"

	saim "github.com/ising-machines/saim"
)

type edge struct {
	u, v int
	w    float64
}

func main() {
	const n = 24
	// Deterministic pseudo-random graph: ring plus chords.
	var edges []edge
	for i := 0; i < n; i++ {
		edges = append(edges, edge{i, (i + 1) % n, 1})
		if i%3 == 0 {
			edges = append(edges, edge{i, (i + n/2) % n, 2})
		}
	}

	b := saim.NewBuilder(n)
	for _, e := range edges {
		b.Linear(e.u, -e.w)
		b.Linear(e.v, -e.w)
		b.Quadratic(e.u, e.v, 2*e.w)
	}
	model, err := b.Model()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model form: %s\n", model.Form())

	res, err := saim.SolveModel(context.Background(), "saim", model,
		saim.WithIterations(100), // annealing runs
		saim.WithSweepsPerRun(500),
		saim.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	x := res.Assignment

	cut := 0.0
	for _, e := range edges {
		if x[e.u] != x[e.v] {
			cut += e.w
		}
	}
	var left, right []int
	for i, side := range x {
		if side == 0 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	total := 0.0
	for _, e := range edges {
		total += e.w
	}
	fmt.Printf("graph: %d vertices, %d edges, total weight %.0f\n", n, len(edges), total)
	fmt.Printf("cut weight: %.0f (energy %.0f)\n", cut, res.Cost)
	fmt.Printf("partition sizes: %d | %d\n", len(left), len(right))
}
