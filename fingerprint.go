package saim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// OptionsFingerprint returns a hash-stable hex digest of the
// solve-relevant settings carried by an option list. Two option lists
// fingerprint identically exactly when they configure the same solve:
// every deterministic knob — penalty parameters, budgets, seed, machine
// kind, limits, warm start, decomposition and race settings — is folded
// into the digest in a fixed order. WithProgress is deliberately
// excluded: a progress callback observes a solve without changing it, so
// two submissions differing only in observation dedup to one.
//
// The digest is stable across processes and platforms for a given library
// version (it hashes explicit field encodings, never Go runtime
// representations); it is not guaranteed stable across versions that add
// options. A solve service combines it with model.Model.Fingerprint to
// key its result cache.
func OptionsFingerprint(opts ...Option) string {
	c := buildConfig(opts)
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	f64(c.alpha)
	f64(c.penalty)
	f64(c.eta)
	u64(uint64(c.iterations))
	u64(uint64(c.sweepsPerRun))
	f64(c.betaMax)
	u64(c.seed)
	u64(uint64(c.machine))
	u64(uint64(c.packed))
	u64(uint64(c.replicas))
	u64(uint64(c.population))
	u64(uint64(c.timeLimit))
	u64(uint64(c.nodeLimit))
	if c.targetCost != nil {
		u64(1)
		f64(*c.targetCost)
	} else {
		u64(0)
	}
	u64(uint64(c.patience))
	u64(uint64(len(c.initial)))
	for _, v := range c.initial {
		u64(uint64(v))
	}
	u64(uint64(c.subSize))
	str(c.innerSolver)
	u64(uint64(c.rounds))
	if c.tabuTenure != nil {
		u64(1)
		u64(uint64(*c.tabuTenure))
	} else {
		u64(0)
	}
	u64(uint64(len(c.racers)))
	for _, r := range c.racers {
		str(r)
	}

	sum := h.Sum(nil)
	return hex.EncodeToString(sum)
}
