package saim

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/hoim"
)

// Monomial is one weighted product term w·Π_{i∈Vars} x_i of a higher-order
// pseudo-Boolean polynomial. An empty Vars list denotes a constant.
type Monomial struct {
	W    float64
	Vars []int
}

// HighOrderResult reports a higher-order constrained solve.
type HighOrderResult struct {
	// Assignment is the best feasible assignment (nil if none found).
	Assignment []int
	// Cost is the objective value of Assignment (+Inf if none).
	Cost float64
	// FeasibleRatio is the percentage of feasible annealing samples.
	FeasibleRatio float64
	// Lambda is the final multiplier vector, one entry per constraint.
	Lambda []float64
}

// SolveHighOrder runs the self-adaptive loop on a higher-order Ising
// machine: minimize the polynomial objective subject to polynomial
// equality constraints (each constraint polynomial must evaluate to zero).
// Unlike Solve, both objective and constraints may contain monomials of
// any degree — the extension the paper attributes to high-order Ising
// machines [19].
//
// Options semantics match Solve, except the penalty weight must be given
// explicitly via Options.Penalty (the α·d·N heuristic is specific to
// quadratic couplings); it defaults to 1.
func SolveHighOrder(n int, objective []Monomial, constraints [][]Monomial, o Options) (*HighOrderResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("saim: SolveHighOrder requires n > 0, got %d", n)
	}
	if len(constraints) == 0 {
		return nil, fmt.Errorf("saim: SolveHighOrder requires at least one constraint")
	}
	f, err := buildPoly(n, objective)
	if err != nil {
		return nil, err
	}
	gs := make([]*hoim.Poly, len(constraints))
	for k, c := range constraints {
		g, err := buildPoly(n, c)
		if err != nil {
			return nil, fmt.Errorf("constraint %d: %w", k, err)
		}
		gs[k] = g
	}
	res, err := hoim.SolveConstrained(f, gs, 1e-9, hoim.Options{
		P:            o.Penalty,
		Eta:          orDefaultF(o.Eta, 1),
		Iterations:   orDefault(o.Iterations, 200),
		SweepsPerRun: orDefault(o.SweepsPerRun, 200),
		BetaMax:      orDefaultF(o.BetaMax, 10),
		Seed:         o.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &HighOrderResult{
		Cost:   res.BestCost,
		Lambda: append([]float64(nil), res.Lambda...),
	}
	if res.Iterations > 0 {
		out.FeasibleRatio = 100 * float64(res.FeasibleCount) / float64(res.Iterations)
	}
	if res.Best != nil {
		out.Assignment = fromBits(res.Best)
	}
	return out, nil
}

// Infeasible reports whether the solve found no feasible assignment.
func (r *HighOrderResult) Infeasible() bool {
	return r.Assignment == nil || math.IsInf(r.Cost, 1)
}

func buildPoly(n int, ms []Monomial) (*hoim.Poly, error) {
	p := hoim.NewPoly(n)
	for _, m := range ms {
		for _, v := range m.Vars {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("saim: monomial variable %d out of range [0,%d)", v, n)
			}
		}
		p.Add(m.W, m.Vars...)
	}
	return p, nil
}
