package saim

import (
	"context"
	"fmt"
	"math"
)

// Monomial is one weighted product term w·Π_{i∈Vars} x_i of a higher-order
// pseudo-Boolean polynomial. An empty Vars list denotes a constant.
type Monomial struct {
	W    float64
	Vars []int
}

// HighOrderResult reports a higher-order constrained solve.
//
// Deprecated: the unified API returns *Result for every form.
type HighOrderResult struct {
	// Assignment is the best feasible assignment (nil if none found).
	Assignment []int
	// Cost is the objective value of Assignment (+Inf if none).
	Cost float64
	// FeasibleRatio is the percentage of feasible annealing samples.
	FeasibleRatio float64
	// Lambda is the final multiplier vector, one entry per constraint.
	Lambda []float64
}

// SolveHighOrder runs the self-adaptive loop on a higher-order Ising
// machine: minimize the polynomial objective subject to polynomial
// equality constraints (each constraint polynomial must evaluate to zero).
// Unlike Solve, both objective and constraints may contain monomials of
// any degree — the extension the paper attributes to high-order Ising
// machines [19].
//
// Options semantics match Solve, except the penalty weight must be given
// explicitly via Options.Penalty (the α·d·N heuristic is specific to
// quadratic couplings); it defaults to 1.
//
// Deprecated: build a high-order Model with Builder.Term /
// Builder.ConstrainPolyEQ and run it through the "saim" Solver.
func SolveHighOrder(n int, objective []Monomial, constraints [][]Monomial, o Options) (*HighOrderResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("saim: SolveHighOrder requires n > 0, got %d", n)
	}
	if len(constraints) == 0 {
		return nil, fmt.Errorf("saim: SolveHighOrder requires at least one constraint")
	}
	b := NewBuilder(n)
	for _, t := range objective {
		b.Term(t.W, t.Vars...)
	}
	for _, c := range constraints {
		b.ConstrainPolyEQ(c...)
	}
	// Any ConstrainPolyEQ forces FormHighOrder, so the model always runs
	// on the higher-order machine regardless of the objective's degree.
	m, err := b.Model()
	if err != nil {
		return nil, err
	}
	res, err := SolveModel(context.Background(), "saim", m, o.asOptions()...)
	if err != nil {
		return nil, err
	}
	return &HighOrderResult{
		Assignment:    res.Assignment,
		Cost:          res.Cost,
		FeasibleRatio: res.FeasibleRatio,
		Lambda:        res.Lambda,
	}, nil
}

// Infeasible reports whether the solve found no feasible assignment.
func (r *HighOrderResult) Infeasible() bool {
	return r.Assignment == nil || math.IsInf(r.Cost, 1)
}
