package saim

import (
	"time"

	"github.com/ising-machines/saim/internal/core"
)

// MachineKind selects which p-bit sweep kernel the annealing backends
// (saim, penalty, pt) run on. It aliases the internal core type so every
// layer shares one vocabulary.
type MachineKind = core.MachineKind

// Re-exported machine kinds.
const (
	// MachineAuto (the default) picks the dense or CSR kernel per model
	// from its off-diagonal coupling density. Both kernels produce
	// bit-identical trajectories for the same seed, so auto-selection
	// affects throughput only, never results.
	MachineAuto = core.MachineAuto
	// MachineDense forces the dense-row kernel (O(N·flips) per sweep).
	MachineDense = core.MachineDense
	// MachineSparse forces the CSR kernel (O(Σ degree) per sweep).
	MachineSparse = core.MachineSparse
)

// PackedMode selects whether the saim backend's replica pool may sweep
// replicas 64-at-a-time through the bit-packed multi-spin kernels. It
// aliases the internal core type so every layer shares one vocabulary.
type PackedMode = core.PackedMode

// Re-exported packed-replica modes.
const (
	// PackedAuto (the default) packs whenever a solve is eligible: no
	// custom machine and at least 64 replicas. Packing never changes
	// results — every packed lane reproduces the scalar replica with the
	// same seed bit-for-bit — so auto mode affects throughput only.
	PackedAuto = core.PackedAuto
	// PackedOn packs every eligible solve.
	PackedOn = core.PackedOn
	// PackedOff forces one scalar machine per replica.
	PackedOff = core.PackedOff
)

// Option configures a Solver.Solve call. Options are shared across
// backends; each backend reads the subset that applies to it and ignores
// the rest, so one option list can be reused when comparing solvers.
type Option func(*config)

// config is the merged option set a backend reads.
type config struct {
	alpha        float64
	penalty      float64
	eta          float64
	iterations   int
	sweepsPerRun int
	betaMax      float64
	seed         uint64
	machine      MachineKind
	packed       PackedMode
	replicas     int
	population   int
	timeLimit    time.Duration
	nodeLimit    int
	//saim:nofingerprint — a progress callback observes a solve without
	// changing it; excluding it lets the service dedup two submissions
	// differing only in observation (see OptionsFingerprint's doc).
	progress func(Progress)
	//saim:nofingerprint — a checkpoint callback observes best-so-far
	// snapshots without changing the solve, exactly like progress; the
	// service's durable mode must not break dedup by installing one.
	checkpoint  func(assignment []int, cost float64)
	targetCost  *float64
	patience    int
	initial     []int
	subSize     int
	innerSolver string
	rounds      int
	tabuTenure  *int
	racers      []string
}

func buildConfig(opts []Option) config {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithAlpha sets the penalty heuristic coefficient in P = α·d·N (paper: 2
// for QKP, 5 for MKP). Ignored when WithPenalty is set.
func WithAlpha(alpha float64) Option { return func(c *config) { c.alpha = alpha } }

// WithPenalty sets the penalty weight P explicitly, overriding the α·d·N
// heuristic. The penalty and pt backends also honor it.
func WithPenalty(p float64) Option { return func(c *config) { c.penalty = p } }

// WithEta sets the Lagrange multiplier step size η (paper: 20 for QKP,
// 0.05 for MKP).
func WithEta(eta float64) Option { return func(c *config) { c.eta = eta } }

// WithIterations sets the number of annealing runs / λ updates (and scales
// the equivalent effort knob of the non-annealing backends).
func WithIterations(k int) Option { return func(c *config) { c.iterations = k } }

// WithSweepsPerRun sets the Monte-Carlo sweep budget of each annealing run.
func WithSweepsPerRun(s int) Option { return func(c *config) { c.sweepsPerRun = s } }

// WithBetaMax sets the final inverse temperature of the linear β-schedule.
func WithBetaMax(b float64) Option { return func(c *config) { c.betaMax = b } }

// WithSeed makes the solve reproducible.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithMachine forces the dense or CSR sweep kernel for the annealing
// backends (saim, penalty, pt), overriding the density-based
// auto-selection. Kernel choice never changes results — the kernels are
// trajectory-identical for the same seed — only throughput.
func WithMachine(k MachineKind) Option { return func(c *config) { c.machine = k } }

// WithPackedReplicas controls whether the saim backend's replica pool
// (WithReplicas ≥ 64 on constrained models) routes full 64-replica groups
// through the bit-packed multi-spin kernels, which sweep 64 replicas per
// coupling-row walk instead of one. PackedAuto (the default) packs
// whenever eligible; PackedOff forces scalar per-replica machines.
// Packing never changes results — each packed lane reproduces the scalar
// replica with the same seed bit-for-bit — only throughput. Backends
// without a replica pool ignore it.
func WithPackedReplicas(m PackedMode) Option { return func(c *config) { c.packed = m } }

// WithReplicas sets the number of parallel-tempering temperature rungs
// (default 26, as in PT-DA), or — for the saim backend on constrained
// models — the number of independent restarts merged into one result
// (default 1; the saim backend rejects replicas > 1 for unconstrained and
// high-order models rather than silently running one chain).
func WithReplicas(r int) Option { return func(c *config) { c.replicas = r } }

// WithPopulation sets the GA population size (default 100).
func WithPopulation(p int) Option { return func(c *config) { c.population = p } }

// WithTimeLimit caps the wall-clock time of the solve. Every backend
// honors it: the deadline is checked at the same cadence as context
// cancellation (once per annealing run, sweep, offspring, decomposition
// round, or a few dozen branch-and-bound nodes), and on expiry the
// best-so-far result is returned with Stopped == StopTimeLimit and a nil
// error. A context that carries an earlier deadline still wins.
func WithTimeLimit(d time.Duration) Option { return func(c *config) { c.timeLimit = d } }

// WithNodeLimit caps the branch-and-bound nodes of the exact solver.
func WithNodeLimit(n int) Option { return func(c *config) { c.nodeLimit = n } }

// WithProgress streams a per-iteration snapshot (iteration number, best
// cost, feasible ratio, ‖λ‖) to the callback. The callback runs on the
// solving goroutine; keep it cheap. Combined with a cancellable context it
// enables responsive dashboards and custom stopping rules.
func WithProgress(f func(Progress)) Option { return func(c *config) { c.progress = f } }

// WithCheckpoint invokes f whenever the solve finds a new best feasible
// assignment, with the decision-bit assignment and its cost. Like
// WithProgress it observes without changing the solve (and is likewise
// excluded from OptionsFingerprint). The callback runs on the solving
// goroutine — and, for the saim backend's replica pool, concurrently
// from several goroutines, each reporting its own replica's
// improvements; synchronize and keep a best-cost guard if you aggregate.
// The slice passed to f is freshly allocated per call and may be
// retained. Honored by the saim and penalty backends; the service's
// durable mode uses it to journal crash-recovery checkpoints.
func WithCheckpoint(f func(assignment []int, cost float64)) Option {
	return func(c *config) { c.checkpoint = f }
}

// WithTargetCost stops the solve early as soon as a feasible assignment
// reaches cost ≤ target; the result reports Stopped == StopTarget.
func WithTargetCost(target float64) Option {
	return func(c *config) { t := target; c.targetCost = &t }
}

// WithPatience stops the solve after k consecutive iterations without an
// improvement of the best feasible cost; the result reports
// Stopped == StopPatience.
func WithPatience(k int) Option { return func(c *config) { c.patience = k } }

// WithSubproblemSize sets the number of variables the decomposition
// meta-solver ("decomp") optimizes per subproblem (default 256). Larger
// subproblems see more of the energy landscape per inner solve; smaller
// ones iterate faster. Other backends ignore it.
func WithSubproblemSize(k int) Option { return func(c *config) { c.subSize = k } }

// WithInnerSolver names the registered backend the decomposition
// meta-solver runs on each extracted subproblem (default "saim"). The
// inner solver must accept unconstrained models — subproblems arrive with
// the frozen complement already folded into their linear terms. Other
// backends ignore it.
func WithInnerSolver(name string) Option { return func(c *config) { c.innerSolver = name } }

// WithRounds caps the decomposition meta-solver's round count; zero (the
// default) iterates until convergence — TabuTenure+1 consecutive rounds
// in which no subproblem improved the global energy. Other backends
// ignore it.
func WithRounds(k int) Option { return func(c *config) { c.rounds = k } }

// WithTabuTenure sets how many rounds a just-optimized variable is
// excluded from the decomposition meta-solver's subproblem selection
// (default 1), steering consecutive rounds toward different regions.
// Zero disables tabu. Other backends ignore it.
func WithTabuTenure(rounds int) Option {
	return func(c *config) { t := rounds; c.tabuTenure = &t }
}

// WithRacers names the registered backends the "race" meta-solver runs
// concurrently on the model (default: every registered backend that
// accepts the model's form, excluding meta-solvers). Other backends
// ignore it.
func WithRacers(names ...string) Option {
	return func(c *config) { c.racers = append([]string(nil), names...) }
}

// WithInitial warm-starts the solve from the given assignment over the
// decision variables (length N, entries 0/1). The saim and penalty
// backends seed their first annealing run's state from it (slack bits are
// completed greedily); parallel tempering seeds its coldest replica; the
// GA injects the repaired assignment into its initial population. In every
// case a feasible warm start also seeds the best-so-far, so the result is
// never worse than the assignment supplied. The greedy, exact, and
// high-order paths ignore it. The slice is not retained or mutated.
func WithInitial(assignment []int) Option {
	return func(c *config) { c.initial = append([]int(nil), assignment...) }
}
