package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// knapModel builds a small knapsack whose optimum is known (value 15 →
// cost −15), parameterized so distinct seeds produce distinct models.
func knapModel(shift float64) *model.Model {
	m := model.New()
	x := m.Binary("take", 4)
	m.Maximize(model.Dot([]float64{10, 7, 5, 3 + shift}, x))
	m.Constrain("w", model.Dot([]float64{4, 3, 2, 1}, x).LE(6))
	return m
}

// slowModel is a constrained model given a budget big enough to outlive
// any test deadline, for cancellation and timeout scenarios.
func slowOpts(seed uint64) []saim.Option {
	return []saim.Option{
		saim.WithSeed(seed),
		saim.WithIterations(2_000_000),
		saim.WithSweepsPerRun(200),
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m
}

// TestSubmitSolveResult is the smoke path: submit, wait, read a correct
// result and a name-aware solution.
func TestSubmitSolveResult(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 2})
	j, err := mgr.Submit(Request{
		Model:  knapModel(0),
		Solver: "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() || res.Cost != -15 {
		t.Fatalf("cost = %v, want -15", res.Cost)
	}
	sol, err := j.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective() != 15 {
		t.Fatalf("objective = %v, want 15", sol.Objective())
	}
	if st := j.Status(); st.State != StateDone || st.Hits != 1 {
		t.Fatalf("status = %+v", st)
	}
}

// TestDedupServesIdenticalResult pins the cache keying: an identical
// submission — same model declarations, same options — attaches to the
// same job and returns the identical *saim.Result, whether it dedups
// in flight or from the finished cache. A differing option starts a
// fresh job.
func TestDedupServesIdenticalResult(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1})
	req := func() Request {
		return Request{
			Model:   knapModel(0), // rebuilt per call: dedup must be structural
			Solver:  "saim",
			Options: []saim.Option{saim.WithSeed(3), saim.WithIterations(40), saim.WithSweepsPerRun(100)},
		}
	}
	a, err := mgr.Submit(req())
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Submit(req())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical in-flight submissions returned distinct jobs")
	}
	resA, err := a.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	// Now finished: a third identical submission must come from cache.
	c, err := mgr.Submit(req())
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("identical finished submission missed the cache")
	}
	resC, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if resA != resC {
		t.Fatal("cached submission returned a different Result pointer")
	}
	if st := c.Status(); st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}

	// A different seed is a different solve.
	d, err := mgr.Submit(Request{
		Model:   knapModel(0),
		Solver:  "saim",
		Options: []saim.Option{saim.WithSeed(4), saim.WithIterations(40), saim.WithSweepsPerRun(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("different options deduplicated")
	}
	// As is a different model.
	e, err := mgr.Submit(Request{
		Model:   knapModel(1),
		Solver:  "saim",
		Options: []saim.Option{saim.WithSeed(3), saim.WithIterations(40), saim.WithSweepsPerRun(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e == a {
		t.Fatal("different model deduplicated")
	}
	// NoDedup forces a fresh job even for an identical request.
	f, err := mgr.Submit(Request{Model: knapModel(0), Solver: "saim",
		Options: []saim.Option{saim.WithSeed(3), saim.WithIterations(40), saim.WithSweepsPerRun(100)}, NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if f == a {
		t.Fatal("NoDedup submission was deduplicated")
	}
}

// TestCancelFreesWorkerPromptly pins the cancellation path: a running job
// with an enormous budget is cancelled and its worker picks up the next
// job quickly.
func TestCancelFreesWorkerPromptly(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1})
	slow, err := mgr.Submit(Request{Model: knapModel(0), Solver: "saim", Options: slowOpts(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it actually runs.
	deadline := time.Now().Add(5 * time.Second)
	for slow.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	next, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	slow.Cancel()
	if _, err := next.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker freed after %v", elapsed)
	}
	if st := slow.Status(); st.State != StateCancelled {
		t.Fatalf("cancelled job state = %v", st.State)
	}
	// A cancelled mid-solve job still surfaces its best-so-far result.
	if res, err := slow.Result(); err == nil {
		if res.Stopped != saim.StopCancelled {
			t.Fatalf("Stopped = %v, want cancelled", res.Stopped)
		}
	}
	// And a fresh identical submission is NOT glued to the cancelled job.
	again, err := mgr.Submit(Request{Model: knapModel(0), Solver: "saim", Options: slowOpts(1)})
	if err != nil {
		t.Fatal(err)
	}
	if again == slow {
		t.Fatal("new submission adopted a cancelled job")
	}
	again.Cancel()
}

// TestQueueBackpressure pins ErrQueueFull: with one busy worker and a
// depth-1 queue, the third submission is rejected rather than buffered.
func TestQueueBackpressure(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 1})
	var jobs []*Job
	full := false
	for i := 0; i < 8; i++ {
		j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "saim", Options: slowOpts(uint64(i + 1)), NoDedup: true})
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("want ErrQueueFull, got %v", err)
			}
			full = true
			break
		}
		jobs = append(jobs, j)
	}
	if !full {
		t.Fatal("queue never filled")
	}
	for _, j := range jobs {
		j.Cancel()
	}
}

// TestTimeLimitAcrossService pins the deadline path end to end: a job
// with a tight time limit and a huge budget finishes quickly and reports
// StopTimeLimit.
func TestTimeLimitAcrossService(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 2})
	start := time.Now()
	j, err := mgr.Submit(Request{
		Model:     knapModel(0),
		Solver:    "saim",
		Options:   slowOpts(2),
		TimeLimit: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != saim.StopTimeLimit {
		t.Fatalf("Stopped = %v, want time-limit", res.Stopped)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline overshot: %v", elapsed)
	}
	if j.Status().State != StateDone {
		t.Fatalf("state = %v, want done (a timed-out solve is a completed job)", j.Status().State)
	}
}

// TestProgressFanOut pins the subscription contract: multiple subscribers
// each see an ordered stream ending with channel close, and the fleet
// monitor observes monotone totals.
func TestProgressFanOut(t *testing.T) {
	var monMu sync.Mutex
	var lastSweeps int64
	monotone := true
	mgr := newTestManager(t, Config{
		Workers: 2,
		Monitor: func(p saim.Progress) {
			monMu.Lock()
			if p.Sweeps < lastSweeps {
				monotone = false
			}
			lastSweeps = p.Sweeps
			monMu.Unlock()
		},
	})
	j, err := mgr.Submit(Request{
		Model:   knapModel(0),
		Solver:  "saim",
		Options: []saim.Option{saim.WithSeed(5), saim.WithIterations(60), saim.WithSweepsPerRun(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch1, stop1 := j.Subscribe(4)
	ch2, _ := j.Subscribe(4)
	defer stop1()
	seen1, seen2 := 0, 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		last := -1
		for p := range ch1 {
			if p.Iteration < last {
				t.Errorf("subscriber 1 saw out-of-order iteration %d after %d", p.Iteration, last)
			}
			last = p.Iteration
			seen1++
		}
	}()
	go func() {
		defer wg.Done()
		for range ch2 {
			seen2++
		}
	}()
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if seen1 == 0 || seen2 == 0 {
		t.Fatalf("subscribers saw %d and %d snapshots", seen1, seen2)
	}
	monMu.Lock()
	defer monMu.Unlock()
	if lastSweeps == 0 {
		t.Fatal("fleet monitor never fired")
	}
	if !monotone {
		t.Fatal("fleet sweep totals went backwards")
	}
}

// TestGracefulDrain pins Close: intake stops, queued work finishes, and
// the pool winds down.
func TestGracefulDrain(t *testing.T) {
	mgr := New(Config{Workers: 2})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := mgr.Submit(Request{
			Model:   knapModel(0),
			Solver:  "saim",
			Options: []saim.Option{saim.WithSeed(uint64(i + 1)), saim.WithIterations(30), saim.WithSweepsPerRun(100)},
			NoDedup: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := mgr.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, j := range jobs {
		if _, err := j.Result(); err != nil {
			t.Fatalf("job %d after drain: %v", i, err)
		}
	}
	if _, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submit: %v, want ErrClosed", err)
	}
}

// TestForcedDrainCancelsRunning pins the Close escape hatch: when the
// drain context expires, running jobs are force-cancelled and still
// finalize.
func TestForcedDrainCancelsRunning(t *testing.T) {
	mgr := New(Config{Workers: 1})
	j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "saim", Options: slowOpts(9)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := mgr.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v", err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("force-cancelled job did not finalize")
	}
}

// TestConcurrentHammering is the acceptance scenario under -race: many
// concurrent submissions across distinct and duplicate keys, mid-solve
// cancels, and subscribers, all racing against each other. Every
// completed job must carry a result consistent with its own model.
func TestConcurrentHammering(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 4, QueueDepth: 256, CacheSize: 64})
	const (
		submitters = 8
		perWorker  = 12
		variants   = 5
	)
	var wg sync.WaitGroup
	errCh := make(chan error, submitters*perWorker)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				variant := (s + i) % variants
				j, err := mgr.Submit(Request{
					Model:  knapModel(float64(variant)),
					Solver: "saim",
					Options: []saim.Option{
						saim.WithSeed(uint64(variant + 1)),
						saim.WithIterations(25),
						saim.WithSweepsPerRun(80),
					},
				})
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						continue // backpressure is a legal outcome
					}
					errCh <- err
					return
				}
				switch i % 3 {
				case 0:
					ch, stop := j.Subscribe(2)
					go func() {
						for range ch {
						}
					}()
					defer stop()
				case 1:
					if i%6 == 1 {
						go j.Cancel()
					}
				}
				res, err := j.Wait(t.Context())
				if err != nil {
					// Cancelled-before-run jobs legitimately have no result.
					if j.Status().State == StateCancelled {
						continue
					}
					errCh <- fmt.Errorf("variant %d: %w", variant, err)
					return
				}
				if res.Assignment != nil {
					cost, feasible, err := mustCompile(t, knapModel(float64(variant))).Evaluate(res.Assignment)
					if err != nil || !feasible {
						errCh <- fmt.Errorf("variant %d: invalid assignment (err=%v)", variant, err)
						return
					}
					if cost != res.Cost {
						errCh <- fmt.Errorf("variant %d: reported %v, evaluated %v", variant, res.Cost, cost)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func mustCompile(t *testing.T, m *model.Model) *saim.Model {
	t.Helper()
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCancelFinishedIsNoOp pins the Cancel contract on terminal jobs: a
// cancel after completion must not evict the cached result, so the next
// identical submission is still a cache hit.
func TestCancelFinishedIsNoOp(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1})
	req := Request{Model: knapModel(0), Solver: "greedy"}
	j, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	j.Cancel() // finished: must be a true no-op
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("state after no-op cancel = %v", st.State)
	}
	dup, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dup != j {
		t.Fatal("cancel of a finished job evicted its cached result")
	}
}

// TestExplicitOptionTimeLimitWins pins deadline precedence: a
// WithTimeLimit the caller puts among its own options overrides the
// manager's (much longer) default, so the default can never loosen a
// deadline the caller tightened.
func TestExplicitOptionTimeLimitWins(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, DefaultTimeLimit: 10 * time.Hour})
	j, err := mgr.Submit(Request{
		Model:   knapModel(0),
		Solver:  "saim",
		Options: append(slowOpts(3), saim.WithTimeLimit(150*time.Millisecond)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != saim.StopTimeLimit {
		t.Fatalf("Stopped = %v, want time-limit", res.Stopped)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("explicit 150ms limit ran %v — the default overrode it", elapsed)
	}
}

// TestCachedJobIDSurvivesPruning pins the index/cache consistency: a job
// resident in the result cache must stay resolvable by id no matter how
// many other jobs churn through the pruning FIFO.
func TestCachedJobIDSurvivesPruning(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 2, QueueDepth: 128, CacheSize: 2})
	req := Request{Model: knapModel(0), Solver: "greedy"}
	cached, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	// Churn well past the pruning limit (max(4*CacheSize, 64) = 64).
	for i := 0; i < 80; i++ {
		j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy", NoDedup: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(t.Context()); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := mgr.Job(cached.ID()); !ok {
		t.Fatal("cached job's id was pruned while its result is still served from cache")
	}
	dup, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dup != cached {
		t.Fatal("cache entry lost")
	}
}

// TestSubmitValidation pins the error paths.
func TestSubmitValidation(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1})
	if _, err := mgr.Submit(Request{Solver: "saim"}); err == nil {
		t.Fatal("accepted a nil model")
	}
	if _, err := mgr.Submit(Request{Model: knapModel(0), Solver: "no-such"}); err == nil {
		t.Fatal("accepted an unknown solver")
	}
	bad := model.New()
	bad.Binary("", 2) // accumulates a construction error
	if _, err := mgr.Submit(Request{Model: bad, Solver: "saim"}); err == nil {
		t.Fatal("accepted a broken model")
	}
}

// TestWireOptions pins the JSON option lowering.
func TestWireOptions(t *testing.T) {
	target := -3.5
	ten := 2
	w := &SolveOptions{
		Alpha: 2, Eta: 5, Iterations: 7, SweepsPerRun: 11, BetaMax: 9,
		Seed: 42, Machine: "sparse", Replicas: 3, Population: 50,
		TimeLimitMS: 1500, NodeLimit: 99, TargetCost: &target,
		Patience: 4, Initial: []int{1, 0}, SubproblemSize: 64,
		InnerSolver: "pt", Rounds: 2, TabuTenure: &ten, Racers: []string{"saim", "greedy"},
	}
	opts, limit, err := w.Options()
	if err != nil {
		t.Fatal(err)
	}
	if limit != 1500*time.Millisecond {
		t.Fatalf("limit = %v", limit)
	}
	// The lowering must be deterministic and fingerprint-stable.
	if saim.OptionsFingerprint(opts...) != saim.OptionsFingerprint(opts...) {
		t.Fatal("unstable fingerprint")
	}
	if _, _, err := (&SolveOptions{Machine: "quantum"}).Options(); err == nil {
		t.Fatal("accepted an unknown machine kind")
	}
	if _, _, err := (&SolveOptions{TimeLimitMS: -1}).Options(); err == nil {
		t.Fatal("accepted a negative time limit")
	}
}
