package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/ising-machines/saim/internal/faultkit"
)

// These tests pin the lockguard findings fixed in this PR: Submit and
// Steal used to append their WAL records while holding m.mu, so under
// Fsync=SyncAlways a single slow fsync gated every other manager
// operation. The fix journals outside the critical section; each test
// stalls the fsync with a failpoint and asserts the manager lock stays
// available the whole time.

// stallSync arms the wal.sync failpoint so that every sync blocks until
// release is closed; the first blocked sync closes entered.
func stallSync(t *testing.T) (entered, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	faultkit.Set("wal.sync", func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	t.Cleanup(func() { faultkit.Clear("wal.sync") })
	return entered, release
}

// probeManagerLock runs m.mu-guarded operations and fails the test if
// any of them stalls for 5 s — the signature of a lock held across the
// stalled fsync. Stats is deliberately absent: it reads the journal's
// own counters, which ARE held during a sync by design.
func probeManagerLock(t *testing.T, mgr *Manager, during string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		mgr.Job("no-such-id")
		mgr.Jobs()
		mgr.Cancel("no-such-id")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("manager lock held across the journal fsync in %s", during)
	}
}

func TestSubmitJournalsOutsideManagerLock(t *testing.T) {
	setupTestSolvers(t)
	mgr := openTestManager(t, Config{Dir: t.TempDir(), Fsync: SyncAlways, Workers: 1, QueueDepth: 8})
	blockWorker(t, mgr)

	entered, release := stallSync(t)
	subErr := make(chan error, 1)
	go func() {
		_, err := mgr.Submit(wireRequest(3, 11))
		subErr <- err
	}()
	<-entered // Submit is now inside its journal fsync

	probeManagerLock(t, mgr, "Submit")

	close(release)
	if err := <-subErr; err != nil {
		t.Fatalf("Submit after released fsync: %v", err)
	}
}

func TestStealJournalsOutsideManagerLock(t *testing.T) {
	setupTestSolvers(t)
	mgr := openTestManager(t, Config{Dir: t.TempDir(), Fsync: SyncAlways, Workers: 1, QueueDepth: 8})
	blockWorker(t, mgr)
	wireJob, err := mgr.Submit(wireRequest(4, 13))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wireJob.Cancel)

	entered, release := stallSync(t)
	type stole struct {
		sj *StolenJob
		ok bool
	}
	got := make(chan stole, 1)
	go func() {
		sj, ok := mgr.Steal(time.Minute)
		got <- stole{sj, ok}
	}()
	<-entered // Steal is now journaling its start record

	probeManagerLock(t, mgr, "Steal")

	close(release)
	res := <-got
	if !res.ok || res.sj == nil || res.sj.ID != wireJob.ID() {
		t.Fatalf("Steal = %+v, %v; want the queued wire job %q", res.sj, res.ok, wireJob.ID())
	}
	if err := mgr.ReleaseStolen(res.sj.ID); err != nil {
		t.Fatalf("ReleaseStolen: %v", err)
	}
}

// TestRetractedSubmitLeavesNoTrace pins the new failure path: when the
// journal rejects the submitted record, the already-queued job is
// retracted — it disappears from the index, never runs, and an identical
// resubmission after the journal recovers starts fresh instead of
// deduplicating onto the doomed job.
func TestRetractedSubmitLeavesNoTrace(t *testing.T) {
	setupTestSolvers(t)
	mgr := openTestManager(t, Config{Dir: t.TempDir(), Fsync: SyncAlways, Workers: 1, QueueDepth: 8})
	blockWorker(t, mgr)

	faultkit.Set("wal.append", faultkit.Times(1, faultkit.Error(errors.New("journal disk gone"))))
	t.Cleanup(func() { faultkit.Clear("wal.append") })

	req := Request{Model: knapModel(5), Solver: "count-test"}
	if _, err := mgr.Submit(req); err == nil {
		t.Fatal("Submit with failing journal succeeded")
	}
	if n := len(mgr.Jobs()); n != 1 { // only the blocker remains indexed
		t.Fatalf("retracted job still indexed: %d jobs", n)
	}

	// The journal works again: the identical request must be admitted as
	// a fresh job, not deduplicated onto the retracted one.
	j, err := mgr.Submit(req)
	if err != nil {
		t.Fatalf("resubmit after journal recovery: %v", err)
	}
	if j.Status().Hits != 1 {
		t.Fatalf("resubmission deduped onto the retracted job: hits=%d", j.Status().Hits)
	}
}
