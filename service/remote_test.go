package service

import (
	"errors"
	"math"
	"testing"
	"time"

	saim "github.com/ising-machines/saim"
)

// blockWorker occupies the manager's single worker with a long solve
// carrying functional options (so it is also not stealable), returning
// its job for cancellation.
func blockWorker(t *testing.T, mgr *Manager) *Job {
	t.Helper()
	j, err := mgr.Submit(Request{
		Model:   knapModel(99),
		Solver:  "saim",
		Options: slowOpts(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(j.Cancel)
	return j
}

// wireRequest is a queued, wire-reconstructible submission.
func wireRequest(shift float64, seed uint64) Request {
	return Request{
		Model:  knapModel(shift),
		Solver: "saim",
		WireOptions: &SolveOptions{
			Seed:         seed,
			Iterations:   200,
			SweepsPerRun: 50,
		},
	}
}

// TestStealSkipsNonWireJobs pins the stealability rule: only jobs fully
// reconstructible from wire options leave the process; jobs carrying
// functional options stay queued.
func TestStealSkipsNonWireJobs(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	blockWorker(t, mgr)

	funcJob, err := mgr.Submit(Request{
		Model:   knapModel(1),
		Solver:  "saim",
		Options: slowOpts(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(funcJob.Cancel)
	wireJob, err := mgr.Submit(wireRequest(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wireJob.Cancel)

	sj, ok := mgr.Steal(time.Minute)
	if !ok {
		t.Fatal("no job stolen though a wire job is queued")
	}
	if sj.ID != wireJob.ID() {
		t.Fatalf("stole %q, want the wire job %q", sj.ID, wireJob.ID())
	}
	if sj.Solver != "saim" || len(sj.Model) == 0 || sj.Options == nil || sj.Options.Seed != 7 {
		t.Fatalf("stolen job incomplete: %+v", sj)
	}
	if wireJob.Status().State != StateRunning {
		t.Fatalf("stolen job state = %v, want running", wireJob.Status().State)
	}
	// Nothing stealable remains: the functional-options job must not move.
	if sj2, ok := mgr.Steal(time.Minute); ok {
		t.Fatalf("stole unstealable job %q", sj2.ID)
	}
	if funcJob.Status().State != StateQueued {
		t.Fatalf("functional-options job state = %v, want still queued", funcJob.Status().State)
	}
}

// TestCompleteRemoteFinalizes pins the thief-success path: the remote
// result finalizes the job exactly like a local solve — subscribers
// unblock, the result parses back, and the dedup cache serves identical
// resubmissions from it.
func TestCompleteRemoteFinalizes(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	blocker := blockWorker(t, mgr)

	req := wireRequest(3, 11)
	j, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	sj, ok := mgr.Steal(time.Minute)
	if !ok || sj.ID != j.ID() {
		t.Fatalf("steal: ok=%v id=%v", ok, sj)
	}

	remote := &saim.Result{
		Solver:     "saim",
		Assignment: []int{1, 1, 0, 0},
		Cost:       -17,
		Stopped:    saim.StopCompleted,
	}
	if err := mgr.CompleteRemote(sj.ID, remote, ""); err != nil {
		t.Fatal(err)
	}
	if j.Status().State != StateDone {
		t.Fatalf("state = %v, want done", j.Status().State)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != -17 || len(res.Assignment) != 4 {
		t.Fatalf("remote result mangled: %+v", res)
	}
	// A second identical submission must dedup onto the cached result.
	dup, err := mgr.Submit(wireRequest(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID() != j.ID() {
		t.Fatalf("identical resubmission got new job %q (want cached %q)", dup.ID(), j.ID())
	}
	// Stats reflect the lend-out.
	st := mgr.Stats()
	if st.Stolen != 1 || st.StolenDone != 1 {
		t.Fatalf("stats stolen=%d stolen_done=%d, want 1/1", st.Stolen, st.StolenDone)
	}
	blocker.Cancel()
}

// TestStealLeaseExpiryRequeues pins the lost-thief path: when no
// completion arrives within the lease the job returns to the local
// queue, a late completion is rejected with ErrNotStolen, and a local
// worker finishes the job.
func TestStealLeaseExpiryRequeues(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	blocker := blockWorker(t, mgr)

	j, err := mgr.Submit(wireRequest(4, 13))
	if err != nil {
		t.Fatal(err)
	}
	sj, ok := mgr.Steal(20 * time.Millisecond)
	if !ok || sj.ID != j.ID() {
		t.Fatalf("steal: ok=%v", ok)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.Status().State != StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired; state = %v", j.Status().State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := mgr.Stats().Requeued; got != 1 {
		t.Fatalf("requeued = %d, want 1", got)
	}
	// The thief reports after the lease: its result must be discarded.
	err = mgr.CompleteRemote(sj.ID, &saim.Result{Solver: "saim", Stopped: saim.StopCompleted}, "")
	if !errors.Is(err, ErrNotStolen) {
		t.Fatalf("late completion: err = %v, want ErrNotStolen", err)
	}
	// Free the worker; the requeued job must complete locally.
	blocker.Cancel()
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatalf("requeued job failed locally: %v", err)
	}
}

// TestReleaseStolen pins the declining-thief path: a released job goes
// straight back to the queue unharmed.
func TestReleaseStolen(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	blocker := blockWorker(t, mgr)

	j, err := mgr.Submit(wireRequest(5, 17))
	if err != nil {
		t.Fatal(err)
	}
	sj, ok := mgr.Steal(time.Minute)
	if !ok {
		t.Fatal("steal failed")
	}
	if err := mgr.ReleaseStolen(sj.ID); err != nil {
		t.Fatal(err)
	}
	if got := j.Status().State; got != StateQueued {
		t.Fatalf("state after release = %v, want queued", got)
	}
	if err := mgr.ReleaseStolen(sj.ID); !errors.Is(err, ErrNotStolen) {
		t.Fatalf("double release: err = %v, want ErrNotStolen", err)
	}
	blocker.Cancel()
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatalf("released job failed locally: %v", err)
	}
}

// TestCompleteRemoteFailure pins the permanent-failure path: the job
// fails with the thief's error and identical submissions are not fed a
// cached failure.
func TestCompleteRemoteFailure(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	blockWorker(t, mgr)

	j, err := mgr.Submit(wireRequest(6, 19))
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := mgr.Steal(time.Minute)
	if err := mgr.CompleteRemote(sj.ID, nil, "solver exploded"); err != nil {
		t.Fatal(err)
	}
	if got := j.Status().State; got != StateFailed {
		t.Fatalf("state = %v, want failed", got)
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("failed job returned a result")
	}
}

// TestWireResultRoundTrip pins the result codec, including the
// infeasible +Inf cost that has no JSON encoding.
func TestWireResultRoundTrip(t *testing.T) {
	res := &saim.Result{
		Solver:     "saim",
		Assignment: []int{0, 1},
		Cost:       -5,
		Sweeps:     123,
		Iterations: 7,
		Stopped:    saim.StopTimeLimit,
	}
	back := ParseWireResult(ToWireResult(res))
	if back.Cost != -5 || back.Stopped != saim.StopTimeLimit || len(back.Assignment) != 2 {
		t.Fatalf("round trip mangled: %+v", back)
	}
	infeasible := &saim.Result{Solver: "saim", Stopped: saim.StopCompleted, Cost: math.Inf(1)}
	back = ParseWireResult(ToWireResult(infeasible))
	if !back.Infeasible() {
		t.Fatalf("infeasible result came back feasible: %+v", back)
	}
}
