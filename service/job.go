package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/model"
)

// State is a job's lifecycle stage.
type State int

const (
	// StateQueued means the job waits for a worker.
	StateQueued State = iota
	// StateRunning means a worker is solving the job.
	StateRunning
	// StateDone means the solve finished and a result is available.
	StateDone
	// StateFailed means the solve returned an error (see Job.Result).
	StateFailed
	// StateCancelled means the job was cancelled; a best-so-far result is
	// still available when the cancel landed mid-solve.
	StateCancelled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrNotFinished is returned by Job.Result while the job is queued or
// running.
var ErrNotFinished = errors.New("service: job not finished")

// Job is one tracked solve. All methods are safe for concurrent use.
type Job struct {
	id  string
	key string
	mgr *Manager
	req Request

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// warm is the checkpointed best-so-far assignment a recovered job
	// restarts from (nil for fresh jobs); recovered marks a job
	// re-queued by Open. Both are set before the job is visible to any
	// worker and read-only afterwards.
	warm      []int
	recovered bool

	// wireOnly marks a job whose whole configuration is wire-encodable
	// (no functional options), making it eligible for Steal. Set before
	// the job is visible to any worker and read-only afterwards.
	wireOnly bool

	mu        sync.Mutex
	state     State // guarded by mu
	cancelled bool  // guarded by mu
	// remote marks a job currently executing on another cluster node
	// (handed out by Steal); lease re-queues it if the thief never
	// reports back. guarded by mu
	remote    bool
	lease     *time.Timer                // guarded by mu
	attempts  int                        // guarded by mu
	hits      int                        // guarded by mu
	err       error                      // guarded by mu
	sol       *model.Solution            // guarded by mu
	last      saim.Progress              // guarded by mu
	hasLast   bool                       // guarded by mu
	subs      map[int]chan saim.Progress // guarded by mu
	nextSub   int                        // guarded by mu
	submitted time.Time                  // guarded by mu
	started   time.Time                  // guarded by mu
	finished  time.Time                  // guarded by mu
}

func (j *Job) lock()   { j.mu.Lock() }
func (j *Job) unlock() { j.mu.Unlock() }

// ID returns the job's unique identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is a point-in-time snapshot of a job.
type Status struct {
	// ID is the job identifier; Solver the requested backend.
	ID, Solver string
	// State is the lifecycle stage at snapshot time.
	State State
	// Hits counts submissions served by this job: 1 for a fresh job, +1
	// for every deduplicated duplicate.
	Hits int
	// Submitted, Started, Finished are the lifecycle timestamps (zero
	// when the stage was not reached yet).
	Submitted, Started, Finished time.Time
	// Progress is the latest streamed snapshot; HasProgress reports
	// whether one arrived yet.
	Progress    saim.Progress
	HasProgress bool
	// Err is the failure message of a failed job ("" otherwise).
	Err string
	// Attempts counts solve attempts (>1 after panic retries; 0 while
	// queued).
	Attempts int
	// Recovered marks a job re-queued from the durable journal after a
	// restart.
	Recovered bool
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.lock()
	defer j.unlock()
	st := Status{
		ID:          j.id,
		Solver:      j.req.Solver,
		State:       j.state,
		Hits:        j.hits,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
		Progress:    j.last,
		HasProgress: j.hasLast,
		Attempts:    j.attempts,
		Recovered:   j.recovered,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Result returns the finished job's solver result. It returns
// ErrNotFinished while the job is queued or running, the solve error for
// a failed job, and the best-so-far result (possibly with no feasible
// assignment) for a cancelled one.
func (j *Job) Result() (*saim.Result, error) {
	j.lock()
	defer j.unlock()
	switch j.state {
	case StateQueued, StateRunning:
		return nil, ErrNotFinished
	case StateFailed:
		return nil, j.err
	}
	if j.sol == nil {
		return nil, j.err
	}
	return j.sol.Result(), nil
}

// Solution returns the finished job's name-aware solution (nil together
// with the error under the same conditions as Result).
func (j *Job) Solution() (*model.Solution, error) {
	j.lock()
	defer j.unlock()
	switch j.state {
	case StateQueued, StateRunning:
		return nil, ErrNotFinished
	case StateFailed:
		return nil, j.err
	}
	if j.sol == nil {
		return nil, j.err
	}
	return j.sol, nil
}

// Wait blocks until the job finishes or the context expires, then returns
// Result.
func (j *Job) Wait(ctx context.Context) (*saim.Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel requests cancellation: a queued job is dropped before it ever
// runs; a running job's solve returns promptly with its best-so-far
// result, and the job is detached from the dedup index so a fresh
// identical submission starts a new solve instead of adopting the
// cancelled one. Cancelling a finished job is a true no-op — in
// particular it does NOT evict the job's cached result, so a stray
// cancel cannot defeat the dedup cache.
func (j *Job) Cancel() {
	j.lock()
	active := j.state == StateQueued || j.state == StateRunning
	if active {
		j.cancelled = true
	}
	j.unlock()
	if !active {
		return
	}
	j.cancel()
	j.mgr.detach(j)
}

// Subscribe registers a progress listener: a channel receiving every
// snapshot streamed after the call (buffered to buf, minimum 1; when a
// slow consumer falls behind, the oldest unread snapshot is dropped so
// the stream always converges to the latest state). The channel is closed
// when the job finishes. The returned stop function unregisters early.
func (j *Job) Subscribe(buf int) (<-chan saim.Progress, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan saim.Progress, buf)
	j.lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		// Late subscription to a finished job: replay the last snapshot
		// (when any) and close immediately.
		if j.hasLast {
			ch <- j.last
		}
		close(ch)
		j.unlock()
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.unlock()
	stop := func() {
		j.lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.unlock()
	}
	return ch, stop
}

// publish relays one progress snapshot to every subscriber. It runs on
// the solving goroutine (the WithProgress contract keeps that serialized
// per job), so subscribers observe snapshots in order.
func (j *Job) publish(p saim.Progress) {
	j.lock()
	j.last = p
	j.hasLast = true
	for _, ch := range j.subs {
		for {
			select {
			case ch <- p:
			default:
				// Full buffer: drop the oldest so the newest wins.
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
	j.unlock()
}

// finalize moves the job into a terminal state, closes subscriber
// channels, and signals Done.
func (j *Job) finalize(state State, sol *model.Solution, err error) {
	j.lock()
	j.state = state
	j.sol = sol
	j.err = err
	j.finished = time.Now()
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	j.unlock()
	close(j.done)
}
