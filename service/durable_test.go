package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/faultkit"
	"github.com/ising-machines/saim/internal/wal"
)

// testSolver is a registrable stub backend. The registry has no
// Unregister, so each behavior gets a unique name registered once per
// test binary.
type testSolver struct {
	name  string
	solve func(ctx context.Context, m *saim.Model, opts ...saim.Option) (*saim.Result, error)
}

func (s *testSolver) Name() string           { return s.name }
func (s *testSolver) Accepts(saim.Form) bool { return true }
func (s *testSolver) Solve(ctx context.Context, m *saim.Model, opts ...saim.Option) (*saim.Result, error) {
	return s.solve(ctx, m, opts...)
}

var (
	registerOnce sync.Once
	countSolves  atomic.Int64
)

func setupTestSolvers(t *testing.T) {
	t.Helper()
	registerOnce.Do(func() {
		delegate := func(ctx context.Context, m *saim.Model, opts ...saim.Option) (*saim.Result, error) {
			g, err := saim.Get("greedy")
			if err != nil {
				return nil, err
			}
			return g.Solve(ctx, m, opts...)
		}
		if err := saim.Register(&testSolver{name: "panic-test", solve: func(context.Context, *saim.Model, ...saim.Option) (*saim.Result, error) {
			panic("kaboom: injected test panic")
		}}); err != nil {
			panic(err)
		}
		if err := saim.Register(&testSolver{name: "count-test", solve: func(ctx context.Context, m *saim.Model, opts ...saim.Option) (*saim.Result, error) {
			countSolves.Add(1)
			return delegate(ctx, m, opts...)
		}}); err != nil {
			panic(err)
		}
	})
}

func openTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m
}

func TestNewPanicsOnDurableConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with Config.Dir did not panic")
		}
	}()
	New(Config{Dir: t.TempDir()})
}

// TestDurableRoundTripAndRestart is the happy path: a durable manager
// behaves like an in-memory one, a clean restart re-queues nothing, and
// the id counter resumes past every id the journal ever saw.
func TestDurableRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	mgr := openTestManager(t, Config{Dir: dir, Fsync: SyncAlways, Workers: 2})
	for i := 0; i < 2; i++ {
		j, err := mgr.Submit(Request{Model: knapModel(float64(i)), Solver: "greedy"})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if len(res.Assignment) != 4 {
			t.Fatalf("assignment = %v", res.Assignment)
		}
	}
	st := mgr.Stats()
	if !st.Durable || st.Completed != 2 || st.WALAppended == 0 || st.WALLag != 0 {
		t.Fatalf("durable stats = %+v", st)
	}
	if err := mgr.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	mgr2 := openTestManager(t, Config{Dir: dir, Fsync: SyncAlways, Workers: 2})
	if jobs := mgr2.Jobs(); len(jobs) != 0 {
		t.Fatalf("clean restart re-queued %d jobs", len(jobs))
	}
	j, err := mgr2.Submit(Request{Model: knapModel(9), Solver: "greedy"})
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if j.ID() != "job-000003" {
		t.Fatalf("post-restart id = %s, want job-000003 (counter must resume past journaled ids)", j.ID())
	}
}

// writeCrashJournal hand-crafts the WAL a crashed durable manager would
// leave behind: submitted (and optionally checkpointed) jobs with no
// terminal records.
func writeCrashJournal(t *testing.T, dir string, recs []wal.Record) {
	t.Helper()
	log, replayed, err := wal.Open(dir, wal.Config{Policy: wal.SyncOff})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if len(replayed) != 0 {
		t.Fatalf("journal dir not fresh: %d records", len(replayed))
	}
	for _, r := range recs {
		if err := log.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func submittedData(t *testing.T, m interface{ MarshalJSON() ([]byte, error) }, solver string, opts *SolveOptions) []byte {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(submittedRec{Solver: solver, Model: raw, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecoveryRequeuesAndCompletes simulates ROADMAP item 1's kill -9 at
// the package level: a journal holding two non-finished jobs (one of
// them mid-solve when the "crash" hit) must re-queue both, complete them
// with valid results, and keep their ids resolvable and dedupable.
func TestRecoveryRequeuesAndCompletes(t *testing.T) {
	dir := t.TempDir()
	writeCrashJournal(t, dir, []wal.Record{
		{Kind: wal.KindSubmitted, Job: "job-000001", Data: submittedData(t, knapModel(0), "greedy", nil)},
		{Kind: wal.KindSubmitted, Job: "job-000002", Data: submittedData(t, knapModel(1), "greedy", nil)},
		{Kind: wal.KindStarted, Job: "job-000001", Data: []byte(`{"attempt":1}`)},
	})

	mgr := openTestManager(t, Config{Dir: dir, Workers: 2})
	for _, id := range []string{"job-000001", "job-000002"} {
		j, ok := mgr.Job(id)
		if !ok {
			t.Fatalf("recovered job %s not tracked", id)
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("recovered %s failed: %v", id, err)
		}
		if len(res.Assignment) != 4 {
			t.Fatalf("recovered %s assignment = %v", id, res.Assignment)
		}
		if st := j.Status(); !st.Recovered {
			t.Fatalf("job %s not marked recovered: %+v", id, st)
		}
	}
	// Dedup keys are recomputed on recovery: an identical submission must
	// resolve to the recovered job (in flight or from its cached result),
	// never a duplicate solve.
	j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy"})
	if err != nil {
		t.Fatalf("duplicate Submit: %v", err)
	}
	if j.ID() != "job-000001" {
		t.Fatalf("duplicate of recovered job got id %s, want job-000001", j.ID())
	}
}

// TestRecoveryWarmStartsFromCheckpoint pins the warm-start acceptance:
// a recovered job given a checkpointed optimal assignment and an almost
// zero solve budget must still report a cost no worse than the
// checkpoint — WithInitial's never-worse-than-seed guarantee carried
// across the crash.
func TestRecoveryWarmStartsFromCheckpoint(t *testing.T) {
	m := knapModel(0)
	sol, err := m.Solve(context.Background(), "exact")
	if err != nil {
		t.Fatalf("exact reference solve: %v", err)
	}
	ref := sol.Result()
	if len(ref.Assignment) != 4 {
		t.Fatalf("reference assignment = %v", ref.Assignment)
	}

	ck, err := json.Marshal(checkpointRec{Assignment: ref.Assignment, Cost: ref.Cost})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeCrashJournal(t, dir, []wal.Record{
		{Kind: wal.KindSubmitted, Job: "job-000001", Data: submittedData(t, knapModel(0), "saim",
			&SolveOptions{Iterations: 1, SweepsPerRun: 2, Seed: 9})},
		{Kind: wal.KindStarted, Job: "job-000001", Data: []byte(`{"attempt":1}`)},
		{Kind: wal.KindCheckpoint, Job: "job-000001", Data: ck},
	})

	mgr := openTestManager(t, Config{Dir: dir, Workers: 1})
	j, ok := mgr.Job("job-000001")
	if !ok {
		t.Fatal("checkpointed job not recovered")
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("recovered solve: %v", err)
	}
	if res.Cost > ref.Cost {
		t.Fatalf("recovered cost %v worse than checkpoint %v: warm start not applied", res.Cost, ref.Cost)
	}
}

// TestUnparseableJournalEntryFailsJobNotManager: a journaled job whose
// body no longer parses must finalize as failed (id still resolves) —
// and must not take the whole manager down with it.
func TestUnparseableJournalEntryFailsJobNotManager(t *testing.T) {
	dir := t.TempDir()
	writeCrashJournal(t, dir, []wal.Record{
		{Kind: wal.KindSubmitted, Job: "job-000001", Data: []byte(`{"solver":"greedy","model":{"vars":`)},
		{Kind: wal.KindSubmitted, Job: "job-000002", Data: submittedData(t, knapModel(0), "greedy", nil)},
	})
	mgr := openTestManager(t, Config{Dir: dir, Workers: 1})
	j, ok := mgr.Job("job-000001")
	if !ok {
		t.Fatal("unparseable job id must still resolve")
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("unparseable job must fail")
	}
	good, ok := mgr.Job("job-000002")
	if !ok {
		t.Fatal("sibling job not recovered")
	}
	if _, err := good.Wait(context.Background()); err != nil {
		t.Fatalf("sibling job failed: %v", err)
	}
}

// TestQueuedExpiredJobsFailFast pins the satellite: flood the queue with
// jobs whose whole TimeLimit elapses before any worker frees up — every
// one must fail with ErrDeadlineExpired and no solve work may run.
func TestQueuedExpiredJobsFailFast(t *testing.T) {
	setupTestSolvers(t)
	mgr := newTestManager(t, Config{Workers: 1, QueueDepth: 32})

	blocker, err := mgr.Submit(Request{Model: knapModel(0), Solver: "saim", Options: slowOpts(1), NoDedup: true})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	countSolves.Store(0)
	const flood = 8
	jobs := make([]*Job, 0, flood)
	for i := 0; i < flood; i++ {
		j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "count-test",
			TimeLimit: 30 * time.Millisecond, NoDedup: true})
		if err != nil {
			t.Fatalf("Submit flood %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	// Hold the worker until every flooded job's budget has fully elapsed.
	time.Sleep(100 * time.Millisecond)
	blocker.Cancel()
	<-blocker.Done()

	for i, j := range jobs {
		_, err := j.Wait(context.Background())
		if !errors.Is(err, ErrDeadlineExpired) {
			t.Fatalf("flood job %d err = %v, want ErrDeadlineExpired", i, err)
		}
	}
	if n := countSolves.Load(); n != 0 {
		t.Fatalf("%d solves ran for expired jobs, want 0", n)
	}
	if st := mgr.Stats(); st.Expired != flood {
		t.Fatalf("Stats.Expired = %d, want %d", st.Expired, flood)
	}
}

// TestPanicContainmentAndQuarantine pins the tentpole's containment
// layer: an always-panicking backend fails only its own job (siblings on
// other workers complete), retries MaxRetries times, then quarantines
// its dedup key so identical submissions fail fast.
func TestPanicContainmentAndQuarantine(t *testing.T) {
	setupTestSolvers(t)
	mgr := newTestManager(t, Config{Workers: 3, MaxRetries: 2, RetryBackoff: time.Millisecond})

	poison := Request{Model: knapModel(2), Solver: "panic-test"}
	bad, err := mgr.Submit(poison)
	if err != nil {
		t.Fatalf("Submit poison: %v", err)
	}
	var siblings []*Job
	for i := 0; i < 2; i++ {
		j, err := mgr.Submit(Request{Model: knapModel(float64(i)), Solver: "greedy", NoDedup: true})
		if err != nil {
			t.Fatalf("Submit sibling: %v", err)
		}
		siblings = append(siblings, j)
	}

	_, err = bad.Wait(context.Background())
	if !errors.Is(err, ErrSolverPanic) {
		t.Fatalf("poison err = %v, want ErrSolverPanic", err)
	}
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("poison err = %v, want ErrQuarantined after MaxRetries", err)
	}
	if st := bad.Status(); st.State != StateFailed || st.Attempts != 3 {
		t.Fatalf("poison status = %+v, want failed after 3 attempts", st)
	}
	for i, j := range siblings {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("sibling %d failed alongside the panicking job: %v", i, err)
		}
	}

	// The key is poisoned: an identical submission fails fast, a
	// different model still solves.
	if _, err := mgr.Submit(poison); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("resubmit of quarantined request = %v, want ErrQuarantined", err)
	}
	ok, err := mgr.Submit(Request{Model: knapModel(3), Solver: "greedy"})
	if err != nil {
		t.Fatalf("healthy Submit after quarantine: %v", err)
	}
	if _, err := ok.Wait(context.Background()); err != nil {
		t.Fatalf("healthy job failed: %v", err)
	}

	st := mgr.Stats()
	if st.Panics != 3 || st.Retries != 2 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want Panics 3 Retries 2 Quarantined 1", st)
	}
}

// TestInjectedSolveFaults exercises the faultkit hook in the solve path:
// an injected panic is contained like a real one, an injected delay
// keeps the job well-formed.
func TestInjectedSolveFaults(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1, MaxRetries: -1})
	faultkit.Set("service.solve", faultkit.Panic("injected solve panic"))
	t.Cleanup(func() { faultkit.Clear("service.solve") })
	j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy", NoDedup: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrSolverPanic) {
		t.Fatalf("err = %v, want ErrSolverPanic", err)
	}

	faultkit.Set("service.solve", faultkit.Sleep(10*time.Millisecond))
	j2, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy", NoDedup: true})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("delayed solve failed: %v", err)
	}
}

// TestSubmitFailsWhenJournalUnavailable: durability is a promise — if
// the submitted record cannot be written, the submission must be
// rejected, not silently accepted as volatile.
func TestSubmitFailsWhenJournalUnavailable(t *testing.T) {
	mgr := openTestManager(t, Config{Dir: t.TempDir(), Workers: 1})
	boom := errors.New("journal disk gone")
	faultkit.Set("wal.append", faultkit.Error(boom))
	t.Cleanup(func() { faultkit.Clear("wal.append") })
	if _, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy"}); !errors.Is(err, boom) {
		t.Fatalf("Submit under journal fault = %v, want %v", err, boom)
	}
	faultkit.Clear("wal.append")
	j, err := mgr.Submit(Request{Model: knapModel(0), Solver: "greedy"})
	if err != nil {
		t.Fatalf("Submit after fault cleared: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st := mgr.Stats(); st.Submitted != 1 {
		t.Fatalf("Stats.Submitted = %d, want 1 (rejected submit must not count)", st.Submitted)
	}
}

// TestWireOptionsSubmitPath: Submit lowers WireOptions itself (the
// saimserve path), explicit functional options still win, and the wire
// time limit applies.
func TestWireOptionsSubmitPath(t *testing.T) {
	mgr := newTestManager(t, Config{Workers: 1})
	j, err := mgr.Submit(Request{
		Model:       knapModel(0),
		Solver:      "exact",
		WireOptions: &SolveOptions{TimeLimitMS: 5000},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.req.TimeLimit != 5*time.Second {
		t.Fatalf("wire time limit not applied: %v", j.req.TimeLimit)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Cost != -15 {
		t.Fatalf("cost = %v, want -15", res.Cost)
	}
	// Identical wire submission dedups against it.
	dup, err := mgr.Submit(Request{Model: knapModel(0), Solver: "exact", WireOptions: &SolveOptions{TimeLimitMS: 5000}})
	if err != nil {
		t.Fatalf("dup Submit: %v", err)
	}
	if dup.ID() != j.ID() {
		t.Fatalf("wire-lowered dedup broken: %s vs %s", dup.ID(), j.ID())
	}
}

// TestCheckpointRecordsWritten: a durable saim solve journals at least
// one checkpoint (the first improvement is unthrottled), and the journal
// replays it as the job's warm start.
func TestCheckpointRecordsWritten(t *testing.T) {
	dir := t.TempDir()
	mgr := openTestManager(t, Config{Dir: dir, Workers: 1, CheckpointInterval: time.Second})
	j, err := mgr.Submit(Request{
		Model:       knapModel(0),
		Solver:      "saim",
		WireOptions: &SolveOptions{Iterations: 20, SweepsPerRun: 50, Seed: 3},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := mgr.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs, err := wal.Open(dir, wal.Config{Policy: wal.SyncOff})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	var checkpoints int
	for _, r := range recs {
		if r.Kind == wal.KindCheckpoint && r.Job == j.ID() {
			checkpoints++
		}
	}
	if checkpoints == 0 {
		t.Fatal("no checkpoint records journaled for a feasible saim solve")
	}
}
