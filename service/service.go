// Package service is the concurrent solve layer of the saim library: a
// job manager that runs declarative models from package model on the
// registered solver backends behind a bounded worker pool.
//
// The manager gives a server (cmd/saimserve) everything a multi-tenant
// deployment needs:
//
//   - Backpressure: submissions beyond the queue depth fail fast with
//     ErrQueueFull instead of piling up unboundedly.
//   - Per-job deadlines and cancellation: every job solves under its own
//     context; Request.TimeLimit becomes a WithTimeLimit deadline the
//     backends enforce at cancellation cadence, and Job.Cancel frees the
//     worker within one annealing run.
//   - Deduplication: submissions are keyed by the model's canonical
//     fingerprint plus the options fingerprint; an identical submission
//     attaches to the in-flight job or is served from the result cache,
//     so a thundering herd of equal requests costs one solve.
//   - Serialized progress fan-out: each job streams ordered Progress
//     snapshots to any number of subscribers, and an optional fleet
//     monitor merges every worker's stream through the exported
//     core.ProgressAggregator into one serialized, monotone feed.
//   - Graceful drain: Close stops intake, finishes queued and running
//     work, and force-cancels (best-so-far) only when its context
//     expires.
//   - Durability (Open with Config.Dir): every accepted job is journaled
//     to a segmented write-ahead log (internal/wal) before Submit
//     returns, best-so-far assignments are checkpointed as the solve
//     improves, and a restart on the same directory re-queues every
//     unfinished job warm-started from its last checkpoint — with dedup
//     keys and job ids surviving the crash. Config.Fsync picks the
//     loss-window/throughput trade.
//   - Failure containment: a panicking backend fails only its own job
//     (ErrSolverPanic, with the stack preserved), is retried with
//     backoff up to Config.MaxRetries times, and then has its dedup key
//     quarantined so identical submissions fail fast (ErrQuarantined).
//     Queued jobs whose deadline fully elapsed before a worker freed up
//     fail with ErrDeadlineExpired without ever invoking a solver.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/faultkit"
	"github.com/ising-machines/saim/internal/wal"
	"github.com/ising-machines/saim/model"
)

// ErrQueueFull is returned by Submit when the backpressured queue is at
// capacity. Callers should retry later or shed load upstream.
var ErrQueueFull = errors.New("service: queue full")

// ErrClosed is returned by Submit after Close started draining.
var ErrClosed = errors.New("service: manager closed")

// ErrSolverPanic wraps the recovered panic value (and stack) of a
// backend that panicked mid-solve. Only the panicking job fails; sibling
// jobs on other workers are unaffected.
var ErrSolverPanic = errors.New("solver panicked")

// ErrQuarantined marks a job that exhausted MaxRetries panicking, and
// every later submission sharing its dedup key: a poison model must not
// crash-loop a worker.
var ErrQuarantined = errors.New("service: job quarantined")

// ErrDeadlineExpired marks a queued job whose whole TimeLimit elapsed
// before any worker could pick it up; it fails fast without occupying a
// worker.
var ErrDeadlineExpired = errors.New("service: time limit expired while queued")

// Config sizes a Manager. Zero values take the documented defaults.
type Config struct {
	// Workers is the solve concurrency (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// CacheSize bounds the completed-result cache, LRU-evicted (default
	// 256; negative disables caching entirely).
	CacheSize int
	// DefaultTimeLimit is applied to requests that carry no TimeLimit of
	// their own (zero = unlimited). It protects a deployment from
	// unbounded submissions.
	DefaultTimeLimit time.Duration
	// Monitor, when non-nil, receives the fleet-wide progress stream:
	// every worker's snapshots merged through core.ProgressAggregator
	// into serialized, monotone totals (samples, sweeps, best cost across
	// the fleet). Keep it cheap; it runs under the aggregator's lock.
	Monitor func(saim.Progress)

	// Dir, when non-empty, selects durable mode: every accepted job is
	// journaled to a write-ahead log under Dir, and Open replays the log
	// so jobs survive a crash or kill -9. Managers with a Dir must be
	// created with Open (New panics to catch the silent-durability-loss
	// mistake).
	Dir string
	// Fsync selects the WAL fsync policy in durable mode: SyncInterval
	// (default; bounded loss window), SyncAlways (no acknowledged job is
	// ever lost), or SyncOff (OS writeback only).
	Fsync SyncPolicy
	// MaxRetries bounds re-solve attempts after a solver panic before
	// the job fails for good and its dedup key is quarantined (default
	// 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry, doubled per
	// attempt with deterministic jitter (default 50ms).
	RetryBackoff time.Duration
	// CheckpointInterval throttles durable-mode checkpoint records: the
	// first new-best assignment of a job is journaled immediately, then
	// at most one per interval (default 1s; negative disables
	// checkpointing — recovered jobs restart from scratch).
	CheckpointInterval time.Duration

	// NodeID, when non-empty, scopes job ids to this node
	// ("job-<node>-000001" instead of "job-000001") so ids minted by
	// different cluster nodes never collide and any node can route a
	// status request to the minting node by parsing the id.
	NodeID string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = time.Second
	}
	return c
}

// Request is one solve submission.
type Request struct {
	// Model is the declarative model to solve (required). The manager
	// fingerprints it for deduplication; mutating it after Submit is a
	// data race.
	Model *model.Model
	// Solver names the registered backend (required), e.g. "saim",
	// "decomp", "race".
	Solver string
	// Options configure the solve. WithProgress must not be among them
	// (the manager owns the progress stream); use Job.Subscribe instead.
	Options []saim.Option
	// TimeLimit caps the solve's wall-clock time, folded into the
	// options as WithTimeLimit; zero falls back to the manager's
	// DefaultTimeLimit, and an explicit WithTimeLimit among Options
	// overrides both. The clock starts when a worker picks the job up,
	// not at submission.
	TimeLimit time.Duration
	// NoDedup forces a fresh solve even when an identical submission is
	// in flight or cached — for deliberately re-sampling a stochastic
	// backend.
	NoDedup bool
	// WireOptions, when non-nil, configure the solve in serializable
	// wire form. Submit lowers them ahead of Options (so a functional
	// option still overrides its wire counterpart — last write wins) and
	// durable mode journals them, making the job fully reconstructible
	// after a crash. Functional Options cannot be journaled; a recovered
	// job re-runs with its WireOptions only.
	WireOptions *SolveOptions
}

// Manager owns the worker pool, the queue, the job index, and the result
// cache. Create one with New; all methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	base  context.Context
	abort context.CancelFunc
	queue chan *Job
	wg    sync.WaitGroup

	agg *core.ProgressAggregator

	wal     *wal.Log // nil outside durable mode
	walStop sync.Once

	ctr counters

	mu           sync.Mutex
	draining     bool                // guarded by mu
	nextID       int                 // guarded by mu
	jobs         map[string]*Job     // guarded by mu
	inflight     map[string]*Job     // queued or running, by dedup key; guarded by mu
	cache        *lruCache           // finished, by dedup key; guarded by mu
	finished     []string            // finished job ids, oldest first, for index pruning; guarded by mu
	quarantined  map[string]struct{} // guarded by mu
	quarOrder    []string            // quarantined keys, oldest first, for bounding; guarded by mu
	sinceCompact int                 // finished durable jobs since the last compaction; guarded by mu
}

// New returns a started in-memory Manager. A Config carrying a Dir must
// go through Open instead — New panics rather than silently dropping the
// durability the configuration asked for.
func New(cfg Config) *Manager {
	if cfg.Dir != "" {
		panic("service: Config.Dir set; durable managers must be created with Open")
	}
	return newManager(cfg.withDefaults(), nil, 0)
}

// newManager starts the worker pool. extraQueue widens the queue beyond
// QueueDepth so Open can re-enqueue every recovered job even when they
// outnumber the configured depth.
func newManager(cfg Config, wlog *wal.Log, extraQueue int) *Manager {
	base, abort := context.WithCancel(context.Background())
	m := &Manager{
		cfg:         cfg,
		base:        base,
		abort:       abort,
		queue:       make(chan *Job, cfg.QueueDepth+extraQueue),
		jobs:        map[string]*Job{},
		inflight:    map[string]*Job{},
		cache:       newLRUCache(cfg.CacheSize),
		wal:         wlog,
		quarantined: map[string]struct{}{},
	}
	if cfg.Monitor != nil {
		m.agg = core.NewProgressAggregator(func(p core.ProgressInfo) {
			out := saim.Progress{
				Solver:     "service",
				Iteration:  p.Iteration,
				Iterations: p.Total,
				BestCost:   p.BestCost,
				LambdaNorm: p.LambdaNorm,
				Sweeps:     p.Sweeps,
			}
			if p.Samples > 0 {
				out.FeasibleRatio = 100 * float64(p.FeasibleCount) / float64(p.Samples)
			}
			cfg.Monitor(out)
		}, cfg.Workers, 0)
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker(w)
	}
	return m
}

// jobID formats the id for job number n, scoped to the node in cluster
// mode so ids minted by different nodes never collide.
func (m *Manager) jobID(n int) string {
	if m.cfg.NodeID != "" {
		return fmt.Sprintf("job-%s-%06d", m.cfg.NodeID, n)
	}
	return fmt.Sprintf("job-%06d", n)
}

// dedupKey combines the canonical model fingerprint, the backend name,
// and the options fingerprint: everything that determines a solve's
// result (progress callbacks excluded by construction).
func dedupKey(req Request, limit time.Duration) (string, error) {
	mfp, err := req.Model.Fingerprint()
	if err != nil {
		return "", err
	}
	// The limit is prepended, mirroring runJob: an explicit WithTimeLimit
	// among the request's own options overrides it (last write wins).
	opts := req.Options
	if limit > 0 {
		opts = append([]saim.Option{saim.WithTimeLimit(limit)}, opts...)
	}
	return req.Solver + "\x00" + mfp + "\x00" + saim.OptionsFingerprint(opts...), nil
}

// Submit validates, deduplicates, and enqueues a request. The returned
// job may be shared with earlier identical submissions (its Status.Hits
// counts them) or already finished (served from cache). ErrQueueFull
// reports backpressure; ErrClosed a draining manager; ErrQuarantined a
// request whose dedup key was poisoned by repeated solver panics.
func (m *Manager) Submit(req Request) (*Job, error) {
	if req.Model == nil {
		return nil, fmt.Errorf("service: request has no model")
	}
	if _, err := saim.Get(req.Solver); err != nil {
		return nil, err
	}
	if err := req.Model.Err(); err != nil {
		return nil, err
	}
	// A request whose configuration is entirely wire-encodable (its only
	// options are the WireOptions lowered below) can be re-created on
	// another process; Steal hands out only such jobs. Captured before
	// lowering mutates req.Options.
	wireOnly := len(req.Options) == 0
	if req.WireOptions != nil {
		// Lower wire options ahead of the functional ones so an explicit
		// Option still wins (last write wins), and let an explicit
		// TimeLimit win over the wire form's.
		wopts, wlimit, err := req.WireOptions.Options()
		if err != nil {
			return nil, err
		}
		req.Options = append(wopts, req.Options...)
		if req.TimeLimit <= 0 {
			req.TimeLimit = wlimit
		}
	}
	limit := req.TimeLimit
	if limit <= 0 {
		limit = m.cfg.DefaultTimeLimit
	}
	// NoDedup jobs never enter the dedup index, so skip the O(model)
	// fingerprinting entirely; their key stays empty (detach and prune
	// guard by identity, so an empty key can never alias another job).
	var key string
	if !req.NoDedup {
		var err error
		key, err = dedupKey(req, limit)
		if err != nil {
			return nil, err
		}
	}

	j, existing, err := m.admit(req, key, wireOnly, limit)
	if err != nil {
		return nil, err
	}
	if existing {
		return j, nil
	}
	// The journal append runs OUTSIDE m.mu: under Fsync=SyncAlways every
	// Append fsyncs, and an fsync must never gate Job/Stats/Cancel and
	// every other m.mu operation (lockguard enforces this). The job is
	// already queued and indexed; on journal failure it is retracted
	// before a worker can run it, and since its submitted record never
	// reached the log a crash cannot resurrect it. A concurrent
	// identical submission in the retraction window dedups onto the
	// doomed job and observes it cancelled — the same journal failure it
	// would have hit itself.
	if m.wal != nil {
		if err := m.journalSubmitted(j, limit); err != nil {
			m.retractSubmit(j)
			return nil, fmt.Errorf("service: journal submit: %w", err)
		}
	}
	m.ctr.submitted.Add(1)
	return j, nil
}

// admit runs Submit's critical section: dedup lookup, job construction,
// enqueue, and registration, all under m.mu and nothing slower. existing
// reports a dedup hit. Journaling deliberately happens after this
// returns — see Submit.
func (m *Manager) admit(req Request, key string, wireOnly bool, limit time.Duration) (j *Job, existing bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrClosed
	}
	if !req.NoDedup {
		if _, bad := m.quarantined[key]; bad {
			return nil, false, ErrQuarantined
		}
		if j, ok := m.inflight[key]; ok {
			j.lock()
			j.hits++
			j.unlock()
			m.ctr.dedupHits.Add(1)
			return j, true, nil
		}
		if j, ok := m.cache.get(key); ok {
			j.lock()
			j.hits++
			j.unlock()
			m.ctr.dedupHits.Add(1)
			return j, true, nil
		}
	}

	m.nextID++
	ctx, cancel := context.WithCancel(m.base)
	j = &Job{
		id:        m.jobID(m.nextID),
		key:       key,
		mgr:       m,
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		hits:      1,
		wireOnly:  wireOnly,
		subs:      map[int]chan saim.Progress{},
		submitted: time.Now(),
	}
	j.req.TimeLimit = limit
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, false, ErrQueueFull
	}
	m.jobs[j.id] = j
	if !req.NoDedup {
		m.inflight[key] = j
	}
	return j, false, nil
}

// retractSubmit undoes an admission whose journal append failed: the job
// leaves the index immediately, and the worker that dequeues it sees the
// cancellation and finalizes it without running.
func (m *Manager) retractSubmit(j *Job) {
	j.lock()
	j.cancelled = true
	j.unlock()
	j.cancel()
	m.mu.Lock()
	delete(m.jobs, j.id)
	if cur, ok := m.inflight[j.key]; ok && cur == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
}

// Job returns a tracked job by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns a snapshot of every tracked job (bounded: finished jobs
// are pruned once the index outgrows several cache sizes).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

// Cancel cancels a job by id, reporting whether the id was known.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Job(id)
	if ok {
		j.Cancel()
	}
	return ok
}

// detach removes a job from the dedup index so future identical
// submissions start fresh (used on cancel and failure).
func (m *Manager) detach(j *Job) {
	m.mu.Lock()
	if cur, ok := m.inflight[j.key]; ok && cur == j {
		delete(m.inflight, j.key)
	}
	m.cache.drop(j.key, j)
	m.mu.Unlock()
}

// Close drains the manager: no new submissions are accepted, queued and
// running jobs finish normally, and the call returns when the pool is
// idle. If ctx expires first, running solves are force-cancelled — they
// still finalize with best-so-far results — and ctx's error is returned.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		m.closeWAL()
		return nil
	case <-ctx.Done():
		m.abort()
		<-idle
		m.closeWAL()
		return ctx.Err()
	}
}

// closeWAL appends the clean-shutdown record and closes the journal.
// Called after the pool is idle, so every job's terminal record is
// already in the log.
func (m *Manager) closeWAL() {
	if m.wal == nil {
		return
	}
	m.walStop.Do(func() {
		_ = m.wal.Append(wal.Record{Kind: wal.KindShutdown})
		_ = m.wal.Close()
	})
}

// worker is one pool goroutine: it drains the queue, running each job
// under its own context.
func (m *Manager) worker(w int) {
	defer m.wg.Done()
	var totals workerTotals
	for j := range m.queue {
		m.runJob(w, j, &totals)
	}
}

// workerTotals accumulates one worker's cumulative progress across every
// job it has run, so its aggregator slot sees one monotone stream.
type workerTotals struct {
	samples  int
	feasible int
	sweeps   int64
	// High-water marks of the current job's stream. A meta-solver job
	// (race) interleaves several racers' independent cumulative streams
	// through the one job callback; taking the maximum keeps the fleet
	// totals monotone — at the cost of undercounting the losers' work
	// mid-flight, which the job's final Result sums correctly anyway.
	jobSamples  int
	jobFeasible int
	jobSweeps   int64
}

// feed converts one job-local snapshot into worker-cumulative totals.
func (t *workerTotals) feed(p saim.Progress) core.ProgressInfo {
	samples := p.Iteration + 1
	feas := int(math.Round(p.FeasibleRatio / 100 * float64(samples)))
	t.jobSamples = max(t.jobSamples, samples)
	t.jobFeasible = max(t.jobFeasible, feas)
	t.jobSweeps = max(t.jobSweeps, p.Sweeps)
	return core.ProgressInfo{
		Iteration:     t.samples + t.jobSamples - 1,
		BestCost:      p.BestCost,
		FeasibleCount: t.feasible + t.jobFeasible,
		Samples:       t.samples + t.jobSamples,
		Sweeps:        t.sweeps + t.jobSweeps,
	}
}

// commit folds the finished job's stream into the base offsets.
func (t *workerTotals) commit() {
	t.samples += t.jobSamples
	t.feasible += t.jobFeasible
	t.sweeps += t.jobSweeps
	t.jobSamples, t.jobFeasible, t.jobSweeps = 0, 0, 0
}

// runJob executes one job on worker w: cancellation and queue-expiry
// fast paths, then up to 1+MaxRetries contained solve attempts.
func (m *Manager) runJob(w int, j *Job, totals *workerTotals) {
	j.lock()
	if j.cancelled || j.ctx.Err() != nil {
		j.unlock()
		j.finalize(StateCancelled, nil, context.Canceled)
		m.detach(j)
		m.ctr.cancelled.Add(1)
		m.journalFinish(j, wal.KindCancelled, nil)
		m.noteFinished(j.id)
		return
	}
	// A job whose wall-clock budget fully elapsed while queued cannot do
	// useful work — its deadline would expire at the first cancellation
	// check — so fail it without ever occupying the worker. The solve
	// budget itself still starts at pickup (the documented TimeLimit
	// semantics); this only rejects jobs that queued past their whole
	// budget.
	if j.req.TimeLimit > 0 && time.Since(j.submitted) >= j.req.TimeLimit {
		waited := time.Since(j.submitted)
		j.unlock()
		err := fmt.Errorf("service: %w: queued %v, time limit %v", ErrDeadlineExpired,
			waited.Round(time.Millisecond), j.req.TimeLimit)
		j.finalize(StateFailed, nil, err)
		m.detach(j)
		m.ctr.expired.Add(1)
		m.ctr.failed.Add(1)
		m.journalFinish(j, wal.KindFinished, err)
		m.noteFinished(j.id)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	warm := j.warm
	j.unlock()
	m.ctr.busy.Add(1)
	defer m.ctr.busy.Add(-1)

	// The job-level limit is prepended so an explicit WithTimeLimit the
	// caller put among its own options still wins (options apply last
	// write wins) — the manager default must never loosen a deadline the
	// caller tightened. A recovery warm start is likewise prepended so a
	// caller's own WithInitial wins.
	var opts []saim.Option
	if j.req.TimeLimit > 0 {
		opts = append(opts, saim.WithTimeLimit(j.req.TimeLimit))
	}
	if warm != nil {
		opts = append(opts, saim.WithInitial(warm))
	}
	opts = append(opts, j.req.Options...)
	emit := j.publish
	if m.agg != nil {
		relay := m.agg.Callback(w)
		inner := emit
		emit = func(p saim.Progress) {
			inner(p)
			relay(totals.feed(p))
		}
	}
	opts = append(opts, saim.WithProgress(emit))
	if m.wal != nil && m.cfg.CheckpointInterval > 0 {
		opts = append(opts, saim.WithCheckpoint(m.checkpointFn(j)))
	}

	var sol *model.Solution
	var err error
	for attempt := 0; ; attempt++ {
		j.lock()
		j.attempts = attempt + 1
		j.unlock()
		m.journalStarted(j, attempt+1)
		sol, err = m.solveJob(j, opts)
		if err == nil || !errors.Is(err, ErrSolverPanic) {
			break
		}
		m.ctr.panics.Add(1)
		if attempt >= m.cfg.MaxRetries {
			if j.key != "" {
				m.quarantineKey(j.key)
				m.ctr.quarantined.Add(1)
			}
			err = fmt.Errorf("service: %w after %d attempts: %w", ErrQuarantined, attempt+1, err)
			break
		}
		m.ctr.retries.Add(1)
		select {
		case <-j.ctx.Done():
		case <-time.After(m.retryBackoff(j.id, attempt)):
		}
		if j.ctx.Err() != nil {
			break
		}
	}
	if m.agg != nil {
		totals.commit()
	}

	switch {
	case err != nil:
		j.finalize(StateFailed, nil, err)
		m.detach(j)
		m.ctr.failed.Add(1)
		m.journalFinish(j, wal.KindFinished, err)
	default:
		state := StateDone
		j.lock()
		wasCancelled := j.cancelled
		j.unlock()
		if wasCancelled && sol.Result().Stopped == saim.StopCancelled {
			state = StateCancelled
		}
		j.finalize(state, sol, nil)
		m.mu.Lock()
		if cur, ok := m.inflight[j.key]; ok && cur == j {
			delete(m.inflight, j.key)
		}
		if state == StateDone && !j.req.NoDedup {
			m.cache.put(j.key, j)
		}
		m.mu.Unlock()
		if state == StateDone {
			m.ctr.completed.Add(1)
			m.journalFinish(j, wal.KindFinished, nil)
		} else {
			m.ctr.cancelled.Add(1)
			m.journalFinish(j, wal.KindCancelled, nil)
		}
	}
	m.noteFinished(j.id)
	m.maybeCompact()
}

// solveJob runs one contained solve attempt: a panicking backend fails
// only this job, with the panic value and stack preserved in the error.
func (m *Manager) solveJob(j *Job, opts []saim.Option) (sol *model.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol = nil
			err = fmt.Errorf("service: job %s: %w: %v\n%s", j.id, ErrSolverPanic, r, debug.Stack())
		}
	}()
	if ferr := faultkit.Inject("service.solve"); ferr != nil {
		return nil, ferr
	}
	return j.req.Model.Solve(j.ctx, j.req.Solver, opts...)
}

// retryBackoff is RetryBackoff·2^attempt plus up to 50% jitter. The
// jitter is a hash of (job id, attempt) rather than ambient randomness —
// the repo's seeded-randomness discipline — which spreads a herd of
// simultaneous retries just as well.
func (m *Manager) retryBackoff(id string, attempt int) time.Duration {
	if attempt > 16 {
		attempt = 16
	}
	base := m.cfg.RetryBackoff << uint(attempt)
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(base/2+1))
	return base + jitter
}

// quarantineKey poisons a dedup key after repeated panics so identical
// submissions fail fast with ErrQuarantined instead of crash-looping a
// worker. The set is bounded FIFO.
func (m *Manager) quarantineKey(key string) {
	const maxQuarantined = 1024
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.quarantined[key]; ok {
		return
	}
	m.quarantined[key] = struct{}{}
	m.quarOrder = append(m.quarOrder, key)
	if len(m.quarOrder) > maxQuarantined {
		delete(m.quarantined, m.quarOrder[0])
		m.quarOrder = m.quarOrder[1:]
	}
}

// noteFinished records a finished job in the pruning FIFO and bounds the
// job index: once finished jobs outnumber four cache sizes (at least 64),
// the oldest are forgotten. Jobs still resident in the result cache are
// never pruned — a cache hit hands out their id, so the id must keep
// resolving (the cache holds at most CacheSize jobs, a quarter of the
// limit, so retention cannot defeat the bound). Pruned jobs' Done
// channels and results stay valid for holders of the *Job; only id
// lookup expires.
func (m *Manager) noteFinished(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	limit := 4 * m.cfg.CacheSize
	if limit < 64 {
		limit = 64
	}
	m.finished = append(m.finished, id)
	if len(m.finished) <= limit {
		return
	}
	kept := m.finished[:0]
	excess := len(m.finished) - limit
	for _, old := range m.finished {
		j, ok := m.jobs[old]
		if excess > 0 && (!ok || m.cache.byKey[j.key] != j) {
			delete(m.jobs, old)
			excess--
			continue
		}
		kept = append(kept, old)
	}
	m.finished = kept
}

// lruCache is a minimal LRU of finished jobs keyed by dedup key.
type lruCache struct {
	cap   int
	order []string // least recent first
	byKey map[string]*Job
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache{cap: capacity, byKey: map[string]*Job{}}
}

func (c *lruCache) get(key string) (*Job, bool) {
	j, ok := c.byKey[key]
	if ok {
		c.touch(key)
	}
	return j, ok
}

func (c *lruCache) put(key string, j *Job) {
	if c.cap == 0 {
		return
	}
	if _, ok := c.byKey[key]; ok {
		c.byKey[key] = j
		c.touch(key)
		return
	}
	c.byKey[key] = j
	c.order = append(c.order, key)
	for len(c.byKey) > c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.byKey, oldest)
	}
}

// drop removes the key when it maps to the given job (cancel/failure
// paths must not evict a fresher entry under the same key).
func (c *lruCache) drop(key string, j *Job) {
	if cur, ok := c.byKey[key]; ok && cur == j {
		delete(c.byKey, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}

func (c *lruCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i], c.order[i+1:]...), key)
			return
		}
	}
}
