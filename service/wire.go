package service

import (
	"fmt"
	"time"

	saim "github.com/ising-machines/saim"
)

// SolveOptions is the JSON wire form of a solve's option list — the shape
// cmd/saimserve accepts in submissions. Zero values mean "backend
// default", matching the functional options they lower onto.
type SolveOptions struct {
	// Alpha, Penalty, Eta are the paper's penalty/multiplier knobs.
	Alpha   float64 `json:"alpha,omitempty"`
	Penalty float64 `json:"penalty,omitempty"`
	Eta     float64 `json:"eta,omitempty"`
	// Iterations and SweepsPerRun budget the solve.
	Iterations   int `json:"iterations,omitempty"`
	SweepsPerRun int `json:"sweeps_per_run,omitempty"`
	// BetaMax is the final inverse temperature.
	BetaMax float64 `json:"beta_max,omitempty"`
	// Seed makes the solve reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Machine forces the sweep kernel: "auto" (or empty), "dense",
	// "sparse".
	Machine string `json:"machine,omitempty"`
	// Replicas, Population size the pt/saim pool and the GA.
	Replicas   int `json:"replicas,omitempty"`
	Population int `json:"population,omitempty"`
	// TimeLimitMS caps wall-clock solve time in milliseconds (every
	// backend; Stopped reports "time-limit" on expiry).
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// NodeLimit caps the exact solver's branch-and-bound nodes.
	NodeLimit int `json:"node_limit,omitempty"`
	// TargetCost stops the solve early at a feasible cost ≤ target.
	TargetCost *float64 `json:"target_cost,omitempty"`
	// Patience stops after this many stale iterations.
	Patience int `json:"patience,omitempty"`
	// Initial warm-starts the solve from a 0/1 assignment.
	Initial []int `json:"initial,omitempty"`
	// SubproblemSize, InnerSolver, Rounds, TabuTenure configure the
	// decomposition meta-solver.
	SubproblemSize int    `json:"subproblem_size,omitempty"`
	InnerSolver    string `json:"inner_solver,omitempty"`
	Rounds         int    `json:"rounds,omitempty"`
	TabuTenure     *int   `json:"tabu_tenure,omitempty"`
	// Racers names the field of the race meta-solver.
	Racers []string `json:"racers,omitempty"`
}

// Options lowers the wire form onto the functional option list. The
// returned TimeLimit (from TimeLimitMS) is reported separately so the
// manager can fold in its default; it is NOT included in the options.
func (o *SolveOptions) Options() ([]saim.Option, time.Duration, error) {
	var opts []saim.Option
	if o == nil {
		return nil, 0, nil
	}
	if o.Alpha != 0 {
		opts = append(opts, saim.WithAlpha(o.Alpha))
	}
	if o.Penalty != 0 {
		opts = append(opts, saim.WithPenalty(o.Penalty))
	}
	if o.Eta != 0 {
		opts = append(opts, saim.WithEta(o.Eta))
	}
	if o.Iterations != 0 {
		opts = append(opts, saim.WithIterations(o.Iterations))
	}
	if o.SweepsPerRun != 0 {
		opts = append(opts, saim.WithSweepsPerRun(o.SweepsPerRun))
	}
	if o.BetaMax != 0 {
		opts = append(opts, saim.WithBetaMax(o.BetaMax))
	}
	if o.Seed != 0 {
		opts = append(opts, saim.WithSeed(o.Seed))
	}
	switch o.Machine {
	case "", "auto":
	case "dense":
		opts = append(opts, saim.WithMachine(saim.MachineDense))
	case "sparse":
		opts = append(opts, saim.WithMachine(saim.MachineSparse))
	default:
		return nil, 0, fmt.Errorf("service: unknown machine kind %q (want auto, dense, or sparse)", o.Machine)
	}
	if o.Replicas != 0 {
		opts = append(opts, saim.WithReplicas(o.Replicas))
	}
	if o.Population != 0 {
		opts = append(opts, saim.WithPopulation(o.Population))
	}
	if o.TimeLimitMS < 0 {
		return nil, 0, fmt.Errorf("service: negative time limit %d ms", o.TimeLimitMS)
	}
	if o.NodeLimit != 0 {
		opts = append(opts, saim.WithNodeLimit(o.NodeLimit))
	}
	if o.TargetCost != nil {
		opts = append(opts, saim.WithTargetCost(*o.TargetCost))
	}
	if o.Patience != 0 {
		opts = append(opts, saim.WithPatience(o.Patience))
	}
	if len(o.Initial) > 0 {
		opts = append(opts, saim.WithInitial(o.Initial))
	}
	if o.SubproblemSize != 0 {
		opts = append(opts, saim.WithSubproblemSize(o.SubproblemSize))
	}
	if o.InnerSolver != "" {
		opts = append(opts, saim.WithInnerSolver(o.InnerSolver))
	}
	if o.Rounds != 0 {
		opts = append(opts, saim.WithRounds(o.Rounds))
	}
	if o.TabuTenure != nil {
		opts = append(opts, saim.WithTabuTenure(*o.TabuTenure))
	}
	if len(o.Racers) > 0 {
		opts = append(opts, saim.WithRacers(o.Racers...))
	}
	return opts, time.Duration(o.TimeLimitMS) * time.Millisecond, nil
}
