package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/wal"
	"github.com/ising-machines/saim/model"
)

// This file is the manager's side of cluster work-stealing: an idle peer
// pulls a queued job off this manager's queue (Steal), executes it on its
// own worker pool, and reports the outcome back (CompleteRemote). The
// job's identity — id, subscribers, dedup-index entry, journal records —
// never leaves this manager; only the solve itself moves. A lease bounds
// the thief's silence: if no completion arrives in time (thief died,
// network partitioned), the job goes back on the local queue.

// ErrNotStolen is returned by CompleteRemote when the job is not
// currently out on a steal lease — it finished locally, its lease
// expired and it was re-queued, or the id is simply not remote. The
// thief's result is discarded; the local execution is authoritative.
var ErrNotStolen = errors.New("service: job is not out on a steal lease")

// StolenJob is the wire form of a job handed to another node: everything
// the thief needs to re-create the solve from scratch. Options carry the
// victim's journaled wire options with any recovery checkpoint folded
// into Initial, so the thief's solve warm-starts exactly like a local
// re-run would.
type StolenJob struct {
	ID          string          `json:"id"`
	Solver      string          `json:"solver"`
	Model       json.RawMessage `json:"model"`
	Options     *SolveOptions   `json:"options,omitempty"`
	TimeLimitMS int64           `json:"time_limit_ms,omitempty"`
}

// RemoteResult is the wire form of a stolen job's outcome, posted back to
// the victim. Exactly one of the three shapes applies: Released true (the
// thief could not run the job — transient local backpressure — and hands
// it back unharmed), Error non-empty (the remote solve failed for good),
// or Result holding the solver result.
type RemoteResult struct {
	Released bool        `json:"released,omitempty"`
	Error    string      `json:"error,omitempty"`
	Result   *WireResult `json:"result,omitempty"`
}

// WireResult is the serializable subset of saim.Result that crosses
// nodes. Assignment nil means no feasible assignment was found.
type WireResult struct {
	Solver        string    `json:"solver"`
	Winner        string    `json:"winner,omitempty"`
	Assignment    []int     `json:"assignment,omitempty"`
	Cost          float64   `json:"cost"`
	FeasibleRatio float64   `json:"feasible_ratio"`
	Penalty       float64   `json:"penalty,omitempty"`
	Sweeps        int64     `json:"sweeps"`
	Iterations    int       `json:"iterations"`
	Lambda        []float64 `json:"lambda,omitempty"`
	Stopped       string    `json:"stopped"`
	Optimal       bool      `json:"optimal,omitempty"`
}

// ToWireResult encodes a solver result for the inter-node protocol. The
// infeasible +Inf cost is mapped to Assignment == nil (its JSON-safe
// encoding); ParseWireResult restores it.
func ToWireResult(res *saim.Result) *WireResult {
	out := &WireResult{
		Solver:        res.Solver,
		Winner:        res.Winner,
		FeasibleRatio: res.FeasibleRatio,
		Penalty:       res.Penalty,
		Sweeps:        res.Sweeps,
		Iterations:    res.Iterations,
		Lambda:        res.Lambda,
		Stopped:       res.Stopped.String(),
		Optimal:       res.Optimal,
	}
	if !res.Infeasible() {
		out.Assignment = res.Assignment
		out.Cost = res.Cost
	}
	return out
}

// parseStopReason inverts StopReason.String; unknown strings (a newer
// peer's vocabulary) degrade to StopCompleted rather than failing the
// whole result.
func parseStopReason(s string) saim.StopReason {
	for _, r := range []saim.StopReason{
		saim.StopCompleted, saim.StopCancelled, saim.StopTarget,
		saim.StopPatience, saim.StopTimeLimit,
	} {
		if r.String() == s {
			return r
		}
	}
	return saim.StopCompleted
}

// ParseWireResult decodes a peer's result back into a solver result.
func ParseWireResult(w *WireResult) *saim.Result {
	res := &saim.Result{
		Solver:        w.Solver,
		Winner:        w.Winner,
		FeasibleRatio: w.FeasibleRatio,
		Penalty:       w.Penalty,
		Sweeps:        w.Sweeps,
		Iterations:    w.Iterations,
		Lambda:        w.Lambda,
		Stopped:       parseStopReason(w.Stopped),
		Optimal:       w.Optimal,
	}
	if w.Assignment != nil {
		res.Assignment = w.Assignment
		res.Cost = w.Cost
	} else {
		res.Cost = math.Inf(1)
	}
	return res
}

// Steal hands out one queued, wire-reconstructible job for execution on
// another node. The job stays tracked here — same id, same subscribers,
// same dedup entry — but moves to StateRunning with no local worker
// attached; the caller must eventually report the outcome through
// CompleteRemote. If nothing arrives within the lease, the job is put
// back on the local queue. Jobs that are cancelled, or that carry
// functional options a remote process cannot re-create, are skipped (and
// stay queued). ok is false when no stealable job is queued.
func (m *Manager) Steal(lease time.Duration) (*StolenJob, bool) {
	if lease <= 0 {
		lease = 30 * time.Second
	}
	sj, j, attempt, ok := m.stealOne(lease)
	if !ok {
		return nil, false
	}
	// The start record is journaled OUTSIDE m.mu — under SyncAlways an
	// Append fsyncs, and an fsync must not stall every other manager
	// operation (lockguard enforces this). A crash between handing the
	// job out and appending the record replays the job as queued, which
	// is exactly the lease-expiry path's behavior: re-running a stolen
	// job is the steal protocol's idempotent case.
	m.journalStarted(j, attempt)
	return sj, true
}

// stealOne runs Steal's critical section: scan the queue for a
// stealable job, mark it running, and arm its lease, all under m.mu.
func (m *Manager) stealOne(lease time.Duration) (*StolenJob, *Job, int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, nil, 0, false
	}
	// Drain up to the current queue length looking for a stealable job;
	// everything unstealable goes straight back. Submit sends under m.mu,
	// so no new job can slip in mid-scan and the re-sends cannot exceed
	// the queue's capacity (workers may shrink it concurrently, never
	// grow it).
	var putBack []*Job
	defer func() {
		for _, j := range putBack {
			m.queue <- j
		}
	}()
	for n := len(m.queue); n > 0; n-- {
		var j *Job
		select {
		case j = <-m.queue:
		default:
			return nil, nil, 0, false
		}
		j.lock()
		stealable := j.wireOnly && !j.cancelled && j.ctx.Err() == nil && j.state == StateQueued
		if !stealable {
			j.unlock()
			putBack = append(putBack, j)
			continue
		}
		raw, err := json.Marshal(j.req.Model)
		if err != nil {
			j.unlock()
			putBack = append(putBack, j)
			continue
		}
		j.state = StateRunning
		j.remote = true
		j.started = time.Now()
		j.attempts++
		attempt := j.attempts
		opts := stolenOptions(j)
		j.lease = time.AfterFunc(lease, func() { m.requeueStolen(j) })
		j.unlock()
		m.ctr.stolen.Add(1)
		return &StolenJob{
			ID:          j.id,
			Solver:      j.req.Solver,
			Model:       raw,
			Options:     opts,
			TimeLimitMS: j.req.TimeLimit.Milliseconds(),
		}, j, attempt, true
	}
	return nil, nil, 0, false
}

// stolenOptions copies the job's wire options, folding a recovery
// checkpoint into Initial (mirroring runJob's warm-start prepend; an
// explicit Initial the caller set wins). Called with j locked.
func stolenOptions(j *Job) *SolveOptions {
	opts := j.req.WireOptions
	if j.warm == nil {
		return opts
	}
	var cp SolveOptions
	if opts != nil {
		cp = *opts
	}
	if len(cp.Initial) == 0 {
		cp.Initial = j.warm
	}
	return &cp
}

// requeueStolen is the lease-expiry path: the thief never reported back,
// so the job returns to the local queue for a worker (or another thief)
// to pick up. During a drain the queue is closed; the job is finalized
// as failed instead so its subscribers unblock.
func (m *Manager) requeueStolen(j *Job) {
	j.lock()
	if !j.remote || j.state != StateRunning {
		j.unlock()
		return
	}
	j.remote = false
	j.lease = nil
	j.state = StateQueued
	j.unlock()
	m.ctr.requeued.Add(1)
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			err := fmt.Errorf("service: steal lease on %s expired during drain", j.id)
			j.finalize(StateFailed, nil, err)
			m.detach(j)
			m.ctr.failed.Add(1)
			m.journalFinish(j, wal.KindFinished, err)
			m.noteFinished(j.id)
			return
		}
		select {
		case m.queue <- j:
			m.mu.Unlock()
			return
		default:
			m.mu.Unlock()
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-m.base.Done():
			return
		}
	}
}

// ReleaseStolen returns a stolen job to the local queue unharmed — the
// thief declining work it cannot run right now (its own queue filled, it
// started draining). ErrNotStolen reports a job not out on a lease.
func (m *Manager) ReleaseStolen(id string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("service: unknown job %q", id)
	}
	j.lock()
	if !j.remote || j.state != StateRunning {
		j.unlock()
		return ErrNotStolen
	}
	if j.lease != nil {
		j.lease.Stop()
	}
	j.unlock()
	m.requeueStolen(j)
	return nil
}

// CompleteRemote finalizes a stolen job with the result its thief
// produced, exactly as if a local worker had solved it: subscribers get
// their terminal event, the dedup cache is fed, and durable mode
// journals the finish. failure, when non-empty, fails the job instead.
// ErrNotStolen reports a job that is not (or no longer) out on a lease —
// the caller's result is discarded.
func (m *Manager) CompleteRemote(id string, res *saim.Result, failure string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("service: unknown job %q", id)
	}
	j.lock()
	if !j.remote || j.state != StateRunning {
		j.unlock()
		return ErrNotStolen
	}
	j.remote = false
	if j.lease != nil {
		j.lease.Stop()
		j.lease = nil
	}
	wasCancelled := j.cancelled
	j.unlock()

	switch {
	case failure != "":
		err := fmt.Errorf("service: remote solve: %s", failure)
		j.finalize(StateFailed, nil, err)
		m.detach(j)
		m.ctr.failed.Add(1)
		m.journalFinish(j, wal.KindFinished, err)
	case res == nil:
		err := errors.New("service: remote solve returned no result")
		j.finalize(StateFailed, nil, err)
		m.detach(j)
		m.ctr.failed.Add(1)
		m.journalFinish(j, wal.KindFinished, err)
	default:
		state := StateDone
		if wasCancelled && res.Stopped == saim.StopCancelled {
			state = StateCancelled
		}
		j.finalize(state, model.NewSolution(j.req.Model, res), nil)
		m.mu.Lock()
		if cur, ok := m.inflight[j.key]; ok && cur == j {
			delete(m.inflight, j.key)
		}
		if state == StateDone && !j.req.NoDedup {
			m.cache.put(j.key, j)
		}
		m.mu.Unlock()
		if state == StateDone {
			m.ctr.completed.Add(1)
			m.ctr.stolenDone.Add(1)
			m.journalFinish(j, wal.KindFinished, nil)
		} else {
			m.ctr.cancelled.Add(1)
			m.journalFinish(j, wal.KindCancelled, nil)
		}
	}
	m.noteFinished(j.id)
	m.maybeCompact()
	return nil
}
