package service

import (
	"context"
	"runtime"
	"testing"

	saim "github.com/ising-machines/saim"
)

// BenchmarkServiceSubmitResult measures the full submit→solve→result
// round trip through the manager on an instant deterministic backend
// (greedy), i.e. the service overhead per job: fingerprinting, queueing,
// worker dispatch, and finalization.
func BenchmarkServiceSubmitResult(b *testing.B) {
	mgr := New(Config{Workers: runtime.GOMAXPROCS(0), QueueDepth: 1024})
	defer mgr.Close(context.Background())
	m := knapModel(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := mgr.Submit(Request{Model: m, Solver: "greedy", NoDedup: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceDurableSubmitResult measures the same round trip
// through a durable manager with fsync off: the added cost is journal
// encoding plus buffered segment writes (submitted + started + finished
// records per job), with no disk barrier on the submit path.
func BenchmarkServiceDurableSubmitResult(b *testing.B) {
	mgr, err := Open(Config{
		Dir:        b.TempDir(),
		Fsync:      SyncOff,
		Workers:    runtime.GOMAXPROCS(0),
		QueueDepth: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close(context.Background())
	m := knapModel(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := mgr.Submit(Request{Model: m, Solver: "greedy", NoDedup: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCacheHit measures a deduplicated submission: the
// steady-state cost of serving an identical request from the result
// cache (two fingerprints plus a map hit, no solve).
func BenchmarkServiceCacheHit(b *testing.B) {
	mgr := New(Config{Workers: 1})
	defer mgr.Close(context.Background())
	m := knapModel(0)
	req := Request{Model: m, Solver: "greedy"}
	warm, err := mgr.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Wait(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := mgr.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if j != warm {
			b.Fatal("cache miss")
		}
	}
}

// BenchmarkServiceParallelSubmit measures throughput with concurrent
// submitters against the full worker pool.
func BenchmarkServiceParallelSubmit(b *testing.B) {
	mgr := New(Config{Workers: runtime.GOMAXPROCS(0), QueueDepth: 4096})
	defer mgr.Close(context.Background())
	m := knapModel(0)
	opts := []saim.Option{saim.WithSeed(1)}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j, err := mgr.Submit(Request{Model: m, Solver: "greedy", Options: opts, NoDedup: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
