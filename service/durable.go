package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/wal"
	"github.com/ising-machines/saim/model"
)

// SyncPolicy selects when the durable-mode journal fsyncs; it aliases
// the internal wal type so every layer shares one vocabulary (the
// saim.MachineKind precedent).
type SyncPolicy = wal.SyncPolicy

// Re-exported fsync policies.
const (
	// SyncInterval (the default) fsyncs on a background timer: a crash
	// loses at most the last ~100ms of acknowledged jobs.
	SyncInterval = wal.SyncInterval
	// SyncAlways fsyncs before Submit returns: no acknowledged job is
	// ever lost.
	SyncAlways = wal.SyncAlways
	// SyncOff never fsyncs explicitly; durability rides on OS writeback.
	SyncOff = wal.SyncOff
)

// compactEvery is the minimum number of finished durable jobs between
// WAL compactions, and compactMinBytes the minimum journal size worth
// rewriting. Both must hold before a compaction runs: each one rewrites
// and fsyncs the log, so triggering on count alone would tax a stream of
// small fast jobs with a disk barrier every few dozen solves.
const (
	compactEvery    = 64
	compactMinBytes = 1 << 20
)

// submittedRec is the journaled body of a KindSubmitted record —
// everything needed to re-create the job after a crash.
type submittedRec struct {
	Solver string `json:"solver"`
	// Model is the canonical model JSON (model.MarshalJSON).
	Model json.RawMessage `json:"model"`
	// Options is the wire form of the request options. Functional
	// options cannot be journaled; a recovered job re-runs with its wire
	// options only.
	Options *SolveOptions `json:"options,omitempty"`
	// TimeLimitMS is the resolved limit (request or manager default) so
	// a changed default is not re-applied on recovery.
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	NoDedup     bool  `json:"no_dedup,omitempty"`
}

// startedRec is the journaled body of a KindStarted record.
type startedRec struct {
	Attempt int `json:"attempt"`
}

// checkpointRec is the journaled body of a KindCheckpoint record: the
// best-so-far decision assignment and its cost, the warm start a
// recovered job resumes from.
type checkpointRec struct {
	Assignment []int   `json:"assignment"`
	Cost       float64 `json:"cost"`
}

// finishedRec is the journaled body of a KindFinished record.
type finishedRec struct {
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// counters are the manager's monotonically increasing health counters,
// exposed by Stats and (through cmd/saimserve) /statusz.
type counters struct {
	submitted   atomic.Int64
	dedupHits   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	expired     atomic.Int64
	retries     atomic.Int64
	panics      atomic.Int64
	quarantined atomic.Int64
	walErrors   atomic.Int64
	busy        atomic.Int64
	stolen      atomic.Int64
	stolenDone  atomic.Int64
	requeued    atomic.Int64
}

// Stats is a point-in-time snapshot of manager health. Counters are
// cumulative since the manager (not the journal) started.
type Stats struct {
	// Workers and QueueDepth echo the configuration; Queued and Busy are
	// the current queue length and workers mid-solve (worker utilization
	// is Busy/Workers).
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	Queued     int `json:"queued"`
	Busy       int `json:"busy"`
	// Submission outcomes.
	Submitted int64 `json:"submitted"`
	DedupHits int64 `json:"dedup_hits"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Expired   int64 `json:"expired"`
	// Failure containment.
	Retries     int64 `json:"retries"`
	Panics      int64 `json:"panics"`
	Quarantined int64 `json:"quarantined"`
	// Work stealing (cluster mode). Stolen counts jobs handed to another
	// node by Steal, StolenDone those whose result came back through
	// CompleteRemote, Requeued those whose lease expired and were put
	// back on the local queue.
	Stolen     int64 `json:"stolen"`
	StolenDone int64 `json:"stolen_done"`
	Requeued   int64 `json:"requeued"`
	// Durable is true in durable mode; the WAL* fields are zero outside
	// it. WALLag is appended-but-not-fsynced records — the current loss
	// window. WALErrors counts journal writes that failed after the job
	// was already accepted (submit-time failures reject the submit).
	Durable     bool  `json:"durable"`
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
	WALAppended int64 `json:"wal_appended"`
	WALSynced   int64 `json:"wal_synced"`
	WALLag      int64 `json:"wal_lag"`
	WALErrors   int64 `json:"wal_errors"`
}

// Stats returns a snapshot of manager health.
func (m *Manager) Stats() Stats {
	st := Stats{
		Workers:     m.cfg.Workers,
		QueueDepth:  m.cfg.QueueDepth,
		Queued:      len(m.queue),
		Busy:        int(m.ctr.busy.Load()),
		Submitted:   m.ctr.submitted.Load(),
		DedupHits:   m.ctr.dedupHits.Load(),
		Completed:   m.ctr.completed.Load(),
		Failed:      m.ctr.failed.Load(),
		Cancelled:   m.ctr.cancelled.Load(),
		Expired:     m.ctr.expired.Load(),
		Retries:     m.ctr.retries.Load(),
		Panics:      m.ctr.panics.Load(),
		Quarantined: m.ctr.quarantined.Load(),
		Stolen:      m.ctr.stolen.Load(),
		StolenDone:  m.ctr.stolenDone.Load(),
		Requeued:    m.ctr.requeued.Load(),
		WALErrors:   m.ctr.walErrors.Load(),
	}
	if m.wal != nil {
		ws := m.wal.Stats()
		st.Durable = true
		st.WALSegments = ws.Segments
		st.WALBytes = ws.Bytes
		st.WALAppended = ws.Appended
		st.WALSynced = ws.Synced
		st.WALLag = ws.Lag
	}
	return st
}

// Open starts a durable Manager rooted at cfg.Dir: it replays the
// journal, re-queues every job that had not finished (warm-starting each
// from its last checkpoint), compacts the log, and then serves new
// submissions exactly like New. Jobs whose journaled model or options no
// longer parse are finalized as failed rather than dropped, so their ids
// still resolve. Corruption in a sealed journal segment fails Open with
// a wal.CorruptError rather than silently dropping acknowledged jobs.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: Open requires Config.Dir (use New for an in-memory manager)")
	}
	cfg = cfg.withDefaults()
	wlog, recs, err := wal.Open(cfg.Dir, wal.Config{Policy: cfg.Fsync})
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	pending, maxID := replayRecords(recs)
	// Compact before starting the pool: terminal jobs' records are
	// dropped, and duplicate segments left by a compaction that crashed
	// between rename and delete fold back into one (replay is idempotent
	// per job id, so the duplicates were harmless to read).
	live := make(map[string]bool, len(pending))
	for _, p := range pending {
		live[p.id] = true
	}
	if err := wlog.Compact(func(job string) bool { return live[job] }); err != nil {
		wlog.Close()
		return nil, fmt.Errorf("service: compact journal: %w", err)
	}
	m := newManager(cfg, wlog, len(pending))
	// The worker pool is already running; the id counter must resume
	// under the lock like every other nextID access.
	m.mu.Lock()
	m.nextID = maxID
	m.mu.Unlock()
	for _, p := range pending {
		m.requeue(p)
	}
	return m, nil
}

// pendingJob is one non-finished job reconstructed from the journal.
type pendingJob struct {
	id       string
	rec      submittedRec
	warm     []int
	warmCost float64
	attempts int
}

// replayRecords folds the journal into the set of jobs to re-queue (in
// submission order) and the highest job number ever seen — the id
// counter must resume past finished jobs too, so a recycled id can never
// point a client at someone else's job.
func replayRecords(recs []wal.Record) ([]pendingJob, int) {
	byID := map[string]*pendingJob{}
	var order []string
	maxID := 0
	for _, r := range recs {
		if n := idNumber(r.Job); n > maxID {
			maxID = n
		}
		switch r.Kind {
		case wal.KindSubmitted:
			if _, ok := byID[r.Job]; ok {
				continue // duplicate from an interrupted compaction
			}
			p := &pendingJob{id: r.Job}
			if err := json.Unmarshal(r.Data, &p.rec); err != nil {
				// Keep the entry with a zero rec; requeue finalizes it
				// as failed so the id still resolves.
				p.rec = submittedRec{}
			}
			byID[r.Job] = p
			order = append(order, r.Job)
		case wal.KindStarted:
			if p := byID[r.Job]; p != nil {
				p.attempts++
			}
		case wal.KindCheckpoint:
			p := byID[r.Job]
			if p == nil {
				continue
			}
			var ck checkpointRec
			if err := json.Unmarshal(r.Data, &ck); err != nil {
				continue
			}
			if p.warm == nil || ck.Cost < p.warmCost {
				p.warm, p.warmCost = ck.Assignment, ck.Cost
			}
		case wal.KindFinished, wal.KindCancelled:
			delete(byID, r.Job)
		}
	}
	out := make([]pendingJob, 0, len(byID))
	for _, id := range order {
		if p := byID[id]; p != nil {
			out = append(out, *p)
		}
	}
	return out, maxID
}

// idNumber extracts the numeric suffix of a "job-%06d" or node-scoped
// "job-<node>-%06d" id (0 when the id has another shape).
func idNumber(id string) int {
	if i := strings.LastIndexByte(id, '-'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil {
			return n
		}
	}
	return 0
}

// requeue reconstructs one journaled job and enqueues it. The queue was
// sized with headroom for every pending job, so the send cannot block.
// The job keeps its id; its submission clock restarts now (a job must
// never expire because the process was down) and its dedup key is
// recomputed from the same inputs Submit used, so restarts preserve
// dedup behavior.
func (m *Manager) requeue(p pendingJob) {
	fail := func(err error) {
		j := m.newRecoveredJob(p, Request{Solver: p.rec.Solver}, "")
		j.finalize(StateFailed, nil, fmt.Errorf("service: recover %s: %w", p.id, err))
		m.mu.Lock()
		m.jobs[j.id] = j
		m.mu.Unlock()
		m.ctr.failed.Add(1)
		m.journalFinish(j, wal.KindFinished, err)
		m.noteFinished(j.id)
	}
	if p.rec.Solver == "" || len(p.rec.Model) == 0 {
		fail(errors.New("journaled submission did not parse"))
		return
	}
	mdl := model.New()
	if err := json.Unmarshal(p.rec.Model, mdl); err != nil {
		fail(fmt.Errorf("journaled model: %w", err))
		return
	}
	opts, _, err := p.rec.Options.Options()
	if err != nil {
		fail(fmt.Errorf("journaled options: %w", err))
		return
	}
	req := Request{
		Model:       mdl,
		Solver:      p.rec.Solver,
		Options:     opts,
		TimeLimit:   time.Duration(p.rec.TimeLimitMS) * time.Millisecond,
		NoDedup:     p.rec.NoDedup,
		WireOptions: p.rec.Options,
	}
	var key string
	if !req.NoDedup {
		if key, err = dedupKey(req, req.TimeLimit); err != nil {
			fail(fmt.Errorf("recompute dedup key: %w", err))
			return
		}
	}
	j := m.newRecoveredJob(p, req, key)
	m.mu.Lock()
	m.jobs[j.id] = j
	if key != "" {
		if _, taken := m.inflight[key]; !taken {
			m.inflight[key] = j
		}
	}
	m.mu.Unlock()
	m.queue <- j
}

// newRecoveredJob builds the Job shell for a journal entry, mirroring
// Submit's construction but keeping the journaled id.
func (m *Manager) newRecoveredJob(p pendingJob, req Request, key string) *Job {
	ctx, cancel := context.WithCancel(m.base)
	return &Job{
		id:        p.id,
		key:       key,
		mgr:       m,
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		hits:      1,
		subs:      map[int]chan saim.Progress{},
		submitted: time.Now(),
		warm:      p.warm,
		recovered: true,
		// A recovered job's options were lowered from its journaled wire
		// form, so it is wire-reconstructible — and stealable.
		wireOnly: true,
	}
}

// journalSubmitted appends the job's KindSubmitted record. Called under
// m.mu from Submit; an error rejects the submission, so an acknowledged
// job is always re-creatable from the log.
func (m *Manager) journalSubmitted(j *Job, limit time.Duration) error {
	raw, err := json.Marshal(j.req.Model)
	if err != nil {
		return err
	}
	data, err := json.Marshal(submittedRec{
		Solver:      j.req.Solver,
		Model:       raw,
		Options:     j.req.WireOptions,
		TimeLimitMS: limit.Milliseconds(),
		NoDedup:     j.req.NoDedup,
	})
	if err != nil {
		return err
	}
	return m.wal.Append(wal.Record{Kind: wal.KindSubmitted, Job: j.id, Data: data})
}

// journalStarted appends a KindStarted record (best-effort: a failed
// append degrades forensics, not correctness — the job is already
// re-creatable from its submitted record).
func (m *Manager) journalStarted(j *Job, attempt int) {
	if m.wal == nil {
		return
	}
	data, _ := json.Marshal(startedRec{Attempt: attempt})
	if err := m.wal.Append(wal.Record{Kind: wal.KindStarted, Job: j.id, Data: data}); err != nil {
		m.ctr.walErrors.Add(1)
	}
}

// journalFinish appends the job's terminal record (best-effort: on
// append failure the job re-runs after a crash, which is safe — results
// are reproducible and dedup keys survive).
func (m *Manager) journalFinish(j *Job, kind wal.Kind, err error) {
	if m.wal == nil {
		return
	}
	rec := finishedRec{State: StateDone.String()}
	if kind == wal.KindCancelled {
		rec.State = StateCancelled.String()
	}
	if err != nil {
		rec.State = StateFailed.String()
		rec.Err = err.Error()
	}
	data, _ := json.Marshal(rec)
	if werr := m.wal.Append(wal.Record{Kind: kind, Job: j.id, Data: data}); werr != nil {
		m.ctr.walErrors.Add(1)
	}
	m.mu.Lock()
	m.sinceCompact++
	m.mu.Unlock()
}

// checkpointFn builds the WithCheckpoint callback that journals
// best-so-far snapshots: the first improvement immediately (even a short
// solve leaves a warm start), later ones at most once per
// CheckpointInterval. The saim replica pool invokes it concurrently with
// per-replica bests, so it carries its own lock and best-cost guard; the
// guard also spans retries (the closure outlives attempts), so a retried
// job never journals a worse checkpoint than one it already logged.
func (m *Manager) checkpointFn(j *Job) func(assignment []int, cost float64) {
	var mu sync.Mutex
	best := math.Inf(1)
	var lastAt time.Time
	return func(assignment []int, cost float64) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if cost >= best || (!lastAt.IsZero() && now.Sub(lastAt) < m.cfg.CheckpointInterval) {
			return
		}
		best, lastAt = cost, now
		data, err := json.Marshal(checkpointRec{Assignment: assignment, Cost: cost})
		if err != nil {
			return
		}
		if err := m.wal.Append(wal.Record{Kind: wal.KindCheckpoint, Job: j.id, Data: data}); err != nil { //saim:lockok mu is this closure's private throttle; only concurrent checkpoint callbacks of the same job contend, and they are exactly what the append must serialize
			m.ctr.walErrors.Add(1)
		}
	}
}

// maybeCompact rewrites the journal once enough jobs finished since the
// last compaction, keeping records of live (queued or running) jobs
// only.
func (m *Manager) maybeCompact() {
	if m.wal == nil {
		return
	}
	// The WAL's own counters are read before taking m.mu: Stats holds the
	// journal's mutex, and the manager lock must not nest under anything
	// an fsync could be contending.
	walBytes := m.wal.Stats().Bytes
	m.mu.Lock()
	if m.sinceCompact < compactEvery || walBytes < compactMinBytes {
		m.mu.Unlock()
		return
	}
	m.sinceCompact = 0
	live := make(map[string]bool, len(m.jobs))
	for id, j := range m.jobs {
		j.lock()
		active := j.state == StateQueued || j.state == StateRunning
		j.unlock()
		if active {
			live[id] = true
		}
	}
	m.mu.Unlock()
	if err := m.wal.Compact(func(job string) bool { return live[job] }); err != nil {
		m.ctr.walErrors.Add(1)
	}
}
