// Benchmarks regenerating every table and figure of the paper's evaluation
// section at smoke scale (one bench per experiment — see DESIGN.md §3), plus
// the ablation micro-benchmarks for the design decisions of DESIGN.md §4.
//
// The benches use the Smoke preset so `go test -bench=.` finishes in
// minutes; `cmd/saimexp -preset reduced` (or `paper`) regenerates the
// full-scale artifacts.
package saim

import (
	"fmt"
	"testing"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/experiments"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/lagrange"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/qkp"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

func smoke() experiments.Config { return experiments.Config{Preset: experiments.Smoke} }

// BenchmarkTable1 regenerates Table I (experiment parameters).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.TableI(smoke()); tb == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTable2 regenerates Table II (SAIM vs penalty method, QKP).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table III (QKP N=200 class comparison).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table IV (QKP N=300 class comparison).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates Table V (MKP vs B&B and GA).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates the Fig. 3 SAIM trace (QKP cost + λ).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4 (accuracy quartiles + MCS budgets).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the Fig. 5 SAIM trace (MKP cost + λ_m).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation micro-benchmarks (DESIGN.md §4) ---

func benchModel(n int, seed uint64) *ising.Model {
	inst := qkp.Generate(n, 0.5, 1, seed)
	prob := inst.ToProblem(constraint.Binary)
	return prob.Objective.ToIsing()
}

// BenchmarkSweepIncremental measures one Gibbs sweep with incremental
// local-field maintenance (the production path).
func BenchmarkSweepIncremental(b *testing.B) {
	model := benchModel(100, 3)
	m := pbit.New(model, rng.New(1))
	m.Randomize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep(1.0)
	}
}

// BenchmarkSweepNaive measures the same sweep if every p-bit recomputed its
// local field from scratch — the design BenchmarkSweepIncremental avoids.
func BenchmarkSweepNaive(b *testing.B) {
	model := benchModel(100, 3)
	src := rng.New(1)
	s := ising.NewSpins(model.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < model.N(); j++ {
			input := model.LocalField(s, j) // O(N) recomputation per p-bit
			if input+src.Sym() >= 0 {
				s[j] = 1
			} else {
				s[j] = -1
			}
		}
	}
}

// BenchmarkReprogram measures the λ→bias reprogramming step of one SAIM
// iteration (BiasDelta + UpdateBiases), which must stay O(N·M) — not O(N²).
func BenchmarkReprogram(b *testing.B) {
	inst := qkp.Generate(100, 0.5, 1, 3)
	prob := inst.ToProblem(constraint.Binary)
	model := prob.Objective.ToIsing()
	m := pbit.New(model, rng.New(1))
	lam := lagrange.New(prob.Ext.M(), 20)
	lam.Values[0] = 7
	delta := vecmat.NewVec(prob.Ext.NTotal)
	h := vecmat.NewVec(prob.Ext.NTotal)
	base := model.H.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lagrange.BiasDelta(delta, prob.Ext, lam)
		for k := range h {
			h[k] = base[k] - delta[k]
		}
		m.UpdateBiases(h)
	}
}

// BenchmarkSAIMIteration measures one full SAIM iteration (anneal + λ
// update) at the paper's per-run MCS budget on a reduced instance.
func BenchmarkSAIMIteration(b *testing.B) {
	inst := qkp.Generate(100, 0.5, 1, 3)
	prob := inst.ToProblem(constraint.Binary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// One-iteration solve per loop: measures the steady-state cost of
		// an iteration without accumulating λ state across b.N.
		b.StartTimer()
		if _, err := core.Solve(prob, core.Options{
			Iterations: 1, SweepsPerRun: 1000, Eta: 20, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlackEncodings compares the three slack encodings' variable
// counts and solve cost on the same instance (DESIGN.md §4.3).
func BenchmarkSlackEncodings(b *testing.B) {
	inst := qkp.Generate(60, 0.5, 1, 9)
	for _, enc := range []constraint.SlackEncoding{constraint.Binary, constraint.Bounded, constraint.Unary} {
		b.Run(enc.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prob := inst.ToProblem(enc)
				if _, err := core.Solve(prob, core.Options{
					Iterations: 10, SweepsPerRun: 100, Eta: 20, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGibbsSweepSizes maps the O(N²) sweep scaling used to pick the
// reduced-preset instance sizes.
func BenchmarkGibbsSweepSizes(b *testing.B) {
	for _, n := range []int{50, 100, 200, 300} {
		model := benchModel(n, 7)
		m := pbit.New(model, rng.New(1))
		m.Randomize()
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Sweep(1.0)
			}
		})
	}
}

// BenchmarkAnnealRun measures one complete annealing run (the paper's
// 1000-MCS unit of work) at N=100.
func BenchmarkAnnealRun(b *testing.B) {
	model := benchModel(100, 5)
	m := pbit.New(model, rng.New(1))
	sched := schedule.Linear{Start: 0, End: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Anneal(sched, 1000)
	}
}

// BenchmarkSolveAllocs guards the zero-allocation solve engine: run with
// -benchmem and divide B/op by the 50 iterations — the steady-state cost
// per SAIM iteration must amortize to zero (the residual B/op is per-solve
// setup only; the hard assertion lives in core's
// TestSolveSteadyStateZeroAllocs via testing.AllocsPerRun).
func BenchmarkSolveAllocs(b *testing.B) {
	inst := qkp.Generate(100, 0.5, 1, 3)
	prob := inst.ToProblem(constraint.Binary)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(prob, core.Options{
			Iterations: 50, SweepsPerRun: 10, Eta: 20, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveParallelPool measures the pooled replica solve: workers
// compile the energy once and reuse one long-lived machine per worker
// across replicas (DESIGN.md §5.4).
func BenchmarkSolveParallelPool(b *testing.B) {
	inst := qkp.Generate(60, 0.5, 1, 9)
	prob := inst.ToProblem(constraint.Binary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveParallel(prob, core.Options{
			Iterations: 5, SweepsPerRun: 100, Eta: 20, Seed: uint64(i),
		}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation drivers (DESIGN.md §4) as benches ---

// BenchmarkAblationEta regenerates the η-sensitivity ablation.
func BenchmarkAblationEta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEta(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlpha regenerates the α-sensitivity ablation.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAlpha(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEncoding regenerates the slack-encoding ablation.
func BenchmarkAblationEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEncoding(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCapacity regenerates the MKP capacity-reduction ablation.
func BenchmarkAblationCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCapacity(smoke()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSparseVsDense compares the dense sweep against the CSR
// sweep at 25% coupling density (the sparse-IM design point of the paper's
// ref [10]); the gap here sets the auto-selection threshold of DESIGN.md §5.
func BenchmarkSweepSparseVsDense(b *testing.B) {
	inst := qkp.Generate(200, 0.25, 1, 3)
	model := inst.ToProblem(constraint.Binary).Objective.ToIsing()
	b.Run("dense", func(b *testing.B) {
		m := pbit.New(model, rng.New(1))
		m.Randomize()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Sweep(1.0)
		}
	})
	b.Run("sparse", func(b *testing.B) {
		m := pbit.NewSparse(model, rng.New(1))
		m.Randomize()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Sweep(1.0)
		}
	})
}
