package saim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/decompose"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/penalty"
)

// -------------------------------------------------------------- decomp ---

// decompSolver is the qbsolv-style decomposition meta-solver: it never
// anneals the whole coupling matrix but repeatedly extracts impact-ranked
// subproblems (WithSubproblemSize variables, tabu-rotated between rounds
// by WithTabuTenure), solves them concurrently through any registered
// inner backend (WithInnerSolver), and clamps each proposal back only when
// the exact global energy improves. See internal/decompose for the engine
// and DESIGN.md §6 for the math.
//
// Unconstrained models decompose their objective directly. Constrained
// models decompose the fixed-penalty energy E = f + P·‖g‖² over the
// extended (decision + slack) variables — the same energy the penalty
// backend anneals — with P from WithPenalty or the α·d·N heuristic;
// feasibility and cost of each merged assignment are always judged against
// the original model.
//
// Option semantics under decomp: WithIterations and WithSweepsPerRun set
// the budget of each inner subproblem solve (defaults 12 and 400 — far
// below the whole-problem defaults, since a run touches only a block);
// WithRounds caps the outer loop. Result.Iterations reports rounds, and
// Result.FeasibleRatio counts the merged states the coordinator examined
// — accepted clamps and round-end assignments (inner subproblem samples
// are never checked against the original constraints).
type decompSolver struct{}

func (*decompSolver) Name() string { return "decomp" }

func (*decompSolver) Accepts(f Form) bool {
	return f == FormUnconstrained || f == FormConstrained
}

// decompBest is the shared best-feasible tracker: the coordinator updates
// it on accepted clamps, concurrent round workers read it for progress.
type decompBest struct {
	mu   sync.Mutex
	cost float64
	x    []int
}

func (b *decompBest) get() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cost
}

func (b *decompBest) improve(cost float64, x ising.Bits, n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cost >= b.cost {
		return false
	}
	b.cost = cost
	if b.x == nil {
		b.x = make([]int, n)
	}
	for i := 0; i < n; i++ {
		b.x[i] = int(x[i])
	}
	return true
}

func (s *decompSolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	ctx, cancelDL, stamp := deadline(ctx, cfg)
	defer cancelDL()
	// The deadline context governs the outer rounds; inner solves inherit
	// it (they already stop at run granularity) but must not re-derive it,
	// so the inner option list below never carries the time limit.
	innerName := cfg.innerSolver
	if innerName == "" {
		innerName = "saim"
	}
	if innerName == s.Name() {
		return nil, fmt.Errorf("saim: decomp cannot use itself as the inner solver")
	}
	inner, err := Get(innerName)
	if err != nil {
		return nil, err
	}
	if !inner.Accepts(FormUnconstrained) {
		return nil, fmt.Errorf("saim: inner solver %q does not accept the unconstrained subproblems decomposition produces", innerName)
	}
	if cfg.subSize < 0 {
		return nil, fmt.Errorf("saim: subproblem size %d < 1", cfg.subSize)
	}
	tenure := 1
	if cfg.tabuTenure != nil {
		if *cfg.tabuTenure < 0 {
			return nil, fmt.Errorf("saim: negative tabu tenure %d", *cfg.tabuTenure)
		}
		tenure = *cfg.tabuTenure
	}

	// Build the sparse energy view the engine iterates on.
	constrained := m.form == FormConstrained
	var (
		view *decompose.View
		pen  float64
	)
	if constrained {
		pen = cfg.penalty
		if pen == 0 {
			// The paper's small P = 2·d·N keeps the penalized landscape
			// mobile enough for the inner anneals to move; stiffer weights
			// would make proposals safer but freeze the blocks solid (the
			// exact clamp tests already guarantee soundness either way).
			pen = heuristicPenalty(m, orDefaultF(cfg.alpha, 2))
		}
		if pen <= 0 {
			return nil, fmt.Errorf("saim: penalty weight must be positive, got %v", pen)
		}
		view = viewFromQUBO(penalty.Build(m.inner.Objective, m.inner.Ext, pen))
	} else {
		view = viewFromQUBO(m.rawObj)
	}
	nOrig := m.n
	trueCost := func(x ising.Bits) float64 {
		if constrained {
			return m.inner.Cost(x[:nOrig])
		}
		return m.rawObj.Energy(x)
	}
	origFeasible := func(x ising.Bits) bool {
		return !constrained || m.sys.Feasible(x[:nOrig], 1e-9)
	}

	// Warm start: the initial assignment seeds the engine state, and a
	// feasible one seeds the best-so-far so the result is never worse.
	best := &decompBest{cost: math.Inf(1)}
	init, err := initialBits(m, cfg)
	if err != nil {
		return nil, err
	}
	var engInit ising.Bits
	if init == nil && constrained {
		// Start constrained decompositions from the all-zero assignment
		// with greedily completed slacks: for ≤ systems that is feasible
		// outright, and in general it sits far closer to the feasible
		// manifold of the penalized energy than a random configuration.
		ext := m.inner.Ext
		engInit = make(ising.Bits, ext.NTotal)
		ext.CompleteSlacks(engInit)
		if origFeasible(engInit) {
			best.improve(trueCost(engInit), engInit, nOrig)
		}
	}
	if init != nil {
		if constrained {
			ext := m.inner.Ext
			engInit = make(ising.Bits, ext.NTotal)
			copy(engInit, init)
			ext.CompleteSlacks(engInit)
		} else {
			engInit = init
		}
		if origFeasible(engInit) {
			best.improve(trueCost(engInit), engInit, nOrig)
			if cfg.targetCost != nil && best.cost <= *cfg.targetCost {
				return s.result(m, best, pen, StopTarget, 0, 0, 0, 0), nil
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	iters := orDefault(cfg.iterations, 12)
	sweeps := orDefault(cfg.sweepsPerRun, 400)

	// Concurrent round workers share the replica pool's aggregated
	// progress path: each worker streams cumulative totals into its slot,
	// the coordinator streams round summaries into the last slot, and the
	// aggregator serializes the user callback with fleet-wide totals.
	var agg *core.ProgressAggregator
	var sweepsTotal atomic.Int64
	baseSamples := make([]int, workers)
	baseFeas := make([]int, workers)
	baseSweeps := make([]int64, workers)
	if cfg.progress != nil {
		agg = core.NewProgressAggregator(progressAdapter("decomp", cfg.progress), workers+1, cfg.rounds)
	}

	// The public decompose package carries a parallel copy of this
	// block-solving closure (unconstrained-only) that the import graph
	// keeps from being shared; change the two in step.
	solveBlock := func(ctx context.Context, worker int, sub *decompose.Sub, seed uint64) (ising.Bits, error) {
		b := NewBuilder(len(sub.Vars))
		for i, w := range sub.Lin {
			if w != 0 {
				b.Linear(i, w)
			}
		}
		for _, p := range sub.Pairs {
			b.Quadratic(p.I, p.J, p.W)
		}
		sm, err := b.Model()
		if err != nil {
			return nil, err
		}
		innerOpts := []Option{
			WithSeed(seed),
			WithIterations(iters),
			WithSweepsPerRun(sweeps),
			WithMachine(cfg.machine),
			WithInitial(fromBits(sub.Warm)),
		}
		if cfg.betaMax != 0 {
			innerOpts = append(innerOpts, WithBetaMax(cfg.betaMax))
		}
		if agg != nil {
			emit := agg.Callback(worker)
			innerOpts = append(innerOpts, WithProgress(func(p Progress) {
				samples := baseSamples[worker] + p.Iteration + 1
				feas := baseFeas[worker]
				if !constrained {
					feas = samples
				}
				emit(core.ProgressInfo{
					Iteration:     samples - 1,
					Total:         cfg.rounds,
					BestCost:      best.get(),
					FeasibleCount: feas,
					Samples:       samples,
					Sweeps:        baseSweeps[worker] + p.Sweeps,
				})
			}))
		}
		res, err := inner.Solve(ctx, sm, innerOpts...)
		if err != nil {
			return nil, err
		}
		sweepsTotal.Add(res.Sweeps)
		if agg != nil {
			baseSamples[worker] += res.Iterations
			baseSweeps[worker] += res.Sweeps
			if !constrained {
				baseFeas[worker] = baseSamples[worker]
			}
		}
		if res.Assignment == nil {
			return nil, nil
		}
		return toBits(res.Assignment, len(sub.Vars))
	}

	// The coordinator tracks feasibility of every merged state — each
	// accepted clamp plus each round-end assignment — and decides early
	// stops; its requested reason survives the engine's generic
	// StoppedByCallback.
	stopReason := StopCompleted
	statesExamined, statesFeasible := 0, 0
	lastFeasible := !constrained || (engInit != nil && origFeasible(engInit))
	prevBest := best.cost
	sinceImprove := 0
	examine := func(feasible bool) {
		statesExamined++
		if feasible {
			statesFeasible++
		}
	}
	onAccept := func(x ising.Bits, e float64) {
		lastFeasible = origFeasible(x)
		examine(lastFeasible)
		if lastFeasible {
			if constrained {
				best.improve(trueCost(x), x, nOrig)
			} else {
				best.improve(e, x, nOrig)
			}
		}
	}
	onRound := func(r decompose.Round) bool {
		examine(lastFeasible)
		if agg != nil {
			agg.Callback(workers)(core.ProgressInfo{
				Iteration: r.Index,
				Total:     cfg.rounds,
				BestCost:  best.get(),
				Samples:   statesExamined, FeasibleCount: statesFeasible,
			})
		}
		if cfg.targetCost != nil && best.cost <= *cfg.targetCost {
			stopReason = StopTarget
			return true
		}
		if cfg.patience > 0 {
			if best.cost < prevBest {
				sinceImprove = 0
			} else {
				sinceImprove++
			}
			prevBest = best.cost
			if sinceImprove >= cfg.patience {
				stopReason = StopPatience
				return true
			}
		}
		return false
	}

	out, err := decompose.Run(ctx, view, decompose.Options{
		SubSize:    cfg.subSize,
		Rounds:     cfg.rounds,
		TabuTenure: tenure,
		Workers:    workers,
		Seed:       cfg.seed,
		Initial:    engInit,
		SolveBlock: solveBlock,
		OnAccept:   onAccept,
		OnRound:    onRound,
	})
	if err != nil {
		return nil, err
	}

	// For unconstrained models the engine's final assignment is the best
	// energy visited; fold it in in case no clamp was ever accepted (e.g.
	// the random start was already locally optimal).
	if !constrained {
		best.improve(view.Energy(out.X), out.X, nOrig)
	}

	stopped := StopCompleted
	switch out.Stopped {
	case decompose.Cancelled:
		stopped = stamp(StopCancelled)
	case decompose.StoppedByCallback:
		stopped = stopReason
	}
	return s.result(m, best, pen, stopped, out.Rounds, statesFeasible, statesExamined, sweepsTotal.Load()), nil
}

// result assembles the public Result from the best tracker. For
// constrained models FeasibleRatio counts the merged states the
// coordinator examined — every accepted clamp plus every round-end
// assignment (inner subproblem samples are never checked against the
// original constraints).
func (s *decompSolver) result(m *Model, best *decompBest, pen float64, stopped StopReason, rounds, feas, examined int, sweeps int64) *Result {
	out := &Result{
		Solver:     "decomp",
		Cost:       math.Inf(1),
		Penalty:    pen,
		Sweeps:     sweeps,
		Iterations: rounds,
		Stopped:    stopped,
	}
	if best.x != nil {
		out.Assignment = append([]int(nil), best.x...)
		out.Cost = best.cost
	}
	switch {
	case m.form != FormConstrained:
		out.FeasibleRatio = 100
	case examined > 0:
		out.FeasibleRatio = 100 * float64(feas) / float64(examined)
	case best.x != nil:
		out.FeasibleRatio = 100
	}
	return out
}

// viewFromQUBO flattens a dense QUBO into the sparse view the
// decomposition engine consumes. Large instances should not pass through
// here at all — the public decompose package builds views straight from
// declarative models without ever materializing the dense matrix.
func viewFromQUBO(q *ising.QUBO) *decompose.View {
	n := q.N()
	vb := decompose.NewViewBuilder(n)
	vb.AddConst(q.Const)
	for i := 0; i < n; i++ {
		if c := q.C[i]; c != 0 {
			vb.AddLinear(i, c)
		}
		row := q.Q.Row(i)
		for j := i + 1; j < n; j++ {
			if w := row[j]; w != 0 {
				vb.AddPair(i, j, 2*w) // Q stores half the pair weight
			}
		}
	}
	return vb.Build()
}
