package saim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/ga"
	"github.com/ising-machines/saim/internal/greedy"
	"github.com/ising-machines/saim/internal/hoim"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/pt"
	"github.com/ising-machines/saim/internal/qkp"
)

// deadline applies WithTimeLimit by deriving a context with the configured
// wall-clock deadline. The backends already check their context at every
// cancellation point, so the deadline is enforced at exactly that cadence
// with no new hot-path cost. The returned stamp rewrites a StopCancelled
// caused by the expiring deadline — rather than by the caller — into
// StopTimeLimit, so results report the true stop reason.
func deadline(ctx context.Context, cfg config) (context.Context, context.CancelFunc, func(StopReason) StopReason) {
	if cfg.timeLimit <= 0 {
		return ctx, func() {}, func(s StopReason) StopReason { return s }
	}
	parent := ctx
	dctx, cancel := context.WithTimeout(ctx, cfg.timeLimit)
	stamp := func(s StopReason) StopReason {
		if s == StopCancelled && parent.Err() == nil && errors.Is(dctx.Err(), context.DeadlineExceeded) {
			return StopTimeLimit
		}
		return s
	}
	return dctx, cancel, stamp
}

// progressAdapter bridges an internal core.ProgressInfo stream to the
// public Progress callback.
func progressAdapter(name string, f func(Progress)) func(core.ProgressInfo) {
	if f == nil {
		return nil
	}
	return func(p core.ProgressInfo) {
		ratio := 0.0
		if p.Samples > 0 {
			ratio = 100 * float64(p.FeasibleCount) / float64(p.Samples)
		}
		f(Progress{
			Solver:        name,
			Iteration:     p.Iteration,
			Iterations:    p.Total,
			BestCost:      p.BestCost,
			FeasibleRatio: ratio,
			LambdaNorm:    p.LambdaNorm,
			Sweeps:        p.Sweeps,
		})
	}
}

// requireForm returns a uniform error when a solver is handed a model form
// it does not accept.
func requireForm(s Solver, m *Model) error {
	if m == nil {
		return fmt.Errorf("saim: %s: nil model", s.Name())
	}
	if !s.Accepts(m.form) {
		return fmt.Errorf("saim: solver %q does not accept %v models", s.Name(), m.form)
	}
	return nil
}

// heuristicPenalty returns the paper's P = α·d·N penalty weight for the
// model, delegating to the same helper the saim backend's core loop uses
// so every backend prices constraints identically.
func heuristicPenalty(m *Model, alpha float64) float64 {
	return core.HeuristicPenalty(m.inner, alpha)
}

// initialBits validates a WithInitial assignment against the model (length
// and 0/1 entries), returning nil when no warm start was requested.
// checkpointAdapter bridges an internal best-so-far stream to the public
// WithCheckpoint callback. The internal engines pass live bit buffers;
// fromBits copies into a fresh []int, making the public slice safe to
// retain. scale rescales costs out of a normalized energy frame (1 for
// backends that anneal raw energies).
func checkpointAdapter(f func(assignment []int, cost float64), scale float64) func(ising.Bits, float64) {
	if f == nil {
		return nil
	}
	return func(best ising.Bits, cost float64) {
		f(fromBits(best), cost*scale)
	}
}

func initialBits(m *Model, cfg config) (ising.Bits, error) {
	if cfg.initial == nil {
		return nil, nil
	}
	return toBits(cfg.initial, m.n)
}

// ---------------------------------------------------------------- saim ---

// saimSolver is the paper's self-adaptive Ising machine (Algorithm 1). It
// accepts every model form: the quadratic machine for constrained models,
// plain multi-run annealing for unconstrained QUBOs, and the higher-order
// machine for polynomial models.
type saimSolver struct{}

func (*saimSolver) Name() string        { return "saim" }
func (*saimSolver) Accepts(f Form) bool { return true }

func (s *saimSolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	ctx, cancel, stamp := deadline(ctx, cfg)
	defer cancel()
	var (
		res *Result
		err error
	)
	switch m.form {
	case FormConstrained:
		res, err = s.solveConstrained(ctx, m, cfg)
	case FormUnconstrained:
		if cfg.replicas > 1 {
			return nil, fmt.Errorf("saim: WithReplicas is only supported for constrained models (model form %v)", m.form)
		}
		res, err = s.solveUnconstrained(ctx, m, cfg)
	default:
		if cfg.replicas > 1 {
			return nil, fmt.Errorf("saim: WithReplicas is only supported for constrained models (model form %v)", m.form)
		}
		res, err = s.solveHighOrder(ctx, m, cfg)
	}
	if err != nil {
		return nil, err
	}
	res.Stopped = stamp(res.Stopped)
	return res, nil
}

func (s *saimSolver) solveConstrained(ctx context.Context, m *Model, cfg config) (*Result, error) {
	init, err := initialBits(m, cfg)
	if err != nil {
		return nil, err
	}
	o := core.Options{
		Alpha:        cfg.alpha,
		P:            cfg.penalty,
		Eta:          cfg.eta,
		Iterations:   cfg.iterations,
		SweepsPerRun: cfg.sweepsPerRun,
		BetaMax:      cfg.betaMax,
		Seed:         cfg.seed,
		Machine:      cfg.machine,
		Packed:       cfg.packed,
		Progress:     progressAdapter("saim", cfg.progress),
		TargetCost:   cfg.targetCost,
		Patience:     cfg.patience,
		Initial:      init,
		Checkpoint:   checkpointAdapter(cfg.checkpoint, 1),
	}
	var res *core.Result
	if cfg.replicas > 1 {
		res, err = core.SolveParallelContext(ctx, m.inner, o, cfg.replicas)
	} else {
		res, err = core.SolveContext(ctx, m.inner, o)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Solver:        "saim",
		Assignment:    fromBits(res.Best),
		Cost:          res.BestCost,
		FeasibleRatio: res.FeasibleRatio(),
		Penalty:       res.P,
		Sweeps:        res.TotalSweeps,
		Iterations:    res.Iterations,
		Lambda:        append([]float64(nil), res.Lambda...),
		Stopped:       res.Stopped,
	}, nil
}

func (s *saimSolver) solveUnconstrained(ctx context.Context, m *Model, cfg config) (*Result, error) {
	init, err := initialBits(m, cfg)
	if err != nil {
		return nil, err
	}
	normalized := m.rawObj.Clone()
	inv := normalized.Normalize() // argmin-preserving rescale so βmax=10 suits any data
	// The annealer observes normalized energies; rescale the target into
	// that frame and progress costs back out of it.
	var target *float64
	if cfg.targetCost != nil {
		t := *cfg.targetCost * inv
		target = &t
	}
	prog := progressAdapter("saim", cfg.progress)
	costScale := 1.0
	if inv > 0 {
		costScale = 1 / inv
	}
	if prog != nil && inv > 0 {
		inner, scale := prog, costScale
		prog = func(p core.ProgressInfo) {
			if !math.IsInf(p.BestCost, 0) {
				p.BestCost *= scale
			}
			inner(p)
		}
	}
	res := anneal.MinimizeQUBOContext(ctx, normalized, anneal.Options{
		Runs:         orDefault(cfg.iterations, 100),
		SweepsPerRun: orDefault(cfg.sweepsPerRun, 1000),
		BetaMax:      orDefaultF(cfg.betaMax, 10),
		Seed:         cfg.seed,
		Machine:      cfg.machine,
		Progress:     prog,
		TargetCost:   target,
		Patience:     cfg.patience,
		Initial:      init,
		Checkpoint:   checkpointAdapter(cfg.checkpoint, costScale),
	})
	out := &Result{
		Solver:        "saim",
		Cost:          math.Inf(1),
		FeasibleRatio: 100,
		Sweeps:        res.TotalSweeps,
		Iterations:    res.Runs,
		Stopped:       res.Stopped,
	}
	if res.Best != nil {
		out.Assignment = fromBits(res.Best)
		out.Cost = m.rawObj.Energy(res.Best)
	}
	return out, nil
}

func (s *saimSolver) solveHighOrder(ctx context.Context, m *Model, cfg config) (*Result, error) {
	res, err := hoim.SolveConstrainedContext(ctx, m.hobj, m.hcons, 1e-9, hoim.Options{
		P:            cfg.penalty,
		Eta:          cfg.eta,
		Iterations:   cfg.iterations,
		SweepsPerRun: cfg.sweepsPerRun,
		BetaMax:      cfg.betaMax,
		Seed:         cfg.seed,
		Progress:     progressAdapter("saim", cfg.progress),
		TargetCost:   cfg.targetCost,
		Patience:     cfg.patience,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Solver:     "saim",
		Cost:       res.BestCost,
		Sweeps:     res.TotalSweeps,
		Iterations: res.Iterations,
		Lambda:     append([]float64(nil), res.Lambda...),
		Stopped:    res.Stopped,
	}
	if res.Iterations > 0 {
		out.FeasibleRatio = 100 * float64(res.FeasibleCount) / float64(res.Iterations)
	}
	if res.Best != nil {
		out.Assignment = fromBits(res.Best)
	}
	return out, nil
}

// ------------------------------------------------------------- penalty ---

// penaltySolver is the classical fixed-P penalty method: multi-run
// annealing on E = f + P‖g‖² with no multiplier adaptation — the baseline
// SAIM is compared against throughout the paper.
type penaltySolver struct{}

func (*penaltySolver) Name() string        { return "penalty" }
func (*penaltySolver) Accepts(f Form) bool { return f == FormConstrained }

func (s *penaltySolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	pw := cfg.penalty
	if pw == 0 {
		pw = heuristicPenalty(m, orDefaultF(cfg.alpha, 2))
	}
	if pw <= 0 {
		return nil, fmt.Errorf("saim: penalty weight must be positive, got %v", pw)
	}
	init, err := initialBits(m, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel, stamp := deadline(ctx, cfg)
	defer cancel()
	res, err := anneal.SolvePenaltyContext(ctx, m.inner, pw, anneal.Options{
		Runs:         orDefault(cfg.iterations, 2000),
		SweepsPerRun: orDefault(cfg.sweepsPerRun, 1000),
		BetaMax:      orDefaultF(cfg.betaMax, 10),
		Seed:         cfg.seed,
		Machine:      cfg.machine,
		Progress:     progressAdapter("penalty", cfg.progress),
		TargetCost:   cfg.targetCost,
		Patience:     cfg.patience,
		Initial:      init,
		Checkpoint:   checkpointAdapter(cfg.checkpoint, 1),
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Solver:        "penalty",
		Assignment:    fromBits(res.Best),
		Cost:          res.BestCost,
		FeasibleRatio: res.FeasibleRatio(),
		Penalty:       res.P,
		Sweeps:        res.TotalSweeps,
		Iterations:    res.Runs,
		Stopped:       stamp(res.Stopped),
	}, nil
}

// ------------------------------------------------------------------ pt ---

// ptSolver is parallel tempering (replica exchange) on the penalty energy,
// the PT-DA baseline of the paper's Tables III/IV. Without λ adaptation it
// needs a penalty weight well above the critical value, so its default is
// the aggressive P = 100·d·N unless WithPenalty overrides it.
type ptSolver struct{}

func (*ptSolver) Name() string        { return "pt" }
func (*ptSolver) Accepts(f Form) bool { return f == FormConstrained }

func (s *ptSolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	pw := cfg.penalty
	if pw == 0 {
		pw = heuristicPenalty(m, orDefaultF(cfg.alpha, 100))
	}
	if pw <= 0 {
		return nil, fmt.Errorf("saim: penalty weight must be positive, got %v", pw)
	}
	replicas := orDefault(cfg.replicas, 26)
	// Match the total sample budget of an equivalent SAIM solve: spread
	// iterations × sweeps across the replica ladder.
	sweeps := orDefault(cfg.iterations, 2000) * orDefault(cfg.sweepsPerRun, 1000) / replicas
	if sweeps < 1 {
		sweeps = 1
	}
	init, err := initialBits(m, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel, stamp := deadline(ctx, cfg)
	defer cancel()
	res, err := pt.SolvePenaltyContext(ctx, m.inner, pw, pt.Options{
		Replicas:    replicas,
		Sweeps:      sweeps,
		BetaMax:     orDefaultF(cfg.betaMax, 10),
		SampleEvery: 10,
		Seed:        cfg.seed,
		Machine:     cfg.machine,
		Progress:    progressAdapter("pt", cfg.progress),
		TargetCost:  cfg.targetCost,
		Initial:     init,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Solver:        "pt",
		Assignment:    fromBits(res.Best),
		Cost:          res.BestCost,
		FeasibleRatio: res.FeasibleRatio(),
		Penalty:       res.P,
		Sweeps:        res.TotalSweeps,
		Iterations:    res.SampleCount,
		Stopped:       stamp(res.Stopped),
	}, nil
}

// -------------------------------------------------- knapsack extraction ---

// nearInt reports the nearest integer of v and whether v is close enough
// to it to be treated as exact integer data.
func nearInt(v float64) (int, bool) {
	r := math.Round(v)
	if math.Abs(v-r) > 1e-6*math.Max(1, math.Abs(v)) {
		return 0, false
	}
	return int(r), true
}

// asQKP extracts a quadratic knapsack instance from a constrained model:
// one ≤ constraint, integer non-negative values/weights, and a
// value-adding (non-positive) quadratic objective. The combinatorial
// backends (ga, greedy, exact) operate on this integer form.
func (m *Model) asQKP() (*qkp.Instance, error) {
	if m.form != FormConstrained {
		return nil, fmt.Errorf("saim: %v model is not a quadratic knapsack", m.form)
	}
	if m.sys.M() != 1 {
		return nil, fmt.Errorf("saim: quadratic knapsack needs exactly one constraint, model has %d", m.sys.M())
	}
	c := m.sys.Cons[0]
	if c.Sense != constraint.LE {
		return nil, fmt.Errorf("saim: quadratic knapsack needs a ≤ constraint")
	}
	n := m.n
	inst := &qkp.Instance{
		Name: "model",
		N:    n,
		H:    make([]int, n),
		A:    make([]int, n),
		W:    make([][]int, n),
	}
	for i := range inst.W {
		inst.W[i] = make([]int, n)
	}
	b, ok := nearInt(c.B)
	if !ok || b < 0 {
		return nil, fmt.Errorf("saim: knapsack capacity %v is not a non-negative integer", c.B)
	}
	inst.B = b
	pairs := 0
	for i := 0; i < n; i++ {
		w, ok := nearInt(c.A[i])
		if !ok || w <= 0 {
			return nil, fmt.Errorf("saim: knapsack weight %v at %d is not a positive integer", c.A[i], i)
		}
		inst.A[i] = w
		h, ok := nearInt(-m.rawObj.C[i])
		if !ok || h < 0 {
			return nil, fmt.Errorf("saim: item value %v at %d is not a non-negative integer (combinatorial backends need knapsack form)", -m.rawObj.C[i], i)
		}
		inst.H[i] = h
		for j := i + 1; j < n; j++ {
			q := -2 * m.rawObj.Q.At(i, j)
			if q == 0 {
				continue
			}
			v, ok := nearInt(q)
			if !ok || v < 0 {
				return nil, fmt.Errorf("saim: pair value %v at (%d,%d) is not a non-negative integer", q, i, j)
			}
			inst.W[i][j] = v
			inst.W[j][i] = v
			pairs++
		}
	}
	if n > 1 {
		inst.Density = float64(pairs) / float64(n*(n-1)/2)
	}
	return inst, inst.Validate()
}

// asMKP extracts a multidimensional knapsack instance from a constrained
// model: a linear objective and ≥1 integer ≤ constraints.
func (m *Model) asMKP() (*mkp.Instance, error) {
	if m.form != FormConstrained {
		return nil, fmt.Errorf("saim: %v model is not a knapsack", m.form)
	}
	n := m.n
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.rawObj.Q.At(i, j) != 0 {
				return nil, fmt.Errorf("saim: objective has a quadratic term at (%d,%d); only single-constraint quadratic knapsacks are supported by the combinatorial backends", i, j)
			}
		}
	}
	inst := &mkp.Instance{
		Name: "model",
		N:    n,
		M:    m.sys.M(),
		H:    make([]int, n),
		A:    make([][]int, m.sys.M()),
		B:    make([]int, m.sys.M()),
	}
	for i := 0; i < n; i++ {
		h, ok := nearInt(-m.rawObj.C[i])
		if !ok || h < 0 {
			return nil, fmt.Errorf("saim: item value %v at %d is not a non-negative integer (combinatorial backends need knapsack form)", -m.rawObj.C[i], i)
		}
		inst.H[i] = h
	}
	for k, c := range m.sys.Cons {
		if c.Sense != constraint.LE {
			return nil, fmt.Errorf("saim: constraint %d is a %v constraint; combinatorial backends need ≤ knapsack constraints", k, c.Sense)
		}
		b, ok := nearInt(c.B)
		if !ok || b < 0 {
			return nil, fmt.Errorf("saim: capacity %v of constraint %d is not a non-negative integer", c.B, k)
		}
		inst.B[k] = b
		inst.A[k] = make([]int, n)
		for j := 0; j < n; j++ {
			w, ok := nearInt(c.A[j])
			if !ok || w < 0 {
				return nil, fmt.Errorf("saim: weight %v at (%d,%d) is not a non-negative integer", c.A[j], k, j)
			}
			inst.A[k][j] = w
		}
	}
	return inst, inst.Validate()
}

// knapResult scores an integer-backend assignment through the model so the
// reported cost is exact in the caller's units.
func knapResult(m *Model, solver string, x ising.Bits, stopped StopReason, optimal bool) *Result {
	out := &Result{
		Solver:        solver,
		Cost:          math.Inf(1),
		FeasibleRatio: 100,
		Stopped:       stopped,
		Optimal:       optimal,
	}
	if x != nil {
		cost, feasible, err := m.Evaluate(fromBits(x))
		if err == nil && feasible {
			out.Assignment = fromBits(x)
			out.Cost = cost
		}
	}
	return out
}

// -------------------------------------------------------------- greedy ---

// greedySolver runs the constructive density heuristics: marginal-density
// insertion for single-constraint quadratic knapsacks, Chu–Beasley
// pseudo-utility packing for multidimensional ones. Deterministic and
// effectively instant; useful as a warm start and sanity baseline.
type greedySolver struct{}

func (*greedySolver) Name() string        { return "greedy" }
func (*greedySolver) Accepts(f Form) bool { return f == FormConstrained }

func (s *greedySolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	ctx, cancel, stamp := deadline(ctx, cfg)
	defer cancel()
	var (
		x         ising.Bits
		truncated bool
	)
	if qi, err := m.asQKP(); err == nil {
		x, truncated = greedy.QKPContext(ctx, qi)
	} else {
		mi, merr := m.asMKP()
		if merr != nil {
			return nil, merr
		}
		x, truncated = greedy.MKPContext(ctx, mi)
	}
	stopped := StopCompleted
	if truncated {
		stopped = stamp(StopCancelled)
	}
	return knapResult(m, "greedy", x, stopped, false), nil
}

// ------------------------------------------------------------------ ga ---

// gaSolver is the Chu–Beasley steady-state genetic algorithm (Table V
// baseline), generalized to any knapsack-structured model: the repair
// operator works off the linear capacity system while fitness is the exact
// (possibly quadratic) model objective.
type gaSolver struct{}

func (*gaSolver) Name() string        { return "ga" }
func (*gaSolver) Accepts(f Form) bool { return f == FormConstrained }

func (s *gaSolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	var knap *ga.Knapsack
	if qi, err := m.asQKP(); err == nil {
		knap = qkpKnapsack(qi)
	} else {
		mi, merr := m.asMKP()
		if merr != nil {
			return nil, merr
		}
		knap = ga.FromMKP(mi)
	}
	// The GA's internal cost frame is −value; a constant objective term
	// lives outside that frame, so shift the target and progress costs.
	target := cfg.targetCost
	prog := progressAdapter("ga", cfg.progress)
	if offset := m.rawObj.Const; offset != 0 {
		if target != nil {
			t := *target - offset
			target = &t
		}
		if prog != nil {
			inner := prog
			prog = func(p core.ProgressInfo) {
				if !math.IsInf(p.BestCost, 0) {
					p.BestCost += offset
				}
				inner(p)
			}
		}
	}
	init, err := initialBits(m, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel, stamp := deadline(ctx, cfg)
	defer cancel()
	// Map the shared iteration knob onto offspring count (one iteration ≈
	// 20 offspring, so budgets roughly match the annealing backends);
	// zero falls back to the GA's own default (10000 children). Patience
	// scales the same way.
	res, err := ga.SolveKnapsackContext(ctx, knap, ga.Options{
		Population: cfg.population,
		Children:   cfg.iterations * 20,
		Seed:       cfg.seed,
		Progress:   prog,
		TargetCost: target,
		Patience:   cfg.patience * 20,
		Initial:    init,
	})
	if err != nil {
		return nil, err
	}
	out := knapResult(m, "ga", res.Best, stamp(res.Stopped), false)
	out.Iterations = res.Children
	return out, nil
}

// qkpKnapsack adapts a QKP instance for the generic GA: repair is driven by
// optimistic value density (own value plus half of all pair values, per
// unit weight) while fitness is the exact quadratic value.
func qkpKnapsack(inst *qkp.Instance) *ga.Knapsack {
	util := make([]float64, inst.N)
	for j := 0; j < inst.N; j++ {
		opt := float64(inst.H[j])
		for i := 0; i < inst.N; i++ {
			opt += float64(inst.W[j][i]) / 2
		}
		util[j] = opt / float64(inst.A[j])
	}
	return &ga.Knapsack{
		N: inst.N, M: 1,
		A:     [][]int{inst.A},
		B:     []int{inst.B},
		Util:  util,
		Value: inst.Value,
	}
}

// --------------------------------------------------------------- exact ---

// exactSolver is certified branch and bound: LP-relaxation bounds for MKP
// models, an optimistic linearized Dantzig bound for single-constraint
// quadratic knapsacks. Result.Optimal reports whether optimality was proven
// within the node/time/context budget.
type exactSolver struct{}

func (*exactSolver) Name() string        { return "exact" }
func (*exactSolver) Accepts(f Form) bool { return f == FormConstrained }

func (s *exactSolver) Solve(ctx context.Context, m *Model, opts ...Option) (*Result, error) {
	if err := requireForm(s, m); err != nil {
		return nil, err
	}
	cfg := buildConfig(opts)
	// The exact search keeps its native per-node deadline (finer-grained
	// than the context checks) and additionally runs under the derived
	// deadline context, so both paths agree on when time is up.
	parent := ctx
	ctx, cancel, _ := deadline(ctx, cfg)
	defer cancel()
	opt := exact.Options{NodeLimit: cfg.nodeLimit, TimeLimit: cfg.timeLimit}
	begin := time.Now()
	var (
		x       ising.Bits
		optimal bool
	)
	if qi, err := m.asQKP(); err == nil {
		res, err := exact.SolveQKPContext(ctx, qi, opt)
		if err != nil {
			return nil, err
		}
		x, optimal = res.X, res.Optimal
	} else {
		mi, merr := m.asMKP()
		if merr != nil {
			return nil, merr
		}
		res, err := exact.SolveMKPContext(ctx, mi, opt)
		if err != nil {
			return nil, err
		}
		x, optimal = res.X, res.Optimal
	}
	// An optimality proof outranks a deadline that expired just after the
	// search finished; otherwise the parent's cancellation wins over the
	// derived deadline, and a truncation with neither (node limit) still
	// reports completion. The elapsed-time check backs up ctx.Err():
	// the search's own wall-clock cutoff can truncate an instant before
	// the context timer fires.
	stopped := StopCompleted
	switch {
	case optimal:
	case parent.Err() != nil:
		stopped = StopCancelled
	case cfg.timeLimit > 0 && (ctx.Err() != nil || time.Since(begin) >= cfg.timeLimit):
		stopped = StopTimeLimit
	case ctx.Err() != nil:
		stopped = StopCancelled
	}
	return knapResult(m, "exact", x, stopped, optimal), nil
}
