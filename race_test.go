package saim

import (
	"context"
	"testing"
	"time"
)

// TestRaceWinsWithTarget pins the race meta-solver's core scenario: with a
// reachable target, the first backend to hit it ends the whole race well
// before the slow racers' budgets are spent, and the merged result names
// the winner.
func TestRaceWinsWithTarget(t *testing.T) {
	m := smallQKP(t)
	ref, err := SolveModel(context.Background(), "exact", m)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res, err := SolveModel(context.Background(), "race", m,
		// Budgets far beyond what any test should spend: the race must
		// end on the target, not on completion.
		WithIterations(2_000_000),
		WithSweepsPerRun(200),
		WithSeed(7),
		WithTargetCost(ref.Cost),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("race found no feasible assignment")
	}
	if res.Cost > ref.Cost+1e-9 {
		t.Fatalf("race cost %v misses target %v", res.Cost, ref.Cost)
	}
	if res.Solver != "race" || res.Winner == "" {
		t.Fatalf("Solver = %q, Winner = %q", res.Solver, res.Winner)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("race took %v; target should have cancelled the field", elapsed)
	}
	cost, feasible, err := m.Evaluate(res.Assignment)
	if err != nil || !feasible || cost != res.Cost {
		t.Fatalf("winner's assignment re-evaluates to (%v, %v, %v), reported %v", cost, feasible, err, res.Cost)
	}
}

// TestRaceExplicitField pins WithRacers: only the named backends run, and
// naming an incompatible one is an error rather than a silent skip.
func TestRaceExplicitField(t *testing.T) {
	m := smallQKP(t)
	res, err := SolveModel(context.Background(), "race", m,
		WithRacers("greedy", "exact"),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "greedy" && res.Winner != "exact" {
		t.Fatalf("winner %q not in the declared field", res.Winner)
	}

	// An unconstrained model through a constrained-only racer must error.
	um, err := NewBuilder(3).Linear(0, -1).Quadratic(0, 1, 2).Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveModel(context.Background(), "race", um, WithRacers("penalty")); err == nil {
		t.Fatal("race accepted an incompatible explicit racer")
	}
	// Racing itself is rejected.
	if _, err := SolveModel(context.Background(), "race", m, WithRacers("race")); err == nil {
		t.Fatal("race raced itself")
	}
}

// TestRaceUnconstrainedAutoField pins the auto-selected field on an
// unconstrained model: the constrained-only backends are skipped silently
// and the race still returns a valid result.
func TestRaceUnconstrainedAutoField(t *testing.T) {
	um, err := NewBuilder(4).
		Linear(0, -2).Linear(1, 1).Linear(2, -1).
		Quadratic(0, 2, -1).Quadratic(1, 3, 2).
		Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveModel(context.Background(), "race", um,
		WithIterations(50), WithSweepsPerRun(100), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("race found no assignment on an unconstrained model")
	}
	cost, _, err := um.Evaluate(res.Assignment)
	if err != nil || cost != res.Cost {
		t.Fatalf("cost %v reported, %v evaluated (err=%v)", res.Cost, cost, err)
	}
}
