package saim

import "testing"

// Same scenario as the hoim package test, through the public API: minimize
// −x₂−x₃ s.t. x₀·x₁ = 1 (quadratic constraint!) and Σx = 3 ⇒ OPT −1.
func TestSolveHighOrderQuadraticConstraint(t *testing.T) {
	objective := []Monomial{{W: -1, Vars: []int{2}}, {W: -1, Vars: []int{3}}}
	constraints := [][]Monomial{
		{{W: 1, Vars: []int{0, 1}}, {W: -1}},
		{{W: 1, Vars: []int{0}}, {W: 1, Vars: []int{1}}, {W: 1, Vars: []int{2}}, {W: 1, Vars: []int{3}}, {W: -3}},
	}
	res, err := SolveHighOrder(4, objective, constraints, Options{
		Penalty: 2, Eta: 0.5, Iterations: 150, SweepsPerRun: 150, BetaMax: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible() {
		t.Fatal("no feasible assignment")
	}
	if res.Cost != -1 {
		t.Fatalf("Cost = %v, want -1", res.Cost)
	}
	if res.Assignment[0] != 1 || res.Assignment[1] != 1 {
		t.Fatalf("Assignment = %v", res.Assignment)
	}
	if len(res.Lambda) != 2 {
		t.Fatalf("Lambda = %v", res.Lambda)
	}
}

func TestSolveHighOrderValidation(t *testing.T) {
	if _, err := SolveHighOrder(0, nil, nil, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := SolveHighOrder(2, nil, nil, Options{}); err == nil {
		t.Fatal("accepted zero constraints")
	}
	bad := [][]Monomial{{{W: 1, Vars: []int{7}}}}
	if _, err := SolveHighOrder(2, nil, bad, Options{}); err == nil {
		t.Fatal("accepted out-of-range variable")
	}
	badObj := []Monomial{{W: 1, Vars: []int{-1}}}
	okCon := [][]Monomial{{{W: 1, Vars: []int{0}}}}
	if _, err := SolveHighOrder(2, badObj, okCon, Options{}); err == nil {
		t.Fatal("accepted negative variable index")
	}
}
