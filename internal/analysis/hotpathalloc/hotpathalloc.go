// Package hotpathalloc checks that functions annotated //saim:hotpath
// contain no allocating constructs.
//
// The PR 2 kernel work made steady-state solves allocation-free, but the
// runtime pin (TestSolveSteadyStateZeroAllocs) measures one path through
// one backend. This analyzer turns the property into a whole-kernel
// guarantee: annotate a function `//saim:hotpath` and any construct the
// compiler may lower to a heap allocation is a vet failure, on every
// kernel, before any test runs.
//
// Flagged constructs: make/new, append, slice/map composite literals and
// &T{...}, closures (func literals), go statements, fmt.* calls,
// string<->[]byte/[]rune conversions, calls that box a non-constant
// scalar into an interface parameter, and variadic calls that build
// their argument slice at the call site (an `xs...` pass-through is
// free and allowed).
//
// Two escapes keep the check honest rather than annoying: a block whose
// final statement panics is exempt (invariant-violation reporting runs
// once and never on the steady-state path), and a statement may carry a
// trailing `//saim:allowalloc <reason>` line directive for constructs
// the author has measured to stay on the stack.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/ising-machines/saim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions annotated //saim:hotpath must not contain allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		allowed := analysis.DirectiveLines(pass.Fset, f, "allowalloc")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			c := &checker{pass: pass, allowed: allowed, fname: fd.Name.Name}
			c.block(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	allowed map[int]bool // lines carrying //saim:allowalloc
	fname   string
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.allowed[c.pass.Fset.Position(pos).Line] {
		return
	}
	c.pass.Reportf(pos, "//saim:hotpath function %s "+format, append([]any{c.fname}, args...)...)
}

// block walks a statement block, skipping blocks that end in a panic:
// those are invariant-violation paths, never the steady-state one.
func (c *checker) block(b *ast.BlockStmt) {
	if endsInPanic(b) {
		return
	}
	for _, stmt := range b.List {
		c.node(stmt)
	}
}

func endsInPanic(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	expr, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// node dispatches the recursive walk, diverting nested blocks through
// block (for the panic-path exemption) and checking every expression.
func (c *checker) node(n ast.Node) {
	if n == nil {
		return
	}
	if b, ok := n.(*ast.BlockStmt); ok {
		c.block(b)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.BlockStmt:
			c.block(e)
			return false
		case *ast.FuncLit:
			c.reportf(e.Pos(), "creates a closure, which allocates")
			return false
		case *ast.GoStmt:
			c.reportf(e.Pos(), "starts a goroutine, which allocates")
			return false
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					c.reportf(e.Pos(), "takes the address of a composite literal, which allocates")
					return false
				}
			}
		case *ast.CompositeLit:
			switch c.pass.TypesInfo.Types[e].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				c.reportf(e.Pos(), "builds a slice/map literal, which allocates")
				return false
			}
		case *ast.CallExpr:
			c.call(e)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo

	// Conversions: string <-> []byte/[]rune copy their data.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convAllocates(tv.Type, info.Types[call.Args[0]].Type) {
			c.reportf(call.Pos(), "converts between string and byte/rune slice, which copies")
		}
		return
	}

	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				c.reportf(call.Pos(), "calls %s, which allocates", id.Name)
			case "append":
				c.reportf(call.Pos(), "calls append, which may grow and allocate")
			case "panic":
				if len(call.Args) == 1 && !isAllocFree(info, call.Args[0]) {
					c.reportf(call.Pos(), "panics with a non-constant value, which boxes it into an interface")
				}
			}
			return
		}
	}

	// fmt.* formats through reflection and allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.reportf(call.Pos(), "calls fmt.%s, which allocates", sel.Sel.Name)
				return
			}
		}
	}

	// Interface boxing and variadic slice construction at the call site.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				param = params.At(params.Len() - 1).Type() // xs... pass-through
			} else {
				if i == params.Len()-1 {
					c.reportf(call.Pos(), "expands a variadic call, which builds the argument slice")
				}
				param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(param) && !types.IsInterface(info.Types[arg].Type) && !isAllocFree(info, arg) {
			c.reportf(arg.Pos(), "boxes a non-constant value into an interface parameter, which may allocate")
		}
	}
}

func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.ParenExpr:
		return calleeIdent(f.X)
	}
	return nil
}

// isAllocFree reports whether boxing e cannot allocate: constants and nil
// box to static interface data.
func isAllocFree(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && (tv.Value != nil || tv.IsNil())
}

// convAllocates reports whether a conversion from `from` to `to` copies
// its data (string <-> []byte/[]rune in either direction).
func convAllocates(to, from types.Type) bool {
	if from == nil {
		return false
	}
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}
