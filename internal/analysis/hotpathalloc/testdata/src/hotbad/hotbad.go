// Package hotbad is a deliberately broken fixture: a //saim:hotpath
// kernel exercising each allocating construct the analyzer flags.
package hotbad

import "fmt"

type sink interface{ accept(any) }

//saim:hotpath
func kernel(dst []float64, s sink, parts []string) float64 {
	buf := make([]float64, len(dst)) // want `calls make, which allocates`
	for i := range dst {
		buf[i] = dst[i] * 2
	}
	dst = append(dst, 1.0)              // want `calls append, which may grow and allocate`
	scratch := []int{1, 2, 3}           // want `builds a slice/map literal, which allocates`
	p := &point{x: 1}                   // want `takes the address of a composite literal`
	msg := fmt.Sprintf("%d", len(p.b))  // want `calls fmt.Sprintf, which allocates`
	f := func() int { return len(msg) } // want `creates a closure, which allocates`
	go spin(dst)                        // want `starts a goroutine, which allocates`
	s.accept(dst[0])                    // want `boxes a non-constant value into an interface parameter`
	b := []byte(msg)                    // want `converts between string and byte/rune slice`
	variadic(1.0, dst[0])               // want `expands a variadic call` `boxes a non-constant value into an interface parameter`
	return float64(len(b)+len(scratch)+f()) + buf[0]
}

type point struct {
	x float64
	b []byte
}

func spin([]float64) {}

func variadic(base float64, rest ...any) {}

// coldHelper allocates freely: without the annotation nothing is
// flagged.
func coldHelper(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1)
}
