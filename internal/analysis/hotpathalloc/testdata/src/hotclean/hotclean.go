// Package hotclean is the non-flagging fixture: a hot kernel written
// the way the repo's sweep kernels are — caller-owned buffers, constant
// panics on invariant-violation paths, and a measured suppression.
package hotclean

import "fmt"

type vec []float64

//saim:hotpath
func axpyInto(dst, x vec, a float64) {
	if len(dst) != len(x) {
		// The panic block is an invariant-violation path, exempt even
		// though Sprintf allocates: it runs at most once, never in the
		// steady state.
		panic(fmt.Sprintf("hotclean: length mismatch %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += a * v
	}
}

//saim:hotpath
func sweep(state []int8, field, noise vec, beta float64) int {
	if len(state) == 0 {
		panic("hotclean: empty state")
	}
	flips := 0
	n := len(state)
	f := field[:n]
	z := noise[:n]
	for i := 0; i < n; i++ {
		if want := sign(beta*f[i] + z[i]); want != state[i] {
			state[i] = want
			flips++
		}
	}
	return flips
}

//saim:hotpath
func sign(x float64) int8 {
	if x >= 0 {
		return 1
	}
	return -1
}

//saim:hotpath
func tracedReset(dst vec) {
	// A measured, deliberate exception stays visible at the call site.
	dst2 := make(vec, 0, 8) //saim:allowalloc fixture: measured to stay on the stack
	for i := range dst {
		dst[i] = 0
	}
	_ = dst2
}

// cold allocates freely without the annotation.
func cold(n int) vec { return make(vec, n) }
