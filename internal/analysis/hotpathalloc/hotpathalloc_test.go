package hotpathalloc

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
)

func TestFlagsAllocatingConstructs(t *testing.T) {
	analysistest.Run(t, Analyzer, "hotbad")
}

func TestCleanPackagePasses(t *testing.T) {
	analysistest.Run(t, Analyzer, "hotclean")
}
