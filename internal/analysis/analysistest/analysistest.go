// Package analysistest runs an analyzer over a testdata fixture package
// and checks its diagnostics against expectations embedded in the
// fixture sources, mirroring x/tools' package of the same name.
//
// A fixture is a directory of Go files under testdata/src/<name>,
// deliberately outside the module's package graph (go tooling ignores
// testdata), so fixtures may violate the very invariants the repo
// enforces. Expectations are `// want "re"` comments: the diagnostic
// must land on the same line and match the regular expression. Several
// expectations may share a line: `// want "re1" "re2"`.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"github.com/ising-machines/saim/internal/analysis"
)

// wantRE extracts the quoted patterns of a `// want` comment.
var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// moduleRoot locates the repo root from this source file's position, so
// fixture loading can resolve standard-library imports through the
// module's go tool configuration regardless of the test's working
// directory.
func moduleRoot() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// Run loads testdata/src/<fixture> relative to the caller's package
// directory, applies the analyzer, and reports any mismatch between
// actual diagnostics and `// want` expectations as test failures.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := analysis.LoadDir(moduleRoot(), dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	// (file base name, line) -> pending expectations
	wants := make(map[string][]*expectation)
	key := func(file string, line int) string {
		return fmt.Sprintf("%s:%d", filepath.Base(file), line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key(pos.Filename, pos.Line)] = append(
						wants[key(pos.Filename, pos.Line)], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := key(d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, exp.re)
			}
		}
	}
}

// splitQuoted parses the sequence of Go-quoted strings after `want`.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want expectation must be a sequence of quoted patterns, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != quote || (quote == '"' && s[end-1] == '\\')) {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
