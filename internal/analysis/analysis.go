// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver to run the saimvet
// analyzer suite (see internal/analysis/suite) over type-checked packages.
//
// The repo builds hermetically with a bare go.mod — no external modules —
// so instead of depending on x/tools this package reimplements the small
// slice of its API the suite needs: an Analyzer is a named Run function
// over a Pass (one type-checked package), reporting position-anchored
// Diagnostics. Packages are loaded through the `go` tool itself
// (load.go): `go list -export` supplies compiled export data for every
// import, and go/types checks the target's sources against it, exactly
// the way `go vet` drives its unit checkers.
//
// The intentional API mirroring means an analyzer written here ports to
// x/tools/go/analysis by changing imports only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Name must be a valid identifier
// (it names the check in diagnostics and on the saimvet command line); Doc
// is a one-line summary shown by `saimvet -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, anchored to a resolved source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the combined
// diagnostics in deterministic (file, line, column, analyzer) order. An
// analyzer returning an error aborts the run: analyzer errors are bugs in
// the tooling, not findings about the code.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---------------------------------------------------------- directives ---
//
// The suite's annotations follow the Go directive-comment convention:
// `//saim:<name>` with no space after the slashes, attached to the
// declaration it governs (DESIGN.md §8 documents each directive).

// HasDirective reports whether the comment group contains the directive
// `//saim:<name>` (optionally followed by an explanatory remark).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//saim:" + name
	for _, c := range doc.List {
		text := c.Text
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// DirectiveLines returns the set of source lines of file f carrying the
// directive `//saim:<name>` anywhere in a comment. Analyzers use it for
// line-level suppressions (a trailing `//saim:allowalloc`, for example).
func DirectiveLines(fset *token.FileSet, f *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	want := "//saim:" + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
