package fingerprintcomplete

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
)

func TestFlagsMissingAndStaleFields(t *testing.T) {
	analysistest.Run(t, Analyzer, "fpbad")
}

func TestCleanPackagePasses(t *testing.T) {
	analysistest.Run(t, Analyzer, "fpclean")
}
