// Package fpbad is a deliberately broken fixture: its config struct has
// a field the digest forgets, and a stale exemption on a field the
// digest does encode.
package fpbad

type config struct {
	alpha float64
	seed  uint64
	// stray is read by a backend but never folded into the digest:
	// two solves differing only in stray would share a cache entry.
	stray int // want `config field "stray" is not encoded by OptionsFingerprint`
	//saim:nofingerprint pretend this is observation-only
	stale float64 // want `config field "stale" carries //saim:nofingerprint but is encoded`
	//saim:nofingerprint progress-style observation hook
	watch func(int)
}

// OptionsFingerprint hashes the solve-relevant settings.
func OptionsFingerprint(c config) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(c.alpha))
	mix(c.seed)
	mix(uint64(c.stale))
	return h
}
