// Package fpclean is the non-flagging fixture: every config field is
// either folded into the digest or carries a justified exemption, and a
// package helper reading config fields outside the digest neither helps
// nor hurts.
package fpclean

type config struct {
	alpha float64
	seed  uint64
	limit int
	//saim:nofingerprint — observation-only callback, never changes results
	watch func(int)
}

// OptionsFingerprint hashes the solve-relevant settings through a
// pointer receiver path, which must count as encoding too.
func OptionsFingerprint(c *config) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(c.alpha))
	mix(c.seed)
	mix(uint64(c.limit))
	return h
}

// apply reads fields outside the digest; such reads must not count as
// "encoded".
func apply(c config) int {
	if c.watch != nil {
		c.watch(c.limit)
	}
	return c.limit
}
