// Package fingerprintcomplete checks that every field of the option
// `config` struct is folded into OptionsFingerprint.
//
// The solve service keys its dedup and result cache on (model
// fingerprint, options fingerprint). An option that mutates config but
// is absent from the digest makes two *different* solves fingerprint
// identically, so the cache silently serves the wrong result — the worst
// kind of bug, because every individual solve still looks correct. The
// runtime counterpart (TestOptionsFingerprint) can only cover options it
// enumerates; this analyzer closes the enrollment gap by cross-checking
// the struct definition itself against the digest function.
//
// A field that deliberately does not participate — observation-only
// knobs like WithProgress, which never change the solve — must say so
// with a `//saim:nofingerprint` directive comment on the field. The
// analyzer also flags a stale exemption (an exempted field that *is*
// encoded), so the allowlist cannot rot.
package fingerprintcomplete

import (
	"go/ast"
	"go/types"

	"github.com/ising-machines/saim/internal/analysis"
)

// configStruct and digestFunc name the convention the analyzer checks: a
// struct type `config` whose fields are all read by `OptionsFingerprint`
// in the same package. Packages defining neither are skipped.
const (
	configStruct = "config"
	digestFunc   = "OptionsFingerprint"
	directive    = "nofingerprint"
)

var Analyzer = &analysis.Analyzer{
	Name: "fingerprintcomplete",
	Doc:  "every config field must be encoded by OptionsFingerprint or carry //saim:nofingerprint",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	var cfg *ast.StructType
	var digest *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != configStruct {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						cfg = st
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == digestFunc {
					digest = d
				}
			}
		}
	}
	if cfg == nil || digest == nil || digest.Body == nil {
		return nil // package doesn't define the option/fingerprint pattern
	}

	// Fields encoded by the digest: any field selection on a value of
	// type `config` (or *config) inside the digest function's body.
	encoded := make(map[string]bool)
	ast.Inspect(digest.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if ok && named.Obj().Name() == configStruct && named.Obj().Pkg() == pass.Pkg {
			encoded[sel.Sel.Name] = true
		}
		return true
	})

	for _, field := range cfg.Fields.List {
		exempt := analysis.HasDirective(field.Doc, directive) ||
			analysis.HasDirective(field.Comment, directive)
		for _, name := range field.Names {
			switch {
			case !exempt && !encoded[name.Name]:
				pass.Reportf(name.Pos(),
					"config field %q is not encoded by %s: the service dedup/result cache would treat solves differing only in this option as identical (add it to the digest, or mark it //saim:%s if it cannot affect results)",
					name.Name, digestFunc, directive)
			case exempt && encoded[name.Name]:
				pass.Reportf(name.Pos(),
					"config field %q carries //saim:%s but is encoded by %s: remove the stale exemption",
					name.Name, directive, digestFunc)
			}
		}
	}
	return nil
}
