package goleak_test

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
	"github.com/ising-machines/saim/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, goleak.Analyzer, "goleak")
}
