// Package goleak enforces shutdown discipline on long-lived goroutines.
//
// The service, cluster, and WAL planes all own background goroutines —
// workers, heartbeat sweeps, sync loops — and every one of them must
// stop when its owner stops, or tests hang and processes leak. The rule:
//
//	A `go` statement launched from a long-lived type must tie any
//	unbounded loop it runs to a termination path.
//
// A type is long-lived when its struct carries lifecycle state: a
// context.Context field, a stop channel (chan struct{}), or a
// sync.WaitGroup. A `go` statement is in scope when it appears in a
// method of such a type, or spawns a method of one.
//
// For each in-scope `go` statement whose body is visible (a function
// literal, or a same-package function or method), every `for` loop
// without a condition must show termination evidence inside the loop:
//
//   - a receive from a channel (<-ch — a stop channel, a ticker the
//     owner stops, or a work channel the owner closes), including
//     select clauses;
//   - a call to Done or Err on a context.Context;
//   - a call to Done on a sync.WaitGroup (the owner joins it).
//
// Loops ranging over a channel terminate when the channel closes and
// need no further evidence; `for` loops with a condition are assumed
// bounded by it.
//
// //saim:nostop <reason> on the `go` statement's line documents a
// deliberately unstoppable goroutine and suppresses the diagnostic.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/ising-machines/saim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "goroutines launched from long-lived types must tie unbounded loops to a termination path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, decls: map[types.Object]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				c.decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Files {
		c.nostop = analysis.DirectiveLines(pass.Fset, f, "nostop")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fromLongLived := c.methodOfLongLived(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				c.checkGo(g, fromLongLived)
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	decls  map[types.Object]*ast.FuncDecl
	nostop map[int]bool
}

func (c *checker) checkGo(g *ast.GoStmt, fromLongLived bool) {
	if c.nostop[c.pass.Fset.Position(g.Pos()).Line] {
		return
	}
	inScope := fromLongLived
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[fun]; obj != nil {
			if fd, ok := c.decls[obj]; ok {
				body = fd.Body
			}
		}
	case *ast.SelectorExpr:
		obj := c.pass.TypesInfo.Uses[fun.Sel]
		if fn, ok := obj.(*types.Func); ok {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isLongLived(recv.Type()) {
				inScope = true
			}
			if fd, ok := c.decls[obj]; ok {
				body = fd.Body
			}
		}
	}
	if !inScope || body == nil {
		return
	}
	for _, loop := range unboundedLoops(body) {
		if c.hasTerminationEvidence(loop.Body) {
			continue
		}
		c.pass.Reportf(g.Pos(),
			"goroutine runs an unbounded for loop (line %d) with no termination path — no stop-channel or ctx.Done receive; select on shutdown inside the loop, or annotate //saim:nostop with the reason",
			c.pass.Fset.Position(loop.For).Line)
		return
	}
}

// unboundedLoops returns the condition-less for loops of body, not
// descending into nested function literals (their loops belong to the
// closures that run them).
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				loops = append(loops, n)
			}
		}
		return true
	})
	return loops
}

// hasTerminationEvidence scans a loop body (including nested literals —
// evidence anywhere under the loop counts) for a channel receive, a
// range over a channel, ctx.Done/ctx.Err, or WaitGroup.Done.
func (c *checker) hasTerminationEvidence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := c.pass.TypesInfo.Types[n.X]; ok && t.Type != nil {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if t, ok := c.pass.TypesInfo.Types[sel.X]; ok && t.Type != nil {
				switch sel.Sel.Name {
				case "Done", "Err":
					if analysis.IsContextType(t.Type) {
						found = true
					}
					if sel.Sel.Name == "Done" && isWaitGroup(t.Type) {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

func (c *checker) methodOfLongLived(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	if t, ok := c.pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok && t.Type != nil {
		return isLongLived(t.Type)
	}
	return false
}

// isLongLived reports whether t (or *t) is a struct carrying lifecycle
// state: a context.Context, a stop channel (chan struct{}), or a
// sync.WaitGroup field.
func isLongLived(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if analysis.IsContextType(ft) {
			return true
		}
		if ch, ok := ft.Underlying().(*types.Chan); ok {
			if s, ok := ch.Elem().Underlying().(*types.Struct); ok && s.NumFields() == 0 {
				return true
			}
		}
		if isWaitGroup(ft) {
			return true
		}
	}
	return false
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
