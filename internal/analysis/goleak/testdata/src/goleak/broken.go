// Broken fixtures: goroutines from long-lived types running unbounded
// loops with no way to stop.
package goleak

import "context"

// server is long-lived: it carries a stop channel.
type server struct {
	stop chan struct{}
	hits int
}

func poll(s *server) { s.hits++ }

// Spinning forever with no receive: nothing can stop this goroutine.
func (s *server) start() {
	go func() { // want `no termination path`
		for {
			poll(s)
		}
	}()
}

// Same leak through a named method body.
func (s *server) spin() {
	for {
		poll(s)
	}
}

func (s *server) startSpinner() {
	go s.spin() // want `no termination path`
}

// tracker is long-lived through its context field.
type tracker struct {
	ctx context.Context
	n   int
}

// The loop checks nothing: holding a ctx field is not enough, the loop
// must actually receive from ctx.Done().
func (t *tracker) run() {
	go func() { // want `no termination path`
		for {
			t.n++
		}
	}()
}
