// Clean fixtures: every goroutine here is tied to a termination path,
// out of scope, or deliberately annotated.
package goleak

import (
	"context"
	"sync"
	"time"
)

type engine struct {
	stop  chan struct{}
	queue chan int
	wg    sync.WaitGroup
	n     int
}

// Select on the stop channel: the canonical ticker loop.
func (e *engine) startTicker() {
	ticker := time.NewTicker(time.Second)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				e.n++
			case <-e.stop:
				return
			}
		}
	}()
}

// Ranging over a channel terminates when the owner closes it.
func (e *engine) startWorker() {
	go func() {
		for v := range e.queue {
			e.n += v
		}
	}()
}

// Named method with a stop-channel receive.
func (e *engine) drain() {
	for {
		select {
		case v := <-e.queue:
			e.n += v
		case <-e.stop:
			return
		}
	}
}

func (e *engine) startDrain() {
	go e.drain()
}

// ctx.Done ties the loop to cancellation.
type watcher struct {
	ctx context.Context
	n   int
}

func (w *watcher) start(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			w.n++
		}
	}()
}

// A short-lived helper (no lifecycle fields) is out of scope: the
// analyzer only polices types that own background goroutines.
type scratch struct {
	n int
}

func (s *scratch) burn() {
	go func() {
		for {
			s.n++
		}
	}()
}

// Documented, deliberately unstoppable goroutine.
func (e *engine) startForever() {
	go func() { //saim:nostop process-lifetime metrics pump, reaped at exit
		for {
			e.n++
		}
	}()
}
