// Package lockguard enforces the mutex contracts the service and cluster
// planes depend on, over the intra-procedural CFG of internal/analysis/cfg
// with a may/must-hold-lock dataflow.
//
// Three rules, all flow-sensitive:
//
//  1. Guarded fields. A struct field annotated `// guarded by <mu>` (doc
//     or trailing comment; <mu> must name a sibling sync.Mutex/RWMutex
//     field) may only be read or written while that mutex is held on
//     EVERY path reaching the access (must-held intersection at merges).
//     Freshly constructed locals (assigned from a composite literal or
//     new(T) in the same function) are exempt: a constructor filling in a
//     not-yet-shared value needs no lock.
//
//  2. Balanced locking. Every Lock must reach an Unlock on every normal
//     path out of the function — either a matching deferred unlock or an
//     explicit unlock on all paths (may-held union at merges; a lock
//     still possibly held at the function's Exit with no deferred unlock
//     pending is reported at its Lock site). Paths that leave by
//     panicking are not judged: deferred unlocks run during unwinding,
//     which is exactly why the aggregator uses defer.
//
//  3. No blocking under a lock. While any mutex is must-held, the
//     function must not: send to or receive from a channel (including
//     ranging over one), call time.Sleep, call into net or net/http,
//     call into internal/wal from outside it (Append/Sync fsync), invoke
//     a function-typed struct field (a user-supplied callback — the PR 9
//     ProgressAggregator deadlock), or call a same-package function that
//     directly does one of the call-shaped operations above (a one-level
//     summary, so Submit → journalSubmitted → wal.Append is visible).
//     Non-blocking channel shapes are exempt: operations that are the
//     comm clause of a select with a default case, and sends to a
//     locally-made buffered channel.
//
// Conventions understood:
//
//   - Lock wrappers: a method whose whole body is recv.mu.Lock() (or
//     Unlock/RLock/RUnlock) acts as that operation at its call sites —
//     the service Job's lock()/unlock() idiom.
//   - Methods named *Locked, or annotated //saim:locked, assume the
//     receiver's mutexes held at entry (the internal/wal idiom).
//   - //saim:lockok <reason> on the offending line suppresses rules 1
//     and 3 for deliberate, documented cases.
//
// Function literals are analyzed as separate functions (they run later,
// under whatever locks their caller then holds — unknowable
// intra-procedurally) with one exception: an immediately-invoked literal
// is analyzed with the lock set held at its invocation, since it runs
// synchronously. Known misses, accepted for zero noise: deferred
// closures execute under the locks held at function exit, and goroutine
// bodies inherit nothing — both analyzed lock-free.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/ising-machines/saim/internal/analysis"
	"github.com/ising-machines/saim/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "guarded-by fields accessed under their mutex, every Lock reaches Unlock, nothing blocking while a lock is held",
	Run:  run,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockInfo records where and as what a lock was acquired, for messages.
type lockInfo struct {
	pos  token.Pos
	disp string
}

// lockState is the dataflow fact at one program point.
type lockState struct {
	// must: locks held on every path here (guarded-access + blocking
	// checks). may: locks possibly held here with NO deferred unlock
	// pending (leak check at Exit). defs: deferred unlocks pending on
	// every path here.
	must map[string]lockInfo
	may  map[string]lockInfo
	defs map[string]bool
}

func newState() *lockState {
	return &lockState{
		must: map[string]lockInfo{},
		may:  map[string]lockInfo{},
		defs: map[string]bool{},
	}
}

func (s *lockState) clone() *lockState {
	c := newState()
	for k, v := range s.must {
		c.must[k] = v
	}
	for k, v := range s.may {
		c.may[k] = v
	}
	for k := range s.defs {
		c.defs[k] = true
	}
	return c
}

// mergeInto folds src into dst (nil dst: first visit), reporting change.
func mergeInto(dst, src *lockState) (*lockState, bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for k := range dst.must {
		if _, ok := src.must[k]; !ok {
			delete(dst.must, k)
			changed = true
		}
	}
	for k, v := range src.may {
		if _, ok := dst.may[k]; !ok {
			dst.may[k] = v
			changed = true
		}
	}
	for k := range dst.defs {
		if !src.defs[k] {
			delete(dst.defs, k)
			changed = true
		}
	}
	return dst, changed
}

// wrapperInfo describes a lock-wrapper method: calling it performs op on
// the receiver's `field` mutex.
type wrapperInfo struct {
	op    string // "lock" or "unlock"
	field string
}

type checker struct {
	pass     *analysis.Pass
	guards   map[types.Object]string      // guarded field -> sibling mutex field name
	wrappers map[types.Object]wrapperInfo // wrapper method -> op
	summary  map[types.Object]string      // same-pkg func -> one-level blocking reason ("" = none)
	suppress map[string]map[int]bool      // filename -> //saim:lockok lines
}

// unit is one function-shaped body under analysis.
type unit struct {
	body  *ast.BlockStmt
	seed  map[string]lockInfo // entry must-held (e.g. *Locked methods)
	fresh map[types.Object]bool
	// freshChans: locals from make(chan T, n) with a capacity argument —
	// sends to them while the value is still local cannot block.
	freshChans map[types.Object]bool
	// nbComm: comm statements of selects that have a default clause.
	nbComm map[ast.Node]bool
	// lits: function literals discovered during the reporting pass, each
	// analyzed as its own unit afterwards.
	lits []litTask
}

type litTask struct {
	lit  *ast.FuncLit
	seed map[string]lockInfo
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		guards:   map[types.Object]string{},
		wrappers: map[types.Object]wrapperInfo{},
		summary:  map[types.Object]string{},
		suppress: map[string]map[int]bool{},
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		c.suppress[name] = analysis.DirectiveLines(pass.Fset, f, "lockok")
	}
	c.collectGuards()
	c.collectWrappers()
	c.collectSummaries()

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := c.pass.TypesInfo.Defs[fd.Name]; obj != nil {
				if _, isWrapper := c.wrappers[obj]; isWrapper {
					continue // a wrapper's unbalanced body is its purpose
				}
			}
			c.checkUnit(&unit{body: fd.Body, seed: c.entrySeed(fd)})
		}
	}
	return nil
}

// ------------------------------------------------------------ collection ---

// collectGuards finds `guarded by <mu>` field annotations, validating
// that <mu> names a sibling mutex field. Mutex-typed fields themselves
// are never treated as guarded (a blanket "guarded by mu" remark on the
// mutex's own doc must not make locking it require holding it).
func (c *checker) collectGuards() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := map[string]bool{}
			for _, field := range st.Fields.List {
				if t, ok := c.pass.TypesInfo.Types[field.Type]; ok && isMutexType(t.Type) {
					for _, name := range field.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				if t, ok := c.pass.TypesInfo.Types[field.Type]; ok && isMutexType(t.Type) {
					continue
				}
				if !mutexes[guard] {
					c.pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a sibling sync.Mutex/RWMutex field", guard)
					continue
				}
				for _, name := range field.Names {
					if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
						c.guards[obj] = guard
					}
				}
			}
			return true
		})
	}
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// collectWrappers records methods whose entire body is a single
// recv.<field>.Lock/Unlock/RLock/RUnlock() call.
func (c *checker) collectWrappers() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Body.List) != 1 {
				continue
			}
			if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recvName := fd.Recv.List[0].Names[0].Name
			es, ok := fd.Body.List[0].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			op := lockOpName(sel.Sel.Name)
			if op == "" {
				continue
			}
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := inner.X.(*ast.Ident)
			if !ok || base.Name != recvName {
				continue
			}
			if t, ok := c.pass.TypesInfo.Types[inner]; !ok || !isMutexType(t.Type) {
				continue
			}
			if obj := c.pass.TypesInfo.Defs[fd.Name]; obj != nil {
				c.wrappers[obj] = wrapperInfo{op: op, field: inner.Sel.Name}
			}
		}
	}
}

// collectSummaries computes the one-level may-block summary for every
// same-package function: the first call-shaped blocking operation found
// directly in its body (function literals excluded — a closure a helper
// merely builds does not run at call time). Channel operations are
// deliberately not summarized; their non-blocking exemptions
// (select-with-default, fresh buffered channels) are context the summary
// cannot carry.
func (c *checker) collectSummaries() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := c.pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			reason := ""
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if reason != "" {
					return false
				}
				switch n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					reason = c.callBlockReason(call, false)
				}
				return true
			})
			if reason != "" {
				c.summary[obj] = reason
			}
		}
	}
}

// entrySeed returns the must-held set a declaration starts with: methods
// named *Locked or annotated //saim:locked assume every mutex field of
// their receiver held by the caller.
func (c *checker) entrySeed(fd *ast.FuncDecl) map[string]lockInfo {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	if !strings.HasSuffix(fd.Name.Name, "Locked") && !analysis.HasDirective(fd.Doc, "locked") {
		return nil
	}
	recvIdent := fd.Recv.List[0].Names[0]
	obj := c.pass.TypesInfo.Defs[recvIdent]
	if obj == nil {
		return nil
	}
	typ := obj.Type()
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	st, ok := typ.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	seed := map[string]lockInfo{}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if isMutexType(fld.Type()) {
			key := objKey(obj) + "." + fld.Name()
			seed[key] = lockInfo{pos: fd.Pos(), disp: recvIdent.Name + "." + fld.Name()}
		}
	}
	return seed
}

// ------------------------------------------------------------- analysis ---

func (c *checker) checkUnit(u *unit) {
	u.fresh = map[types.Object]bool{}
	u.freshChans = map[types.Object]bool{}
	u.nbComm = map[ast.Node]bool{}
	c.prewalk(u)

	g := cfg.New(u.body)
	in := map[*cfg.Block]*lockState{}
	entry := newState()
	for k, v := range u.seed {
		entry.must[k] = v
	}
	in[g.Entry] = entry

	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b].clone()
		for _, n := range b.Nodes {
			c.step(u, st, n, false)
		}
		for _, s := range b.Succs {
			merged, changed := mergeInto(in[s], st)
			if changed {
				in[s] = merged
				work = append(work, s)
			}
		}
	}

	// Reporting pass with the converged states; also collects literals.
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		st = st.clone()
		for _, n := range b.Nodes {
			c.step(u, st, n, true)
		}
	}

	// Leak check at the normal exit: a lock possibly held with no
	// deferred unlock pending did not reach an Unlock on some path.
	if est := in[g.Exit]; est != nil {
		for _, info := range est.may {
			c.pass.Reportf(info.pos,
				"%s is locked here but not unlocked on every path out of the function (add defer %s.Unlock() or unlock on all paths)",
				info.disp, info.disp)
		}
	}

	for _, lt := range u.lits {
		c.checkUnit(&unit{body: lt.lit.Body, seed: lt.seed})
	}
}

// prewalk collects per-unit context: fresh locals, fresh buffered
// channels, and the comm statements of selects carrying a default.
func (c *checker) prewalk(u *unit) {
	noteFresh := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		switch v := rhs.(type) {
		case *ast.CompositeLit:
			u.fresh[obj] = true
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := v.X.(*ast.CompositeLit); ok {
					u.fresh[obj] = true
				}
			}
		case *ast.CallExpr:
			if fn, ok := v.Fun.(*ast.Ident); ok {
				switch fn.Name {
				case "new":
					u.fresh[obj] = true
				case "make":
					if tv, ok := c.pass.TypesInfo.Types[rhs]; ok && tv.Type != nil {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(v.Args) == 2 {
							u.freshChans[obj] = true
						}
					}
				}
			}
		}
	}
	ast.Inspect(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					noteFresh(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					noteFresh(n.Names[i], n.Values[i])
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						u.nbComm[cc.Comm] = true
					}
				}
			}
		}
		return true
	})
}

// step applies one CFG node to the state; with report set it also emits
// diagnostics and collects function literals.
func (c *checker) step(u *unit, st *lockState, n ast.Node, report bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Range head: only X executes here. Ranging a channel receives.
		if t, ok := c.pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				c.blockingOp(st, n.X.Pos(), "receiving from a channel (range)", report)
			}
		}
		c.walk(u, st, n.X, false, report)
		return
	case *ast.DeferStmt:
		c.handleDefer(u, st, n, report)
		return
	}
	c.walk(u, st, n, false, report)
}

// handleDefer registers deferred unlocks. Argument expressions evaluate
// at the defer statement and are walked normally; the deferred call
// itself runs at exit and is not charged against the current lock set.
func (c *checker) handleDefer(u *unit, st *lockState, d *ast.DeferStmt, report bool) {
	call := d.Call
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// A deferred closure: any unlock inside releases at exit. The
		// body is additionally analyzed as its own (lock-free) unit.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if op, key, _ := c.lockOp(inner); op == "unlock" && key != "" {
					st.defs[key] = true
					delete(st.may, key)
				}
			}
			return true
		})
		if report {
			u.lits = append(u.lits, litTask{lit: lit})
		}
	} else if op, key, _ := c.lockOp(call); op == "unlock" && key != "" {
		st.defs[key] = true
		delete(st.may, key)
	}
	for _, a := range call.Args {
		c.walk(u, st, a, false, report)
	}
}

// walk traverses one node's expressions in place, applying lock
// operations, blocking checks, and guarded-access checks. nonblocking
// marks a subtree whose channel operations cannot block (a comm clause
// of a select with default).
func (c *checker) walk(u *unit, st *lockState, n ast.Node, nonblocking bool, report bool) {
	if u.nbComm[n] {
		nonblocking = true
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if report {
				u.lits = append(u.lits, litTask{lit: x})
			}
			return false

		case *ast.GoStmt:
			// Spawning never blocks the spawner; the goroutine body runs
			// under no inherited locks and is analyzed as its own unit.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && report {
				u.lits = append(u.lits, litTask{lit: lit})
			}
			for _, a := range x.Call.Args {
				c.walk(u, st, a, nonblocking, report)
			}
			return false

		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: runs synchronously under
				// the current lock set.
				if report {
					seed := map[string]lockInfo{}
					for k, v := range st.must {
						seed[k] = v
					}
					u.lits = append(u.lits, litTask{lit: lit, seed: seed})
				}
				for _, a := range x.Args {
					c.walk(u, st, a, nonblocking, report)
				}
				return false
			}
			if op, key, disp := c.lockOp(x); op != "" {
				if key != "" {
					switch op {
					case "lock":
						info := lockInfo{pos: x.Pos(), disp: disp}
						st.must[key] = info
						st.may[key] = info
					case "unlock":
						delete(st.must, key)
						delete(st.may, key)
						delete(st.defs, key)
					}
				}
				return false // mu.Lock() is not an access to a guarded field
			}
			if reason := c.callBlockReason(x, true); reason != "" {
				c.blockingOp(st, x.Pos(), reason, report)
			}
			return true

		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !nonblocking {
				c.blockingOp(st, x.Pos(), "receiving from a channel", report)
			}
			return true

		case *ast.SendStmt:
			if !nonblocking && !c.isFreshBufferedChan(u, x.Chan) {
				c.blockingOp(st, x.Pos(), "sending to a channel", report)
			}
			return true

		case *ast.SelectorExpr:
			c.checkAccess(u, st, x, report)
			return true
		}
		return true
	})
}

// blockingOp reports a blocking operation if any lock is must-held.
func (c *checker) blockingOp(st *lockState, pos token.Pos, what string, report bool) {
	if !report || len(st.must) == 0 || c.suppressed(pos) {
		return
	}
	held := make([]string, 0, len(st.must))
	for _, info := range st.must {
		held = append(held, info.disp)
	}
	c.pass.Reportf(pos,
		"%s while holding %s may block every contender on the lock (move it outside the critical section, or annotate //saim:lockok with the reason it cannot block)",
		what, strings.Join(sortStrings(held), ", "))
}

// checkAccess enforces rule 1 on one selector expression.
func (c *checker) checkAccess(u *unit, st *lockState, sel *ast.SelectorExpr, report bool) {
	if !report {
		return
	}
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	guard, guarded := c.guards[selection.Obj()]
	if !guarded {
		return
	}
	if base := rootObj(c.pass.TypesInfo, sel.X); base != nil && u.fresh[base] {
		return
	}
	required := exprKey(c.pass.TypesInfo, sel.X)
	if required == "" {
		return // receiver too complex to name a lock; stay silent
	}
	required += "." + guard
	if _, held := st.must[required]; held {
		return
	}
	if c.suppressed(sel.Pos()) {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"field %s is guarded by %s but accessed without holding %s.%s on every path (annotate //saim:lockok if protected another way)",
		sel.Sel.Name, guard, exprText(sel.X), guard)
}

// ---------------------------------------------------------- classifiers ---

func lockOpName(name string) string {
	switch name {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

// lockOp classifies a call as a mutex operation: a direct
// <expr>.Lock/Unlock/RLock/RUnlock() on a mutex-typed expression, or a
// call to a recognized wrapper method. key is "" when the receiver
// expression is too complex to track.
func (c *checker) lockOp(call *ast.CallExpr) (op, key, disp string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	if op := lockOpName(sel.Sel.Name); op != "" {
		if t, ok := c.pass.TypesInfo.Types[sel.X]; ok && isMutexType(t.Type) {
			return op, exprKey(c.pass.TypesInfo, sel.X), exprText(sel.X)
		}
	}
	if obj := c.pass.TypesInfo.Uses[sel.Sel]; obj != nil {
		if w, ok := c.wrappers[obj]; ok {
			base := exprKey(c.pass.TypesInfo, sel.X)
			if base == "" {
				return w.op, "", ""
			}
			return w.op, base + "." + w.field, exprText(sel.X) + "." + w.field
		}
	}
	return "", "", ""
}

// callBlockReason classifies call-shaped blocking operations. With
// summaries enabled it also consults the one-level same-package
// may-block summary (disabled while building the summaries themselves).
func (c *checker) callBlockReason(call *ast.CallExpr, summaries bool) string {
	// A function-typed struct field invoked directly is a user-supplied
	// callback: it may block, take arbitrary time, or re-enter the lock.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if selection, ok := c.pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			if _, isFunc := selection.Obj().Type().Underlying().(*types.Signature); isFunc {
				return fmt.Sprintf("invoking the callback field %s (user code of unknown duration)", exprText(sel))
			}
		}
	}
	obj := calleeObj(c.pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch path := pkg.Path(); {
	case path == "time" && fn.Name() == "Sleep":
		return "calling time.Sleep"
	case path == "net" || path == "net/http":
		return fmt.Sprintf("calling %s.%s (network I/O)", path, fn.Name())
	case strings.HasSuffix(path, "internal/wal") && c.pass.Pkg.Path() != path:
		return fmt.Sprintf("calling wal.%s (journal I/O, possibly an fsync)", fn.Name())
	case summaries && pkg == c.pass.Pkg:
		if reason, ok := c.summary[obj]; ok {
			return fmt.Sprintf("calling %s, which may block (%s)", fn.Name(), reason)
		}
	}
	return ""
}

func (c *checker) isFreshBufferedChan(u *unit, ch ast.Expr) bool {
	if id, ok := ch.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return u.freshChans[obj]
		}
	}
	return false
}

func (c *checker) suppressed(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.suppress[p.Filename][p.Line]
}

// ------------------------------------------------------------- utilities ---

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// objKey names a variable stably within one pass.
func objKey(obj types.Object) string {
	return fmt.Sprintf("v%d", obj.Pos())
}

// exprKey canonicalizes a selector chain rooted at a named variable;
// "" when the expression has another shape.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return objKey(obj)
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(info, e.X)
	}
	return ""
}

// rootObj returns the object of the base identifier of a selector chain.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// exprText renders a selector chain for messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	}
	return "<expr>"
}

// calleeObj resolves the called function's object, when nameable.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func sortStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}
