// Clean fixtures: none of these may draw a diagnostic. Each function
// exercises one idiom the analyzer must understand.
package lockguard

import "sync"

type store struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	n     int            // guarded by mu
}

// Lock wrappers: calling these acts as Lock/Unlock on s.mu.
func (s *store) lock()   { s.mu.Lock() }
func (s *store) unlock() { s.mu.Unlock() }

// Deferred unlock covers every path.
func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// Explicit unlock on all paths.
func (s *store) tryPut(k string, v int, overwrite bool) bool {
	s.mu.Lock()
	if _, ok := s.items[k]; ok && !overwrite {
		s.mu.Unlock()
		return false
	}
	s.items[k] = v
	s.mu.Unlock()
	return true
}

// Wrapper methods act as the operations they wrap.
func (s *store) put(k string, v int) {
	s.lock()
	s.items[k] = v
	s.unlock()
}

// The Locked suffix asserts the caller holds the receiver's mutexes.
func (s *store) bumpLocked() {
	s.n++
}

// reset clears the table; callers hold s.mu.
//
//saim:locked
func (s *store) reset() {
	s.items = map[string]int{}
	s.n = 0
}

// A constructor filling in a fresh, unshared value needs no lock.
func newStore() *store {
	s := &store{items: map[string]int{}}
	s.n = 1
	return s
}

// A select with a default clause cannot block.
func (s *store) notify(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.n:
	default:
	}
}

// A send to a locally-made buffered channel cannot block while the
// value is still private to this function.
func (s *store) snapshotChan() chan int {
	ch := make(chan int, 1)
	s.mu.Lock()
	ch <- s.n
	s.mu.Unlock()
	return ch
}

// An immediately-invoked literal runs synchronously under the caller's
// locks, so its guarded accesses are covered.
func (s *store) flush() int {
	s.mu.Lock()
	n := func() int {
		old := s.n
		s.n = 0
		return old
	}()
	s.mu.Unlock()
	return n
}

// RWMutex read-locking counts as holding the guard.
type table struct {
	rw sync.RWMutex
	m  map[string]bool // guarded by rw
}

func (t *table) has(k string) bool {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// A documented, deliberate case is silenced by the directive.
type notifier struct {
	mu sync.Mutex
	f  func(int)
	v  int // guarded by mu
}

func (n *notifier) fire() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.f(n.v) //saim:lockok callback contract requires serialization under mu
}
