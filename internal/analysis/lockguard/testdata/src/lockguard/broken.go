// Broken fixtures: every construct here must draw exactly the
// diagnostic named by its want comment.
package lockguard

import (
	"net"
	"sync"
	"time"
)

// aggregator reproduces the PR 9 ProgressAggregator deadlock shape: a
// mutex-guarded accumulator whose method invokes a user-supplied
// callback field while still holding the mutex.
type aggregator struct {
	mu  sync.Mutex
	f   func(int)
	agg int // guarded by mu
}

func (a *aggregator) callback(v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.agg += v
	a.f(a.agg) // want `invoking the callback field a\.f`
}

// Guarded field read with no lock at all.
func (a *aggregator) race() int {
	return a.agg // want `guarded by mu`
}

// Guarded field write locked on only one of two paths.
func (a *aggregator) sometimes(cond bool) {
	if cond {
		a.mu.Lock()
		a.agg++
		a.mu.Unlock()
	}
	a.agg++ // want `guarded by mu`
}

// Lock that does not reach an Unlock on the early-return path.
func (a *aggregator) leaky(cond bool) {
	a.mu.Lock() // want `not unlocked on every path`
	if cond {
		return
	}
	a.mu.Unlock()
}

// Channel send while the mutex is held: every other contender stalls
// until a receiver shows up.
func (a *aggregator) send(ch chan int) {
	a.mu.Lock()
	ch <- 1 // want `sending to a channel while holding`
	a.mu.Unlock()
}

// Channel receive under the lock.
func (a *aggregator) recv(ch chan int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return <-ch // want `receiving from a channel while holding`
}

// Network I/O under the lock.
func (a *aggregator) dial() {
	a.mu.Lock()
	defer a.mu.Unlock()
	net.Dial("tcp", "localhost:0") // want `calling net\.Dial`
}

// nap blocks; calling it under a lock is flagged through the one-level
// same-package summary.
func (a *aggregator) nap() {
	time.Sleep(time.Millisecond)
}

func (a *aggregator) slowUnderLock() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nap() // want `calling nap, which may block`
}

// A guarded-by annotation must name a sibling mutex field.
type badAnno struct {
	mu sync.Mutex
	// guarded by lock
	x int // want `guarded-by annotation names "lock"`
}

func (b *badAnno) use() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.x
}
