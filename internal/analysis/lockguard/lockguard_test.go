package lockguard_test

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
	"github.com/ising-machines/saim/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer, "lockguard")
}
