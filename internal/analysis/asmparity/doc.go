// Package asmparity holds a repo-wide test enforcing the assembly
// fallback contract: every dispatcher with a body in a *_amd64.go file
// must have a portable fallback with an identical signature in a
// !amd64-constrained sibling file, and every such pair must be named in
// at least one test file of its package (the differential test that
// proves the two paths agree). Bodyless assembly externs are exempt —
// they exist only on the amd64 side by construction.
//
// The check is a test rather than a saimvet analyzer because it needs
// files the build would exclude on the current GOARCH (the !amd64
// fallbacks), which the export-data loader never sees.
package asmparity
