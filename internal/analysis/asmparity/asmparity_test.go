package asmparity

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// moduleRoot locates the repository root from this file's position.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	// internal/analysis/asmparity/asmparity_test.go → repo root.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// sigString renders a function's signature with parameter and result
// names stripped, so renaming an argument is not a parity break but
// changing a type is.
func sigString(fn *ast.FuncDecl) string {
	var b strings.Builder
	if fn.Recv != nil {
		b.WriteString("(")
		b.WriteString(fieldTypes(fn.Recv))
		b.WriteString(") ")
	}
	b.WriteString("func(")
	b.WriteString(fieldTypes(fn.Type.Params))
	b.WriteString(")")
	if fn.Type.Results != nil {
		b.WriteString(" (")
		b.WriteString(fieldTypes(fn.Type.Results))
		b.WriteString(")")
	}
	return b.String()
}

func fieldTypes(fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, types.ExprString(f.Type))
		}
	}
	return strings.Join(parts, ", ")
}

// isFallbackFile reports whether the file's build constraint excludes
// amd64 (the portable side of a stub pair).
func isFallbackFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") && strings.Contains(c.Text, "!amd64") {
				return true
			}
		}
	}
	return false
}

type stub struct {
	file string
	sig  string
}

// TestAsmParity walks every package containing *_amd64.go files and
// enforces the fallback contract described in the package doc.
func TestAsmParity(t *testing.T) {
	root := moduleRoot(t)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, "_amd64.go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no *_amd64.go files found — the walk is broken, not the tree")
	}

	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		t.Run(filepath.ToSlash(rel), func(t *testing.T) {
			checkPackage(t, dir)
		})
	}
}

func checkPackage(t *testing.T, dir string) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	amd := map[string]stub{}      // funcs with bodies in *_amd64.go
	fallback := map[string]stub{} // funcs with bodies in !amd64 files
	var testSrc strings.Builder   // concatenated *_test.go sources

	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		path := filepath.Join(dir, name)
		if strings.HasSuffix(name, "_test.go") {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			testSrc.Write(src)
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		var side map[string]stub
		switch {
		case strings.HasSuffix(name, "_amd64.go"):
			side = amd
		case isFallbackFile(f):
			side = fallback
		default:
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				// Bodyless decls are assembly externs; they have no
				// portable counterpart by definition.
				continue
			}
			side[fn.Name.Name] = stub{file: name, sig: sigString(fn)}
		}
	}

	for name, a := range amd {
		fb, ok := fallback[name]
		if !ok {
			t.Errorf("%s: %s has no !amd64 fallback with a body", a.file, name)
			continue
		}
		if a.sig != fb.sig {
			t.Errorf("%s: signature drift:\n  amd64    (%s): %s\n  fallback (%s): %s",
				name, a.file, a.sig, fb.file, fb.sig)
		}
		// Each pair needs a differential test naming the dispatcher —
		// the proof both paths produce identical results.
		if !regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`).MatchString(testSrc.String()) {
			t.Errorf("%s: no test in this package mentions %s — add a differential test covering both paths", a.file, name)
		}
	}
	for name, fb := range fallback {
		if _, ok := amd[name]; !ok {
			t.Errorf("%s: fallback %s has no *_amd64.go counterpart (dead portable code or missing stub)", fb.file, name)
		}
	}
}
