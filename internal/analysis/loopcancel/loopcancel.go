// Package loopcancel checks that loops driving the solver work layer
// remain cancellable.
//
// PR 5's deadline discipline rests on one cadence contract (DESIGN.md
// §7.1): every backend checks ctx at least once per unit of work — per
// annealing run, sweep, offspring, decomposition round, or batch of
// branch-and-bound nodes. The runtime pin
// (TestDeadlineDisciplineAllBackends) verifies the backends that exist
// today; this analyzer makes the contract structural, so a future
// backend's solve loop cannot silently ship without a cancellation path.
//
// The rule: inside any function that has a context in scope (a
// context.Context parameter, or a receiver carrying a context.Context
// field, as the exact solver's search state does), every outermost loop
// nest that calls into the work layer must contain cancellation evidence
// somewhere in the nest. Work calls are recognized by callee name —
// Sweep*, Anneal*, Solve*, Minimize*, Evolve*, Offspring*, Tune*,
// Optimize*, Sample* (case-insensitive) — the vocabulary of the
// sweep/offspring/node-expansion layer. Evidence is any of:
//
//   - a ctx.Err() or ctx.Done() call (on any expression of type
//     context.Context, so s.ctx.Err() counts), which also covers
//     select { case <-ctx.Done(): ... };
//   - delegation: a call passing a context.Context argument onward, since
//     the callee then owns the check at its own cadence.
//
// Functions without a reachable context are exempt: kernels below the
// cancellation cadence (pbit's sweep loops) are cancelled by their
// callers per contract. A deliberate uncancellable loop can be annotated
// `//saim:nocancel <reason>` on its function.
package loopcancel

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/ising-machines/saim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "loopcancel",
	Doc:  "solver work loops in context-bearing functions must check ctx.Err/ctx.Done or delegate the context",
	Run:  run,
}

// workPrefixes is the callee-name vocabulary of the solver work layer.
// Matching is case-insensitive so unexported helpers (annealInto,
// solveBlock) enroll alongside their exported counterparts.
var workPrefixes = []string{
	"sweep", "anneal", "solve", "minimize", "evolve", "offspring",
	"tune", "optimize", "sample",
}

func isWorkCall(call *ast.CallExpr) bool {
	// Zero-argument calls are accessors by the stack's naming convention
	// (machine.Sweeps() reads a counter; machine.Sweep(beta) does work).
	if len(call.Args) == 0 {
		return false
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	for _, p := range workPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasDirective(fd.Doc, "nocancel") {
				continue
			}
			if !hasContext(pass, fd) {
				continue
			}
			checkLoopNests(pass, fd.Body)
		}
	}
	return nil
}

// hasContext reports whether fd can reach a context.Context: through a
// parameter or through a field of its receiver's struct type.
func hasContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t, ok := pass.TypesInfo.Types[field.Type]; ok && analysis.IsContextType(t.Type) {
			return true
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			t, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			typ := t.Type
			if ptr, ok := typ.(*types.Pointer); ok {
				typ = ptr.Elem()
			}
			st, ok := typ.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if analysis.IsContextType(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

// checkLoopNests walks body, and for each *outermost* for/range loop
// decides the whole nest at once: a nest that performs work must carry
// cancellation evidence somewhere inside it. Inner loops are not judged
// separately — a per-sweep check in the outer loop already bounds the
// cadence of a bounded inner replica loop, which is exactly the
// documented contract.
func checkLoopNests(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if containsWorkCall(loop) && !containsCancelEvidence(pass, loop) {
				pass.Reportf(loop.Pos(),
					"loop calls the solver work layer but neither checks ctx.Err/ctx.Done nor passes a context onward; a deadline or cancellation would not bind here (annotate the function //saim:nocancel if this is intended)")
			}
			return false // the nest is judged as one unit
		}
		return true
	})
}

func containsWorkCall(loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWorkCall(call) {
			found = true
		}
		return !found
	})
	return found
}

func containsCancelEvidence(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// ctx.Err() / ctx.Done() on any context-typed expression.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
			if t, ok := pass.TypesInfo.Types[sel.X]; ok && analysis.IsContextType(t.Type) {
				found = true
				return false
			}
		}
		// Delegation: a context passed as an argument.
		for _, arg := range call.Args {
			if t, ok := pass.TypesInfo.Types[arg]; ok && analysis.IsContextType(t.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
