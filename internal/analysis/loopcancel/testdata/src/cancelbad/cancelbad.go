// Package cancelbad is a deliberately broken fixture: backend-style
// solve loops that drive the work layer with no cancellation path.
package cancelbad

import "context"

type machine struct{ state []int8 }

func (m *machine) Sweep(beta float64) {}

func (m *machine) Sweeps() int64 { return 0 }

type search struct {
	ctx  context.Context
	best float64
}

func (s *search) solveNode(depth int) {}

// SolveBudget runs its whole sweep budget with ctx in hand but never
// consulted: a deadline or cancellation would not bind.
func SolveBudget(ctx context.Context, m *machine, sweeps int) {
	for t := 0; t < sweeps; t++ { // want `loop calls the solver work layer`
		m.Sweep(float64(t))
	}
}

// Expand holds its context in the receiver, like the exact solver's
// search state; the field alone is not a check.
func (s *search) Expand(depths []int) {
	for _, d := range depths { // want `loop calls the solver work layer`
		s.solveNode(d)
	}
}

// Account loops over an accessor only — bookkeeping, not work — and
// must not be flagged even though the name starts with "sweep".
func Account(ctx context.Context, ms []*machine) int64 {
	total := int64(0)
	for _, m := range ms {
		total += m.Sweeps()
	}
	return total
}
