// Package cancelclean is the non-flagging fixture: every work loop
// carries a cancellation path in one of the accepted forms.
package cancelclean

import "context"

type machine struct{ state []int8 }

func (m *machine) Sweep(beta float64) {}

func (m *machine) Anneal(sweeps int) {}

type solver struct{}

func (solver) Solve(ctx context.Context, n int) error { return ctx.Err() }

// ErrCheck checks ctx.Err once per run — the canonical cadence.
func ErrCheck(ctx context.Context, m *machine, runs int) {
	for k := 0; k < runs; k++ {
		if ctx.Err() != nil {
			return
		}
		m.Anneal(1000)
	}
}

// DoneSelect uses the select form.
func DoneSelect(ctx context.Context, m *machine, runs int) {
	for k := 0; k < runs; k++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		m.Anneal(1000)
	}
}

// Delegate passes the context into the work call, which then owns the
// check at its own cadence.
func Delegate(ctx context.Context, racers []solver) {
	for _, r := range racers {
		go func() { _ = r.Solve(ctx, 10) }()
	}
}

// NestedInner does per-replica work inside a per-sweep loop; the outer
// check bounds the whole nest's cadence, so nothing is flagged.
func NestedInner(ctx context.Context, replicas []*machine, sweeps int) {
	for t := 0; t < sweeps; t++ {
		if ctx.Err() != nil {
			return
		}
		for _, m := range replicas {
			m.Sweep(float64(t))
		}
	}
}

// Uncancellable is deliberately exempted with a reason.
//
//saim:nocancel fixture: bounded two-iteration calibration loop
func Uncancellable(ctx context.Context, m *machine) {
	for k := 0; k < 2; k++ {
		m.Anneal(10)
	}
}

// NoContext has no context in scope: kernels below the cancellation
// cadence are their callers' responsibility.
func NoContext(m *machine, sweeps int) {
	for t := 0; t < sweeps; t++ {
		m.Sweep(float64(t))
	}
}
