package loopcancel

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
)

func TestFlagsUncancellableWorkLoops(t *testing.T) {
	analysistest.Run(t, Analyzer, "cancelbad")
}

func TestCleanPackagePasses(t *testing.T) {
	analysistest.Run(t, Analyzer, "cancelclean")
}
