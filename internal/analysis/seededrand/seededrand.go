// Package seededrand checks that no production code draws from the
// global math/rand source or seeds a generator from the clock.
//
// Same-seed reproducibility is a structural property of the solver
// stack: every kernel and backend draws only from the seeded
// internal/rng source (or a Source split from it), so a trajectory is a
// pure function of the seed, pinned bit-for-bit by the golden tests. A
// single rand.Intn — whose global source is shared, lock-guarded, and
// seeded per-process — or a time.Now()-seeded local source breaks that
// guarantee invisibly: results stay plausible, they just stop being
// reproducible, and the service's fingerprint-keyed result cache would
// then memoize one arbitrary trajectory.
//
// Flagged in non-test files: calls to math/rand or math/rand/v2
// top-level functions (anything drawing from the package-global source,
// plus the deprecated rand.Seed), and any rand constructor or Seed call
// whose argument derives from time.Now(). Explicitly seeded local
// sources (rand.New(rand.NewSource(42))) are allowed, though
// internal/rng remains the idiomatic choice.
package seededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/ising-machines/saim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "production code must draw randomness from internal/rng or an explicitly seeded local source, never the global math/rand or the clock",
	Run:  run,
}

// constructors are the math/rand functions that build a *local* source
// or generator rather than drawing from the global one. They are allowed
// with a deterministic seed argument.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := packageOf(pass, sel)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if !constructors[name] {
				pass.Reportf(call.Pos(),
					"call to %s.%s draws from the global rand source: draw from internal/rng (or a locally seeded Source) so same-seed trajectories stay machine-identical",
					path, name)
				return true
			}
			// Attribute a clock seed to the innermost constructor, so
			// rand.New(rand.NewSource(time.Now().UnixNano())) reports once.
			if usesClock(pass, call) && !wrapsClockConstructor(pass, call) {
				pass.Reportf(call.Pos(),
					"%s.%s seeded from the clock: a time-based seed makes trajectories irreproducible; derive the seed from the solve options instead",
					path, name)
			}
			return true
		})
	}
	return nil
}

// packageOf resolves the package a selector's base identifier names.
func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// wrapsClockConstructor reports whether an argument subtree contains
// another math/rand constructor that itself draws on the clock; that
// inner call carries the diagnostic.
func wrapsClockConstructor(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := inner.Fun.(*ast.SelectorExpr); ok && constructors[sel.Sel.Name] {
				if path, ok := packageOf(pass, sel); ok &&
					(path == "math/rand" || path == "math/rand/v2") && usesClock(pass, inner) {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// usesClock reports whether any argument subtree calls time.Now.
func usesClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := inner.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
				if path, ok := packageOf(pass, sel); ok && path == "time" {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
