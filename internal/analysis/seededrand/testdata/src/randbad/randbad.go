// Package randbad is a deliberately broken fixture: kernels drawing
// from the global math/rand source and seeding from the clock.
package randbad

import (
	"math/rand"
	"time"
)

// perturb draws from the process-global, lock-guarded source: the
// trajectory stops being a function of the solve seed.
func perturb(state []int8) {
	i := rand.Intn(len(state)) // want `call to math/rand.Intn draws from the global rand source`
	state[i] = -state[i]
	if rand.Float64() < 0.5 { // want `call to math/rand.Float64 draws from the global rand source`
		state[i] = 1
	}
}

// reseed seeds the deprecated global generator, and from the clock.
func reseed() {
	rand.Seed(time.Now().UnixNano()) // want `call to math/rand.Seed draws from the global rand source`
}

// clockSource builds a local source, but from the clock: irreproducible
// all the same.
func clockSource() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `math/rand.NewSource seeded from the clock`
}
