// Package randclean is the non-flagging fixture: explicitly seeded
// local sources, with methods on them drawing freely.
package randclean

import "math/rand"

// localSource derives a generator from the solve seed: reproducible.
func localSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// shuffle draws from a locally seeded generator — method calls on a
// *rand.Rand are not the global source.
func shuffle(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	_ = r.Intn(10)
}
