package seededrand

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
)

func TestFlagsGlobalAndClockSeededRand(t *testing.T) {
	analysistest.Run(t, Analyzer, "randbad")
}

func TestCleanPackagePasses(t *testing.T) {
	analysistest.Run(t, Analyzer, "randclean")
}
