// Package deferclose tracks releasable values from their acquisition to
// a release on every path out of the acquiring function.
//
// Values obtained from a known constructor — os.Open/OpenFile/Create,
// net.Listen/Dial/DialTimeout, time.NewTicker/NewTimer, and the WAL's
// wal.Open — hold a file descriptor or a runtime timer. The analyzer
// runs a forward may-leak dataflow over the intra-procedural CFG
// (internal/analysis/cfg): a tracked value still live when the function
// exits normally, on any path, is reported at its acquisition site.
//
// A value stops being the acquirer's problem when it:
//
//   - has its release method called or deferred (Close, or Stop for
//     tickers/timers) — anywhere, including inside a closure the
//     function installs;
//   - is returned (ownership transfers to the caller);
//   - is stored into a struct field, map, slice element, another
//     variable, or a channel (an owner with its own lifecycle now
//     holds it);
//   - is passed whole to another function (conservatively a transfer).
//
// Uses *through* the value — method calls like f.Read, field reads like
// ticker.C — do not transfer ownership: selecting on ticker.C forever
// without a Stop is still a leak.
//
// The two-value acquisition idiom is understood path-sensitively: after
// `f, err := os.Open(p)`, on the branch where `err != nil` the resource
// is nil and needs no release, so `if err != nil { return err }` is not
// a leaking path.
//
// Paths that leave by panicking are not judged. There is no suppression
// directive: a genuinely unowned resource should be handed to an owner
// or closed; the escape shapes above cover every deliberate pattern in
// the repo.
package deferclose

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/ising-machines/saim/internal/analysis"
	"github.com/ising-machines/saim/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "deferclose",
	Doc:  "values from Open/Listen/NewTicker-style constructors must reach Close/Stop on all paths or escape",
	Run:  run,
}

// closerFor classifies a callee as a tracked constructor, returning the
// release method name ("" when not tracked).
func closerFor(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch path := pkg.Path(); {
	case path == "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "CreateTemp":
			return "Close"
		}
	case path == "net":
		switch fn.Name() {
		case "Listen", "ListenTCP", "Dial", "DialTimeout", "DialTCP":
			return "Close"
		}
	case path == "time":
		switch fn.Name() {
		case "NewTicker", "NewTimer":
			return "Stop"
		}
	case strings.HasSuffix(path, "internal/wal"):
		if fn.Name() == "Open" {
			return "Close"
		}
	}
	return ""
}

// resource is one tracked acquisition.
type resource struct {
	obj    types.Object // the variable bound to the resource
	errObj types.Object // the paired error variable, when present
	pos    token.Pos
	what   string // display name of the constructor
	closer string
}

// state maps live resources (by variable object) to their acquisition.
type state map[types.Object]*resource

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
		// Closures acquiring resources are held to the same rule, as
		// their own analysis units.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	in := map[*cfg.Block]state{}
	in[g.Entry] = state{}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b].clone()
		for _, n := range b.Nodes {
			step(pass, st, n)
		}
		for i, succ := range b.Succs {
			out := st
			if dead := errOnEdge(pass, b.Branch, i); dead != nil {
				out = st.clone()
				for obj, r := range out {
					if r.errObj != nil && r.errObj == dead {
						delete(out, obj)
					}
				}
			}
			merged, changed := merge(in[succ], out)
			if changed {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}
	if est := in[g.Exit]; est != nil {
		for _, r := range est {
			pass.Reportf(r.pos,
				"%s result %s is not released on every path out of the function (defer %s.%s(), release on all paths, or hand it to an owner)",
				r.what, r.obj.Name(), r.obj.Name(), r.closer)
		}
	}
}

// errOnEdge reports the error object known non-nil on edge i of a
// branch testing `err != nil` / `err == nil`: resources paired with it
// are nil there and need no release.
func errOnEdge(pass *analysis.Pass, branch ast.Expr, edge int) types.Object {
	be, ok := branch.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	var id *ast.Ident
	switch {
	case isNil(pass, be.Y):
		id, _ = be.X.(*ast.Ident)
	case isNil(pass, be.X):
		id, _ = be.Y.(*ast.Ident)
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	// Succs[0] is the true edge of the branch.
	if (be.Op == token.NEQ && edge == 0) || (be.Op == token.EQL && edge == 1) {
		return obj
	}
	return nil
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}

func merge(dst, src state) (state, bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

// step applies one CFG node to the state.
func step(pass *analysis.Pass, st state, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			scanUses(pass, st, rhs)
		}
		if acq := acquisition(pass, n.Lhs, n.Rhs, n.Pos()); acq != nil {
			st[acq.obj] = acq
			return
		}
		if n.Tok == token.ASSIGN {
			// Overwriting a tracked variable ends its binding.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						delete(st, obj)
					}
				}
			}
		}

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					if acq := acquisition(pass, lhs, vs.Values, vs.Pos()); acq != nil {
						st[acq.obj] = acq
						continue
					}
					for _, v := range vs.Values {
						scanUses(pass, st, v)
					}
				}
			}
		}

	case *ast.DeferStmt:
		if obj := releaseTarget(pass, st, n.Call); obj != nil {
			delete(st, obj)
			return
		}
		scanUses(pass, st, n.Call)

	case *ast.RangeStmt:
		scanUses(pass, st, n.X)

	default:
		scanUses(pass, st, n)
	}
}

// scanUses walks any node, killing tracked values that are released or
// whose ownership transfers away. A bare identifier use (call argument,
// return value, stored value, channel send) is a transfer; a use
// through a selector (f.Read(), ticker.C) is not — except the release
// method itself, which counts wherever it appears, including inside a
// closure being installed.
func scanUses(pass *analysis.Pass, st state, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if obj := releaseTarget(pass, st, x); obj != nil {
				delete(st, obj)
				return false // a release call has no other operands of interest
			}
			return true
		case *ast.SelectorExpr:
			if _, ok := x.X.(*ast.Ident); ok {
				return false // use through the resource, not a transfer
			}
			return true
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
}

// releaseTarget reports the tracked object whose release-method call
// this is (x.Close() / x.Stop()), if any.
func releaseTarget(pass *analysis.Pass, st state, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if r, tracked := st[obj]; tracked && sel.Sel.Name == r.closer {
		return obj
	}
	return nil
}

// acquisition recognizes `x, err := pkg.Ctor(...)` (and the var form),
// returning the tracked resource, or nil.
func acquisition(pass *analysis.Pass, lhs []ast.Expr, rhs []ast.Expr, pos token.Pos) *resource {
	if len(rhs) != 1 || len(lhs) == 0 {
		return nil
	}
	call, ok := rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return nil
	}
	closer := closerFor(fn)
	if closer == "" {
		return nil
	}
	id, ok := lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := identObj(pass, id)
	if obj == nil {
		return nil
	}
	r := &resource{
		obj:    obj,
		pos:    pos,
		what:   fn.Pkg().Name() + "." + fn.Name(),
		closer: closer,
	}
	// Pair the trailing error result, whatever the arity: after
	// `x, ..., err := ctor(...)`, x is nil wherever err is non-nil.
	if len(lhs) >= 2 {
		if errID, ok := lhs[len(lhs)-1].(*ast.Ident); ok && errID.Name != "_" {
			if eobj := identObj(pass, errID); eobj != nil && isErrorType(eobj.Type()) {
				r.errObj = eobj
			}
		}
	}
	return r
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
