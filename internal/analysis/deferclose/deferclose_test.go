package deferclose_test

import (
	"testing"

	"github.com/ising-machines/saim/internal/analysis/analysistest"
	"github.com/ising-machines/saim/internal/analysis/deferclose"
)

func TestDeferclose(t *testing.T) {
	analysistest.Run(t, deferclose.Analyzer, "deferclose")
}
