// Broken fixtures: acquired resources that never reach their release on
// some path.
package deferclose

import (
	"os"
	"time"
)

// Opened, used, never closed.
func readAll(path string) ([]byte, error) {
	f, err := os.Open(path) // want `os\.Open result f is not released`
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	f.Read(buf)
	return buf, nil
}

// Closed on the happy path, leaked on the early return.
func readHeader(path string) ([]byte, error) {
	f, err := os.Open(path) // want `os\.Open result f is not released`
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	if _, err := f.Read(buf); err != nil {
		return nil, err // f leaks here
	}
	f.Close()
	return buf, nil
}

// The classic ticker leak: selecting on ticker.C is a use through the
// resource, not a transfer — without a Stop the runtime timer lives
// forever.
func pollOnce(work func() bool, d time.Duration) {
	ticker := time.NewTicker(d) // want `time\.NewTicker result ticker is not released`
	for {
		<-ticker.C
		if work() {
			return
		}
	}
}
