// Clean fixtures: every acquisition is released or transferred.
package deferclose

import (
	"net"
	"os"
	"time"
)

// The canonical shape: error check, then defer.
func readFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 64)
	f.Read(buf)
	return buf, nil
}

// Explicit close on all paths.
func probe(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	buf := make([]byte, 1)
	if _, err := f.Read(buf); err != nil {
		f.Close()
		return false
	}
	f.Close()
	return true
}

// Returning the resource transfers ownership to the caller.
func open(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Storing into a field hands the resource to an owner with a lifecycle.
type holder struct {
	ln net.Listener
}

func (h *holder) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	h.ln = ln
	return nil
}

// Passing the value whole to another function is a transfer.
func consume(f *os.File) {}

func openFor(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

// A ticker stopped inside the goroutine that uses it: the release
// counts wherever it appears.
type pump struct {
	stop chan struct{}
	n    int
}

func (p *pump) start(d time.Duration) {
	ticker := time.NewTicker(d)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p.n++
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop on the direct path.
func sleepByTicker(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
	t.Stop()
}
