// Package suite registers the saimvet analyzers: the static-analysis
// counterpart of the solver stack's cross-cutting runtime tests. Each
// analyzer makes one invariant structural — enforceable by `go vet`
// before any test runs — instead of depending on every future backend or
// option remembering to enroll in the corresponding test (DESIGN.md §8).
package suite

import (
	"github.com/ising-machines/saim/internal/analysis"
	"github.com/ising-machines/saim/internal/analysis/deferclose"
	"github.com/ising-machines/saim/internal/analysis/fingerprintcomplete"
	"github.com/ising-machines/saim/internal/analysis/goleak"
	"github.com/ising-machines/saim/internal/analysis/hotpathalloc"
	"github.com/ising-machines/saim/internal/analysis/lockguard"
	"github.com/ising-machines/saim/internal/analysis/loopcancel"
	"github.com/ising-machines/saim/internal/analysis/seededrand"
)

// Analyzers returns the full saimvet suite in registry order. The first
// four are PR 6's AST-level lints; lockguard, goleak, and deferclose are
// the CFG-backed concurrency analyzers (internal/analysis/cfg).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		fingerprintcomplete.Analyzer,
		hotpathalloc.Analyzer,
		loopcancel.Analyzer,
		seededrand.Analyzer,
		lockguard.Analyzer,
		goleak.Analyzer,
		deferclose.Analyzer,
	}
}
