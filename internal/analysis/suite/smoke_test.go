package suite

import (
	"path/filepath"
	"runtime"
	"testing"

	"github.com/ising-machines/saim/internal/analysis"
)

// TestRepoIsCleanUnderSuite runs every analyzer over the whole module
// and expects silence. This is the invariant CI enforces: the tree the
// analyzers were written against must itself satisfy them, so any new
// finding is either a real regression or a deliberate analyzer change —
// never pre-existing noise.
func TestRepoIsCleanUnderSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the full module; skipped in -short")
	}
	_, file, _, _ := runtime.Caller(0)
	root := filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))

	pkgs, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the module root")
	}
	diags, err := analysis.Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
