package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg mirrors the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the patterns
// and decodes the package stream. -export makes the go tool compile (or
// fetch from the build cache) export data for every listed package, which
// is what the type checker imports against — the same arrangement `go
// vet` sets up for its unit checkers.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, via the standard gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses and type-checks one package from its source files.
func typecheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// LoadPackages loads and type-checks the packages matching the patterns
// (e.g. "./...") relative to dir, which must lie inside a module.
// Packages that exist only as tests (no non-test Go files) are skipped,
// matching what `go vet` analyzes per compilation unit.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		filenames := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, name)
		}
		pkg, err := typecheck(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir loads the single package formed by the Go files of dir. It
// exists for analyzer tests: testdata fixture packages live outside the
// module's package graph (`./...` ignores testdata), so they are parsed
// directly and their imports — standard library only, by fixture
// convention — are resolved through `go list -export` run in moduleDir.
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(filenames)

	// Collect the fixture's direct imports; `go list -deps` closes over
	// the rest transitively.
	importSet := make(map[string]bool)
	tmpFset := token.NewFileSet()
	for _, name := range filenames {
		f, err := parser.ParseFile(tmpFset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for path := range importSet {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	pkg, err := typecheck(fset, filepath.Base(dir), filenames, exportImporter(fset, exports))
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}
