package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses one function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// reachable returns the set of blocks reachable from Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		work = append(work, b.Succs...)
	}
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable")
	}
	if r[g.Panic] {
		t.Fatal("panic block should be unreachable in straight-line code")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
}

func TestIfElseBothReturn(t *testing.T) {
	g := build(t, `if cond() {
	return
} else {
	return
}
unreached()`)
	// The block holding unreached() must have no predecessors.
	r := reachable(g)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "unreached" {
						if r[b] {
							t.Fatal("statement after if/else-both-return is reachable")
						}
					}
				}
			}
		}
	}
	if !r[g.Exit] {
		t.Fatal("exit not reachable")
	}
}

func TestIfBranchOrder(t *testing.T) {
	g := build(t, `if x > 0 {
	a()
}
b()`)
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Branch != nil {
			head = blk
		}
	}
	if head == nil {
		t.Fatal("no branch block found")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("branch succs = %d, want 2", len(head.Succs))
	}
	// Succs[0] is the true edge: it must contain the a() call.
	foundA := false
	for _, n := range head.Succs[0].Nodes {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "a" {
					foundA = true
				}
			}
		}
	}
	if !foundA {
		t.Fatal("Succs[0] of an if head does not hold the then-body")
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, `for i := 0; i < 10; i++ {
	work(i)
}
done()`)
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable past a bounded loop")
	}
	// There must be a cycle: some reachable block's successor is an
	// already-seen ancestor. Detect via the branch head having >1 preds.
	preds := g.Preds()
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Branch != nil {
			head = blk
		}
	}
	if head == nil || len(preds[head]) < 2 {
		t.Fatal("loop head should have >= 2 predecessors (entry + back edge)")
	}
}

func TestInfiniteForOnlyExitIsBreak(t *testing.T) {
	g := build(t, `for {
	if stop() {
		break
	}
	work()
}
done()`)
	if !reachable(g)[g.Exit] {
		t.Fatal("break out of for{} should reach exit")
	}
	// Without the break the exit would be unreachable.
	g2 := build(t, `for {
	work()
}`)
	if reachable(g2)[g2.Exit] {
		t.Fatal("for{} without break must not reach exit")
	}
}

func TestLabeledBreak(t *testing.T) {
	// The core.SolveParallelContext feed pattern.
	g := build(t, `feed:
for _, t := range tasks {
	select {
	case jobs <- t:
	case <-done:
		break feed
	}
	if failed() {
		break
	}
}
close(jobs)`)
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("labeled break did not reach exit")
	}
	// close(jobs) must be reachable.
	found := false
	for _, blk := range g.Blocks {
		if !r[blk] {
			continue
		}
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("close(jobs) unreachable after labeled break")
	}
}

func TestRangeHeadHoldsRangeStmt(t *testing.T) {
	g := build(t, `for v := range ch {
	use(v)
}`)
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
				if len(blk.Succs) != 2 {
					t.Fatalf("range head succs = %d, want 2 (body, after)", len(blk.Succs))
				}
			}
		}
	}
	if !found {
		t.Fatal("no block carries the RangeStmt")
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("range loop must reach exit (channel close)")
	}
}

func TestSelectWithoutDefaultNoDirectFallthrough(t *testing.T) {
	g := build(t, `select {
	case <-a:
		x()
	case b <- 1:
		y()
	}
done()`)
	// done() sits in the select's join block: every path to it must pass
	// through a clause, so it has exactly 2 predecessors (one per clause)
	// and none of them is the select head itself.
	preds := g.Preds()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "done" {
						if len(preds[blk]) != 2 {
							t.Fatalf("done() preds = %d, want 2 (one per clause)", len(preds[blk]))
						}
					}
				}
			}
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `switch v {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
after()`)
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("switch did not reach exit")
	}
	// Block holding b() must have 2 preds: the head and the fallthrough.
	preds := g.Preds()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "b" {
						if len(preds[blk]) != 2 {
							t.Fatalf("fallthrough target preds = %d, want 2", len(preds[blk]))
						}
					}
				}
			}
		}
	}
}

func TestSwitchNoDefaultFallsThroughHead(t *testing.T) {
	g := build(t, `switch v {
case 1:
	a()
}
after()`)
	preds := g.Preds()
	// after() is reachable both through case 1 and directly from the head.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
						if len(preds[blk]) != 2 {
							t.Fatalf("switch join preds = %d, want 2 (head + case)", len(preds[blk]))
						}
					}
				}
			}
		}
	}
}

func TestPanicReachesPanicBlock(t *testing.T) {
	g := build(t, `if bad() {
	panic("boom")
}
ok()`)
	r := reachable(g)
	if !r[g.Panic] {
		t.Fatal("panic block unreachable")
	}
	if !r[g.Exit] {
		t.Fatal("non-panicking path must still reach exit")
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := build(t, `if bad() {
	os.Exit(1)
	never()
}
ok()`)
	r := reachable(g)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "never" {
						if r[blk] {
							t.Fatal("code after os.Exit is reachable")
						}
					}
				}
			}
		}
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := build(t, `i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	if i > 100 {
		goto out
	}
	i = 0
out:
	use(i)`)
	if !reachable(g)[g.Exit] {
		t.Fatal("goto graph did not reach exit")
	}
}

func TestTypeSwitch(t *testing.T) {
	g := build(t, `switch x := v.(type) {
case int:
	a(x)
case string:
	b(x)
}
after()`)
	if !reachable(g)[g.Exit] {
		t.Fatal("type switch did not reach exit")
	}
}

func TestContinueTargetsPost(t *testing.T) {
	g := build(t, `for i := 0; i < n; i++ {
	if skip(i) {
		continue
	}
	work(i)
}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("loop with continue did not reach exit")
	}
	// The post block (i++) must have two preds: body fall-through and
	// the continue edge.
	preds := g.Preds()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.IncDecStmt); ok {
				if len(preds[blk]) != 2 {
					t.Fatalf("post block preds = %d, want 2", len(preds[blk]))
				}
			}
		}
	}
}

func TestDeferAndGoAreNodes(t *testing.T) {
	g := build(t, `defer mu.Unlock()
go worker()
x := 1
_ = x`)
	var nDefer, nGo int
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch n.(type) {
			case *ast.DeferStmt:
				nDefer++
			case *ast.GoStmt:
				nGo++
			}
		}
	}
	if nDefer != 1 || nGo != 1 {
		t.Fatalf("defer=%d go=%d, want 1 and 1", nDefer, nGo)
	}
}
