// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies, for the flow-sensitive saimvet analyzers (lockguard,
// deferclose). Like the rest of internal/analysis it is stdlib-only: it
// reimplements the small slice of golang.org/x/tools/go/cfg the suite
// needs, with the same basic-block shape.
//
// A Graph has one synthetic Entry, one synthetic Exit (reached by every
// return and by falling off the end of the body), and one synthetic
// Panic block (reached by panic(...), os.Exit, log.Fatal*, runtime.Goexit
// and t.Fatal* calls). Analyzers that check "on all paths out of the
// function" properties look at Exit only: paths that leave by panicking
// unwind through deferred calls and are judged by different rules (a
// mutex held at a panic is released by its deferred Unlock, for
// example).
//
// Each basic Block carries the statements and control expressions that
// execute in it, in order, as []ast.Node:
//
//   - plain statements (assignments, expression statements, defer, go,
//     send, incdec, decl) appear as themselves;
//   - an if/for condition or switch tag appears as the bare expression,
//     and the block's Branch field is set: Succs[0] is the true edge,
//     Succs[1] the false edge;
//   - a range loop's head block carries the *ast.RangeStmt itself —
//     consumers must only inspect its X (the ranged expression), never
//     recurse into Key/Value/Body, which live in successor blocks;
//   - a select clause's block starts with the clause's Comm statement
//     (the send or receive), so channel operations under a lock are
//     visible to the dataflow exactly where they execute.
//
// The builder understands labeled break/continue (the `feed:` /
// `break feed` pattern in core.SolveParallelContext), goto, fallthrough,
// and treats `select {}` and terminating calls as having no normal
// successor. Unreachable code after a terminator lands in fresh blocks
// with no predecessors, which a worklist seeded at Entry never visits.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: straight-line nodes followed by 0+
// successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Branch, when non-nil, is the condition expression that decides the
	// successor: Succs[0] is taken when Branch is true, Succs[1] when
	// false. It is set for if statements and for loops with conditions.
	Branch ast.Expr
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // every return / fall-off-end reaches here
	Panic  *Block // every panic / os.Exit-style terminator reaches here
	Blocks []*Block
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*Block),
		gotos:  make(map[string][]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.g.Panic = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// Preds returns the predecessor map of g (not stored on Blocks because
// the analyzers' forward dataflow only follows Succs).
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label string
	brk   *Block // break target (the block after the construct)
	cont  *Block // continue target; nil for switch/select frames
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*Block   // label name -> block at the labeled statement
	gotos  map[string][]*Block // pending forward gotos awaiting their label

	// labelNext carries a label down to the immediately following
	// loop/switch/select so `break label` / `continue label` resolve.
	labelNext string

	// fallNext is the next case clause's block while building a switch
	// clause body, the target of a `fallthrough` statement.
	fallNext *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// terminate ends the current block with an edge to `to` (Exit, Panic, or
// a branch target) and starts a fresh unreachable block for whatever
// statements follow.
func (b *builder) terminate(to *Block) {
	if to != nil {
		b.edge(b.cur, to)
	}
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label (set by a LabeledStmt wrapping
// this construct).
func (b *builder) takeLabel() string {
	l := b.labelNext
	b.labelNext = ""
	return l
}

// findFrame returns the innermost frame matching label (or the innermost
// breakable/continuable frame when label is empty). needCont restricts
// the search to loop frames.
func (b *builder) findFrame(label string, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.labelNext = ""
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block at the label so gotos have a join point.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		for _, from := range b.gotos[s.Label.Name] {
			b.edge(from, target)
		}
		delete(b.gotos, s.Label.Name)
		b.labelNext = s.Label.Name
		b.stmt(s.Stmt)
		b.labelNext = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.terminate(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findFrame(label, false); f != nil {
				b.terminate(f.brk)
			} else {
				b.terminate(nil)
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findFrame(label, true); f != nil {
				b.terminate(f.cont)
			} else {
				b.terminate(nil)
			}
		case token.GOTO:
			name := s.Label.Name
			if target, ok := b.labels[name]; ok {
				b.terminate(target)
			} else {
				from := b.cur
				b.gotos[name] = append(b.gotos[name], from)
				b.terminate(nil)
			}
		case token.FALLTHROUGH:
			b.terminate(b.fallNext)
		}

	case *ast.IfStmt:
		b.labelNext = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		b.cur.Branch = s.Cond
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB) // Succs[0]: condition true
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			b.edge(head, elseB) // Succs[1]: condition false
		} else {
			b.edge(head, after)
		}
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Branch = s.Cond
			b.edge(head, body)  // true
			b.edge(head, after) // false
		} else {
			b.edge(head, body) // for {}: only exit is break/return
		}
		cont := head
		var postB *Block
		if s.Post != nil {
			postB = b.newBlock()
			cont = postB
		}
		b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		if postB != nil {
			b.cur = postB
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		// The head carries the RangeStmt itself; consumers inspect only
		// its X (see the package comment).
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(label, s.Body, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: after})
		anyClause := false
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			anyClause = true
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if clause.Comm != nil {
				b.stmt(clause.Comm)
			}
			b.stmtList(clause.Body)
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !anyClause {
			// select {} blocks forever: no normal successor.
			b.edge(head, b.g.Panic)
		}
		b.cur = after

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.terminate(b.g.Panic)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, DeferStmt, GoStmt, IncDecStmt, SendStmt,
		// and anything else executes straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchBody builds the clause structure shared by value and type
// switches. assign, for a type switch, is the `x := y.(type)` statement,
// placed in the head block.
func (b *builder) switchBody(label string, body *ast.BlockStmt, assign ast.Stmt) {
	if assign != nil {
		b.cur.Nodes = append(b.cur.Nodes, assign)
	}
	head := b.cur
	after := b.newBlock()

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	// Pre-create clause blocks so fallthrough can target the next one.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if clause.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}

	b.frames = append(b.frames, frame{label: label, brk: after})
	savedFall := b.fallNext
	for i, clause := range clauses {
		b.cur = blocks[i]
		for _, e := range clause.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		if i+1 < len(blocks) {
			b.fallNext = blocks[i+1]
		} else {
			b.fallNext = after
		}
		b.stmtList(clause.Body)
		b.edge(b.cur, after)
	}
	b.fallNext = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// isTerminatingCall recognizes calls that never return normally. It is
// syntactic (no type information) on purpose: the CFG is built before an
// analyzer decides what to resolve, and the names below are never
// shadowed in this codebase's style.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		x, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case x.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case x.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		case x.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "FailNow" || fun.Sel.Name == "Skip" || fun.Sel.Name == "Skipf" || fun.Sel.Name == "SkipNow":
			// t.Fatal / b.Fatalf / t.Skip in tests: treats *testing.T
			// helpers by name, which is the convention in this repo.
			return x.Name == "t" || x.Name == "b" || x.Name == "tb"
		}
	}
	return false
}
