package constraint

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

func TestLinearResidualAndSatisfied(t *testing.T) {
	c := Linear{A: vecmat.Vec{2, 3}, Sense: LE, B: 4}
	if got := c.Residual(ising.Bits{1, 1}); got != 1 {
		t.Fatalf("residual = %v", got)
	}
	if c.Satisfied(ising.Bits{1, 1}, 0) {
		t.Fatal("2+3 <= 4 should be violated")
	}
	if !c.Satisfied(ising.Bits{1, 0}, 0) {
		t.Fatal("2 <= 4 should hold")
	}
	eq := Linear{A: vecmat.Vec{1, 1}, Sense: EQ, B: 1}
	if !eq.Satisfied(ising.Bits{0, 1}, 0) || eq.Satisfied(ising.Bits{1, 1}, 0) {
		t.Fatal("equality sense broken")
	}
}

func TestSystemFeasibleAndViolation(t *testing.T) {
	s := NewSystem(2)
	s.Add(vecmat.Vec{1, 1}, LE, 1)
	s.Add(vecmat.Vec{1, 0}, EQ, 1)
	if !s.Feasible(ising.Bits{1, 0}, 0) {
		t.Fatal("x=(1,0) should be feasible")
	}
	if s.Feasible(ising.Bits{1, 1}, 0) {
		t.Fatal("x=(1,1) violates first constraint")
	}
	v := s.Violation(ising.Bits{1, 1})
	if v[0] != 1 || v[1] != 0 {
		t.Fatalf("violation = %v", v)
	}
	// LE residual below zero clamps to 0.
	v = s.Violation(ising.Bits{0, 0})
	if v[0] != 0 || v[1] != -1 {
		t.Fatalf("violation = %v", v)
	}
}

func TestAddRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted wrong-length coefficients")
		}
	}()
	NewSystem(2).Add(vecmat.Vec{1}, LE, 1)
}

func TestSlackCoeffsBinaryMatchesPaperFormula(t *testing.T) {
	// Q = floor(log2(b)+1): b=42 ⇒ Q=6 with coefficients 1..32.
	cs := SlackCoeffs(42, Binary)
	if len(cs) != 6 {
		t.Fatalf("Q = %d, want 6", len(cs))
	}
	for i, c := range cs {
		if c != float64(int(1)<<i) {
			t.Fatalf("coeff %d = %v", i, c)
		}
	}
	if MaxSlackValue(cs) != 63 {
		t.Fatalf("max slack = %v", MaxSlackValue(cs))
	}
}

func TestSlackCoeffsBinarySizes(t *testing.T) {
	cases := []struct {
		b    float64
		bits int
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {100, 7},
	}
	for _, c := range cases {
		if got := len(SlackCoeffs(c.b, Binary)); got != c.bits {
			t.Fatalf("b=%v bits=%d, want %d", c.b, got, c.bits)
		}
	}
}

func TestSlackCoeffsBoundedExactRange(t *testing.T) {
	f := func(raw uint16) bool {
		b := float64(raw%500) + 1
		cs := SlackCoeffs(b, Bounded)
		if MaxSlackValue(cs) != b {
			return false
		}
		// Every value in [0,b] must be representable: check via subset-sum
		// DP over the coefficients.
		reach := make([]bool, int(b)+1)
		reach[0] = true
		for _, c := range cs {
			ci := int(c)
			for v := len(reach) - 1; v >= ci; v-- {
				if reach[v-ci] {
					reach[v] = true
				}
			}
		}
		for v := range reach {
			if !reach[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSlackCoeffsUnary(t *testing.T) {
	cs := SlackCoeffs(5, Unary)
	if len(cs) != 5 || MaxSlackValue(cs) != 5 {
		t.Fatalf("unary coeffs = %v", cs)
	}
}

func TestSlackCoeffsZeroBound(t *testing.T) {
	for _, enc := range []SlackEncoding{Binary, Bounded, Unary} {
		if cs := SlackCoeffs(0, enc); cs != nil {
			t.Fatalf("%v: zero bound produced %v", enc, cs)
		}
	}
}

func TestExtendEqualityGetsNoSlack(t *testing.T) {
	s := NewSystem(2)
	s.Add(vecmat.Vec{1, 1}, EQ, 1)
	e := s.Extend(Binary)
	if e.NTotal != 2 || e.SlackBitsFor(0) != 0 {
		t.Fatalf("equality gained slack: NTotal=%d bits=%d", e.NTotal, e.SlackBitsFor(0))
	}
}

func TestExtendResiduals(t *testing.T) {
	s := NewSystem(2)
	s.Add(vecmat.Vec{2, 3}, LE, 4) // binary slack: 1,2,4 (Q=3)
	e := s.Extend(Binary)
	if e.NTotal != 2+3 {
		t.Fatalf("NTotal = %d", e.NTotal)
	}
	// x = (1,0), slack = 2 ⇒ residual 2+2-4 = 0.
	x := ising.Bits{1, 0, 0, 1, 0}
	g := e.Residuals(x)
	if g[0] != 0 {
		t.Fatalf("residual = %v", g[0])
	}
	// Original feasibility ignores slack bits.
	if !e.OrigFeasible(x, 0) {
		t.Fatal("x should be original-feasible")
	}
}

func TestExtendNormalizePreservesFeasibleSet(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		n := src.IntRange(2, 6)
		s := NewSystem(n)
		a := vecmat.NewVec(n)
		for i := range a {
			a[i] = float64(src.IntRange(1, 20))
		}
		b := float64(src.IntRange(5, 40))
		s.Add(a, LE, b)
		e := s.Extend(Binary)
		x := make(ising.Bits, e.NTotal)
		for i := range x {
			if src.Bool(0.5) {
				x[i] = 1
			}
		}
		before := e.Residuals(x)
		scale := e.Normalize()
		after := e.Residuals(x)
		for i := range before {
			if math.Abs(after[i]-before[i]*scale) > 1e-9 {
				t.Fatalf("Normalize changed residual structure: %v vs %v·%v", after[i], before[i], scale)
			}
		}
	}
}

func TestNormalizeUnitCoefficient(t *testing.T) {
	s := NewSystem(2)
	s.Add(vecmat.Vec{10, 20}, LE, 40)
	e := s.Extend(Binary)
	e.Normalize()
	m := e.B.MaxAbs()
	for _, row := range e.Rows {
		if rm := row.MaxAbs(); rm > m {
			m = rm
		}
	}
	if math.Abs(m-1) > 1e-12 {
		t.Fatalf("max coefficient after Normalize = %v", m)
	}
}

func TestCompleteSlacksZeroesResidualWhenRepresentable(t *testing.T) {
	src := rng.New(9)
	f := func(raw uint8) bool {
		n := int(raw%5) + 2
		s := NewSystem(n)
		a := vecmat.NewVec(n)
		for i := range a {
			a[i] = float64(src.IntRange(1, 9))
		}
		b := float64(src.IntRange(10, 30))
		s.Add(a, LE, b)
		e := s.Extend(Bounded) // bounded: every value in [0,b] representable
		x := make(ising.Bits, e.NTotal)
		// Random feasible decision assignment.
		for i := 0; i < n; i++ {
			if src.Bool(0.4) {
				x[i] = 1
			}
		}
		if !s.Feasible(x[:n], 0) {
			return true // skip infeasible draws
		}
		e.CompleteSlacks(x)
		g := e.Residuals(x)
		return math.Abs(g[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSenseAndEncodingStrings(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" {
		t.Fatal("Sense strings wrong")
	}
	if Binary.String() != "binary" || Bounded.String() != "bounded" || Unary.String() != "unary" {
		t.Fatal("encoding strings wrong")
	}
}

func TestExtendMultipleConstraintsSpans(t *testing.T) {
	s := NewSystem(3)
	s.Add(vecmat.Vec{1, 1, 1}, LE, 3) // 2 bits (Q=floor(log2 3)+1=2)
	s.Add(vecmat.Vec{1, 2, 3}, LE, 7) // 3 bits
	e := s.Extend(Binary)
	if e.SlackBitsFor(0) != 2 || e.SlackBitsFor(1) != 3 {
		t.Fatalf("spans = %v", e.SlackSpan)
	}
	if e.NTotal != 3+5 {
		t.Fatalf("NTotal = %d", e.NTotal)
	}
	// Slack columns must not overlap.
	if e.SlackSpan[0][1] != e.SlackSpan[1][0] {
		t.Fatalf("slack spans overlap: %v", e.SlackSpan)
	}
}
