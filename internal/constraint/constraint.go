// Package constraint models the linear constraint sets that the SAIM
// pipeline supports, and the slack-variable encodings that turn inequality
// constraints into the equality constraints g(x) = 0 an Ising machine can
// penalize.
//
// A System holds M linear constraints over N binary variables, each
// aᵀx ≤ b, aᵀx = b, or aᵀx ≥ b. Extend converts every inequality into an
// equality aᵀx ± Σ_q c_q s_q = b by appending slack bits s_q (surplus bits
// with negated coefficients for ≥ rows) with coefficients c_q given by a
// SlackEncoding:
//
//   - Binary: c = (1, 2, 4, …, 2^(Q-1)) with Q = floor(log2(b)+1), exactly
//     the paper's encoding (Section IV.A). Its range [0, 2^Q−1] can exceed
//     b, which keeps QUBO coefficients small but admits slack overshoot.
//   - Bounded: c = (1, 2, …, 2^(q-1), r) with r = b − (2^q−1) chosen so the
//     representable range is exactly [0, b]. This is the coefficient-bounded
//     flavour of the hybrid encodings studied for HE-IM [15].
//   - Unary: c = (1, 1, …, 1), b ones. Largest variable count, smallest
//     coefficients; included for encoding ablations.
package constraint

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Sense distinguishes inequality from equality constraints.
type Sense int

const (
	// LE is aᵀx ≤ b.
	LE Sense = iota
	// EQ is aᵀx = b.
	EQ
	// GE is aᵀx ≥ b. Extend lowers it by negation: the surplus
	// s = aᵀx − b ∈ [0, Σa − b] is binary-encoded like an LE slack and
	// enters the equality row with negated coefficients, aᵀx − Σc_q s_q = b.
	GE
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Linear is a single linear constraint aᵀx (≤ or =) b over binary x.
type Linear struct {
	A     vecmat.Vec
	Sense Sense
	B     float64
}

// Residual returns aᵀx − b.
func (l Linear) Residual(x ising.Bits) float64 {
	s := -l.B
	for i, xi := range x {
		if xi != 0 {
			s += l.A[i]
		}
	}
	return s
}

// Satisfied reports whether x satisfies the constraint within tol.
func (l Linear) Satisfied(x ising.Bits, tol float64) bool {
	r := l.Residual(x)
	switch l.Sense {
	case LE:
		return r <= tol
	case GE:
		return r >= -tol
	default:
		return math.Abs(r) <= tol
	}
}

// System is a set of linear constraints over n binary variables.
type System struct {
	N    int
	Cons []Linear
}

// NewSystem returns an empty constraint system over n variables.
func NewSystem(n int) *System { return &System{N: n} }

// Add appends a constraint. The coefficient vector must have length N.
func (s *System) Add(a vecmat.Vec, sense Sense, b float64) {
	if len(a) != s.N {
		panic(fmt.Sprintf("constraint: coefficient length %d, want %d", len(a), s.N))
	}
	s.Cons = append(s.Cons, Linear{A: a.Clone(), Sense: sense, B: b})
}

// M returns the number of constraints.
func (s *System) M() int { return len(s.Cons) }

// Feasible reports whether x satisfies every constraint within tol.
func (s *System) Feasible(x ising.Bits, tol float64) bool {
	for _, c := range s.Cons {
		if !c.Satisfied(x, tol) {
			return false
		}
	}
	return true
}

// Violation returns the vector of residuals (aᵀx−b per constraint), with
// inequality residuals clamped at zero on their satisfied side: ≤ rows
// clamp negative residuals (only excess violates), ≥ rows clamp positive
// residuals (only deficit violates, reported as a negative residual).
func (s *System) Violation(x ising.Bits) vecmat.Vec {
	out := vecmat.NewVec(len(s.Cons))
	for i, c := range s.Cons {
		r := c.Residual(x)
		if c.Sense == LE && r < 0 {
			r = 0
		}
		if c.Sense == GE && r > 0 {
			r = 0
		}
		out[i] = r
	}
	return out
}

// SlackEncoding selects how inequality slacks are decomposed into bits.
type SlackEncoding int

const (
	// Binary is the paper's power-of-two decomposition.
	Binary SlackEncoding = iota
	// Bounded is the exact-range power-of-two + remainder decomposition.
	Bounded
	// Unary uses b unit-weight bits.
	Unary
)

// String implements fmt.Stringer.
func (e SlackEncoding) String() string {
	switch e {
	case Binary:
		return "binary"
	case Bounded:
		return "bounded"
	case Unary:
		return "unary"
	default:
		return fmt.Sprintf("SlackEncoding(%d)", int(e))
	}
}

// SlackCoeffs returns the slack-bit coefficients for a slack variable with
// integer bound b ≥ 0 under the given encoding. A zero bound yields no bits.
func SlackCoeffs(b float64, enc SlackEncoding) []float64 {
	bi := int(math.Floor(b))
	if bi <= 0 {
		return nil
	}
	switch enc {
	case Binary:
		// Q = floor(log2(b) + 1) bits: 1, 2, ..., 2^(Q-1).
		q := int(math.Floor(math.Log2(float64(bi)))) + 1
		out := make([]float64, q)
		for i := range out {
			out[i] = float64(int(1) << i)
		}
		return out
	case Bounded:
		// Powers of two while the running range stays below b, then one
		// remainder coefficient so max representable value is exactly b.
		var out []float64
		covered := 0
		next := 1
		for covered+next <= bi-1 || (covered == 0 && next <= bi) {
			if covered+next > bi {
				break
			}
			out = append(out, float64(next))
			covered += next
			next <<= 1
		}
		if covered < bi {
			out = append(out, float64(bi-covered))
		}
		return out
	case Unary:
		out := make([]float64, bi)
		for i := range out {
			out[i] = 1
		}
		return out
	default:
		panic("constraint: unknown slack encoding")
	}
}

// surplusRange returns the largest surplus aᵀx − b a GE constraint can
// attain over binary x (negative coefficients contribute nothing to the
// maximum), the value range its surplus bits must cover.
func surplusRange(c Linear) float64 {
	s := -c.B
	for _, a := range c.A {
		if a > 0 {
			s += a
		}
	}
	if s < 0 {
		return 0
	}
	return s
}

// MaxSlackValue returns the largest value representable by the coefficient
// set (all bits on).
func MaxSlackValue(coeffs []float64) float64 {
	s := 0.0
	for _, c := range coeffs {
		s += c
	}
	return s
}

// Extended is a constraint system in pure equality form over the original
// variables plus appended slack bits: for every row, Aᵀx_ext = B.
type Extended struct {
	// NOrig is the number of original (decision) variables; slack bits
	// occupy columns [NOrig, NTotal).
	NOrig int
	// NTotal is the total variable count including slack bits.
	NTotal int
	// Rows holds one coefficient vector of length NTotal per constraint.
	Rows []vecmat.Vec
	// B is the right-hand side per constraint.
	B vecmat.Vec
	// SlackSpan[i] = [start, end) column range of constraint i's slack
	// bits (start == end for native equalities).
	SlackSpan [][2]int
	// Orig is the inequality/equality system this was derived from.
	Orig *System
}

// Extend converts s into equality form using the given slack encoding.
// LE rows gain slack bits with positive coefficients covering [0, b]; GE
// rows gain surplus bits with negated coefficients covering [0, Σa − b]
// (the negation lowering: aᵀx − Σc_q s_q = b); EQ rows gain no bits.
func (s *System) Extend(enc SlackEncoding) *Extended {
	total := s.N
	spans := make([][2]int, len(s.Cons))
	coeffs := make([][]float64, len(s.Cons))
	for i, c := range s.Cons {
		switch c.Sense {
		case LE:
			cs := SlackCoeffs(c.B, enc)
			coeffs[i] = cs
			spans[i] = [2]int{total, total + len(cs)}
			total += len(cs)
		case GE:
			cs := SlackCoeffs(surplusRange(c), enc)
			for k := range cs {
				cs[k] = -cs[k]
			}
			coeffs[i] = cs
			spans[i] = [2]int{total, total + len(cs)}
			total += len(cs)
		default:
			spans[i] = [2]int{total, total}
		}
	}
	ext := &Extended{
		NOrig:     s.N,
		NTotal:    total,
		B:         vecmat.NewVec(len(s.Cons)),
		SlackSpan: spans,
		Orig:      s,
	}
	for i, c := range s.Cons {
		row := vecmat.NewVec(total)
		copy(row, c.A)
		for k, cv := range coeffs[i] {
			row[spans[i][0]+k] = cv
		}
		ext.Rows = append(ext.Rows, row)
		ext.B[i] = c.B
	}
	return ext
}

// M returns the number of constraints.
func (e *Extended) M() int { return len(e.Rows) }

// Residuals returns g(x) = A·x − B for an extended configuration.
func (e *Extended) Residuals(x ising.Bits) vecmat.Vec {
	g := vecmat.NewVec(len(e.Rows))
	e.ResidualsInto(g, x)
	return g
}

// ResidualsInto writes g(x) = A·x − B into the caller-owned dst (length
// M), the allocation-free form of Residuals used by the solve hot loop.
func (e *Extended) ResidualsInto(dst vecmat.Vec, x ising.Bits) {
	if len(x) != e.NTotal {
		panic("constraint: Residuals dimension mismatch")
	}
	if len(dst) != len(e.Rows) {
		panic("constraint: ResidualsInto dimension mismatch")
	}
	for i, row := range e.Rows {
		s := -e.B[i]
		for j, xj := range x {
			if xj != 0 {
				s += row[j]
			}
		}
		dst[i] = s
	}
}

// OrigFeasible checks the *original* (inequality) constraints on the leading
// NOrig bits of an extended configuration — this is how the paper decides
// whether a measured sample is feasible, independent of the slack bits.
func (e *Extended) OrigFeasible(x ising.Bits, tol float64) bool {
	return e.Orig.Feasible(x[:e.NOrig], tol)
}

// Normalize divides all rows and right-hand sides by the largest absolute
// coefficient max(|A|, |B|) so the same β-schedule works across instances
// (paper Section IV.A normalizes A and b this way). It returns the scale
// factor applied. Feasible sets are unchanged.
func (e *Extended) Normalize() float64 {
	m := e.B.MaxAbs()
	for _, row := range e.Rows {
		if rm := row.MaxAbs(); rm > m {
			m = rm
		}
	}
	if m == 0 {
		return 1
	}
	inv := 1 / m
	for _, row := range e.Rows {
		row.Scale(inv)
	}
	e.B.Scale(inv)
	return inv
}

// SlackBitsFor returns the number of slack bits attached to constraint i.
func (e *Extended) SlackBitsFor(i int) int {
	return e.SlackSpan[i][1] - e.SlackSpan[i][0]
}

// CompleteSlacks sets the slack bits of x (in place) to greedily absorb any
// remaining capacity (LE) or surplus (GE) of satisfied inequality
// constraints. It is used when seeding the machine with known-feasible
// decision assignments: a feasible x over the original variables extends to
// an exactly-feasible extended configuration when each residual can be
// represented by its slack bits.
func (e *Extended) CompleteSlacks(x ising.Bits) {
	if len(x) != e.NTotal {
		panic("constraint: CompleteSlacks dimension mismatch")
	}
	for i, row := range e.Rows {
		span := e.SlackSpan[i]
		if span[0] == span[1] {
			continue
		}
		// Remaining capacity (or surplus) from the decision bits only.
		used := 0.0
		for j := 0; j < e.NOrig; j++ {
			if x[j] != 0 {
				used += row[j]
			}
		}
		remaining := e.B[i] - used
		if e.Orig.Cons[i].Sense == GE {
			// GE surplus bits carry negated coefficients: the row needs
			// Σ|row_k|·s_k = used − B to close the equality.
			remaining = -remaining
		}
		// Greedy fit from the largest slack coefficient down (slack columns
		// are emitted in increasing coefficient magnitude).
		for k := span[1] - 1; k >= span[0]; k-- {
			x[k] = 0
			if c := math.Abs(row[k]); c <= remaining+1e-12 {
				x[k] = 1
				remaining -= c
			}
		}
	}
}
