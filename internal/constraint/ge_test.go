package constraint

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/vecmat"
)

// TestGEExtendLowersByNegation checks the surplus encoding: a ≥ row gains
// binary surplus bits with negated coefficients covering [0, Σa − b], and
// every feasible decision assignment extends (via CompleteSlacks) to an
// exact equality.
func TestGEExtendLowersByNegation(t *testing.T) {
	sys := NewSystem(3)
	sys.Add(vecmat.Vec{2, 3, 4}, GE, 3)
	ext := sys.Extend(Binary)

	// Surplus range is 2+3+4−3 = 6 → Q = 3 bits (1, 2, 4), negated.
	if got := ext.SlackBitsFor(0); got != 3 {
		t.Fatalf("surplus bits = %d, want 3", got)
	}
	span := ext.SlackSpan[0]
	wantCoeffs := []float64{-1, -2, -4}
	for k := span[0]; k < span[1]; k++ {
		if ext.Rows[0][k] != wantCoeffs[k-span[0]] {
			t.Fatalf("surplus coeff %d = %v, want %v", k-span[0], ext.Rows[0][k], wantCoeffs[k-span[0]])
		}
	}

	// Every GE-feasible decision assignment closes to equality.
	for mask := 0; mask < 8; mask++ {
		x := make(ising.Bits, ext.NTotal)
		lhs := 0.0
		coeffs := []float64{2, 3, 4}
		for i := 0; i < 3; i++ {
			x[i] = int8(mask >> i & 1)
			lhs += coeffs[i] * float64(x[i])
		}
		feasible := lhs >= 3
		if sys.Feasible(x[:3], 1e-9) != feasible {
			t.Fatalf("mask %d: Feasible mismatch", mask)
		}
		if !feasible {
			continue
		}
		ext.CompleteSlacks(x)
		g := ext.Residuals(x)
		if math.Abs(g[0]) > 1e-9 {
			t.Fatalf("mask %d: residual %v after CompleteSlacks, want 0", mask, g[0])
		}
		if !ext.OrigFeasible(x, 1e-9) {
			t.Fatalf("mask %d: extended configuration lost original feasibility", mask)
		}
	}
}

// TestGEViolationClampsDeficitOnly pins the Violation sign convention for
// ≥ rows: surplus clamps to zero, deficit reports negative.
func TestGEViolationClampsDeficitOnly(t *testing.T) {
	sys := NewSystem(2)
	sys.Add(vecmat.Vec{1, 1}, GE, 1)
	if v := sys.Violation(ising.Bits{1, 1})[0]; v != 0 {
		t.Fatalf("surplus violation %v, want 0", v)
	}
	if v := sys.Violation(ising.Bits{0, 0})[0]; v != -1 {
		t.Fatalf("deficit violation %v, want -1", v)
	}
}

// TestSenseStringGE covers the new stringer case.
func TestSenseStringGE(t *testing.T) {
	if GE.String() != ">=" {
		t.Fatalf("GE.String() = %q", GE.String())
	}
}
