package core

import (
	"testing"
)

func TestSolveParallelMatchesSingleSemantics(t *testing.T) {
	p, opt := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	res, err := SolveParallel(p, Options{
		Iterations: 60, SweepsPerRun: 100, Eta: 0.5, Seed: 3,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible solution across replicas")
	}
	if res.BestCost != opt {
		t.Fatalf("BestCost = %v, want %v", res.BestCost, opt)
	}
	if res.Iterations != 4*60 {
		t.Fatalf("Iterations = %d", res.Iterations)
	}
	if res.TotalSweeps != 4*60*100 {
		t.Fatalf("TotalSweeps = %d", res.TotalSweeps)
	}
	if !p.Ext.Orig.Feasible(res.Best, 1e-9) {
		t.Fatal("merged best infeasible")
	}
}

func TestSolveParallelDeterministic(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	run := func() *Result {
		r, err := SolveParallel(p, Options{Iterations: 25, SweepsPerRun: 60, Eta: 0.5, Seed: 9}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost || a.FeasibleCount != b.FeasibleCount {
		t.Fatal("same seed, different merged results")
	}
}

func TestSolveParallelBeatsOrMatchesSingle(t *testing.T) {
	p, _ := knapsackProblem(
		[]float64{6, 5, 8, 9, 6, 7, 3}, []float64{2, 3, 6, 7, 5, 9, 4}, 15)
	single, err := Solve(p, Options{Iterations: 40, SweepsPerRun: 100, Eta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SolveParallel(p, Options{Iterations: 40, SweepsPerRun: 100, Eta: 0.5, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Best == nil {
		t.Fatal("parallel found nothing")
	}
	if single.Best != nil && multi.BestCost > single.BestCost {
		t.Fatalf("4 replicas (%v) worse than replica-compatible single (%v)", multi.BestCost, single.BestCost)
	}
}

func TestSolveParallelValidation(t *testing.T) {
	p, _ := knapsackProblem([]float64{1}, []float64{1}, 1)
	if _, err := SolveParallel(p, Options{}, 0); err == nil {
		t.Fatal("accepted zero replicas")
	}
	if _, err := SolveParallel(&Problem{}, Options{}, 2); err == nil {
		t.Fatal("accepted invalid problem")
	}
}

func TestSolveParallelKeepsFirstTrace(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4}, []float64{2, 3}, 4)
	tr := &Trace{}
	if _, err := SolveParallel(p, Options{
		Iterations: 10, SweepsPerRun: 20, Eta: 0.5, Seed: 2, Trace: tr,
	}, 3); err != nil {
		t.Fatal(err)
	}
	if len(tr.Cost) != 10 {
		t.Fatalf("trace length %d, want one replica's 10", len(tr.Cost))
	}
}
