package core

import (
	"math"
	"sync"
	"testing"
)

func TestSolveParallelMatchesSingleSemantics(t *testing.T) {
	p, opt := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	res, err := SolveParallel(p, Options{
		Iterations: 60, SweepsPerRun: 100, Eta: 0.5, Seed: 3,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible solution across replicas")
	}
	if res.BestCost != opt {
		t.Fatalf("BestCost = %v, want %v", res.BestCost, opt)
	}
	if res.Iterations != 4*60 {
		t.Fatalf("Iterations = %d", res.Iterations)
	}
	if res.TotalSweeps != 4*60*100 {
		t.Fatalf("TotalSweeps = %d", res.TotalSweeps)
	}
	if !p.Ext.Orig.Feasible(res.Best, 1e-9) {
		t.Fatal("merged best infeasible")
	}
}

func TestSolveParallelDeterministic(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	run := func() *Result {
		r, err := SolveParallel(p, Options{Iterations: 25, SweepsPerRun: 60, Eta: 0.5, Seed: 9}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost || a.FeasibleCount != b.FeasibleCount {
		t.Fatal("same seed, different merged results")
	}
}

func TestSolveParallelBeatsOrMatchesSingle(t *testing.T) {
	p, _ := knapsackProblem(
		[]float64{6, 5, 8, 9, 6, 7, 3}, []float64{2, 3, 6, 7, 5, 9, 4}, 15)
	single, err := Solve(p, Options{Iterations: 40, SweepsPerRun: 100, Eta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SolveParallel(p, Options{Iterations: 40, SweepsPerRun: 100, Eta: 0.5, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Best == nil {
		t.Fatal("parallel found nothing")
	}
	if single.Best != nil && multi.BestCost > single.BestCost {
		t.Fatalf("4 replicas (%v) worse than replica-compatible single (%v)", multi.BestCost, single.BestCost)
	}
}

func TestSolveParallelValidation(t *testing.T) {
	p, _ := knapsackProblem([]float64{1}, []float64{1}, 1)
	if _, err := SolveParallel(p, Options{}, 0); err == nil {
		t.Fatal("accepted zero replicas")
	}
	if _, err := SolveParallel(&Problem{}, Options{}, 2); err == nil {
		t.Fatal("accepted invalid problem")
	}
}

func TestSolveParallelKeepsFirstTrace(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4}, []float64{2, 3}, 4)
	tr := &Trace{}
	if _, err := SolveParallel(p, Options{
		Iterations: 10, SweepsPerRun: 20, Eta: 0.5, Seed: 2, Trace: tr,
	}, 3); err != nil {
		t.Fatal(err)
	}
	if len(tr.Cost) != 10 {
		t.Fatalf("trace length %d, want one replica's 10", len(tr.Cost))
	}
}

// The merge must take the true maximum of the replica dual bounds. The old
// code special-cased zero and broke on all-negative duals (knapsack duals
// are typically negative), reporting 0 instead of the max.
func TestSolveParallelDualBestMerge(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	// Shift the energy down so every measured dual value is negative —
	// exactly the regime the old `|| merged.DualBest == 0` merge broke in.
	p.Objective.AddConst(-1000)
	o := Options{Iterations: 15, SweepsPerRun: 40, Eta: 0.5, Seed: 21}
	const replicas = 3
	merged, err := SolveParallel(p, o, replicas)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Inf(-1)
	for r := 0; r < replicas; r++ {
		ro := o
		ro.Seed = replicaSeed(o.Seed, r)
		res, err := Solve(p, ro)
		if err != nil {
			t.Fatal(err)
		}
		if res.DualBest > want {
			want = res.DualBest
		}
	}
	if merged.DualBest != want {
		t.Fatalf("merged DualBest = %v, want max over replicas %v", merged.DualBest, want)
	}
	if want >= 0 {
		t.Fatalf("test instance no longer exercises negative duals (max = %v); pick another", want)
	}
}

// Replicas beyond the first used to silently drop progress; now every
// replica streams through a thread-safe aggregator reporting fleet totals.
func TestSolveParallelProgressAggregates(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	var mu sync.Mutex
	count := 0
	var last ProgressInfo
	_, err := SolveParallel(p, Options{
		Iterations: 10, SweepsPerRun: 10, Eta: 0.5, Seed: 4,
		Progress: func(pi ProgressInfo) {
			mu.Lock()
			count++
			if pi.Samples > last.Samples {
				last = pi
			}
			mu.Unlock()
		},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3*10 {
		t.Fatalf("progress fired %d times, want one per replica iteration (30)", count)
	}
	if last.Samples != 30 {
		t.Fatalf("final aggregate Samples = %d, want 30", last.Samples)
	}
	if last.Sweeps != 3*10*10 {
		t.Fatalf("final aggregate Sweeps = %d, want 300", last.Sweeps)
	}
	if last.Total != 30 {
		t.Fatalf("aggregate Total = %d, want replicas×iterations", last.Total)
	}
}

// The pooled solve must reproduce exactly what goroutine-per-replica
// produced: per-replica results equal standalone solves with the replica
// seed, independent of worker count or scheduling.
func TestSolveParallelMatchesStandaloneReplicas(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8, 9, 6}, []float64{2, 3, 6, 7, 5}, 12)
	o := Options{Iterations: 20, SweepsPerRun: 50, Eta: 0.5, Seed: 31}
	const replicas = 4
	merged, err := SolveParallel(p, o, replicas)
	if err != nil {
		t.Fatal(err)
	}
	bestCost := math.Inf(1)
	feasible, sweeps := 0, int64(0)
	for r := 0; r < replicas; r++ {
		ro := o
		ro.Seed = replicaSeed(o.Seed, r)
		res, err := Solve(p, ro)
		if err != nil {
			t.Fatal(err)
		}
		feasible += res.FeasibleCount
		sweeps += res.TotalSweeps
		if res.BestCost < bestCost {
			bestCost = res.BestCost
		}
	}
	if merged.BestCost != bestCost || merged.FeasibleCount != feasible || merged.TotalSweeps != sweeps {
		t.Fatalf("pool merge %v/%d/%d, standalone replicas %v/%d/%d",
			merged.BestCost, merged.FeasibleCount, merged.TotalSweeps, bestCost, feasible, sweeps)
	}
}
