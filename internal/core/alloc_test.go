package core

import (
	"testing"

	"github.com/ising-machines/saim/internal/ising"
)

// The engine contract: once a solve is warmed up (machine built, scratch
// sized, dual history reserved, best buffer allocated on the first
// improvement), additional SAIM iterations must not touch the heap. The
// test measures whole solves at two iteration budgets — every per-solve
// allocation appears in both, so any difference is per-iteration garbage.
func TestSolveSteadyStateZeroAllocs(t *testing.T) {
	p, _ := knapsackProblem(
		[]float64{6, 5, 8, 9, 6, 7, 3}, []float64{2, 3, 6, 7, 5, 9, 4}, 15)
	measure := func(iters int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Solve(p, Options{
				Iterations: iters, SweepsPerRun: 25, Eta: 0.5, Seed: 7,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(5)
	big := measure(45)
	if big > base {
		t.Fatalf("steady-state SAIM iterations allocate: %v allocs/solve at 5 iterations vs %v at 45 (+%v over 40 extra iterations)",
			base, big, big-base)
	}
}

// Both kernels must hold the zero-allocation property, since auto-selection
// may hand either to the engine.
func TestSolveSteadyStateZeroAllocsSparse(t *testing.T) {
	p, _ := knapsackProblem(
		[]float64{6, 5, 8, 9, 6, 7, 3}, []float64{2, 3, 6, 7, 5, 9, 4}, 15)
	measure := func(iters int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Solve(p, Options{
				Iterations: iters, SweepsPerRun: 25, Eta: 0.5, Seed: 7,
				Machine: MachineSparse,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	if base, big := measure(5), measure(45); big > base {
		t.Fatalf("CSR solve allocates in steady state: %v vs %v allocs/solve", base, big)
	}
}

func TestMachineKindResolve(t *testing.T) {
	denseModel := ising.NewModel(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			denseModel.J.Set(i, j, 1)
		}
	}
	sparseModel := ising.NewModel(4)
	sparseModel.J.Set(0, 1, 1)

	if k := MachineAuto.Resolve(denseModel); k != MachineDense {
		t.Fatalf("auto on dense model resolved to %v", k)
	}
	if k := MachineAuto.Resolve(sparseModel); k != MachineSparse {
		t.Fatalf("auto on sparse model resolved to %v", k)
	}
	if MachineDense.Resolve(sparseModel) != MachineDense ||
		MachineSparse.Resolve(denseModel) != MachineSparse {
		t.Fatal("forced kinds must resolve to themselves")
	}
	if MachineAuto.String() != "auto" || MachineDense.String() != "dense" || MachineSparse.String() != "sparse" {
		t.Fatal("MachineKind strings wrong")
	}
}

// Forcing either kernel must not change the solve outcome: the machines
// are trajectory-identical for the same seed.
func TestSolveMachineKindsAgree(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	run := func(k MachineKind) *Result {
		res, err := Solve(p, Options{
			Iterations: 40, SweepsPerRun: 60, Eta: 0.5, Seed: 13, Machine: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	auto, dense, sparse := run(MachineAuto), run(MachineDense), run(MachineSparse)
	if dense.BestCost != sparse.BestCost || dense.FeasibleCount != sparse.FeasibleCount {
		t.Fatalf("kernels disagree: dense %v/%d vs sparse %v/%d",
			dense.BestCost, dense.FeasibleCount, sparse.BestCost, sparse.FeasibleCount)
	}
	if auto.BestCost != dense.BestCost || auto.FeasibleCount != dense.FeasibleCount {
		t.Fatalf("auto kernel diverged: %v/%d vs %v/%d",
			auto.BestCost, auto.FeasibleCount, dense.BestCost, dense.FeasibleCount)
	}
	if auto.DualBest != dense.DualBest {
		t.Fatalf("auto dual %v vs dense %v", auto.DualBest, dense.DualBest)
	}
}

// A reseeded, reused machine must reproduce exactly what a fresh build
// produces — the determinism contract the replica pool rests on.
func TestEngineReuseDeterminism(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	pr, err := compile(p, Options{Iterations: 20, SweepsPerRun: 40, Eta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// One engine runs seed A then seed B (machine reused + reseeded).
	eng := pr.newEngine()
	if _, err := eng.solve(t.Context(), 101, nil, nil); err != nil {
		t.Fatal(err)
	}
	reused, err := eng.solve(t.Context(), 202, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh engine runs seed B directly.
	fresh, err := pr.newEngine().solve(t.Context(), 202, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reused.BestCost != fresh.BestCost || reused.FeasibleCount != fresh.FeasibleCount ||
		reused.DualBest != fresh.DualBest {
		t.Fatalf("reused engine diverged from fresh: %+v vs %+v", reused, fresh)
	}
	for i := range reused.Lambda {
		if reused.Lambda[i] != fresh.Lambda[i] {
			t.Fatal("λ trajectories diverged between reused and fresh engines")
		}
	}
}
