package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// equalResults compares every deterministic field of two Results.
func equalResults(t *testing.T, r int, got, want *Result) {
	t.Helper()
	if got.BestCost != want.BestCost {
		t.Errorf("replica %d: BestCost %v, want %v", r, got.BestCost, want.BestCost)
	}
	if got.FeasibleCount != want.FeasibleCount {
		t.Errorf("replica %d: FeasibleCount %d, want %d", r, got.FeasibleCount, want.FeasibleCount)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("replica %d: Iterations %d, want %d", r, got.Iterations, want.Iterations)
	}
	if got.TotalSweeps != want.TotalSweeps {
		t.Errorf("replica %d: TotalSweeps %d, want %d", r, got.TotalSweeps, want.TotalSweeps)
	}
	if got.DualBest != want.DualBest {
		t.Errorf("replica %d: DualBest %v, want %v", r, got.DualBest, want.DualBest)
	}
	if got.Stopped != want.Stopped {
		t.Errorf("replica %d: Stopped %v, want %v", r, got.Stopped, want.Stopped)
	}
	if len(got.Lambda) != len(want.Lambda) {
		t.Fatalf("replica %d: Lambda length %d, want %d", r, len(got.Lambda), len(want.Lambda))
	}
	for i := range got.Lambda {
		if got.Lambda[i] != want.Lambda[i] {
			t.Errorf("replica %d: Lambda[%d] = %v, want %v", r, i, got.Lambda[i], want.Lambda[i])
		}
	}
	if (got.Best == nil) != (want.Best == nil) {
		t.Fatalf("replica %d: Best nil-ness differs (packed %v, scalar %v)", r, got.Best == nil, want.Best == nil)
	}
	for i := range got.Best {
		if got.Best[i] != want.Best[i] {
			t.Errorf("replica %d: Best[%d] = %d, want %d", r, i, got.Best[i], want.Best[i])
		}
	}
}

// The engine-level pin of the tentpole: every lane of the packed engine
// must reproduce, bit-for-bit, the Result the scalar engine produces for
// the same replica seed — including lanes frozen early by patience while
// their siblings keep sweeping.
func TestSolveParallelPackedMatchesScalarReplicas(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8, 9, 6}, []float64{2, 3, 6, 7, 5}, 12)
	for _, kind := range []MachineKind{MachineDense, MachineSparse} {
		t.Run(kind.String(), func(t *testing.T) {
			o := Options{
				Iterations: 12, SweepsPerRun: 40, Eta: 0.5, Seed: 91,
				Patience: 4, Machine: kind,
			}
			pr, err := compile(p, o)
			if err != nil {
				t.Fatal(err)
			}
			seeds := make([]uint64, pbit.Lanes)
			for r := range seeds {
				seeds[r] = replicaSeed(o.Seed, r)
			}
			pe := pr.newPackedEngine()
			traces := make([]*Trace, pbit.Lanes)
			for r := range traces {
				traces[r] = &Trace{}
			}
			got := pe.solve(context.Background(), seeds, traces, nil, nil)

			eng := pr.newEngine()
			sawEarlyStop := false
			for r, res := range got {
				tr := &Trace{}
				want, err := eng.solve(context.Background(), seeds[r], tr, nil)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, r, res, want)
				if want.Stopped == StopPatience {
					sawEarlyStop = true
				}
				if len(traces[r].Cost) != len(tr.Cost) {
					t.Fatalf("replica %d: trace length %d, want %d", r, len(traces[r].Cost), len(tr.Cost))
				}
				for k := range tr.Cost {
					if traces[r].Cost[k] != tr.Cost[k] || traces[r].Energy[k] != tr.Energy[k] {
						t.Fatalf("replica %d: trace diverges at iteration %d", r, k)
					}
				}
			}
			if !sawEarlyStop {
				t.Error("no replica stopped on patience; the done-lane freezing path went unexercised — lower Patience")
			}
		})
	}
}

// The public-API pin: merged results are identical whether the pool packs
// or runs scalar replicas, including a non-multiple-of-64 fleet whose
// remainder rides the scalar path next to one packed group.
func TestSolveParallelPackedModeEquivalence(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	base := Options{Iterations: 6, SweepsPerRun: 30, Eta: 0.5, Seed: 17}
	run := func(mode PackedMode) *Result {
		o := base
		o.Packed = mode
		res, err := SolveParallel(p, o, 70)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on, auto := run(PackedOff), run(PackedOn), run(PackedAuto)
	for name, got := range map[string]*Result{"on": on, "auto": auto} {
		if got.BestCost != off.BestCost || got.FeasibleCount != off.FeasibleCount ||
			got.Iterations != off.Iterations || got.TotalSweeps != off.TotalSweeps ||
			got.DualBest != off.DualBest {
			t.Errorf("Packed %s merged %v/%d/%d/%d/%v, scalar %v/%d/%d/%d/%v", name,
				got.BestCost, got.FeasibleCount, got.Iterations, got.TotalSweeps, got.DualBest,
				off.BestCost, off.FeasibleCount, off.Iterations, off.TotalSweeps, off.DualBest)
		}
	}
}

// Warm starts must flow through the packed path unchanged: the first run
// of every lane continues from the seeded assignment.
func TestSolveParallelPackedWarmStartEquivalence(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	base := Options{
		Iterations: 5, SweepsPerRun: 25, Eta: 0.5, Seed: 23,
		Initial: ising.Bits{1, 0, 0, 0},
	}
	run := func(mode PackedMode) *Result {
		o := base
		o.Packed = mode
		res, err := SolveParallel(p, o, pbit.Lanes)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(PackedOff), run(PackedOn)
	if on.BestCost != off.BestCost || on.FeasibleCount != off.FeasibleCount ||
		on.TotalSweeps != off.TotalSweeps || on.DualBest != off.DualBest {
		t.Errorf("packed warm start diverged from scalar: %v/%d/%d vs %v/%d/%d",
			on.BestCost, on.FeasibleCount, on.TotalSweeps,
			off.BestCost, off.FeasibleCount, off.TotalSweeps)
	}
	// The warm start is feasible, so no result may be worse than it.
	warmCost := p.Cost(base.Initial)
	if on.BestCost > warmCost {
		t.Errorf("packed warm-started BestCost %v worse than seed %v", on.BestCost, warmCost)
	}
}

// Progress and traces must stream from packed lanes exactly as from
// scalar replicas: one aggregated callback per lane iteration, and the
// winning lane's full trajectory in the caller's trace.
func TestSolveParallelPackedProgressAndTrace(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	var mu sync.Mutex
	count := 0
	var last ProgressInfo
	tr := &Trace{}
	_, err := SolveParallel(p, Options{
		Iterations: 5, SweepsPerRun: 10, Eta: 0.5, Seed: 4, Packed: PackedOn,
		Trace: tr,
		Progress: func(pi ProgressInfo) {
			mu.Lock()
			count++
			if pi.Samples > last.Samples {
				last = pi
			}
			mu.Unlock()
		},
	}, pbit.Lanes)
	if err != nil {
		t.Fatal(err)
	}
	if count != pbit.Lanes*5 {
		t.Errorf("progress fired %d times, want one per lane iteration (%d)", count, pbit.Lanes*5)
	}
	if last.Samples != pbit.Lanes*5 {
		t.Errorf("final aggregate Samples = %d, want %d", last.Samples, pbit.Lanes*5)
	}
	if last.Sweeps != int64(pbit.Lanes*5*10) {
		t.Errorf("final aggregate Sweeps = %d, want %d", last.Sweeps, pbit.Lanes*5*10)
	}
	if len(tr.Cost) != 5 {
		t.Errorf("trace length %d, want the winning lane's 5", len(tr.Cost))
	}
}

// Cancellation mid-solve must freeze packed lanes at the next run
// boundary with StopCancelled, exactly like scalar replicas.
func TestSolveParallelPackedCancellation(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveParallelContext(ctx, p, Options{
		Iterations: 50, SweepsPerRun: 20, Eta: 0.5, Seed: 6, Packed: PackedOn,
	}, pbit.Lanes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopCancelled {
		t.Errorf("Stopped = %v, want StopCancelled", res.Stopped)
	}
}

// badMachine is a custom Machine whose Anneal returns a wrong-length
// configuration — the defect class the length validation in engine.solve
// now catches instead of silently truncating the copy.
type badMachine struct {
	n      int
	sweeps int64
	calls  *int32
}

func (m *badMachine) UpdateBiases(h vecmat.Vec) {}
func (m *badMachine) Sweeps() int64             { return m.sweeps }
func (m *badMachine) Anneal(sched schedule.Schedule, sweeps int) ising.Spins {
	atomic.AddInt32(m.calls, 1)
	m.sweeps += int64(sweeps)
	return make(ising.Spins, m.n-1)
}

// Satellite: the first worker error must stop the pool from starting any
// further replicas (with one worker the count is deterministic).
func TestSolveParallelStopsFeedingOnError(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	var calls int32
	opts := Options{
		Iterations: 5, SweepsPerRun: 10, Eta: 0.5, Seed: 3,
		Factory: func(model *ising.Model, src *rng.Source) Machine {
			return &badMachine{n: model.N(), calls: &calls}
		},
	}
	_, err := SolveParallel(p, opts, 8)
	if err == nil {
		t.Fatal("wrong-length Anneal return did not error")
	}
	if got := atomic.LoadInt32(&calls); got >= 8*int32(opts.Iterations) {
		t.Fatalf("pool kept feeding after the first error: %d Anneal calls", got)
	}
}

// With a single worker the stop is exact: the erroring replica's one
// Anneal call is the only one that ever runs.
func TestSolveParallelErrorStopIsExactSequentially(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
	var calls int32
	opts := Options{
		Iterations: 5, SweepsPerRun: 10, Eta: 0.5, Seed: 3,
		Factory: func(model *ising.Model, src *rng.Source) Machine {
			return &badMachine{n: model.N(), calls: &calls}
		},
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if _, err := SolveParallel(p, opts, 6); err == nil {
		t.Fatal("wrong-length Anneal return did not error")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("Anneal ran %d times after the first error, want exactly 1", got)
	}
}

// Satellite: a panicking progress callback must not leave the aggregator
// mutex held — every later report from any worker would deadlock.
func TestProgressAggregatorPanickingCallback(t *testing.T) {
	calls := 0
	agg := NewProgressAggregator(func(pi ProgressInfo) {
		calls++
		if calls == 1 {
			panic("observer bug")
		}
	}, 2, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("callback panic did not propagate")
			}
		}()
		agg.Callback(0)(ProgressInfo{Samples: 1})
	}()
	done := make(chan struct{})
	go func() {
		agg.Callback(1)(ProgressInfo{Samples: 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("aggregator left locked after a callback panic")
	}
	if math.IsInf(agg.agg.BestCost, -1) {
		t.Fatal("aggregator state corrupted")
	}
}
