package core

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// knapsackProblem builds a small knapsack: max Σ v_i x_i s.t. Σ w_i x_i ≤ cap,
// i.e. min −vᵀx. Returns the problem plus the exact optimum by enumeration.
func knapsackProblem(v, w []float64, capacity float64) (*Problem, float64) {
	n := len(v)
	sys := constraint.NewSystem(n)
	sys.Add(vecmat.Vec(w), constraint.LE, capacity)
	ext := sys.Extend(constraint.Binary)
	obj := ising.NewQUBO(ext.NTotal)
	for i := 0; i < n; i++ {
		obj.AddLinear(i, -v[i])
	}
	cost := func(x ising.Bits) float64 {
		s := 0.0
		for i, xi := range x {
			if xi != 0 {
				s -= v[i]
			}
		}
		return s
	}
	// Exact optimum by enumeration over decision bits.
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		weight, val := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				weight += w[i]
				val += v[i]
			}
		}
		if weight <= capacity && -val < best {
			best = -val
		}
	}
	return &Problem{Objective: obj, Ext: ext, Cost: cost}, best
}

func TestSolveFindsKnapsackOptimum(t *testing.T) {
	p, opt := knapsackProblem(
		[]float64{6, 5, 8, 9, 6, 7, 3}, []float64{2, 3, 6, 7, 5, 9, 4}, 15)
	res, err := Solve(p, Options{
		Iterations:   150,
		SweepsPerRun: 200,
		BetaMax:      10,
		Eta:          0.5,
		Alpha:        2,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible sample found")
	}
	if res.BestCost != opt {
		t.Fatalf("BestCost = %v, want %v", res.BestCost, opt)
	}
	// The best sample must actually be feasible.
	if !p.Ext.Orig.Feasible(res.Best, 1e-9) {
		t.Fatal("reported best is infeasible")
	}
	if got := p.Cost(res.Best); got != res.BestCost {
		t.Fatalf("BestCost %v inconsistent with Cost(Best) %v", res.BestCost, got)
	}
}

func TestSolveDeterministicGivenSeed(t *testing.T) {
	run := func() *Result {
		p, _ := knapsackProblem([]float64{3, 4, 5}, []float64{2, 3, 4}, 5)
		res, err := Solve(p, Options{Iterations: 30, SweepsPerRun: 50, Eta: 0.5, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost || a.FeasibleCount != b.FeasibleCount {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	for i := range a.Lambda {
		if a.Lambda[i] != b.Lambda[i] {
			t.Fatal("λ trajectories diverged")
		}
	}
}

func TestSolveTraceShapes(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4}, []float64{2, 3}, 4)
	tr := &Trace{}
	const k = 25
	res, err := Solve(p, Options{Iterations: k, SweepsPerRun: 40, Eta: 0.3, Seed: 3, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cost) != k || len(tr.Feasible) != k || len(tr.Lambda) != k || len(tr.Energy) != k {
		t.Fatalf("trace lengths: %d %d %d %d", len(tr.Cost), len(tr.Feasible), len(tr.Lambda), len(tr.Energy))
	}
	if len(tr.Lambda[0]) != p.Ext.M() {
		t.Fatalf("λ width = %d", len(tr.Lambda[0]))
	}
	// Feasible count in trace must match result.
	count := 0
	for _, f := range tr.Feasible {
		if f {
			count++
		}
	}
	if count != res.FeasibleCount {
		t.Fatalf("trace feasible %d vs result %d", count, res.FeasibleCount)
	}
}

func TestSolveUsesHeuristicPenalty(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4, 5, 6}, []float64{2, 3, 4, 5}, 7)
	p.Density = 0.5
	res, err := Solve(p, Options{Iterations: 5, SweepsPerRun: 20, Eta: 0.5, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 0.5 * float64(p.Ext.NTotal)
	if res.P != want {
		t.Fatalf("P = %v, want α·d·N = %v", res.P, want)
	}
}

func TestSolveExplicitPenaltyOverrides(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4}, []float64{2, 3}, 4)
	res, err := Solve(p, Options{P: 7.5, Iterations: 3, SweepsPerRun: 10, Eta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 7.5 {
		t.Fatalf("P = %v, want 7.5", res.P)
	}
}

func TestSolveRejectsInvalidProblem(t *testing.T) {
	if _, err := Solve(&Problem{}, Options{}); err == nil {
		t.Fatal("Solve accepted empty problem")
	}
	// Dimension mismatch.
	sys := constraint.NewSystem(2)
	sys.Add(vecmat.Vec{1, 1}, constraint.LE, 1)
	ext := sys.Extend(constraint.Binary)
	p := &Problem{
		Objective: ising.NewQUBO(1),
		Ext:       ext,
		Cost:      func(ising.Bits) float64 { return 0 },
	}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("Solve accepted mismatched dimensions")
	}
}

func TestFeasibleRatio(t *testing.T) {
	r := &Result{FeasibleCount: 25, Iterations: 50}
	if r.FeasibleRatio() != 50 {
		t.Fatalf("FeasibleRatio = %v", r.FeasibleRatio())
	}
	empty := &Result{}
	if empty.FeasibleRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

// exactMachine is a Machine that returns the true argmin by enumeration —
// it makes SAIM's outer loop deterministic so we can verify the λ dynamics
// in isolation from annealing noise.
type exactMachine struct {
	model  *ising.Model
	sweeps int64
}

func (e *exactMachine) UpdateBiases(h vecmat.Vec) {
	copy(e.model.H, h)
}

func (e *exactMachine) Anneal(_ schedule.Schedule, sweeps int) ising.Spins {
	e.sweeps += int64(sweeps)
	n := e.model.N()
	bestE := math.Inf(1)
	var best ising.Spins
	for mask := 0; mask < 1<<n; mask++ {
		s := make(ising.Spins, n)
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if en := e.model.Energy(s); en < bestE {
			bestE, best = en, s
		}
	}
	return best
}

func (e *exactMachine) Sweeps() int64 { return e.sweeps }

// With an exact minimizer and small P < Pc, plain penalty minimization gets
// an infeasible lower bound, while SAIM's λ ascent must recover the true
// constrained optimum (the Fig. 2 story).
func TestExactMinimizerClosesGap(t *testing.T) {
	p, opt := knapsackProblem([]float64{6, 5, 8}, []float64{3, 2, 4}, 5)
	factory := func(model *ising.Model, _ *rng.Source) Machine {
		return &exactMachine{model: model}
	}
	// P small: with λ=0 the argmin is to take everything (infeasible).
	res, err := Solve(p, Options{
		P:          0.2,
		Iterations: 300,
		Eta:        0.2,
		Seed:       5,
		Factory:    factory,
		// SweepsPerRun irrelevant to the exact machine but must be set to
		// avoid the 1000-sweep default dominating the test runtime budget.
		SweepsPerRun: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("exact SAIM never found a feasible sample")
	}
	if res.BestCost != opt {
		t.Fatalf("BestCost = %v, want OPT %v", res.BestCost, opt)
	}
	// λ must have moved away from zero to close the gap.
	if res.Lambda.MaxAbs() == 0 {
		t.Fatal("λ never updated")
	}
}

// Verify the penalty-only ground state at the same small P is infeasible —
// i.e. the gap SAIM closed in the previous test actually existed.
func TestSmallPGroundStateInfeasibleWithoutLambda(t *testing.T) {
	p, _ := knapsackProblem([]float64{6, 5, 8}, []float64{3, 2, 4}, 5)
	factory := func(model *ising.Model, _ *rng.Source) Machine {
		return &exactMachine{model: model}
	}
	res, err := Solve(p, Options{
		P: 0.2, Iterations: 1, Eta: 0.2, Seed: 5, Factory: factory, SweepsPerRun: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One iteration with λ=0: the measured sample is the penalty-only
	// argmin; for this instance it must be infeasible.
	if res.FeasibleCount != 0 {
		t.Fatal("expected infeasible penalty-only ground state at small P")
	}
}

func TestTotalSweepsAccounting(t *testing.T) {
	p, _ := knapsackProblem([]float64{3, 4}, []float64{2, 3}, 4)
	res, err := Solve(p, Options{Iterations: 7, SweepsPerRun: 13, Eta: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSweeps != 7*13 {
		t.Fatalf("TotalSweeps = %d, want %d", res.TotalSweeps, 7*13)
	}
}

// SAIM must run unchanged on the sparse p-bit backend (the Machine
// interface contract), and — given the same seed — produce the same result
// as the dense backend since their trajectories coincide.
func TestSolveWithSparseFactory(t *testing.T) {
	p, opt := knapsackProblem([]float64{6, 5, 8, 9}, []float64{2, 3, 6, 7}, 10)
	sparseFactory := func(model *ising.Model, src *rng.Source) Machine {
		return pbit.NewSparse(model, src)
	}
	dense, err := Solve(p, Options{Iterations: 80, SweepsPerRun: 120, Eta: 0.5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Solve(p, Options{Iterations: 80, SweepsPerRun: 120, Eta: 0.5, Seed: 13,
		Factory: sparseFactory})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Best == nil {
		t.Fatal("sparse backend found nothing")
	}
	if dense.BestCost != sparse.BestCost || dense.FeasibleCount != sparse.FeasibleCount {
		t.Fatalf("backends disagree: dense %v/%d vs sparse %v/%d",
			dense.BestCost, dense.FeasibleCount, sparse.BestCost, sparse.FeasibleCount)
	}
	if sparse.BestCost != opt {
		t.Fatalf("sparse BestCost = %v, want %v", sparse.BestCost, opt)
	}
}

func TestEtaDecayConverges(t *testing.T) {
	p, opt := knapsackProblem([]float64{6, 5, 8}, []float64{3, 2, 4}, 5)
	factory := func(model *ising.Model, _ *rng.Source) Machine {
		return &exactMachine{model: model}
	}
	res, err := Solve(p, Options{
		P: 0.2, Iterations: 300, Eta: 0.4, EtaDecayPower: 0.5,
		Seed: 5, Factory: factory, SweepsPerRun: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.BestCost != opt {
		t.Fatalf("diminishing-step SAIM: best %v, want %v", res.BestCost, opt)
	}
}
