// Package core implements the paper's primary contribution: the
// Self-Adaptive Ising Machine (SAIM) of Algorithm 1.
//
// SAIM solves min f(x) s.t. g(x)=0 by alternating two processes:
//
//  1. an Ising machine heuristically minimizes the Lagrange function
//     L_k(x) = f(x) + P‖g(x)‖² + λ_kᵀ g(x) over one annealing run;
//  2. a CPU-side update moves the multipliers along the measured residuals,
//     λ_{k+1} = λ_k + η·g(x_k), a surrogate-subgradient ascent step on the
//     dual problem max_λ min_x L.
//
// The penalty weight stays fixed at a deliberately small P = α·d·N (below
// the critical Pc the classical penalty method would need); the adapting λ
// closes the resulting gap by reshaping the energy landscape. Because g is
// linear, each λ update re-programs only the Ising bias vector h — the
// coupling matrix J is built once.
//
// Feasible samples are checked against the *original* inequality
// constraints and the best one (by true objective value) is returned.
//
// The solve path is organized as a compiled program (energy model and base
// biases, built once per problem) driving per-worker engines that own one
// long-lived machine plus all hot-loop scratch; a steady-state SAIM
// iteration performs zero heap allocations (see DESIGN.md §5.3).
package core

import (
	"context"
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/lagrange"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/penalty"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Machine is the Ising-machine contract SAIM needs. Any programmable
// annealer that can re-program its bias vector between runs qualifies;
// the p-bit machines of package pbit are the default implementations.
type Machine interface {
	// UpdateBiases re-programs the field vector h of the machine's model.
	UpdateBiases(h vecmat.Vec)
	// Anneal runs one annealing run of the given number of sweeps from a
	// fresh random state and returns the final configuration.
	Anneal(sched schedule.Schedule, sweeps int) ising.Spins
	// Sweeps reports the cumulative Monte-Carlo sweeps executed.
	Sweeps() int64
}

// BufferedAnnealer is the optional fast path of Machine: a run that writes
// its final state into a caller-owned buffer. Both pbit machines implement
// it; custom machines fall back to the allocating Anneal. It is the single
// definition of this contract — internal/anneal type-asserts against it
// too, so a signature change breaks loudly at every call site.
type BufferedAnnealer interface {
	AnnealInto(dst ising.Spins, sched schedule.Schedule, sweeps int)
}

// reseedable is the optional reuse contract of Machine: swapping the
// randomness source lets one long-lived machine serve many solves (the
// replica pool reseeds instead of rebuilding). Machines without it are
// rebuilt per solve.
type reseedable interface {
	Reseed(src *rng.Source)
}

// WarmStartable is the optional warm-start contract of Machine: a machine
// that can adopt an explicit configuration and continue annealing from it
// instead of re-randomizing. Both pbit machines implement it; custom
// machines without it silently fall back to a cold (random) first run.
type WarmStartable interface {
	SetState(ising.Spins)
	AnnealFromInto(dst ising.Spins, sched schedule.Schedule, sweeps int)
}

// MachineFactory builds a Machine for a concrete Hamiltonian. The default
// auto-selects between the dense and CSR p-bit emulators.
type MachineFactory func(model *ising.Model, src *rng.Source) Machine

// MachineKind selects which p-bit kernel a solve uses. The zero value
// picks automatically from the model's coupling density; Dense and Sparse
// force one kernel. All kinds produce bit-identical trajectories for the
// same seed, so the choice affects throughput only.
type MachineKind int

const (
	// MachineAuto picks dense or CSR from the model's OffDiagDensity.
	MachineAuto MachineKind = iota
	// MachineDense forces the dense-row kernel.
	MachineDense
	// MachineSparse forces the CSR kernel.
	MachineSparse
)

// String implements fmt.Stringer.
func (k MachineKind) String() string {
	switch k {
	case MachineAuto:
		return "auto"
	case MachineDense:
		return "dense"
	case MachineSparse:
		return "sparse"
	default:
		return fmt.Sprintf("MachineKind(%d)", int(k))
	}
}

// PackedMode selects whether the replica pool may route groups of 64
// replicas through the bit-packed multi-spin kernels (pbit.PackedMachine /
// pbit.PackedSparseMachine), which sweep 64 replicas per J-row walk
// instead of one. Packing never changes results: every lane reproduces the
// scalar replica with the same seed bit-for-bit (pinned by
// TestSolveParallelPackedMatchesScalarReplicas), so the mode affects
// throughput only.
type PackedMode int

const (
	// PackedAuto (the default) packs whenever a solve is eligible: no
	// custom MachineFactory and at least pbit.Lanes (64) replicas. It
	// currently packs every eligible solve; it is the mode that may grow
	// workload heuristics later without breaking PackedOn's guarantee.
	PackedAuto PackedMode = iota
	// PackedOn packs every eligible solve (same eligibility as above —
	// custom factories cannot be packed and fall back to scalar replicas).
	PackedOn
	// PackedOff forces one scalar machine per replica.
	PackedOff
)

// String implements fmt.Stringer.
func (p PackedMode) String() string {
	switch p {
	case PackedAuto:
		return "auto"
	case PackedOn:
		return "on"
	case PackedOff:
		return "off"
	default:
		return fmt.Sprintf("PackedMode(%d)", int(p))
	}
}

// SparseDensityThreshold is the coupling density below which MachineAuto
// selects the CSR kernel. The CSR sweep costs O(Σ degree) against the dense
// kernel's O(N·flips); the crossover sits near 50% density (the
// adjacency-list comment of the paper's ref [10], confirmed by
// BenchmarkSweepSparseVsDense).
const SparseDensityThreshold = 0.5

// Resolve returns the concrete kind MachineAuto selects for the model
// (Dense and Sparse resolve to themselves).
func (k MachineKind) Resolve(model *ising.Model) MachineKind {
	if k != MachineAuto {
		return k
	}
	if model.J.OffDiagDensity() < SparseDensityThreshold {
		return MachineSparse
	}
	return MachineDense
}

// Factory returns the MachineFactory realizing the kind.
func (k MachineKind) Factory() MachineFactory {
	switch k {
	case MachineDense:
		return DenseFactory
	case MachineSparse:
		return SparseFactory
	default:
		return DefaultFactory
	}
}

// DefaultFactory builds the p-bit machine best suited to the model: the
// CSR kernel below SparseDensityThreshold, the dense kernel otherwise.
// Both produce identical trajectories, so auto-selection never changes
// results.
func DefaultFactory(model *ising.Model, src *rng.Source) Machine {
	if MachineAuto.Resolve(model) == MachineSparse {
		return pbit.NewSparse(model, src)
	}
	return pbit.New(model, src)
}

// DenseFactory builds the dense-row p-bit machine unconditionally.
func DenseFactory(model *ising.Model, src *rng.Source) Machine {
	return pbit.New(model, src)
}

// SparseFactory builds the CSR p-bit machine unconditionally.
func SparseFactory(model *ising.Model, src *rng.Source) Machine {
	return pbit.NewSparse(model, src)
}

// Problem is a constrained binary optimization problem in the form SAIM
// consumes: a QUBO objective over the extended (decision + slack) variables
// and the equality-form constraint system.
type Problem struct {
	// Objective is f over Ext.NTotal variables; slack columns must have
	// zero objective coefficients. Typically normalized so that
	// max(|Q|,|c|)=1 (the paper normalizes all instances).
	Objective *ising.QUBO
	// Ext is the equality-form constraint system (normalized likewise).
	Ext *constraint.Extended
	// Cost returns the true (un-normalized) objective of a decision-bit
	// assignment. It is used to rank feasible samples and report results.
	Cost func(x ising.Bits) float64
	// Density is the instance coupling density d used by the P = α·d·N
	// heuristic (e.g. the W-matrix density for QKP, 2/(N+1) for MKP).
	// If zero, the measured J density of the built energy is used.
	Density float64
}

// Validate reports structural problems.
func (p *Problem) Validate() error {
	if p.Objective == nil || p.Ext == nil || p.Cost == nil {
		return fmt.Errorf("core: problem missing objective, constraints, or cost")
	}
	if p.Objective.N() != p.Ext.NTotal {
		return fmt.Errorf("core: objective over %d vars, constraints over %d",
			p.Objective.N(), p.Ext.NTotal)
	}
	return p.Objective.Validate()
}

// Options configures one SAIM solve. Zero values fall back to the paper's
// QKP settings (Table I).
type Options struct {
	// Alpha is the penalty heuristic coefficient in P = α·d·N. Paper:
	// 2 for QKP, 5 for MKP. Ignored when P is set explicitly.
	Alpha float64
	// P overrides the penalty weight when non-zero.
	P float64
	// Eta is the multiplier step size η. Paper: 20 for QKP, 0.05 for MKP.
	Eta float64
	// EtaDecayPower, when non-zero, switches the λ update to the
	// diminishing schedule η_k = η/(k+1)^power (0.5 is the classical
	// subgradient choice). Zero keeps the paper's constant step.
	EtaDecayPower float64
	// Iterations is K, the number of annealing runs (λ updates).
	Iterations int
	// SweepsPerRun is the MCS budget of each run (paper: 1000).
	SweepsPerRun int
	// BetaMax is the final inverse temperature of the linear β-schedule
	// (paper: 10 for QKP, 50 for MKP).
	BetaMax float64
	// Seed drives all stochasticity of the solve.
	Seed uint64
	// NonNegative projects λ onto λ ≥ 0 after each update (ablation).
	NonNegative bool
	// Machine selects the p-bit kernel (auto/dense/CSR). Ignored when
	// Factory is set.
	Machine MachineKind
	// Packed controls whether SolveParallel may sweep replicas 64-at-a-time
	// through the bit-packed kernels. The zero value (PackedAuto) packs
	// whenever eligible; packing never changes results. Single solves
	// (replicas == 1) ignore it.
	Packed PackedMode
	// Factory builds the Ising machine; nil means the kernel selected by
	// Machine.
	Factory MachineFactory
	// Trace, when non-nil, records the per-iteration trajectory.
	Trace *Trace
	// Progress, when non-nil, is invoked once per iteration (after the λ
	// update) with a snapshot of the solve. It runs on the solving
	// goroutine; keep it cheap.
	Progress func(ProgressInfo)
	// TargetCost, when non-nil, stops the solve early as soon as a
	// feasible sample reaches a cost ≤ *TargetCost.
	TargetCost *float64
	// Patience, when positive, stops the solve after this many consecutive
	// iterations without an improvement of the best feasible cost.
	Patience int
	// Initial, when non-empty, warm-starts the solve: the first annealing
	// run starts from this decision-bit assignment (slack bits completed
	// greedily) instead of a random state, and — when the assignment is
	// feasible — it also seeds the best-so-far, so the solve never returns
	// a worse result than the warm start. Length must be Ext.NOrig.
	Initial ising.Bits
	// Checkpoint, when non-nil, is invoked whenever a new best feasible
	// assignment is found, with the decision bits and their true cost.
	// The bits slice is the engine's live buffer — copy it before
	// retaining. Under the replica pool the callback runs concurrently
	// from several engines; the caller must synchronize.
	Checkpoint func(best ising.Bits, cost float64)
}

// ProgressInfo is the per-iteration snapshot streamed to Options.Progress.
type ProgressInfo struct {
	// Iteration is the zero-based index of the iteration just finished;
	// Total is the configured iteration count.
	Iteration, Total int
	// BestCost is the best feasible cost so far (+Inf when none).
	BestCost float64
	// FeasibleCount is the number of feasible samples so far, out of
	// Samples examined (one per iteration for the annealing loops, many
	// per sweep for parallel tempering).
	FeasibleCount int
	// Samples is the number of samples examined so far.
	Samples int
	// LambdaNorm is the Euclidean norm of the current multiplier vector.
	LambdaNorm float64
	// Sweeps is the cumulative Monte-Carlo sweep count so far.
	Sweeps int64
}

// StopReason records why an iterative solve returned.
type StopReason int

const (
	// StopCompleted means the full iteration budget was spent.
	StopCompleted StopReason = iota
	// StopCancelled means the context was cancelled; the result holds the
	// best-so-far state and is still valid.
	StopCancelled
	// StopTarget means a feasible sample reached the target cost.
	StopTarget
	// StopPatience means the improvement patience was exhausted.
	StopPatience
	// StopTimeLimit means the configured wall-clock limit expired; the
	// result holds the best-so-far state and is still valid. Backends
	// check the deadline at the same cadence as cancellation (once per
	// annealing run or equivalent).
	StopTimeLimit
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopCompleted:
		return "completed"
	case StopCancelled:
		return "cancelled"
	case StopTarget:
		return "target-reached"
	case StopPatience:
		return "patience-exhausted"
	case StopTimeLimit:
		return "time-limit"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Alpha == 0 {
		out.Alpha = 2
	}
	if out.Eta == 0 {
		out.Eta = 20
	}
	if out.Iterations == 0 {
		out.Iterations = 2000
	}
	if out.SweepsPerRun == 0 {
		out.SweepsPerRun = 1000
	}
	if out.BetaMax == 0 {
		out.BetaMax = 10
	}
	if out.Factory == nil {
		out.Factory = out.Machine.Factory()
	}
	return out
}

// Trace records the per-iteration trajectory of a SAIM run, enough to
// regenerate the paper's Fig. 3 (QKP cost + λ) and Fig. 5 (MKP cost + λ_m).
type Trace struct {
	// Cost[k] is the true objective of sample x_k (feasible or not).
	Cost []float64
	// Feasible[k] reports whether x_k satisfied the original constraints.
	Feasible []bool
	// Lambda[k] is a copy of λ after iteration k.
	Lambda [][]float64
	// Energy[k] is L_k(x_k), the measured (heuristic) dual value.
	Energy []float64
}

func (t *Trace) record(cost float64, feasible bool, lam vecmat.Vec, energy float64) {
	t.Cost = append(t.Cost, cost)
	t.Feasible = append(t.Feasible, feasible)
	lc := make([]float64, len(lam))
	copy(lc, lam)
	t.Lambda = append(t.Lambda, lc)
	t.Energy = append(t.Energy, energy)
}

// Result is the outcome of a SAIM solve.
type Result struct {
	// Best is the decision-bit assignment of the best feasible sample,
	// or nil when no feasible sample was observed.
	Best ising.Bits
	// BestCost is Cost(Best), +Inf when Best is nil.
	BestCost float64
	// FeasibleCount is the number of iterations whose sample was feasible.
	FeasibleCount int
	// Iterations is the number of annealing runs executed (K).
	Iterations int
	// TotalSweeps is the cumulative MCS spent.
	TotalSweeps int64
	// P is the penalty weight used.
	P float64
	// Lambda is the final multiplier vector.
	Lambda vecmat.Vec
	// DualBest is the largest measured L(x_k), a heuristic estimate of the
	// optimal dual bound M_D (−Inf when no iteration ran).
	DualBest float64
	// Stopped records why the solve returned (budget spent, context
	// cancelled, target cost reached, or patience exhausted).
	Stopped StopReason
}

// FeasibleRatio returns FeasibleCount/Iterations in percent, the number the
// paper reports in parentheses next to average accuracies. Each iteration
// examines exactly one sample (the annealing run's final state), so this
// is the percentage of feasible samples — the same definition every layer
// (Result.FeasibleRatio, Progress.FeasibleRatio) documents.
func (r *Result) FeasibleRatio() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return 100 * float64(r.FeasibleCount) / float64(r.Iterations)
}

// HeuristicPenalty returns the paper's P = α·d·N penalty weight for the
// problem, measuring the coupling density of the built energy (objective +
// penalty quadratic structure at a nominal P) when the problem does not
// carry an instance density. Solve uses it whenever Options.P is unset;
// the penalty-method and parallel-tempering baselines share it so every
// backend prices constraints from the same heuristic.
func HeuristicPenalty(p *Problem, alpha float64) float64 {
	d := p.Density
	if d == 0 {
		probe := penalty.Build(p.Objective, p.Ext, 1)
		d = probe.ToIsing().Density()
	}
	return penalty.Heuristic(alpha, d, p.Ext.NTotal)
}

// program is the compiled, shareable part of a solve: the penalty energy,
// its Ising image, and the base biases, built once per problem. Engines —
// including every replica-pool worker — share one program; nothing in it
// is mutated after compile, so concurrent engines only copy H.
type program struct {
	prob   *Problem
	o      Options // defaults applied
	pen    float64
	energy *ising.QUBO
	model  *ising.Model
	baseH  vecmat.Vec
	sched  schedule.Schedule
}

// compile validates the problem and builds the energy model once.
// E = f + P‖g‖²; λ terms only touch h afterwards.
func compile(p *Problem, opts Options) (*program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if len(o.Initial) > 0 && len(o.Initial) != p.Ext.NOrig {
		return nil, fmt.Errorf("core: initial assignment length %d, want %d", len(o.Initial), p.Ext.NOrig)
	}
	pen := o.P
	if pen == 0 {
		pen = HeuristicPenalty(p, o.Alpha)
	}
	if pen < 0 {
		return nil, fmt.Errorf("core: negative penalty weight %v", pen)
	}
	energy := penalty.Build(p.Objective, p.Ext, pen)
	model := energy.ToIsing()
	return &program{
		prob:   p,
		o:      o,
		pen:    pen,
		energy: energy,
		model:  model,
		baseH:  model.H.Clone(),
		sched:  schedule.Linear{Start: 0, End: o.BetaMax},
	}, nil
}

// engine owns the mutable state of one solve worker: a long-lived machine
// (reseeded — not rebuilt — per solve when it supports it), the multiplier
// state, and every hot-loop scratch buffer. After warm-up a steady-state
// iteration allocates nothing; a pool worker runs many replicas through
// one engine.
type engine struct {
	pr      *program
	model   *ising.Model // J shared with pr.model, H owned by this engine
	machine Machine
	lam     *lagrange.Multipliers
	step    lagrange.StepSchedule
	dual    lagrange.DualTracker

	// Hot-loop scratch, sized once at engine construction.
	biasDelta vecmat.Vec
	h         vecmat.Vec
	g         vecmat.Vec
	spins     ising.Spins
	x         ising.Bits
}

// newEngine builds a worker around the compiled program. The coupling
// matrix is shared (machines never write J); the bias vector is copied so
// concurrent engines can re-program independently.
func (pr *program) newEngine() *engine {
	ext := pr.prob.Ext
	lam := lagrange.New(ext.M(), pr.o.Eta)
	lam.NonNegative = pr.o.NonNegative
	var step lagrange.StepSchedule = lagrange.ConstantStep{Eta0: pr.o.Eta}
	if pr.o.EtaDecayPower != 0 {
		step = lagrange.DecayStep{Eta0: pr.o.Eta, Power: pr.o.EtaDecayPower}
	}
	return &engine{
		pr:        pr,
		model:     &ising.Model{J: pr.model.J, H: pr.baseH.Clone(), Const: pr.model.Const},
		lam:       lam,
		step:      step,
		biasDelta: vecmat.NewVec(ext.NTotal),
		h:         vecmat.NewVec(ext.NTotal),
		g:         vecmat.NewVec(ext.M()),
		spins:     ising.NewSpins(ext.NTotal),
		x:         make(ising.Bits, ext.NTotal),
	}
}

// solve runs Algorithm 1 once with the given seed, reusing the engine's
// machine and scratch. Trace and progress come as arguments (not from the
// program's Options) so the replica pool can redirect them per replica.
//
// Determinism contract: the machine's randomness stream is always
// rng.New(seed).Split(), exactly what a freshly built solve consumes, so a
// pooled replica reproduces the same trajectory as a standalone solve.
func (e *engine) solve(ctx context.Context, seed uint64, trace *Trace, progress func(ProgressInfo)) (*Result, error) {
	pr := e.pr
	o := pr.o
	ext := pr.prob.Ext

	src := rng.New(seed)
	switch m := e.machine.(type) {
	case nil:
		e.machine = o.Factory(e.model, src.Split())
	case reseedable:
		m.Reseed(src.Split())
	default:
		// Machines that cannot be reseeded are rebuilt per solve.
		e.machine = o.Factory(e.model, src.Split())
	}
	e.lam.Reset()
	e.dual.Reset()
	e.dual.Reserve(o.Iterations)
	startSweeps := e.machine.Sweeps()
	buffered, _ := e.machine.(BufferedAnnealer)

	res := &Result{BestCost: math.Inf(1), P: pr.pen}
	sinceImprove := 0

	// Warm start: a feasible initial assignment seeds the best-so-far (the
	// solve never returns worse than it), and the first annealing run
	// continues from it instead of a random state.
	warm := len(o.Initial) > 0
	iters := o.Iterations
	if warm && ext.Orig.Feasible(o.Initial, 1e-9) {
		res.BestCost = pr.prob.Cost(o.Initial)
		res.Best = o.Initial.Clone()
		if o.TargetCost != nil && res.BestCost <= *o.TargetCost {
			res.Stopped = StopTarget
			iters = 0
		}
	}

	for k := 0; k < iters; k++ {
		if ctx.Err() != nil {
			res.Stopped = StopCancelled
			break
		}
		res.Iterations = k + 1
		// Re-program the machine's biases with the current λ:
		// h_k = baseH − Σ_m λ_m row_m / 2 (spin-domain image of λᵀg).
		lagrange.BiasDelta(e.biasDelta, ext, e.lam)
		vecmat.SubInto(e.h, pr.baseH, e.biasDelta)
		e.machine.UpdateBiases(e.h)

		// One annealing run; the paper reads the run's last sample. The
		// first run of a warm-started solve continues from the seeded state.
		if k == 0 && warm && e.annealFromInitial(o) {
			// e.spins holds the run's final state already.
		} else if buffered != nil {
			buffered.AnnealInto(e.spins, pr.sched, o.SweepsPerRun)
		} else {
			s := e.machine.Anneal(pr.sched, o.SweepsPerRun)
			if len(s) != len(e.spins) {
				// copy used to truncate a short return silently, leaving
				// stale tail spins in every downstream residual; fail loudly.
				return nil, fmt.Errorf("core: machine returned %d spins, want %d", len(s), len(e.spins))
			}
			copy(e.spins, s)
		}
		e.spins.BitsInto(e.x)
		ext.ResidualsInto(e.g, e.x)

		feasible := ext.OrigFeasible(e.x, 1e-9)
		cost := pr.prob.Cost(e.x[:ext.NOrig])
		sinceImprove++
		if feasible {
			res.FeasibleCount++
			if cost < res.BestCost {
				res.BestCost = cost
				if res.Best == nil {
					res.Best = make(ising.Bits, ext.NOrig)
				}
				copy(res.Best, e.x[:ext.NOrig])
				sinceImprove = 0
				if o.Checkpoint != nil {
					o.Checkpoint(res.Best, cost)
				}
			}
		}

		// Measured dual value L_k(x_k) = E(x_k) + λᵀg(x_k) for diagnostics
		// and traces.
		lk := pr.energy.Energy(e.x) + e.lam.Values.Dot(e.g)
		e.dual.Record(lk)
		if trace != nil {
			trace.record(cost, feasible, e.lam.Values, lk)
		}

		// λ ← λ + η_k g(x_k).
		e.lam.UpdateScheduled(e.g, e.step)

		if progress != nil {
			progress(ProgressInfo{
				Iteration:     k,
				Total:         o.Iterations,
				BestCost:      res.BestCost,
				FeasibleCount: res.FeasibleCount,
				Samples:       k + 1,
				LambdaNorm:    e.lam.Values.Norm2(),
				Sweeps:        e.machine.Sweeps() - startSweeps,
			})
		}
		if o.TargetCost != nil && res.Best != nil && res.BestCost <= *o.TargetCost {
			res.Stopped = StopTarget
			break
		}
		if o.Patience > 0 && sinceImprove >= o.Patience {
			res.Stopped = StopPatience
			break
		}
	}
	res.TotalSweeps = e.machine.Sweeps() - startSweeps
	res.Lambda = e.lam.Values.Clone()
	res.DualBest = e.dual.Best()
	return res, nil
}

// annealFromInitial runs the first annealing sweep budget from the
// warm-start assignment instead of a random state: the decision bits are
// extended with greedily completed slacks, installed on the machine, and
// the run continues from there into e.spins. It reports false — leaving
// the caller on the cold-start path — when the machine does not support
// adopting a state.
func (e *engine) annealFromInitial(o Options) bool {
	wm, ok := e.machine.(WarmStartable)
	if !ok {
		return false
	}
	ext := e.pr.prob.Ext
	copy(e.x[:ext.NOrig], o.Initial)
	for j := ext.NOrig; j < ext.NTotal; j++ {
		e.x[j] = 0
	}
	ext.CompleteSlacks(e.x)
	e.x.SpinsInto(e.spins)
	wm.SetState(e.spins)
	wm.AnnealFromInto(e.spins, e.pr.sched, o.SweepsPerRun)
	return true
}

// Solve runs Algorithm 1 on the problem.
func Solve(p *Problem, opts Options) (*Result, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext runs Algorithm 1 on the problem under a context. The context
// is checked once per annealing run (not per sweep, keeping the hot path
// unchanged); on cancellation the best-so-far result is returned with a nil
// error and Stopped == StopCancelled.
func SolveContext(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	pr, err := compile(p, opts)
	if err != nil {
		return nil, err
	}
	return pr.newEngine().solve(ctx, pr.o.Seed, pr.o.Trace, pr.o.Progress)
}
