// Package core implements the paper's primary contribution: the
// Self-Adaptive Ising Machine (SAIM) of Algorithm 1.
//
// SAIM solves min f(x) s.t. g(x)=0 by alternating two processes:
//
//  1. an Ising machine heuristically minimizes the Lagrange function
//     L_k(x) = f(x) + P‖g(x)‖² + λ_kᵀ g(x) over one annealing run;
//  2. a CPU-side update moves the multipliers along the measured residuals,
//     λ_{k+1} = λ_k + η·g(x_k), a surrogate-subgradient ascent step on the
//     dual problem max_λ min_x L.
//
// The penalty weight stays fixed at a deliberately small P = α·d·N (below
// the critical Pc the classical penalty method would need); the adapting λ
// closes the resulting gap by reshaping the energy landscape. Because g is
// linear, each λ update re-programs only the Ising bias vector h — the
// coupling matrix J is built once.
//
// Feasible samples are checked against the *original* inequality
// constraints and the best one (by true objective value) is returned.
package core

import (
	"context"
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/lagrange"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/penalty"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Machine is the Ising-machine contract SAIM needs. Any programmable
// annealer that can re-program its bias vector between runs qualifies;
// pbit.Machine is the default implementation.
type Machine interface {
	// UpdateBiases re-programs the field vector h of the machine's model.
	UpdateBiases(h vecmat.Vec)
	// Anneal runs one annealing run of the given number of sweeps from a
	// fresh random state and returns the final configuration.
	Anneal(sched schedule.Schedule, sweeps int) ising.Spins
	// Sweeps reports the cumulative Monte-Carlo sweeps executed.
	Sweeps() int64
}

// MachineFactory builds a Machine for a concrete Hamiltonian. The default
// uses the p-bit emulator.
type MachineFactory func(model *ising.Model, src *rng.Source) Machine

// DefaultFactory returns the software p-bit machine of package pbit.
func DefaultFactory(model *ising.Model, src *rng.Source) Machine {
	return pbit.New(model, src)
}

// Problem is a constrained binary optimization problem in the form SAIM
// consumes: a QUBO objective over the extended (decision + slack) variables
// and the equality-form constraint system.
type Problem struct {
	// Objective is f over Ext.NTotal variables; slack columns must have
	// zero objective coefficients. Typically normalized so that
	// max(|Q|,|c|)=1 (the paper normalizes all instances).
	Objective *ising.QUBO
	// Ext is the equality-form constraint system (normalized likewise).
	Ext *constraint.Extended
	// Cost returns the true (un-normalized) objective of a decision-bit
	// assignment. It is used to rank feasible samples and report results.
	Cost func(x ising.Bits) float64
	// Density is the instance coupling density d used by the P = α·d·N
	// heuristic (e.g. the W-matrix density for QKP, 2/(N+1) for MKP).
	// If zero, the measured J density of the built energy is used.
	Density float64
}

// Validate reports structural problems.
func (p *Problem) Validate() error {
	if p.Objective == nil || p.Ext == nil || p.Cost == nil {
		return fmt.Errorf("core: problem missing objective, constraints, or cost")
	}
	if p.Objective.N() != p.Ext.NTotal {
		return fmt.Errorf("core: objective over %d vars, constraints over %d",
			p.Objective.N(), p.Ext.NTotal)
	}
	return p.Objective.Validate()
}

// Options configures one SAIM solve. Zero values fall back to the paper's
// QKP settings (Table I).
type Options struct {
	// Alpha is the penalty heuristic coefficient in P = α·d·N. Paper:
	// 2 for QKP, 5 for MKP. Ignored when P is set explicitly.
	Alpha float64
	// P overrides the penalty weight when non-zero.
	P float64
	// Eta is the multiplier step size η. Paper: 20 for QKP, 0.05 for MKP.
	Eta float64
	// EtaDecayPower, when non-zero, switches the λ update to the
	// diminishing schedule η_k = η/(k+1)^power (0.5 is the classical
	// subgradient choice). Zero keeps the paper's constant step.
	EtaDecayPower float64
	// Iterations is K, the number of annealing runs (λ updates).
	Iterations int
	// SweepsPerRun is the MCS budget of each run (paper: 1000).
	SweepsPerRun int
	// BetaMax is the final inverse temperature of the linear β-schedule
	// (paper: 10 for QKP, 50 for MKP).
	BetaMax float64
	// Seed drives all stochasticity of the solve.
	Seed uint64
	// NonNegative projects λ onto λ ≥ 0 after each update (ablation).
	NonNegative bool
	// Factory builds the Ising machine; nil means the p-bit emulator.
	Factory MachineFactory
	// Trace, when non-nil, records the per-iteration trajectory.
	Trace *Trace
	// Progress, when non-nil, is invoked once per iteration (after the λ
	// update) with a snapshot of the solve. It runs on the solving
	// goroutine; keep it cheap.
	Progress func(ProgressInfo)
	// TargetCost, when non-nil, stops the solve early as soon as a
	// feasible sample reaches a cost ≤ *TargetCost.
	TargetCost *float64
	// Patience, when positive, stops the solve after this many consecutive
	// iterations without an improvement of the best feasible cost.
	Patience int
}

// ProgressInfo is the per-iteration snapshot streamed to Options.Progress.
type ProgressInfo struct {
	// Iteration is the zero-based index of the iteration just finished;
	// Total is the configured iteration count.
	Iteration, Total int
	// BestCost is the best feasible cost so far (+Inf when none).
	BestCost float64
	// FeasibleCount is the number of feasible samples so far, out of
	// Samples examined (one per iteration for the annealing loops, many
	// per sweep for parallel tempering).
	FeasibleCount int
	// Samples is the number of samples examined so far.
	Samples int
	// LambdaNorm is the Euclidean norm of the current multiplier vector.
	LambdaNorm float64
	// Sweeps is the cumulative Monte-Carlo sweep count so far.
	Sweeps int64
}

// StopReason records why an iterative solve returned.
type StopReason int

const (
	// StopCompleted means the full iteration budget was spent.
	StopCompleted StopReason = iota
	// StopCancelled means the context was cancelled; the result holds the
	// best-so-far state and is still valid.
	StopCancelled
	// StopTarget means a feasible sample reached the target cost.
	StopTarget
	// StopPatience means the improvement patience was exhausted.
	StopPatience
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopCompleted:
		return "completed"
	case StopCancelled:
		return "cancelled"
	case StopTarget:
		return "target-reached"
	case StopPatience:
		return "patience-exhausted"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Alpha == 0 {
		out.Alpha = 2
	}
	if out.Eta == 0 {
		out.Eta = 20
	}
	if out.Iterations == 0 {
		out.Iterations = 2000
	}
	if out.SweepsPerRun == 0 {
		out.SweepsPerRun = 1000
	}
	if out.BetaMax == 0 {
		out.BetaMax = 10
	}
	if out.Factory == nil {
		out.Factory = DefaultFactory
	}
	return out
}

// Trace records the per-iteration trajectory of a SAIM run, enough to
// regenerate the paper's Fig. 3 (QKP cost + λ) and Fig. 5 (MKP cost + λ_m).
type Trace struct {
	// Cost[k] is the true objective of sample x_k (feasible or not).
	Cost []float64
	// Feasible[k] reports whether x_k satisfied the original constraints.
	Feasible []bool
	// Lambda[k] is a copy of λ after iteration k.
	Lambda [][]float64
	// Energy[k] is L_k(x_k), the measured (heuristic) dual value.
	Energy []float64
}

func (t *Trace) record(cost float64, feasible bool, lam vecmat.Vec, energy float64) {
	t.Cost = append(t.Cost, cost)
	t.Feasible = append(t.Feasible, feasible)
	lc := make([]float64, len(lam))
	copy(lc, lam)
	t.Lambda = append(t.Lambda, lc)
	t.Energy = append(t.Energy, energy)
}

// Result is the outcome of a SAIM solve.
type Result struct {
	// Best is the decision-bit assignment of the best feasible sample,
	// or nil when no feasible sample was observed.
	Best ising.Bits
	// BestCost is Cost(Best), +Inf when Best is nil.
	BestCost float64
	// FeasibleCount is the number of iterations whose sample was feasible.
	FeasibleCount int
	// Iterations is the number of annealing runs executed (K).
	Iterations int
	// TotalSweeps is the cumulative MCS spent.
	TotalSweeps int64
	// P is the penalty weight used.
	P float64
	// Lambda is the final multiplier vector.
	Lambda vecmat.Vec
	// DualBest is the largest measured L(x_k), a heuristic estimate of the
	// optimal dual bound M_D.
	DualBest float64
	// Stopped records why the solve returned (budget spent, context
	// cancelled, target cost reached, or patience exhausted).
	Stopped StopReason
}

// FeasibleRatio returns FeasibleCount/Iterations in percent, the number the
// paper reports in parentheses next to average accuracies.
func (r *Result) FeasibleRatio() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return 100 * float64(r.FeasibleCount) / float64(r.Iterations)
}

// HeuristicPenalty returns the paper's P = α·d·N penalty weight for the
// problem, measuring the coupling density of the built energy (objective +
// penalty quadratic structure at a nominal P) when the problem does not
// carry an instance density. Solve uses it whenever Options.P is unset;
// the penalty-method and parallel-tempering baselines share it so every
// backend prices constraints from the same heuristic.
func HeuristicPenalty(p *Problem, alpha float64) float64 {
	d := p.Density
	if d == 0 {
		probe := penalty.Build(p.Objective, p.Ext, 1)
		d = probe.ToIsing().Density()
	}
	return penalty.Heuristic(alpha, d, p.Ext.NTotal)
}

// Solve runs Algorithm 1 on the problem.
func Solve(p *Problem, opts Options) (*Result, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext runs Algorithm 1 on the problem under a context. The context
// is checked once per annealing run (not per sweep, keeping the hot path
// unchanged); on cancellation the best-so-far result is returned with a nil
// error and Stopped == StopCancelled.
func SolveContext(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	ext := p.Ext

	// Energy E = f + P‖g‖², built once; λ terms only touch h afterwards.
	pen := o.P
	if pen == 0 {
		pen = HeuristicPenalty(p, o.Alpha)
	}
	if pen < 0 {
		return nil, fmt.Errorf("core: negative penalty weight %v", pen)
	}
	energy := penalty.Build(p.Objective, ext, pen)
	model := energy.ToIsing()
	baseH := model.H.Clone()

	src := rng.New(o.Seed)
	machine := o.Factory(model, src.Split())
	lam := lagrange.New(ext.M(), o.Eta)
	lam.NonNegative = o.NonNegative
	var stepSched lagrange.StepSchedule = lagrange.ConstantStep{Eta0: o.Eta}
	if o.EtaDecayPower != 0 {
		stepSched = lagrange.DecayStep{Eta0: o.Eta, Power: o.EtaDecayPower}
	}
	sched := schedule.Linear{Start: 0, End: o.BetaMax}

	var dual lagrange.DualTracker
	res := &Result{BestCost: math.Inf(1), P: pen}
	biasDelta := vecmat.NewVec(ext.NTotal)
	h := vecmat.NewVec(ext.NTotal)
	sinceImprove := 0

	for k := 0; k < o.Iterations; k++ {
		if ctx.Err() != nil {
			res.Stopped = StopCancelled
			break
		}
		res.Iterations = k + 1
		// Re-program the machine's biases with the current λ:
		// h_k = baseH − Σ_m λ_m row_m / 2 (spin-domain image of λᵀg).
		lagrange.BiasDelta(biasDelta, ext, lam)
		for i := range h {
			h[i] = baseH[i] - biasDelta[i]
		}
		machine.UpdateBiases(h)

		// One annealing run; the paper reads the run's last sample.
		x := machine.Anneal(sched, o.SweepsPerRun).Bits()
		g := ext.Residuals(x)

		feasible := ext.OrigFeasible(x, 1e-9)
		cost := p.Cost(x[:ext.NOrig])
		sinceImprove++
		if feasible {
			res.FeasibleCount++
			if cost < res.BestCost {
				res.BestCost = cost
				res.Best = x[:ext.NOrig].Clone()
				sinceImprove = 0
			}
		}

		// Measured dual value L_k(x_k) = E(x_k) + λᵀg(x_k) for diagnostics
		// and traces.
		lk := energy.Energy(x) + lam.Values.Dot(g)
		dual.Record(lk)
		if o.Trace != nil {
			o.Trace.record(cost, feasible, lam.Values, lk)
		}

		// λ ← λ + η_k g(x_k).
		lam.UpdateScheduled(g, stepSched)

		if o.Progress != nil {
			o.Progress(ProgressInfo{
				Iteration:     k,
				Total:         o.Iterations,
				BestCost:      res.BestCost,
				FeasibleCount: res.FeasibleCount,
				Samples:       k + 1,
				LambdaNorm:    lam.Values.Norm2(),
				Sweeps:        machine.Sweeps(),
			})
		}
		if o.TargetCost != nil && res.Best != nil && res.BestCost <= *o.TargetCost {
			res.Stopped = StopTarget
			break
		}
		if o.Patience > 0 && sinceImprove >= o.Patience {
			res.Stopped = StopPatience
			break
		}
	}
	res.TotalSweeps = machine.Sweeps()
	res.Lambda = lam.Values.Clone()
	res.DualBest = dual.Best()
	return res, nil
}
