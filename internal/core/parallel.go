package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ising-machines/saim/internal/pbit"
)

// replicaSeed decorrelates replica r deterministically from the base seed.
func replicaSeed(base uint64, r int) uint64 {
	return base ^ (uint64(r+1) * 0x9e3779b97f4a7c15)
}

// ProgressAggregator merges the per-iteration streams of a fleet of
// concurrent workers into one thread-safe callback. Each worker reports
// cumulative values for its own stream; the aggregator maintains
// fleet-wide running totals (best cost, feasible/sample counts, sweeps)
// incrementally — O(1) per event — so a dashboard sees monotone global
// progress instead of interleaved per-worker counters. The replica pool
// and the decomposition meta-solver's round workers share this path.
type ProgressAggregator struct {
	mu  sync.Mutex
	f   func(ProgressInfo) // immutable after construction
	agg ProgressInfo       // guarded by mu
	// Last cumulative snapshot per replica, subtracted before adding the
	// new one (per-solve best costs are monotone, so the fleet min needs
	// no per-replica memory). All three are guarded by mu.
	feasible []int   // guarded by mu
	samples  []int   // guarded by mu
	sweeps   []int64 // guarded by mu
	// norm0 is replica 0's latest ‖λ‖. Multiplier norms from different
	// replicas are unrelated trajectories, so the aggregate streams one
	// coherent trajectory (replica 0's, as before pooling) rather than a
	// last-writer-wins sawtooth. guarded by mu
	norm0 float64
}

// NewProgressAggregator returns an aggregator over `workers` cumulative
// streams relaying merged totals to f; totalIters seeds the Total field of
// every relayed snapshot (use 0 when the total is unknown up front).
func NewProgressAggregator(f func(ProgressInfo), workers, totalIters int) *ProgressAggregator {
	return &ProgressAggregator{
		f:        f,
		agg:      ProgressInfo{Total: totalIters, BestCost: math.Inf(1)},
		feasible: make([]int, workers),
		samples:  make([]int, workers),
		sweeps:   make([]int64, workers),
	}
}

// Callback returns the progress function handed to worker r's stream. It
// is safe for concurrent use across workers; a nil aggregator returns nil.
func (a *ProgressAggregator) Callback(r int) func(ProgressInfo) {
	if a == nil {
		return nil
	}
	return func(p ProgressInfo) {
		a.mu.Lock()
		// Deferred so a panicking user callback cannot leave the aggregator
		// locked — that would silently deadlock every other worker's next
		// progress report while the panic unwinds one goroutine.
		defer a.mu.Unlock()
		// Per-replica streams are cumulative and per-solve best costs are
		// monotone, so replacing replica r's deltas keeps exact totals and
		// the running min stays correct without a rescan.
		a.agg.FeasibleCount += p.FeasibleCount - a.feasible[r]
		a.agg.Samples += p.Samples - a.samples[r]
		a.agg.Sweeps += p.Sweeps - a.sweeps[r]
		a.feasible[r], a.samples[r], a.sweeps[r] = p.FeasibleCount, p.Samples, p.Sweeps
		if p.BestCost < a.agg.BestCost {
			a.agg.BestCost = p.BestCost
		}
		a.agg.Iteration = a.agg.Samples - 1
		if r == 0 {
			a.norm0 = p.LambdaNorm
		}
		a.agg.LambdaNorm = a.norm0
		// Invoke under the lock so user callbacks stay serialized (the
		// WithProgress contract) even with many workers reporting. The
		// deferred unlock above keeps a panicking callback from wedging
		// the other workers, which is what makes this hold-across-call
		// safe enough to exempt.
		a.f(a.agg) //saim:lockok WithProgress serializes user callbacks by contract; the unlock is deferred so even a panic releases mu
	}
}

// SolveParallel runs `replicas` independent SAIM solves concurrently on a
// fixed worker pool with decorrelated seeds, and merges their results.
// Independent restarts are the natural parallelization of Algorithm 1 —
// the λ recursion inside one solve is sequential, but replicas explore
// different multiplier trajectories, which both exploits hardware
// parallelism and hedges against a bad λ path.
//
// The merged result reports the best feasible solution across replicas,
// aggregate feasibility statistics, the total sweep budget, and the λ
// vector of the replica that produced the winner.
func SolveParallel(p *Problem, opts Options, replicas int) (*Result, error) {
	return SolveParallelContext(context.Background(), p, opts, replicas)
}

// SolveParallelContext is SolveParallel under a context: cancellation stops
// every replica at its next annealing-run boundary and the merged
// best-so-far result is returned with Stopped == StopCancelled.
//
// The energy model is compiled once and shared; each of the
// min(GOMAXPROCS, replicas) workers owns one long-lived engine — machine,
// multiplier state, and scratch — reused (reseeded) across every replica it
// picks up, so per-replica setup is O(N) instead of an O(N²) model +
// machine rebuild. Progress callbacks from all replicas are merged
// thread-safely into fleet-wide totals, and the winning replica's
// trajectory is copied into Options.Trace when one is supplied.
func SolveParallelContext(ctx context.Context, p *Problem, opts Options, replicas int) (*Result, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("core: SolveParallel requires replicas > 0, got %d", replicas)
	}
	pr, err := compile(p, opts)
	if err != nil {
		return nil, err
	}

	// A replica that reaches the target cost cancels its siblings so the
	// early stop has wall-clock effect in parallel mode too.
	ctx, stopSiblings := context.WithCancel(ctx)
	defer stopSiblings()

	var agg *ProgressAggregator
	if pr.o.Progress != nil {
		agg = NewProgressAggregator(pr.o.Progress, replicas, pr.o.Iterations*replicas)
	}
	results := make([]*Result, replicas)
	errs := make([]error, replicas)
	// Each replica records a private trace (race-free), but losers are
	// dropped as soon as they are beaten so at most one full trajectory
	// per in-flight worker is ever retained. The kept trace replicates the
	// merge's winner selection: lowest replica index among minimal cost.
	var traceMu sync.Mutex
	traceWinner, winnerCost := -1, math.Inf(1)
	var winnerTrace *Trace
	keepIfWinner := func(r int, cost float64, tr *Trace) {
		traceMu.Lock()
		defer traceMu.Unlock()
		if traceWinner < 0 || cost < winnerCost || (cost == winnerCost && r < traceWinner) {
			traceWinner, winnerCost, winnerTrace = r, cost, tr
		}
	}
	laneTraces := func(count int) []*Trace {
		if pr.o.Trace == nil {
			return nil
		}
		ts := make([]*Trace, count)
		for i := range ts {
			ts[i] = &Trace{}
		}
		return ts
	}

	// Eligible solves route full 64-lane groups through the bit-packed
	// kernels (one J-row walk sweeps 64 replicas); the remainder — and
	// every replica of a custom-factory or PackedOff solve — runs on the
	// scalar per-replica engines. Lane r of a packed group reproduces the
	// scalar replica with the same seed bit-for-bit, so routing never
	// changes results.
	packed := opts.Factory == nil && pr.o.Packed != PackedOff && replicas >= pbit.Lanes
	tasks := buildReplicaTasks(replicas, packed)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	jobs := make(chan replicaTask)
	// failed stops the task feeder (and makes draining workers skip queued
	// tasks) as soon as any replica errors: an error aborts the whole solve,
	// so starting further replicas would only burn cycles on dead work.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var eng *engine        // scalar worker state, built on first scalar task
			var peng *packedEngine // packed worker state, built on first packed task
			for t := range jobs {
				if failed.Load() {
					continue // drain without starting new replicas
				}
				if t.count == 1 {
					r := t.start
					var tr *Trace
					if pr.o.Trace != nil {
						tr = &Trace{}
					}
					if eng == nil {
						eng = pr.newEngine() // one machine + scratch, reused for every replica
					}
					results[r], errs[r] = eng.solve(ctx, replicaSeed(pr.o.Seed, r), tr, agg.Callback(r))
					if errs[r] != nil {
						failed.Store(true)
						continue
					}
					if results[r] != nil {
						if tr != nil {
							keepIfWinner(r, results[r].BestCost, tr)
						}
						if results[r].Stopped == StopTarget {
							stopSiblings()
						}
					}
					continue
				}
				if peng == nil {
					peng = pr.newPackedEngine()
				}
				seeds := make([]uint64, t.count)
				progs := make([]func(ProgressInfo), t.count)
				for i := range seeds {
					seeds[i] = replicaSeed(pr.o.Seed, t.start+i)
					progs[i] = agg.Callback(t.start + i)
				}
				traces := laneTraces(t.count)
				for i, res := range peng.solve(ctx, seeds, traces, progs, stopSiblings) {
					results[t.start+i] = res
					if traces != nil {
						keepIfWinner(t.start+i, res.BestCost, traces[i])
					}
				}
			}
		}()
	}
feed:
	for _, t := range tasks {
		select {
		case jobs <- t:
		case <-ctx.Done():
			// Cancelled (by the caller or a target-reaching sibling):
			// replicas not yet started would each return an empty
			// StopCancelled result, so don't start them at all.
			break feed
		}
		if failed.Load() {
			break
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &Result{BestCost: math.Inf(1), DualBest: math.Inf(-1), P: pr.pen}
	ran := 0
	for _, res := range results {
		if res == nil {
			continue // never started: the feeder stopped before this replica
		}
		ran++
		// StopTarget wins: siblings of a target-reaching replica report
		// StopCancelled only because it stopped them.
		if res.Stopped == StopTarget ||
			(res.Stopped != StopCompleted && merged.Stopped == StopCompleted) {
			merged.Stopped = res.Stopped
		}
		merged.FeasibleCount += res.FeasibleCount
		merged.Iterations += res.Iterations
		merged.TotalSweeps += res.TotalSweeps
		if res.BestCost < merged.BestCost {
			merged.BestCost = res.BestCost
			merged.Best = res.Best
			merged.Lambda = res.Lambda
		}
		if res.DualBest > merged.DualBest {
			merged.DualBest = res.DualBest
		}
	}
	if merged.Lambda == nil {
		for _, res := range results {
			if res != nil {
				merged.Lambda = res.Lambda
				break
			}
		}
	}
	if ran == 0 {
		// The context was cancelled before any replica started.
		merged.Stopped = StopCancelled
	}
	if pr.o.Trace != nil && winnerTrace != nil {
		// Surface the winning replica's trajectory through the caller's
		// trace; keepIfWinner selected the same replica the merge above
		// picked (lowest index among minimal cost).
		*pr.o.Trace = *winnerTrace
	}
	return merged, nil
}

// replicaTask is one unit of replica-pool work: `count` consecutive
// replicas starting at index `start`. Scalar tasks carry one replica;
// packed tasks carry a full pbit.Lanes group.
type replicaTask struct {
	start, count int
}

// buildReplicaTasks splits the replica range into packed 64-lane groups
// (when packing is on) followed by scalar singletons for the remainder.
func buildReplicaTasks(replicas int, packed bool) []replicaTask {
	var tasks []replicaTask
	r := 0
	if packed {
		for ; r+pbit.Lanes <= replicas; r += pbit.Lanes {
			tasks = append(tasks, replicaTask{start: r, count: pbit.Lanes})
		}
	}
	for ; r < replicas; r++ {
		tasks = append(tasks, replicaTask{start: r, count: 1})
	}
	return tasks
}
