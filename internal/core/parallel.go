package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// SolveParallel runs `replicas` independent SAIM solves concurrently (one
// goroutine per replica, capped at GOMAXPROCS workers) with decorrelated
// seeds, and merges their results. Independent restarts are the natural
// parallelization of Algorithm 1 — the λ recursion inside one solve is
// sequential, but replicas explore different multiplier trajectories, which
// both exploits hardware parallelism and hedges against a bad λ path.
//
// The merged result reports the best feasible solution across replicas,
// aggregate feasibility statistics, the total sweep budget, and the λ
// vector of the replica that produced the winner.
func SolveParallel(p *Problem, opts Options, replicas int) (*Result, error) {
	return SolveParallelContext(context.Background(), p, opts, replicas)
}

// SolveParallelContext is SolveParallel under a context: cancellation stops
// every replica at its next annealing-run boundary and the merged
// best-so-far result is returned with Stopped == StopCancelled.
func SolveParallelContext(ctx context.Context, p *Problem, opts Options, replicas int) (*Result, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("core: SolveParallel requires replicas > 0, got %d", replicas)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	// A replica that reaches the target cost cancels its siblings so the
	// early stop has wall-clock effect in parallel mode too.
	ctx, stopSiblings := context.WithCancel(ctx)
	defer stopSiblings()

	results := make([]*Result, replicas)
	errs := make([]error, replicas)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts
			// Decorrelate replicas deterministically from the base seed.
			o.Seed = opts.Seed ^ (uint64(r+1) * 0x9e3779b97f4a7c15)
			// Traces and progress callbacks cannot be shared across
			// goroutines; replicas beyond the first drop them.
			if r > 0 {
				o.Trace = nil
				o.Progress = nil
			}
			results[r], errs[r] = SolveContext(ctx, p, o)
			if results[r] != nil && results[r].Stopped == StopTarget {
				stopSiblings()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &Result{BestCost: math.Inf(1)}
	for _, res := range results {
		// StopTarget wins: siblings of a target-reaching replica report
		// StopCancelled only because it stopped them.
		if res.Stopped == StopTarget ||
			(res.Stopped != StopCompleted && merged.Stopped == StopCompleted) {
			merged.Stopped = res.Stopped
		}
		merged.FeasibleCount += res.FeasibleCount
		merged.Iterations += res.Iterations
		merged.TotalSweeps += res.TotalSweeps
		merged.P = res.P
		if res.BestCost < merged.BestCost {
			merged.BestCost = res.BestCost
			merged.Best = res.Best
			merged.Lambda = res.Lambda
		}
		if res.DualBest > merged.DualBest || merged.DualBest == 0 {
			merged.DualBest = res.DualBest
		}
	}
	if merged.Lambda == nil && len(results) > 0 {
		merged.Lambda = results[0].Lambda
	}
	return merged, nil
}
