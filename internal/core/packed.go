package core

import (
	"context"
	"math"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/lagrange"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// packedEngine drives one pbit packed kernel (64 replica lanes over one
// shared Hamiltonian) through Algorithm 1 in lockstep: per iteration it
// re-programs every active lane's biases from that lane's private λ, runs
// ONE packed annealing run advancing all lanes, then samples, updates λ,
// and checks the stop rules per lane on the CPU side.
//
// Determinism contract: lane r seeded with seed_r reproduces exactly the
// Result a scalar engine.solve(ctx, seed_r, …) produces — same machine
// stream (rng.New(seed_r).Split(), consumed in the scalar draw order by
// the packed kernels), same field arithmetic per lane, same CPU-side λ
// recursion. Lanes that stop early (target/patience) are frozen: their
// Result fields stop advancing while the remaining lanes keep sweeping
// (a packed sweep always advances all 64 lanes, but lanes are independent,
// so the extra sweeps of a done lane are unobservable dead work).
type packedEngine struct {
	pr   *program
	pk   pbit.PackedKernel
	step lagrange.StepSchedule
	lams [pbit.Lanes]*lagrange.Multipliers
	dual [pbit.Lanes]lagrange.DualTracker

	// Per-iteration scratch, shared across lanes (lanes are sampled
	// sequentially within an iteration).
	biasDelta vecmat.Vec
	h         vecmat.Vec
	g         vecmat.Vec
	spins     ising.Spins
	x         ising.Bits
}

// newPackedEngine builds a packed worker around the compiled program. The
// kernel (dense or CSR) follows the same Machine kind resolution as the
// scalar factories; lane sources are placeholders until reseedLanes.
func (pr *program) newPackedEngine() *packedEngine {
	ext := pr.prob.Ext
	pe := &packedEngine{
		pr:        pr,
		step:      lagrange.ConstantStep{Eta0: pr.o.Eta},
		biasDelta: vecmat.NewVec(ext.NTotal),
		h:         vecmat.NewVec(ext.NTotal),
		g:         vecmat.NewVec(ext.M()),
		spins:     ising.NewSpins(ext.NTotal),
		x:         make(ising.Bits, ext.NTotal),
	}
	if pr.o.EtaDecayPower != 0 {
		pe.step = lagrange.DecayStep{Eta0: pr.o.Eta, Power: pr.o.EtaDecayPower}
	}
	if pr.o.Machine.Resolve(pr.model) == MachineSparse {
		pe.pk = pbit.NewPackedSparse(pr.model, rng.New(pr.o.Seed))
	} else {
		pe.pk = pbit.NewPacked(pr.model, rng.New(pr.o.Seed))
	}
	for r := 0; r < pbit.Lanes; r++ {
		pe.lams[r] = lagrange.New(ext.M(), pr.o.Eta)
		pe.lams[r].NonNegative = pr.o.NonNegative
	}
	return pe
}

// solve runs Algorithm 1 on len(seeds) lanes (≤ pbit.Lanes) in lockstep
// and returns one Result per lane, each bit-identical to what the scalar
// engine produces for the same seed. traces and progress, when non-nil,
// carry one per-lane slot (nil slots skip recording for that lane);
// onTarget, when non-nil, fires as soon as any lane reaches the target
// cost (the pool passes stopSiblings so the early stop keeps wall-clock
// effect across workers).
func (pe *packedEngine) solve(ctx context.Context, seeds []uint64, traces []*Trace, progress []func(ProgressInfo), onTarget func()) []*Result {
	pr := pe.pr
	o := pr.o
	ext := pr.prob.Ext
	count := len(seeds)

	for r, seed := range seeds {
		// Exactly the scalar stream: the machine consumes rng.New(seed).Split().
		pe.pk.ReseedLane(r, rng.New(seed).Split())
		pe.lams[r].Reset()
		pe.dual[r].Reset()
		pe.dual[r].Reserve(o.Iterations)
	}

	results := make([]*Result, count)
	done := make([]bool, count)
	sinceImprove := make([]int, count)
	for r := range results {
		results[r] = &Result{BestCost: math.Inf(1), P: pr.pen}
	}
	remaining := count

	// Warm start mirrors engine.solve: a feasible initial assignment seeds
	// every lane's best-so-far, and the first run continues from it instead
	// of a random state.
	warm := len(o.Initial) > 0
	iters := o.Iterations
	if warm && ext.Orig.Feasible(o.Initial, 1e-9) {
		warmCost := pr.prob.Cost(o.Initial)
		for r := range results {
			results[r].BestCost = warmCost
			results[r].Best = o.Initial.Clone()
		}
		if o.TargetCost != nil && warmCost <= *o.TargetCost {
			for r := range results {
				results[r].Stopped = StopTarget
			}
			iters = 0
			remaining = 0
			if onTarget != nil {
				onTarget()
			}
		}
	}
	if warm && remaining > 0 {
		// Pre-build the warm spin configuration once; every lane of a pooled
		// solve warm-starts from the same assignment (cf. annealFromInitial).
		copy(pe.x[:ext.NOrig], o.Initial)
		for j := ext.NOrig; j < ext.NTotal; j++ {
			pe.x[j] = 0
		}
		ext.CompleteSlacks(pe.x)
		pe.x.SpinsInto(pe.spins)
	}

	for k := 0; k < iters && remaining > 0; k++ {
		if ctx.Err() != nil {
			// Same boundary as the scalar loop: lanes cancelled at the top
			// of iteration k report k completed iterations.
			for r := 0; r < count; r++ {
				if !done[r] {
					results[r].Stopped = StopCancelled
					done[r] = true
				}
			}
			remaining = 0
			break
		}

		// Re-program each active lane's biases with its current λ.
		for r := 0; r < count; r++ {
			if done[r] {
				continue
			}
			lagrange.BiasDelta(pe.biasDelta, ext, pe.lams[r])
			vecmat.SubInto(pe.h, pr.baseH, pe.biasDelta)
			pe.pk.UpdateLaneBiases(r, pe.h)
		}

		// One packed annealing run advances every lane together.
		if k == 0 && warm {
			pe.pk.SetAllLanesState(pe.spins)
		} else {
			pe.pk.Randomize()
		}
		for t := 0; t < o.SweepsPerRun; t++ {
			pe.pk.Sweep(pr.sched.Beta(t, o.SweepsPerRun))
		}

		// Sample, track, and update λ per active lane.
		for r := 0; r < count; r++ {
			if done[r] {
				continue
			}
			res := results[r]
			res.Iterations = k + 1
			pe.pk.LaneStateInto(pe.spins, r)
			pe.spins.BitsInto(pe.x)
			ext.ResidualsInto(pe.g, pe.x)

			feasible := ext.OrigFeasible(pe.x, 1e-9)
			cost := pr.prob.Cost(pe.x[:ext.NOrig])
			sinceImprove[r]++
			if feasible {
				res.FeasibleCount++
				if cost < res.BestCost {
					res.BestCost = cost
					if res.Best == nil {
						res.Best = make(ising.Bits, ext.NOrig)
					}
					copy(res.Best, pe.x[:ext.NOrig])
					sinceImprove[r] = 0
					if o.Checkpoint != nil {
						o.Checkpoint(res.Best, cost)
					}
				}
			}

			lk := pr.energy.Energy(pe.x) + pe.lams[r].Values.Dot(pe.g)
			pe.dual[r].Record(lk)
			if traces != nil && traces[r] != nil {
				traces[r].record(cost, feasible, pe.lams[r].Values, lk)
			}
			pe.lams[r].UpdateScheduled(pe.g, pe.step)

			if progress != nil && progress[r] != nil {
				progress[r](ProgressInfo{
					Iteration:     k,
					Total:         o.Iterations,
					BestCost:      res.BestCost,
					FeasibleCount: res.FeasibleCount,
					Samples:       k + 1,
					LambdaNorm:    pe.lams[r].Values.Norm2(),
					Sweeps:        int64(k+1) * int64(o.SweepsPerRun),
				})
			}
			if o.TargetCost != nil && res.Best != nil && res.BestCost <= *o.TargetCost {
				res.Stopped = StopTarget
				done[r] = true
				remaining--
				if onTarget != nil {
					onTarget()
				}
				continue
			}
			if o.Patience > 0 && sinceImprove[r] >= o.Patience {
				res.Stopped = StopPatience
				done[r] = true
				remaining--
			}
		}
	}

	for r := 0; r < count; r++ {
		res := results[r]
		// Each lane ran exactly Iterations packed runs before freezing —
		// the same count a scalar machine's Sweeps() delta reports.
		res.TotalSweeps = int64(res.Iterations) * int64(o.SweepsPerRun)
		res.Lambda = pe.lams[r].Values.Clone()
		res.DualBest = pe.dual[r].Best()
	}
	return results
}
