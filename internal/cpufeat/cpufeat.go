// Package cpufeat detects the small set of CPU features the optional
// assembly kernels require. Detection runs once at init; hot paths read the
// exported flags directly.
//
// The flags are plain variables (not constants) on purpose: differential
// tests flip them to force the portable Go kernels on hardware where the
// assembly path would otherwise be taken, proving both implementations
// produce identical trajectories. Production code must treat them as
// read-only after init.
package cpufeat

// HasAVX2 reports whether the CPU and operating system support 256-bit AVX2
// integer and FP vector instructions (including OS-enabled YMM state). On
// non-amd64 builds it is always false.
var HasAVX2 = detectAVX2()
