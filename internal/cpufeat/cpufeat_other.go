//go:build !amd64

package cpufeat

// detectAVX2 is always false off amd64; the portable kernels run instead.
func detectAVX2() bool { return false }
