package cpufeat

import "testing"

// detectAVX2 has an assembly-backed body on amd64 and a constant-false
// fallback elsewhere; both must be stable (detection is not stateful) and
// agree with the flag captured at init. The differential solver tests
// rely on flipping HasAVX2 at runtime, so this also documents that the
// variable starts out equal to detection, not hardcoded.
func TestDetectAVX2StableAndMatchesInit(t *testing.T) {
	first := detectAVX2()
	if first != HasAVX2 {
		t.Fatalf("detectAVX2() = %v but HasAVX2 = %v at init", first, HasAVX2)
	}
	for i := 0; i < 3; i++ {
		if got := detectAVX2(); got != first {
			t.Fatalf("detectAVX2() unstable: run %d returned %v, first returned %v", i, got, first)
		}
	}
}
