package cpufeat

// cpuid executes the CPUID instruction with the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// detectAVX2 checks, in order: OSXSAVE + AVX CPU support, OS-enabled
// XMM/YMM state via XCR0, and the AVX2 feature bit on leaf 7.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xlo, _ := xgetbv()
	if xlo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
