package faultkit

import (
	"errors"
	"testing"
)

func TestUnarmedInjectIsNil(t *testing.T) {
	if err := Inject("nothing.here"); err != nil {
		t.Fatalf("unarmed Inject returned %v", err)
	}
}

func TestSetClearRoundTrip(t *testing.T) {
	boom := errors.New("boom")
	Set("faultkit.test", Error(boom))
	defer Clear("faultkit.test")
	if err := Inject("faultkit.test"); !errors.Is(err, boom) {
		t.Fatalf("armed Inject = %v, want %v", err, boom)
	}
	Clear("faultkit.test")
	if err := Inject("faultkit.test"); err != nil {
		t.Fatalf("cleared Inject = %v, want nil", err)
	}
}

func TestSetNilClears(t *testing.T) {
	Set("faultkit.nil", Error(errors.New("x")))
	Set("faultkit.nil", nil)
	if err := Inject("faultkit.nil"); err != nil {
		t.Fatalf("Set(nil) did not clear: %v", err)
	}
}

func TestAfter(t *testing.T) {
	boom := errors.New("late")
	fn := After(2, Error(boom))
	for i := 0; i < 2; i++ {
		if err := fn(); err != nil {
			t.Fatalf("call %d = %v, want nil", i, err)
		}
	}
	if err := fn(); !errors.Is(err, boom) {
		t.Fatalf("call 3 = %v, want %v", err, boom)
	}
}

func TestTimes(t *testing.T) {
	boom := errors.New("early")
	fn := Times(1, Error(boom))
	if err := fn(); !errors.Is(err, boom) {
		t.Fatalf("call 1 = %v, want %v", err, boom)
	}
	if err := fn(); err != nil {
		t.Fatalf("call 2 = %v, want nil", err)
	}
}

func TestPanicFault(t *testing.T) {
	Set("faultkit.panic", Panic("kaboom"))
	defer Clear("faultkit.panic")
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	_ = Inject("faultkit.panic")
}
