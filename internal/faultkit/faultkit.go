// Package faultkit is a minimal failpoint registry for fault-injection
// tests.
//
// Production code calls Inject at named points; tests arm those points
// with Set to simulate failures that are otherwise hard to reach — WAL
// write errors, short fsyncs, solver panics, delayed solves. With no
// faults armed, Inject is a single atomic load and no map lookup, so
// leaving the hooks compiled into release binaries costs nothing on the
// hot path.
//
// Point names are dotted lowercase strings owned by the package that
// calls Inject ("wal.append", "wal.sync", "service.solve"). A fault
// function may return an error (delivered to the caller as if the
// operation failed), sleep, or panic — whatever the test needs the
// injection site to do.
package faultkit

import (
	"sync"
	"sync/atomic"
	"time"
)

var (
	// armed counts registered points so Inject can skip the mutex and
	// map lookup entirely when no test has armed anything.
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]func() error{}
)

// Set arms the named failpoint with fn. Passing nil clears it, like
// Clear. Tests should pair Set with a deferred Clear (or t.Cleanup) so
// faults never leak across tests.
func Set(name string, fn func() error) {
	if fn == nil {
		Clear(name)
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = fn
}

// Clear disarms the named failpoint. Clearing an unarmed point is a
// no-op.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Inject triggers the named failpoint if a test has armed it, returning
// whatever the fault function returns. Unarmed points return nil.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := points[name]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Error returns a fault that fails with err on every trigger.
func Error(err error) func() error {
	return func() error { return err }
}

// Panic returns a fault that panics with v on every trigger.
func Panic(v any) func() error {
	return func() error { panic(v) }
}

// Sleep returns a fault that delays the caller by d and then succeeds.
func Sleep(d time.Duration) func() error {
	return func() error { time.Sleep(d); return nil }
}

// After returns a fault that succeeds for the first n triggers and
// delegates to fn from trigger n+1 on. Use it to let an operation make
// progress before failing ("the third append fails").
func After(n int, fn func() error) func() error {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) <= int64(n) {
			return nil
		}
		return fn()
	}
}

// Times returns a fault that delegates to fn for the first n triggers
// and succeeds afterwards ("the first two fsyncs fail, then recover").
func Times(n int, fn func() error) func() error {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) <= int64(n) {
			return fn()
		}
		return nil
	}
}
