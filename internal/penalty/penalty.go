// Package penalty implements the classical penalty method for constrained
// optimization on Ising machines (paper Section II.A): the constrained
// problem min f(x) s.t. g(x)=0 is mapped to the unconstrained energy
//
//	E(x) = f(x) + P·‖g(x)‖²                     (paper eq. 3)
//
// with P > 0. The package provides the QUBO assembly of E from an objective
// and an equality-form constraint system, the paper's P = α·d·N heuristic,
// and the coarse tuning loop the paper uses for the penalty-method baseline
// (increase P until the feasible-sample ratio reaches a target).
package penalty

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
)

// Build returns E = objective + P·Σ_m (row_mᵀx − b_m)² as a QUBO over the
// extended variable set. The objective must already be expressed over
// ext.NTotal variables (slack columns with zero objective coefficients).
func Build(objective *ising.QUBO, ext *constraint.Extended, p float64) *ising.QUBO {
	if objective.N() != ext.NTotal {
		panic(fmt.Sprintf("penalty: objective over %d vars, system over %d", objective.N(), ext.NTotal))
	}
	if p < 0 {
		panic("penalty: negative penalty weight")
	}
	e := objective.Clone()
	AddSquaredPenalty(e, ext, p)
	return e
}

// AddSquaredPenalty accumulates P·Σ_m (row_mᵀx − b_m)² onto q in place.
//
// Expansion per constraint (a ≡ row_m, b ≡ b_m), using x_i² = x_i:
//
//	(aᵀx − b)² = Σ_i a_i²x_i + 2Σ_{i<j} a_i a_j x_i x_j − 2bΣ_i a_i x_i + b².
func AddSquaredPenalty(q *ising.QUBO, ext *constraint.Extended, p float64) {
	if p == 0 {
		return
	}
	for m, row := range ext.Rows {
		b := ext.B[m]
		for i, ai := range row {
			if ai == 0 {
				continue
			}
			q.AddLinear(i, p*(ai*ai-2*b*ai))
			for j := i + 1; j < len(row); j++ {
				if aj := row[j]; aj != 0 {
					q.AddQuad(i, j, 2*p*ai*aj)
				}
			}
		}
		q.AddConst(p * b * b)
	}
}

// Heuristic returns the paper's initial penalty weight P = α·d·N, where d is
// the coupling density of the problem's J matrix and N the number of Ising
// spins including slack bits (Section III.A). The paper uses α=2 for QKP and
// α=5 for MKP.
func Heuristic(alpha, density float64, nSpins int) float64 {
	return alpha * density * float64(nSpins)
}

// FeasibilityFunc evaluates a candidate penalty weight: it must run the
// solver with penalty weight p and report the fraction of measured samples
// that satisfy the original constraints (in [0,1]) together with the best
// feasible objective value found (+Inf if none).
type FeasibilityFunc func(p float64) (feasibleRatio, bestCost float64)

// TuneResult describes the outcome of the paper's coarse penalty tuning.
type TuneResult struct {
	// P is the selected penalty weight.
	P float64
	// FeasibleRatio is the feasible-sample ratio measured at P.
	FeasibleRatio float64
	// BestCost is the best feasible objective seen during tuning (across
	// all probed P values, not only the selected one).
	BestCost float64
	// Probes is the number of P values evaluated.
	Probes int
}

// Tune reproduces the baseline procedure of Section IV.A: starting from p0
// (the heuristic value), multiply P by growth until the feasible-sample
// ratio reaches target (the paper uses ≥ 20%) or maxProbes evaluations have
// been spent. The best feasible cost across all probes is retained, which
// mirrors how the paper reports the tuned penalty method.
func Tune(eval FeasibilityFunc, p0, growth, target float64, maxProbes int) TuneResult {
	if p0 <= 0 {
		panic("penalty: Tune requires positive initial P")
	}
	if growth <= 1 {
		panic("penalty: Tune requires growth > 1")
	}
	res := TuneResult{P: p0, BestCost: math.Inf(1)}
	p := p0
	for k := 0; k < maxProbes; k++ {
		ratio, cost := eval(p)
		res.Probes++
		if cost < res.BestCost {
			res.BestCost = cost
		}
		res.P = p
		res.FeasibleRatio = ratio
		if ratio >= target {
			return res
		}
		p *= growth
	}
	return res
}
