package penalty

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// buildToy returns a 2-variable objective f = -x0 - 2x1 extended with the
// constraint x0 + x1 <= 1 (binary slack: 1 bit).
func buildToy() (*ising.QUBO, *constraint.Extended) {
	sys := constraint.NewSystem(2)
	sys.Add(vecmat.Vec{1, 1}, constraint.LE, 1)
	ext := sys.Extend(constraint.Binary)
	f := ising.NewQUBO(ext.NTotal)
	f.AddLinear(0, -1)
	f.AddLinear(1, -2)
	return f, ext
}

// Property: for every configuration, Build's energy equals
// f(x) + P·Σ residual².
func TestBuildMatchesDefinition(t *testing.T) {
	src := rng.New(21)
	f := func(rawN, rawP uint8) bool {
		n := int(rawN%5) + 2
		p := float64(rawP%50) + 1
		sys := constraint.NewSystem(n)
		a := vecmat.NewVec(n)
		for i := range a {
			a[i] = float64(src.IntRange(1, 9))
		}
		sys.Add(a, constraint.LE, float64(src.IntRange(3, 20)))
		ext := sys.Extend(constraint.Binary)
		obj := ising.NewQUBO(ext.NTotal)
		for i := 0; i < n; i++ {
			obj.AddLinear(i, src.Sym()*5)
			for j := i + 1; j < n; j++ {
				obj.AddQuad(i, j, src.Sym()*5)
			}
		}
		e := Build(obj, ext, p)
		// Check on random configurations.
		for trial := 0; trial < 20; trial++ {
			x := make(ising.Bits, ext.NTotal)
			for i := range x {
				if src.Bool(0.5) {
					x[i] = 1
				}
			}
			g := ext.Residuals(x)
			want := obj.Energy(x) + p*g.Dot(g)
			if math.Abs(e.Energy(x)-want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildZeroPenaltyIsObjective(t *testing.T) {
	f, ext := buildToy()
	e := Build(f, ext, 0)
	x := ising.Bits{1, 0, 1}
	if e.Energy(x) != f.Energy(x) {
		t.Fatal("P=0 energy differs from objective")
	}
}

func TestBuildPanicsOnDimensionMismatch(t *testing.T) {
	_, ext := buildToy()
	bad := ising.NewQUBO(ext.NTotal + 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted mismatched objective")
		}
	}()
	Build(bad, ext, 1)
}

func TestBuildPanicsOnNegativeP(t *testing.T) {
	f, ext := buildToy()
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted negative P")
		}
	}()
	Build(f, ext, -1)
}

// With a large enough P, the global minimizer of E must be feasible and
// optimal for the constrained problem (P >= Pc regime, Fig. 1b).
func TestLargePenaltyGroundStateIsConstrainedOptimum(t *testing.T) {
	f, ext := buildToy()
	e := Build(f, ext, 50)
	bestE, bestMask := math.Inf(1), 0
	for mask := 0; mask < 1<<ext.NTotal; mask++ {
		x := bitsOf(mask, ext.NTotal)
		if en := e.Energy(x); en < bestE {
			bestE, bestMask = en, mask
		}
	}
	best := bitsOf(bestMask, ext.NTotal)
	if !ext.OrigFeasible(best, 1e-9) {
		t.Fatalf("ground state %v infeasible", best)
	}
	// Constrained optimum: x1=1 alone, f=-2.
	if got := f.Energy(best); got != -2 {
		t.Fatalf("ground state objective %v, want -2", got)
	}
}

// With a tiny P, the ground state can be infeasible with energy below OPT —
// the gap the paper illustrates in Fig. 1b (P < Pc).
func TestSmallPenaltyProducesGap(t *testing.T) {
	f, ext := buildToy()
	e := Build(f, ext, 0.1)
	bestE := math.Inf(1)
	var best ising.Bits
	for mask := 0; mask < 1<<ext.NTotal; mask++ {
		x := bitsOf(mask, ext.NTotal)
		if en := e.Energy(x); en < bestE {
			bestE, best = en, x
		}
	}
	if ext.OrigFeasible(best, 1e-9) {
		t.Fatal("expected infeasible ground state at small P")
	}
	if bestE >= -2 {
		t.Fatalf("expected lower bound below OPT=-2, got %v", bestE)
	}
}

func bitsOf(mask, n int) ising.Bits {
	x := make(ising.Bits, n)
	for i := 0; i < n; i++ {
		if mask>>i&1 == 1 {
			x[i] = 1
		}
	}
	return x
}

func TestHeuristic(t *testing.T) {
	// QKP setting from Table I: P = 2·d·N.
	if got := Heuristic(2, 0.5, 313); got != 313 {
		t.Fatalf("Heuristic = %v, want 313", got)
	}
	if got := Heuristic(5, 0.1, 100); got != 50 {
		t.Fatalf("Heuristic = %v, want 50", got)
	}
}

func TestTuneStopsAtTarget(t *testing.T) {
	// Feasibility rises with P; cost worsens with P.
	eval := func(p float64) (float64, float64) {
		ratio := math.Min(1, p/100)
		return ratio, -100 / p
	}
	res := Tune(eval, 10, 2, 0.2, 20)
	if res.FeasibleRatio < 0.2 {
		t.Fatalf("Tune stopped below target: %+v", res)
	}
	if res.P != 20 { // 10 → ratio .1 < .2, 20 → ratio .2 hits target
		t.Fatalf("Tune selected P=%v, want 20", res.P)
	}
	if res.Probes != 2 {
		t.Fatalf("Probes = %d", res.Probes)
	}
	// Best cost seen across probes is from the smallest P.
	if res.BestCost != -10 {
		t.Fatalf("BestCost = %v", res.BestCost)
	}
}

func TestTuneExhaustsProbes(t *testing.T) {
	eval := func(float64) (float64, float64) { return 0, math.Inf(1) }
	res := Tune(eval, 1, 2, 0.2, 5)
	if res.Probes != 5 {
		t.Fatalf("Probes = %d, want 5", res.Probes)
	}
	if !math.IsInf(res.BestCost, 1) {
		t.Fatalf("BestCost = %v", res.BestCost)
	}
}

func TestTunePanicsOnBadArgs(t *testing.T) {
	eval := func(float64) (float64, float64) { return 1, 0 }
	for _, fn := range []func(){
		func() { Tune(eval, 0, 2, 0.2, 5) },
		func() { Tune(eval, 1, 1, 0.2, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Tune accepted bad arguments")
				}
			}()
			fn()
		}()
	}
}
