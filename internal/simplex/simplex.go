// Package simplex implements a dense primal simplex solver for linear
// programs of the form
//
//	maximize   cᵀx
//	subject to A·x ≤ b,  x ≥ 0,  b ≥ 0.
//
// The non-negative right-hand side means the all-slack basis is feasible,
// so no phase-one is needed — exactly the situation of knapsack LP
// relaxations (all data non-negative). The solver uses Dantzig pricing with
// a switch to Bland's rule after a degeneracy streak, which guarantees
// termination.
//
// It exists to provide the LP-relaxation bounds of the branch-and-bound
// solver in internal/exact (the stand-in for the paper's Matlab intlinprog
// runs); it is not a general-purpose LP library.
package simplex

import (
	"fmt"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic solution was found.
	Optimal Status = iota
	// Unbounded means the objective is unbounded above.
	Unbounded
	// IterLimit means the iteration cap was hit before convergence.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is a maximization LP in inequality form.
type Problem struct {
	// C is the objective vector (length n).
	C []float64
	// A holds the constraint rows (m rows of length n).
	A [][]float64
	// B is the right-hand side (length m, entries ≥ 0).
	B []float64
}

// Solution is the result of Maximize.
type Solution struct {
	// X is the primal solution (length n).
	X []float64
	// Value is cᵀX.
	Value float64
	// Status reports how the solve ended.
	Status Status
	// Pivots is the number of simplex pivots performed.
	Pivots int
}

const eps = 1e-9

// Maximize solves the LP. It returns an error for malformed input
// (dimension mismatches or negative right-hand sides).
func Maximize(p Problem) (Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return Solution{}, fmt.Errorf("simplex: %d rows but %d right-hand sides", m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return Solution{}, fmt.Errorf("simplex: row %d has %d entries, want %d", i, len(row), n)
		}
		if p.B[i] < 0 {
			return Solution{}, fmt.Errorf("simplex: negative right-hand side b[%d]=%v", i, p.B[i])
		}
	}

	// Tableau: m rows × (n + m + 1) columns. Columns [0,n) are structural,
	// [n, n+m) slacks, last column is the rhs. Objective row stores reduced
	// costs negated (standard max tableau: we drive entries of the z-row to
	// ≥ 0 using z_j - c_j convention).
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], p.A[i])
		tab[i][n+i] = 1
		tab[i][width-1] = p.B[i]
	}
	obj := make([]float64, width)
	for j := 0; j < n; j++ {
		obj[j] = -p.C[j]
	}
	tab[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	maxIter := 50 * (n + m + 10)
	sol := Solution{X: make([]float64, n)}
	degenerate := 0
	useBland := false

	for iter := 0; iter < maxIter; iter++ {
		// Pricing: find entering column with negative z-row entry.
		enter := -1
		if useBland {
			for j := 0; j < n+m; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < n+m; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			// Optimal: extract solution.
			for i, b := range basis {
				if b < n {
					sol.X[b] = tab[i][width-1]
				}
			}
			val := 0.0
			for j := 0; j < n; j++ {
				val += p.C[j] * sol.X[j]
			}
			sol.Value = val
			sol.Status = Optimal
			return sol, nil
		}

		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > eps {
				r := tab[i][width-1] / a
				if r < bestRatio-eps || (useBland && r < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			sol.Status = Unbounded
			return sol, nil
		}
		if bestRatio < eps {
			degenerate++
			if degenerate > m+n {
				useBland = true
			}
		} else {
			degenerate = 0
		}

		pivot(tab, leave, enter, width, m)
		basis[leave] = enter
		sol.Pivots++
	}
	sol.Status = IterLimit
	return sol, nil
}

// pivot performs a Gauss–Jordan pivot on tab[row][col].
func pivot(tab [][]float64, row, col, width, m int) {
	pr := tab[row]
	inv := 1 / pr[col]
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // kill round-off on the pivot itself
	for i := 0; i <= m; i++ {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		ri := tab[i]
		for j := 0; j < width; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
}

// MaximizeBoxed solves maximize cᵀx s.t. A·x ≤ b, 0 ≤ x ≤ 1 by appending
// the unit upper bounds as explicit rows. This is the LP relaxation of a
// 0–1 program in inequality form.
func MaximizeBoxed(p Problem) (Solution, error) {
	n := len(p.C)
	rows := make([][]float64, 0, len(p.A)+n)
	rhs := make([]float64, 0, len(p.B)+n)
	rows = append(rows, p.A...)
	rhs = append(rhs, p.B...)
	for j := 0; j < n; j++ {
		bound := make([]float64, n)
		bound[j] = 1
		rows = append(rows, bound)
		rhs = append(rhs, 1)
	}
	return Maximize(Problem{C: p.C, A: rows, B: rhs})
}
