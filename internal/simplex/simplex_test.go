package simplex

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/rng"
)

func TestTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18: OPT = 36 at (2, 6).
	sol, err := Maximize(Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Value-36) > 1e-9 {
		t.Fatalf("value = %v, want 36", sol.Value)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-6) > 1e-9 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with no binding constraint on x.
	sol, err := Maximize(Problem{
		C: []float64{1, 0},
		A: [][]float64{{0, 1}},
		B: []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestZeroObjective(t *testing.T) {
	sol, err := Maximize(Problem{
		C: []float64{0, 0},
		A: [][]float64{{1, 1}},
		B: []float64{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Value != 0 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Maximize(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Fatal("accepted row-length mismatch")
	}
	if _, err := Maximize(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}}); err == nil {
		t.Fatal("accepted negative rhs")
	}
	if _, err := Maximize(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Fatal("accepted rhs-length mismatch")
	}
}

func TestSolutionIsFeasible(t *testing.T) {
	src := rng.New(3)
	f := func(raw uint8) bool {
		n := int(raw%6) + 1
		m := int(raw%4) + 1
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := 0; j < n; j++ {
			p.C[j] = src.Float64() * 10
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = src.Float64() * 5
			}
			p.B[i] = src.Float64()*20 + 1
		}
		sol, err := Maximize(p)
		if err != nil || sol.Status == IterLimit {
			return false
		}
		if sol.Status == Unbounded {
			return true // possible when a column is all-zero
		}
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += p.A[i][j] * sol.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// For single-constraint knapsack LPs the optimum has a closed form
// (Dantzig): sort by value/weight, fill greedily with one fractional item.
func TestMatchesDantzigBound(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := src.IntRange(2, 10)
		v := make([]float64, n)
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			v[j] = float64(src.IntRange(1, 100))
			w[j] = float64(src.IntRange(1, 50))
		}
		cap := float64(src.IntRange(10, 200))
		sol, err := MaximizeBoxed(Problem{C: v, A: [][]float64{w}, B: []float64{cap}})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("status %v", sol.Status)
		}
		// Greedy fractional fill.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if v[idx[j]]/w[idx[j]] > v[idx[i]]/w[idx[i]] {
					idx[i], idx[j] = idx[j], idx[i]
				}
			}
		}
		remaining := cap
		want := 0.0
		for _, j := range idx {
			if w[j] <= remaining {
				want += v[j]
				remaining -= w[j]
			} else {
				want += v[j] * remaining / w[j]
				break
			}
		}
		if math.Abs(sol.Value-want) > 1e-6 {
			t.Fatalf("LP %v vs Dantzig %v (v=%v w=%v cap=%v)", sol.Value, want, v, w, cap)
		}
	}
}

func TestMaximizeBoxedRespectsUnitBounds(t *testing.T) {
	sol, err := MaximizeBoxed(Problem{
		C: []float64{10, 1},
		A: [][]float64{{1, 1}},
		B: []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] > 1+1e-9 || sol.X[1] > 1+1e-9 {
		t.Fatalf("x exceeded unit box: %v", sol.X)
	}
	if math.Abs(sol.Value-11) > 1e-9 {
		t.Fatalf("value = %v, want 11", sol.Value)
	}
}

func TestDegenerateLPTerminates(t *testing.T) {
	// Classic cycling-prone LP (Beale); must terminate via Bland fallback.
	sol, err := Maximize(Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Value-0.05) > 1e-9 {
		t.Fatalf("value = %v, want 0.05", sol.Value)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("status strings wrong")
	}
}
