// Package ising defines the two energy models the library is built on:
//
//   - Model: the spin-domain Ising Hamiltonian H(m) = -Σ_{i<j} J_ij m_i m_j
//   - Σ_i h_i m_i + C with m_i ∈ {-1,+1} (paper eq. 1, plus a constant
//     offset so that converted problems keep their absolute energies);
//   - QUBO: the binary-domain quadratic form E(x) = xᵀQx + cᵀx + C with
//     x_i ∈ {0,1} and Q symmetric with zero diagonal (diagonal terms are
//     folded into c because x_i² = x_i).
//
// Constrained problems are assembled as QUBOs (objective + penalty +
// Lagrange terms) and converted once to an Ising Model for the p-bit
// machine. Both models expose full-energy and delta-energy oracles; the
// delta oracles are what make sweeps O(N) per flip.
package ising

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/vecmat"
)

// Spins is a spin configuration with values in {-1, +1}, stored as int8 for
// cache density.
type Spins []int8

// Bits is a binary configuration with values in {0, 1}.
type Bits []int8

// NewSpins returns an all-(-1) configuration of length n (binary all-zero).
func NewSpins(n int) Spins {
	s := make(Spins, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Clone returns a copy of s.
func (s Spins) Clone() Spins {
	out := make(Spins, len(s))
	copy(out, s)
	return out
}

// Bits converts spins to binary variables via x = (m+1)/2.
func (s Spins) Bits() Bits {
	out := make(Bits, len(s))
	s.BitsInto(out)
	return out
}

// BitsInto writes the binary image of s into the caller-owned dst, the
// allocation-free form of Bits. It panics on length mismatch.
//
//saim:hotpath
func (s Spins) BitsInto(dst Bits) {
	if len(dst) != len(s) {
		panic("ising: BitsInto dimension mismatch")
	}
	for i, m := range s {
		if m > 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// Spins converts binary variables to spins via m = 2x-1.
func (b Bits) Spins() Spins {
	out := make(Spins, len(b))
	b.SpinsInto(out)
	return out
}

// SpinsInto writes the spin image of b into the caller-owned dst, the
// allocation-free form of Spins. It panics on length mismatch.
//
//saim:hotpath
func (b Bits) SpinsInto(dst Spins) {
	if len(dst) != len(b) {
		panic("ising: SpinsInto dimension mismatch")
	}
	for i, x := range b {
		if x > 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
}

// Clone returns a copy of b.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Float returns b as a float64 vector.
func (b Bits) Float() vecmat.Vec {
	out := vecmat.NewVec(len(b))
	for i, x := range b {
		out[i] = float64(x)
	}
	return out
}

// Validate reports an error if any entry of s is not ±1.
func (s Spins) Validate() error {
	for i, m := range s {
		if m != 1 && m != -1 {
			return fmt.Errorf("ising: spin %d has invalid value %d", i, m)
		}
	}
	return nil
}

// Validate reports an error if any entry of b is not 0 or 1.
func (b Bits) Validate() error {
	for i, x := range b {
		if x != 0 && x != 1 {
			return fmt.Errorf("ising: bit %d has invalid value %d", i, x)
		}
	}
	return nil
}

// Model is the spin-domain Ising Hamiltonian
//
//	H(m) = -Σ_{i<j} J_ij m_i m_j - Σ_i h_i m_i + Const.
//
// J is symmetric with zero diagonal. The constant carries offsets produced
// by QUBO→Ising conversion so that H equals the original QUBO energy.
type Model struct {
	J     *vecmat.Sym
	H     vecmat.Vec
	Const float64
}

// NewModel returns a zero Hamiltonian over n spins.
func NewModel(n int) *Model {
	return &Model{J: vecmat.NewSym(n), H: vecmat.NewVec(n)}
}

// N returns the number of spins.
func (m *Model) N() int { return m.J.N() }

// Validate checks structural invariants: dimensions agree, J symmetric with
// zero diagonal, all coefficients finite.
func (m *Model) Validate() error {
	n := m.J.N()
	if len(m.H) != n {
		return fmt.Errorf("ising: J order %d but h length %d", n, len(m.H))
	}
	if !m.J.IsSymmetric() {
		return fmt.Errorf("ising: J not symmetric")
	}
	for i := 0; i < n; i++ {
		if m.J.At(i, i) != 0 {
			return fmt.Errorf("ising: J diagonal %d non-zero", i)
		}
		if math.IsNaN(m.H[i]) || math.IsInf(m.H[i], 0) {
			return fmt.Errorf("ising: h[%d] not finite", i)
		}
		for j := 0; j < n; j++ {
			v := m.J.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ising: J[%d,%d] not finite", i, j)
			}
		}
	}
	if math.IsNaN(m.Const) || math.IsInf(m.Const, 0) {
		return fmt.Errorf("ising: constant not finite")
	}
	return nil
}

// Energy returns H(m) for the given configuration.
//
//saim:hotpath
func (m *Model) Energy(s Spins) float64 {
	n := m.N()
	if len(s) != n {
		panic("ising: Energy dimension mismatch")
	}
	e := m.Const
	for i := 0; i < n; i++ {
		row := m.J.Row(i)
		si := float64(s[i])
		acc := 0.0
		for j := i + 1; j < n; j++ {
			acc += row[j] * float64(s[j])
		}
		e -= si * acc
		e -= m.H[i] * si
	}
	return e
}

// LocalField returns I_i = Σ_j J_ij m_j + h_i, the input of p-bit i
// (paper eq. 9).
//
//saim:hotpath
func (m *Model) LocalField(s Spins, i int) float64 {
	row := m.J.Row(i)
	acc := m.H[i]
	for j, v := range row {
		acc += v * float64(s[j])
	}
	return acc
}

// DeltaFlip returns H(m with spin i flipped) − H(m) = 2·m_i·I_i where I_i is
// the local field. Flipping when DeltaFlip < 0 lowers the energy.
//
//saim:hotpath
func (m *Model) DeltaFlip(s Spins, i int) float64 {
	return 2 * float64(s[i]) * m.LocalField(s, i)
}

// Density returns the fraction of non-zero couplings among the N(N-1)/2
// possible pairs; this is the d used in the paper's P = α·d·N heuristic.
func (m *Model) Density() float64 { return m.J.OffDiagDensity() }

// QUBO is the binary-domain quadratic model
//
//	E(x) = Σ_{i<j} 2·Q_ij x_i x_j + Σ_i c_i x_i + Const
//	     = xᵀQx + cᵀx + Const     (Q symmetric, zero diagonal)
//
// using x_i ∈ {0,1}. Diagonal quadratic coefficients must be folded into c
// (AddQuad does this automatically).
type QUBO struct {
	Q     *vecmat.Sym
	C     vecmat.Vec
	Const float64
}

// NewQUBO returns a zero QUBO over n binary variables.
func NewQUBO(n int) *QUBO {
	return &QUBO{Q: vecmat.NewSym(n), C: vecmat.NewVec(n)}
}

// N returns the number of binary variables.
func (q *QUBO) N() int { return q.Q.N() }

// AddQuad accumulates the term w·x_i·x_j onto the model. For i == j the term
// is linear (x_i² = x_i) and lands in C. For i ≠ j the weight is split
// symmetrically so that xᵀQx sums to w·x_i·x_j.
func (q *QUBO) AddQuad(i, j int, w float64) {
	if i == j {
		q.C[i] += w
		return
	}
	q.Q.Add(i, j, w/2)
}

// AddLinear accumulates w·x_i.
func (q *QUBO) AddLinear(i int, w float64) { q.C[i] += w }

// AddConst accumulates a constant offset.
func (q *QUBO) AddConst(w float64) { q.Const += w }

// Energy returns E(x).
func (q *QUBO) Energy(x Bits) float64 {
	n := q.N()
	if len(x) != n {
		panic("ising: QUBO Energy dimension mismatch")
	}
	e := q.Const
	for i := 0; i < n; i++ {
		if x[i] == 0 {
			continue
		}
		row := q.Q.Row(i)
		acc := q.C[i]
		for j := i + 1; j < n; j++ {
			if x[j] != 0 {
				acc += 2 * row[j]
			}
		}
		e += acc
	}
	return e
}

// DeltaFlip returns E(x with bit i toggled) − E(x).
func (q *QUBO) DeltaFlip(x Bits, i int) float64 {
	row := q.Q.Row(i)
	acc := q.C[i]
	for j, v := range row {
		if x[j] != 0 && j != i {
			acc += 2 * v
		}
	}
	if x[i] == 0 {
		return acc
	}
	return -acc
}

// Validate checks structural invariants of the QUBO.
func (q *QUBO) Validate() error {
	n := q.Q.N()
	if len(q.C) != n {
		return fmt.Errorf("ising: Q order %d but c length %d", n, len(q.C))
	}
	if !q.Q.IsSymmetric() {
		return fmt.Errorf("ising: Q not symmetric")
	}
	for i := 0; i < n; i++ {
		if q.Q.At(i, i) != 0 {
			return fmt.Errorf("ising: Q diagonal %d non-zero", i)
		}
	}
	return nil
}

// ToIsing converts the QUBO to an equivalent spin model via x = (1+m)/2 so
// that for every configuration Model.Energy(x.Spins()) == QUBO.Energy(x).
//
// Derivation: substituting x_i = (1+m_i)/2 into E gives, for each pair term
// 2Q_ij x_i x_j, a coupling J_ij = -Q_ij/2, field contributions Q_ij/2 to
// both h_i-sides, and constants; each linear term c_i x_i contributes
// h_i -= c_i/2 ... with the sign convention of H (note the minus signs in H).
func (q *QUBO) ToIsing() *Model {
	n := q.N()
	m := NewModel(n)
	m.Const = q.Const
	for i := 0; i < n; i++ {
		// Linear: c_i (1+m_i)/2 = c_i/2 + (c_i/2) m_i  ⇒ h_i -= c_i/2.
		m.H[i] -= q.C[i] / 2
		m.Const += q.C[i] / 2
		row := q.Q.Row(i)
		for j := i + 1; j < n; j++ {
			w := 2 * row[j] // full pair weight w·x_i·x_j
			if w == 0 {
				continue
			}
			// w x_i x_j = w/4 (1 + m_i + m_j + m_i m_j)
			m.J.Add(i, j, -w/4)
			m.H[i] -= w / 4
			m.H[j] -= w / 4
			m.Const += w / 4
		}
	}
	return m
}

// Normalize rescales the model in place so that max(|Q|, |c|) == 1 (the
// paper normalizes W and h this way to reuse one β-schedule across
// instances). The constant is scaled by the same factor. It returns the
// scale factor applied (1 for an all-zero model). Energies scale linearly,
// so argmins are unchanged.
func (q *QUBO) Normalize() float64 {
	m := math.Max(q.Q.MaxAbs(), q.C.MaxAbs())
	if m == 0 {
		return 1
	}
	inv := 1 / m
	q.Q.Scale(inv)
	q.C.Scale(inv)
	q.Const *= inv
	return inv
}

// Clone returns a deep copy of q.
func (q *QUBO) Clone() *QUBO {
	return &QUBO{Q: q.Q.Clone(), C: q.C.Clone(), Const: q.Const}
}
