package ising

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/rng"
)

// randomQUBO builds a dense random QUBO over n variables.
func randomQUBO(src *rng.Source, n int) *QUBO {
	q := NewQUBO(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, src.Sym()*3)
		for j := i + 1; j < n; j++ {
			q.AddQuad(i, j, src.Sym()*3)
		}
	}
	q.AddConst(src.Sym())
	return q
}

func randomBits(src *rng.Source, n int) Bits {
	b := make(Bits, n)
	for i := range b {
		if src.Bool(0.5) {
			b[i] = 1
		}
	}
	return b
}

func TestSpinsBitsRoundTrip(t *testing.T) {
	s := Spins{-1, 1, 1, -1}
	got := s.Bits().Spins()
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestNewSpinsAllMinusOne(t *testing.T) {
	s := NewSpins(5)
	for i, m := range s {
		if m != -1 {
			t.Fatalf("spin %d = %d", i, m)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	if err := (Spins{0}).Validate(); err == nil {
		t.Fatal("Spins{0} should be invalid")
	}
	if err := (Bits{2}).Validate(); err == nil {
		t.Fatal("Bits{2} should be invalid")
	}
	if err := (Bits{0, 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBitsFloat(t *testing.T) {
	f := Bits{1, 0, 1}.Float()
	if f[0] != 1 || f[1] != 0 || f[2] != 1 {
		t.Fatalf("Float = %v", f)
	}
}

func TestQUBOEnergyByHand(t *testing.T) {
	// E = 3 x0 x1 - 2 x0 + x1 + 5
	q := NewQUBO(2)
	q.AddQuad(0, 1, 3)
	q.AddLinear(0, -2)
	q.AddLinear(1, 1)
	q.AddConst(5)
	cases := []struct {
		x    Bits
		want float64
	}{
		{Bits{0, 0}, 5},
		{Bits{1, 0}, 3},
		{Bits{0, 1}, 6},
		{Bits{1, 1}, 7},
	}
	for _, c := range cases {
		if got := q.Energy(c.x); got != c.want {
			t.Fatalf("E(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestAddQuadDiagonalBecomesLinear(t *testing.T) {
	q := NewQUBO(1)
	q.AddQuad(0, 0, 4)
	if q.C[0] != 4 || q.Q.At(0, 0) != 0 {
		t.Fatalf("diagonal term mishandled: c=%v Q00=%v", q.C[0], q.Q.At(0, 0))
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQUBODeltaFlipMatchesRecompute(t *testing.T) {
	src := rng.New(42)
	f := func(raw uint8) bool {
		n := int(raw%10) + 2
		q := randomQUBO(src, n)
		x := randomBits(src, n)
		for i := 0; i < n; i++ {
			before := q.Energy(x)
			delta := q.DeltaFlip(x, i)
			x[i] ^= 1
			after := q.Energy(x)
			x[i] ^= 1
			if math.Abs((after-before)-delta) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsingEnergyByHand(t *testing.T) {
	// H = -J01 m0 m1 - h0 m0 - h1 m1, J01=2, h=(1,-1)
	m := NewModel(2)
	m.J.Set(0, 1, 2)
	m.H[0] = 1
	m.H[1] = -1
	if got := m.Energy(Spins{1, 1}); got != -2 {
		t.Fatalf("H(+,+) = %v, want -2", got)
	}
	// H(+,-) = -2·(1·-1) - 1·1 - (-1)·(-1) = 2 - 1 - 1 = 0.
	if got := m.Energy(Spins{1, -1}); got != 0 {
		t.Fatalf("H(+,-) = %v, want 0", got)
	}
}

func TestIsingDeltaFlipMatchesRecompute(t *testing.T) {
	src := rng.New(7)
	f := func(raw uint8) bool {
		n := int(raw%10) + 2
		q := randomQUBO(src, n)
		m := q.ToIsing()
		s := randomBits(src, n).Spins()
		for i := 0; i < n; i++ {
			before := m.Energy(s)
			delta := m.DeltaFlip(s, i)
			s[i] = -s[i]
			after := m.Energy(s)
			s[i] = -s[i]
			if math.Abs((after-before)-delta) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The central conversion invariant: QUBO and converted Ising model agree on
// every configuration.
func TestQUBOToIsingEnergyEquivalence(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		n := src.IntRange(1, 8)
		q := randomQUBO(src, n)
		m := q.ToIsing()
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		// Exhaustive over all 2^n configurations.
		for mask := 0; mask < 1<<n; mask++ {
			x := make(Bits, n)
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					x[i] = 1
				}
			}
			eq := q.Energy(x)
			ei := m.Energy(x.Spins())
			if math.Abs(eq-ei) > 1e-9 {
				t.Fatalf("n=%d mask=%b: QUBO %v vs Ising %v", n, mask, eq, ei)
			}
		}
	}
}

func TestLocalFieldConsistentWithDelta(t *testing.T) {
	src := rng.New(3)
	n := 6
	q := randomQUBO(src, n)
	m := q.ToIsing()
	s := randomBits(src, n).Spins()
	for i := 0; i < n; i++ {
		want := 2 * float64(s[i]) * m.LocalField(s, i)
		if got := m.DeltaFlip(s, i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("DeltaFlip %v vs 2 m I %v", got, want)
		}
	}
}

func TestNormalizeScalesToUnit(t *testing.T) {
	q := NewQUBO(2)
	q.AddQuad(0, 1, -8)
	q.AddLinear(0, 4)
	q.AddConst(2)
	x := Bits{1, 1}
	before := q.Energy(x)
	scale := q.Normalize()
	if math.Abs(math.Max(q.Q.MaxAbs(), q.C.MaxAbs())-1) > 1e-12 {
		t.Fatalf("max coefficient after Normalize = %v", math.Max(q.Q.MaxAbs(), q.C.MaxAbs()))
	}
	if math.Abs(q.Energy(x)-before*scale) > 1e-12 {
		t.Fatalf("Normalize broke energy scaling: %v vs %v", q.Energy(x), before*scale)
	}
}

func TestNormalizeZeroModelNoop(t *testing.T) {
	q := NewQUBO(3)
	if got := q.Normalize(); got != 1 {
		t.Fatalf("zero-model Normalize scale = %v", got)
	}
}

// Normalization must not change the argmin.
func TestNormalizePreservesArgmin(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 20; trial++ {
		n := src.IntRange(2, 6)
		q := randomQUBO(src, n)
		qn := q.Clone()
		qn.Normalize()
		best, bestN := 0, 0
		bestE, bestEN := math.Inf(1), math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			x := make(Bits, n)
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					x[i] = 1
				}
			}
			if e := q.Energy(x); e < bestE {
				bestE, best = e, mask
			}
			if e := qn.Energy(x); e < bestEN {
				bestEN, bestN = e, mask
			}
		}
		if best != bestN {
			t.Fatalf("Normalize changed argmin: %b vs %b", best, bestN)
		}
	}
}

func TestModelValidateCatchesAsymmetry(t *testing.T) {
	m := NewModel(2)
	// Corrupt symmetry through the raw row view.
	m.J.Row(0)[1] = 1
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric J")
	}
}

func TestModelValidateCatchesDiagonal(t *testing.T) {
	m := NewModel(2)
	m.J.Set(0, 0, 1)
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted non-zero diagonal")
	}
}

func TestModelValidateCatchesNaN(t *testing.T) {
	m := NewModel(1)
	m.H[0] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted NaN field")
	}
}

func TestDensity(t *testing.T) {
	m := NewModel(4)
	m.J.Set(0, 1, 1)
	m.J.Set(1, 2, 1)
	m.J.Set(2, 3, 1)
	want := 3.0 / 6.0
	if got := m.Density(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Density = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := NewQUBO(2)
	q.AddQuad(0, 1, 2)
	c := q.Clone()
	c.AddQuad(0, 1, 2)
	if q.Q.At(0, 1) != 1 { // AddQuad splits weight/2
		t.Fatalf("Clone aliases original: %v", q.Q.At(0, 1))
	}
}

func TestQUBOValidateCatchesDiagonal(t *testing.T) {
	q := NewQUBO(2)
	q.Q.Set(1, 1, 3)
	if err := q.Validate(); err == nil {
		t.Fatal("Validate accepted diagonal Q entry")
	}
}
