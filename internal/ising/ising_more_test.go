package ising

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/rng"
)

// Energy must be invariant under the (QUBO → Ising → spins → bits) round
// trip for boundary configurations.
func TestBoundaryConfigurations(t *testing.T) {
	src := rng.New(71)
	q := randomQUBO(src, 7)
	m := q.ToIsing()
	allZero := make(Bits, 7)
	allOne := make(Bits, 7)
	for i := range allOne {
		allOne[i] = 1
	}
	for _, x := range []Bits{allZero, allOne} {
		if math.Abs(q.Energy(x)-m.Energy(x.Spins())) > 1e-9 {
			t.Fatalf("boundary mismatch at %v", x)
		}
	}
	// All-zero QUBO energy is exactly the constant.
	if q.Energy(allZero) != q.Const {
		t.Fatalf("E(0) = %v, want Const %v", q.Energy(allZero), q.Const)
	}
}

// Double flip = sum of single flips evaluated sequentially.
func TestSequentialFlipComposition(t *testing.T) {
	src := rng.New(73)
	f := func(raw uint8) bool {
		n := int(raw%6) + 3
		q := randomQUBO(src, n)
		x := randomBits(src, n)
		i, j := src.Intn(n), src.Intn(n)
		if i == j {
			return true
		}
		e0 := q.Energy(x)
		d1 := q.DeltaFlip(x, i)
		x[i] ^= 1
		d2 := q.DeltaFlip(x, j)
		x[j] ^= 1
		e2 := q.Energy(x)
		return math.Abs((e0+d1+d2)-e2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Flipping the same bit twice is a no-op on the energy.
func TestFlipInvolution(t *testing.T) {
	src := rng.New(79)
	q := randomQUBO(src, 9)
	x := randomBits(src, 9)
	for i := 0; i < 9; i++ {
		d1 := q.DeltaFlip(x, i)
		x[i] ^= 1
		d2 := q.DeltaFlip(x, i)
		x[i] ^= 1
		if math.Abs(d1+d2) > 1e-12 {
			t.Fatalf("flip involution broken at %d: %v + %v", i, d1, d2)
		}
	}
}

// Spin-domain global flip symmetry: with h = 0 the Ising energy is
// invariant under m → −m.
func TestGlobalSpinFlipSymmetry(t *testing.T) {
	src := rng.New(83)
	m := NewModel(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			m.J.Set(i, j, src.Sym())
		}
	}
	s := randomBits(src, 8).Spins()
	flipped := s.Clone()
	for i := range flipped {
		flipped[i] = -flipped[i]
	}
	if math.Abs(m.Energy(s)-m.Energy(flipped)) > 1e-9 {
		t.Fatal("h=0 model not flip-symmetric")
	}
}

func TestQUBOAddConstAccumulates(t *testing.T) {
	q := NewQUBO(1)
	q.AddConst(2)
	q.AddConst(3)
	if q.Energy(Bits{0}) != 5 {
		t.Fatalf("const = %v", q.Energy(Bits{0}))
	}
}

func TestEnergyPanicsOnDimensionMismatch(t *testing.T) {
	q := NewQUBO(2)
	for _, fn := range []func(){
		func() { q.Energy(Bits{1}) },
		func() { NewModel(2).Energy(Spins{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
