// Package decompose implements the qbsolv-style subproblem decomposition
// loop that lets the library attack instances far beyond what any whole-
// problem backend can materialize (DESIGN.md §6).
//
// The engine operates on a sparse View of a QUBO energy
//
//	E(x) = C + Σ_i c_i x_i + Σ_{i<j} w_ij x_i x_j,   x ∈ {0,1}^N,
//
// stored as CSR adjacency so memory is O(N + nnz) rather than the O(N²) of
// the dense solvers. Each round it
//
//  1. ranks the non-tabu variables by local-field magnitude |f_i| where
//     f_i = c_i + Σ_j w_ij x_j (|ΔE of flipping i| = |f_i|, so the ranking
//     orders variables by how much the current assignment has at stake in
//     them),
//  2. grows disjoint blocks of SubSize variables: each block is seeded at
//     the highest-impact unclaimed variable and expanded through the
//     coupling graph, always claiming the highest-impact frontier
//     variable next, so a subproblem holds variables that actually
//     interact (on sparse instances a pure impact top-k would scatter,
//     degenerate into independent single-bit decisions, and stall in
//     single-flip local optima); selected variables go tabu for
//     TabuTenure rounds so consecutive rounds explore different regions,
//  3. extracts each block's induced subproblem — the frozen complement is
//     folded into the block's linear terms, so the sub-energy differs from
//     the global energy only by a constant — and solves the blocks
//     concurrently on a fixed worker pool via the caller's SolveBlock,
//  4. clamps each proposal back sequentially, accepting it only when the
//     exact global energy strictly improves (proposals were solved against
//     the round-start assignment, so later blocks re-test against the
//     evolving one),
//
// and stops when no round improves anymore: at least TabuTenure+1
// consecutive rounds accepted nothing AND the stale rounds together
// re-examined at least N variables (tabu rotation makes consecutive
// selections near-disjoint, so that is one full look at the instance
// since the last improvement). It also stops when the round cap is
// reached, the caller's OnRound requests a stop, or the context is
// cancelled.
//
// The engine is solver-agnostic: SolveBlock receives the extracted
// subproblem and returns proposed bits, so any backend — or any remote
// service — can serve as the inner solver. The saim registry's "decomp"
// solver and the public decompose package are the two front ends.
package decompose

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

// View is a sparse, immutable QUBO energy over n binary variables. Build
// one with a ViewBuilder. Pair weights are stored symmetrically (each edge
// appears in both endpoint rows with the full weight w_ij).
type View struct {
	n      int
	c      float64
	lin    []float64
	rowPtr []int32
	colIdx []int32
	weight []float64
}

// N returns the number of variables.
func (v *View) N() int { return v.n }

// NNZ returns the number of stored pair couplings (each pair counted once).
func (v *View) NNZ() int { return len(v.colIdx) / 2 }

// Energy returns E(x) by a full pass over the view, O(N + nnz).
//
//saim:hotpath
func (v *View) Energy(x ising.Bits) float64 {
	if len(x) != v.n {
		panic("decompose: Energy dimension mismatch")
	}
	e := v.c
	for i := 0; i < v.n; i++ {
		if x[i] == 0 {
			continue
		}
		e += v.lin[i]
		for k := v.rowPtr[i]; k < v.rowPtr[i+1]; k++ {
			if j := v.colIdx[k]; int(j) > i && x[j] != 0 {
				e += v.weight[k]
			}
		}
	}
	return e
}

// ViewBuilder accumulates terms of a sparse QUBO energy.
type ViewBuilder struct {
	n     int
	c     float64
	lin   []float64
	pairs map[[2]int32]float64
}

// NewViewBuilder returns a builder over n variables. It panics for n ≤ 0.
func NewViewBuilder(n int) *ViewBuilder {
	if n <= 0 {
		panic(fmt.Sprintf("decompose: NewViewBuilder requires n > 0, got %d", n))
	}
	return &ViewBuilder{n: n, lin: make([]float64, n), pairs: map[[2]int32]float64{}}
}

// AddConst accumulates a constant offset.
func (b *ViewBuilder) AddConst(w float64) { b.c += w }

// AddLinear accumulates w·x_i.
func (b *ViewBuilder) AddLinear(i int, w float64) { b.lin[i] += w }

// AddPair accumulates the full pair weight w·x_i·x_j (i ≠ j). Duplicate
// pairs merge. It panics on i == j; fold x_i² = x_i into AddLinear instead.
func (b *ViewBuilder) AddPair(i, j int, w float64) {
	if i == j {
		panic(fmt.Sprintf("decompose: AddPair requires i != j (got %d)", i))
	}
	if i > j {
		i, j = j, i
	}
	b.pairs[[2]int32{int32(i), int32(j)}] += w
}

// Build freezes the accumulated terms into an immutable CSR View. Zero
// merged pair weights are dropped. The builder may be reused afterwards.
func (b *ViewBuilder) Build() *View {
	deg := make([]int32, b.n)
	for p, w := range b.pairs {
		if w == 0 {
			continue
		}
		deg[p[0]]++
		deg[p[1]]++
	}
	rowPtr := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i]
	}
	nnz := rowPtr[b.n]
	colIdx := make([]int32, nnz)
	weight := make([]float64, nnz)
	next := make([]int32, b.n)
	copy(next, rowPtr[:b.n])
	for p, w := range b.pairs {
		if w == 0 {
			continue
		}
		i, j := p[0], p[1]
		colIdx[next[i]], weight[next[i]] = j, w
		next[i]++
		colIdx[next[j]], weight[next[j]] = i, w
		next[j]++
	}
	// Sort each row by column so extraction and energy passes are
	// deterministic regardless of map iteration order.
	for i := 0; i < b.n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		row := colIdx[lo:hi]
		ws := weight[lo:hi]
		sort.Sort(&rowSorter{row, ws})
	}
	return &View{
		n:      b.n,
		c:      b.c,
		lin:    append([]float64(nil), b.lin...),
		rowPtr: rowPtr,
		colIdx: colIdx,
		weight: weight,
	}
}

type rowSorter struct {
	idx []int32
	w   []float64
}

func (s *rowSorter) Len() int           { return len(s.idx) }
func (s *rowSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *rowSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// Pair is one intra-block coupling of an extracted subproblem, in local
// (block) variable indices.
type Pair struct {
	I, J int
	W    float64
}

// Sub is one extracted subproblem: the induced QUBO over Vars with the
// frozen complement folded into Lin. Minimizing Lin/Pairs over the block
// bits minimizes the global energy restricted to the block (they differ by
// a constant).
type Sub struct {
	// Vars maps local index → global variable id, in impact-rank order.
	Vars []int
	// Lin[k] is the local linear coefficient of Vars[k]: the global linear
	// term plus Σ over frozen neighbors of w_ij·x̄_j.
	Lin []float64
	// Pairs are the couplings with both endpoints inside the block.
	Pairs []Pair
	// Warm is the current assignment of the block bits — the natural warm
	// start for the inner solve, and the fallback proposal.
	Warm ising.Bits
}

// Round is the per-round progress snapshot passed to Options.OnRound.
type Round struct {
	// Index is the zero-based round just finished; Blocks is how many
	// subproblems it solved, Accepted how many proposals improved the
	// global energy, Moved how many bits changed.
	Index, Blocks, Accepted, Moved int
	// Energy is the global energy after the round's clamps.
	Energy float64
}

// Options configures one decomposition run.
type Options struct {
	// SubSize is the number of variables per subproblem (default 256,
	// clamped to N).
	SubSize int
	// Rounds caps the number of rounds; 0 means run until convergence.
	Rounds int
	// TabuTenure is how many rounds a just-selected variable is excluded
	// from selection (0 disables tabu). Convergence is declared after
	// TabuTenure+1 consecutive rounds with no accepted proposal.
	TabuTenure int
	// MaxBlocks caps the subproblems per round. The default is
	// max(4, ⌈N/(SubSize·(TabuTenure+1))⌉) — enough blocks that the tabu
	// rotation sweeps the whole instance every TabuTenure+1 rounds.
	// Without that floor, impact ranking starves the untouched regions:
	// already-optimized variables sit in steep local minima and out-rank
	// the flat fields of never-visited ones. The default deliberately
	// ignores Workers so that, for a fixed seed, results are identical on
	// any machine — block proposals are seeded per (round, block) and
	// merged in block order, so parallelism never touches the trajectory.
	MaxBlocks int
	// Workers is the size of the block-solving worker pool (default
	// GOMAXPROCS, clamped to the block count).
	Workers int
	// Seed drives the initial assignment and the per-block inner seeds.
	Seed uint64
	// Initial, when non-empty, is the starting assignment (length N);
	// otherwise the engine starts from a seeded random assignment.
	Initial ising.Bits
	// SolveBlock solves one extracted subproblem and returns the proposed
	// block bits (length len(sub.Vars)). worker identifies the pool slot
	// (stable across rounds) so callers can keep per-worker cumulative
	// progress state. Returning sub.Warm (or nil) proposes no change.
	SolveBlock func(ctx context.Context, worker int, sub *Sub, seed uint64) (ising.Bits, error)
	// OnAccept, when non-nil, runs after every accepted clamp with the
	// evolving assignment and its energy. The slice is the engine's
	// buffer — copy it to retain it.
	OnAccept func(x ising.Bits, energy float64)
	// OnRound, when non-nil, runs after every round; returning true stops
	// the solve with StoppedByCallback.
	OnRound func(r Round) bool
}

// StopCause records why a run returned.
type StopCause int

const (
	// Converged means TabuTenure+1 consecutive rounds accepted nothing.
	Converged StopCause = iota
	// RoundCap means the configured round budget was spent.
	RoundCap
	// Cancelled means the context was cancelled mid-run.
	Cancelled
	// StoppedByCallback means OnRound requested the stop.
	StoppedByCallback
)

// String implements fmt.Stringer.
func (c StopCause) String() string {
	switch c {
	case Converged:
		return "converged"
	case RoundCap:
		return "round-cap"
	case Cancelled:
		return "cancelled"
	case StoppedByCallback:
		return "callback"
	default:
		return fmt.Sprintf("StopCause(%d)", int(c))
	}
}

// Outcome is the result of a Run.
type Outcome struct {
	// X is the final assignment; Energy its exact global energy. Clamps
	// only ever accept strict improvements, so this is also the best
	// assignment the run visited.
	X      ising.Bits
	Energy float64
	// Rounds is the number of rounds executed, Accepted the total accepted
	// proposals, Moved the total bits flipped.
	Rounds, Accepted, Moved int
	// Stopped records why the run returned.
	Stopped StopCause
}

// state is the mutable solve state: assignment, local fields, energy.
type state struct {
	v     *View
	x     ising.Bits
	field []float64 // field[i] = c_i + Σ_j w_ij x_j; |field[i]| = |ΔE of flipping i|
	e     float64
}

func newState(v *View, x ising.Bits) *state {
	s := &state{v: v, x: x, field: make([]float64, v.n)}
	copy(s.field, v.lin)
	for i := 0; i < v.n; i++ {
		if x[i] == 0 {
			continue
		}
		for k := v.rowPtr[i]; k < v.rowPtr[i+1]; k++ {
			s.field[v.colIdx[k]] += v.weight[k]
		}
	}
	s.e = v.Energy(x)
	return s
}

// flip toggles bit i, maintaining fields and energy incrementally, and
// returns the energy change. O(degree(i)).
//
//saim:hotpath
func (s *state) flip(i int) float64 {
	de := s.field[i]
	if s.x[i] != 0 {
		de = -de
		s.x[i] = 0
	} else {
		s.x[i] = 1
	}
	sign := float64(2*int(s.x[i]) - 1) // +1 when the bit turned on
	for k := s.v.rowPtr[i]; k < s.v.rowPtr[i+1]; k++ {
		s.field[s.v.colIdx[k]] += sign * s.v.weight[k]
	}
	s.e += de
	return de
}

// extract builds the induced subproblem of the block vars against the
// frozen complement of the current assignment.
func (s *state) extract(vars []int) *Sub {
	k := len(vars)
	local := make(map[int32]int, k)
	for li, g := range vars {
		local[int32(g)] = li
	}
	sub := &Sub{
		Vars: vars,
		Lin:  make([]float64, k),
		Warm: make(ising.Bits, k),
	}
	for li, g := range vars {
		sub.Warm[li] = s.x[g]
		// field already folds every neighbor in; un-fold the in-block
		// neighbors so their contribution stays quadratic.
		lin := s.field[g]
		for p := s.v.rowPtr[g]; p < s.v.rowPtr[g+1]; p++ {
			j := s.v.colIdx[p]
			lj, in := local[j]
			if !in {
				continue
			}
			if s.x[j] != 0 {
				lin -= s.v.weight[p]
			}
			if int(j) > g {
				sub.Pairs = append(sub.Pairs, Pair{I: li, J: lj, W: s.v.weight[p]})
			}
		}
		sub.Lin[li] = lin
	}
	return sub
}

// blockSeed decorrelates the inner seed of (round, block) from the base
// seed with the same multiplicative mix the replica pool uses.
func blockSeed(base uint64, round, block int) uint64 {
	return base ^ ((uint64(round)<<20 + uint64(block) + 1) * 0x9e3779b97f4a7c15)
}

// Run executes the decomposition loop on the view.
func Run(ctx context.Context, v *View, o Options) (*Outcome, error) {
	if v == nil || v.n == 0 {
		return nil, fmt.Errorf("decompose: nil or empty view")
	}
	if o.SolveBlock == nil {
		return nil, fmt.Errorf("decompose: Options.SolveBlock is required")
	}
	sub := o.SubSize
	if sub == 0 {
		sub = 256
	}
	if sub < 1 {
		return nil, fmt.Errorf("decompose: subproblem size %d < 1", sub)
	}
	if sub > v.n {
		sub = v.n
	}
	if o.TabuTenure < 0 {
		return nil, fmt.Errorf("decompose: negative tabu tenure %d", o.TabuTenure)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxBlocks := o.MaxBlocks
	if maxBlocks <= 0 {
		maxBlocks = 4
		if floor := (v.n + sub*(o.TabuTenure+1) - 1) / (sub * (o.TabuTenure + 1)); floor > maxBlocks {
			maxBlocks = floor
		}
	}

	x := make(ising.Bits, v.n)
	if len(o.Initial) > 0 {
		if len(o.Initial) != v.n {
			return nil, fmt.Errorf("decompose: initial assignment length %d, want %d", len(o.Initial), v.n)
		}
		copy(x, o.Initial)
	} else {
		src := rng.New(o.Seed)
		for i := range x {
			x[i] = int8(src.Uint64() & 1)
		}
	}
	st := newState(v, x)

	out := &Outcome{X: st.x, Stopped: Converged}
	sel := &selector{
		tabuUntil: make([]int, v.n),
		claimedAt: make([]int, v.n),
		cand:      make([]int, 0, v.n),
	}
	for i := range sel.claimedAt {
		sel.claimedAt[i] = -1
	}
	flipped := make([]int, 0, sub)
	stale, staleExamined := 0, 0

	for round := 0; o.Rounds == 0 || round < o.Rounds; round++ {
		if ctx.Err() != nil {
			out.Stopped = Cancelled
			break
		}
		out.Rounds = round + 1

		// 1+2. Select impact-ranked seeds, grow connected blocks, and mark
		// them tabu; then extract each block's induced subproblem.
		blockVars := sel.selectBlocks(st, round, sub, maxBlocks, o.TabuTenure)
		blocks := len(blockVars)
		if blocks == 0 {
			// Defensive: the selector's tabu fallback guarantees at least
			// one block, so an empty selection means nothing is selectable
			// at all.
			out.Stopped = Converged
			break
		}
		subs := make([]*Sub, blocks)
		for b, vars := range blockVars {
			subs[b] = st.extract(vars)
		}

		// 3. Solve the blocks concurrently on the fixed worker pool.
		props := make([]ising.Bits, blocks)
		errs := make([]error, blocks)
		w := workers
		if w > blocks {
			w = blocks
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for b := range jobs {
					props[b], errs[b] = o.SolveBlock(ctx, worker, subs[b], blockSeed(o.Seed, round, b))
				}
			}(wi)
		}
		for b := 0; b < blocks; b++ {
			jobs <- b
		}
		close(jobs)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// 4. Clamp: re-test every proposal against the exact, evolving
		// global energy and keep only strict improvements.
		accepted, moved := 0, 0
		for b := 0; b < blocks; b++ {
			prop := props[b]
			if prop == nil {
				continue
			}
			if len(prop) != len(subs[b].Vars) {
				return nil, fmt.Errorf("decompose: block %d proposal length %d, want %d", b, len(prop), len(subs[b].Vars))
			}
			flipped = flipped[:0]
			de := 0.0
			for li, g := range subs[b].Vars {
				if prop[li] != st.x[g] {
					de += st.flip(g)
					flipped = append(flipped, g)
				}
			}
			if len(flipped) == 0 {
				continue
			}
			if de < -acceptTol(st.e) {
				accepted++
				moved += len(flipped)
				if o.OnAccept != nil {
					o.OnAccept(st.x, st.e)
				}
				continue
			}
			// Revert: flip back in reverse order.
			for i := len(flipped) - 1; i >= 0; i-- {
				st.flip(flipped[i])
			}
		}
		out.Accepted += accepted
		out.Moved += moved

		if o.OnRound != nil && o.OnRound(Round{
			Index: round, Blocks: blocks, Accepted: accepted, Moved: moved, Energy: st.e,
		}) {
			out.Stopped = StoppedByCallback
			break
		}
		if accepted == 0 {
			stale++
			for _, vars := range blockVars {
				staleExamined += len(vars)
			}
			// Converged: tabu rotation got its look-around and a full
			// instance's worth of variables failed to improve anything.
			if stale > o.TabuTenure && staleExamined >= v.n {
				out.Stopped = Converged
				break
			}
		} else {
			stale = 0
			staleExamined = 0
		}
		if o.Rounds > 0 && round == o.Rounds-1 {
			out.Stopped = RoundCap
		}
	}
	out.Energy = st.e
	return out, nil
}

// selector owns the per-round block selection state: tabu tenures, the
// claimed-this-round stamps, and the impact-ordered candidate list.
type selector struct {
	tabuUntil []int
	claimedAt []int // round stamp; claimedAt[v] == round ⇒ v is in a block
	cand      []int
	heap      impactHeap
}

// selectBlocks builds up to maxBlocks disjoint blocks of size sub. Seeds
// come from the non-tabu candidates in decreasing |field| order; each
// block grows by repeatedly claiming the highest-impact variable on its
// coupling frontier, falling back to the next seed when the frontier is
// exhausted (disconnected components). Every claimed variable goes tabu
// until round+1+tenure. If tabu has silenced every variable (tiny N, long
// tenure), the round ignores tabu rather than selecting nothing.
func (s *selector) selectBlocks(st *state, round, sub, maxBlocks, tenure int) [][]int {
	n := st.v.n
	s.cand = s.cand[:0]
	for i := 0; i < n; i++ {
		if s.tabuUntil[i] <= round {
			s.cand = append(s.cand, i)
		}
	}
	if len(s.cand) == 0 {
		for i := 0; i < n; i++ {
			s.cand = append(s.cand, i)
		}
	}
	sort.Slice(s.cand, func(a, b int) bool {
		fa, fb := math.Abs(st.field[s.cand[a]]), math.Abs(st.field[s.cand[b]])
		if fa != fb {
			return fa > fb
		}
		return s.cand[a] < s.cand[b]
	})
	blocks := (len(s.cand) + sub - 1) / sub
	if blocks > maxBlocks {
		blocks = maxBlocks
	}

	eligible := func(v int) bool {
		return s.tabuUntil[v] <= round && s.claimedAt[v] != round
	}
	out := make([][]int, 0, blocks)
	cursor := 0
	for b := 0; b < blocks; b++ {
		vars := make([]int, 0, sub)
		s.heap.reset()
		for len(vars) < sub {
			v, ok := s.heap.pop()
			if !ok || !eligible(v) {
				if !ok {
					// Frontier exhausted: seed (or re-seed) from the next
					// unclaimed candidate in impact order.
					for cursor < len(s.cand) && s.claimedAt[s.cand[cursor]] == round {
						cursor++
					}
					if cursor == len(s.cand) {
						break
					}
					v = s.cand[cursor]
				} else {
					continue
				}
			}
			s.claimedAt[v] = round
			s.tabuUntil[v] = round + 1 + tenure
			vars = append(vars, v)
			for k := st.v.rowPtr[v]; k < st.v.rowPtr[v+1]; k++ {
				if j := int(st.v.colIdx[k]); eligible(j) {
					s.heap.push(j, math.Abs(st.field[j]))
				}
			}
		}
		if len(vars) == 0 {
			break
		}
		out = append(out, vars)
	}
	return out
}

// impactHeap is a small max-heap of (variable, |field|) pairs used to
// grow blocks highest-impact-frontier-first. Stale or duplicate entries
// are tolerated — pop callers re-check eligibility.
type impactHeap struct {
	idx []int
	key []float64
}

func (h *impactHeap) reset() {
	h.idx = h.idx[:0]
	h.key = h.key[:0]
}

func (h *impactHeap) push(v int, k float64) {
	h.idx = append(h.idx, v)
	h.key = append(h.key, k)
	i := len(h.idx) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.key[p] >= h.key[i] {
			break
		}
		h.idx[p], h.idx[i] = h.idx[i], h.idx[p]
		h.key[p], h.key[i] = h.key[i], h.key[p]
		i = p
	}
}

func (h *impactHeap) pop() (int, bool) {
	if len(h.idx) == 0 {
		return 0, false
	}
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0], h.key[0] = h.idx[last], h.key[last]
	h.idx, h.key = h.idx[:last], h.key[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.idx) && h.key[l] > h.key[big] {
			big = l
		}
		if r < len(h.idx) && h.key[r] > h.key[big] {
			big = r
		}
		if big == i {
			break
		}
		h.idx[i], h.idx[big] = h.idx[big], h.idx[i]
		h.key[i], h.key[big] = h.key[big], h.key[i]
		i = big
	}
	return top, true
}

// acceptTol is the strict-improvement threshold: proposals must lower the
// energy by more than a relative epsilon, which both absorbs float noise
// in the incremental bookkeeping and guarantees termination (the energy is
// bounded below and every acceptance decreases it by at least the
// tolerance).
func acceptTol(e float64) float64 {
	return 1e-9 * (1 + math.Abs(e))
}
