package decompose

import (
	"context"
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

// randomView draws a dense-ish random energy with integer-ish weights.
func randomView(n int, density float64, seed uint64) *View {
	src := rng.New(seed)
	b := NewViewBuilder(n)
	b.AddConst(src.Sym() * 3)
	for i := 0; i < n; i++ {
		b.AddLinear(i, src.Sym()*5)
		for j := i + 1; j < n; j++ {
			if src.Float64() < density {
				b.AddPair(i, j, src.Sym()*5)
			}
		}
	}
	return b.Build()
}

// naiveEnergy evaluates the view energy from first principles.
func naiveEnergy(v *View, x ising.Bits) float64 {
	e := v.c
	for i := 0; i < v.n; i++ {
		if x[i] != 0 {
			e += v.lin[i]
		}
	}
	for i := 0; i < v.n; i++ {
		for k := v.rowPtr[i]; k < v.rowPtr[i+1]; k++ {
			j := v.colIdx[k]
			if int(j) > i && x[i] != 0 && x[j] != 0 {
				e += v.weight[k]
			}
		}
	}
	return e
}

func randomBits(n int, seed uint64) ising.Bits {
	src := rng.New(seed)
	x := make(ising.Bits, n)
	for i := range x {
		x[i] = int8(src.Uint64() & 1)
	}
	return x
}

func TestViewEnergyMatchesNaive(t *testing.T) {
	v := randomView(17, 0.4, 1)
	for s := uint64(0); s < 8; s++ {
		x := randomBits(v.N(), 100+s)
		if got, want := v.Energy(x), naiveEnergy(v, x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Energy = %v, naive = %v", got, want)
		}
	}
}

func TestStateFlipMaintainsEnergyAndFields(t *testing.T) {
	v := randomView(23, 0.3, 2)
	st := newState(v, randomBits(v.N(), 7))
	src := rng.New(99)
	for k := 0; k < 200; k++ {
		st.flip(src.Intn(v.N()))
	}
	if want := v.Energy(st.x); math.Abs(st.e-want) > 1e-7 {
		t.Fatalf("incremental energy %v, full recompute %v", st.e, want)
	}
	fresh := newState(v, st.x.Clone())
	for i := range st.field {
		if math.Abs(st.field[i]-fresh.field[i]) > 1e-7 {
			t.Fatalf("field[%d] = %v after flips, recomputed %v", i, st.field[i], fresh.field[i])
		}
	}
}

// subEnergy evaluates an extracted subproblem's local energy.
func subEnergy(sub *Sub, y ising.Bits) float64 {
	e := 0.0
	for i, w := range sub.Lin {
		if y[i] != 0 {
			e += w
		}
	}
	for _, p := range sub.Pairs {
		if y[p.I] != 0 && y[p.J] != 0 {
			e += p.W
		}
	}
	return e
}

// TestExtractionIdentity pins the clamping math: replacing the block bits
// changes the global energy by exactly the sub-energy difference — the
// frozen complement is a constant of the subproblem.
func TestExtractionIdentity(t *testing.T) {
	v := randomView(19, 0.5, 3)
	x := randomBits(v.N(), 11)
	st := newState(v, x.Clone())
	vars := []int{2, 5, 7, 11, 18}
	sub := st.extract(vars)
	for trial := uint64(0); trial < 16; trial++ {
		y := randomBits(len(vars), 500+trial)
		mut := x.Clone()
		for li, g := range vars {
			mut[g] = y[li]
		}
		wantDelta := v.Energy(mut) - v.Energy(x)
		gotDelta := subEnergy(sub, y) - subEnergy(sub, sub.Warm)
		if math.Abs(wantDelta-gotDelta) > 1e-9 {
			t.Fatalf("trial %d: global delta %v, sub delta %v", trial, wantDelta, gotDelta)
		}
	}
}

// bruteBlock solves a subproblem exactly by enumeration (blocks ≤ 16 vars).
func bruteBlock(_ context.Context, _ int, sub *Sub, _ uint64) (ising.Bits, error) {
	k := len(sub.Vars)
	best := sub.Warm.Clone()
	bestE := subEnergy(sub, best)
	y := make(ising.Bits, k)
	for mask := 0; mask < 1<<k; mask++ {
		for i := range y {
			y[i] = int8(mask >> i & 1)
		}
		if e := subEnergy(sub, y); e < bestE {
			bestE = e
			copy(best, y)
		}
	}
	return best, nil
}

// bruteOptimum enumerates the global optimum of a small view.
func bruteOptimum(v *View) float64 {
	best := math.Inf(1)
	x := make(ising.Bits, v.n)
	for mask := 0; mask < 1<<v.n; mask++ {
		for i := range x {
			x[i] = int8(mask >> i & 1)
		}
		if e := v.Energy(x); e < best {
			best = e
		}
	}
	return best
}

func TestRunWholeBlockFindsOptimum(t *testing.T) {
	v := randomView(12, 0.6, 4)
	out, err := Run(context.Background(), v, Options{
		SubSize: v.N(), Seed: 5, SolveBlock: bruteBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteOptimum(v); math.Abs(out.Energy-want) > 1e-9 {
		t.Fatalf("whole-block decomposition energy %v, brute optimum %v", out.Energy, want)
	}
	if out.Stopped != Converged {
		t.Fatalf("Stopped = %v, want Converged", out.Stopped)
	}
	if got := v.Energy(out.X); math.Abs(got-out.Energy) > 1e-9 {
		t.Fatalf("reported energy %v but X evaluates to %v", out.Energy, got)
	}
}

func TestRunSmallBlocksReachOptimumWithTabu(t *testing.T) {
	v := randomView(14, 0.5, 6)
	out, err := Run(context.Background(), v, Options{
		SubSize: 4, TabuTenure: 1, Seed: 9, Workers: 2, SolveBlock: bruteBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteOptimum(v)
	if out.Energy > want+1e-9 {
		// Exact block solves with tabu rotation should land on the global
		// optimum for an instance this small; a gap means clamping or
		// selection is broken.
		t.Fatalf("decomposed energy %v, brute optimum %v", out.Energy, want)
	}
}

func TestRunTabuRotatesSelection(t *testing.T) {
	v := randomView(16, 0.5, 8)
	var rounds [][]int
	_, err := Run(context.Background(), v, Options{
		SubSize: 8, MaxBlocks: 1, TabuTenure: 1, Rounds: 2, Seed: 3,
		SolveBlock: func(ctx context.Context, w int, sub *Sub, seed uint64) (ising.Bits, error) {
			rounds = append(rounds, append([]int(nil), sub.Vars...))
			return nil, nil // propose nothing; we only watch selection
		},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 {
		t.Fatalf("expected 2 rounds of selections, got %d", len(rounds))
	}
	seen := map[int]bool{}
	for _, g := range rounds[0] {
		seen[g] = true
	}
	for _, g := range rounds[1] {
		if seen[g] {
			t.Fatalf("variable %d selected in consecutive rounds despite tenure 1", g)
		}
	}
}

func TestRunHonorsRoundCapAndCallbackStop(t *testing.T) {
	v := randomView(12, 0.5, 10)
	out, err := Run(context.Background(), v, Options{
		SubSize: 3, Rounds: 1, Seed: 2, SolveBlock: bruteBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 || out.Stopped != RoundCap {
		t.Fatalf("Rounds = %d Stopped = %v, want 1 round and RoundCap", out.Rounds, out.Stopped)
	}

	out, err = Run(context.Background(), v, Options{
		SubSize: 3, Seed: 2, SolveBlock: bruteBlock,
		OnRound: func(r Round) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 || out.Stopped != StoppedByCallback {
		t.Fatalf("Rounds = %d Stopped = %v, want 1 round and StoppedByCallback", out.Rounds, out.Stopped)
	}
}

func TestRunCancellation(t *testing.T) {
	v := randomView(12, 0.5, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Run(ctx, v, Options{SubSize: 3, Seed: 1, SolveBlock: bruteBlock})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stopped != Cancelled || out.Rounds != 0 {
		t.Fatalf("Stopped = %v Rounds = %d, want Cancelled after 0 rounds", out.Stopped, out.Rounds)
	}
}

func TestRunValidation(t *testing.T) {
	v := randomView(8, 0.5, 13)
	if _, err := Run(context.Background(), v, Options{}); err == nil {
		t.Fatal("expected error for missing SolveBlock")
	}
	if _, err := Run(context.Background(), v, Options{
		SolveBlock: bruteBlock, Initial: make(ising.Bits, 3),
	}); err == nil {
		t.Fatal("expected error for bad initial length")
	}
	if _, err := Run(context.Background(), v, Options{
		SolveBlock: bruteBlock, TabuTenure: -1,
	}); err == nil {
		t.Fatal("expected error for negative tenure")
	}
	bad := func(ctx context.Context, w int, sub *Sub, seed uint64) (ising.Bits, error) {
		return make(ising.Bits, 1), nil
	}
	if _, err := Run(context.Background(), v, Options{SubSize: 4, SolveBlock: bad}); err == nil {
		t.Fatal("expected error for proposal length mismatch")
	}
}

func TestRunWarmStartFromInitial(t *testing.T) {
	v := randomView(10, 0.6, 14)
	init := randomBits(v.N(), 77)
	startE := v.Energy(init)
	out, err := Run(context.Background(), v, Options{
		SubSize: 5, Seed: 4, Initial: init, SolveBlock: bruteBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Energy > startE+1e-9 {
		t.Fatalf("run from warm start worsened energy: %v -> %v", startE, out.Energy)
	}
}
