package vecmat

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecAddScaled(t *testing.T) {
	v := Vec{1, 1}
	v.AddScaled(2, Vec{3, 4})
	if v[0] != 7 || v[1] != 9 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestVecScaleSumMaxAbs(t *testing.T) {
	v := Vec{-3, 1, 2}
	v.Scale(2)
	if v.Sum() != 0 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	if v.MaxAbs() != 6 {
		t.Fatalf("MaxAbs = %v", v.MaxAbs())
	}
	if (Vec{}).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestSymSetAtSymmetry(t *testing.T) {
	m := NewSym(4)
	m.Set(1, 3, 2.5)
	if m.At(3, 1) != 2.5 || m.At(1, 3) != 2.5 {
		t.Fatal("Set did not mirror")
	}
	if !m.IsSymmetric() {
		t.Fatal("matrix not symmetric")
	}
}

func TestSymAddMirrorsOffDiagonal(t *testing.T) {
	m := NewSym(3)
	m.Add(0, 2, 1)
	m.Add(0, 2, 1)
	if m.At(0, 2) != 2 || m.At(2, 0) != 2 {
		t.Fatalf("Add off-diag: %v %v", m.At(0, 2), m.At(2, 0))
	}
	m.Add(1, 1, 3)
	if m.At(1, 1) != 3 {
		t.Fatalf("Add diag: %v", m.At(1, 1))
	}
}

func TestSymMulVec(t *testing.T) {
	m := NewSym(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 1, 3)
	dst := NewVec(2)
	m.MulVec(dst, Vec{1, 1})
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestSymQuadFormMatchesMulVec(t *testing.T) {
	src := rng.New(101)
	f := func(raw uint8) bool {
		n := int(raw%8) + 1
		m := NewSym(n)
		x := NewVec(n)
		for i := 0; i < n; i++ {
			x[i] = src.Sym()
			for j := i; j < n; j++ {
				m.Set(i, j, src.Sym())
			}
		}
		tmp := NewVec(n)
		m.MulVec(tmp, x)
		return almostEqual(m.QuadForm(x), x.Dot(tmp), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymCloneIndependent(t *testing.T) {
	m := NewSym(2)
	m.Set(0, 1, 5)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone aliases original")
	}
}

func TestSymScale(t *testing.T) {
	m := NewSym(2)
	m.Set(0, 1, 4)
	m.Scale(0.5)
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 {
		t.Fatalf("Scale: %v", m.At(0, 1))
	}
}

func TestOffDiagDensity(t *testing.T) {
	m := NewSym(4)
	if m.OffDiagDensity() != 0 {
		t.Fatal("empty density should be 0")
	}
	m.Set(0, 1, 1)
	m.Set(2, 3, 1)
	want := 2.0 / 6.0
	if got := m.OffDiagDensity(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("density = %v, want %v", got, want)
	}
	// Diagonal entries must not count.
	m.Set(0, 0, 7)
	if got := m.OffDiagDensity(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("density with diagonal = %v, want %v", got, want)
	}
	if NewSym(1).OffDiagDensity() != 0 {
		t.Fatal("order-1 density should be 0")
	}
}

func TestSymGrow(t *testing.T) {
	m := NewSym(2)
	m.Set(0, 1, 3)
	m.Set(1, 1, 4)
	g := m.Grow(2)
	if g.N() != 4 {
		t.Fatalf("Grow order = %d", g.N())
	}
	if g.At(0, 1) != 3 || g.At(1, 1) != 4 {
		t.Fatal("Grow lost leading block")
	}
	for i := 0; i < 4; i++ {
		for j := 2; j < 4; j++ {
			if g.At(i, j) != 0 {
				t.Fatalf("Grow new entry (%d,%d) non-zero", i, j)
			}
		}
	}
	if !g.IsSymmetric() {
		t.Fatal("grown matrix not symmetric")
	}
}

func TestGrowVec(t *testing.T) {
	v := GrowVec(Vec{1, 2}, 3)
	if len(v) != 5 || v[0] != 1 || v[1] != 2 || v[4] != 0 {
		t.Fatalf("GrowVec = %v", v)
	}
}

func TestMaxAbsSym(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 2, -7)
	m.Set(1, 1, 4)
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestRowViewReflectsSet(t *testing.T) {
	m := NewSym(3)
	m.Set(1, 2, 8)
	row := m.Row(1)
	if row[2] != 8 {
		t.Fatalf("Row view = %v", row)
	}
}

func TestSubInto(t *testing.T) {
	a := Vec{5, 3, 1}
	b := Vec{1, 2, 3}
	dst := NewVec(3)
	SubInto(dst, a, b)
	want := Vec{4, 1, -2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SubInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SubInto accepted mismatched lengths")
		}
	}()
	SubInto(dst, a, Vec{1})
}
