// Package vecmat provides the small amount of dense linear algebra the
// simulator needs: float64 vectors and dense symmetric matrices with flat,
// cache-friendly storage. It deliberately implements only the operations the
// Ising pipeline uses rather than a general matrix library.
package vecmat

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on length mismatch.
//
//saim:hotpath
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vecmat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled sets v = v + a*w in place. It panics on length mismatch.
//
//saim:hotpath
func (v Vec) AddScaled(a float64, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vecmat: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Scale multiplies every element of v by a in place.
func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// SubInto sets dst = a − b element-wise without allocating; the solve
// engine uses it to re-program biases (h = h₀ − Δ(λ)) each iteration.
// It panics on length mismatch.
//
//saim:hotpath
func SubInto(dst, a, b Vec) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("vecmat: SubInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Sum returns the sum of the elements of v.
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Norm2 returns the Euclidean norm ‖v‖₂.
func (v Vec) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute value in v, or 0 for an empty vector.
func (v Vec) MaxAbs() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sym is a dense symmetric n×n matrix stored as a full row-major slice.
// Storing the full matrix (rather than a triangle) keeps row access
// contiguous, which is what the Gibbs sweep inner loop needs.
type Sym struct {
	n    int
	data []float64
}

// NewSym returns a zero symmetric matrix of order n.
func NewSym(n int) *Sym {
	if n < 0 {
		panic("vecmat: NewSym with negative order")
	}
	return &Sym{n: n, data: make([]float64, n*n)}
}

// N returns the order of the matrix.
func (m *Sym) N() int { return m.n }

// At returns element (i, j).
func (m *Sym) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns element (i, j) and, by symmetry, (j, i).
func (m *Sym) Set(i, j int, v float64) {
	m.data[i*m.n+j] = v
	m.data[j*m.n+i] = v
}

// Add accumulates v onto element (i, j) and, by symmetry, (j, i). The
// diagonal is accumulated once.
func (m *Sym) Add(i, j int, v float64) {
	m.data[i*m.n+j] += v
	if i != j {
		m.data[j*m.n+i] += v
	}
}

// Row returns a read-only view of row i. Callers must not modify it except
// through Set/Add, which keep the matrix symmetric.
func (m *Sym) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// Clone returns a deep copy of m.
func (m *Sym) Clone() *Sym {
	out := NewSym(m.n)
	copy(out.data, m.data)
	return out
}

// Scale multiplies every entry by a in place.
func (m *Sym) Scale(a float64) {
	for i := range m.data {
		m.data[i] *= a
	}
}

// MulVec computes dst = M·x. dst and x must both have length N and must not
// alias.
//
//saim:hotpath
func (m *Sym) MulVec(dst, x Vec) {
	if len(dst) != m.n || len(x) != m.n {
		panic("vecmat: MulVec dimension mismatch")
	}
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		s := 0.0
		for j, rv := range row {
			s += rv * x[j]
		}
		dst[i] = s
	}
}

// QuadForm returns xᵀ·M·x.
//
//saim:hotpath
func (m *Sym) QuadForm(x Vec) float64 {
	if len(x) != m.n {
		panic("vecmat: QuadForm dimension mismatch")
	}
	s := 0.0
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		ri := 0.0
		for j, rv := range row {
			ri += rv * x[j]
		}
		s += x[i] * ri
	}
	return s
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Sym) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// OffDiagDensity returns the fraction of non-zero strictly-upper-triangular
// entries: nnz / (n(n-1)/2). It returns 0 for n < 2.
func (m *Sym) OffDiagDensity() float64 {
	if m.n < 2 {
		return 0
	}
	nnz := 0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.At(i, j) != 0 {
				nnz++
			}
		}
	}
	return float64(nnz) / float64(m.n*(m.n-1)/2)
}

// IsSymmetric reports whether the underlying storage is exactly symmetric.
// It exists for tests and validation; Set/Add preserve symmetry by
// construction.
func (m *Sym) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.data[i*m.n+j] != m.data[j*m.n+i] {
				return false
			}
		}
	}
	return true
}

// Grow returns a new (n+extra)×(n+extra) matrix whose leading block is a
// copy of m and whose new rows/columns are zero. It is used to extend a
// problem with slack variables.
func (m *Sym) Grow(extra int) *Sym {
	if extra < 0 {
		panic("vecmat: Grow with negative extra")
	}
	out := NewSym(m.n + extra)
	for i := 0; i < m.n; i++ {
		copy(out.data[i*out.n:i*out.n+m.n], m.data[i*m.n:(i+1)*m.n])
	}
	return out
}

// GrowVec returns a copy of v extended with extra trailing zeros.
func GrowVec(v Vec, extra int) Vec {
	out := make(Vec, len(v)+extra)
	copy(out, v)
	return out
}
