package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/rng"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) ||
		!math.IsNaN(Median(nil)) || !math.IsNaN(Stddev(nil)) {
		t.Fatal("empty-input statistics should be NaN")
	}
}

func TestMedianOddEven(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatalf("odd median = %v", Median([]float64{3, 1, 2}))
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatalf("even median = %v", Median([]float64{4, 1, 2, 3}))
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 40 {
		t.Fatal("endpoint quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 17.5 {
		t.Fatalf("Q1 = %v, want 17.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted q=1.5")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileSingleElement(t *testing.T) {
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("single-element quantile wrong")
	}
}

func TestSummarizeOrderingProperty(t *testing.T) {
	src := rng.New(5)
	f := func(raw uint8) bool {
		n := int(raw%30) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Sym() * 100
		}
		q := Summarize(xs)
		return q.Min <= q.Q1 && q.Q1 <= q.Median && q.Median <= q.Q3 && q.Q3 <= q.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	src := rng.New(11)
	xs := make([]float64, 25)
	for i := range xs {
		xs[i] = src.Sym() * 10
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.05 {
		qq := math.Min(q, 1)
		v := Quantile(xs, qq)
		if v < prev-1e-12 {
			t.Fatalf("quantile decreased at q=%v", qq)
		}
		prev = v
	}
}

func TestMedianMatchesSortDefinition(t *testing.T) {
	src := rng.New(13)
	for trial := 0; trial < 50; trial++ {
		n := src.IntRange(1, 40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Sym()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if math.Abs(Median(xs)-want) > 1e-12 {
			t.Fatalf("median %v, want %v", Median(xs), want)
		}
	}
}

func TestIQR(t *testing.T) {
	q := Quartiles{Q1: 2, Q3: 7}
	if q.IQR() != 5 {
		t.Fatalf("IQR = %v", q.IQR())
	}
}

func TestStddev(t *testing.T) {
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", got, want)
	}
	if !math.IsNaN(Stddev([]float64{1})) {
		t.Fatal("single-sample stddev should be NaN")
	}
}
