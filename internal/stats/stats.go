// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means, medians, quartiles and interquartile
// ranges (the paper presents its Fig. 4a results as quartile boxes), plus
// accuracy aggregation helpers.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (q in [0,1]) using linear interpolation
// between order statistics (the common "type 7" estimator). It returns NaN
// for an empty slice and panics for q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quartiles bundles the five-number summary used for box plots.
type Quartiles struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize returns the five-number summary of xs.
func Summarize(xs []float64) Quartiles {
	return Quartiles{
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// IQR returns the interquartile range Q3−Q1.
func (q Quartiles) IQR() float64 { return q.Q3 - q.Q1 }

// Stddev returns the sample standard deviation (n−1 denominator), or NaN
// for fewer than two samples.
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}
