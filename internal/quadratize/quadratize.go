// Package quadratize reduces higher-order pseudo-Boolean polynomials to
// quadratic form so they can run on standard (degree-2) Ising machines.
//
// It implements Rosenberg's substitution: pick a variable pair (a,b) that
// appears in some monomial of degree ≥ 3, introduce an auxiliary binary
// variable y meant to equal a·b, replace a·b by y in every higher-order
// monomial, and add the penalty
//
//	M·(a·b − 2·a·y − 2·b·y + 3·y)
//
// which is zero when y = a·b and ≥ M otherwise. Repeating until every
// monomial has degree ≤ 2 yields an equivalent QUBO over the original
// variables plus auxiliaries, for a sufficiently large M.
//
// This is the classical alternative to the native high-order machine of
// package hoim; the two are cross-checked in tests, and together they
// cover both routes the paper sketches for polynomial energies [19].
package quadratize

import (
	"fmt"
	"sort"

	"github.com/ising-machines/saim/internal/hoim"
	"github.com/ising-machines/saim/internal/ising"
)

// Result is the outcome of a reduction.
type Result struct {
	// QUBO is the quadratic model over NOrig + Aux variables.
	QUBO *ising.QUBO
	// NOrig is the number of original variables (auxiliaries follow).
	NOrig int
	// Aux describes each auxiliary variable as the product pair it
	// represents: Aux[k] = (a, b) means variable NOrig+k should equal
	// x_a·x_b (where a, b may themselves be auxiliaries).
	Aux [][2]int
	// M is the penalty weight applied to each substitution.
	M float64
}

// NTotal returns the total variable count of the reduced model.
func (r *Result) NTotal() int { return r.NOrig + len(r.Aux) }

// Extend completes an assignment of the original variables with the
// auxiliary products, yielding a configuration of the reduced model.
func (r *Result) Extend(x ising.Bits) ising.Bits {
	if len(x) != r.NOrig {
		panic("quadratize: Extend dimension mismatch")
	}
	full := make(ising.Bits, r.NTotal())
	copy(full, x)
	for k, pair := range r.Aux {
		full[r.NOrig+k] = full[pair[0]] * full[pair[1]]
	}
	return full
}

// Reduce rewrites the polynomial into an equivalent QUBO. The penalty M
// must exceed the largest possible energy gain from violating a
// substitution; passing 0 picks 1 + Σ|w| over all monomials, which is
// always sufficient.
func Reduce(p *hoim.Poly, m float64) (*Result, error) {
	if m < 0 {
		return nil, fmt.Errorf("quadratize: negative penalty M")
	}
	// Extract monomials into a mutable working set.
	type mono struct {
		vars []int
		w    float64
	}
	var work []mono
	sumAbs := 0.0
	constant := 0.0
	nOrig := p.N()
	// Pull the term list via the public surface: evaluate support by
	// re-adding. hoim.Poly exposes terms through iteration helpers below.
	for _, t := range p.Terms() {
		if len(t.Vars) == 0 {
			constant += t.W
			continue
		}
		work = append(work, mono{vars: append([]int(nil), t.Vars...), w: t.W})
		if t.W < 0 {
			sumAbs -= t.W
		} else {
			sumAbs += t.W
		}
	}
	if m == 0 {
		m = 1 + sumAbs
	}

	total := nOrig
	var aux [][2]int
	pairOf := map[[2]int]int{} // product pair → variable index

	for {
		// Find the most frequent pair among monomials of degree ≥ 3.
		counts := map[[2]int]int{}
		anyHigh := false
		for _, mn := range work {
			if len(mn.vars) < 3 {
				continue
			}
			anyHigh = true
			for i := 0; i < len(mn.vars); i++ {
				for j := i + 1; j < len(mn.vars); j++ {
					counts[[2]int{mn.vars[i], mn.vars[j]}]++
				}
			}
		}
		if !anyHigh {
			break
		}
		var bestPair [2]int
		best := -1
		// Deterministic tie-break: lexicographically smallest pair.
		keys := make([][2]int, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			if counts[k] > best {
				best = counts[k]
				bestPair = k
			}
		}

		// Allocate (or reuse) the auxiliary for this pair.
		y, ok := pairOf[bestPair]
		if !ok {
			y = total
			total++
			pairOf[bestPair] = y
			aux = append(aux, bestPair)
		}

		// Substitute the pair inside every degree-≥3 monomial containing it.
		for idx := range work {
			mn := &work[idx]
			if len(mn.vars) < 3 {
				continue
			}
			hasA, hasB := false, false
			for _, v := range mn.vars {
				if v == bestPair[0] {
					hasA = true
				}
				if v == bestPair[1] {
					hasB = true
				}
			}
			if !hasA || !hasB {
				continue
			}
			rewritten := mn.vars[:0]
			for _, v := range mn.vars {
				if v != bestPair[0] && v != bestPair[1] {
					rewritten = append(rewritten, v)
				}
			}
			mn.vars = append(rewritten, y)
			sort.Ints(mn.vars)
		}
	}

	// Assemble the QUBO: rewritten monomials (now degree ≤ 2) plus the
	// Rosenberg penalties M(ab − 2ay − 2by + 3y) per auxiliary.
	q := ising.NewQUBO(total)
	q.AddConst(constant)
	for _, mn := range work {
		switch len(mn.vars) {
		case 1:
			q.AddLinear(mn.vars[0], mn.w)
		case 2:
			q.AddQuad(mn.vars[0], mn.vars[1], mn.w)
		default:
			return nil, fmt.Errorf("quadratize: internal error — degree %d survived", len(mn.vars))
		}
	}
	for k, pair := range aux {
		y := nOrig + k
		q.AddQuad(pair[0], pair[1], m)
		q.AddQuad(pair[0], y, -2*m)
		q.AddQuad(pair[1], y, -2*m)
		q.AddLinear(y, 3*m)
	}
	return &Result{QUBO: q, NOrig: nOrig, Aux: aux, M: m}, nil
}
