package quadratize

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/hoim"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

func bitsOf(mask, n int) ising.Bits {
	x := make(ising.Bits, n)
	for i := 0; i < n; i++ {
		if mask>>i&1 == 1 {
			x[i] = 1
		}
	}
	return x
}

// On honest extensions (auxiliaries = their products) the reduced QUBO
// energy must equal the polynomial energy exactly, penalty-free.
func TestReducePreservesEnergyOnHonestExtensions(t *testing.T) {
	src := rng.New(5)
	f := func(raw uint8) bool {
		n := int(raw%5) + 3
		p := hoim.NewPoly(n)
		for k := 0; k < 2*n; k++ {
			deg := src.IntRange(1, 4)
			vars := make([]int, deg)
			for i := range vars {
				vars[i] = src.Intn(n)
			}
			p.Add(src.Sym()*3, vars...)
		}
		p.Add(src.Sym()) // constant
		red, err := Reduce(p, 0)
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<n; mask++ {
			x := bitsOf(mask, n)
			full := red.Extend(x)
			if math.Abs(red.QUBO.Energy(full)-p.Energy(x)) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The global minimum of the reduced QUBO must coincide with the global
// minimum of the original polynomial (value and projection).
func TestReducePreservesGroundState(t *testing.T) {
	src := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		n := src.IntRange(3, 6)
		p := hoim.NewPoly(n)
		for k := 0; k < 2*n; k++ {
			deg := src.IntRange(1, 4)
			vars := make([]int, deg)
			for i := range vars {
				vars[i] = src.Intn(n)
			}
			p.Add(src.Sym()*3, vars...)
		}
		red, err := Reduce(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Polynomial optimum by enumeration over original vars.
		polyBest := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			if e := p.Energy(bitsOf(mask, n)); e < polyBest {
				polyBest = e
			}
		}
		// QUBO optimum by enumeration over ALL variables (incl. aux).
		total := red.NTotal()
		quboBest := math.Inf(1)
		for mask := 0; mask < 1<<total; mask++ {
			if e := red.QUBO.Energy(bitsOf(mask, total)); e < quboBest {
				quboBest = e
			}
		}
		if math.Abs(polyBest-quboBest) > 1e-7 {
			t.Fatalf("trial %d: poly OPT %v vs QUBO OPT %v", trial, polyBest, quboBest)
		}
	}
}

func TestReduceQuadraticInputIsIdentityShape(t *testing.T) {
	p := hoim.NewPoly(3)
	p.Add(2, 0, 1)
	p.Add(-1, 2)
	p.Add(4)
	red, err := Reduce(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Aux) != 0 {
		t.Fatalf("quadratic input grew %d auxiliaries", len(red.Aux))
	}
	x := ising.Bits{1, 1, 0}
	if red.QUBO.Energy(x) != p.Energy(x) {
		t.Fatal("energy mismatch on quadratic input")
	}
}

func TestReduceCubicSingleAux(t *testing.T) {
	p := hoim.NewPoly(3)
	p.Add(5, 0, 1, 2)
	red, err := Reduce(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Aux) != 1 {
		t.Fatalf("aux = %d, want 1", len(red.Aux))
	}
	if red.QUBO.N() != 4 {
		t.Fatalf("NTotal = %d", red.QUBO.N())
	}
	// Violated substitution must cost at least M.
	x := red.Extend(ising.Bits{1, 1, 1}) // honest: y = 1
	dishonest := x.Clone()
	dishonest[3] = 0
	if red.QUBO.Energy(dishonest) < red.QUBO.Energy(x)+red.M-5-1e-9 {
		t.Fatalf("violating the substitution too cheap: %v vs %v (M=%v)",
			red.QUBO.Energy(dishonest), red.QUBO.Energy(x), red.M)
	}
}

func TestReduceDegree4SharedPairs(t *testing.T) {
	// Two quartic monomials sharing a pair should reuse one auxiliary where
	// the pair heuristic allows it.
	p := hoim.NewPoly(5)
	p.Add(1, 0, 1, 2, 3)
	p.Add(1, 0, 1, 3, 4)
	red, err := Reduce(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if red.QUBO.Validate() != nil {
		t.Fatal("invalid QUBO")
	}
	// Spot-check energies on honest extensions.
	for mask := 0; mask < 1<<5; mask++ {
		x := bitsOf(mask, 5)
		if math.Abs(red.QUBO.Energy(red.Extend(x))-p.Energy(x)) > 1e-9 {
			t.Fatalf("energy mismatch at %b", mask)
		}
	}
}

func TestReduceRejectsNegativeM(t *testing.T) {
	p := hoim.NewPoly(2)
	p.Add(1, 0)
	if _, err := Reduce(p, -1); err == nil {
		t.Fatal("accepted negative M")
	}
}

func TestExtendPanicsOnWrongLength(t *testing.T) {
	p := hoim.NewPoly(3)
	p.Add(1, 0, 1, 2)
	red, err := Reduce(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extend accepted wrong length")
		}
	}()
	red.Extend(ising.Bits{1})
}
