package assignment

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/ising"
)

// bruteForce enumerates all permutations (n ≤ 8) for reference.
func bruteForce(c Cost) ([]int, float64) {
	n := len(c)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(1)
	bestPerm := make([]int, n)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			copy(bestPerm, perm)
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			rec(i+1, acc+c[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return bestPerm, best
}

func TestHungarianByHand(t *testing.T) {
	c := Cost{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	perm, val, err := Hungarian(c)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: w0→j1 (1), w1→j0 (2), w2→j2 (2) = 5.
	if val != 5 {
		t.Fatalf("value = %v, want 5 (perm %v)", val, perm)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		n := int(seed%5) + 3 // 3..7
		c := Random(n, 50, seed)
		_, want := bruteForce(c)
		perm, got, err := Hungarian(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: Hungarian %v vs brute force %v", seed, got, want)
		}
		// perm must be a permutation.
		seen := make([]bool, n)
		for _, j := range perm {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("seed %d: invalid permutation %v", seed, perm)
			}
			seen[j] = true
		}
	}
}

func TestHungarianValidation(t *testing.T) {
	if _, _, err := Hungarian(Cost{}); err == nil {
		t.Fatal("accepted empty matrix")
	}
	if _, _, err := Hungarian(Cost{{1, 2}, {3}}); err == nil {
		t.Fatal("accepted ragged matrix")
	}
	if _, _, err := Hungarian(Cost{{math.NaN()}}); err == nil {
		t.Fatal("accepted NaN cost")
	}
}

func TestDecode(t *testing.T) {
	// 2×2 permutation matrix [[0,1],[1,0]].
	perm, ok := Decode(2, ising.Bits{0, 1, 1, 0})
	if !ok || perm[0] != 1 || perm[1] != 0 {
		t.Fatalf("Decode = %v, %v", perm, ok)
	}
	// Column reused.
	if _, ok := Decode(2, ising.Bits{1, 0, 1, 0}); ok {
		t.Fatal("accepted column collision")
	}
	// Row with two jobs.
	if _, ok := Decode(2, ising.Bits{1, 1, 0, 0}); ok {
		t.Fatal("accepted double-hot row")
	}
	// Empty row.
	if _, ok := Decode(2, ising.Bits{0, 0, 0, 1}); ok {
		t.Fatal("accepted empty row")
	}
}

func TestToProblemStructure(t *testing.T) {
	c := Random(4, 9, 3)
	p, err := ToProblem(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ext.NOrig != 16 || p.Ext.NTotal != 16 {
		t.Fatalf("dims = %d/%d", p.Ext.NOrig, p.Ext.NTotal)
	}
	if p.Ext.M() != 8 {
		t.Fatalf("M = %d", p.Ext.M())
	}
}

func TestSolveReachesHungarianOptimum(t *testing.T) {
	c := Random(5, 30, 7)
	res, err := Solve(c, Options{Iterations: 500, SweepsPerRun: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Perm == nil {
		t.Fatal("no feasible permutation sampled")
	}
	if res.Gap > 0 {
		t.Fatalf("SAIM gap %v above Hungarian optimum %v", res.Gap, res.OptCost)
	}
	if res.Cost != res.OptCost {
		t.Fatalf("Cost %v vs OptCost %v", res.Cost, res.OptCost)
	}
}

func TestSolveDeterministic(t *testing.T) {
	c := Random(4, 20, 11)
	a, err := Solve(c, Options{Iterations: 100, SweepsPerRun: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(c, Options{Iterations: 100, SweepsPerRun: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.FeasibleRatio != b.FeasibleRatio {
		t.Fatal("same seed, different results")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(6, 9, 2)
	b := Random(6, 9, 2)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed, different matrices")
			}
		}
	}
}
