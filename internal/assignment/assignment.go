// Package assignment solves the linear assignment problem (LAP) with the
// self-adaptive Ising machine, using the Hungarian algorithm as the exact
// reference. Assignment structure — one-hot rows and columns — is the
// constraint pattern behind the scheduling and routing applications the
// paper's introduction lists, and it exercises SAIM with 2n simultaneous
// equality constraints.
//
// Encoding: x_{i,j} = 1 assigns worker i to job j; the objective is
// Σ c_ij x_ij and the constraints are Σ_j x_ij = 1 (each worker does one
// job) and Σ_i x_ij = 1 (each job gets one worker).
package assignment

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Cost is a square cost matrix; Cost[i][j] is the cost of assigning worker
// i to job j.
type Cost [][]float64

// Validate checks squareness and finiteness.
func (c Cost) Validate() error {
	n := len(c)
	if n == 0 {
		return fmt.Errorf("assignment: empty cost matrix")
	}
	for i, row := range c {
		if len(row) != n {
			return fmt.Errorf("assignment: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("assignment: cost[%d][%d] not finite", i, j)
			}
		}
	}
	return nil
}

// Random draws an n×n cost matrix with integer costs in [1, maxC].
func Random(n, maxC int, seed uint64) Cost {
	src := rng.New(seed)
	c := make(Cost, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := range c[i] {
			c[i][j] = float64(src.IntRange(1, maxC))
		}
	}
	return c
}

// Value returns the total cost of a permutation (perm[i] = job of worker i).
func (c Cost) Value(perm []int) float64 {
	s := 0.0
	for i, j := range perm {
		s += c[i][j]
	}
	return s
}

// Hungarian solves the LAP exactly in O(n³) (Jonker-style shortest
// augmenting path formulation) and returns the optimal permutation and its
// cost.
func Hungarian(c Cost) ([]int, float64, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(c)
	const inf = math.MaxFloat64
	// Potentials and matching, 1-indexed internally for the standard
	// shortest-augmenting-path bookkeeping.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := c[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	perm := make([]int, n)
	for j := 1; j <= n; j++ {
		perm[p[j]-1] = j - 1
	}
	return perm, c.Value(perm), nil
}

// ToProblem encodes the LAP as a SAIM problem over n² one-hot variables.
func ToProblem(c Cost) (*core.Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c)
	nVars := n * n
	idx := func(i, j int) int { return i*n + j }

	sys := constraint.NewSystem(nVars)
	for i := 0; i < n; i++ { // each worker exactly one job
		row := vecmat.NewVec(nVars)
		for j := 0; j < n; j++ {
			row[idx(i, j)] = 1
		}
		sys.Add(row, constraint.EQ, 1)
	}
	for j := 0; j < n; j++ { // each job exactly one worker
		col := vecmat.NewVec(nVars)
		for i := 0; i < n; i++ {
			col[idx(i, j)] = 1
		}
		sys.Add(col, constraint.EQ, 1)
	}
	ext := sys.Extend(constraint.Binary)
	ext.Normalize()

	obj := ising.NewQUBO(ext.NTotal)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			obj.AddLinear(idx(i, j), c[i][j])
		}
	}
	obj.Normalize()

	return &core.Problem{
		Objective: obj,
		Ext:       ext,
		Cost: func(x ising.Bits) float64 {
			perm, ok := Decode(n, x)
			if !ok {
				return math.Inf(1)
			}
			return c.Value(perm)
		},
	}, nil
}

// Decode converts a one-hot matrix assignment to a permutation. ok is
// false unless x is a permutation matrix.
func Decode(n int, x ising.Bits) ([]int, bool) {
	perm := make([]int, n)
	colUsed := make([]bool, n)
	for i := 0; i < n; i++ {
		found := -1
		for j := 0; j < n; j++ {
			if x[i*n+j] == 1 {
				if found >= 0 {
					return nil, false
				}
				found = j
			}
		}
		if found < 0 || colUsed[found] {
			return nil, false
		}
		colUsed[found] = true
		perm[i] = found
	}
	return perm, true
}

// Options tunes Solve.
type Options struct {
	Iterations   int
	SweepsPerRun int
	Eta          float64
	Penalty      float64
	BetaMax      float64
	Seed         uint64
}

// Result reports a SAIM assignment solve.
type Result struct {
	// Perm is the best feasible permutation (nil if none found).
	Perm []int
	// Cost is the total assignment cost of Perm (+Inf if none).
	Cost float64
	// FeasibleRatio is the percentage of permutation-feasible samples.
	FeasibleRatio float64
	// Gap is Cost − OptCost when an exact reference was computed (Solve
	// always computes it via Hungarian).
	Gap float64
	// OptCost is the Hungarian optimum.
	OptCost float64
}

// Solve runs SAIM on the LAP and reports the gap to the Hungarian optimum.
func Solve(c Cost, o Options) (*Result, error) {
	p, err := ToProblem(c)
	if err != nil {
		return nil, err
	}
	_, opt, err := Hungarian(c)
	if err != nil {
		return nil, err
	}
	res, err := core.Solve(p, core.Options{
		Iterations:   defInt(o.Iterations, 400),
		SweepsPerRun: defInt(o.SweepsPerRun, 300),
		Eta:          defF(o.Eta, 1),
		P:            defF(o.Penalty, 2),
		BetaMax:      defF(o.BetaMax, 20),
		Seed:         o.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Cost: math.Inf(1), FeasibleRatio: res.FeasibleRatio(), OptCost: opt, Gap: math.Inf(1)}
	if res.Best != nil {
		perm, ok := Decode(len(c), res.Best)
		if !ok {
			return nil, fmt.Errorf("assignment: internal error — feasible sample not a permutation")
		}
		out.Perm = perm
		out.Cost = c.Value(perm)
		out.Gap = out.Cost - opt
	}
	return out, nil
}

func defInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func defF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}
