package qkp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

func TestGenerateValidates(t *testing.T) {
	inst := Generate(50, 0.5, 1, 42)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Name != "50-50-1" {
		t.Fatalf("Name = %q", inst.Name)
	}
	if inst.N != 50 {
		t.Fatalf("N = %d", inst.N)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(30, 0.25, 1, 7)
	b := Generate(30, 0.25, 1, 7)
	if a.B != b.B || a.H[3] != b.H[3] || a.W[0][5] != b.W[0][5] {
		t.Fatal("same seed produced different instances")
	}
	c := Generate(30, 0.25, 1, 8)
	if a.B == c.B && a.H[3] == c.H[3] && a.A[7] == c.A[7] {
		t.Fatal("different seeds produced identical instance")
	}
}

func TestGenerateDensityApproximate(t *testing.T) {
	inst := Generate(100, 0.5, 1, 3)
	pairs, nz := 0, 0
	for i := 0; i < inst.N; i++ {
		for j := i + 1; j < inst.N; j++ {
			pairs++
			if inst.W[i][j] != 0 {
				nz++
			}
		}
	}
	got := float64(nz) / float64(pairs)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("empirical density %v, want ≈0.5", got)
	}
}

func TestGenerateRanges(t *testing.T) {
	inst := Generate(80, 0.75, 2, 9)
	sumW := 0
	for i := 0; i < inst.N; i++ {
		if inst.H[i] < 1 || inst.H[i] > 100 {
			t.Fatalf("value out of range: %d", inst.H[i])
		}
		if inst.A[i] < 1 || inst.A[i] > 50 {
			t.Fatalf("weight out of range: %d", inst.A[i])
		}
		sumW += inst.A[i]
		for j := i + 1; j < inst.N; j++ {
			if w := inst.W[i][j]; w != 0 && (w < 1 || w > 100) {
				t.Fatalf("pair value out of range: %d", w)
			}
		}
	}
	if inst.B < 50 || inst.B > sumW {
		t.Fatalf("capacity %d outside [50, %d]", inst.B, sumW)
	}
}

func TestValueAndCostByHand(t *testing.T) {
	inst := &Instance{
		N: 3, Density: 1,
		H: []int{10, 20, 30},
		A: []int{1, 1, 1}, B: 3,
		W: [][]int{{0, 5, 0}, {5, 0, 7}, {0, 7, 0}},
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := inst.Value(ising.Bits{1, 1, 0}); v != 35 {
		t.Fatalf("Value = %d, want 35", v)
	}
	if v := inst.Value(ising.Bits{1, 1, 1}); v != 72 {
		t.Fatalf("Value = %d, want 72", v)
	}
	if c := inst.Cost(ising.Bits{1, 1, 1}); c != -72 {
		t.Fatalf("Cost = %v", c)
	}
}

func TestFeasibleAndWeight(t *testing.T) {
	inst := &Instance{
		N: 2, Density: 1, H: []int{1, 1}, A: []int{3, 4}, B: 5,
		W: [][]int{{0, 0}, {0, 0}},
	}
	if !inst.Feasible(ising.Bits{1, 0}) || inst.Feasible(ising.Bits{1, 1}) {
		t.Fatal("feasibility broken")
	}
	if inst.Weight(ising.Bits{1, 1}) != 7 {
		t.Fatal("weight broken")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy(-99, -100); got != 99 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Accuracy(-100, -100); got != 100 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(-1, 0) != 0 {
		t.Fatal("zero OPT should yield 0")
	}
}

func TestNumSlackBitsMatchesPaperFormula(t *testing.T) {
	inst := Generate(20, 0.5, 1, 5)
	want := int(math.Floor(math.Log2(float64(inst.B)))) + 1
	if got := inst.NumSlackBits(); got != want {
		t.Fatalf("slack bits = %d, want %d", got, want)
	}
}

// The normalized SAIM problem must rank configurations identically to the
// integer instance, and its feasibility view must match.
func TestToProblemConsistency(t *testing.T) {
	src := rng.New(11)
	inst := Generate(12, 0.5, 1, 13)
	p := inst.ToProblem(constraint.Binary)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ext.NOrig != inst.N {
		t.Fatalf("NOrig = %d", p.Ext.NOrig)
	}
	if p.Density != inst.Density {
		t.Fatalf("Density = %v", p.Density)
	}
	for trial := 0; trial < 200; trial++ {
		x := make(ising.Bits, inst.N)
		for i := range x {
			if src.Bool(0.3) {
				x[i] = 1
			}
		}
		if got, want := p.Cost(x), inst.Cost(x); got != want {
			t.Fatalf("Cost mismatch: %v vs %v", got, want)
		}
		// Original feasibility via the extended system must agree with the
		// instance's own check.
		full := make(ising.Bits, p.Ext.NTotal)
		copy(full, x)
		if p.Ext.OrigFeasible(full, 1e-9) != inst.Feasible(x) {
			t.Fatal("feasibility mismatch between instance and extended system")
		}
	}
}

// Objective ordering must survive normalization: for any two configurations
// the normalized QUBO orders them as the integer objective does.
func TestToProblemPreservesOrdering(t *testing.T) {
	src := rng.New(17)
	inst := Generate(10, 0.75, 1, 19)
	p := inst.ToProblem(constraint.Binary)
	f := func(raw uint16) bool {
		x := make(ising.Bits, p.Ext.NTotal)
		y := make(ising.Bits, p.Ext.NTotal)
		for i := 0; i < inst.N; i++ {
			if src.Bool(0.5) {
				x[i] = 1
			}
			if src.Bool(0.5) {
				y[i] = 1
			}
		}
		ex, ey := p.Objective.Energy(x), p.Objective.Energy(y)
		cx, cy := inst.Cost(x[:inst.N]), inst.Cost(y[:inst.N])
		switch {
		case cx < cy:
			return ex < ey+1e-9
		case cx > cy:
			return ex > ey-1e-9
		default:
			return math.Abs(ex-ey) < 1e-9
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	inst := Generate(25, 0.5, 3, 23)
	var buf bytes.Buffer
	if err := inst.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != inst.Name || got.N != inst.N || got.B != inst.B {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := 0; i < inst.N; i++ {
		if got.H[i] != inst.H[i] || got.A[i] != inst.A[i] {
			t.Fatalf("vector mismatch at %d", i)
		}
		for j := 0; j < inst.N; j++ {
			if got.W[i][j] != inst.W[i][j] {
				t.Fatalf("W mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"name\n",
		"name\n-3\n",
		"name\n2\n1 x\n",
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("Read accepted %q", c)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := Generate(5, 1, 1, 2)
	asym := Generate(5, 1, 1, 2)
	asym.W[1][2] = asym.W[2][1] + 1
	diag := Generate(5, 1, 1, 2)
	diag.W[3][3] = 5
	negW := Generate(5, 1, 1, 2)
	negW.W[0][1], negW.W[1][0] = -1, -1
	badA := Generate(5, 1, 1, 2)
	badA.A[0] = 0
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []*Instance{asym, diag, negW, badA} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted corrupted instance", i)
		}
	}
}
