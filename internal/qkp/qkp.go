// Package qkp implements the 0–1 quadratic knapsack problem (QKP), the
// first benchmark family of the paper (Section IV.A):
//
//	min  −½ xᵀW x − hᵀx
//	s.t. aᵀx ≤ b,  x ∈ {0,1}^N            (paper eq. 12)
//
// where h are item values, W holds the extra value of selecting pairs of
// items, a are item weights and b is the knapsack capacity. Instances are
// generated with the distribution of Billionnet & Soutif [26], the source
// of the paper's benchmark set: pair values are present with probability d
// (the instance density) and drawn uniformly from [1,100], as are the item
// values; weights are uniform in [1,50] and the capacity is uniform in
// [50, Σ w].
//
// ToProblem converts an instance into the normalized extended form SAIM
// and the baselines consume, with binary slack bits for the capacity
// constraint exactly as in the paper.
package qkp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Instance is one QKP instance with integer data.
type Instance struct {
	// Name identifies the instance, conventionally "N-d%-id" (e.g.
	// "300-50-8" for N=300, d=50%, instance 8), following the paper.
	Name string
	// N is the number of items.
	N int
	// Density is the nominal pair-value density d ∈ (0,1].
	Density float64
	// H[i] is the value of item i.
	H []int
	// W[i][j] (i<j) is the extra value of selecting both i and j; the
	// matrix is stored symmetric with a zero diagonal.
	W [][]int
	// A[i] is the weight of item i.
	A []int
	// B is the knapsack capacity.
	B int
}

// Generate draws a random instance of n items with pair-value density d
// using the Billionnet–Soutif distribution. The id only names the instance;
// all randomness comes from seed.
func Generate(n int, d float64, id int, seed uint64) *Instance {
	if n <= 0 || d <= 0 || d > 1 {
		panic(fmt.Sprintf("qkp: invalid generator arguments n=%d d=%v", n, d))
	}
	src := rng.New(seed)
	inst := &Instance{
		Name:    fmt.Sprintf("%d-%d-%d", n, int(d*100+0.5), id),
		N:       n,
		Density: d,
		H:       make([]int, n),
		A:       make([]int, n),
		W:       make([][]int, n),
	}
	for i := range inst.W {
		inst.W[i] = make([]int, n)
	}
	sumW := 0
	for i := 0; i < n; i++ {
		inst.H[i] = src.IntRange(1, 100)
		inst.A[i] = src.IntRange(1, 50)
		sumW += inst.A[i]
		for j := i + 1; j < n; j++ {
			if src.Bool(d) {
				v := src.IntRange(1, 100)
				inst.W[i][j] = v
				inst.W[j][i] = v
			}
		}
	}
	lo := 50
	if lo > sumW {
		lo = sumW
	}
	inst.B = src.IntRange(lo, sumW)
	return inst
}

// Validate checks structural invariants of the instance.
func (q *Instance) Validate() error {
	if q.N <= 0 {
		return fmt.Errorf("qkp: non-positive N")
	}
	if len(q.H) != q.N || len(q.A) != q.N || len(q.W) != q.N {
		return fmt.Errorf("qkp: inconsistent dimensions")
	}
	for i := 0; i < q.N; i++ {
		if len(q.W[i]) != q.N {
			return fmt.Errorf("qkp: W row %d has length %d", i, len(q.W[i]))
		}
		if q.W[i][i] != 0 {
			return fmt.Errorf("qkp: W diagonal %d non-zero", i)
		}
		if q.A[i] <= 0 || q.H[i] < 0 {
			return fmt.Errorf("qkp: item %d has weight %d value %d", i, q.A[i], q.H[i])
		}
		for j := 0; j < q.N; j++ {
			if q.W[i][j] != q.W[j][i] {
				return fmt.Errorf("qkp: W not symmetric at (%d,%d)", i, j)
			}
			if q.W[i][j] < 0 {
				return fmt.Errorf("qkp: negative pair value at (%d,%d)", i, j)
			}
		}
	}
	if q.B < 0 {
		return fmt.Errorf("qkp: negative capacity")
	}
	return nil
}

// Value returns the total collected value Σ h_i x_i + Σ_{i<j} W_ij x_i x_j.
func (q *Instance) Value(x ising.Bits) int {
	if len(x) != q.N {
		panic("qkp: Value dimension mismatch")
	}
	v := 0
	for i := 0; i < q.N; i++ {
		if x[i] == 0 {
			continue
		}
		v += q.H[i]
		wi := q.W[i]
		for j := i + 1; j < q.N; j++ {
			if x[j] != 0 {
				v += wi[j]
			}
		}
	}
	return v
}

// Cost returns the minimization objective −Value(x), the quantity the
// paper's cost plots and accuracies use.
func (q *Instance) Cost(x ising.Bits) float64 { return -float64(q.Value(x)) }

// Weight returns the total selected weight aᵀx.
func (q *Instance) Weight(x ising.Bits) int {
	w := 0
	for i, xi := range x {
		if xi != 0 {
			w += q.A[i]
		}
	}
	return w
}

// Feasible reports aᵀx ≤ b.
func (q *Instance) Feasible(x ising.Bits) bool { return q.Weight(x) <= q.B }

// Accuracy returns the paper's accuracy metric 100·c(x)/OPT for a feasible
// cost c(x) (both negative), eq. 13. opt must be negative.
func Accuracy(cost, opt float64) float64 {
	if opt == 0 {
		return 0
	}
	return 100 * cost / opt
}

// System returns the single-constraint system aᵀx ≤ b over the N items.
func (q *Instance) System() *constraint.System {
	sys := constraint.NewSystem(q.N)
	a := vecmat.NewVec(q.N)
	for i, w := range q.A {
		a[i] = float64(w)
	}
	sys.Add(a, constraint.LE, float64(q.B))
	return sys
}

// ToProblem converts the instance into the normalized SAIM form using the
// given slack encoding (the paper uses constraint.Binary). Following
// Section IV.A, the objective coefficients are divided by max(|W|,|h|) and
// the constraint row (including slack coefficients) by max(|A|,b), so one
// β-schedule fits all instances. The returned problem's Cost works on the
// original integer data.
func (q *Instance) ToProblem(enc constraint.SlackEncoding) *core.Problem {
	ext := q.System().Extend(enc)
	ext.Normalize()

	obj := ising.NewQUBO(ext.NTotal)
	for i := 0; i < q.N; i++ {
		obj.AddLinear(i, -float64(q.H[i]))
		wi := q.W[i]
		for j := i + 1; j < q.N; j++ {
			if wi[j] != 0 {
				obj.AddQuad(i, j, -float64(wi[j]))
			}
		}
	}
	obj.Normalize()

	return &core.Problem{
		Objective: obj,
		Ext:       ext,
		Cost:      q.Cost,
		Density:   q.Density,
	}
}

// NumSlackBits returns the number of binary slack bits the paper's encoding
// adds: Q = floor(log2(b) + 1).
func (q *Instance) NumSlackBits() int {
	return len(constraint.SlackCoeffs(float64(q.B), constraint.Binary))
}

// Write serializes the instance in a plain text format compatible in spirit
// with the Billionnet–Soutif distribution files:
//
//	<name>
//	<N>
//	<h_1 … h_N>
//	<N-1 lines: upper triangle of W, row i holding W[i][i+1..N-1]>
//	<blank>
//	0
//	<b>
//	<a_1 … a_N>
func (q *Instance) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, q.Name)
	fmt.Fprintln(bw, q.N)
	writeInts(bw, q.H)
	for i := 0; i < q.N-1; i++ {
		writeInts(bw, q.W[i][i+1:])
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, 0)
	fmt.Fprintln(bw, q.B)
	writeInts(bw, q.A)
	return bw.Flush()
}

func writeInts(w io.Writer, xs []int) {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(x))
	}
	fmt.Fprintln(w, sb.String())
}

// Read parses an instance previously serialized by Write.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	name, err := next()
	if err != nil {
		return nil, fmt.Errorf("qkp: reading name: %w", err)
	}
	nLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("qkp: reading N: %w", err)
	}
	n, err := strconv.Atoi(nLine)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("qkp: invalid N %q", nLine)
	}
	inst := &Instance{Name: name, N: n, W: make([][]int, n)}
	for i := range inst.W {
		inst.W[i] = make([]int, n)
	}
	if inst.H, err = readInts(next, n); err != nil {
		return nil, fmt.Errorf("qkp: reading h: %w", err)
	}
	pairs := 0
	for i := 0; i < n-1; i++ {
		row, err := readInts(next, n-1-i)
		if err != nil {
			return nil, fmt.Errorf("qkp: reading W row %d: %w", i, err)
		}
		for k, v := range row {
			j := i + 1 + k
			inst.W[i][j] = v
			inst.W[j][i] = v
			if v != 0 {
				pairs++
			}
		}
	}
	if _, err = next(); err != nil { // constraint-type marker line ("0")
		return nil, fmt.Errorf("qkp: reading constraint type: %w", err)
	}
	bLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("qkp: reading b: %w", err)
	}
	if inst.B, err = strconv.Atoi(bLine); err != nil {
		return nil, fmt.Errorf("qkp: invalid b %q", bLine)
	}
	if inst.A, err = readInts(next, n); err != nil {
		return nil, fmt.Errorf("qkp: reading a: %w", err)
	}
	if n > 1 {
		inst.Density = float64(pairs) / float64(n*(n-1)/2)
	}
	return inst, inst.Validate()
}

func readInts(next func() (string, error), want int) ([]int, error) {
	out := make([]int, 0, want)
	for len(out) < want {
		line, err := next()
		if err != nil {
			return nil, err
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("invalid integer %q", f)
			}
			out = append(out, v)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("expected %d integers, got %d", want, len(out))
	}
	return out, nil
}
