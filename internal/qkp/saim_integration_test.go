package qkp_test

import (
	"testing"

	"github.com/ising-machines/saim/internal/anneal"
	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/qkp"
)

// Integration test of the paper's central claim on a small QKP: at the
// heuristic P = 2·d·N — far below the critical Pc — the plain penalty
// method finds (almost) no feasible samples, while SAIM's λ adaptation
// reaches the exact optimum.
func TestSAIMBeatsPenaltyAtSameSmallP(t *testing.T) {
	inst := qkp.Generate(14, 0.5, 1, 77)
	ref, err := exact.BruteForceQKP(inst)
	if err != nil {
		t.Fatal(err)
	}
	p := inst.ToProblem(constraint.Binary)

	saim, err := core.Solve(p, core.Options{
		Alpha: 2, Eta: 20, Iterations: 300, SweepsPerRun: 300, BetaMax: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pen, err := anneal.SolvePenalty(p, saim.P, anneal.Options{
		Runs: 300, SweepsPerRun: 300, BetaMax: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same P, same sample budget: the static penalty energy yields almost
	// no feasible samples (paper Fig. 1b, P < Pc)...
	if pen.FeasibleRatio() > 10 {
		t.Fatalf("penalty method unexpectedly feasible at P=%v: %v%%", saim.P, pen.FeasibleRatio())
	}
	// ...while SAIM closes the gap and finds the optimum (Fig. 1c/d).
	if saim.Best == nil {
		t.Fatal("SAIM found no feasible sample")
	}
	if acc := qkp.Accuracy(saim.BestCost, ref.Cost); acc < 99 {
		t.Fatalf("SAIM accuracy %v%% below 99%%", acc)
	}
	if saim.FeasibleRatio() < 20 {
		t.Fatalf("SAIM feasibility %v%% suspiciously low", saim.FeasibleRatio())
	}
}

// SAIM must be robust across η over an order of magnitude (the paper's
// "less parameter-sensitive" claim).
func TestSAIMRobustToEta(t *testing.T) {
	inst := qkp.Generate(30, 0.5, 1, 77)
	ref, err := exact.SolveQKP(inst, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Optimal {
		t.Fatal("reference not proven optimal")
	}
	p := inst.ToProblem(constraint.Binary)
	for _, eta := range []float64{5, 20, 50} {
		res, err := core.Solve(p, core.Options{
			Alpha: 2, Eta: eta, Iterations: 300, SweepsPerRun: 300, BetaMax: 10, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatalf("η=%v: no feasible sample", eta)
		}
		if acc := qkp.Accuracy(res.BestCost, ref.Cost); acc < 98 {
			t.Fatalf("η=%v: accuracy %v%% below 98%%", eta, acc)
		}
	}
}
