package ga

import (
	"testing"

	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/greedy"
	"github.com/ising-machines/saim/internal/mkp"
)

func TestSolveReachesOptimumOnSmallInstances(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		inst := mkp.Generate(16, 3, 0.5, int(seed), seed*13)
		ref, err := exact.BruteForceMKP(inst)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(inst, Options{Population: 50, Children: 4000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Feasible(res.Best) {
			t.Fatal("GA returned infeasible solution")
		}
		ratio := float64(res.Value) / float64(ref.Value)
		if ratio < 0.99 {
			t.Fatalf("seed %d: GA %d vs OPT %d (%.1f%%)", seed, res.Value, ref.Value, 100*ratio)
		}
	}
}

func TestSolveBeatsOrMatchesGreedy(t *testing.T) {
	inst := mkp.Generate(60, 5, 0.5, 1, 31)
	g := greedy.MKP(inst)
	res, err := Solve(inst, Options{Population: 60, Children: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < inst.Value(g) {
		t.Fatalf("GA %d worse than greedy %d", res.Value, inst.Value(g))
	}
}

func TestSolveDeterministic(t *testing.T) {
	inst := mkp.Generate(20, 3, 0.5, 1, 17)
	a, err := Solve(inst, Options{Population: 30, Children: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(inst, Options{Population: 30, Children: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Improvements != b.Improvements {
		t.Fatal("same seed, different outcomes")
	}
}

func TestSolveValueConsistent(t *testing.T) {
	inst := mkp.Generate(25, 4, 0.5, 1, 19)
	res, err := Solve(inst, Options{Population: 30, Children: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Value(res.Best) != res.Value {
		t.Fatalf("Value %d inconsistent with Best (%d)", res.Value, inst.Value(res.Best))
	}
	if res.Cost != -float64(res.Value) {
		t.Fatalf("Cost %v vs Value %d", res.Cost, res.Value)
	}
	if res.Children != 800 {
		t.Fatalf("Children = %d", res.Children)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	bad := mkp.Generate(5, 2, 0.5, 1, 1)
	bad.H[0] = -3
	if _, err := Solve(bad, Options{}); err == nil {
		t.Fatal("accepted corrupted instance")
	}
}

func TestRepairProducesFeasible(t *testing.T) {
	inst := mkp.Generate(30, 4, 0.5, 1, 23)
	utility := pseudoUtilities(inst)
	desc := make([]int, inst.N)
	for j := range desc {
		desc[j] = j
	}
	// All-ones is grossly infeasible at tightness 0.5; repair must fix it
	// and then pack greedily.
	x := make([]int8, inst.N)
	for j := range x {
		x[j] = 1
	}
	repair(FromMKP(inst), x, desc, utility)
	if !inst.Feasible(x) {
		t.Fatal("repair left infeasible configuration")
	}
	// Maximality: no unselected item fits.
	load := make([]int, inst.M)
	for i := 0; i < inst.M; i++ {
		for j, xj := range x {
			if xj != 0 {
				load[i] += inst.A[i][j]
			}
		}
	}
	for j, xj := range x {
		if xj != 0 {
			continue
		}
		fits := true
		for i := 0; i < inst.M; i++ {
			if load[i]+inst.A[i][j] > inst.B[i] {
				fits = false
				break
			}
		}
		if fits {
			t.Fatalf("repair left addable item %d", j)
		}
	}
}

func TestBitsKeyDistinguishes(t *testing.T) {
	a := []int8{0, 1, 0}
	b := []int8{0, 1, 1}
	if bitsKey(a) == bitsKey(b) {
		t.Fatal("distinct configurations share a key")
	}
	if bitsKey(a) != bitsKey([]int8{0, 1, 0}) {
		t.Fatal("equal configurations have different keys")
	}
}
