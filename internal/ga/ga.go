// Package ga implements the Chu–Beasley genetic algorithm for the
// multidimensional knapsack problem [28], the baseline of the paper's
// Table V. The algorithm is a steady-state GA with:
//
//   - binary-tournament parent selection,
//   - uniform crossover,
//   - light mutation (two random bit flips),
//   - a repair operator driven by pseudo-utility ratios (value divided by
//     capacity-weighted aggregate weight): a DROP phase removes the least
//     useful selected items until all constraints hold, then an ADD phase
//     greedily inserts the most useful items that still fit,
//   - replace-worst steady-state updates with duplicate rejection.
//
// Every individual in the population is feasible at all times, which is
// the defining trait of Chu & Beasley's design.
package ga

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/rng"
)

// Options configures a GA run.
type Options struct {
	// Population is the steady-state population size (Chu–Beasley: 100).
	Population int
	// Children is the number of offspring generated (the time budget).
	Children int
	// Seed drives all randomness.
	Seed uint64
	// Progress, when non-nil, is invoked once per offspring with a
	// snapshot of the search (every individual is feasible by
	// construction, so FeasibleCount == Samples).
	Progress func(core.ProgressInfo)
	// TargetCost, when non-nil, stops the search early as soon as the
	// best individual reaches a minimization cost (−value) ≤ *TargetCost.
	TargetCost *float64
	// Patience, when positive, stops the search after this many
	// consecutive offspring without an improvement of the best value.
	Patience int
	// Initial, when non-empty, warm-starts the search: the assignment is
	// repaired to feasibility and injected into the initial population
	// (replacing the worst member when the population is full), so the
	// search never returns a worse result than the repaired warm start.
	Initial ising.Bits
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Population == 0 {
		out.Population = 100
	}
	if out.Children == 0 {
		out.Children = 10000
	}
	return out
}

// Result summarizes a GA run.
type Result struct {
	// Best is the best feasible assignment found.
	Best ising.Bits
	// Value is the collected value of Best.
	Value int
	// Cost is −Value.
	Cost float64
	// Children is the number of offspring generated.
	Children int
	// Improvements counts offspring that entered the population.
	Improvements int
	// Stopped records why the search returned.
	Stopped core.StopReason
}

type individual struct {
	x     ising.Bits
	value int
}

// Knapsack is the problem structure the generic GA needs: M linear
// capacity constraints A·x ≤ B for the repair operator, a pseudo-utility
// per item driving repair order, and an arbitrary integer value function to
// maximize (linear for MKP, quadratic for QKP, anything monotone-checkable
// works as long as repair keeps x feasible).
type Knapsack struct {
	// N is the number of items, M the number of capacity constraints.
	N, M int
	// A[i][j] is the weight of item j in constraint i; B[i] the capacity.
	A [][]int
	B []int
	// Util[j] orders the repair operator (higher = keep/insert first).
	Util []float64
	// Value returns the quantity to maximize for a feasible assignment.
	Value func(x ising.Bits) int
}

// Validate checks structural invariants.
func (k *Knapsack) Validate() error {
	if k.N <= 0 || k.M <= 0 {
		return fmt.Errorf("ga: non-positive dimensions N=%d M=%d", k.N, k.M)
	}
	if len(k.A) != k.M || len(k.B) != k.M || len(k.Util) != k.N || k.Value == nil {
		return fmt.Errorf("ga: inconsistent knapsack structure")
	}
	for i := range k.A {
		if len(k.A[i]) != k.N {
			return fmt.Errorf("ga: A row %d has length %d", i, len(k.A[i]))
		}
	}
	return nil
}

// FromMKP wraps an MKP instance in the generic knapsack structure using the
// Chu–Beasley pseudo-utility ordering.
func FromMKP(inst *mkp.Instance) *Knapsack {
	return &Knapsack{
		N: inst.N, M: inst.M, A: inst.A, B: inst.B,
		Util:  pseudoUtilities(inst),
		Value: inst.Value,
	}
}

// Solve runs the Chu–Beasley GA on the MKP instance.
func Solve(inst *mkp.Instance, opt Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return SolveKnapsackContext(context.Background(), FromMKP(inst), opt)
}

// SolveKnapsackContext runs the steady-state GA on a generic knapsack
// structure. The context is checked once per offspring; on cancellation the
// best individual so far is returned with a nil error.
func SolveKnapsackContext(ctx context.Context, inst *Knapsack, opt Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	src := rng.New(o.Seed)

	utility := inst.Util
	// Items by decreasing utility for the ADD phase, increasing for DROP.
	desc := make([]int, inst.N)
	for j := range desc {
		desc[j] = j
	}
	sort.Slice(desc, func(a, b int) bool { return utility[desc[a]] > utility[desc[b]] })

	// Tiny instances cannot host a full population of *distinct*
	// individuals (there are at most 2^N configurations, fewer after
	// repair); cap the target and bound the fill attempts so population
	// initialization always terminates.
	target := o.Population
	if inst.N < 20 && target > 1<<inst.N {
		target = 1 << inst.N
	}
	pop := make([]*individual, 0, target)
	seen := map[string]bool{}
	for attempts := 0; len(pop) < target && attempts < 50*target; attempts++ {
		if ctx.Err() != nil {
			break
		}
		x := make(ising.Bits, inst.N)
		for j := range x {
			if src.Bool(0.5) {
				x[j] = 1
			}
		}
		repair(inst, x, desc, utility)
		key := bitsKey(x)
		if seen[key] {
			// Mutate a duplicate instead of rejection-sampling forever.
			x[src.Intn(inst.N)] ^= 1
			repair(inst, x, desc, utility)
			key = bitsKey(x)
			if seen[key] {
				continue
			}
		}
		seen[key] = true
		pop = append(pop, &individual{x: x, value: inst.Value(x)})
	}
	if len(pop) == 0 {
		// Degenerate fallback: the repaired empty selection is feasible.
		x := make(ising.Bits, inst.N)
		repair(inst, x, desc, utility)
		pop = append(pop, &individual{x: x, value: inst.Value(x)})
	}

	// Warm start: repair the supplied assignment and inject it into the
	// population unless an identical individual is already present.
	if len(o.Initial) == inst.N {
		x := o.Initial.Clone()
		repair(inst, x, desc, utility)
		if key := bitsKey(x); !seen[key] {
			ind := &individual{x: x, value: inst.Value(x)}
			if len(pop) < target {
				pop = append(pop, ind)
			} else {
				worst := 0
				for i := range pop {
					if pop[i].value < pop[worst].value {
						worst = i
					}
				}
				delete(seen, bitsKey(pop[worst].x))
				pop[worst] = ind
			}
			seen[key] = true
		}
	}

	best := pop[0]
	for _, ind := range pop {
		if ind.value > best.value {
			best = ind
		}
	}

	res := &Result{}
	tournament := func() *individual {
		a := pop[src.Intn(len(pop))]
		b := pop[src.Intn(len(pop))]
		if a.value >= b.value {
			return a
		}
		return b
	}

	// offspring generates one child and steady-state-updates the
	// population, reporting whether the best individual improved.
	offspring := func() bool {
		p1, p2 := tournament(), tournament()
		child := make(ising.Bits, inst.N)
		for j := range child {
			if src.Bool(0.5) {
				child[j] = p1.x[j]
			} else {
				child[j] = p2.x[j]
			}
		}
		// Mutation: flip two random bits.
		child[src.Intn(inst.N)] ^= 1
		child[src.Intn(inst.N)] ^= 1
		repair(inst, child, desc, utility)

		key := bitsKey(child)
		if seen[key] {
			return false
		}
		val := inst.Value(child)
		// Replace the worst member if the child improves on it.
		worst := 0
		for i, ind := range pop {
			if ind.value < pop[worst].value {
				worst = i
			}
		}
		if val <= pop[worst].value {
			return false
		}
		delete(seen, bitsKey(pop[worst].x))
		seen[key] = true
		pop[worst] = &individual{x: child, value: val}
		res.Improvements++
		if val > best.value {
			best = pop[worst]
			return true
		}
		return false
	}

	sinceImprove := 0
	for c := 0; c < o.Children; c++ {
		if ctx.Err() != nil {
			res.Stopped = core.StopCancelled
			break
		}
		res.Children++
		sinceImprove++
		if offspring() {
			sinceImprove = 0
		}
		if o.Progress != nil {
			o.Progress(core.ProgressInfo{
				Iteration: c, Total: o.Children, BestCost: -float64(best.value),
				FeasibleCount: c + 1, Samples: c + 1,
			})
		}
		if o.TargetCost != nil && -float64(best.value) <= *o.TargetCost {
			res.Stopped = core.StopTarget
			break
		}
		if o.Patience > 0 && sinceImprove >= o.Patience {
			res.Stopped = core.StopPatience
			break
		}
	}

	res.Best = best.x.Clone()
	res.Value = best.value
	res.Cost = -float64(best.value)
	return res, nil
}

// pseudoUtilities returns h_j / Σ_i a_ij/b_i, the surrogate-dual utility
// ratio Chu & Beasley use for their repair operator.
func pseudoUtilities(inst *mkp.Instance) []float64 {
	k := &Knapsack{N: inst.N, M: inst.M, A: inst.A, B: inst.B}
	u := make([]float64, inst.N)
	for j := 0; j < inst.N; j++ {
		u[j] = float64(inst.H[j]) / aggregateWeight(k, j)
	}
	return u
}

// aggregateWeight returns Σ_i a_ij/b_i, the capacity-normalized weight the
// pseudo-utility ratios divide by.
func aggregateWeight(inst *Knapsack, j int) float64 {
	agg := 0.0
	for i := 0; i < inst.M; i++ {
		if inst.B[i] > 0 {
			agg += float64(inst.A[i][j]) / float64(inst.B[i])
		} else {
			agg += float64(inst.A[i][j])
		}
	}
	if agg == 0 {
		agg = math.SmallestNonzeroFloat64
	}
	return agg
}

// repair makes x feasible in place: DROP selected items by increasing
// utility until every constraint holds, then ADD unselected items by
// decreasing utility where they fit.
func repair(inst *Knapsack, x ising.Bits, desc []int, utility []float64) {
	load := make([]int, inst.M)
	for i := 0; i < inst.M; i++ {
		row := inst.A[i]
		for j, xj := range x {
			if xj != 0 {
				load[i] += row[j]
			}
		}
	}
	violated := func() bool {
		for i := 0; i < inst.M; i++ {
			if load[i] > inst.B[i] {
				return true
			}
		}
		return false
	}
	// DROP: walk utility order from the worst end.
	for k := len(desc) - 1; k >= 0 && violated(); k-- {
		j := desc[k]
		if x[j] != 0 {
			x[j] = 0
			for i := 0; i < inst.M; i++ {
				load[i] -= inst.A[i][j]
			}
		}
	}
	// ADD: walk utility order from the best end.
	for _, j := range desc {
		if x[j] != 0 {
			continue
		}
		fits := true
		for i := 0; i < inst.M; i++ {
			if load[i]+inst.A[i][j] > inst.B[i] {
				fits = false
				break
			}
		}
		if fits {
			x[j] = 1
			for i := 0; i < inst.M; i++ {
				load[i] += inst.A[i][j]
			}
		}
	}
}

// bitsKey returns a compact map key for a configuration.
func bitsKey(x ising.Bits) string {
	b := make([]byte, len(x))
	for i, v := range x {
		b[i] = byte(v)
	}
	return string(b)
}
