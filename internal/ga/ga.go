// Package ga implements the Chu–Beasley genetic algorithm for the
// multidimensional knapsack problem [28], the baseline of the paper's
// Table V. The algorithm is a steady-state GA with:
//
//   - binary-tournament parent selection,
//   - uniform crossover,
//   - light mutation (two random bit flips),
//   - a repair operator driven by pseudo-utility ratios (value divided by
//     capacity-weighted aggregate weight): a DROP phase removes the least
//     useful selected items until all constraints hold, then an ADD phase
//     greedily inserts the most useful items that still fit,
//   - replace-worst steady-state updates with duplicate rejection.
//
// Every individual in the population is feasible at all times, which is
// the defining trait of Chu & Beasley's design.
package ga

import (
	"math"
	"sort"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/rng"
)

// Options configures a GA run.
type Options struct {
	// Population is the steady-state population size (Chu–Beasley: 100).
	Population int
	// Children is the number of offspring generated (the time budget).
	Children int
	// Seed drives all randomness.
	Seed uint64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Population == 0 {
		out.Population = 100
	}
	if out.Children == 0 {
		out.Children = 10000
	}
	return out
}

// Result summarizes a GA run.
type Result struct {
	// Best is the best feasible assignment found.
	Best ising.Bits
	// Value is the collected value of Best.
	Value int
	// Cost is −Value.
	Cost float64
	// Children is the number of offspring generated.
	Children int
	// Improvements counts offspring that entered the population.
	Improvements int
}

type individual struct {
	x     ising.Bits
	value int
}

// Solve runs the Chu–Beasley GA on the instance.
func Solve(inst *mkp.Instance, opt Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	src := rng.New(o.Seed)

	utility := pseudoUtilities(inst)
	// Items by decreasing utility for the ADD phase, increasing for DROP.
	desc := make([]int, inst.N)
	for j := range desc {
		desc[j] = j
	}
	sort.Slice(desc, func(a, b int) bool { return utility[desc[a]] > utility[desc[b]] })

	pop := make([]*individual, 0, o.Population)
	seen := map[string]bool{}
	for len(pop) < o.Population {
		x := make(ising.Bits, inst.N)
		for j := range x {
			if src.Bool(0.5) {
				x[j] = 1
			}
		}
		repair(inst, x, desc, utility)
		key := bitsKey(x)
		if seen[key] {
			// Mutate a duplicate instead of rejection-sampling forever.
			x[src.Intn(inst.N)] ^= 1
			repair(inst, x, desc, utility)
			key = bitsKey(x)
			if seen[key] {
				continue
			}
		}
		seen[key] = true
		pop = append(pop, &individual{x: x, value: inst.Value(x)})
	}

	best := pop[0]
	for _, ind := range pop {
		if ind.value > best.value {
			best = ind
		}
	}

	res := &Result{}
	tournament := func() *individual {
		a := pop[src.Intn(len(pop))]
		b := pop[src.Intn(len(pop))]
		if a.value >= b.value {
			return a
		}
		return b
	}

	for c := 0; c < o.Children; c++ {
		res.Children++
		p1, p2 := tournament(), tournament()
		child := make(ising.Bits, inst.N)
		for j := range child {
			if src.Bool(0.5) {
				child[j] = p1.x[j]
			} else {
				child[j] = p2.x[j]
			}
		}
		// Mutation: flip two random bits.
		child[src.Intn(inst.N)] ^= 1
		child[src.Intn(inst.N)] ^= 1
		repair(inst, child, desc, utility)

		key := bitsKey(child)
		if seen[key] {
			continue
		}
		val := inst.Value(child)
		// Replace the worst member if the child improves on it.
		worst := 0
		for i, ind := range pop {
			if ind.value < pop[worst].value {
				worst = i
			}
		}
		if val <= pop[worst].value {
			continue
		}
		delete(seen, bitsKey(pop[worst].x))
		seen[key] = true
		pop[worst] = &individual{x: child, value: val}
		res.Improvements++
		if val > best.value {
			best = pop[worst]
		}
	}

	res.Best = best.x.Clone()
	res.Value = best.value
	res.Cost = -float64(best.value)
	return res, nil
}

// pseudoUtilities returns h_j / Σ_i a_ij/b_i, the surrogate-dual utility
// ratio Chu & Beasley use for their repair operator.
func pseudoUtilities(inst *mkp.Instance) []float64 {
	u := make([]float64, inst.N)
	for j := 0; j < inst.N; j++ {
		agg := 0.0
		for i := 0; i < inst.M; i++ {
			if inst.B[i] > 0 {
				agg += float64(inst.A[i][j]) / float64(inst.B[i])
			} else {
				agg += float64(inst.A[i][j])
			}
		}
		if agg == 0 {
			agg = math.SmallestNonzeroFloat64
		}
		u[j] = float64(inst.H[j]) / agg
	}
	return u
}

// repair makes x feasible in place: DROP selected items by increasing
// utility until every constraint holds, then ADD unselected items by
// decreasing utility where they fit.
func repair(inst *mkp.Instance, x ising.Bits, desc []int, utility []float64) {
	load := make([]int, inst.M)
	for i := 0; i < inst.M; i++ {
		row := inst.A[i]
		for j, xj := range x {
			if xj != 0 {
				load[i] += row[j]
			}
		}
	}
	violated := func() bool {
		for i := 0; i < inst.M; i++ {
			if load[i] > inst.B[i] {
				return true
			}
		}
		return false
	}
	// DROP: walk utility order from the worst end.
	for k := len(desc) - 1; k >= 0 && violated(); k-- {
		j := desc[k]
		if x[j] != 0 {
			x[j] = 0
			for i := 0; i < inst.M; i++ {
				load[i] -= inst.A[i][j]
			}
		}
	}
	// ADD: walk utility order from the best end.
	for _, j := range desc {
		if x[j] != 0 {
			continue
		}
		fits := true
		for i := 0; i < inst.M; i++ {
			if load[i]+inst.A[i][j] > inst.B[i] {
				fits = false
				break
			}
		}
		if fits {
			x[j] = 1
			for i := 0; i < inst.M; i++ {
				load[i] += inst.A[i][j]
			}
		}
	}
}

// bitsKey returns a compact map key for a configuration.
func bitsKey(x ising.Bits) string {
	b := make([]byte, len(x))
	for i, v := range x {
		b[i] = byte(v)
	}
	return string(b)
}
