//go:build !amd64

package rng

// fillSym4 has no vector kernel off amd64; the portable body runs.
//
//saim:hotpath
func fillSym4(srcs *[4]*Source, dst []float64, n, stride int) {
	fillSym4Generic(srcs, dst, n, stride)
}

// fillSym8 has no vector kernel off amd64; the portable body runs.
//
//saim:hotpath
func fillSym8(srcs *[8]*Source, dst []float64, n, stride int) {
	fillSym8Generic(srcs, dst, n, stride)
}
