package rng

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/cpufeat"
)

// Differential pins for the strided-fill dispatchers: fillSym4 and
// fillSym8 must write the same draws AND leave their sources in the same
// state under the AVX2 and portable paths — a state divergence would
// silently fork every later draw, so the continuation stream is part of
// the contract. Without AVX2 hardware both runs are portable and the
// comparison is vacuous, as in the other differential tests.

func TestFillSym4DispatchNativeMatchesPortable(t *testing.T) {
	saved := cpufeat.HasAVX2
	defer func() { cpufeat.HasAVX2 = saved }()

	for _, n := range []int{1, 7, 64, 129} {
		const stride = 6
		mk := func() *[4]*Source {
			var srcs [4]*Source
			for l := range srcs {
				srcs[l] = New(uint64(1000*n + l))
			}
			return &srcs
		}

		cpufeat.HasAVX2 = saved
		nativeSrc := mk()
		native := make([]float64, n*stride)
		fillSym4(nativeSrc, native, n, stride)

		cpufeat.HasAVX2 = false
		portableSrc := mk()
		portable := make([]float64, n*stride)
		fillSym4(portableSrc, portable, n, stride)

		for i := range native {
			if math.Float64bits(native[i]) != math.Float64bits(portable[i]) {
				t.Fatalf("n=%d: draw %d diverges: native %x portable %x",
					n, i, math.Float64bits(native[i]), math.Float64bits(portable[i]))
			}
		}
		for l := 0; l < 4; l++ {
			if a, b := nativeSrc[l].Sym(), portableSrc[l].Sym(); a != b {
				t.Fatalf("n=%d: source %d state diverged: next draw %v vs %v", n, l, a, b)
			}
		}
	}
}

func TestFillSym8DispatchNativeMatchesPortable(t *testing.T) {
	saved := cpufeat.HasAVX2
	defer func() { cpufeat.HasAVX2 = saved }()

	for _, n := range []int{1, 7, 64, 129} {
		const stride = 11
		mk := func() *[8]*Source {
			var srcs [8]*Source
			for l := range srcs {
				srcs[l] = New(uint64(2000*n + l))
			}
			return &srcs
		}

		cpufeat.HasAVX2 = saved
		nativeSrc := mk()
		native := make([]float64, n*stride)
		fillSym8(nativeSrc, native, n, stride)

		cpufeat.HasAVX2 = false
		portableSrc := mk()
		portable := make([]float64, n*stride)
		fillSym8(portableSrc, portable, n, stride)

		for i := range native {
			if math.Float64bits(native[i]) != math.Float64bits(portable[i]) {
				t.Fatalf("n=%d: draw %d diverges: native %x portable %x",
					n, i, math.Float64bits(native[i]), math.Float64bits(portable[i]))
			}
		}
		for l := 0; l < 8; l++ {
			if a, b := nativeSrc[l].Sym(), portableSrc[l].Sym(); a != b {
				t.Fatalf("n=%d: source %d state diverged: next draw %v vs %v", n, l, a, b)
			}
		}
	}
}
