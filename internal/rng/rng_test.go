package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestSymRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Sym()
		if f < -1 || f >= 1 {
			t.Fatalf("Sym out of [-1,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", k, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if got := s.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d", got)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(19)
	const n, draws = 5, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("first element %d count %d deviates from %v", k, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(29)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// FillSym must replay exactly the per-call Sym stream — the p-bit sweep
// kernels batch their noise through it and rely on stream equivalence for
// trajectory reproducibility.
func TestFillSymMatchesSym(t *testing.T) {
	a, b := New(99), New(99)
	batch := make([]float64, 257)
	a.FillSym(batch)
	for i := range batch {
		if want := b.Sym(); batch[i] != want {
			t.Fatalf("FillSym[%d] = %v, want %v", i, batch[i], want)
		}
	}
	// Both sources must resume in lockstep afterwards.
	if a.Uint64() != b.Uint64() {
		t.Fatal("FillSym left the generator in a different state")
	}
	for _, v := range batch {
		if v < -1 || v >= 1 {
			t.Fatalf("FillSym value %v out of [-1,1)", v)
		}
	}
}
