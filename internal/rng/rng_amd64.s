#include "textflag.h"

// Bit-pattern constants for the exact uint64→float64 conversion and the
// [-1, 1) mapping. All are broadcast 4-wide.
DATA maskLo32<>+0(SB)/8, $0x00000000ffffffff
DATA maskLo32<>+8(SB)/8, $0x00000000ffffffff
DATA maskLo32<>+16(SB)/8, $0x00000000ffffffff
DATA maskLo32<>+24(SB)/8, $0x00000000ffffffff
GLOBL maskLo32<>(SB), RODATA|NOPTR, $32

// double 2^52 (exponent-only pattern; OR-ing a <2^32 integer into the
// mantissa yields the exact double 2^52+v).
DATA magic52<>+0(SB)/8, $0x4330000000000000
DATA magic52<>+8(SB)/8, $0x4330000000000000
DATA magic52<>+16(SB)/8, $0x4330000000000000
DATA magic52<>+24(SB)/8, $0x4330000000000000
GLOBL magic52<>(SB), RODATA|NOPTR, $32

// double 2^84: OR-ing the high 32 result bits into the mantissa yields the
// exact double 2^84 + hi·2^32.
DATA magic84<>+0(SB)/8, $0x4530000000000000
DATA magic84<>+8(SB)/8, $0x4530000000000000
DATA magic84<>+16(SB)/8, $0x4530000000000000
DATA magic84<>+24(SB)/8, $0x4530000000000000
GLOBL magic84<>(SB), RODATA|NOPTR, $32

// double 2^84 + 2^52, subtracted from the high part so hi+lo reassemble the
// original 53-bit integer exactly.
DATA c84p52<>+0(SB)/8, $0x4530000000100000
DATA c84p52<>+8(SB)/8, $0x4530000000100000
DATA c84p52<>+16(SB)/8, $0x4530000000100000
DATA c84p52<>+24(SB)/8, $0x4530000000100000
GLOBL c84p52<>(SB), RODATA|NOPTR, $32

// double 2^-52: v·2^-52 equals the scalar path's 2·(v/2^53) exactly.
DATA c2m52<>+0(SB)/8, $0x3cb0000000000000
DATA c2m52<>+8(SB)/8, $0x3cb0000000000000
DATA c2m52<>+16(SB)/8, $0x3cb0000000000000
DATA c2m52<>+24(SB)/8, $0x3cb0000000000000
GLOBL c2m52<>(SB), RODATA|NOPTR, $32

DATA one<>+0(SB)/8, $0x3ff0000000000000
DATA one<>+8(SB)/8, $0x3ff0000000000000
DATA one<>+16(SB)/8, $0x3ff0000000000000
DATA one<>+24(SB)/8, $0x3ff0000000000000
GLOBL one<>(SB), RODATA|NOPTR, $32

// func fillSym4AVX2(state *[16]uint64, dst *float64, n, strideBytes int)
//
// state is structure-of-arrays: words 0-3 are the four lanes' s0, words
// 4-7 s1, 8-11 s2, 12-15 s3. Each iteration emits one draw per lane,
// stored as a contiguous 32-byte quad at dst, then advances dst by
// strideBytes. The per-lane streams are bit-identical to Source.Sym.
TEXT ·fillSym4AVX2(SB), NOSPLIT, $0-32
	MOVQ state+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ strideBytes+24(FP), R9

	VMOVDQU (SI), Y0       // s0 lanes
	VMOVDQU 32(SI), Y1     // s1 lanes
	VMOVDQU 64(SI), Y2     // s2 lanes
	VMOVDQU 96(SI), Y3     // s3 lanes

	VMOVDQU maskLo32<>(SB), Y8
	VMOVDQU magic52<>(SB), Y9
	VMOVDQU magic84<>(SB), Y10
	VMOVUPD c84p52<>(SB), Y11
	VMOVUPD c2m52<>(SB), Y12
	VMOVUPD one<>(SB), Y13

	TESTQ CX, CX
	JZ    done

loop:
	// result = rotl(s1*5, 7) * 9
	VPSLLQ $2, Y1, Y4
	VPADDQ Y1, Y4, Y4      // s1*5
	VPSLLQ $7, Y4, Y5
	VPSRLQ $57, Y4, Y6
	VPOR   Y5, Y6, Y5      // rotl(·, 7)
	VPSLLQ $3, Y5, Y6
	VPADDQ Y5, Y6, Y7      // ·*9

	// xoshiro256** state transition
	VPSLLQ $17, Y1, Y4     // t = s1 << 17
	VPXOR  Y0, Y2, Y2      // s2 ^= s0
	VPXOR  Y1, Y3, Y3      // s3 ^= s1
	VPXOR  Y2, Y1, Y1      // s1 ^= s2
	VPXOR  Y3, Y0, Y0      // s0 ^= s3
	VPXOR  Y4, Y2, Y2      // s2 ^= t
	VPSLLQ $45, Y3, Y5
	VPSRLQ $19, Y3, Y6
	VPOR   Y5, Y6, Y3      // s3 = rotl(s3, 45)

	// v = result >> 11, converted exactly, mapped to v·2^-52 − 1.
	VPSRLQ $11, Y7, Y7
	VPAND  Y8, Y7, Y4      // low 32 bits
	VPSRLQ $32, Y7, Y5     // high bits
	VPOR   Y9, Y4, Y4      // double(2^52 + lo)
	VPOR   Y10, Y5, Y5     // double(2^84 + hi·2^32)
	VSUBPD Y11, Y5, Y5     // hi·2^32 − 2^52
	VADDPD Y4, Y5, Y4      // = v, exact
	VMULPD Y12, Y4, Y4     // v·2^-52
	VSUBPD Y13, Y4, Y4     // − 1
	VMOVUPD Y4, (DI)

	ADDQ R9, DI
	DECQ CX
	JNZ  loop

done:
	VMOVDQU Y0, (SI)
	VMOVDQU Y1, 32(SI)
	VMOVDQU Y2, 64(SI)
	VMOVDQU Y3, 96(SI)
	VZEROUPPER
	RET

// func fillSym8AVX2(state *[32]uint64, dst *float64, n, strideBytes int)
//
// Two independent 4-wide xoshiro256** chains (quad A in Y0-Y3, quad B in
// Y4-Y7) stepped per round, emitting 8 contiguous draws (one full cache
// line) at dst before advancing by strideBytes. The two chains' dependency
// graphs are disjoint, so their state-transition latencies overlap — this
// is what the single-chain 4-wide kernel is bound on. Constants come from
// memory operands to keep all 16 ymm registers for chain state and temps.
// Per-lane streams are bit-identical to Source.Sym.
TEXT ·fillSym8AVX2(SB), NOSPLIT, $0-32
	MOVQ state+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ strideBytes+24(FP), R9

	VMOVDQU (SI), Y0    // A: s0
	VMOVDQU 32(SI), Y1  // A: s1
	VMOVDQU 64(SI), Y2  // A: s2
	VMOVDQU 96(SI), Y3  // A: s3
	VMOVDQU 128(SI), Y4 // B: s0
	VMOVDQU 160(SI), Y5 // B: s1
	VMOVDQU 192(SI), Y6 // B: s2
	VMOVDQU 224(SI), Y7 // B: s3

	TESTQ CX, CX
	JZ    done

loop:
	// result = rotl(s1*5, 7) * 9, both chains interleaved
	VPSLLQ $2, Y1, Y8
	VPSLLQ $2, Y5, Y12
	VPADDQ Y1, Y8, Y8
	VPADDQ Y5, Y12, Y12
	VPSLLQ $7, Y8, Y9
	VPSLLQ $7, Y12, Y13
	VPSRLQ $57, Y8, Y10
	VPSRLQ $57, Y12, Y14
	VPOR   Y9, Y10, Y9
	VPOR   Y13, Y14, Y13
	VPSLLQ $3, Y9, Y10
	VPSLLQ $3, Y13, Y14
	VPADDQ Y9, Y10, Y11 // A result
	VPADDQ Y13, Y14, Y15 // B result

	// xoshiro256** state transition, both chains
	VPSLLQ $17, Y1, Y8 // A: t
	VPSLLQ $17, Y5, Y12 // B: t
	VPXOR  Y0, Y2, Y2
	VPXOR  Y4, Y6, Y6
	VPXOR  Y1, Y3, Y3
	VPXOR  Y5, Y7, Y7
	VPXOR  Y2, Y1, Y1
	VPXOR  Y6, Y5, Y5
	VPXOR  Y3, Y0, Y0
	VPXOR  Y7, Y4, Y4
	VPXOR  Y8, Y2, Y2
	VPXOR  Y12, Y6, Y6
	VPSLLQ $45, Y3, Y9
	VPSLLQ $45, Y7, Y13
	VPSRLQ $19, Y3, Y10
	VPSRLQ $19, Y7, Y14
	VPOR   Y9, Y10, Y3
	VPOR   Y13, Y14, Y7

	// v = result >> 11, exact conversion, map to v·2^-52 − 1
	VPSRLQ $11, Y11, Y11
	VPSRLQ $11, Y15, Y15
	VPAND  maskLo32<>(SB), Y11, Y8
	VPAND  maskLo32<>(SB), Y15, Y12
	VPSRLQ $32, Y11, Y9
	VPSRLQ $32, Y15, Y13
	VPOR   magic52<>(SB), Y8, Y8
	VPOR   magic52<>(SB), Y12, Y12
	VPOR   magic84<>(SB), Y9, Y9
	VPOR   magic84<>(SB), Y13, Y13
	VSUBPD c84p52<>(SB), Y9, Y9
	VSUBPD c84p52<>(SB), Y13, Y13
	VADDPD Y8, Y9, Y8
	VADDPD Y12, Y13, Y12
	VMULPD c2m52<>(SB), Y8, Y8
	VMULPD c2m52<>(SB), Y12, Y12
	VSUBPD one<>(SB), Y8, Y8
	VSUBPD one<>(SB), Y12, Y12
	VMOVUPD Y8, (DI)
	VMOVUPD Y12, 32(DI)

	ADDQ R9, DI
	DECQ CX
	JNZ  loop

done:
	VMOVDQU Y0, (SI)
	VMOVDQU Y1, 32(SI)
	VMOVDQU Y2, 64(SI)
	VMOVDQU Y3, 96(SI)
	VMOVDQU Y4, 128(SI)
	VMOVDQU Y5, 160(SI)
	VMOVDQU Y6, 192(SI)
	VMOVDQU Y7, 224(SI)
	VZEROUPPER
	RET
