package rng

import "github.com/ising-machines/saim/internal/cpufeat"

// fillSym4AVX2 steps four xoshiro256** states (structure-of-arrays: word
// l of quad w holds source l's state word w) n times, writing each round's
// four [-1, 1) draws contiguously at dst, dst+strideBytes, …. Implemented
// in rng_amd64.s; the conversion arithmetic is bit-identical to Sym.
//
//go:noescape
func fillSym4AVX2(state *[16]uint64, dst *float64, n, strideBytes int)

// fillSym4 dispatches FillSym4Strided to the AVX2 kernel when available.
// The state gather/scatter around the call is O(1) per batch.
//
//saim:hotpath
func fillSym4(srcs *[4]*Source, dst []float64, n, stride int) {
	if !cpufeat.HasAVX2 {
		fillSym4Generic(srcs, dst, n, stride)
		return
	}
	var st [16]uint64
	for l, s := range srcs {
		st[l], st[4+l], st[8+l], st[12+l] = s.s0, s.s1, s.s2, s.s3
	}
	fillSym4AVX2(&st, &dst[0], n, stride*8)
	for l, s := range srcs {
		s.s0, s.s1, s.s2, s.s3 = st[l], st[4+l], st[8+l], st[12+l]
	}
}

// fillSym8AVX2 steps eight xoshiro256** states as two 4-wide SoA blocks
// (words 0-15 quad A as in fillSym4AVX2, words 16-31 quad B), writing each
// round's eight draws contiguously at dst, then advancing by strideBytes.
//
//go:noescape
func fillSym8AVX2(state *[32]uint64, dst *float64, n, strideBytes int)

//saim:hotpath
func fillSym8(srcs *[8]*Source, dst []float64, n, stride int) {
	if !cpufeat.HasAVX2 {
		fillSym8Generic(srcs, dst, n, stride)
		return
	}
	var st [32]uint64
	for l := 0; l < 4; l++ {
		a, b := srcs[l], srcs[4+l]
		st[l], st[4+l], st[8+l], st[12+l] = a.s0, a.s1, a.s2, a.s3
		st[16+l], st[20+l], st[24+l], st[28+l] = b.s0, b.s1, b.s2, b.s3
	}
	fillSym8AVX2(&st, &dst[0], n, stride*8)
	for l := 0; l < 4; l++ {
		a, b := srcs[l], srcs[4+l]
		a.s0, a.s1, a.s2, a.s3 = st[l], st[4+l], st[8+l], st[12+l]
		b.s0, b.s1, b.s2, b.s3 = st[16+l], st[20+l], st[24+l], st[28+l]
	}
}
