package rng

import (
	"testing"

	"github.com/ising-machines/saim/internal/cpufeat"
)

// FillSym must be bit-identical to per-call Sym at every batch length the
// kernels can request — in particular around the 64-element word width the
// packed sweep draws, where an off-by-one in a batched filler would
// silently shift every later draw. Length 0 pins the no-op contract.
func TestFillSymEdgeLengths(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65} {
		ref := New(99)
		want := make([]float64, n)
		for i := range want {
			want[i] = ref.Sym()
		}
		src := New(99)
		got := make([]float64, n)
		src.FillSym(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: FillSym[%d] = %v, Sym stream has %v", n, i, got[i], want[i])
			}
		}
		// The generator must land in the same state: the next draws agree.
		if a, b := src.Sym(), ref.Sym(); a != b {
			t.Fatalf("n=%d: post-batch state diverged: %v vs %v", n, a, b)
		}
	}
}

func TestFillSymStridedMatchesSym(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65} {
		for _, stride := range []int{1, 3, 64} {
			ref := New(7)
			src := New(7)
			size := 1
			if n > 0 {
				size = (n-1)*stride + 1
			}
			dst := make([]float64, size)
			for i := range dst {
				dst[i] = 42 // sentinel: strided fill must not touch gaps
			}
			src.FillSymStrided(dst, n, stride)
			for k := 0; k < n; k++ {
				if want := ref.Sym(); dst[k*stride] != want {
					t.Fatalf("n=%d stride=%d: draw %d = %v, want %v", n, stride, k, dst[k*stride], want)
				}
			}
			for i, v := range dst {
				if n > 0 && i%stride == 0 && i/stride < n {
					continue
				}
				if v != 42 {
					t.Fatalf("n=%d stride=%d: gap %d overwritten with %v", n, stride, i, v)
				}
			}
			if a, b := src.Sym(), ref.Sym(); a != b {
				t.Fatalf("n=%d stride=%d: post-batch state diverged", n, stride)
			}
		}
	}
}

// fillSym4Variants runs FillSym4Strided under every available kernel (the
// AVX2 path where the host supports it, and the portable path with the
// feature flag cleared) and hands each result to check.
func fillSym4Variants(t *testing.T, run func() [4][]float64, check func(name string, got [4][]float64)) {
	t.Helper()
	check("native", run())
	if cpufeat.HasAVX2 {
		cpufeat.HasAVX2 = false
		defer func() { cpufeat.HasAVX2 = true }()
		check("portable", run())
	}
}

// FillSym4Strided interleaves four independent generators without
// disturbing any single lane's stream: every lane must reproduce its own
// Sym sequence bit-for-bit, on both the vector and the portable kernel.
func TestFillSym4StridedLaneIdentity(t *testing.T) {
	const stride = 64
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		run := func() [4][]float64 {
			srcs := &[4]*Source{New(1), New(2), New(3), New(4)}
			size := 4
			if n > 0 {
				size = (n-1)*stride + 4
			}
			dst := make([]float64, size)
			FillSym4Strided(srcs, dst, n, stride)
			var lanes [4][]float64
			for l := 0; l < 4; l++ {
				lane := make([]float64, n+1)
				for k := 0; k < n; k++ {
					lane[k] = dst[k*stride+l]
				}
				lane[n] = srcs[l].Sym() // post-batch state probe
				lanes[l] = lane
			}
			return lanes
		}
		fillSym4Variants(t, run, func(name string, lanes [4][]float64) {
			for l := 0; l < 4; l++ {
				ref := New(uint64(l + 1))
				for k := 0; k <= n; k++ {
					if want := ref.Sym(); lanes[l][k] != want {
						t.Fatalf("%s n=%d lane %d draw %d: got %v, want %v", name, n, l, k, lanes[l][k], want)
					}
				}
			}
		})
	}
}

// FillSym8Strided interleaves eight independent generators as two 4-wide
// chains: every lane must reproduce its own Sym sequence bit-for-bit, on
// both the vector and the portable kernel.
func TestFillSym8StridedLaneIdentity(t *testing.T) {
	const stride = 64
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		run := func() [8][]float64 {
			var srcs [8]*Source
			for l := range srcs {
				srcs[l] = New(uint64(l + 1))
			}
			size := 8
			if n > 0 {
				size = (n-1)*stride + 8
			}
			dst := make([]float64, size)
			FillSym8Strided(&srcs, dst, n, stride)
			var lanes [8][]float64
			for l := 0; l < 8; l++ {
				lane := make([]float64, n+1)
				for k := 0; k < n; k++ {
					lane[k] = dst[k*stride+l]
				}
				lane[n] = srcs[l].Sym() // post-batch state probe
				lanes[l] = lane
			}
			return lanes
		}
		check := func(name string, lanes [8][]float64) {
			for l := 0; l < 8; l++ {
				ref := New(uint64(l + 1))
				for k := 0; k <= n; k++ {
					if want := ref.Sym(); lanes[l][k] != want {
						t.Fatalf("%s n=%d lane %d draw %d: got %v, want %v", name, n, l, k, lanes[l][k], want)
					}
				}
			}
		}
		check("native", run())
		if cpufeat.HasAVX2 {
			cpufeat.HasAVX2 = false
			check("portable", run())
			cpufeat.HasAVX2 = true
		}
	}
}
