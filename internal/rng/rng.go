// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// All stochastic components of the library (the p-bit machine, instance
// generators, baseline heuristics) draw from rng.Source so that every
// experiment is reproducible from a single integer seed. The generator is
// xoshiro256**, seeded through splitmix64, following the reference
// implementations by Blackman and Vigna. It is not cryptographically secure
// and must not be used where security matters.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct sources with New.
type Source struct {
	s0, s1, s2, s3 uint64
	// cached spare normal variate for NormFloat64.
	spare    float64
	hasSpare bool
}

// splitmix64 advances the given state and returns the next value. It is used
// only to expand a 64-bit seed into the 256-bit xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// yield statistically independent streams for all practical purposes.
func New(seed uint64) *Source {
	var sm = seed
	s := &Source{}
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
	// A pathological all-zero state would lock the generator at zero;
	// splitmix64 cannot produce four zero outputs from any seed, but keep
	// the guard for defense in depth.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return s
}

// Split derives a new, independent Source from the current stream. It is the
// preferred way to hand child components their own generators.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
//
//saim:hotpath
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
//
//saim:hotpath
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Sym returns a uniform float64 in [-1, 1) — Float64 can return exactly
// 0, so -1 is (rarely) attainable — matching the rand(-1,1) noise term of
// the p-bit update rule (paper eq. 10).
//
//saim:hotpath
func (s *Source) Sym() float64 {
	return 2*s.Float64() - 1
}

// FillSym fills dst with uniform draws in [-1, 1), bit-identical to calling
// Sym once per element. Keeping the generator state in locals for the whole
// batch lets the compiler hold it in registers, which is substantially
// faster than len(dst) pointer-chasing Sym calls; the p-bit sweep kernels
// pre-draw their per-spin noise through this path.
//
//saim:hotpath
func (s *Source) FillSym(dst []float64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		result := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		// Same arithmetic as Sym∘Float64 so the stream is reproduced exactly.
		dst[i] = 2*(float64(result>>11)/(1<<53)) - 1
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// FillSymStrided writes n uniform draws in [-1, 1) at dst[0], dst[stride],
// …, dst[(n-1)·stride], bit-identical to calling Sym n times. The packed
// multi-replica kernels store per-spin noise lane-blocked (spin-major,
// replica-minor), so one replica's per-sweep noise lives at a fixed stride;
// this fills it without a gather buffer while preserving the exact stream a
// scalar machine with the same source would consume.
//
//saim:hotpath
func (s *Source) FillSymStrided(dst []float64, n, stride int) {
	if n <= 0 {
		return
	}
	_ = dst[(n-1)*stride] // one bounds check for the whole batch
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	idx := 0
	for k := 0; k < n; k++ {
		result := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		// Same arithmetic as Sym∘Float64 so the stream is reproduced exactly.
		dst[idx] = 2*(float64(result>>11)/(1<<53)) - 1
		idx += stride
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// FillSym4Strided advances four independent sources in lockstep, writing
// draw k of source l to dst[k·stride+l]: the four lanes are adjacent, and
// consecutive draws of one lane sit one stride apart. Each source's stream
// is bit-identical to calling its Sym n times — the batch only interleaves
// *independent* generators, it never reorders draws within one — so the
// packed sweep kernels stay trajectory-identical to scalar machines seeded
// with the same per-replica sources. On amd64 with AVX2 the four xoshiro
// states step in one vector register file; elsewhere (or with
// cpufeat.HasAVX2 cleared) it falls back to four strided scalar fills.
//
//saim:hotpath
func FillSym4Strided(srcs *[4]*Source, dst []float64, n, stride int) {
	if n <= 0 {
		return
	}
	_ = dst[(n-1)*stride+3]
	fillSym4(srcs, dst, n, stride)
}

// fillSym4Generic is the portable FillSym4Strided body: four scalar
// strided fills, one per lane.
//
//saim:hotpath
func fillSym4Generic(srcs *[4]*Source, dst []float64, n, stride int) {
	for l := 0; l < 4; l++ {
		srcs[l].FillSymStrided(dst[l:], n, stride)
	}
}

// FillSym8Strided is FillSym4Strided over eight sources: draw k of source
// l lands at dst[k·stride+l]. On amd64 with AVX2 the eight xoshiro states
// step as two interleaved 4-wide chains in one kernel — two independent
// dependency chains hide the state-transition latency that bounds the
// 4-wide kernel, and the eight adjacent lanes make each round's stores a
// full cache line. Per-lane streams remain bit-identical to Sym.
//
//saim:hotpath
func FillSym8Strided(srcs *[8]*Source, dst []float64, n, stride int) {
	if n <= 0 {
		return
	}
	_ = dst[(n-1)*stride+7]
	fillSym8(srcs, dst, n, stride)
}

// fillSym8Generic is the portable FillSym8Strided body.
//
//saim:hotpath
func fillSym8Generic(srcs *[8]*Source, dst []float64, n, stride int) {
	for l := 0; l < 8; l++ {
		srcs[l].FillSymStrided(dst[l:], n, stride)
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	tLo := t & mask32
	tHi := t >> 32
	t = aLo*bHi + tLo
	lo |= t << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := s.Sym()
		v := s.Sym()
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
