// Package anneal runs multi-run simulated annealing on the p-bit machine.
// It is the engine behind the classical penalty-method baseline of the
// paper's Table II (both the "same-budget" and the "10 long runs with
// tuned P" variants) and the "best SA" comparison of Tables III/IV, all of
// which are SA on a penalty QUBO.
package anneal

import (
	"context"
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/penalty"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
)

// Options configures a multi-run SA solve.
type Options struct {
	// Runs is the number of independent annealing runs.
	Runs int
	// SweepsPerRun is the MCS budget of each run.
	SweepsPerRun int
	// BetaMax is the final inverse temperature of the linear schedule.
	BetaMax float64
	// Seed drives all randomness.
	Seed uint64
	// Machine selects the p-bit kernel (auto/dense/CSR); the zero value
	// auto-selects from the energy's coupling density.
	Machine core.MachineKind
	// Progress, when non-nil, is invoked once per annealing run with a
	// snapshot of the solve (LambdaNorm is always zero: no multipliers).
	Progress func(core.ProgressInfo)
	// TargetCost, when non-nil, stops the solve early as soon as a
	// feasible sample reaches a cost ≤ *TargetCost.
	TargetCost *float64
	// Patience, when positive, stops the solve after this many consecutive
	// runs without an improvement of the best cost.
	Patience int
	// Initial, when non-empty, warm-starts the solve: the first annealing
	// run continues from this assignment instead of a random state, and a
	// feasible initial also seeds the best-so-far. For SolvePenalty the
	// length is the decision-bit count (slack bits are completed greedily);
	// for MinimizeQUBO it is the full variable count.
	Initial ising.Bits
	// Checkpoint, when non-nil, is invoked whenever a new best assignment
	// is found, with the best bits and their cost (for SolvePenalty the
	// decision bits and true cost; for MinimizeQUBO the full assignment
	// and QUBO energy). The bits slice may be a live buffer — copy it
	// before retaining.
	Checkpoint func(best ising.Bits, cost float64)
}

// annealInto runs one annealing run writing the final state into dst,
// taking the machine's zero-copy path when it offers one.
func annealInto(m core.Machine, dst ising.Spins, sched schedule.Schedule, sweeps int) {
	if ba, ok := m.(core.BufferedAnnealer); ok {
		ba.AnnealInto(dst, sched, sweeps)
		return
	}
	copy(dst, m.Anneal(sched, sweeps))
}

// seedExtended writes the extended image of a decision-bit warm start into
// the caller's scratch: decision bits copied, slack bits completed
// greedily, and the spin conversion into spins.
func seedExtended(p *core.Problem, initial ising.Bits, x ising.Bits, spins ising.Spins) {
	copy(x[:p.Ext.NOrig], initial)
	for j := p.Ext.NOrig; j < p.Ext.NTotal; j++ {
		x[j] = 0
	}
	p.Ext.CompleteSlacks(x)
	x.SpinsInto(spins)
}

// annealFromInto seeds the machine with the given configuration and
// continues one annealing run from it, writing the final state into dst.
// It reports false when the machine cannot adopt a state, leaving the
// caller on the cold-start path.
func annealFromInto(m core.Machine, init ising.Spins, dst ising.Spins, sched schedule.Schedule, sweeps int) bool {
	wm, ok := m.(core.WarmStartable)
	if !ok {
		return false
	}
	wm.SetState(init)
	wm.AnnealFromInto(dst, sched, sweeps)
	return true
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Runs == 0 {
		out.Runs = 10
	}
	if out.SweepsPerRun == 0 {
		out.SweepsPerRun = 1000
	}
	if out.BetaMax == 0 {
		out.BetaMax = 10
	}
	return out
}

// Result summarizes a multi-run SA solve of a constrained problem.
type Result struct {
	// Best is the decision-bit assignment of the best feasible sample,
	// nil when no run ended feasible.
	Best ising.Bits
	// BestCost is the problem cost of Best (+Inf when Best is nil).
	BestCost float64
	// FeasibleCount is the number of runs whose final sample was feasible.
	FeasibleCount int
	// Runs is the number of runs executed.
	Runs int
	// TotalSweeps is the cumulative MCS budget spent.
	TotalSweeps int64
	// P is the penalty weight used.
	P float64
	// FeasibleCosts holds the problem cost of every feasible final sample,
	// in run order; the experiment harness averages these for the paper's
	// "Avg (feas)" columns.
	FeasibleCosts []float64
	// Stopped records why the solve returned.
	Stopped core.StopReason
}

// FeasibleRatio returns the percentage of feasible runs.
func (r *Result) FeasibleRatio() float64 {
	if r.Runs == 0 {
		return 0
	}
	return 100 * float64(r.FeasibleCount) / float64(r.Runs)
}

// SolvePenalty runs the classical penalty method: it builds the fixed
// energy E = f + P‖g‖² once and performs opt.Runs independent annealing
// runs, reading the final sample of each (exactly the paper's baseline
// protocol). No λ adaptation takes place.
func SolvePenalty(p *core.Problem, pWeight float64, opt Options) (*Result, error) {
	return SolvePenaltyContext(context.Background(), p, pWeight, opt)
}

// SolvePenaltyContext is SolvePenalty under a context, checked once per
// annealing run. On cancellation the best-so-far result is returned with a
// nil error and Stopped == core.StopCancelled.
func SolvePenaltyContext(ctx context.Context, p *core.Problem, pWeight float64, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	energy := penalty.Build(p.Objective, p.Ext, pWeight)
	model := energy.ToIsing()
	src := rng.New(o.Seed)
	machine := o.Machine.Factory()(model, src.Split())
	sched := schedule.Linear{Start: 0, End: o.BetaMax}

	// Reusable per-run scratch: the run loop allocates only on improvement.
	spins := ising.NewSpins(p.Ext.NTotal)
	x := make(ising.Bits, p.Ext.NTotal)

	res := &Result{BestCost: math.Inf(1), P: pWeight}
	sinceImprove := 0
	warm := len(o.Initial) > 0
	runs := o.Runs
	if warm {
		if len(o.Initial) != p.Ext.NOrig {
			return nil, fmt.Errorf("anneal: initial assignment length %d, want %d", len(o.Initial), p.Ext.NOrig)
		}
		// A feasible warm start seeds the best-so-far: the solve never
		// returns a worse result than the assignment supplied.
		if p.Ext.Orig.Feasible(o.Initial, 1e-9) {
			res.BestCost = p.Cost(o.Initial)
			res.Best = o.Initial.Clone()
			if o.TargetCost != nil && res.BestCost <= *o.TargetCost {
				res.Stopped = core.StopTarget
				runs = 0
			}
		}
	}
	for k := 0; k < runs; k++ {
		if ctx.Err() != nil {
			res.Stopped = core.StopCancelled
			break
		}
		res.Runs = k + 1
		if k == 0 && warm {
			seedExtended(p, o.Initial, x, spins)
			if !annealFromInto(machine, spins, spins, sched, o.SweepsPerRun) {
				annealInto(machine, spins, sched, o.SweepsPerRun)
			}
		} else {
			annealInto(machine, spins, sched, o.SweepsPerRun)
		}
		spins.BitsInto(x)
		sinceImprove++
		if p.Ext.OrigFeasible(x, 1e-9) {
			res.FeasibleCount++
			cost := p.Cost(x[:p.Ext.NOrig])
			res.FeasibleCosts = append(res.FeasibleCosts, cost)
			if cost < res.BestCost {
				res.BestCost = cost
				if res.Best == nil {
					res.Best = make(ising.Bits, p.Ext.NOrig)
				}
				copy(res.Best, x[:p.Ext.NOrig])
				sinceImprove = 0
				if o.Checkpoint != nil {
					o.Checkpoint(res.Best, cost)
				}
			}
		}
		if o.Progress != nil {
			o.Progress(core.ProgressInfo{
				Iteration: k, Total: o.Runs, BestCost: res.BestCost,
				FeasibleCount: res.FeasibleCount, Samples: k + 1,
				Sweeps: machine.Sweeps(),
			})
		}
		if o.TargetCost != nil && res.Best != nil && res.BestCost <= *o.TargetCost {
			res.Stopped = core.StopTarget
			break
		}
		if o.Patience > 0 && sinceImprove >= o.Patience {
			res.Stopped = core.StopPatience
			break
		}
	}
	res.TotalSweeps = machine.Sweeps()
	return res, nil
}

// TunePenalty reproduces the paper's coarse tuning loop around SolvePenalty:
// starting from the heuristic P₀, multiply by growth until the feasible
// ratio reaches target. Each probe spends the full opt budget, mirroring
// how the tuning phase "worsens the global execution time" (Section I).
// It returns the tuning outcome plus the total sweeps spent across probes.
func TunePenalty(p *core.Problem, p0, growth, target float64, maxProbes int, opt Options) (penalty.TuneResult, int64, error) {
	return TunePenaltyContext(context.Background(), p, p0, growth, target, maxProbes, opt)
}

// TunePenaltyContext is TunePenalty under a context: each probe solve
// checks it once per annealing run, so cancellation abandons the tuning
// loop within one run.
func TunePenaltyContext(ctx context.Context, p *core.Problem, p0, growth, target float64, maxProbes int, opt Options) (penalty.TuneResult, int64, error) {
	if err := p.Validate(); err != nil {
		return penalty.TuneResult{}, 0, err
	}
	var sweeps int64
	probe := 0
	eval := func(pw float64) (float64, float64) {
		o := opt
		// Decorrelate probes without letting two probes share a stream.
		o.Seed = opt.Seed + uint64(probe)*0x9e3779b9
		probe++
		if ctx.Err() != nil {
			return 0, math.Inf(1)
		}
		res, err := SolvePenaltyContext(ctx, p, pw, o)
		if err != nil {
			return 0, math.Inf(1)
		}
		sweeps += res.TotalSweeps
		return res.FeasibleRatio() / 100, res.BestCost
	}
	tuned := penalty.Tune(eval, p0, growth, target, maxProbes)
	return tuned, sweeps, nil
}

// MinimizeQUBO runs multi-run SA directly on an unconstrained QUBO and
// returns the best configuration and energy found. It serves unconstrained
// problems such as max-cut (the workload the paper's introduction uses to
// motivate Ising machines).
func MinimizeQUBO(q *ising.QUBO, opt Options) (ising.Bits, float64) {
	res := MinimizeQUBOContext(context.Background(), q, opt)
	return res.Best, res.BestEnergy
}

// QUBOResult summarizes a multi-run SA minimization of an unconstrained
// QUBO.
type QUBOResult struct {
	// Best is the lowest-energy configuration seen (nil only when no run
	// completed, e.g. immediate cancellation).
	Best ising.Bits
	// BestEnergy is the energy of Best (+Inf when Best is nil).
	BestEnergy float64
	// Runs is the number of annealing runs executed.
	Runs int
	// TotalSweeps is the cumulative MCS budget spent.
	TotalSweeps int64
	// Stopped records why the solve returned.
	Stopped core.StopReason
}

// MinimizeQUBOContext is MinimizeQUBO under a context, checked once per
// annealing run, with optional progress streaming and early stopping via
// Options. On cancellation the best-so-far result is returned with
// Stopped == core.StopCancelled.
func MinimizeQUBOContext(ctx context.Context, q *ising.QUBO, opt Options) *QUBOResult {
	o := opt.withDefaults()
	model := q.ToIsing()
	src := rng.New(o.Seed)
	machine := o.Machine.Factory()(model, src.Split())
	sched := schedule.Linear{Start: 0, End: o.BetaMax}
	s := ising.NewSpins(model.N()) // reusable run scratch
	res := &QUBOResult{BestEnergy: math.Inf(1)}
	sinceImprove := 0
	// Warm start: seed the best-so-far from the initial assignment and
	// continue the first run from it (length mismatches are ignored
	// defensively — the public layer validates before calling).
	warm := len(o.Initial) == model.N()
	runs := o.Runs
	if warm {
		res.BestEnergy = q.Energy(o.Initial)
		res.Best = o.Initial.Clone()
		if o.TargetCost != nil && res.BestEnergy <= *o.TargetCost {
			res.Stopped = core.StopTarget
			runs = 0
		}
	}
	for k := 0; k < runs; k++ {
		if ctx.Err() != nil {
			res.Stopped = core.StopCancelled
			break
		}
		res.Runs = k + 1
		if k == 0 && warm {
			o.Initial.SpinsInto(s)
			if !annealFromInto(machine, s, s, sched, o.SweepsPerRun) {
				annealInto(machine, s, sched, o.SweepsPerRun)
			}
		} else {
			annealInto(machine, s, sched, o.SweepsPerRun)
		}
		sinceImprove++
		if e := model.Energy(s); e < res.BestEnergy {
			res.BestEnergy = e
			res.Best = s.Bits()
			sinceImprove = 0
			if o.Checkpoint != nil {
				o.Checkpoint(res.Best, e)
			}
		}
		if o.Progress != nil {
			o.Progress(core.ProgressInfo{
				Iteration: k, Total: o.Runs, BestCost: res.BestEnergy,
				FeasibleCount: k + 1, Samples: k + 1,
				Sweeps: machine.Sweeps(),
			})
		}
		if o.TargetCost != nil && res.Best != nil && res.BestEnergy <= *o.TargetCost {
			res.Stopped = core.StopTarget
			break
		}
		if o.Patience > 0 && sinceImprove >= o.Patience {
			res.Stopped = core.StopPatience
			break
		}
	}
	res.TotalSweeps = machine.Sweeps()
	return res
}
