package anneal

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/qkp"
)

func smallProblem(t *testing.T) (*core.Problem, *qkp.Instance, float64) {
	t.Helper()
	inst := qkp.Generate(14, 0.5, 1, 77)
	ref, err := exact.BruteForceQKP(inst)
	if err != nil {
		t.Fatal(err)
	}
	return inst.ToProblem(constraint.Binary), inst, ref.Cost
}

func TestSolvePenaltyFindsGoodFeasibleSolutions(t *testing.T) {
	p, inst, opt := smallProblem(t)
	// Penalty weights act on the normalized energy; the paper's tuned
	// values are 40–500·d·N, i.e. O(100) for a problem of this size.
	res, err := SolvePenalty(p, 100, Options{Runs: 60, SweepsPerRun: 300, BetaMax: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible sample")
	}
	if !inst.Feasible(res.Best) {
		t.Fatal("reported best infeasible")
	}
	acc := qkp.Accuracy(res.BestCost, opt)
	if acc < 90 {
		t.Fatalf("accuracy %v%% below 90%%", acc)
	}
	if res.TotalSweeps != 60*300 {
		t.Fatalf("TotalSweeps = %d", res.TotalSweeps)
	}
}

func TestSolvePenaltyTinyPMostlyInfeasible(t *testing.T) {
	p, _, _ := smallProblem(t)
	tiny, err := SolvePenalty(p, 0.5, Options{Runs: 40, SweepsPerRun: 200, BetaMax: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := SolvePenalty(p, 100, Options{Runs: 40, SweepsPerRun: 200, BetaMax: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: larger P raises feasibility.
	if tiny.FeasibleRatio() >= large.FeasibleRatio() {
		t.Fatalf("feasibility did not increase with P: %v%% vs %v%%",
			tiny.FeasibleRatio(), large.FeasibleRatio())
	}
}

func TestSolvePenaltyDeterministic(t *testing.T) {
	p, _, _ := smallProblem(t)
	a, err := SolvePenalty(p, 5, Options{Runs: 10, SweepsPerRun: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolvePenalty(p, 5, Options{Runs: 10, SweepsPerRun: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.FeasibleCount != b.FeasibleCount {
		t.Fatal("same seed, different outcomes")
	}
}

func TestSolvePenaltyRejectsInvalidProblem(t *testing.T) {
	if _, err := SolvePenalty(&core.Problem{}, 1, Options{}); err == nil {
		t.Fatal("accepted invalid problem")
	}
}

func TestFeasibleRatio(t *testing.T) {
	r := &Result{FeasibleCount: 3, Runs: 12}
	if r.FeasibleRatio() != 25 {
		t.Fatalf("ratio = %v", r.FeasibleRatio())
	}
	if (&Result{}).FeasibleRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

func TestTunePenaltyRaisesPUntilFeasible(t *testing.T) {
	p, _, _ := smallProblem(t)
	tuned, sweeps, err := TunePenalty(p, 10, 2, 0.2, 10,
		Options{Runs: 20, SweepsPerRun: 150, BetaMax: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Probes < 1 {
		t.Fatal("no probes executed")
	}
	if tuned.P < 0.02 {
		t.Fatalf("tuned P %v below start", tuned.P)
	}
	if sweeps != int64(tuned.Probes)*20*150 {
		t.Fatalf("sweep accounting: %d for %d probes", sweeps, tuned.Probes)
	}
	if math.IsInf(tuned.BestCost, 1) {
		t.Fatal("tuning never saw a feasible sample")
	}
}

func TestMinimizeQUBOGroundState(t *testing.T) {
	// Tiny max-cut-like QUBO: E = 2x0x1 - x0 - x1 has minima at (1,0),(0,1).
	q := ising.NewQUBO(2)
	q.AddQuad(0, 1, 2)
	q.AddLinear(0, -1)
	q.AddLinear(1, -1)
	x, e := MinimizeQUBO(q, Options{Runs: 20, SweepsPerRun: 100, BetaMax: 10, Seed: 3})
	if e != -1 {
		t.Fatalf("energy = %v, want -1", e)
	}
	if x[0]+x[1] != 1 {
		t.Fatalf("x = %v", x)
	}
}
