package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearEndpoints(t *testing.T) {
	l := Linear{Start: 0, End: 10}
	if got := l.Beta(0, 1000); got != 0 {
		t.Fatalf("Beta(0) = %v", got)
	}
	if got := l.Beta(999, 1000); got != 10 {
		t.Fatalf("Beta(T-1) = %v", got)
	}
	mid := l.Beta(500, 1001)
	if math.Abs(mid-5) > 1e-12 {
		t.Fatalf("midpoint = %v", mid)
	}
}

func TestLinearMonotone(t *testing.T) {
	l := Linear{Start: 0, End: 50}
	prev := -1.0
	for i := 0; i < 200; i++ {
		b := l.Beta(i, 200)
		if b < prev {
			t.Fatalf("linear schedule decreased at %d", i)
		}
		prev = b
	}
}

func TestLinearDegenerateTotal(t *testing.T) {
	l := Linear{Start: 2, End: 8}
	if got := l.Beta(0, 1); got != 8 {
		t.Fatalf("total=1 Beta = %v, want End", got)
	}
}

func TestGeometricEndpoints(t *testing.T) {
	g := Geometric{Start: 0.1, End: 10}
	if got := g.Beta(0, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Beta(0) = %v", got)
	}
	if got := g.Beta(99, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Beta(T-1) = %v", got)
	}
}

func TestGeometricMonotoneIncreasing(t *testing.T) {
	g := Geometric{Start: 0.5, End: 20}
	prev := 0.0
	for i := 0; i < 100; i++ {
		b := g.Beta(i, 100)
		if b <= prev {
			t.Fatalf("geometric schedule not strictly increasing at %d", i)
		}
		prev = b
	}
}

func TestConstant(t *testing.T) {
	c := Constant{Value: 3}
	for i := 0; i < 10; i++ {
		if c.Beta(i, 10) != 3 {
			t.Fatal("constant schedule varied")
		}
	}
}

func TestPiecewise(t *testing.T) {
	p := Piecewise{Plateau: 1, End: 5, Fraction: 0.5}
	if got := p.Beta(0, 100); got != 1 {
		t.Fatalf("plateau start = %v", got)
	}
	if got := p.Beta(49, 100); got != 1 {
		t.Fatalf("plateau end = %v", got)
	}
	if got := p.Beta(99, 100); math.Abs(got-5) > 1e-9 {
		t.Fatalf("final = %v", got)
	}
}

func TestPiecewiseFullFraction(t *testing.T) {
	p := Piecewise{Plateau: 2, End: 9, Fraction: 1}
	// With the plateau covering everything but nothing left, remaining
	// sweeps fall back to End only when rem <= 1; all indexed sweeps are
	// within the plateau.
	if got := p.Beta(50, 100); got != 2 {
		t.Fatalf("full-fraction Beta = %v", got)
	}
}

func TestBetaNonNegativeProperty(t *testing.T) {
	scheds := []Schedule{
		Linear{0, 10}, Geometric{0.01, 50}, Constant{4}, Piecewise{1, 8, 0.3},
	}
	f := func(tRaw, totalRaw uint16) bool {
		total := int(totalRaw%2000) + 2
		tt := int(tRaw) % total
		for _, s := range scheds {
			if s.Beta(tt, total) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Schedule{
		Linear{Start: -1, End: 5},
		Geometric{Start: 0, End: 5},
		Constant{Value: -2},
		Piecewise{Plateau: 1, End: 2, Fraction: 1.5},
	}
	for _, s := range bad {
		if err := Validate(s); err == nil {
			t.Fatalf("Validate accepted %v", s)
		}
	}
	good := []Schedule{
		Linear{0, 10}, Geometric{0.1, 10}, Constant{0}, Piecewise{0, 1, 0.5},
	}
	for _, s := range good {
		if err := Validate(s); err != nil {
			t.Fatalf("Validate rejected %v: %v", s, err)
		}
	}
}

func TestStringDescriptions(t *testing.T) {
	all := []Schedule{Linear{0, 10}, Geometric{1, 2}, Constant{1}, Piecewise{1, 2, 0.5}}
	for _, s := range all {
		if s.String() == "" {
			t.Fatalf("empty description for %T", s)
		}
	}
}
