// Package schedule provides inverse-temperature (β) schedules for annealed
// Monte-Carlo runs. A schedule maps sweep index t ∈ [0, T) to β(t) ≥ 0.
//
// The paper anneals its p-bit machine with a linear β sweep from 0 to βmax
// over each run of 1000 Monte-Carlo sweeps (Section III.B); Linear
// reproduces that. The other schedules exist for baselines and ablations.
package schedule

import (
	"fmt"
	"math"
)

// Schedule maps a sweep index to an inverse temperature.
type Schedule interface {
	// Beta returns β for sweep t of a run with total sweeps (t in [0, total)).
	Beta(t, total int) float64
	// String describes the schedule for logs and reports.
	String() string
}

// Linear sweeps β linearly from Start to End across the run. The paper's
// schedule is Linear{Start: 0, End: βmax}.
type Linear struct {
	Start, End float64
}

// Beta implements Schedule.
func (l Linear) Beta(t, total int) float64 {
	if total <= 1 {
		return l.End
	}
	f := float64(t) / float64(total-1)
	return l.Start + (l.End-l.Start)*f
}

func (l Linear) String() string { return fmt.Sprintf("linear(%g→%g)", l.Start, l.End) }

// Geometric multiplies β from Start to End geometrically: β(t) =
// Start·(End/Start)^(t/(T-1)). Start must be > 0.
type Geometric struct {
	Start, End float64
}

// Beta implements Schedule.
func (g Geometric) Beta(t, total int) float64 {
	if total <= 1 {
		return g.End
	}
	f := float64(t) / float64(total-1)
	return g.Start * math.Pow(g.End/g.Start, f)
}

func (g Geometric) String() string { return fmt.Sprintf("geometric(%g→%g)", g.Start, g.End) }

// Constant holds β fixed; used for sampling at equilibrium and for the
// individual replicas of parallel tempering.
type Constant struct {
	Value float64
}

// Beta implements Schedule.
func (c Constant) Beta(_, _ int) float64 { return c.Value }

func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.Value) }

// Piecewise holds β at Plateau for the first Fraction of the run, then
// sweeps linearly to End. It models a burn-in followed by a quench and is
// used in ablation experiments.
type Piecewise struct {
	Plateau  float64
	End      float64
	Fraction float64 // in [0,1]
}

// Beta implements Schedule.
func (p Piecewise) Beta(t, total int) float64 {
	if total <= 1 {
		return p.End
	}
	cut := int(p.Fraction * float64(total))
	if t < cut {
		return p.Plateau
	}
	rem := total - cut
	if rem <= 1 {
		return p.End
	}
	f := float64(t-cut) / float64(rem-1)
	return p.Plateau + (p.End-p.Plateau)*f
}

func (p Piecewise) String() string {
	return fmt.Sprintf("piecewise(%g for %.0f%%, →%g)", p.Plateau, p.Fraction*100, p.End)
}

// Validate reports an error for schedules with nonsensical parameters.
func Validate(s Schedule) error {
	switch v := s.(type) {
	case Linear:
		if v.Start < 0 || v.End < 0 {
			return fmt.Errorf("schedule: linear with negative β")
		}
	case Geometric:
		if v.Start <= 0 || v.End <= 0 {
			return fmt.Errorf("schedule: geometric requires positive β")
		}
	case Constant:
		if v.Value < 0 {
			return fmt.Errorf("schedule: constant with negative β")
		}
	case Piecewise:
		if v.Plateau < 0 || v.End < 0 || v.Fraction < 0 || v.Fraction > 1 {
			return fmt.Errorf("schedule: piecewise with invalid parameters")
		}
	}
	return nil
}
