package hoim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
)

func randomPoly(src *rng.Source, n, terms, maxDeg int) *Poly {
	p := NewPoly(n)
	for t := 0; t < terms; t++ {
		deg := src.IntRange(0, maxDeg)
		vars := make([]int, deg)
		for i := range vars {
			vars[i] = src.Intn(n)
		}
		p.Add(src.Sym()*3, vars...)
	}
	return p
}

func randomBits(src *rng.Source, n int) ising.Bits {
	x := make(ising.Bits, n)
	for i := range x {
		if src.Bool(0.5) {
			x[i] = 1
		}
	}
	return x
}

func TestAddMergesAndIdempotes(t *testing.T) {
	p := NewPoly(3)
	p.Add(2, 0, 1)
	p.Add(3, 1, 0) // same monomial, different order
	p.Add(4, 2, 2) // x₂² = x₂
	if p.NumTerms() != 2 {
		t.Fatalf("terms = %d", p.NumTerms())
	}
	x := ising.Bits{1, 1, 1}
	if got := p.Energy(x); got != 9 {
		t.Fatalf("Energy = %v, want 9", got)
	}
	if p.Degree() != 2 {
		t.Fatalf("Degree = %d", p.Degree())
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted out-of-range variable")
		}
	}()
	NewPoly(2).Add(1, 5)
}

func TestEnergyByHandCubic(t *testing.T) {
	// E = 5·x₀x₁x₂ − 2·x₀ + 1
	p := NewPoly(3)
	p.Add(5, 0, 1, 2)
	p.Add(-2, 0)
	p.Add(1)
	cases := []struct {
		x    ising.Bits
		want float64
	}{
		{ising.Bits{0, 0, 0}, 1},
		{ising.Bits{1, 0, 0}, -1},
		{ising.Bits{1, 1, 0}, -1},
		{ising.Bits{1, 1, 1}, 4},
	}
	for _, c := range cases {
		if got := p.Energy(c.x); got != c.want {
			t.Fatalf("E(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDeltaFlipMatchesRecompute(t *testing.T) {
	src := rng.New(3)
	f := func(raw uint8) bool {
		n := int(raw%8) + 2
		p := randomPoly(src, n, 3*n, 4)
		x := randomBits(src, n)
		for i := 0; i < n; i++ {
			before := p.Energy(x)
			delta := p.DeltaFlip(x, i)
			x[i] ^= 1
			after := p.Energy(x)
			x[i] ^= 1
			if math.Abs((after-before)-delta) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Square(p)(x) must equal p(x)² everywhere.
func TestSquareIsPointwiseSquare(t *testing.T) {
	src := rng.New(7)
	f := func(raw uint8) bool {
		n := int(raw%6) + 2
		p := randomPoly(src, n, 2*n, 3)
		sq := Square(p)
		for trial := 0; trial < 20; trial++ {
			x := randomBits(src, n)
			want := p.Energy(x) * p.Energy(x)
			if math.Abs(sq.Energy(x)-want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareDegreeBound(t *testing.T) {
	p := NewPoly(5)
	p.Add(1, 0, 1)
	p.Add(1, 2, 3, 4)
	sq := Square(p)
	if sq.Degree() > 5 {
		t.Fatalf("Square degree = %d, want ≤ 5", sq.Degree())
	}
}

func TestAddPolyScale(t *testing.T) {
	a := NewPoly(2)
	a.Add(2, 0)
	b := NewPoly(2)
	b.Add(3, 0)
	b.Add(1, 0, 1)
	a.AddPoly(2, b)
	x := ising.Bits{1, 1}
	if got := a.Energy(x); got != 2+6+2 {
		t.Fatalf("Energy = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewPoly(2)
	a.Add(1, 0)
	c := a.Clone()
	c.Add(5, 0)
	if a.Energy(ising.Bits{1, 0}) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestMachineZeroBetaUniform(t *testing.T) {
	src := rng.New(11)
	p := randomPoly(src, 6, 10, 3)
	m := New(p, src.Split())
	up := make([]int, 6)
	const sweeps = 20000
	for k := 0; k < sweeps; k++ {
		m.Sweep(0)
		for i, v := range m.State() {
			if v == 1 {
				up[i]++
			}
		}
	}
	for i, c := range up {
		if f := float64(c) / sweeps; math.Abs(f-0.5) > 0.02 {
			t.Fatalf("var %d frequency %v at β=0", i, f)
		}
	}
}

func TestMachineFindsGroundStateCubic(t *testing.T) {
	// E = −3·x₀x₁x₂ + x₀ + x₁ + x₂ has minimum 0 at the all-ones and the
	// all-zeros states both? E(1,1,1) = −3+3 = 0; E(0,0,0)=0; single ones
	// cost +1. Make all-ones strictly best with a −0.5 bonus.
	p := NewPoly(3)
	p.Add(-3, 0, 1, 2)
	p.Add(1, 0)
	p.Add(1, 1)
	p.Add(1, 2)
	p.Add(-0.5, 0, 1)
	m := New(p, rng.New(5))
	best := math.Inf(1)
	for k := 0; k < 20; k++ {
		x := m.Anneal(schedule.Linear{Start: 0, End: 8}, 200)
		if e := p.Energy(x); e < best {
			best = e
		}
	}
	// Exhaustive optimum.
	want := math.Inf(1)
	for mask := 0; mask < 8; mask++ {
		x := ising.Bits{int8(mask & 1), int8(mask >> 1 & 1), int8(mask >> 2 & 1)}
		if e := p.Energy(x); e < want {
			want = e
		}
	}
	if best != want {
		t.Fatalf("annealer best %v, exhaustive %v", best, want)
	}
}

// SAIM with a *quadratic* constraint — impossible for the standard linear-g
// pipeline, natural here: minimize −x₂−x₃ subject to x₀·x₁ = 1 (both
// gates on) and x₀+x₁+x₂+x₃ = 3 (exactly three active).
// Feasible ⇒ x₀=x₁=1 and exactly one of x₂,x₃ ⇒ OPT = −1.
func TestSolveConstrainedQuadraticConstraint(t *testing.T) {
	f := NewPoly(4)
	f.Add(-1, 2)
	f.Add(-1, 3)

	g1 := NewPoly(4) // x₀x₁ − 1 = 0
	g1.Add(1, 0, 1)
	g1.Add(-1)

	g2 := NewPoly(4) // Σx − 3 = 0
	for i := 0; i < 4; i++ {
		g2.Add(1, i)
	}
	g2.Add(-3)

	res, err := SolveConstrained(f, []*Poly{g1, g2}, 1e-9, Options{
		P: 2, Eta: 0.5, Iterations: 150, SweepsPerRun: 150, BetaMax: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible sample")
	}
	if res.BestCost != -1 {
		t.Fatalf("BestCost = %v, want -1", res.BestCost)
	}
	if res.Best[0] != 1 || res.Best[1] != 1 {
		t.Fatalf("gates not both on: %v", res.Best)
	}
	if res.Best[2]+res.Best[3] != 1 {
		t.Fatalf("want exactly one of x₂,x₃: %v", res.Best)
	}
}

func TestSolveConstrainedDimensionMismatch(t *testing.T) {
	f := NewPoly(3)
	g := NewPoly(2)
	if _, err := SolveConstrained(f, []*Poly{g}, 1e-9, Options{}); err == nil {
		t.Fatal("accepted mismatched constraint")
	}
}

func TestSolveConstrainedDeterministic(t *testing.T) {
	f := NewPoly(3)
	f.Add(-1, 0)
	g := NewPoly(3)
	g.Add(1, 0)
	g.Add(1, 1)
	g.Add(-1)
	run := func() *Result {
		r, err := SolveConstrained(f, []*Poly{g}, 1e-9, Options{
			P: 1, Eta: 0.5, Iterations: 40, SweepsPerRun: 60, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost || a.FeasibleCount != b.FeasibleCount {
		t.Fatal("same seed, different outcomes")
	}
}

func TestSweepsCounter(t *testing.T) {
	p := NewPoly(2)
	p.Add(1, 0)
	m := New(p, rng.New(1))
	m.Anneal(schedule.Linear{End: 5}, 13)
	if m.Sweeps() != 13 {
		t.Fatalf("Sweeps = %d", m.Sweeps())
	}
}
