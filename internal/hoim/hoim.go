// Package hoim implements a higher-order Ising machine: a p-bit-style
// Gibbs sampler over arbitrary pseudo-Boolean polynomials, together with a
// polynomial SAIM loop.
//
// The paper notes (Section II) that while standard Ising machines restrict
// f to quadratic and g to linear forms, "one could design a high-order IM
// supporting higher polynomial degrees for f and g" [Bybee et al., 19].
// This package is that extension: energies are sums of weighted monomials
// w·Π_{i∈S} x_i over binary variables, sampled with the same annealed
// Gibbs dynamics as package pbit but with ΔE oracles over the hypergraph
// of monomials. SolveConstrained runs Algorithm 1 with polynomial f and
// polynomial constraints g_k — the penalty ‖g‖² and the λᵀg terms are
// assembled symbolically, so quadratic (or higher) constraints work
// without auxiliary-variable quadratization.
package hoim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/schedule"
)

// Term is one weighted monomial w·Π_{i∈Vars} x_i. Vars are distinct and
// sorted; an empty Vars list is a constant.
type Term struct {
	Vars []int
	W    float64
}

// Poly is a pseudo-Boolean polynomial over n binary variables, stored as a
// monomial list with an index from each variable to the terms touching it.
type Poly struct {
	n     int
	terms []Term
	// index[i] lists positions in terms whose monomial contains var i.
	index [][]int
	// key → term position, for coefficient merging.
	byKey map[string]int
}

// NewPoly returns the zero polynomial over n variables.
func NewPoly(n int) *Poly {
	if n <= 0 {
		panic("hoim: NewPoly requires n > 0")
	}
	return &Poly{n: n, index: make([][]int, n), byKey: map[string]int{}}
}

// N returns the number of variables.
func (p *Poly) N() int { return p.n }

// NumTerms returns the number of distinct monomials (constants included).
func (p *Poly) NumTerms() int { return len(p.terms) }

// Degree returns the largest monomial size (0 for a constant/zero poly).
func (p *Poly) Degree() int {
	d := 0
	for _, t := range p.terms {
		if len(t.Vars) > d {
			d = len(t.Vars)
		}
	}
	return d
}

func termKey(vars []int) string {
	b := make([]byte, 0, len(vars)*3)
	for _, v := range vars {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

// Add accumulates w·Π x_i for the given variable set. Duplicate variables
// within one monomial are idempotent (x² = x) and collapsed; repeated Add
// calls with the same monomial merge coefficients.
func (p *Poly) Add(w float64, vars ...int) {
	if w == 0 {
		return
	}
	uniq := append([]int(nil), vars...)
	sort.Ints(uniq)
	out := uniq[:0]
	for k, v := range uniq {
		if v < 0 || v >= p.n {
			panic(fmt.Sprintf("hoim: variable %d out of range [0,%d)", v, p.n))
		}
		if k > 0 && v == uniq[k-1] {
			continue // x_i^2 = x_i
		}
		out = append(out, v)
	}
	key := termKey(out)
	if pos, ok := p.byKey[key]; ok {
		p.terms[pos].W += w
		return
	}
	pos := len(p.terms)
	p.terms = append(p.terms, Term{Vars: append([]int(nil), out...), W: w})
	p.byKey[key] = pos
	for _, v := range out {
		p.index[v] = append(p.index[v], pos)
	}
}

// AddPoly accumulates scale·q onto p. The polynomials must share n.
func (p *Poly) AddPoly(scale float64, q *Poly) {
	if q.n != p.n {
		panic("hoim: AddPoly dimension mismatch")
	}
	for _, t := range q.terms {
		p.Add(scale*t.W, t.Vars...)
	}
}

// Clone returns a deep copy.
func (p *Poly) Clone() *Poly {
	out := NewPoly(p.n)
	out.AddPoly(1, p)
	return out
}

// Energy evaluates the polynomial at x.
func (p *Poly) Energy(x ising.Bits) float64 {
	if len(x) != p.n {
		panic("hoim: Energy dimension mismatch")
	}
	e := 0.0
	for _, t := range p.terms {
		on := true
		for _, v := range t.Vars {
			if x[v] == 0 {
				on = false
				break
			}
		}
		if on {
			e += t.W
		}
	}
	return e
}

// DeltaFlip returns E(x with bit i toggled) − E(x): the sum over monomials
// containing i whose other variables are all set, signed by the flip
// direction.
func (p *Poly) DeltaFlip(x ising.Bits, i int) float64 {
	acc := 0.0
	for _, pos := range p.index[i] {
		t := p.terms[pos]
		on := true
		for _, v := range t.Vars {
			if v != i && x[v] == 0 {
				on = false
				break
			}
		}
		if on {
			acc += t.W
		}
	}
	if x[i] == 0 {
		return acc
	}
	return -acc
}

// Square returns the polynomial p², expanded monomial-by-monomial using
// x_i² = x_i (so the result's degree is at most twice p's degree, and the
// union of each pair's variable sets forms the product monomial).
func Square(p *Poly) *Poly {
	out := NewPoly(p.n)
	for a := 0; a < len(p.terms); a++ {
		ta := p.terms[a]
		for b := 0; b < len(p.terms); b++ {
			tb := p.terms[b]
			union := append(append([]int(nil), ta.Vars...), tb.Vars...)
			out.Add(ta.W*tb.W, union...)
		}
	}
	return out
}

// Machine is an annealed Gibbs sampler over a polynomial energy, in the
// binary domain: each update sets x_i = 1 with the heat-bath probability
// σ(−β·ΔE_i) where ΔE_i is the 0→1 energy change.
type Machine struct {
	poly   *Poly
	state  ising.Bits
	src    *rng.Source
	sweeps int64
}

// New returns a machine for the polynomial with the all-zero state.
func New(p *Poly, src *rng.Source) *Machine {
	return &Machine{poly: p, state: make(ising.Bits, p.n), src: src}
}

// State returns the live configuration.
func (m *Machine) State() ising.Bits { return m.state }

// Sweeps returns the cumulative Monte-Carlo sweeps executed.
func (m *Machine) Sweeps() int64 { return m.sweeps }

// Randomize draws a uniform configuration.
func (m *Machine) Randomize() {
	for i := range m.state {
		if m.src.Bool(0.5) {
			m.state[i] = 1
		} else {
			m.state[i] = 0
		}
	}
}

// Sweep performs one sequential heat-bath pass at inverse temperature beta.
func (m *Machine) Sweep(beta float64) {
	for i := 0; i < m.poly.n; i++ {
		// Energy difference of setting x_i to 1 versus 0.
		var dUp float64
		if m.state[i] == 0 {
			dUp = m.poly.DeltaFlip(m.state, i)
		} else {
			dUp = -m.poly.DeltaFlip(m.state, i)
		}
		pUp := 1 / (1 + math.Exp(beta*dUp))
		if m.src.Float64() < pUp {
			m.state[i] = 1
		} else {
			m.state[i] = 0
		}
	}
	m.sweeps++
}

// Anneal runs one annealing run from a fresh random state and returns a
// copy of the final configuration.
func (m *Machine) Anneal(sched schedule.Schedule, sweeps int) ising.Bits {
	m.Randomize()
	for t := 0; t < sweeps; t++ {
		m.Sweep(sched.Beta(t, sweeps))
	}
	return m.state.Clone()
}

// Options configures SolveConstrained. Semantics mirror core.Options.
type Options struct {
	// P is the fixed penalty weight (no α·d·N heuristic here: polynomial
	// densities are not meaningful in the same way; pass what you mean).
	P float64
	// Eta is the Lagrange step size.
	Eta float64
	// Iterations is the number of annealing runs / λ updates.
	Iterations int
	// SweepsPerRun is the MCS budget per run.
	SweepsPerRun int
	// BetaMax ends the linear β-schedule.
	BetaMax float64
	// Seed drives all stochasticity.
	Seed uint64
	// Progress, when non-nil, is invoked once per iteration with a
	// snapshot of the solve.
	Progress func(core.ProgressInfo)
	// TargetCost, when non-nil, stops the solve early as soon as a
	// feasible sample reaches a cost ≤ *TargetCost.
	TargetCost *float64
	// Patience, when positive, stops the solve after this many consecutive
	// iterations without an improvement of the best feasible cost.
	Patience int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.P == 0 {
		out.P = 1
	}
	if out.Eta == 0 {
		out.Eta = 1
	}
	if out.Iterations == 0 {
		out.Iterations = 200
	}
	if out.SweepsPerRun == 0 {
		out.SweepsPerRun = 200
	}
	if out.BetaMax == 0 {
		out.BetaMax = 10
	}
	return out
}

// Result reports a constrained polynomial solve.
type Result struct {
	// Best is the best feasible configuration (nil if none observed).
	Best ising.Bits
	// BestCost is f(Best) (+Inf if none).
	BestCost float64
	// FeasibleCount counts feasible samples.
	FeasibleCount int
	// Iterations is the number of runs executed.
	Iterations int
	// TotalSweeps is the cumulative MCS budget spent across runs.
	TotalSweeps int64
	// Lambda is the final multiplier vector.
	Lambda []float64
	// Stopped records why the solve returned.
	Stopped core.StopReason
}

// SolveConstrained runs the polynomial SAIM loop: minimize f subject to
// g_k(x) = 0 for every constraint polynomial, by annealing
// L = f + P·Σ g_k² + Σ λ_k g_k and updating λ_k ← λ_k + η·g_k(x̄) after
// each run. Feasibility means |g_k(x)| ≤ tol for all k.
func SolveConstrained(f *Poly, constraints []*Poly, tol float64, opts Options) (*Result, error) {
	return SolveConstrainedContext(context.Background(), f, constraints, tol, opts)
}

// SolveConstrainedContext is SolveConstrained under a context, checked once
// per annealing run. On cancellation the best-so-far result is returned
// with a nil error and Stopped == core.StopCancelled.
func SolveConstrainedContext(ctx context.Context, f *Poly, constraints []*Poly, tol float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	for k, g := range constraints {
		if g.N() != f.N() {
			return nil, fmt.Errorf("hoim: constraint %d over %d vars, objective over %d", k, g.N(), f.N())
		}
	}
	// Static part: f + P Σ g².
	static := f.Clone()
	for _, g := range constraints {
		static.AddPoly(o.P, Square(g))
	}

	src := rng.New(o.Seed)
	lambda := make([]float64, len(constraints))
	res := &Result{BestCost: math.Inf(1)}
	sched := schedule.Linear{Start: 0, End: o.BetaMax}
	var sweeps int64
	sinceImprove := 0

	for k := 0; k < o.Iterations; k++ {
		if ctx.Err() != nil {
			res.Stopped = core.StopCancelled
			break
		}
		res.Iterations = k + 1
		// L_k = static + Σ λ_k g_k, rebuilt symbolically per iteration.
		lag := static.Clone()
		for c, g := range constraints {
			if lambda[c] != 0 {
				lag.AddPoly(lambda[c], g)
			}
		}
		m := New(lag, src.Split())
		x := m.Anneal(sched, o.SweepsPerRun)
		sweeps += m.Sweeps()

		feasible := true
		for c, g := range constraints {
			gv := g.Energy(x)
			if math.Abs(gv) > tol {
				feasible = false
			}
			lambda[c] += o.Eta * gv
		}
		sinceImprove++
		if feasible {
			res.FeasibleCount++
			if cost := f.Energy(x); cost < res.BestCost {
				res.BestCost = cost
				res.Best = x.Clone()
				sinceImprove = 0
			}
		}
		if o.Progress != nil {
			norm := 0.0
			for _, l := range lambda {
				norm += l * l
			}
			o.Progress(core.ProgressInfo{
				Iteration: k, Total: o.Iterations, BestCost: res.BestCost,
				FeasibleCount: res.FeasibleCount, Samples: k + 1,
				LambdaNorm: math.Sqrt(norm), Sweeps: sweeps,
			})
		}
		if o.TargetCost != nil && res.Best != nil && res.BestCost <= *o.TargetCost {
			res.Stopped = core.StopTarget
			break
		}
		if o.Patience > 0 && sinceImprove >= o.Patience {
			res.Stopped = core.StopPatience
			break
		}
	}
	res.TotalSweeps = sweeps
	res.Lambda = lambda
	return res, nil
}

// Terms returns a copy of the polynomial's monomial list (constants appear
// as terms with empty Vars). Mutating the returned slice does not affect
// the polynomial.
func (p *Poly) Terms() []Term {
	out := make([]Term, len(p.terms))
	for i, t := range p.terms {
		out[i] = Term{Vars: append([]int(nil), t.Vars...), W: t.W}
	}
	return out
}
