package greedy

import (
	"testing"

	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
)

func TestQKPFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := qkp.Generate(40, 0.5, int(seed), seed)
		x := QKP(inst)
		if !inst.Feasible(x) {
			t.Fatalf("seed %d: greedy infeasible", seed)
		}
	}
}

func TestQKPReasonableQuality(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		inst := qkp.Generate(15, 0.5, int(seed), seed*3)
		ref, err := exact.BruteForceQKP(inst)
		if err != nil {
			t.Fatal(err)
		}
		x := QKP(inst)
		got := inst.Value(x)
		if float64(got) < 0.75*float64(ref.Value) {
			t.Fatalf("seed %d: greedy %d below 75%% of OPT %d", seed, got, ref.Value)
		}
	}
}

func TestQKPMaximal(t *testing.T) {
	inst := qkp.Generate(30, 0.5, 1, 9)
	x := QKP(inst)
	used := inst.Weight(x)
	for j := 0; j < inst.N; j++ {
		if x[j] == 0 && used+inst.A[j] <= inst.B {
			t.Fatalf("greedy left addable item %d", j)
		}
	}
}

func TestMKPFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := mkp.Generate(50, 5, 0.5, int(seed), seed)
		x := MKP(inst)
		if !inst.Feasible(x) {
			t.Fatalf("seed %d: greedy infeasible", seed)
		}
	}
}

func TestMKPReasonableQuality(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		inst := mkp.Generate(16, 3, 0.5, int(seed), seed*11)
		ref, err := exact.BruteForceMKP(inst)
		if err != nil {
			t.Fatal(err)
		}
		x := MKP(inst)
		got := inst.Value(x)
		if float64(got) < 0.8*float64(ref.Value) {
			t.Fatalf("seed %d: greedy %d below 80%% of OPT %d", seed, got, ref.Value)
		}
	}
}

func TestMKPEmptyWhenNothingFits(t *testing.T) {
	inst := &mkp.Instance{
		Name: "t", N: 2, M: 1,
		H: []int{10, 10},
		A: [][]int{{5, 5}},
		B: []int{3},
	}
	x := MKP(inst)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("greedy selected unfittable items: %v", x)
	}
}
