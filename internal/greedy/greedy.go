// Package greedy provides constructive heuristics for the benchmark
// problems. They serve three roles: sanity-check baselines in the
// experiment harness, warm starts for the exact solvers, and reference
// points in tests (any stochastic solver should beat or match greedy).
package greedy

import (
	"context"
	"sort"

	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/mkp"
	"github.com/ising-machines/saim/internal/qkp"
)

// QKP builds a solution by repeatedly inserting the item with the best
// marginal value density (marginal value = own value + pair values with the
// already-selected set, divided by weight) until nothing fits. This greedy
// re-evaluates densities after each insertion, so pair values influence the
// choice as the knapsack fills.
func QKP(inst *qkp.Instance) ising.Bits {
	x, _ := QKPContext(context.Background(), inst)
	return x
}

// QKPContext is QKP under a context, checked once per insertion (the
// construction is O(N²) per insertion on dense instances, so a deadline
// interrupts within one scan). The partial selection built so far is
// feasible by construction and is returned with truncated == true.
func QKPContext(ctx context.Context, inst *qkp.Instance) (x ising.Bits, truncated bool) {
	x = make(ising.Bits, inst.N)
	residual := inst.B
	selected := make([]int, 0, inst.N)
	for {
		if ctx.Err() != nil {
			return x, true
		}
		bestJ := -1
		bestDensity := 0.0
		for j := 0; j < inst.N; j++ {
			if x[j] != 0 || inst.A[j] > residual {
				continue
			}
			gain := inst.H[j]
			for _, i := range selected {
				gain += inst.W[j][i]
			}
			d := float64(gain) / float64(inst.A[j])
			if bestJ < 0 || d > bestDensity {
				bestJ = j
				bestDensity = d
			}
		}
		if bestJ < 0 {
			break
		}
		x[bestJ] = 1
		residual -= inst.A[bestJ]
		selected = append(selected, bestJ)
	}
	return x, false
}

// MKP builds a solution by scanning items in decreasing pseudo-utility
// (value over capacity-normalized aggregate weight — the Chu–Beasley
// ordering) and taking every item that fits.
func MKP(inst *mkp.Instance) ising.Bits {
	x, _ := MKPContext(context.Background(), inst)
	return x
}

// MKPContext is MKP under a context, checked once per item during the
// packing scan. The partial packing built so far is feasible by
// construction and is returned with truncated == true.
func MKPContext(ctx context.Context, inst *mkp.Instance) (x ising.Bits, truncated bool) {
	order := make([]int, inst.N)
	util := make([]float64, inst.N)
	for j := 0; j < inst.N; j++ {
		order[j] = j
		agg := 0.0
		for i := 0; i < inst.M; i++ {
			if inst.B[i] > 0 {
				agg += float64(inst.A[i][j]) / float64(inst.B[i])
			} else {
				agg += float64(inst.A[i][j])
			}
		}
		if agg == 0 {
			agg = 1e-300
		}
		util[j] = float64(inst.H[j]) / agg
	}
	sort.Slice(order, func(a, b int) bool { return util[order[a]] > util[order[b]] })

	x = make(ising.Bits, inst.N)
	residual := append([]int(nil), inst.B...)
	for _, j := range order {
		if ctx.Err() != nil {
			return x, true
		}
		fits := true
		for i := 0; i < inst.M; i++ {
			if inst.A[i][j] > residual[i] {
				fits = false
				break
			}
		}
		if fits {
			x[j] = 1
			for i := 0; i < inst.M; i++ {
				residual[i] -= inst.A[i][j]
			}
		}
	}
	return x, false
}
