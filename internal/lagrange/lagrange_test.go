package lagrange

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/penalty"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

func toyProblem() (*ising.QUBO, *constraint.Extended) {
	sys := constraint.NewSystem(2)
	sys.Add(vecmat.Vec{1, 1}, constraint.LE, 1)
	ext := sys.Extend(constraint.Binary)
	f := ising.NewQUBO(ext.NTotal)
	f.AddLinear(0, -1)
	f.AddLinear(1, -2)
	return penalty.Build(f, ext, 0.5), ext
}

func TestUpdateIsSubgradientStep(t *testing.T) {
	l := New(2, 0.5)
	l.Update(vecmat.Vec{2, -4})
	if l.Values[0] != 1 || l.Values[1] != -2 {
		t.Fatalf("λ = %v", l.Values)
	}
	if l.Steps() != 1 {
		t.Fatalf("Steps = %d", l.Steps())
	}
}

func TestNonNegativeProjection(t *testing.T) {
	l := New(1, 1)
	l.NonNegative = true
	l.Update(vecmat.Vec{-3})
	if l.Values[0] != 0 {
		t.Fatalf("projected λ = %v", l.Values[0])
	}
}

func TestUpdatePanicsOnLengthMismatch(t *testing.T) {
	l := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Update accepted wrong-length residual")
		}
	}()
	l.Update(vecmat.Vec{1})
}

// Property: Apply(E, λ).Energy(x) == E.Energy(x) + λᵀ(Ax−B) everywhere.
func TestApplyMatchesDefinition(t *testing.T) {
	src := rng.New(31)
	f := func(raw uint8) bool {
		e, ext := toyProblem()
		l := New(ext.M(), 1)
		for i := range l.Values {
			l.Values[i] = src.Sym() * 10
		}
		lag := Apply(e, ext, l)
		for mask := 0; mask < 1<<ext.NTotal; mask++ {
			x := make(ising.Bits, ext.NTotal)
			for i := 0; i < ext.NTotal; i++ {
				if mask>>i&1 == 1 {
					x[i] = 1
				}
			}
			g := ext.Residuals(x)
			want := e.Energy(x) + l.Values.Dot(g)
			if math.Abs(lag.Energy(x)-want) > 1e-9 {
				return false
			}
		}
		_ = raw
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyZeroLambdaIsIdentity(t *testing.T) {
	e, ext := toyProblem()
	l := New(ext.M(), 1)
	lag := Apply(e, ext, l)
	x := ising.Bits{1, 1, 0}
	if lag.Energy(x) != e.Energy(x) {
		t.Fatal("zero λ changed energy")
	}
}

// BiasDelta must agree with the full Apply + ToIsing path: the spin model of
// Apply(E,λ) has h' = h_E − delta and Const' = Const_E + shift.
func TestBiasDeltaMatchesFullConversion(t *testing.T) {
	src := rng.New(37)
	e, ext := toyProblem()
	base := e.ToIsing()
	l := New(ext.M(), 1)
	for trial := 0; trial < 30; trial++ {
		for i := range l.Values {
			l.Values[i] = src.Sym() * 8
		}
		full := Apply(e, ext, l).ToIsing()
		delta := vecmat.NewVec(ext.NTotal)
		shift := BiasDelta(delta, ext, l)
		for i := 0; i < ext.NTotal; i++ {
			want := base.H[i] - delta[i]
			if math.Abs(full.H[i]-want) > 1e-9 {
				t.Fatalf("h[%d]: full %v vs base−delta %v", i, full.H[i], want)
			}
		}
		if math.Abs(full.Const-(base.Const+shift)) > 1e-9 {
			t.Fatalf("const: full %v vs base+shift %v", full.Const, base.Const+shift)
		}
		// J must be untouched by λ.
		for i := 0; i < ext.NTotal; i++ {
			for j := 0; j < ext.NTotal; j++ {
				if full.J.At(i, j) != base.J.At(i, j) {
					t.Fatalf("λ modified J[%d,%d]", i, j)
				}
			}
		}
	}
}

// On a tiny QKP-like problem where we can solve min_x L exactly, subgradient
// ascent must close the gap: LB_L(λ*) == OPT (Fig. 2b). The toy problem is
// min -x0-2x1 s.t. x0+x1+s=1 with P<Pc chosen small.
func TestSubgradientClosesGapOnToyProblem(t *testing.T) {
	e, ext := toyProblem()
	// Constrained optimum: x=(0,1), f=-2.
	const opt = -2.0
	l := New(ext.M(), 0.3)
	argmin := func(q *ising.QUBO) (ising.Bits, float64) {
		bestE := math.Inf(1)
		var best ising.Bits
		for mask := 0; mask < 1<<ext.NTotal; mask++ {
			x := make(ising.Bits, ext.NTotal)
			for i := 0; i < ext.NTotal; i++ {
				if mask>>i&1 == 1 {
					x[i] = 1
				}
			}
			if en := q.Energy(x); en < bestE {
				bestE, best = en, x
			}
		}
		return best, bestE
	}
	var lastLB float64
	for k := 0; k < 200; k++ {
		lag := Apply(e, ext, l)
		x, lb := argmin(lag)
		lastLB = lb
		l.Update(ext.Residuals(x))
	}
	if math.Abs(lastLB-opt) > 0.25 {
		t.Fatalf("dual ascent did not approach OPT: LB=%v, OPT=%v, λ=%v", lastLB, opt, l.Values)
	}
}

func TestDualTracker(t *testing.T) {
	var d DualTracker
	if !math.IsInf(d.Best(), -1) {
		t.Fatal("empty tracker Best should be -Inf")
	}
	d.Record(-5)
	d.Record(-2)
	d.Record(-3)
	if d.Best() != -2 {
		t.Fatalf("Best = %v", d.Best())
	}
	if d.Len() != 3 || len(d.History()) != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	l := New(2, 1)
	l.Update(vecmat.Vec{1, 1})
	c := l.Clone()
	c.Update(vecmat.Vec{1, 1})
	if l.Values[0] != 1 || c.Values[0] != 2 {
		t.Fatalf("clone aliasing: %v %v", l.Values, c.Values)
	}
	if l.Steps() != 1 || c.Steps() != 2 {
		t.Fatalf("steps: %d %d", l.Steps(), c.Steps())
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	e, ext := toyProblem()
	l := New(ext.M()+1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply accepted mismatched multipliers")
		}
	}()
	Apply(e, ext, l)
}

func TestStepSchedules(t *testing.T) {
	c := ConstantStep{Eta0: 5}
	if c.Eta(0) != 5 || c.Eta(100) != 5 {
		t.Fatal("constant step varied")
	}
	d := DecayStep{Eta0: 8, Power: 0.5}
	if d.Eta(0) != 8 {
		t.Fatalf("decay η₀ = %v", d.Eta(0))
	}
	if got := d.Eta(3); math.Abs(got-4) > 1e-12 { // 8/√4
		t.Fatalf("decay η₃ = %v", got)
	}
	lin := DecayStep{Eta0: 6, Power: 1}
	if got := lin.Eta(2); math.Abs(got-2) > 1e-12 { // 6/3
		t.Fatalf("linear decay η₂ = %v", got)
	}
	odd := DecayStep{Eta0: 1, Power: 0.25}
	if got := odd.Eta(15); math.Abs(got-0.5) > 1e-12 { // 16^-.25
		t.Fatalf("power decay = %v", got)
	}
	zero := DecayStep{Eta0: 7, Power: 0}
	if zero.Eta(9) != 7 {
		t.Fatal("power-0 decay should be constant")
	}
}

func TestUpdateScheduledUsesStepIndex(t *testing.T) {
	l := New(1, 0) // Eta field unused by scheduled updates
	sched := DecayStep{Eta0: 4, Power: 1}
	l.UpdateScheduled(vecmat.Vec{1}, sched) // +4/1
	l.UpdateScheduled(vecmat.Vec{1}, sched) // +4/2
	want := 4.0 + 2.0
	if math.Abs(l.Values[0]-want) > 1e-12 {
		t.Fatalf("λ = %v, want %v", l.Values[0], want)
	}
	if l.Steps() != 2 {
		t.Fatalf("steps = %d", l.Steps())
	}
}

func TestUpdateScheduledProjection(t *testing.T) {
	l := New(1, 0)
	l.NonNegative = true
	l.UpdateScheduled(vecmat.Vec{-5}, ConstantStep{Eta0: 1})
	if l.Values[0] != 0 {
		t.Fatalf("projected λ = %v", l.Values[0])
	}
}

// Diminishing steps must still close the toy gap (classical subgradient
// convergence), matching the constant-step behaviour of
// TestSubgradientClosesGapOnToyProblem.
func TestDecayingStepsCloseGap(t *testing.T) {
	e, ext := toyProblem()
	const opt = -2.0
	l := New(ext.M(), 0)
	sched := DecayStep{Eta0: 1.5, Power: 0.5}
	argmin := func(q *ising.QUBO) (ising.Bits, float64) {
		bestE := math.Inf(1)
		var best ising.Bits
		for mask := 0; mask < 1<<ext.NTotal; mask++ {
			x := make(ising.Bits, ext.NTotal)
			for i := 0; i < ext.NTotal; i++ {
				if mask>>i&1 == 1 {
					x[i] = 1
				}
			}
			if en := q.Energy(x); en < bestE {
				bestE, best = en, x
			}
		}
		return best, bestE
	}
	var lastLB float64
	for k := 0; k < 400; k++ {
		lag := Apply(e, ext, l)
		x, lb := argmin(lag)
		lastLB = lb
		l.UpdateScheduled(ext.Residuals(x), sched)
	}
	if math.Abs(lastLB-opt) > 0.3 {
		t.Fatalf("diminishing-step ascent did not approach OPT: LB=%v", lastLB)
	}
}
