// Package lagrange provides the Lagrange-relaxation machinery that turns a
// penalty-method energy E into the SAIM Lagrange function
//
//	L(x) = E(x) + λᵀ g(x)                     (paper eq. 5)
//
// together with the (surrogate) subgradient ascent on the dual problem
// max_λ min_x L (paper eqs. 7–8): after each Ising-machine measurement x̄
// the multipliers move along the constraint residuals,
//
//	λ ← λ + η · g(x̄).
//
// Because g is linear in x, applying λ to a QUBO touches only linear
// coefficients and the constant — this is what lets SAIM re-program an
// Ising machine's biases in O(N·M) per iteration without rebuilding J.
package lagrange

import (
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Multipliers holds the Lagrange multiplier vector λ and its update policy.
type Multipliers struct {
	// Values is λ, one entry per constraint.
	Values vecmat.Vec
	// Eta is the subgradient step size η (paper Table I: 20 for QKP,
	// 0.05 for MKP).
	Eta float64
	// NonNegative, when set, projects λ onto λ ≥ 0 after each update.
	// Constraints derived from inequalities have sign-constrained optimal
	// multipliers; the paper's plain ascent works without projection, so
	// this is off by default and exercised in ablations.
	NonNegative bool
	// steps counts updates, for diagnostics and traces.
	steps int
}

// New returns zero-initialized multipliers (paper: λ₀ = 0) for m constraints.
func New(m int, eta float64) *Multipliers {
	if m < 0 {
		panic("lagrange: negative constraint count")
	}
	return &Multipliers{Values: vecmat.NewVec(m), Eta: eta}
}

// M returns the number of multipliers.
func (l *Multipliers) M() int { return len(l.Values) }

// Reset returns the multipliers to λ = 0 with a zero step count, so one
// allocation can serve many solves (the replica pool resets between
// replicas instead of rebuilding).
func (l *Multipliers) Reset() {
	for i := range l.Values {
		l.Values[i] = 0
	}
	l.steps = 0
}

// Steps returns how many updates have been applied.
func (l *Multipliers) Steps() int { return l.steps }

// Update performs one subgradient step λ ← λ + η·g for the measured
// residual vector g = g(x̄). This implements the surrogate gradient method
// [20]: x̄ may be any (even non-optimal) sample from the Ising machine.
func (l *Multipliers) Update(g vecmat.Vec) {
	if len(g) != len(l.Values) {
		panic(fmt.Sprintf("lagrange: residual length %d, want %d", len(g), len(l.Values)))
	}
	for i, gi := range g {
		l.Values[i] += l.Eta * gi
		if l.NonNegative && l.Values[i] < 0 {
			l.Values[i] = 0
		}
	}
	l.steps++
}

// Clone returns a deep copy.
func (l *Multipliers) Clone() *Multipliers {
	return &Multipliers{Values: l.Values.Clone(), Eta: l.Eta, NonNegative: l.NonNegative, steps: l.steps}
}

// Apply returns L = base + λᵀ(A·x − B) as a new QUBO. base is typically the
// penalty energy E built by package penalty.
func Apply(base *ising.QUBO, ext *constraint.Extended, l *Multipliers) *ising.QUBO {
	if base.N() != ext.NTotal {
		panic("lagrange: base QUBO dimension mismatch")
	}
	if l.M() != ext.M() {
		panic("lagrange: multiplier count mismatch")
	}
	out := base.Clone()
	for m, row := range ext.Rows {
		lam := l.Values[m]
		if lam == 0 {
			continue
		}
		for i, ai := range row {
			if ai != 0 {
				out.AddLinear(i, lam*ai)
			}
		}
		out.AddConst(-lam * ext.B[m])
	}
	return out
}

// BiasDelta computes, without allocating a new model, the spin-domain field
// adjustment produced by the λ terms: for every binary linear term c_i x_i
// the Ising conversion contributes h_i −= c_i/2. dst must have length
// ext.NTotal; it is overwritten with Σ_m λ_m·row_m[i]/2 (to be *subtracted*
// from the base h), and the returned value is the constant-energy shift
// Σ_m λ_m(Σ_i row_m[i]/2 − b_m).
func BiasDelta(dst vecmat.Vec, ext *constraint.Extended, l *Multipliers) float64 {
	if len(dst) != ext.NTotal {
		panic("lagrange: BiasDelta dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	shift := 0.0
	for m, row := range ext.Rows {
		lam := l.Values[m]
		if lam == 0 {
			continue
		}
		for i, ai := range row {
			if ai != 0 {
				dst[i] += lam * ai / 2
				shift += lam * ai / 2
			}
		}
		shift -= lam * ext.B[m]
	}
	return shift
}

// DualTracker records the evolution of the (heuristic) dual lower bound
// LB_L = min_x L observed during SAIM iterations. Because the Ising machine
// is a heuristic minimizer, the recorded values are upper estimates of the
// true dual function; the tracker keeps the trajectory for Fig. 3/5-style
// traces and exposes the best (largest) value seen, which estimates the
// optimal dual bound M_D = max_λ LB_L (paper eq. 8).
type DualTracker struct {
	history []float64
	best    float64
	hasBest bool
}

// Reserve pre-grows the history buffer to capacity n so that the following
// n Record calls do not allocate. The solve engine reserves the full
// iteration budget up front to keep its steady-state loop allocation-free.
func (d *DualTracker) Reserve(n int) {
	if cap(d.history)-len(d.history) < n {
		grown := make([]float64, len(d.history), len(d.history)+n)
		copy(grown, d.history)
		d.history = grown
	}
}

// Reset clears the tracker for reuse, keeping the history buffer's capacity.
func (d *DualTracker) Reset() {
	d.history = d.history[:0]
	d.best = 0
	d.hasBest = false
}

// Record appends one measured L(x̄) value.
func (d *DualTracker) Record(lb float64) {
	d.history = append(d.history, lb)
	if !d.hasBest || lb > d.best {
		d.best = lb
		d.hasBest = true
	}
}

// Best returns the largest recorded bound, or -Inf if none.
func (d *DualTracker) Best() float64 {
	if !d.hasBest {
		return math.Inf(-1)
	}
	return d.best
}

// History returns the recorded trajectory (live slice; do not mutate).
func (d *DualTracker) History() []float64 { return d.history }

// Len returns the number of recorded values.
func (d *DualTracker) Len() int { return len(d.history) }

// StepSchedule maps the update index k (0-based) to a step size η_k.
// Classical subgradient theory converges for diminishing, non-summable
// steps (e.g. η_k = η₀/√(k+1)); the paper uses a constant η, which works
// with the surrogate-gradient method but leaves a residual oscillation.
type StepSchedule interface {
	Eta(k int) float64
}

// ConstantStep is the paper's fixed η.
type ConstantStep struct {
	Eta0 float64
}

// Eta implements StepSchedule.
func (c ConstantStep) Eta(int) float64 { return c.Eta0 }

// DecayStep is η_k = η₀ / (k+1)^Power. Power 0.5 is the classical
// 1/√k diminishing schedule; Power 1 is the series-summable variant.
type DecayStep struct {
	Eta0  float64
	Power float64
}

// Eta implements StepSchedule.
func (d DecayStep) Eta(k int) float64 {
	return d.Eta0 / powKPlus1(k, d.Power)
}

func powKPlus1(k int, p float64) float64 {
	switch p {
	case 0:
		return 1
	case 0.5:
		return math.Sqrt(float64(k + 1))
	case 1:
		return float64(k + 1)
	default:
		return math.Pow(float64(k+1), p)
	}
}

// UpdateScheduled performs λ ← λ + η_k·g with the step taken from the
// schedule at the current step counter. Projection behaves as in Update.
func (l *Multipliers) UpdateScheduled(g vecmat.Vec, sched StepSchedule) {
	if len(g) != len(l.Values) {
		panic(fmt.Sprintf("lagrange: residual length %d, want %d", len(g), len(l.Values)))
	}
	eta := sched.Eta(l.steps)
	for i, gi := range g {
		l.Values[i] += eta * gi
		if l.NonNegative && l.Values[i] < 0 {
			l.Values[i] = 0
		}
	}
	l.steps++
}
