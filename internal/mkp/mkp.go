// Package mkp implements the 0–1 multidimensional knapsack problem (MKP),
// the second benchmark family of the paper (Section IV.B):
//
//	min  −hᵀx
//	s.t. A·x ≤ B,  x ∈ {0,1}^N             (paper eq. 14)
//
// with M simultaneous capacity constraints. Instances are generated with
// the Chu–Beasley construction [28] used by the OR-Library benchmark set:
// weights a_ij uniform in [1,1000], capacities b_i = tightness·Σ_j a_ij,
// and values correlated with the weights, h_j = Σ_i a_ij/M + 500·u_j with
// u_j uniform in [0,1), which makes the instances hard for greedy methods.
//
// Because the MKP objective has no quadratic terms, the paper approximates
// the coupling density as d = 2/(N+1) (as if the fields h were couplings to
// one extra reference spin) and compensates with a larger α = 5 in the
// P = α·d·N heuristic.
package mkp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/internal/vecmat"
)

// Instance is one MKP instance with integer data.
type Instance struct {
	// Name identifies the instance, conventionally "N-M-id" following the
	// paper's Table V.
	Name string
	// N is the number of items, M the number of knapsack constraints.
	N, M int
	// H[j] is the value of item j.
	H []int
	// A[i][j] is the weight of item j in constraint i.
	A [][]int
	// B[i] is the capacity of constraint i.
	B []int
	// Tightness is the capacity ratio used at generation time (0 for
	// instances read from files).
	Tightness float64
}

// Generate draws a Chu–Beasley-style random instance. tightness is the
// capacity ratio (the OR-Library uses 0.25, 0.5 and 0.75; 0.5 is the common
// middle setting).
func Generate(n, m int, tightness float64, id int, seed uint64) *Instance {
	if n <= 0 || m <= 0 || tightness <= 0 || tightness >= 1 {
		panic(fmt.Sprintf("mkp: invalid generator arguments n=%d m=%d t=%v", n, m, tightness))
	}
	src := rng.New(seed)
	inst := &Instance{
		Name:      fmt.Sprintf("%d-%d-%d", n, m, id),
		N:         n,
		M:         m,
		H:         make([]int, n),
		A:         make([][]int, m),
		B:         make([]int, m),
		Tightness: tightness,
	}
	for i := 0; i < m; i++ {
		inst.A[i] = make([]int, n)
		rowSum := 0
		for j := 0; j < n; j++ {
			inst.A[i][j] = src.IntRange(1, 1000)
			rowSum += inst.A[i][j]
		}
		inst.B[i] = int(tightness * float64(rowSum))
	}
	for j := 0; j < n; j++ {
		colSum := 0
		for i := 0; i < m; i++ {
			colSum += inst.A[i][j]
		}
		inst.H[j] = colSum/m + int(500*src.Float64())
	}
	return inst
}

// Validate checks structural invariants of the instance.
func (k *Instance) Validate() error {
	if k.N <= 0 || k.M <= 0 {
		return fmt.Errorf("mkp: non-positive dimensions N=%d M=%d", k.N, k.M)
	}
	if len(k.H) != k.N || len(k.A) != k.M || len(k.B) != k.M {
		return fmt.Errorf("mkp: inconsistent dimensions")
	}
	for i := 0; i < k.M; i++ {
		if len(k.A[i]) != k.N {
			return fmt.Errorf("mkp: A row %d has length %d", i, len(k.A[i]))
		}
		for j := 0; j < k.N; j++ {
			if k.A[i][j] < 0 {
				return fmt.Errorf("mkp: negative weight at (%d,%d)", i, j)
			}
		}
		if k.B[i] < 0 {
			return fmt.Errorf("mkp: negative capacity %d", i)
		}
	}
	for j, h := range k.H {
		if h < 0 {
			return fmt.Errorf("mkp: negative value %d", j)
		}
	}
	return nil
}

// Value returns hᵀx.
func (k *Instance) Value(x ising.Bits) int {
	if len(x) != k.N {
		panic("mkp: Value dimension mismatch")
	}
	v := 0
	for j, xj := range x {
		if xj != 0 {
			v += k.H[j]
		}
	}
	return v
}

// Cost returns the minimization objective −Value(x).
func (k *Instance) Cost(x ising.Bits) float64 { return -float64(k.Value(x)) }

// Feasible reports A·x ≤ B componentwise.
func (k *Instance) Feasible(x ising.Bits) bool {
	for i := 0; i < k.M; i++ {
		w := 0
		row := k.A[i]
		for j, xj := range x {
			if xj != 0 {
				w += row[j]
			}
		}
		if w > k.B[i] {
			return false
		}
	}
	return true
}

// ApproxDensity returns the paper's density surrogate d = 2/(N+1).
func (k *Instance) ApproxDensity() float64 { return 2 / float64(k.N+1) }

// System returns the M-constraint system A·x ≤ B over the N items.
func (k *Instance) System() *constraint.System {
	sys := constraint.NewSystem(k.N)
	for i := 0; i < k.M; i++ {
		a := vecmat.NewVec(k.N)
		for j, w := range k.A[i] {
			a[j] = float64(w)
		}
		sys.Add(a, constraint.LE, float64(k.B[i]))
	}
	return sys
}

// ToProblem converts the instance into the normalized SAIM form with the
// given slack encoding. Values are normalized by max h, and the constraint
// system by its largest coefficient, as in the paper.
func (k *Instance) ToProblem(enc constraint.SlackEncoding) *core.Problem {
	ext := k.System().Extend(enc)
	ext.Normalize()

	obj := ising.NewQUBO(ext.NTotal)
	for j := 0; j < k.N; j++ {
		obj.AddLinear(j, -float64(k.H[j]))
	}
	obj.Normalize()

	return &core.Problem{
		Objective: obj,
		Ext:       ext,
		Cost:      k.Cost,
		Density:   k.ApproxDensity(),
	}
}

// Write serializes the instance in an OR-Library-like plain text format:
//
//	<name>
//	<N> <M>
//	<h_1 … h_N>
//	<M lines of N weights>
//	<b_1 … b_M>
func (k *Instance) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, k.Name)
	fmt.Fprintln(bw, k.N, k.M)
	writeInts(bw, k.H)
	for i := 0; i < k.M; i++ {
		writeInts(bw, k.A[i])
	}
	writeInts(bw, k.B)
	return bw.Flush()
}

func writeInts(w io.Writer, xs []int) {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(x))
	}
	fmt.Fprintln(w, sb.String())
}

// Read parses an instance previously serialized by Write.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	name, err := next()
	if err != nil {
		return nil, fmt.Errorf("mkp: reading name: %w", err)
	}
	dims, err := next()
	if err != nil {
		return nil, fmt.Errorf("mkp: reading dimensions: %w", err)
	}
	fields := strings.Fields(dims)
	if len(fields) != 2 {
		return nil, fmt.Errorf("mkp: invalid dimension line %q", dims)
	}
	n, err1 := strconv.Atoi(fields[0])
	m, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || n <= 0 || m <= 0 {
		return nil, fmt.Errorf("mkp: invalid dimensions %q", dims)
	}
	inst := &Instance{Name: name, N: n, M: m, A: make([][]int, m)}
	if inst.H, err = readInts(next, n); err != nil {
		return nil, fmt.Errorf("mkp: reading h: %w", err)
	}
	for i := 0; i < m; i++ {
		if inst.A[i], err = readInts(next, n); err != nil {
			return nil, fmt.Errorf("mkp: reading A row %d: %w", i, err)
		}
	}
	if inst.B, err = readInts(next, m); err != nil {
		return nil, fmt.Errorf("mkp: reading b: %w", err)
	}
	return inst, inst.Validate()
}

func readInts(next func() (string, error), want int) ([]int, error) {
	out := make([]int, 0, want)
	for len(out) < want {
		line, err := next()
		if err != nil {
			return nil, err
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("invalid integer %q", f)
			}
			out = append(out, v)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("expected %d integers, got %d", want, len(out))
	}
	return out, nil
}
