package mkp

import (
	"bytes"
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/rng"
)

func TestGenerateValidates(t *testing.T) {
	inst := Generate(40, 5, 0.5, 1, 11)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Name != "40-5-1" {
		t.Fatalf("Name = %q", inst.Name)
	}
	if inst.N != 40 || inst.M != 5 {
		t.Fatalf("dims = %d %d", inst.N, inst.M)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(20, 3, 0.5, 1, 4)
	b := Generate(20, 3, 0.5, 1, 4)
	if a.B[0] != b.B[0] || a.H[5] != b.H[5] || a.A[1][7] != b.A[1][7] {
		t.Fatal("same seed produced different instances")
	}
}

func TestGenerateCapacityTightness(t *testing.T) {
	inst := Generate(60, 4, 0.5, 1, 9)
	for i := 0; i < inst.M; i++ {
		rowSum := 0
		for _, w := range inst.A[i] {
			rowSum += w
		}
		want := 0.5 * float64(rowSum)
		if math.Abs(float64(inst.B[i])-want) > 1 {
			t.Fatalf("capacity %d = %d, want ≈%v", i, inst.B[i], want)
		}
	}
}

func TestGenerateValueCorrelation(t *testing.T) {
	// h_j = Σ_i a_ij / M + 500·u: values must be at least the weight mean
	// and at most mean + 500.
	inst := Generate(50, 5, 0.5, 1, 13)
	for j := 0; j < inst.N; j++ {
		colSum := 0
		for i := 0; i < inst.M; i++ {
			colSum += inst.A[i][j]
		}
		mean := colSum / inst.M
		if inst.H[j] < mean || inst.H[j] > mean+500 {
			t.Fatalf("value %d = %d outside [%d, %d]", j, inst.H[j], mean, mean+500)
		}
	}
}

func TestValueCostFeasible(t *testing.T) {
	inst := &Instance{
		Name: "t", N: 3, M: 2,
		H: []int{5, 7, 9},
		A: [][]int{{1, 2, 3}, {3, 2, 1}},
		B: []int{3, 4},
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := inst.Value(ising.Bits{1, 1, 0}); v != 12 {
		t.Fatalf("Value = %d", v)
	}
	if c := inst.Cost(ising.Bits{1, 1, 0}); c != -12 {
		t.Fatalf("Cost = %v", c)
	}
	if !inst.Feasible(ising.Bits{1, 1, 0}) { // weights (3,5): 3≤3 but 5>4
		t.Log("checking constraint 2")
	}
	// (1,1,0): constraint 1: 1+2=3 ≤ 3 OK; constraint 2: 3+2=5 > 4 — infeasible.
	if inst.Feasible(ising.Bits{1, 1, 0}) {
		t.Fatal("(1,1,0) should be infeasible")
	}
	if !inst.Feasible(ising.Bits{0, 1, 0}) {
		t.Fatal("(0,1,0) should be feasible")
	}
}

func TestApproxDensityMatchesPaper(t *testing.T) {
	inst := Generate(99, 5, 0.5, 1, 2)
	if got := inst.ApproxDensity(); got != 0.02 {
		t.Fatalf("ApproxDensity = %v, want 2/(N+1)=0.02", got)
	}
}

func TestSystemHasMConstraints(t *testing.T) {
	inst := Generate(10, 4, 0.5, 1, 3)
	sys := inst.System()
	if sys.M() != 4 {
		t.Fatalf("system M = %d", sys.M())
	}
}

func TestToProblemConsistency(t *testing.T) {
	src := rng.New(21)
	inst := Generate(15, 3, 0.5, 1, 17)
	p := inst.ToProblem(constraint.Binary)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ext.M() != inst.M {
		t.Fatalf("extended M = %d", p.Ext.M())
	}
	if p.Density != inst.ApproxDensity() {
		t.Fatalf("Density = %v", p.Density)
	}
	for trial := 0; trial < 100; trial++ {
		x := make(ising.Bits, inst.N)
		for i := range x {
			if src.Bool(0.2) {
				x[i] = 1
			}
		}
		if got, want := p.Cost(x), inst.Cost(x); got != want {
			t.Fatalf("Cost mismatch: %v vs %v", got, want)
		}
		full := make(ising.Bits, p.Ext.NTotal)
		copy(full, x)
		if p.Ext.OrigFeasible(full, 1e-9) != inst.Feasible(x) {
			t.Fatal("feasibility mismatch")
		}
	}
}

func TestToProblemSlackBitsPerConstraint(t *testing.T) {
	inst := Generate(10, 3, 0.5, 1, 23)
	p := inst.ToProblem(constraint.Binary)
	for i := 0; i < inst.M; i++ {
		want := int(math.Floor(math.Log2(float64(inst.B[i])))) + 1
		if got := p.Ext.SlackBitsFor(i); got != want {
			t.Fatalf("constraint %d slack bits = %d, want %d", i, got, want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	inst := Generate(12, 4, 0.5, 2, 29)
	var buf bytes.Buffer
	if err := inst.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != inst.Name || got.N != inst.N || got.M != inst.M {
		t.Fatalf("header mismatch: %+v", got)
	}
	for j := 0; j < inst.N; j++ {
		if got.H[j] != inst.H[j] {
			t.Fatalf("H mismatch at %d", j)
		}
	}
	for i := 0; i < inst.M; i++ {
		if got.B[i] != inst.B[i] {
			t.Fatalf("B mismatch at %d", i)
		}
		for j := 0; j < inst.N; j++ {
			if got.A[i][j] != inst.A[i][j] {
				t.Fatalf("A mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"name\n",
		"name\n3\n",
		"name\n2 1\n1 z\n",
		"name\n0 2\n",
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("Read accepted %q", c)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	negW := Generate(5, 2, 0.5, 1, 2)
	negW.A[0][1] = -1
	negB := Generate(5, 2, 0.5, 1, 2)
	negB.B[1] = -1
	negH := Generate(5, 2, 0.5, 1, 2)
	negH.H[0] = -1
	shortRow := Generate(5, 2, 0.5, 1, 2)
	shortRow.A[0] = shortRow.A[0][:3]
	for i, bad := range []*Instance{negW, negB, negH, shortRow} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted corrupted instance", i)
		}
	}
}
