package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicPlacement pins the core routing contract: every
// node computes the same owner for the same key from the same member
// set, regardless of insertion order.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(0)
	a.Add("n1")
	a.Add("n2")
	a.Add("n3")
	b := NewRing(0)
	b.Add("n3")
	b.Add("n1")
	b.Add("n2")
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatal("owner missing on populated ring")
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: order-dependent placement %q vs %q", key, oa, ob)
		}
	}
}

// TestRingBalance checks the vnode count spreads keys roughly evenly:
// with 3 nodes no node should own less than half or more than double
// its fair share of 3000 keys.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	r.Reset([]string{"n1", "n2", "n3"})
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		owner, _ := r.Owner(fmt.Sprintf("key-%d", i))
		counts[owner]++
	}
	fair := keys / 3
	for node, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): %v", node, c, keys, fair, counts)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing property: removing
// one of three nodes must only move the keys that node owned — every key
// owned by a survivor keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	r.Reset([]string{"n1", "n2", "n3"})
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k], _ = r.Owner(k)
	}
	r.Remove("n2")
	moved := 0
	for k, prev := range before {
		now, ok := r.Owner(k)
		if !ok {
			t.Fatal("owner missing after removal")
		}
		if now == "n2" {
			t.Fatalf("key %q still owned by removed node", k)
		}
		if prev != "n2" && now != prev {
			t.Fatalf("key %q moved %q → %q though its owner survived", k, prev, now)
		}
		if prev == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed node — balance test is vacuous")
	}
}

// TestRingOwners pins replica enumeration: Owners walks distinct nodes
// clockwise, the first being the primary owner.
func TestRingOwners(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	r.Reset([]string{"n1", "n2", "n3"})
	owners := r.Owners("some-key", 3)
	if len(owners) != 3 {
		t.Fatalf("owners = %v, want all 3 nodes", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %q in %v", o, owners)
		}
		seen[o] = true
	}
	primary, _ := r.Owner("some-key")
	if owners[0] != primary {
		t.Fatalf("owners[0] = %q, primary = %q", owners[0], primary)
	}
	if got := r.Owners("some-key", 10); len(got) != 3 {
		t.Fatalf("asking for more replicas than members returned %v", got)
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("solo")
	if o, ok := r.Owner("k"); !ok || o != "solo" {
		t.Fatalf("single-node ring: owner = %q, %v", o, ok)
	}
	r.Remove("solo")
	if _, ok := r.Owner("k"); ok {
		t.Fatal("drained ring claimed an owner")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining", r.Len())
	}
}
