package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakePing is a controllable pingFunc: peers in the down set time out,
// everyone else answers.
type fakePing struct {
	mu   sync.Mutex
	down map[string]bool // keyed by addr
}

func (f *fakePing) set(addr string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = map[string]bool{}
	}
	f.down[addr] = down
}

func (f *fakePing) ping(ctx context.Context, addr string) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[addr] {
		return false, errors.New("fake: unreachable")
	}
	return false, nil
}

// stateFor pulls one peer's state out of a snapshot.
func stateFor(t *testing.T, m *membership, id string) string {
	t.Helper()
	for _, p := range m.snapshot() {
		if p.ID == id {
			return p.State
		}
	}
	t.Fatalf("peer %q missing from snapshot", id)
	return ""
}

// TestMembershipSuspectEvictRecover drives one peer through the whole
// lifecycle — alive, suspect after heartbeat silence, dead (evicted from
// the live set) after the full window, and alive again once it answers —
// checking the live-set callback fires on each transition.
func TestMembershipSuspectEvictRecover(t *testing.T) {
	ping := &fakePing{}
	var mu sync.Mutex
	var lastLive []string
	cfg := membershipConfig{
		self:     "n1",
		peers:    map[string]string{"n1": "a1", "n2": "a2", "n3": "a3"},
		interval: 5 * time.Millisecond,
		suspect:  25 * time.Millisecond,
		evict:    50 * time.Millisecond,
		ping:     ping.ping,
		onChange: func(live []string) {
			mu.Lock()
			lastLive = append([]string(nil), live...)
			mu.Unlock()
		},
	}
	m := newMembership(cfg)
	ctx := context.Background()

	// Optimistic boot: everyone alive.
	for _, id := range []string{"n1", "n2", "n3"} {
		if got := stateFor(t, m, id); got != "alive" {
			t.Fatalf("boot state of %s = %q", id, got)
		}
	}

	// n3 goes silent: suspect after the suspicion window...
	ping.set("a3", true)
	deadline := time.Now().Add(2 * time.Second)
	for stateFor(t, m, "n3") != "suspect" {
		if time.Now().After(deadline) {
			t.Fatal("n3 never turned suspect")
		}
		m.sweep(ctx)
		time.Sleep(2 * time.Millisecond)
	}
	// ...but still in the live set (suspicion must not reshuffle the ring).
	mu.Lock()
	if lastLive != nil {
		t.Fatalf("live set changed during suspicion: %v", lastLive)
	}
	mu.Unlock()

	// Dead after the eviction window, and the live set loses n3. Wait on
	// the callback itself: the state can cross the eviction threshold
	// between a sweep and a check, so only a post-crossing sweep reports.
	liveSet := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lastLive...)
	}
	for len(liveSet()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("n3 never evicted from live set (state %q, live %v)", stateFor(t, m, "n3"), liveSet())
		}
		m.sweep(ctx)
		time.Sleep(2 * time.Millisecond)
	}
	if got := liveSet(); got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("live set after eviction = %v, want [n1 n2]", got)
	}
	if got := stateFor(t, m, "n3"); got != "dead" {
		t.Fatalf("evicted peer state = %q, want dead", got)
	}
	if m.isUsable("n3") {
		t.Fatal("dead peer reported usable")
	}

	// Recovery: one successful heartbeat brings it straight back.
	ping.set("a3", false)
	m.sweep(ctx)
	if got := stateFor(t, m, "n3"); got != "alive" {
		t.Fatalf("state after recovery = %q", got)
	}
	if got := liveSet(); len(got) != 3 {
		t.Fatalf("live set after recovery = %v, want all 3", got)
	}
}

// TestMembershipReportFailure pins the fast path: a hard connection
// failure ages the peer straight to suspect without waiting for
// heartbeat silence, but does not evict it.
func TestMembershipReportFailure(t *testing.T) {
	ping := &fakePing{}
	m := newMembership(membershipConfig{
		self:     "n1",
		peers:    map[string]string{"n1": "a1", "n2": "a2"},
		interval: 10 * time.Millisecond,
		suspect:  time.Hour, // nothing ages naturally during the test
		evict:    2 * time.Hour,
		ping:     ping.ping,
	})
	if got := stateFor(t, m, "n2"); got != "alive" {
		t.Fatalf("boot state = %q", got)
	}
	m.reportFailure("n2")
	if got := stateFor(t, m, "n2"); got != "suspect" {
		t.Fatalf("state after reportFailure = %q, want suspect", got)
	}
	if !m.isUsable("n2") {
		t.Fatal("suspect peer must stay usable (eviction owns the hard cut)")
	}
	// Self is immune.
	m.reportFailure("n1")
	if got := stateFor(t, m, "n1"); got != "alive" {
		t.Fatalf("self state after reportFailure = %q", got)
	}
}
