package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/ising-machines/saim/service"
)

// ForwardHeader marks a request that already crossed one node: the
// receiving node must serve it locally, never re-forward, so divergent
// membership views cannot create routing loops. Its value is the
// origin node's id (forensics only).
const ForwardHeader = "X-Saim-Cluster-Hop"

// PingReply is the /v1/cluster/ping body.
type PingReply struct {
	ID       string `json:"id"`
	Draining bool   `json:"draining,omitempty"`
}

// StatsReply is the /v1/cluster/stats body: the node's manager snapshot
// plus its cluster identity — what a thief inspects to pick a victim.
type StatsReply struct {
	ID       string        `json:"id"`
	Draining bool          `json:"draining,omitempty"`
	Stats    service.Stats `json:"stats"`
}

// Client is the inter-node HTTP client. Control calls (ping, stats,
// steal, complete) run under a short timeout; Forward streams with no
// client-side deadline — a proxied SSE stream lives as long as the
// job — and is bounded by the incoming request's context instead.
type Client struct {
	control *http.Client
	stream  *http.Client
}

// NewClient builds a client; timeout bounds the control calls (<= 0
// takes 2s).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	shared := &http.Transport{MaxIdleConnsPerHost: 16}
	return &Client{
		control: &http.Client{Timeout: timeout, Transport: shared},
		stream:  &http.Client{Transport: shared},
	}
}

func (c *Client) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.control.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Ping probes a peer's cluster endpoint.
func (c *Client) Ping(ctx context.Context, addr string) (PingReply, error) {
	var out PingReply
	err := c.getJSON(ctx, "http://"+addr+"/v1/cluster/ping", &out)
	return out, err
}

// Stats fetches a peer's manager snapshot.
func (c *Client) Stats(ctx context.Context, addr string) (StatsReply, error) {
	var out StatsReply
	err := c.getJSON(ctx, "http://"+addr+"/v1/cluster/stats", &out)
	return out, err
}

// Steal asks a peer for one queued job. nil with a nil error means the
// peer had nothing stealable (HTTP 204).
func (c *Client) Steal(ctx context.Context, addr string) (*service.StolenJob, error) {
	url := "http://" + addr + "/v1/cluster/steal"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.control.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var sj service.StolenJob
		if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
			return nil, err
		}
		return &sj, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: steal from %s: %s: %s", addr, resp.Status, body)
	}
}

// Complete posts a stolen job's outcome back to its victim.
func (c *Client) Complete(ctx context.Context, addr, jobID string, res *service.RemoteResult) error {
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	url := "http://" + addr + "/v1/cluster/complete/" + jobID
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.control.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: complete %s on %s: %s: %s", jobID, addr, resp.Status, body)
	}
	return nil
}

// PostJob relays one submission body to a peer's /v1/jobs, returning
// the peer's status code and response body verbatim so the caller can
// pass them through. The ForwardHeader is stamped; a transport error
// leaves the caller free to fall back to serving locally (nothing was
// written to its client yet). Bounded by ctx, not the control timeout —
// a large model can take longer than a ping.
func (c *Client) PostJob(ctx context.Context, addr, origin string, body []byte) (int, []byte, error) {
	url := "http://" + addr + "/v1/jobs"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, origin)
	resp, err := c.stream.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// Forward proxies the incoming request to a peer and streams the
// response back, flushing after every chunk so SSE progress events
// relay in real time. The ForwardHeader is stamped with the origin id
// so the peer serves locally instead of re-forwarding. An error is
// returned only when nothing was written to w yet — once the upstream
// status line is copied, failures just truncate the stream (the client
// observes EOF, the same contract a direct connection has).
func (c *Client) Forward(w http.ResponseWriter, r *http.Request, addr, origin string) error {
	url := "http://" + addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		return err
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardHeader, origin)
	resp, err := c.stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return nil
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if rerr != nil {
			return nil
		}
	}
}
