// Package cluster turns N saimserve processes into one logical solve
// service. It provides the four pieces the coordinator/worker split
// needs:
//
//   - Ring: a consistent-hash ring over model fingerprints (virtual
//     nodes, deterministic placement) that shards the dedup/result cache
//     so every submission of the same model lands on the same node.
//   - Membership: lightweight peer health via heartbeats, with
//     suspicion-based eviction — a silent peer turns Suspect, then Dead,
//     at which point the ring reassigns its key range.
//   - Client: the inter-node HTTP client speaking the existing wire
//     codec (model JSON, service.SolveOptions, service.WireResult) for
//     proxy, steal, and relay calls.
//   - Node: the per-process glue — routing decisions, the work-stealing
//     loop, the /v1/cluster HTTP surface, and introspection.
//
// Any node can accept any client request: it serves requests for keys it
// owns and proxies the rest to the owner, so clients need no placement
// knowledge. Durability stays per-node — each node journals only jobs it
// minted — and on owner death the ring reassigns the key range so
// resubmissions dedup against the new owner.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-node vnode count: enough that three
// physical nodes split the keyspace within a few percent of evenly,
// cheap enough that membership changes rebuild the ring in microseconds.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping keys (canonical model
// fingerprints) to node ids. Placement is deterministic: two rings built
// from the same member set agree on every key, no matter the order of
// Add/Remove calls — that is what lets every node route independently.
// All methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 takes DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// ringHash positions a label on the ring: the first 8 bytes of its
// SHA-256, the same family of hash the model fingerprint itself uses, so
// placement is stable across processes, architectures, and restarts.
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (no-op when present).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node (no-op when absent). Only keys the node owned
// move — to their clockwise successors — which is the whole point of
// consistent hashing: an eviction invalidates 1/N of the cache shards,
// not all of them.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Reset replaces the whole member set in one step (membership sweeps use
// it so a multi-node change is one rebuild, not several).
func (r *Ring) Reset(nodes []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes = make(map[string]struct{}, len(nodes))
	r.points = r.points[:0]
	for _, node := range nodes {
		if _, dup := r.nodes[node]; dup {
			continue
		}
		r.nodes[node] = struct{}{}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", node, i)),
				node: node,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Owner returns the node owning the key: the first vnode clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct nodes clockwise from the key's hash —
// the ownership succession. Owners(key, 2)[1] is the node that inherits
// the key if the owner is evicted, which is where a resubmission will
// dedup after a failure.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Nodes returns the member set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
