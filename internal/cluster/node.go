package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ising-machines/saim/model"
	"github.com/ising-machines/saim/service"
)

// Config wires one process into the cluster.
type Config struct {
	// Self is this node's id; it must appear as a key in Peers.
	Self string
	// Peers maps node id → "host:port" as other nodes reach it, the
	// static member set (self included).
	Peers map[string]string
	// Manager is the local job plane.
	Manager *service.Manager

	// VirtualNodes is the ring vnode count per member (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// HeartbeatInterval paces the failure detector (default 1s); peers
	// silent for 3 intervals turn Suspect, for 6 they are evicted from
	// the ring. SuspectAfter/EvictAfter override those multiples.
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	EvictAfter        time.Duration

	// StealInterval paces the work-stealing probe (default 200ms; < 0
	// disables stealing). StealLease bounds how long a victim waits for
	// a thief's result before re-queuing the job (default 60s).
	StealInterval time.Duration
	StealLease    time.Duration

	// Logf receives operational notices (nil silences them).
	Logf func(format string, args ...any)
}

// Node is one cluster member: the ring, the failure detector, the
// work-stealing loop, and the /v1/cluster HTTP surface, all bound to the
// local service.Manager.
type Node struct {
	cfg    Config
	ring   *Ring
	mem    *membership
	client *Client
	mgr    *service.Manager

	draining atomic.Bool
	started  time.Time

	ctr struct {
		proxied   atomic.Int64 // client requests forwarded to an owner
		fallbacks atomic.Int64 // forwards that failed over to local serving
		relays    atomic.Int64 // SSE/status/result/cancel routed by job id
		steals    atomic.Int64 // jobs pulled from peers and run here
		stealErrs atomic.Int64 // steal attempts that failed mid-protocol
	}

	wg     sync.WaitGroup
	cancel context.CancelFunc
	closed sync.Once
}

// New validates the configuration and builds the node (call Start to
// launch heartbeats and stealing).
func New(cfg Config) (*Node, error) {
	if cfg.Manager == nil {
		return nil, fmt.Errorf("cluster: Config.Manager is required")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q missing from peers", cfg.Self)
	}
	for id, addr := range cfg.Peers {
		if id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: empty peer entry %q=%q", id, addr)
		}
		if strings.ContainsAny(id, "-/ ") {
			return nil, fmt.Errorf("cluster: node id %q must not contain '-', '/', or spaces (ids embed into job ids)", id)
		}
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = 200 * time.Millisecond
	}
	if cfg.StealLease <= 0 {
		cfg.StealLease = 60 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:     cfg,
		ring:    NewRing(cfg.VirtualNodes),
		client:  NewClient(0),
		mgr:     cfg.Manager,
		started: time.Now(),
	}
	n.mem = newMembership(membershipConfig{
		self:     cfg.Self,
		peers:    cfg.Peers,
		interval: cfg.HeartbeatInterval,
		suspect:  cfg.SuspectAfter,
		evict:    cfg.EvictAfter,
		ping: func(ctx context.Context, addr string) (bool, error) {
			reply, err := n.client.Ping(ctx, addr)
			return reply.Draining, err
		},
		onChange: func(live []string) {
			n.ring.Reset(live)
			n.cfg.Logf("cluster: ring members now %v", live)
		},
	})
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	n.ring.Reset(ids)
	return n, nil
}

// Start launches the heartbeat and work-stealing loops.
func (n *Node) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.mem.start()
	if n.cfg.StealInterval > 0 && len(n.cfg.Peers) > 1 {
		n.wg.Add(1)
		go n.stealLoop(ctx)
	}
}

// Close stops the loops and waits for in-flight stolen solves to report
// back (their jobs would otherwise sit on a peer's lease clock).
func (n *Node) Close() {
	n.closed.Do(func() {
		if n.cancel != nil {
			n.cancel()
		}
		n.mem.stop()
		n.wg.Wait()
	})
}

// SetDraining flips the drain flag: heartbeat replies advertise it so
// peers stop routing new work and stealing from this node.
func (n *Node) SetDraining(v bool) { n.draining.Store(v) }

// Draining reports the drain flag.
func (n *Node) Draining() bool { return n.draining.Load() }

// Self returns this node's id.
func (n *Node) Self() string { return n.cfg.Self }

// Addr resolves a node id to its address.
func (n *Node) Addr(id string) (string, bool) {
	addr, ok := n.cfg.Peers[id]
	return addr, ok
}

// RouteKey places a fingerprint on the ring: the owning node's id and
// address, and whether that is this node. With the whole ring evicted
// but self (a total partition), self owns everything.
func (n *Node) RouteKey(fingerprint string) (id, addr string, local bool) {
	owner, ok := n.ring.Owner(fingerprint)
	if !ok || owner == n.cfg.Self {
		return n.cfg.Self, n.cfg.Peers[n.cfg.Self], true
	}
	return owner, n.cfg.Peers[owner], false
}

// MintNode extracts the minting node from a cluster-scoped job id
// ("job-<node>-000042"). ok is false for ids in the single-node shape —
// the caller should fall back to the local manager.
func (n *Node) MintNode(jobID string) (id string, ok bool) {
	rest, found := strings.CutPrefix(jobID, "job-")
	if !found {
		return "", false
	}
	i := strings.LastIndexByte(rest, '-')
	if i <= 0 {
		return "", false
	}
	id = rest[:i]
	if _, known := n.cfg.Peers[id]; !known {
		return "", false
	}
	return id, true
}

// Usable reports whether a peer can take proxy/steal traffic right now
// (known, not evicted, not draining).
func (n *Node) Usable(id string) bool { return n.mem.isUsable(id) }

// ReportFailure tells the failure detector a peer just refused a
// connection, aging it to Suspect ahead of the next heartbeat.
func (n *Node) ReportFailure(id string) { n.mem.reportFailure(id) }

// Forward proxies a client request to a peer, counting it. See
// Client.Forward for stream semantics.
func (n *Node) Forward(w http.ResponseWriter, r *http.Request, addr string) error {
	n.ctr.proxied.Add(1)
	return n.client.Forward(w, r, addr, n.cfg.Self)
}

// RouteSubmit relays a submission body to a peer, counting the proxy.
// See Client.PostJob.
func (n *Node) RouteSubmit(ctx context.Context, addr string, body []byte) (int, []byte, error) {
	n.ctr.proxied.Add(1)
	return n.client.PostJob(ctx, addr, n.cfg.Self, body)
}

// NoteFallback counts a forward that failed over to local serving.
func (n *Node) NoteFallback() { n.ctr.fallbacks.Add(1) }

// NoteRelay counts a by-job-id routed request.
func (n *Node) NoteRelay() { n.ctr.relays.Add(1) }

// ------------------------------------------------------------ stealing ---

// stealLoop is the idle-node side of work stealing: when local workers
// have spare capacity, poll peers' queue depths and pull queued jobs
// over. The victim keeps the job's identity; this node only lends CPU.
func (n *Node) stealLoop(ctx context.Context) {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.StealInterval)
	defer ticker.Stop()
	// Rotate the probe order deterministically so one victim is not
	// hammered by every tick (seeded-randomness discipline: no ambient
	// rand; rotation spreads load just as well).
	peers := make([]string, 0, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		if id != n.cfg.Self {
			peers = append(peers, id)
		}
	}
	tick := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if n.draining.Load() {
			continue
		}
		st := n.mgr.Stats()
		idle := st.Workers - st.Busy - st.Queued
		if idle <= 0 {
			continue
		}
		tick++
		for i := 0; i < len(peers) && idle > 0; i++ {
			select {
			case <-ctx.Done():
				return
			default:
			}
			id := peers[(tick+i)%len(peers)]
			if !n.mem.isUsable(id) {
				continue
			}
			addr := n.cfg.Peers[id]
			ps, err := n.client.Stats(ctx, addr)
			if err != nil || ps.Draining || ps.Stats.Queued == 0 {
				continue
			}
			sj, err := n.client.Steal(ctx, addr)
			if err != nil {
				n.ctr.stealErrs.Add(1)
				continue
			}
			if sj == nil {
				continue
			}
			idle--
			n.wg.Add(1)
			go n.runStolen(ctx, addr, sj)
		}
	}
}

// runStolen executes one stolen job on the local manager and reports the
// outcome back to the victim. Transient local rejections (queue filled
// between the idle check and the submit) release the job instead of
// failing it; only permanent errors (unparseable model, unknown solver)
// fail it at the victim.
func (n *Node) runStolen(ctx context.Context, victimAddr string, sj *service.StolenJob) {
	defer n.wg.Done()
	report := func(res *service.RemoteResult) {
		rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := n.client.Complete(rctx, victimAddr, sj.ID, res); err != nil {
			// The victim's lease re-queues the job; losing this report
			// costs duplicated work, never a lost job.
			n.ctr.stealErrs.Add(1)
			n.cfg.Logf("cluster: report stolen %s to %s: %v", sj.ID, victimAddr, err)
		}
	}
	release := func() { report(&service.RemoteResult{Released: true}) }

	mdl := model.New()
	if err := json.Unmarshal(sj.Model, mdl); err != nil {
		report(&service.RemoteResult{Error: fmt.Sprintf("stolen model does not parse: %v", err)})
		return
	}
	job, err := n.mgr.Submit(service.Request{
		Model:       mdl,
		Solver:      sj.Solver,
		WireOptions: sj.Options,
		TimeLimit:   time.Duration(sj.TimeLimitMS) * time.Millisecond,
		// The victim's shard already dedups this key; a local entry would
		// shadow this node's own shard with results it does not own.
		NoDedup: true,
	})
	switch {
	case err == nil:
	case isTransientSubmitErr(err):
		release()
		return
	default:
		report(&service.RemoteResult{Error: err.Error()})
		return
	}
	n.ctr.steals.Add(1)
	select {
	case <-job.Done():
	case <-ctx.Done():
		// Node shutdown mid-solve: cancel and hand back whatever the
		// local manager finalizes; the victim's lease covers the rest.
		job.Cancel()
		<-job.Done()
	}
	res, rerr := job.Result()
	if rerr != nil {
		report(&service.RemoteResult{Error: rerr.Error()})
		return
	}
	report(&service.RemoteResult{Result: service.ToWireResult(res)})
}

// isTransientSubmitErr classifies local submit failures that should
// release the stolen job back to its victim rather than fail it.
func isTransientSubmitErr(err error) bool {
	return errors.Is(err, service.ErrQueueFull) || errors.Is(err, service.ErrClosed)
}

// ------------------------------------------------------- HTTP surface ---

// Info is the /v1/cluster introspection body.
type Info struct {
	Self     string     `json:"self"`
	Draining bool       `json:"draining,omitempty"`
	Started  time.Time  `json:"started"`
	Ring     []string   `json:"ring"`
	Peers    []PeerInfo `json:"peers"`
	// Counters.
	Proxied    int64 `json:"proxied"`
	Fallbacks  int64 `json:"fallbacks"`
	Relays     int64 `json:"relays"`
	Steals     int64 `json:"steals"`
	StealErrs  int64 `json:"steal_errors"`
	Stolen     int64 `json:"stolen"`
	StolenDone int64 `json:"stolen_done"`
	Requeued   int64 `json:"requeued"`
}

// Info snapshots the node for introspection. The Stolen* counters come
// from the manager (jobs this node lent out); Steals counts jobs this
// node pulled in.
func (n *Node) Info() Info {
	st := n.mgr.Stats()
	return Info{
		Self:       n.cfg.Self,
		Draining:   n.draining.Load(),
		Started:    n.started,
		Ring:       n.ring.Nodes(),
		Peers:      n.mem.snapshot(),
		Proxied:    n.ctr.proxied.Load(),
		Fallbacks:  n.ctr.fallbacks.Load(),
		Relays:     n.ctr.relays.Load(),
		Steals:     n.ctr.steals.Load(),
		StealErrs:  n.ctr.stealErrs.Load(),
		Stolen:     st.Stolen,
		StolenDone: st.StolenDone,
		Requeued:   st.Requeued,
	}
}

// Handler returns the inter-node HTTP surface, to be mounted by the
// serving binary:
//
//	GET  /v1/cluster               introspection (Info)
//	GET  /v1/cluster/ping          heartbeat probe
//	GET  /v1/cluster/stats         manager snapshot for steal decisions
//	POST /v1/cluster/steal         pull one queued job (200 StolenJob | 204)
//	POST /v1/cluster/complete/{id} report a stolen job's outcome
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, n.Info())
	})
	mux.HandleFunc("GET /v1/cluster/ping", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, PingReply{ID: n.cfg.Self, Draining: n.draining.Load()})
	})
	mux.HandleFunc("GET /v1/cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsReply{
			ID:       n.cfg.Self,
			Draining: n.draining.Load(),
			Stats:    n.mgr.Stats(),
		})
	})
	mux.HandleFunc("POST /v1/cluster/steal", func(w http.ResponseWriter, r *http.Request) {
		if n.draining.Load() {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		sj, ok := n.mgr.Steal(n.cfg.StealLease)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, sj)
	})
	mux.HandleFunc("POST /v1/cluster/complete/{id}", func(w http.ResponseWriter, r *http.Request) {
		var res service.RemoteResult
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&res); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		id := r.PathValue("id")
		var err error
		switch {
		case res.Released:
			err = n.mgr.ReleaseStolen(id)
		case res.Result != nil:
			err = n.mgr.CompleteRemote(id, service.ParseWireResult(res.Result), "")
		default:
			err = n.mgr.CompleteRemote(id, nil, res.Error)
		}
		switch {
		case errors.Is(err, service.ErrNotStolen):
			// Lease already expired and the job went back to the local
			// queue; the thief's work is discarded. 409 tells it so.
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		case err != nil:
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		default:
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}
	})
	return mux
}
