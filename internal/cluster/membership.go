package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// PeerState is a peer's health as seen from this node.
type PeerState int

const (
	// PeerAlive means heartbeats are arriving.
	PeerAlive PeerState = iota
	// PeerSuspect means heartbeats stopped recently; the peer keeps its
	// ring ownership through the suspicion window (a GC pause or a
	// dropped packet must not reshuffle the keyspace).
	PeerSuspect
	// PeerDead means the suspicion window expired; the peer is evicted
	// from the ring and its key range reassigned to the successors.
	PeerDead
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// PeerInfo is one peer's snapshot for introspection.
type PeerInfo struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	State    string    `json:"state"`
	Draining bool      `json:"draining,omitempty"`
	LastSeen time.Time `json:"last_seen"`
}

// pingFunc probes one peer address, reporting whether it answered and
// whether it is draining. Injected by Node so Membership needs no HTTP
// knowledge of its own.
type pingFunc func(ctx context.Context, addr string) (draining bool, err error)

// membershipConfig tunes the failure detector.
type membershipConfig struct {
	self     string
	peers    map[string]string // id → addr, self included
	interval time.Duration     // heartbeat period
	suspect  time.Duration     // silence before Suspect
	evict    time.Duration     // silence before Dead (ring eviction)
	ping     pingFunc
	// onChange runs after every sweep that changed the live set (the
	// ring members: every peer not Dead), with the new set sorted.
	onChange func(live []string)
}

func (c membershipConfig) withDefaults() membershipConfig {
	if c.interval <= 0 {
		c.interval = time.Second
	}
	if c.suspect <= 0 {
		c.suspect = 3 * c.interval
	}
	if c.evict <= c.suspect {
		c.evict = 2 * c.suspect
	}
	return c
}

// membership is the failure detector: it heartbeats every peer on a
// timer, derives Alive/Suspect/Dead from heartbeat silence, and reports
// live-set changes so the ring can be rebuilt. Self is always alive.
type membership struct {
	cfg membershipConfig

	mu    sync.Mutex
	peers map[string]*peerHealth // guarded by mu
	live  map[string]bool        // last live set reported through onChange; guarded by mu

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

type peerHealth struct {
	addr     string
	lastSeen time.Time
	draining bool
}

// newMembership builds the detector with every configured peer
// optimistically alive — a cluster booting in any order must not evict
// nodes that simply have not been probed yet.
func newMembership(cfg membershipConfig) *membership {
	cfg = cfg.withDefaults()
	m := &membership{
		cfg:   cfg,
		peers: make(map[string]*peerHealth, len(cfg.peers)),
		live:  make(map[string]bool, len(cfg.peers)),
	}
	now := time.Now()
	for id, addr := range cfg.peers {
		m.peers[id] = &peerHealth{addr: addr, lastSeen: now}
		m.live[id] = true
	}
	return m
}

// start launches the heartbeat loop.
func (m *membership) start() {
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.cfg.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				m.sweep(ctx)
			}
		}
	}()
}

// stop halts the loop and waits for it.
func (m *membership) stop() {
	if m.cancel != nil {
		m.cancel()
	}
	m.wg.Wait()
}

// sweep heartbeats every peer concurrently, then re-derives the live set
// and fires onChange if it moved.
func (m *membership) sweep(ctx context.Context) {
	m.mu.Lock()
	type probe struct{ id, addr string }
	probes := make([]probe, 0, len(m.peers))
	for id, p := range m.peers {
		if id == m.cfg.self {
			p.lastSeen = time.Now()
			continue
		}
		probes = append(probes, probe{id, p.addr})
	}
	m.mu.Unlock()

	var wg sync.WaitGroup
	for _, pr := range probes {
		wg.Add(1)
		go func(pr probe) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.cfg.interval)
			defer cancel()
			draining, err := m.cfg.ping(pctx, pr.addr)
			if err != nil {
				return // silence is the signal; lastSeen just ages
			}
			m.mu.Lock()
			if p := m.peers[pr.id]; p != nil {
				p.lastSeen = time.Now()
				p.draining = draining
			}
			m.mu.Unlock()
		}(pr)
	}
	wg.Wait()
	m.publish()
}

// reportFailure ages a peer straight past the suspicion threshold — the
// proxy path calls it on a hard connection failure so routing reacts
// faster than the next heartbeat round. Eviction still waits the full
// window.
func (m *membership) reportFailure(id string) {
	m.mu.Lock()
	if p := m.peers[id]; p != nil && id != m.cfg.self {
		if aged := time.Now().Add(-m.cfg.suspect); p.lastSeen.After(aged) {
			p.lastSeen = aged
		}
	}
	m.mu.Unlock()
	m.publish()
}

// stateOf derives a peer's state from heartbeat silence.
func (m *membership) stateOf(p *peerHealth, now time.Time) PeerState {
	silence := now.Sub(p.lastSeen)
	switch {
	case silence >= m.cfg.evict:
		return PeerDead
	case silence >= m.cfg.suspect:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

// publish recomputes the live set (everything not Dead) and fires
// onChange when it differs from the last published set.
func (m *membership) publish() {
	m.mu.Lock()
	now := time.Now()
	live := make([]string, 0, len(m.peers))
	changed := false
	seen := make(map[string]bool, len(m.peers))
	for id, p := range m.peers {
		alive := id == m.cfg.self || m.stateOf(p, now) != PeerDead
		seen[id] = alive
		if alive {
			live = append(live, id)
		}
		if m.live[id] != alive {
			changed = true
		}
	}
	if changed {
		m.live = seen
	}
	cb := m.cfg.onChange
	m.mu.Unlock()
	if changed && cb != nil {
		sort.Strings(live)
		cb(live)
	}
}

// snapshot returns every peer's info, sorted by id.
func (m *membership) snapshot() []PeerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]PeerInfo, 0, len(m.peers))
	for id, p := range m.peers {
		state := PeerAlive
		if id != m.cfg.self {
			state = m.stateOf(p, now)
		}
		out = append(out, PeerInfo{
			ID:       id,
			Addr:     p.addr,
			State:    state.String(),
			Draining: p.draining,
			LastSeen: p.lastSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// isUsable reports whether a peer is a viable target for proxy or steal
// calls: known, not Dead, and not draining.
func (m *membership) isUsable(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return false
	}
	if id == m.cfg.self {
		return true
	}
	return m.stateOf(p, time.Now()) != PeerDead && !p.draining
}
