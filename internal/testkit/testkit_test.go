package testkit

import (
	"math"
	"testing"

	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/model"
)

// TestSuiteIsDeterministic: the same seed must yield models that evaluate
// identically — a failing oracle instance has to reproduce from its name.
func TestSuiteIsDeterministic(t *testing.T) {
	a, b := Suite(9), Suite(9)
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ca, err := a[i].Model.Compile()
		if err != nil {
			t.Fatalf("%s: %v", a[i].Name, err)
		}
		cb, err := b[i].Model.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if ca.N() != cb.N() || ca.Form() != cb.Form() {
			t.Fatalf("%s: shape mismatch across generations", a[i].Name)
		}
		x := make([]int, ca.N())
		for probe := 0; probe < 4; probe++ {
			for j := range x {
				x[j] = (j*7 + probe*3) % 2
			}
			va, fa, _ := ca.Evaluate(x)
			vb, fb, _ := cb.Evaluate(x)
			if va != vb || fa != fb {
				t.Fatalf("%s: evaluation diverged: (%v,%v) vs (%v,%v)", a[i].Name, va, fa, vb, fb)
			}
		}
	}
}

// TestBruteForceKnownOptimum checks the oracle itself on a hand-solvable
// model: min x0 − 2x1 subject to x0 + x1 = 1 has optimum −2 at (0, 1).
func TestBruteForceKnownOptimum(t *testing.T) {
	m := model.New()
	x := m.Binary("x", 2)
	m.Minimize(x[0].Mul(1).Add(x[1].Mul(-2)))
	m.Constrain("pick", x.Sum().EQ(1))
	compiled, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	opt, argmin, feasible := BruteForce(compiled)
	if !feasible || math.Abs(opt-(-2)) > 1e-12 {
		t.Fatalf("BruteForce = (%v, %v), want optimum -2", opt, feasible)
	}
	if argmin[0] != 0 || argmin[1] != 1 {
		t.Fatalf("argmin = %v, want [0 1]", argmin)
	}
}

// TestMixedInstancesAreFeasible: the mixed-sense generator promises a
// non-empty feasible set by construction.
func TestMixedInstancesAreFeasible(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		m := RandomMixed(10, rng.New(seed))
		compiled, err := m.Compile()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, _, feasible := BruteForce(compiled); !feasible {
			t.Fatalf("seed %d: mixed instance has an empty feasible set", seed)
		}
	}
}
