package testkit

import (
	"context"
	"math"
	"strings"
	"testing"

	saim "github.com/ising-machines/saim"
)

// extractionBackends may reject structurally incompatible models (they
// need integer knapsack form); every other backend must solve whatever
// form it Accepts.
var extractionBackends = map[string]bool{"ga": true, "greedy": true, "exact": true}

// oracleBudget returns a small deterministic budget per backend.
func oracleBudget(name string) []saim.Option {
	opts := []saim.Option{
		saim.WithSeed(7),
		saim.WithIterations(80),
		saim.WithSweepsPerRun(150),
	}
	switch name {
	case "pt":
		opts = append(opts, saim.WithReplicas(8))
	case "decomp":
		opts = append(opts, saim.WithSubproblemSize(6), saim.WithIterations(20))
	}
	return opts
}

// TestCrossBackendOracle is the differential net: every registered
// backend, on every suite instance it accepts, must report results
// consistent with the brute-force oracle — costs never beat the proven
// optimum, assignments re-evaluate to the reported cost and feasibility,
// and proven-optimal results equal the optimum exactly.
func TestCrossBackendOracle(t *testing.T) {
	ctx := context.Background()
	for _, inst := range Suite(1) {
		compiled, err := inst.Model.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", inst.Name, err)
		}
		opt, _, feasExists := BruteForce(compiled)
		if !feasExists {
			t.Fatalf("%s: generator produced an infeasible instance", inst.Name)
		}
		for _, name := range saim.Solvers() {
			s, err := saim.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Accepts(compiled.Form()) {
				continue
			}
			res, err := s.Solve(ctx, compiled, oracleBudget(name)...)
			if err != nil {
				if extractionBackends[name] && strings.Contains(err.Error(), "knapsack") {
					// Structural mismatch: the combinatorial backends only
					// run integer knapsack forms.
					continue
				}
				t.Errorf("%s / %s: %v", inst.Name, name, err)
				continue
			}
			if res.Assignment == nil {
				// A heuristic may fail to find a feasible point; that is a
				// quality issue, not a soundness one. But it must say so.
				if !res.Infeasible() {
					t.Errorf("%s / %s: nil assignment but Infeasible() == false", inst.Name, name)
				}
				continue
			}
			cost, feasible, err := compiled.Evaluate(res.Assignment)
			if err != nil {
				t.Errorf("%s / %s: assignment does not evaluate: %v", inst.Name, name, err)
				continue
			}
			if !feasible {
				t.Errorf("%s / %s: reported assignment violates the constraints", inst.Name, name)
			}
			if math.Abs(cost-res.Cost) > 1e-6*(1+math.Abs(cost)) {
				t.Errorf("%s / %s: reported cost %v but assignment evaluates to %v", inst.Name, name, res.Cost, cost)
			}
			if res.Cost < opt-1e-6 {
				t.Errorf("%s / %s: cost %v beats the proven optimum %v", inst.Name, name, res.Cost, opt)
			}
			if name == "exact" && res.Optimal && math.Abs(res.Cost-opt) > 1e-6 {
				t.Errorf("%s / exact: claims optimality at %v, oracle says %v", inst.Name, res.Cost, opt)
			}
		}
	}
}

// TestDecomposedEqualsWholeSolve pins the decomposition meta-solver
// against whole-problem solves on instances small enough to do both:
// with exhaustive budgets all three — the whole solve, a decomposition
// whose single block covers the model, and a genuinely decomposed solve
// with narrow tabu-rotated blocks — must land on the same proven optimum.
//
// The pin covers the unconstrained form, where subproblem extraction is
// exact (the frozen complement is a constant of the block). Constrained
// models decompose a fixed-penalty surrogate with no λ adaptation, so
// cost parity with the adaptive whole solve is a quality aspiration, not
// an invariant; their soundness is enforced by TestCrossBackendOracle.
func TestDecomposedEqualsWholeSolve(t *testing.T) {
	ctx := context.Background()
	for _, inst := range Suite(2) {
		if !strings.HasPrefix(inst.Name, "qubo") {
			continue
		}
		compiled, err := inst.Model.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", inst.Name, err)
		}
		opt, _, _ := BruteForce(compiled)

		whole, err := saim.SolveModel(ctx, "saim", compiled,
			saim.WithSeed(3), saim.WithIterations(150), saim.WithSweepsPerRun(200))
		if err != nil {
			t.Fatalf("%s: whole solve: %v", inst.Name, err)
		}
		wide, err := saim.SolveModel(ctx, "decomp", compiled,
			saim.WithSeed(3), saim.WithSubproblemSize(compiled.N()),
			saim.WithIterations(60), saim.WithSweepsPerRun(200))
		if err != nil {
			t.Fatalf("%s: wide decomp: %v", inst.Name, err)
		}
		narrow, err := saim.SolveModel(ctx, "decomp", compiled,
			saim.WithSeed(3), saim.WithSubproblemSize(5), saim.WithTabuTenure(1),
			saim.WithIterations(60), saim.WithSweepsPerRun(200))
		if err != nil {
			t.Fatalf("%s: narrow decomp: %v", inst.Name, err)
		}
		for kind, res := range map[string]*saim.Result{"whole": whole, "wide": wide, "narrow": narrow} {
			if res.Infeasible() {
				t.Errorf("%s / %s: no feasible assignment", inst.Name, kind)
				continue
			}
			if math.Abs(res.Cost-opt) > 1e-9 {
				t.Errorf("%s / %s: cost %v, proven optimum %v — decomposed and whole solves disagree with the oracle", inst.Name, kind, res.Cost, opt)
			}
		}
	}
}
