// Package testkit is the differential-testing net over the solver
// registry: a deterministic random-model generator covering every model
// form the library supports — unconstrained QUBOs, knapsack-structured
// and mixed-sense (LE/EQ/GE) constrained models, and high-order
// polynomials — plus a brute-force oracle that proves the optimum of any
// instance small enough to enumerate.
//
// The cross-backend oracle test (oracle_test.go) solves every registered
// backend on every instance it accepts and asserts three invariants no
// heuristic is allowed to break: a reported cost is never better than the
// proven optimum, a reported assignment re-evaluates to exactly the
// reported cost and feasibility, and the exact backend's proven optima
// match the oracle. It also pins the decomposition meta-solver against
// whole-problem solves on instances small enough to do both.
//
// Generators draw all randomness from a seeded source, so a failing
// instance reproduces from its name.
package testkit

import (
	"fmt"
	"math"

	saim "github.com/ising-machines/saim"
	"github.com/ising-machines/saim/internal/rng"
	"github.com/ising-machines/saim/model"
)

// Instance is one generated test model.
type Instance struct {
	// Name encodes the generator kind, size, and seed, e.g. "qubo-12-3".
	Name string
	// Model is the declarative model; compile it to run solvers.
	Model *model.Model
}

// Suite returns the deterministic differential-test suite for a seed:
// a spread of kinds and sizes, all small enough for BruteForce.
func Suite(seed uint64) []Instance {
	var out []Instance
	add := func(kind string, n int, m *model.Model) {
		out = append(out, Instance{Name: fmt.Sprintf("%s-%d-%d", kind, n, seed), Model: m})
	}
	src := rng.New(seed ^ 0xd1f2e3c4b5a69788)
	for _, n := range []int{6, 10, 14} {
		add("qubo", n, RandomQUBO(n, 0.5, src.Split()))
	}
	add("qubo", 18, RandomQUBO(18, 0.3, src.Split()))
	for _, n := range []int{8, 12} {
		add("knap", n, RandomKnapsack(n, 0.4, src.Split()))
	}
	add("mkp", 10, RandomMKP(10, 3, src.Split()))
	for _, n := range []int{8, 12} {
		add("mixed", n, RandomMixed(n, src.Split()))
	}
	add("ho", 8, RandomHighOrder(8, src.Split()))
	return out
}

// RandomQUBO draws an unconstrained quadratic model: integer linear
// weights in [−5, 5] and pair weights in [−5, 5] present with the given
// density.
func RandomQUBO(n int, density float64, src *rng.Source) *model.Model {
	m := model.New()
	x := m.Binary("x", n)
	terms := make([]model.Expr, 0, n*n/2)
	for i := 0; i < n; i++ {
		if w := src.IntRange(-5, 5); w != 0 {
			terms = append(terms, x[i].Mul(float64(w)))
		}
		for j := i + 1; j < n; j++ {
			if src.Bool(density) {
				if w := src.IntRange(-5, 5); w != 0 {
					terms = append(terms, x[i].Times(x[j]).Mul(float64(w)))
				}
			}
		}
	}
	terms = append(terms, model.Const(float64(src.IntRange(-3, 3))))
	m.Minimize(model.Sum(terms...))
	return m
}

// RandomKnapsack draws a quadratic knapsack in the integer form the
// combinatorial backends (ga, greedy, exact) extract: positive item
// values and weights, non-negative pair values at the given density, one
// ≤ capacity constraint with room for roughly 40% of the total weight.
func RandomKnapsack(n int, density float64, src *rng.Source) *model.Model {
	m := model.New()
	x := m.Binary("take", n)
	weights := make([]float64, n)
	totalW := 0.0
	terms := make([]model.Expr, 0, n)
	for i := 0; i < n; i++ {
		terms = append(terms, x[i].Mul(float64(src.IntRange(1, 20))))
		weights[i] = float64(src.IntRange(1, 9))
		totalW += weights[i]
		for j := i + 1; j < n; j++ {
			if src.Bool(density) {
				terms = append(terms, x[i].Times(x[j]).Mul(float64(src.IntRange(1, 10))))
			}
		}
	}
	m.Maximize(model.Sum(terms...))
	m.Constrain("capacity", model.Dot(weights, x).LE(math.Max(1, math.Floor(0.4*totalW))))
	return m
}

// RandomMKP draws a multidimensional knapsack: linear integer values and
// mc integer ≤ constraints, the form the MKP extraction path accepts.
func RandomMKP(n, mc int, src *rng.Source) *model.Model {
	m := model.New()
	x := m.Binary("take", n)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(src.IntRange(1, 30))
	}
	m.Maximize(model.Dot(values, x))
	for k := 0; k < mc; k++ {
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = float64(src.IntRange(0, 9))
			total += w[i]
		}
		m.Constrain(fmt.Sprintf("cap%d", k), model.Dot(w, x).LE(math.Max(1, math.Floor(0.5*total))))
	}
	return m
}

// RandomMixed draws a constrained model exercising all three constraint
// senses at once. Bounds derive from a random reference assignment, so
// the feasible set is non-empty by construction.
func RandomMixed(n int, src *rng.Source) *model.Model {
	m := model.New()
	x := m.Binary("x", n)
	ref := make([]float64, n)
	for i := range ref {
		if src.Bool(0.5) {
			ref[i] = 1
		}
	}
	at := func(c []float64) float64 {
		s := 0.0
		for i, v := range c {
			s += v * ref[i]
		}
		return s
	}
	terms := make([]model.Expr, 0, n)
	for i := 0; i < n; i++ {
		terms = append(terms, x[i].Mul(float64(src.IntRange(-6, 6))))
		if j := src.Intn(n); j != i {
			terms = append(terms, x[i].Times(x[j]).Mul(float64(src.IntRange(-3, 3))))
		}
	}
	m.Minimize(model.Sum(terms...))

	le := make([]float64, n)
	for i := range le {
		le[i] = float64(src.IntRange(1, 5))
	}
	m.Constrain("le", model.Dot(le, x).LE(at(le)+float64(src.IntRange(0, 4))))

	ge := make([]float64, n)
	for i := range ge {
		ge[i] = float64(src.IntRange(1, 5))
	}
	m.Constrain("ge", model.Dot(ge, x).GE(math.Max(0, at(ge)-float64(src.IntRange(0, 4)))))

	eq := make([]float64, n)
	for i := range eq {
		eq[i] = float64(src.IntRange(1, 4))
	}
	m.Constrain("eq", model.Dot(eq, x).EQ(at(eq)))
	return m
}

// RandomHighOrder draws a polynomial model: a quadratic base plus cubic
// monomials, which restricts it to backends accepting FormHighOrder.
func RandomHighOrder(n int, src *rng.Source) *model.Model {
	m := model.New()
	x := m.Binary("x", n)
	terms := make([]model.Expr, 0, n)
	for i := 0; i < n; i++ {
		terms = append(terms, x[i].Mul(float64(src.IntRange(-4, 4))))
	}
	for k := 0; k < 3; k++ {
		i, j, l := src.Intn(n), src.Intn(n), src.Intn(n)
		if i != j && j != l && i != l {
			terms = append(terms, model.Prod(x[i], x[j], x[l]).Mul(float64(src.IntRange(-5, 5))))
		}
	}
	m.Minimize(model.Sum(terms...))
	return m
}

// BruteForce enumerates every assignment of a compiled model and returns
// the optimal feasible cost, one argmin, and whether any feasible
// assignment exists. It refuses models beyond 20 variables.
func BruteForce(m *saim.Model) (cost float64, argmin []int, feasible bool) {
	n := m.N()
	if n > 20 {
		panic(fmt.Sprintf("testkit: BruteForce on %d variables", n))
	}
	best := math.Inf(1)
	var bestX []int
	x := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range x {
			x[i] = mask >> i & 1
		}
		c, feas, err := m.Evaluate(x)
		if err != nil {
			panic(err)
		}
		if feas && c < best {
			best = c
			bestX = append(bestX[:0], x...)
		}
	}
	return best, bestX, bestX != nil
}
