package pt

import (
	"testing"

	"github.com/ising-machines/saim/internal/constraint"
	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/exact"
	"github.com/ising-machines/saim/internal/qkp"
)

func TestLadderShape(t *testing.T) {
	l := Ladder(0.1, 10, 5)
	if len(l) != 5 {
		t.Fatalf("len = %d", len(l))
	}
	if l[0] != 0.1 || l[4] != 10 {
		t.Fatalf("endpoints = %v %v", l[0], l[4])
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not increasing at %d", i)
		}
	}
	one := Ladder(0.5, 8, 1)
	if len(one) != 1 || one[0] != 8 {
		t.Fatalf("single-rung ladder = %v", one)
	}
}

func TestLadderPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { Ladder(0, 1, 3) },
		func() { Ladder(2, 1, 3) },
		func() { Ladder(0.1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Ladder accepted bad arguments")
				}
			}()
			fn()
		}()
	}
}

func TestSolvePenaltyFindsGoodSolutions(t *testing.T) {
	inst := qkp.Generate(14, 0.5, 1, 55)
	ref, err := exact.BruteForceQKP(inst)
	if err != nil {
		t.Fatal(err)
	}
	p := inst.ToProblem(constraint.Binary)
	res, err := SolvePenalty(p, 5, Options{
		Replicas: 8, Sweeps: 400, BetaMin: 0.2, BetaMax: 12, SampleEvery: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible sample")
	}
	if !inst.Feasible(res.Best) {
		t.Fatal("reported best infeasible")
	}
	if acc := qkp.Accuracy(res.BestCost, ref.Cost); acc < 90 {
		t.Fatalf("accuracy %v%% below 90%%", acc)
	}
	if res.TotalSweeps != 8*400 {
		t.Fatalf("TotalSweeps = %d", res.TotalSweeps)
	}
	if res.SwapAttempts == 0 {
		t.Fatal("no swap attempts recorded")
	}
}

func TestSwapsActuallyHappen(t *testing.T) {
	inst := qkp.Generate(12, 0.5, 2, 66)
	p := inst.ToProblem(constraint.Binary)
	res, err := SolvePenalty(p, 2, Options{
		Replicas: 6, Sweeps: 200, BetaMin: 0.5, BetaMax: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapAccepts == 0 {
		t.Fatal("adjacent close-β replicas never swapped")
	}
	if res.SwapAccepts > res.SwapAttempts {
		t.Fatal("more accepts than attempts")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	inst := qkp.Generate(10, 0.5, 3, 77)
	p := inst.ToProblem(constraint.Binary)
	run := func() *Result {
		res, err := SolvePenalty(p, 3, Options{Replicas: 4, Sweeps: 100, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost || a.SwapAccepts != b.SwapAccepts {
		t.Fatal("same seed, different trajectories")
	}
}

func TestSampleEveryControlsSampleCount(t *testing.T) {
	inst := qkp.Generate(10, 0.5, 4, 88)
	p := inst.ToProblem(constraint.Binary)
	res, err := SolvePenalty(p, 3, Options{Replicas: 4, Sweeps: 100, SampleEvery: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleCount != 4*10 {
		t.Fatalf("SampleCount = %d, want 40", res.SampleCount)
	}
}

func TestRejectsInvalidProblem(t *testing.T) {
	if _, err := SolvePenalty(&core.Problem{}, 1, Options{}); err == nil {
		t.Fatal("accepted invalid problem")
	}
}

func TestFeasibleRatioEmpty(t *testing.T) {
	if (&Result{}).FeasibleRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}
