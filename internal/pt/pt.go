// Package pt implements parallel tempering (replica-exchange Monte Carlo)
// on a QUBO energy. It is the reproduction stand-in for the PT-DA baseline
// of Parizy & Togawa [17] — parallel tempering with 26 replicas executed on
// Fujitsu's Digital Annealer — which the paper compares against in Tables
// III/IV and Fig. 4.
//
// R replicas sample the same penalty energy at fixed inverse temperatures
// β_1 < … < β_R (geometric ladder). After every sweep, adjacent replicas
// attempt a configuration exchange accepted with the standard probability
//
//	A = min(1, exp[(β_i − β_j)(E_i − E_j)]),
//
// which preserves the joint Boltzmann distribution while letting hot
// replicas carry configurations over energy barriers.
package pt

import (
	"context"
	"fmt"
	"math"

	"github.com/ising-machines/saim/internal/core"
	"github.com/ising-machines/saim/internal/ising"
	"github.com/ising-machines/saim/internal/pbit"
	"github.com/ising-machines/saim/internal/penalty"
	"github.com/ising-machines/saim/internal/rng"
)

// Options configures a parallel-tempering solve.
type Options struct {
	// Replicas is the number of temperature rungs (PT-DA uses 26).
	Replicas int
	// Sweeps is the number of Monte-Carlo sweeps per replica.
	Sweeps int
	// BetaMin and BetaMax bound the geometric temperature ladder.
	BetaMin, BetaMax float64
	// SampleEvery controls how often (in sweeps) feasibility of all
	// replica states is recorded; 0 means every sweep.
	SampleEvery int
	// Seed drives all randomness.
	Seed uint64
	// Machine selects the p-bit kernel (auto/dense/CSR) every replica
	// runs on; the zero value auto-selects from the energy's density.
	Machine core.MachineKind
	// Progress, when non-nil, is invoked at every sampling point with a
	// snapshot of the solve (Iteration counts sweeps here).
	Progress func(core.ProgressInfo)
	// TargetCost, when non-nil, stops the solve early as soon as a
	// feasible sample reaches a cost ≤ *TargetCost.
	TargetCost *float64
	// Initial, when non-empty, warm-starts the solve: the coldest replica
	// (highest β) starts from this decision-bit assignment (slack bits
	// completed greedily) instead of a random state, and — when feasible —
	// it also seeds the best-so-far. Length must be Ext.NOrig.
	Initial ising.Bits
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Replicas == 0 {
		out.Replicas = 26
	}
	if out.Sweeps == 0 {
		out.Sweeps = 1000
	}
	if out.BetaMin == 0 {
		out.BetaMin = 0.1
	}
	if out.BetaMax == 0 {
		out.BetaMax = 10
	}
	if out.SampleEvery == 0 {
		out.SampleEvery = 1
	}
	return out
}

// Result summarizes a parallel-tempering solve of a constrained problem.
type Result struct {
	// Best is the decision-bit assignment of the best feasible sample.
	Best ising.Bits
	// BestCost is the problem cost of Best (+Inf if none was feasible).
	BestCost float64
	// FeasibleCount counts feasible replica samples at sampling points.
	FeasibleCount int
	// SampleCount counts all replica samples examined.
	SampleCount int
	// TotalSweeps is the cumulative MCS across replicas.
	TotalSweeps int64
	// SwapAttempts and SwapAccepts report exchange statistics.
	SwapAttempts, SwapAccepts int
	// P is the penalty weight used.
	P float64
	// FeasibleCosts holds the problem cost of every feasible sample seen
	// at sampling points.
	FeasibleCosts []float64
	// Stopped records why the solve returned.
	Stopped core.StopReason
}

// machine is the replica contract PT needs from a p-bit kernel; both the
// dense and CSR machines of package pbit satisfy it.
type machine interface {
	Sweep(beta float64)
	State() ising.Spins
	SetState(ising.Spins)
	Randomize()
	Energy() float64
	Sweeps() int64
}

// FeasibleRatio returns the percentage of feasible samples.
func (r *Result) FeasibleRatio() float64 {
	if r.SampleCount == 0 {
		return 0
	}
	return 100 * float64(r.FeasibleCount) / float64(r.SampleCount)
}

// SolvePenalty runs parallel tempering on the penalty energy
// E = f + P‖g‖² of the given problem.
func SolvePenalty(p *core.Problem, pWeight float64, opt Options) (*Result, error) {
	return SolvePenaltyContext(context.Background(), p, pWeight, opt)
}

// SolvePenaltyContext is SolvePenalty under a context, checked once per
// sweep (a sweep covers every replica, the natural run granularity of PT).
// On cancellation the best-so-far result is returned with a nil error and
// Stopped == core.StopCancelled.
func SolvePenaltyContext(ctx context.Context, p *core.Problem, pWeight float64, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	energy := penalty.Build(p.Objective, p.Ext, pWeight)

	src := rng.New(o.Seed)
	betas := Ladder(o.BetaMin, o.BetaMax, o.Replicas)
	// All replicas share one immutable model: PT never re-programs biases,
	// and exchanges go through SetState, so only per-machine local fields
	// differ. Sharing drops the former per-replica O(N²) model rebuild.
	model := energy.ToIsing()
	sparse := o.Machine.Resolve(model) == core.MachineSparse
	replicas := make([]machine, o.Replicas)
	energies := make([]float64, o.Replicas)
	for r := range replicas {
		if sparse {
			replicas[r] = pbit.NewSparse(model, src.Split())
		} else {
			replicas[r] = pbit.New(model, src.Split())
		}
		replicas[r].Randomize()
		energies[r] = replicas[r].Energy()
	}

	res := &Result{BestCost: math.Inf(1), P: pWeight}
	// Warm start: the coldest replica adopts the initial assignment, and a
	// feasible initial seeds the best-so-far so the solve never returns a
	// worse result than the assignment supplied.
	if len(o.Initial) > 0 {
		if len(o.Initial) != p.Ext.NOrig {
			return nil, fmt.Errorf("pt: initial assignment length %d, want %d", len(o.Initial), p.Ext.NOrig)
		}
		xw := make(ising.Bits, p.Ext.NTotal)
		copy(xw, o.Initial)
		p.Ext.CompleteSlacks(xw)
		cold := o.Replicas - 1
		replicas[cold].SetState(xw.Spins())
		energies[cold] = replicas[cold].Energy()
		if p.Ext.Orig.Feasible(o.Initial, 1e-9) {
			res.BestCost = p.Cost(o.Initial)
			res.Best = o.Initial.Clone()
			if o.TargetCost != nil && res.BestCost <= *o.TargetCost {
				res.Stopped = core.StopTarget
				o.Sweeps = 0
			}
		}
	}
	xbuf := make(ising.Bits, p.Ext.NTotal) // reusable sample scratch
	record := func(s ising.Spins) {
		s.BitsInto(xbuf)
		x := xbuf
		res.SampleCount++
		if p.Ext.OrigFeasible(x, 1e-9) {
			res.FeasibleCount++
			cost := p.Cost(x[:p.Ext.NOrig])
			res.FeasibleCosts = append(res.FeasibleCosts, cost)
			if cost < res.BestCost {
				res.BestCost = cost
				if res.Best == nil {
					res.Best = make(ising.Bits, p.Ext.NOrig)
				}
				copy(res.Best, x[:p.Ext.NOrig])
			}
		}
	}

	swap := ising.NewSpins(p.Ext.NTotal) // exchange scratch
	for sweep := 1; sweep <= o.Sweeps; sweep++ {
		if ctx.Err() != nil {
			res.Stopped = core.StopCancelled
			break
		}
		for r, m := range replicas {
			m.Sweep(betas[r])
			energies[r] = m.Energy()
		}
		// Replica exchange between adjacent rungs; alternate parity so a
		// configuration can ratchet across the ladder.
		start := sweep % 2
		for r := start; r+1 < o.Replicas; r += 2 {
			res.SwapAttempts++
			delta := (betas[r] - betas[r+1]) * (energies[r] - energies[r+1])
			if delta >= 0 || src.Float64() < math.Exp(delta) {
				res.SwapAccepts++
				// SetState copies its argument before recomputing fields,
				// so one scratch buffer suffices for the exchange.
				copy(swap, replicas[r].State())
				replicas[r].SetState(replicas[r+1].State())
				replicas[r+1].SetState(swap)
				energies[r], energies[r+1] = energies[r+1], energies[r]
			}
		}
		if sweep%o.SampleEvery == 0 {
			for _, m := range replicas {
				record(m.State())
			}
			if o.Progress != nil {
				var sweeps int64
				for _, m := range replicas {
					sweeps += m.Sweeps()
				}
				o.Progress(core.ProgressInfo{
					Iteration: sweep - 1, Total: o.Sweeps, BestCost: res.BestCost,
					FeasibleCount: res.FeasibleCount, Samples: res.SampleCount,
					Sweeps: sweeps,
				})
			}
			if o.TargetCost != nil && res.Best != nil && res.BestCost <= *o.TargetCost {
				res.Stopped = core.StopTarget
				break
			}
		}
	}
	for _, m := range replicas {
		res.TotalSweeps += m.Sweeps()
	}
	return res, nil
}

// Ladder returns an R-rung geometric β ladder from betaMin to betaMax.
func Ladder(betaMin, betaMax float64, r int) []float64 {
	if r < 1 || betaMin <= 0 || betaMax < betaMin {
		panic("pt: invalid ladder parameters")
	}
	out := make([]float64, r)
	if r == 1 {
		out[0] = betaMax
		return out
	}
	ratio := math.Pow(betaMax/betaMin, 1/float64(r-1))
	b := betaMin
	for i := range out {
		out[i] = b
		b *= ratio
	}
	out[r-1] = betaMax
	return out
}
